package check

// BenchmarkCertSNet measures certifying the saturated S-Net ke=2/kv=1
// plan — the dominant cost of running ffccheck over a recorded trace or
// the controller's async certifier. The exact variant enumerates every
// pruned fault combination; the adversarial variant is the bounded
// search large topologies fall back to.

import "testing"

func BenchmarkCertSNet(b *testing.B) {
	net, set, _, st := snetPlan(b)
	run := func(b *testing.B, p Params) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cert, err := Certify(net, set, st, st, p)
			if err != nil {
				b.Fatal(err)
			}
			if !cert.OK {
				b.Fatalf("fixture plan failed certification: %+v", cert.Violation)
			}
		}
	}
	b.Run("exact", func(b *testing.B) {
		run(b, Params{Prot: snetProt, Mode: Exact})
	})
	b.Run("adversarial", func(b *testing.B) {
		run(b, Params{Prot: snetProt, Mode: Adversarial})
	})
}
