package check

import (
	"math"
	"sort"

	"ffc/internal/core"
	"ffc/internal/topology"
)

// exactData enumerates every combination of ≤ ke active physical-link
// failures × ≤ kv active switch failures and evaluates the rescaled loads.
// Dominance covers the rest of the space: failing a link no positive-weight
// tunnel uses changes nothing (a zero-weight tunnel's death doesn't alter
// the surviving-weight total), and failing a switch that is only ever a
// flow endpoint removes those flows' load from every link without shifting
// anyone else's, so any combination containing inert elements behaves
// exactly like its active-only projection — which is enumerated.
func (c *checker) exactData() searchResult {
	res := searchResult{slack: math.Inf(1), slackLink: -1}
	physSel := make([]int, 0, c.p.Prot.Ke)
	swSel := make([]int, 0, c.p.Prot.Kv)

	combosUpTo(len(c.activeP), c.p.Prot.Ke, func(ps []int) bool {
		physSel = physSel[:0]
		for _, i := range ps {
			c.downP[c.activeP[i]] = true
			physSel = append(physSel, c.activeP[i])
		}
		cont := combosUpTo(len(c.activeS), c.p.Prot.Kv, func(ss []int) bool {
			swSel = swSel[:0]
			for _, i := range ss {
				c.downS[c.activeS[i]] = true
				swSel = append(swSel, c.activeS[i])
			}
			cr := c.evalData(c.downP, c.downS)
			for _, i := range ss {
				c.downS[c.activeS[i]] = false
			}
			return c.note(&res, cr, physSel, swSel)
		})
		for _, i := range ps {
			c.downP[c.activeP[i]] = false
		}
		return cont
	})
	return res
}

// combosUpTo calls fn with every index combination of size 0..k over
// [0, n), smallest size first, lexicographic within a size. fn returns
// false to stop; combosUpTo then returns false. The slice passed to fn is
// reused — copy it to keep it.
func combosUpTo(n, k int, fn func([]int) bool) bool {
	if k > n {
		k = n
	}
	sel := make([]int, 0, k)
	var rec func(start, size int) bool
	rec = func(start, size int) bool {
		if len(sel) == size {
			return fn(sel)
		}
		for i := start; i <= n-(size-len(sel)); i++ {
			sel = append(sel, i)
			if !rec(i+1, size) {
				return false
			}
			sel = sel[:len(sel)-1]
		}
		return true
	}
	for size := 0; size <= k; size++ {
		if !rec(0, size) {
			return false
		}
	}
	return true
}

// controlResult is the control-plane certification outcome.
type controlResult struct {
	// cases counts evaluated links; sources is the number of distinct
	// ingresses a stale set can be drawn from.
	cases   int64
	sources int
	// slack is min(cap − worst-case load) over evaluated links.
	slack      float64
	slackLink  topology.LinkID
	slackStale []topology.SwitchID
	worst      *Violation
}

// certifyControl verifies the control-plane guarantee exactly without
// enumerating stale sets: per flow and tunnel the adversary's best stale
// behavior is max(old behavior, new behavior) under the rate-limiter mode
// (the same upper bound the paper's Eqn 14 budget covers), so per link the
// worst choice of ≤ kc stale ingresses is simply the kc largest positive
// (stale − updated) contribution deltas. That top-kc selection equals the
// maximum over all C(n, ≤kc) stale sets — dominance collapses the
// enumeration entirely.
func (c *checker) certifyControl(prev *core.State) controlResult {
	res := controlResult{slack: math.Inf(1), slackLink: -1}

	type contrib struct {
		newL, staleL float64
	}
	perLink := make(map[topology.LinkID]map[topology.SwitchID]*contrib)
	srcSeen := map[topology.SwitchID]bool{}

	for _, f := range c.set.All() {
		if c.swOf[f.Src] < 0 || c.swOf[f.Dst] < 0 {
			continue // an endpoint is already down: nothing is sent
		}
		srcSeen[f.Src] = true
		alloc := c.st.Alloc[f]
		oldAlloc := prev.Alloc[f]
		oldW := weightsOf(oldAlloc)
		newW := weightsOf(alloc)
		for _, t := range c.set.Tunnels(f) {
			if c.tunBaseDead(t.Links, t.Switches) {
				continue
			}
			a := at(alloc, t.Index)
			var stale float64
			switch c.p.RateLimiter {
			case core.LimitersOrdered:
				stale = math.Max(at(oldAlloc, t.Index), a)
			case core.LimitersIndependent:
				stale = math.Max(math.Max(at(oldAlloc, t.Index), a),
					math.Max(at(oldW, t.Index)*c.st.Rate[f],
						at(newW, t.Index)*prev.Rate[f]))
			default: // LimitersSynced: old weights split the new rate
				stale = math.Max(at(oldW, t.Index)*c.st.Rate[f], a)
			}
			if a == 0 && stale == 0 {
				continue
			}
			for _, l := range t.Links {
				m := perLink[l]
				if m == nil {
					m = map[topology.SwitchID]*contrib{}
					perLink[l] = m
				}
				ct := m[f.Src]
				if ct == nil {
					ct = &contrib{}
					m[f.Src] = ct
				}
				ct.newL += a
				ct.staleL += stale
			}
		}
	}
	res.sources = len(srcSeen)

	// Deterministic link order so ties resolve the same way every run.
	links := make([]topology.LinkID, 0, len(perLink))
	for l := range perLink {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })

	type delta struct {
		src topology.SwitchID
		d   float64
	}
	for _, l := range links {
		res.cases++
		var base float64
		var deltas []delta
		for src, ct := range perLink[l] {
			base += ct.newL
			if d := ct.staleL - ct.newL; d > 0 {
				deltas = append(deltas, delta{src, d})
			}
		}
		sort.Slice(deltas, func(i, j int) bool {
			if deltas[i].d != deltas[j].d {
				return deltas[i].d > deltas[j].d
			}
			return deltas[i].src < deltas[j].src
		})
		load := base
		var stale []topology.SwitchID
		for i := 0; i < len(deltas) && i < c.p.Prot.Kc; i++ {
			load += deltas[i].d
			stale = append(stale, deltas[i].src)
		}
		cp := c.cap[l]
		if s := cp - load; s < res.slack {
			res.slack = s
			res.slackLink = l
			res.slackStale = sortedStale(stale)
		}
		if overThreshold(load, cp) {
			if over := load - cp; res.worst == nil || over > res.worst.Over {
				res.worst = &Violation{
					Plane:    "control",
					Link:     l,
					LinkName: c.linkName(l),
					Load:     load,
					Capacity: cp,
					Over:     over,
					Faults:   c.faultSet(nil, nil, sortedStale(stale)),
				}
			}
		}
	}
	return res
}

// tunBaseDead reports whether a tunnel crosses a pre-down element.
func (c *checker) tunBaseDead(links []topology.LinkID, switches []topology.SwitchID) bool {
	for _, l := range links {
		if c.physOf[l] < 0 {
			return true
		}
	}
	for _, v := range switches {
		if c.swOf[v] < 0 {
			return true
		}
	}
	return false
}
