package wire

import (
	"encoding/json"
	"strings"
	"testing"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

func TestParseDemandsRoundTrip(t *testing.T) {
	net := topology.Example4()
	in := []byte(`{"demands":[
		{"src":"s2","dst":"s4","demand":7},
		{"src":"s3","dst":"s4","demand":3},
		{"src":"s2","dst":"s4","demand":1}
	]}`)
	m, err := ParseDemands(net, in)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := net.SwitchByName("s2")
	s4, _ := net.SwitchByName("s4")
	if m[tunnel.Flow{Src: s2, Dst: s4}] != 8 {
		t.Fatalf("duplicate entries should sum: %v", m)
	}
	// Back out and re-parse.
	blob, err := json.Marshal(EncodeDemands(net, m))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseDemands(net, blob)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Total() != m.Total() {
		t.Fatalf("round trip lost demand: %v vs %v", m2.Total(), m.Total())
	}
}

func TestParseDemandsErrors(t *testing.T) {
	net := topology.Example4()
	cases := []struct {
		name string
		blob string
		want string
	}{
		{"unknown-src", `{"demands":[{"src":"nope","dst":"s4","demand":1}]}`, "unknown switch"},
		{"unknown-dst", `{"demands":[{"src":"s2","dst":"nope","demand":1}]}`, "unknown switch"},
		{"self", `{"demands":[{"src":"s2","dst":"s2","demand":1}]}`, "src == dst"},
		{"negative", `{"demands":[{"src":"s2","dst":"s4","demand":-1}]}`, "negative"},
		{"garbage", `{"demands": 7}`, "parsing"},
	}
	for _, tc := range cases {
		if _, err := ParseDemands(net, []byte(tc.blob)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestEncodeState(t *testing.T) {
	net := topology.Example4()
	s2, _ := net.SwitchByName("s2")
	s4, _ := net.SwitchByName("s4")
	f := tunnel.Flow{Src: s2, Dst: s4}
	set := tunnel.Layout(net, []tunnel.Flow{f}, tunnel.LayoutConfig{TunnelsPerFlow: 2})
	solver := core.NewSolver(net, set, core.Options{})
	demands := demand.Matrix{f: 14}
	st, _, err := solver.Solve(core.Input{Demands: demands})
	if err != nil {
		t.Fatal(err)
	}
	sf := EncodeState(net, set, demands, st)
	if sf.TotalDemand != 14 || sf.TotalRate < 14-1e-6 {
		t.Fatalf("totals wrong: %+v", sf)
	}
	if len(sf.Flows) != 1 || len(sf.Flows[0].Tunnels) != 2 {
		t.Fatalf("structure wrong: %+v", sf)
	}
	var allocSum, weightSum float64
	for _, ta := range sf.Flows[0].Tunnels {
		allocSum += ta.Alloc
		weightSum += ta.Weight
		if len(ta.Path) < 2 || ta.Path[0] != "s2" {
			t.Fatalf("path wrong: %v", ta.Path)
		}
	}
	if allocSum < 14-1e-6 {
		t.Fatalf("alloc sum %v < rate", allocSum)
	}
	if weightSum < 1-1e-9 || weightSum > 1+1e-9 {
		t.Fatalf("weights sum to %v", weightSum)
	}
}
