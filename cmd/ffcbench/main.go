// Command ffcbench regenerates the paper's tables and figures (see
// DESIGN.md's per-experiment index). Examples:
//
//	ffcbench -exp all
//	ffcbench -exp fig13,fig14 -net lnet -sites 10 -intervals 48
//	ffcbench -exp table2 -net both
//	ffcbench -exp table2 -net snet -stats          # + solver counters, BENCH_snet.json
//	ffcbench -exp all -debug-addr localhost:6060   # live pprof/expvar
//
// Output is text: aligned tables for bar/line figures and "x y" series for
// CDFs, labelled with the corresponding paper artifact. With -stats the
// run additionally times an S-Net-style verify/solve micro-pass and writes
// machine-readable BENCH_<net>.json (see internal/obs) — the same format
// the CI perf gate (cmd/benchgate) consumes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/experiments"
	"ffc/internal/faults"
	"ffc/internal/metrics"
	"ffc/internal/obs"
	"ffc/internal/parallel"
	"ffc/internal/sim"
	"ffc/internal/topology"
)

var allExperiments = []string{
	"fig1a", "fig1b", "fig2to5", "fig6", "fig11", "fig12", "table2",
	"fig13", "fig14", "fig15", "fig16", "ablation_encoding", "ablation_tunnels", "ablation_rescaling",
}

func main() {
	var (
		exp        = flag.String("exp", "all", "comma-separated experiment ids, or 'all' ("+strings.Join(allExperiments, ",")+")")
		netKind    = flag.String("net", "lnet", "network: lnet, snet, or both")
		sites      = flag.Int("sites", 8, "L-Net sites (the real L-Net is ~50; larger is slower)")
		intervals  = flag.Int("intervals", 24, "TE intervals in the demand series")
		seed       = flag.Int64("seed", 1, "random seed")
		tunnels    = flag.Int("tunnels", 6, "tunnels per flow")
		quick      = flag.Bool("quick", false, "shrink everything for a fast smoke run")
		par        = flag.Int("parallel", 0, "worker count for parallel stages, including LP constraint emission (<=0 = all cores, 1 = serial)")
		warm       = flag.Bool("warm", false, "warm-start serial interval re-solves from the previous basis across the harness")
		template   = flag.Bool("template", true, "reuse LP model templates across interval re-solves (rebind bounds/RHS instead of re-formulating); -template=false forces scratch builds")
		compare    = flag.Bool("compare-serial", false, "after the run, repeat with -parallel 1 and print a wall-clock speedup table")
		stats      = flag.Bool("stats", false, "enable instrumentation: print solver counters and a latency breakdown, run a verify/solve micro-benchmark, and write BENCH_<net>.json")
		benchJSON  = flag.String("bench-json", "", "override the BENCH output path (default BENCH_<net>.json per environment; implies -stats semantics for the file)")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/obs on this address (e.g. localhost:6060)")
		deadline   = flag.Duration("solver-deadline", 0, "per-interval TE solve budget across the harness; a missed solve degrades the interval to the last-good plan (0 = unbounded)")
		injectSpec = flag.String("inject-solver", "", "inject controller faults into every sim, e.g. timeout=0.1,crash=0.01,stale=0.02; tags BENCH entries 'degraded'")
	)
	flag.Parse()

	injected, err := faults.ParseSolverFaults(*injectSpec)
	if err != nil {
		fatalf("-inject-solver: %v", err)
	}
	degradedRun := *deadline > 0 || injected.Enabled()

	if *stats {
		obs.Enable()
	}
	if *debugAddr != "" {
		addr, err := obs.Serve(*debugAddr)
		if err != nil {
			fatalf("debug server: %v", err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/obs (pprof, vars)\n", addr)
	}

	if *quick {
		*sites, *intervals, *tunnels = 6, 6, 4
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, e := range allExperiments {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			e = strings.TrimSpace(e)
			if e != "" {
				want[e] = true
			}
		}
	}
	for e := range want {
		if !contains(allExperiments, e) {
			fatalf("unknown experiment %q; known: %s", e, strings.Join(allExperiments, ", "))
		}
	}

	var envs []*experiments.Env
	needEnv := false
	for e := range want {
		if e != "fig6" && e != "fig11" && e != "fig2to5" {
			needEnv = true
		}
	}
	// SIGINT/SIGTERM cancel the sim-backed experiments through the solver
	// budget path; interrupted figures report partial aggregates and the
	// run proceeds to whatever output it can still write.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if needEnv {
		cfg := experiments.EnvConfig{Sites: *sites, Intervals: *intervals, Seed: *seed, TunnelsPerFlow: *tunnels, Parallelism: *par, WarmStart: *warm, SolverDeadline: *deadline, SolverFaults: injected,
			BuildWorkers: experiments.BuildWorkersFor(*par), NoTemplate: !*template, Ctx: ctx}
		if *netKind == "lnet" || *netKind == "both" {
			fmt.Fprintf(os.Stderr, "building L-Net environment (%d sites, %d intervals)...\n", *sites, *intervals)
			env, err := experiments.NewLNet(cfg)
			if err != nil {
				fatalf("%v", err)
			}
			envs = append(envs, env)
		}
		if *netKind == "snet" || *netKind == "both" {
			fmt.Fprintln(os.Stderr, "building S-Net environment...")
			env, err := experiments.NewSNet(cfg)
			if err != nil {
				fatalf("%v", err)
			}
			envs = append(envs, env)
		}
		if len(envs) == 0 {
			fatalf("unknown -net %q (want lnet, snet, or both)", *netKind)
		}
	}

	pass := func(out io.Writer, sw *metrics.Stopwatch, verbose bool) {
		run := func(id string, fn func() error) {
			if !want[id] {
				return
			}
			t0 := time.Now()
			if verbose {
				fmt.Fprintf(os.Stderr, "running %s...\n", id)
			}
			if err := fn(); err != nil {
				fatalf("%s: %v", id, err)
			}
			d := time.Since(t0)
			sw.Record(id, d)
			if verbose {
				fmt.Fprintf(os.Stderr, "  %s done in %v\n", id, d.Round(time.Millisecond))
			}
			fmt.Fprintln(out)
		}

		run("fig2to5", func() error { return experiments.Fig2to5(out) })
		run("fig6", func() error { experiments.Fig6(out); return nil })
		run("fig11", func() error { return experiments.Fig11(out) })
		for _, env := range envs {
			env := env
			run("fig1a", func() error { _, err := experiments.Fig1a(env, out); return err })
			run("fig1b", func() error { _, err := experiments.Fig1b(env, out); return err })
			run("fig12", func() error { _, err := experiments.Fig12(env, out); return err })
			run("table2", func() error { _, err := experiments.Table2(env, out); return err })
			run("fig13", func() error { _, err := experiments.Fig13(env, out, nil, nil); return err })
			run("fig14", func() error {
				_, err := experiments.Fig14(env, out, faults.Realistic())
				return err
			})
			run("fig15", func() error { _, err := experiments.Fig15(env, out, nil, 0); return err })
			run("fig16", func() error { _, err := experiments.Fig16(env, out, 0); return err })
			run("ablation_encoding", func() error { _, err := experiments.AblationEncoding(env, out); return err })
			run("ablation_tunnels", func() error { _, err := experiments.AblationTunnels(env, out); return err })
			run("ablation_rescaling", func() error { _, err := experiments.AblationRescaling(env, out); return err })
		}
	}

	start := time.Now()
	var parTimes metrics.Stopwatch
	pass(os.Stdout, &parTimes, true)
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "interrupted after %v: figure aggregates above cover only the completed intervals\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Fprintf(os.Stderr, "all done in %v\n", time.Since(start).Round(time.Millisecond))
	}

	workers := parallel.Workers(*par)
	var serTimes *metrics.Stopwatch
	if *compare {
		if workers == 1 {
			// The main pass already ran serially; re-running it would time
			// the identical configuration twice. Reuse its timings as the
			// serial numbers so downstream consumers (the -stats BENCH
			// entries) still see a serial column without a duplicate run.
			fmt.Println("# wall-clock: -compare-serial skipped — the run was already serial (-parallel=1), nothing to compare")
			serTimes = &parTimes
		} else {
			fmt.Fprintln(os.Stderr, "re-running serially (-parallel 1) for the speedup table...")
			for _, env := range envs {
				env.Parallelism = 1
			}
			serTimes = &metrics.Stopwatch{}
			pass(io.Discard, serTimes, false)
			fmt.Println("# wall-clock: serial vs parallel")
			fmt.Print(metrics.RenderSpeedup(serTimes, &parTimes))
			for _, env := range envs {
				env.Parallelism = *par
			}
		}
	}

	if *stats || *benchJSON != "" {
		if len(envs) == 0 {
			fmt.Fprintln(os.Stderr, "no environment built (-exp selected only synthetic figures); skipping the -stats micro-benchmark")
		}
		for i, env := range envs {
			path := *benchJSON
			if path == "" || len(envs) > 1 {
				path = "BENCH_" + envLabel(env) + ".json"
				if *benchJSON != "" && i == 0 {
					fmt.Fprintln(os.Stderr, "-bench-json ignored: multiple environments, writing per-env BENCH files")
				}
			}
			bf, err := statsPass(env, &parTimes, serTimes, workers)
			if err != nil {
				fatalf("stats micro-benchmark (%s): %v", env.Name, err)
			}
			if degradedRun {
				// The experiment timings above ran under fault injection or a
				// solve deadline; mark every entry so the CI gate skips them.
				for i := range bf.Benchmarks {
					bf.Benchmarks[i].Tags = append(bf.Benchmarks[i].Tags, obs.BenchTagDegraded)
				}
			}
			if err := obs.WriteBenchFile(path, bf); err != nil {
				fatalf("writing %s: %v", path, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", path, len(bf.Benchmarks))
		}
		fmt.Fprintln(os.Stderr, "--- instrumentation dump (counters, spans) ---")
		obs.Default().WriteText(os.Stderr)
	}
}

// envLabel maps "S-Net" → "snet" for file names and "SNet" bench tags.
func envLabel(env *experiments.Env) string {
	return strings.ToLower(strings.ReplaceAll(env.Name, "-", ""))
}

func envTag(env *experiments.Env) string {
	return strings.ReplaceAll(env.Name, "-", "")
}

// numFaultCases counts link-failure combinations of size 0..ke over the
// physical links — the data-plane verifier's enumeration size.
func numFaultCases(net *topology.Network, ke int) int64 {
	phys := 0
	for _, l := range net.Links {
		if l.Twin == topology.None || l.ID < l.Twin {
			phys++
		}
	}
	total, choose := int64(0), int64(1)
	for s := 0; s <= ke; s++ {
		if s > 0 {
			choose = choose * int64(phys-s+1) / int64(s)
		}
		total += choose
	}
	return total
}

// statsPass runs the instrumented micro-benchmark behind -stats: one plain
// and one FFC (ke=2) TE solve, then the ke=2 data-plane verification both
// serially and in parallel — the same workload as the repo's
// BenchmarkVerifyDataPlaneSNet, with matching normalized names so the CI
// gate compares them directly. Experiment wall-clock timings from the main
// pass (and the -compare-serial speedups, when present) ride along.
// workers is the effective -parallel value: at 1 the run is serial, so the
// "parallel" verify leg would repeat the serial one and is skipped.
func statsPass(env *experiments.Env, parTimes, serTimes *metrics.Stopwatch, workers int) (*obs.BenchFile, error) {
	const ke = 2
	tag := envTag(env)
	fmt.Fprintf(os.Stderr, "stats micro-benchmark on %s (ke=%d)...\n", env.Name, ke)
	solver := core.NewSolver(env.Net, env.Tun, env.Opts)
	demands := sim.ScaleSeries(env.Series, env.Scale1)[0]

	bf := &obs.BenchFile{Schema: obs.BenchSchema, Label: envLabel(env)}

	// Plain TE solve.
	t0 := time.Now()
	st, plainStats, err := solver.Solve(core.Input{Demands: demands})
	if err != nil {
		return nil, err
	}
	bf.Benchmarks = append(bf.Benchmarks, obs.BenchEntry{
		Name: "ffcbench/" + bf.Label + "/solve_plain", NsPerOp: float64(time.Since(t0).Nanoseconds()), Ops: 1,
		Counters: map[string]int64{
			"iters":        int64(plainStats.LP.Iters),
			"reinversions": int64(plainStats.LP.Reinversions),
			"basis_nnz":    int64(plainStats.LP.BasisNnz),
		},
	})

	// FFC solve at ke=2 (data-plane protection).
	t0 = time.Now()
	_, ffcStats, err := solver.Solve(core.Input{Demands: demands, Prot: core.Protection{Ke: ke}})
	if err != nil {
		return nil, err
	}
	ffcNs := time.Since(t0)
	bf.Benchmarks = append(bf.Benchmarks, obs.BenchEntry{
		Name: "ffcbench/" + bf.Label + "/solve_ffc_ke2", NsPerOp: float64(ffcNs.Nanoseconds()), Ops: 1,
		Counters: map[string]int64{
			"iters":         int64(ffcStats.LP.Iters),
			"phase1_iters":  int64(ffcStats.LP.Phase1Iters),
			"reinversions":  int64(ffcStats.LP.Reinversions),
			"devex_resets":  int64(ffcStats.LP.DevexResets),
			"bound_flips":   int64(ffcStats.LP.BoundFlips),
			"basis_nnz":     int64(ffcStats.LP.BasisNnz),
			"presolve_rows": int64(ffcStats.LP.PresolveRows),
			"presolve_cols": int64(ffcStats.LP.PresolveCols),
			"lp_vars":       int64(ffcStats.Vars),
			"lp_cons":       int64(ffcStats.Constraints),
		},
	})
	fmt.Fprintf(os.Stderr, "  solve(ke=%d): %v  build %v  iters %d (phase1 %d)  reinversions %d  devex resets %d  basis nnz %d\n",
		ke, ffcStats.SolveTime.Round(time.Millisecond), ffcStats.BuildTime.Round(time.Millisecond),
		ffcStats.LP.Iters, ffcStats.LP.Phase1Iters, ffcStats.LP.Reinversions, ffcStats.LP.DevexResets, ffcStats.LP.BasisNnz)

	// Warm vs cold interval re-solves: a short serial chain of FFC solves
	// over a 5-minute-cadence drift series (σ = 5% per-interval noise,
	// scaled to the calibrated load), once starting each interval from
	// scratch and once carrying the previous interval's basis
	// (core.Session) — the workload of BenchmarkResolveWarmVsCold, with
	// matching counters so the CI gate can watch the iteration savings.
	// Mice classification is off for both modes: it re-buckets flows by
	// demand every interval, changing the LP's column set and forcing a
	// model rebuild that neither mode could reuse.
	gen := demand.Generate(env.Net, demand.Config{Intervals: 6, NoiseSigma: 0.05}, rand.New(rand.NewSource(61)))
	ref := sim.ScaleSeries(env.Series, env.Scale1)[0].Total()
	chain := sim.ScaleSeries(gen, ref/gen[0].Total())
	resolveOpts := env.Opts
	resolveOpts.MiceFraction = 0
	resolveSolver := core.NewSolver(env.Net, env.Tun, resolveOpts)
	resolve := func(warmStart bool) (time.Duration, int64, int64, error) {
		var elapsed time.Duration
		var iters, p1 int64
		solve := resolveSolver.Solve
		if warmStart {
			solve = resolveSolver.NewSession().Solve
		}
		for i, dem := range chain {
			if i == 0 {
				continue // interval 0 is the cold build either way
			}
			t0 := time.Now()
			_, s, err := solve(core.Input{Demands: dem, Prot: core.Protection{Ke: ke}})
			if err != nil {
				return 0, 0, 0, err
			}
			elapsed += time.Since(t0)
			iters += int64(s.LP.Iters)
			p1 += int64(s.LP.Phase1Iters)
		}
		return elapsed, iters, p1, nil
	}
	coldNs, coldIters, coldP1, err := resolve(false)
	if err != nil {
		return nil, err
	}
	warmNs, warmIters, warmP1, err := resolve(true)
	if err != nil {
		return nil, err
	}
	n := int64(len(chain) - 1)
	bf.Benchmarks = append(bf.Benchmarks,
		obs.BenchEntry{Name: "ffcbench/" + bf.Label + "/resolve_cold", NsPerOp: float64(coldNs.Nanoseconds()) / float64(n), Ops: n,
			Counters: map[string]int64{"iters": coldIters, "phase1_iters": coldP1}},
		obs.BenchEntry{Name: "ffcbench/" + bf.Label + "/resolve_warm", NsPerOp: float64(warmNs.Nanoseconds()) / float64(n), Ops: n,
			Counters: map[string]int64{"iters": warmIters, "phase1_iters": warmP1},
			Speedup:  metrics.Speedup(coldNs, warmNs)},
	)
	fmt.Fprintf(os.Stderr, "  resolve ×%d (ke=%d): cold %v / %d iters  warm %v / %d iters  (%.2fx time, %.2fx iters)\n",
		n, ke, coldNs.Round(time.Millisecond), coldIters, warmNs.Round(time.Millisecond), warmIters,
		metrics.Speedup(coldNs, warmNs), float64(coldIters)/float64(max64(warmIters, 1)))

	// Model-build cold vs warm on the same drift chain, timing formulation
	// only: cold builds every interval's LP from scratch (NewTemplate is
	// exactly a scratch formulate), warm freezes one ModelTemplate and
	// re-instantiates it per interval by rewriting bounds/RHS/objective
	// coefficients in place.
	buildIn := func(i int) core.Input {
		return core.Input{Demands: chain[i], Prot: core.Protection{Ke: ke}}
	}
	t0 = time.Now()
	for i := 1; i < len(chain); i++ {
		if _, err := resolveSolver.NewTemplate(buildIn(i)); err != nil {
			return nil, err
		}
	}
	buildCold := time.Since(t0)
	tmpl, err := resolveSolver.NewTemplate(buildIn(0))
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	for i := 1; i < len(chain); i++ {
		if err := tmpl.Instantiate(buildIn(i)); err != nil {
			return nil, err
		}
	}
	buildWarm := time.Since(t0)
	sizeCounters := map[string]int64{"lp_vars": int64(tmpl.Vars()), "lp_cons": int64(tmpl.Constraints())}
	bf.Benchmarks = append(bf.Benchmarks,
		obs.BenchEntry{Name: "ffcbench/" + bf.Label + "/modelbuild_cold", NsPerOp: float64(buildCold.Nanoseconds()) / float64(n), Ops: n,
			Counters: sizeCounters},
		obs.BenchEntry{Name: "ffcbench/" + bf.Label + "/modelbuild_warm", NsPerOp: float64(buildWarm.Nanoseconds()) / float64(n), Ops: n,
			Counters: sizeCounters, Speedup: metrics.Speedup(buildCold, buildWarm)},
	)
	fmt.Fprintf(os.Stderr, "  modelbuild ×%d (ke=%d, %d vars, %d cons): cold %v  warm %v  (%.2fx)\n",
		n, ke, tmpl.Vars(), tmpl.Constraints(), buildCold.Round(time.Millisecond), buildWarm.Round(time.Millisecond),
		metrics.Speedup(buildCold, buildWarm))

	// Data-plane verification, serial then parallel, on the plain state —
	// the repo benchmark's workload (BenchmarkVerifyDataPlaneSNet). With
	// -parallel=1 the parallel leg would be the serial leg re-run under
	// another name, so only the serial entry is emitted.
	cases := numFaultCases(env.Net, ke)
	t0 = time.Now()
	core.VerifyDataPlaneN(env.Net, env.Tun, st, ke, 0, nil, 1)
	serial := time.Since(t0)
	bf.Benchmarks = append(bf.Benchmarks,
		obs.BenchEntry{Name: "VerifyDataPlane" + tag + "/serial", NsPerOp: float64(serial.Nanoseconds()), Ops: 1, Cases: cases})
	if workers == 1 {
		fmt.Fprintf(os.Stderr, "  verify(ke=%d, %d cases): serial %v  (parallel leg skipped at -parallel=1)\n",
			ke, cases, serial.Round(time.Millisecond))
	} else {
		t0 = time.Now()
		core.VerifyDataPlaneN(env.Net, env.Tun, st, ke, 0, nil, workers)
		par := time.Since(t0)
		bf.Benchmarks = append(bf.Benchmarks,
			obs.BenchEntry{Name: "VerifyDataPlane" + tag + "/parallel", NsPerOp: float64(par.Nanoseconds()), Ops: 1, Cases: cases,
				Speedup: metrics.Speedup(serial, par)})
		fmt.Fprintf(os.Stderr, "  verify(ke=%d, %d cases): serial %v  parallel %v  speedup %.2fx\n",
			ke, cases, serial.Round(time.Millisecond), par.Round(time.Millisecond), metrics.Speedup(serial, par))
	}

	// Experiment wall-clock from the main pass, with serial/parallel
	// speedups when -compare-serial ran.
	for _, id := range parTimes.Names() {
		e := obs.BenchEntry{Name: "ffcbench/exp/" + id, NsPerOp: float64(parTimes.Get(id).Nanoseconds()), Ops: 1}
		if serTimes != nil {
			e.Speedup = metrics.Speedup(serTimes.Get(id), parTimes.Get(id))
		}
		bf.Benchmarks = append(bf.Benchmarks, e)
	}

	bf.Counters = obs.Default().CounterValues()
	return bf, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ffcbench: "+format+"\n", args...)
	os.Exit(1)
}
