package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var publishOnce sync.Once

// Handler returns an http.Handler exposing, on its own mux (nothing
// leaks onto http.DefaultServeMux):
//
//	/debug/pprof/...  net/http/pprof profiles
//	/debug/vars       expvar JSON (includes the "ffc" registry snapshot)
//	/debug/obs        text dump of the Default registry
//	/debug/obs.json   JSON snapshot of the Default registry
func Handler() http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("ffc", expvar.Func(func() any { return def.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		def.WriteText(w)
	})
	mux.HandleFunc("/debug/obs.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		def.WriteJSON(w)
	})
	return mux
}

// Serve starts the debug server on addr (e.g. "localhost:6060", or
// "localhost:0" for an ephemeral port) in a background goroutine and
// returns the bound address. The listener lives for the process
// lifetime; binaries call this once behind their -debug-addr flag.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, Handler())
	return ln.Addr().String(), nil
}
