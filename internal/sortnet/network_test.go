package sortnet

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBubbleIsSortingNetwork(t *testing.T) {
	for n := 1; n <= 10; n++ {
		if !IsSortingNetwork(Bubble(n), n) {
			t.Fatalf("Bubble(%d) does not sort", n)
		}
	}
}

func TestOddEvenMergeSortIsSortingNetwork(t *testing.T) {
	for n := 1; n <= 12; n++ {
		if !IsSortingNetwork(OddEvenMergeSort(n), n) {
			t.Fatalf("OddEvenMergeSort(%d) does not sort", n)
		}
	}
}

func TestOddEvenCheaperThanBubble(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		if len(OddEvenMergeSort(n)) >= len(Bubble(n)) {
			t.Fatalf("n=%d: odd-even %d comparators ≥ bubble %d", n,
				len(OddEvenMergeSort(n)), len(Bubble(n)))
		}
	}
}

func TestBubblePartialTopM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		m := 1 + rng.Intn(n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		out := BubblePartial(n, m).Apply(vals)
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		// Positions n−m … n−1 must hold the m largest in sorted order.
		top := m
		if top > n-1 {
			top = n - 1 // m = n and m = n−1 partial networks coincide
		}
		for j := 0; j < top; j++ {
			if out[n-1-j] != want[n-1-j] {
				t.Fatalf("n=%d m=%d: position %d = %v, want %v (vals %v)",
					n, m, n-1-j, out[n-1-j], want[n-1-j], vals)
			}
		}
	}
}

func TestBubblePartialComparatorCount(t *testing.T) {
	// m passes over n wires: Σ_{p<m} (n−1−p) comparators.
	for _, tc := range []struct{ n, m, want int }{
		{4, 1, 3}, {4, 2, 5}, {4, 3, 6}, {10, 2, 17},
	} {
		if got := len(BubblePartial(tc.n, tc.m)); got != tc.want {
			t.Errorf("BubblePartial(%d,%d) = %d comparators, want %d", tc.n, tc.m, got, tc.want)
		}
	}
}

func TestApplyDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = Bubble(3).Apply(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Apply mutated its input: %v", in)
	}
}

// Property: sorting network output is a sorted permutation of the input.
func TestNetworkSortsPermutationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 16 {
			return true
		}
		out := OddEvenMergeSort(len(raw)).Apply(raw)
		if !sort.Float64sAreSorted(out) {
			return false
		}
		in := append([]float64(nil), raw...)
		sort.Float64s(in)
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
