// Command benchgate is the CI perf-regression gate. It parses `go test
// -bench` output, re-emits it as a machine-readable BENCH_*.json (the
// repo's stable benchmark format, see internal/obs), and compares the
// results against committed BENCH_*.json baselines:
//
//	go test -run '^$' -bench . -benchtime 1x ./internal/core ./internal/lp |
//	    benchgate -out BENCH_ci.json
//
// The gate fails (exit 1) when any benchmark's ns/op exceeds -max-ratio
// times its baseline. The baseline per benchmark is the MAX across every
// matching file (baselines recorded on different machines must not trip
// the gate on machine variance); benchmarks with no baseline entry are
// reported as new and never gated, and entries tagged "degraded"
// (recorded under solver-fault injection or a solve deadline, see
// ffcbench -inject-solver) are ignored on both sides. With -record the
// compare step is skipped — use it to (re)generate a baseline file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ffc/internal/obs"
)

func main() {
	var (
		in       = flag.String("in", "-", "go-test bench output to parse ('-' = stdin)")
		out      = flag.String("out", "BENCH_ci.json", "BENCH json to write for this run ('' = don't write)")
		label    = flag.String("label", "ci", "label recorded in the output file")
		baseline = flag.String("baseline", "BENCH_*.json", "glob of committed baseline files (the -out file is excluded)")
		maxRatio = flag.Float64("max-ratio", 2.0, "fail when current ns/op exceeds this multiple of the baseline")
		record   = flag.Bool("record", false, "write -out and skip the regression comparison")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		src = f
	}
	cur, err := obs.ParseGoBench(src, *label)
	if err != nil {
		fatalf("parsing bench output: %v", err)
	}
	if len(cur.Benchmarks) == 0 {
		fatalf("no benchmark results found in %s", *in)
	}
	if *out != "" {
		if err := obs.WriteBenchFile(*out, cur); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(cur.Benchmarks))
	}
	if *record {
		return
	}

	paths, err := filepath.Glob(*baseline)
	if err != nil {
		fatalf("bad -baseline glob: %v", err)
	}
	var bases []*obs.BenchFile
	for _, p := range paths {
		if sameFile(p, *out) {
			continue
		}
		b, err := obs.ReadBenchFile(p)
		if err != nil {
			fatalf("baseline %s: %v", p, err)
		}
		fmt.Printf("baseline: %s (label %q, %d benchmarks)\n", p, b.Label, len(b.Benchmarks))
		bases = append(bases, b)
	}
	if len(bases) == 0 {
		fmt.Printf("no baseline files match %q; nothing to gate against\n", *baseline)
		return
	}

	regs, matched, unmatched, ignored := obs.CompareBench(bases, cur, *maxRatio)
	fmt.Printf("gate: %d benchmarks matched a baseline, %d new, %d degraded (ignored)\n",
		len(matched), len(unmatched), len(ignored))
	for _, n := range unmatched {
		fmt.Printf("  new (not gated): %s\n", n)
	}
	for _, n := range ignored {
		fmt.Printf("  degraded (not gated): %s\n", n)
	}
	if len(regs) == 0 {
		fmt.Printf("OK: no benchmark exceeded %.1fx its baseline\n", *maxRatio)
		return
	}
	fmt.Printf("FAIL: %d benchmark(s) regressed beyond %.1fx:\n", len(regs), *maxRatio)
	for _, r := range regs {
		fmt.Printf("  %-40s baseline %.0f ns/op, now %.0f ns/op (%.2fx)\n",
			r.Name, r.BaselineNs, r.CurrentNs, r.Ratio)
	}
	os.Exit(1)
}

// sameFile reports whether two paths name the same file lexically (enough
// for excluding the gate's own output from the baseline set).
func sameFile(a, b string) bool {
	if b == "" {
		return false
	}
	ca, err1 := filepath.Abs(a)
	cb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && ca == cb
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
