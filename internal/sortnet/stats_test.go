package sortnet

import (
	"testing"

	"ffc/internal/lp"
)

// TestComparatorCount pins the comparator arithmetic of the partial
// bubble network: pass p over the remaining N−p wires uses N−1−p
// compare-swaps, so M passes over N inputs emit Σ_{p<M} (N−1−p), each
// contributing 2 vars and 3 constraints.
func TestComparatorCount(t *testing.T) {
	const N, M = 5, 2
	m := lp.NewModel()
	exprs := make([]*lp.Expr, N)
	for i := range exprs {
		v := m.NewVar("x", 0, 10)
		exprs[i] = lp.NewExpr().Add(1, v)
	}
	res := LargestSum(m, exprs, M, "net")
	want := (N - 1) + (N - 2) // 7
	if res.Comparators != want {
		t.Fatalf("Comparators = %d, want %d", res.Comparators, want)
	}
	if res.Vars != 2*want || res.Constraints != 3*want {
		t.Fatalf("vars=%d cons=%d, want %d and %d", res.Vars, res.Constraints, 2*want, 3*want)
	}
	if cmp := TopKCompact(m, exprs, M, "k"); cmp.Comparators != 0 {
		t.Fatalf("compact encoding reports %d comparators, want 0", cmp.Comparators)
	}
}
