package topology

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
)

// ParseGraphML reads a GraphML topology — the format of the Internet
// Topology Zoo, whose real WAN graphs make good substrates for FFC
// experiments. Node latitude/longitude and labels are honored when present
// (keys named Latitude/Longitude/label, as in the Zoo); every edge becomes
// a duplex link. Edge capacities use the LinkSpeedRaw key (bits/s, scaled
// to Gbps) when present, else defaultCapacity.
func ParseGraphML(r io.Reader, defaultCapacity float64) (*Network, error) {
	if defaultCapacity <= 0 {
		defaultCapacity = 10
	}
	type xmlData struct {
		Key   string `xml:"key,attr"`
		Value string `xml:",chardata"`
	}
	type xmlNode struct {
		ID   string    `xml:"id,attr"`
		Data []xmlData `xml:"data"`
	}
	type xmlEdge struct {
		Source string    `xml:"source,attr"`
		Target string    `xml:"target,attr"`
		Data   []xmlData `xml:"data"`
	}
	type xmlKey struct {
		ID   string `xml:"id,attr"`
		Name string `xml:"attr.name,attr"`
		For  string `xml:"for,attr"`
	}
	type xmlGraph struct {
		Name  string    `xml:"id,attr"`
		Nodes []xmlNode `xml:"node"`
		Edges []xmlEdge `xml:"edge"`
	}
	type xmlDoc struct {
		Keys  []xmlKey `xml:"key"`
		Graph xmlGraph `xml:"graph"`
	}

	var doc xmlDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("topology: parsing GraphML: %w", err)
	}
	if len(doc.Graph.Nodes) == 0 {
		return nil, fmt.Errorf("topology: GraphML has no nodes")
	}

	keyName := map[string]string{}
	for _, k := range doc.Keys {
		keyName[k.ID] = k.Name
	}
	attr := func(data []xmlData, name string) (string, bool) {
		for _, d := range data {
			if keyName[d.Key] == name {
				return d.Value, true
			}
		}
		return "", false
	}

	name := doc.Graph.Name
	if name == "" {
		name = "graphml"
	}
	net := NewNetwork(name)
	ids := map[string]SwitchID{}
	for _, n := range doc.Graph.Nodes {
		label := n.ID
		if l, ok := attr(n.Data, "label"); ok && l != "" {
			label = l
		}
		var lat, lon float64
		var err error
		if v, ok := attr(n.Data, "Latitude"); ok {
			if lat, err = strconv.ParseFloat(v, 64); err != nil {
				return nil, fmt.Errorf("topology: GraphML node %q: bad Latitude %q: %w", n.ID, v, err)
			}
		}
		if v, ok := attr(n.Data, "Longitude"); ok {
			if lon, err = strconv.ParseFloat(v, 64); err != nil {
				return nil, fmt.Errorf("topology: GraphML node %q: bad Longitude %q: %w", n.ID, v, err)
			}
		}
		if _, dup := ids[n.ID]; dup {
			return nil, fmt.Errorf("topology: duplicate GraphML node id %q", n.ID)
		}
		ids[n.ID] = net.AddSwitch(label, label, lat, lon)
	}
	seen := map[[2]SwitchID]bool{}
	for i, e := range doc.Graph.Edges {
		a, ok := ids[e.Source]
		if !ok {
			return nil, fmt.Errorf("topology: edge %d references unknown node %q", i, e.Source)
		}
		b, ok := ids[e.Target]
		if !ok {
			return nil, fmt.Errorf("topology: edge %d references unknown node %q", i, e.Target)
		}
		if a == b {
			continue // the Zoo contains occasional self-loops; drop them
		}
		key := [2]SwitchID{a, b}
		if a > b {
			key = [2]SwitchID{b, a}
		}
		if seen[key] {
			continue // parallel edges collapse onto one duplex link
		}
		seen[key] = true
		capacity := defaultCapacity
		if v, ok := attr(e.Data, "LinkSpeedRaw"); ok {
			if bps, err := strconv.ParseFloat(v, 64); err == nil && bps > 0 {
				capacity = bps / 1e9 // Gbps
			}
		}
		net.AddDuplex(a, b, capacity)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}
