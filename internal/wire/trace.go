package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// TraceRecord is one installed plan in an NDJSON interval trace — the
// offline-replayable history ffcd (per install) and ffcsim (per interval)
// can emit, and cmd/ffccheck certifies record by record. Everything is
// keyed by switch names so a trace outlives process-local IDs.
type TraceRecord struct {
	// Seq orders installs; ffcsim uses the 1-based interval number.
	Seq int64 `json:"seq"`
	// Time stamps the install (zero in simulated traces).
	Time time.Time `json:"time,omitzero"`
	// Class labels the priority class in multi-priority sim traces;
	// replay chains prev-state per class.
	Class string `json:"class,omitempty"`

	// Kc/Ke/Kv is the protection level the plan was computed for.
	Kc int `json:"kc"`
	Ke int `json:"ke"`
	Kv int `json:"kv"`

	// Degraded carries the degradation reason when the plan is a
	// last-good fallback rather than a fresh solve; degraded plans only
	// promise congestion-freedom under the faults they degraded around,
	// so replay certifies them at zero protection.
	Degraded string `json:"degraded,omitempty"`
	// Restored marks a plan served from a boot snapshot.
	Restored bool `json:"restored,omitempty"`

	// DownLinks / DownSwitches are the elements known failed at install
	// (physical links as name pairs).
	DownLinks    [][2]string `json:"down_links,omitempty"`
	DownSwitches []string    `json:"down_switches,omitempty"`

	// State is the installed configuration.
	State StateFile `json:"state"`
}

// WriteTraceRecord appends one NDJSON line.
func WriteTraceRecord(w io.Writer, rec *TraceRecord) error {
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wire: encoding trace record: %w", err)
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// ParseTraceRecord decodes one NDJSON line.
func ParseTraceRecord(line []byte) (*TraceRecord, error) {
	var rec TraceRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil, fmt.Errorf("wire: parsing trace record: %w", err)
	}
	if rec.Kc < 0 || rec.Ke < 0 || rec.Kv < 0 {
		return nil, fmt.Errorf("wire: trace record seq=%d: negative protection (%d,%d,%d)",
			rec.Seq, rec.Kc, rec.Ke, rec.Kv)
	}
	return &rec, nil
}

// ResolveDownSets maps a record's named down elements onto a topology,
// failing both directions of each physical link. Unknown names error.
func ResolveDownSets(net *topology.Network, downLinks [][2]string, downSwitches []string) (map[topology.LinkID]bool, map[topology.SwitchID]bool, error) {
	dl := map[topology.LinkID]bool{}
	for i, pair := range downLinks {
		src, ok1 := net.SwitchByName(pair[0])
		dst, ok2 := net.SwitchByName(pair[1])
		if !ok1 || !ok2 {
			return nil, nil, fmt.Errorf("wire: down link %d: unknown switch %q/%q", i, pair[0], pair[1])
		}
		l := net.FindLink(src, dst)
		if l == topology.None {
			l = net.FindLink(dst, src)
		}
		if l == topology.None {
			return nil, nil, fmt.Errorf("wire: down link %d: no link %s-%s", i, pair[0], pair[1])
		}
		dl[l] = true
		if tw := net.Links[l].Twin; tw != topology.None {
			dl[tw] = true
		}
	}
	ds := map[topology.SwitchID]bool{}
	for i, name := range downSwitches {
		sw, ok := net.SwitchByName(name)
		if !ok {
			return nil, nil, fmt.Errorf("wire: down switch %d: unknown switch %q", i, name)
		}
		ds[sw] = true
	}
	return dl, ds, nil
}

// NamedDownSets is ResolveDownSets' inverse: it renders down sets as
// switch-name pairs / names for a trace record, one sorted entry per
// physical link.
func NamedDownSets(net *topology.Network, dl map[topology.LinkID]bool, ds map[topology.SwitchID]bool) ([][2]string, []string) {
	var links [][2]string
	for l, down := range dl {
		if !down {
			continue
		}
		lk := net.Links[l]
		if lk.Twin != topology.None && lk.Twin < l {
			continue
		}
		links = append(links, [2]string{net.Switches[lk.Src].Name, net.Switches[lk.Dst].Name})
	}
	var sws []string
	for sw, down := range ds {
		if down {
			sws = append(sws, net.Switches[sw].Name)
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	sort.Strings(sws)
	return links, sws
}

// TunnelSetFromState rebuilds a tunnel set from the paths recorded in a
// state file, so a plan can be checked offline exactly as written — no
// layout flags to match against the producing process. Paths must name
// adjacent switches connected by links of net; duplicate flows error
// (ResolveState would mis-assign their allocations).
func TunnelSetFromState(net *topology.Network, sf *StateFile) (*tunnel.Set, error) {
	set := tunnel.NewSet(net)
	seen := map[tunnel.Flow]bool{}
	for i, f := range sf.Flows {
		src, ok1 := net.SwitchByName(f.Src)
		dst, ok2 := net.SwitchByName(f.Dst)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("wire: state flow %d: unknown switch %q/%q", i, f.Src, f.Dst)
		}
		if src == dst {
			return nil, fmt.Errorf("wire: state flow %d: src == dst (%q)", i, f.Src)
		}
		fl := tunnel.Flow{Src: src, Dst: dst}
		if seen[fl] {
			return nil, fmt.Errorf("wire: state flow %d: duplicate flow %s->%s", i, f.Src, f.Dst)
		}
		seen[fl] = true
		var ts []*tunnel.Tunnel
		for j, ta := range f.Tunnels {
			t, err := tunnelFromPath(net, ta.Path)
			if err != nil {
				return nil, fmt.Errorf("wire: state flow %d tunnel %d: %w", i, j, err)
			}
			if t.Switches[0] != src || t.Switches[len(t.Switches)-1] != dst {
				return nil, fmt.Errorf("wire: state flow %d tunnel %d: path endpoints %s..%s don't match the flow",
					i, j, ta.Path[0], ta.Path[len(ta.Path)-1])
			}
			ts = append(ts, t)
		}
		set.Add(fl, ts...)
	}
	return set, nil
}

// tunnelFromPath resolves a named switch sequence into a Tunnel.
func tunnelFromPath(net *topology.Network, path []string) (*tunnel.Tunnel, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("path has %d hops", len(path))
	}
	switches := make([]topology.SwitchID, len(path))
	for i, name := range path {
		sw, ok := net.SwitchByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown switch %q", name)
		}
		switches[i] = sw
	}
	links := make([]topology.LinkID, len(path)-1)
	for i := 0; i+1 < len(switches); i++ {
		l := net.FindLink(switches[i], switches[i+1])
		if l == topology.None {
			return nil, fmt.Errorf("no link %s>%s", path[i], path[i+1])
		}
		links[i] = l
	}
	return &tunnel.Tunnel{Links: links, Switches: switches}, nil
}
