package tunnel

import (
	"container/heap"
	"math"

	"ffc/internal/topology"
)

// WeightFunc assigns a routing cost to a directed link; return +Inf to
// forbid the link.
type WeightFunc func(topology.LinkID) float64

// UnitWeights routes by hop count.
func UnitWeights(topology.LinkID) float64 { return 1 }

// InverseCapacity prefers fat links.
func InverseCapacity(net *topology.Network) WeightFunc {
	return func(l topology.LinkID) float64 { return 1 / net.Links[l].Capacity }
}

type pqItem struct {
	sw   topology.SwitchID
	dist float64
}

type pathHeap []pqItem

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra from src to dst under w, never transiting a
// switch in banSwitch (src and dst are exempt) nor using a link in banLink.
// Returns the link path, or nil if unreachable.
func ShortestPath(net *topology.Network, src, dst topology.SwitchID, w WeightFunc,
	banLink map[topology.LinkID]bool, banSwitch map[topology.SwitchID]bool) []topology.LinkID {

	n := net.NumSwitches()
	dist := make([]float64, n)
	prev := make([]topology.LinkID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = topology.None
	}
	dist[src] = 0
	h := &pathHeap{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		v := it.sw
		if done[v] {
			continue
		}
		done[v] = true
		if v == dst {
			break
		}
		if v != src && v != dst && banSwitch[v] {
			continue // may be reached but not transited
		}
		for _, lid := range net.OutLinks(v) {
			if banLink[lid] {
				continue
			}
			c := w(lid)
			if math.IsInf(c, 1) {
				continue
			}
			d := net.Links[lid].Dst
			if nd := it.dist + c; nd < dist[d]-1e-12 {
				dist[d] = nd
				prev[d] = lid
				heap.Push(h, pqItem{d, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	var rev []topology.LinkID
	for v := dst; v != src; {
		l := prev[v]
		rev = append(rev, l)
		v = net.Links[l].Src
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// KShortest returns up to K loopless shortest paths (Yen's algorithm) under
// w, shortest first.
func KShortest(net *topology.Network, src, dst topology.SwitchID, K int, w WeightFunc) [][]topology.LinkID {
	first := ShortestPath(net, src, dst, w, nil, nil)
	if first == nil || K == 0 {
		return nil
	}
	paths := [][]topology.LinkID{first}
	var candidates []yenCand
	cost := func(p []topology.LinkID) float64 {
		var c float64
		for _, l := range p {
			c += w(l)
		}
		return c
	}
	for len(paths) < K {
		last := paths[len(paths)-1]
		// Spur from every prefix of the last accepted path.
		for i := 0; i < len(last); i++ {
			spurNode := net.Links[last[i]].Src
			rootPath := last[:i]
			banLink := map[topology.LinkID]bool{}
			for _, p := range paths {
				if sharesPrefix(p, rootPath) && len(p) > i {
					banLink[p[i]] = true
				}
			}
			banSwitch := map[topology.SwitchID]bool{}
			for _, l := range rootPath {
				banSwitch[net.Links[l].Src] = true
			}
			delete(banSwitch, spurNode)
			spur := ShortestPath(net, spurNode, dst, w, banLink, banSwitch)
			if spur == nil {
				continue
			}
			full := append(append([]topology.LinkID(nil), rootPath...), spur...)
			if containsPath(paths, full) || containsCand(candidates, full) {
				continue
			}
			candidates = append(candidates, yenCand{full, cost(full)})
		}
		if len(candidates) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(candidates); i++ {
			if candidates[i].cost < candidates[best].cost {
				best = i
			}
		}
		paths = append(paths, candidates[best].path)
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

func sharesPrefix(p, prefix []topology.LinkID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func samePath(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(ps [][]topology.LinkID, p []topology.LinkID) bool {
	for _, q := range ps {
		if samePath(q, p) {
			return true
		}
	}
	return false
}

type yenCand struct {
	path []topology.LinkID
	cost float64
}

func containsCand(cs []yenCand, p []topology.LinkID) bool {
	for _, c := range cs {
		if samePath(c.path, p) {
			return true
		}
	}
	return false
}

// LayoutConfig parameterizes tunnel layout.
type LayoutConfig struct {
	// TunnelsPerFlow is the target |Tf|. Default 6 (the paper's setting).
	TunnelsPerFlow int
	// P bounds how many of a flow's tunnels may share one physical link.
	// Default 1.
	P int
	// Q bounds how many may share one intermediate switch. Default 3.
	Q int
	// Weights is the base routing metric; default hop count.
	Weights WeightFunc
}

func (c *LayoutConfig) fill() {
	if c.TunnelsPerFlow == 0 {
		c.TunnelsPerFlow = 6
	}
	if c.P == 0 {
		c.P = 1
	}
	if c.Q == 0 {
		c.Q = 3
	}
	if c.Weights == nil {
		c.Weights = UnitWeights
	}
}

// Layout builds a tunnel set for the given flows using the (p,q)
// link-switch disjoint strategy of §4.3: tunnels are added shortest-first,
// forbidding physical links already used p times and intermediate switches
// already used q times by the same flow. A flow keeps fewer tunnels when
// path diversity runs out.
func Layout(net *topology.Network, flows []Flow, cfg LayoutConfig) *Set {
	cfg.fill()
	set := NewSet(net)
	for _, f := range flows {
		set.Add(f, layoutFlow(net, f, cfg)...)
	}
	return set
}

func layoutFlow(net *topology.Network, f Flow, cfg LayoutConfig) []*Tunnel {
	linkUse := map[topology.LinkID]int{}
	swUse := map[topology.SwitchID]int{}
	var tunnels []*Tunnel
	addTunnel := func(path []topology.LinkID) {
		t := newTunnel(net, f, path)
		tunnels = append(tunnels, t)
		for _, l := range path {
			linkUse[canonicalLink(net, l)]++
		}
		for _, v := range t.Switches[1 : len(t.Switches)-1] {
			swUse[v]++
		}
	}
	if cfg.P == 1 && cfg.TunnelsPerFlow >= 2 {
		// Seed with Suurballe's optimal disjoint pair: greedy shortest-
		// first can pick a path that severs the only other disjoint route.
		for _, path := range DisjointPair(net, f.Src, f.Dst, cfg.Weights) {
			addTunnel(simplifyPath(net, path))
		}
	}
	for len(tunnels) < cfg.TunnelsPerFlow {
		banLink := map[topology.LinkID]bool{}
		for l, u := range linkUse {
			if u >= cfg.P {
				banLink[l] = true
				if tw := net.Links[l].Twin; tw != topology.None {
					banLink[tw] = true
				}
			}
		}
		banSwitch := map[topology.SwitchID]bool{}
		for v, u := range swUse {
			if u >= cfg.Q {
				banSwitch[v] = true
			}
		}
		// Soft penalty steers early tunnels apart even before the hard
		// p/q limits bind.
		w := func(l topology.LinkID) float64 {
			base := cfg.Weights(l)
			can := canonicalLink(net, l)
			return base * (1 + 2*float64(linkUse[can]))
		}
		path := ShortestPath(net, f.Src, f.Dst, w, banLink, banSwitch)
		if path == nil {
			break
		}
		addTunnel(path)
	}
	for i, t := range tunnels {
		t.Index = i
	}
	return tunnels
}

// simplifyPath removes vertex cycles (Suurballe's merge can, rarely,
// produce non-simple walks).
func simplifyPath(net *topology.Network, path []topology.LinkID) []topology.LinkID {
	if len(path) == 0 {
		return path
	}
	pos := map[topology.SwitchID]int{net.Links[path[0]].Src: 0}
	out := make([]topology.LinkID, 0, len(path))
	for _, l := range path {
		out = append(out, l)
		dst := net.Links[l].Dst
		if at, seen := pos[dst]; seen {
			// Cut the cycle: drop links after position `at` and forget
			// the switches they visited.
			for _, dropped := range out[at:] {
				delete(pos, net.Links[dropped].Dst)
			}
			out = out[:at]
		}
		pos[dst] = len(out)
	}
	return out
}

// LayoutKShortest builds tunnels as plain loopless K-shortest paths with no
// disjointness constraints — the ablation baseline contrasted with Layout.
func LayoutKShortest(net *topology.Network, flows []Flow, K int, w WeightFunc) *Set {
	if w == nil {
		w = UnitWeights
	}
	set := NewSet(net)
	for _, f := range flows {
		var ts []*Tunnel
		for _, p := range KShortest(net, f.Src, f.Dst, K, w) {
			ts = append(ts, newTunnel(net, f, p))
		}
		set.Add(f, ts...)
	}
	return set
}
