package sim

import (
	"ffc/internal/core"
	"ffc/internal/parallel"
)

// RunMany executes several run configurations of the same scenario
// concurrently (sc.Parallelism workers). The §8 comparisons replay
// identical fault sequences under different TE approaches; each replay is
// fully independent (its own RNG, solver, and accounting), so they
// parallelize perfectly. Results are returned in cfgs order; the first
// error, in cfgs order, aborts the batch.
func RunMany(sc Scenario, cfgs []RunConfig) ([]*Result, error) {
	out := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	parallel.ForEach(len(cfgs), sc.Parallelism, func(i int) {
		out[i], errs[i] = Run(sc, cfgs[i])
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// solveSeries computes one TE state per interval of series. When the
// protection level chains intervals through the previous state (Kc > 0,
// whose control-plane constraints are relative to the prior configuration)
// the intervals are solved serially; otherwise each interval is independent
// and they are fanned out over workers. Either way the returned states are
// identical — the simplex is deterministic per input.
func solveSeries(solver *core.Solver, sc Scenario, prot core.Protection, workers int) ([]*core.State, error) {
	states := make([]*core.State, len(sc.Series))
	if prot.Kc > 0 {
		prev := core.NewState()
		for t, m := range sc.Series {
			st, _, err := solver.Solve(core.Input{Demands: m, Prot: prot, Prev: prev})
			if err != nil {
				return nil, err
			}
			states[t] = st
			prev = st
		}
		return states, nil
	}
	errs := make([]error, len(sc.Series))
	parallel.ForEach(len(sc.Series), workers, func(t int) {
		states[t], _, errs[t] = solver.Solve(core.Input{Demands: sc.Series[t], Prot: prot})
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	return states, nil
}
