package check

import (
	"math"
	"math/rand"
	"testing"

	"ffc/internal/core"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// randomNet builds a small random connected duplex network (ring + chords)
// with uniquely named switches, and lays out tunnels for nFlow random flows.
func randomNet(rng *rand.Rand, nSwitch, nFlow int) (*topology.Network, *tunnel.Set, []tunnel.Flow) {
	net := topology.NewNetwork("rand")
	for i := 0; i < nSwitch; i++ {
		net.AddSwitch("s"+string(rune('a'+i)), "site", float64(i), float64(i))
	}
	perm := rng.Perm(nSwitch)
	for i := 0; i < nSwitch; i++ {
		a, b := perm[i], perm[(i+1)%nSwitch]
		net.AddDuplex(topology.SwitchID(a), topology.SwitchID(b), 5+rng.Float64()*10)
	}
	for i := 0; i < nSwitch; i++ {
		a, b := rng.Intn(nSwitch), rng.Intn(nSwitch)
		if a == b || net.FindLink(topology.SwitchID(a), topology.SwitchID(b)) != topology.None {
			continue
		}
		net.AddDuplex(topology.SwitchID(a), topology.SwitchID(b), 5+rng.Float64()*10)
	}
	var flows []tunnel.Flow
	seen := map[tunnel.Flow]bool{}
	for tries := 0; len(flows) < nFlow && tries < 100; tries++ {
		f := tunnel.Flow{Src: topology.SwitchID(rng.Intn(nSwitch)), Dst: topology.SwitchID(rng.Intn(nSwitch))}
		if f.Src == f.Dst || seen[f] {
			continue
		}
		seen[f] = true
		flows = append(flows, f)
	}
	set := tunnel.Layout(net, flows, tunnel.LayoutConfig{TunnelsPerFlow: 3, P: 1, Q: 3})
	var ok []tunnel.Flow
	for _, f := range flows {
		if len(set.Tunnels(f)) > 0 {
			ok = append(ok, f)
		}
	}
	return net, set, ok
}

// randomState fills rates and full-length allocation vectors with random
// values; overload controls how often rates exceed what links can carry.
func randomState(rng *rand.Rand, set *tunnel.Set, flows []tunnel.Flow, overload float64) *core.State {
	st := core.NewState()
	for _, f := range flows {
		n := len(set.Tunnels(f))
		alloc := make([]float64, n)
		var sum float64
		for i := range alloc {
			alloc[i] = rng.Float64() * 4
			sum += alloc[i]
		}
		st.Alloc[f] = alloc
		st.Rate[f] = sum * (0.5 + overload*rng.Float64())
	}
	return st
}

// consistentRates pins each flow's rate to its allocation sum, the b = Σ a
// relationship every solver-produced plan satisfies.
func consistentRates(st *core.State) *core.State {
	for f, alloc := range st.Alloc {
		var sum float64
		for _, a := range alloc {
			sum += a
		}
		st.Rate[f] = sum
	}
	return st
}

// TestExactMatchesCoreDataPlane is the independence check the package
// exists for: over random networks and random (often violating) states,
// the exact certifier and core.VerifyDataPlane must reach the same verdict
// — two implementations, one guarantee.
func TestExactMatchesCoreDataPlane(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		net, set, flows := randomNet(rng, 4+rng.Intn(4), 2+rng.Intn(4))
		st := randomState(rng, set, flows, float64(trial%3))
		ke, kv := rng.Intn(3), rng.Intn(2)
		var capOver map[topology.LinkID]float64
		if trial%4 == 0 {
			capOver = map[topology.LinkID]float64{net.Links[rng.Intn(len(net.Links))].ID: 1 + rng.Float64()*3}
		}

		coreV := core.VerifyDataPlane(net, set, st, ke, kv, capOver)
		cert, err := Certify(net, set, st, st, Params{
			Prot: core.Protection{Ke: ke, Kv: kv}, Mode: Exact, Capacity: capOver,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !cert.Exact {
			t.Fatalf("trial %d: Mode Exact produced Exact=false", trial)
		}
		if (coreV == nil) != (cert.Violation == nil) {
			t.Fatalf("trial %d ke=%d kv=%d: core violation %+v, checker violation %+v (slack %g)",
				trial, ke, kv, coreV, cert.Violation, cert.WorstSlack)
		}
		if coreV != nil {
			if math.Abs(coreV.Over-cert.Violation.Over) > 1e-9*math.Max(1, coreV.Over) {
				t.Fatalf("trial %d: worst over differs: core %g checker %g", trial, coreV.Over, cert.Violation.Over)
			}
			if cert.Violation.Plane != "data" {
				t.Fatalf("trial %d: plane %q", trial, cert.Violation.Plane)
			}
		}
		if cert.OK != (cert.Violation == nil) {
			t.Fatalf("trial %d: OK=%v with violation %+v", trial, cert.OK, cert.Violation)
		}
		if cert.CasesCovered < cert.CasesChecked {
			t.Fatalf("trial %d: covered %d < checked %d", trial, cert.CasesCovered, cert.CasesChecked)
		}
	}
}

// TestControlMatchesCoreControlPlane does the same for the control plane:
// the checker's per-link top-kc selection must agree with core's explicit
// stale-set enumeration in every rate-limiter mode. Rates are pinned to
// the allocation sums (as in any real plan) because the checker's no-fault
// data case — deliberately — also audits rate-vs-allocation consistency,
// which core's allocation-only control verifier does not model.
func TestControlMatchesCoreControlPlane(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		net, set, flows := randomNet(rng, 4+rng.Intn(4), 2+rng.Intn(4))
		prev := consistentRates(randomState(rng, set, flows, 0))
		st := consistentRates(randomState(rng, set, flows, float64(trial%3)))
		kc := 1 + rng.Intn(2)
		mode := core.RateLimiterMode(rng.Intn(3))

		coreV := core.VerifyControlPlane(net, set, st, prev, kc, mode, nil)
		cert, err := Certify(net, set, st, prev, Params{
			Prot: core.Protection{Kc: kc}, RateLimiter: mode, Mode: Exact,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if (coreV == nil) != (cert.Violation == nil) {
			t.Fatalf("trial %d kc=%d mode=%d: core %+v, checker %+v",
				trial, kc, mode, coreV, cert.Violation)
		}
		if coreV != nil {
			if math.Abs(coreV.Over-cert.Violation.Over) > 1e-9*math.Max(1, coreV.Over) {
				t.Fatalf("trial %d: worst over differs: core %g checker %g", trial, coreV.Over, cert.Violation.Over)
			}
			// A base-load violation needs no stale switch and surfaces as
			// the (equal) data-plane no-fault case; otherwise the stale set
			// must fit the budget.
			if cert.Violation.Plane == "control" {
				if n := len(cert.Violation.Faults.Stale); n > kc {
					t.Fatalf("trial %d: stale set %v out of budget kc=%d", trial, cert.Violation.Faults.StaleNames, kc)
				}
			} else if !cert.Violation.Faults.Empty() {
				t.Fatalf("trial %d: data-plane violation with faults %+v in a kc-only certification",
					trial, cert.Violation.Faults)
			}
		}
	}
}

// TestAdversarialAgreesWithExact: the adversarial search only evaluates
// real fault cases, so it must never contradict an exact OK — and any
// violation it reports must also be found exactly.
func TestAdversarialAgreesWithExact(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(3000 + trial)))
		net, set, flows := randomNet(rng, 4+rng.Intn(4), 2+rng.Intn(4))
		st := randomState(rng, set, flows, float64(trial%3))
		ke, kv := rng.Intn(3), rng.Intn(2)
		p := Params{Prot: core.Protection{Ke: ke, Kv: kv}, Restarts: 8, Seed: int64(trial + 1)}

		p.Mode = Exact
		exact, err := Certify(net, set, st, st, p)
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		p.Mode = Adversarial
		adv, err := Certify(net, set, st, st, p)
		if err != nil {
			t.Fatalf("trial %d adversarial: %v", trial, err)
		}
		if adv.Exact {
			t.Fatalf("trial %d: adversarial mode claims Exact", trial)
		}
		if exact.OK && !adv.OK {
			t.Fatalf("trial %d: exact OK but adversarial found %+v", trial, adv.Violation)
		}
		if !adv.OK && exact.OK {
			t.Fatalf("trial %d: adversarial violation %+v not confirmed by exact", trial, adv.Violation)
		}
		if adv.WorstSlack < exact.WorstSlack-1e-9 {
			t.Fatalf("trial %d: adversarial slack %g below exact minimum %g",
				trial, adv.WorstSlack, exact.WorstSlack)
		}
	}
}

// TestViolationFaultSetInduces re-applies a reported violating fault set as
// pre-down faults: certifying the same plan at zero protection must then
// reject without needing any further fault — the fault set genuinely
// induces the overload it reports.
func TestViolationFaultSetInduces(t *testing.T) {
	found := 0
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		net, set, flows := randomNet(rng, 5+rng.Intn(3), 3+rng.Intn(3))
		st := randomState(rng, set, flows, 2)
		cert, err := Certify(net, set, st, st, Params{Prot: core.Protection{Ke: 2, Kv: 1}, Mode: Exact})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if cert.OK {
			continue
		}
		found++
		v := cert.Violation
		dl := map[topology.LinkID]bool{}
		for _, l := range v.Faults.Links {
			dl[l] = true
		}
		ds := map[topology.SwitchID]bool{}
		for _, sw := range v.Faults.Switches {
			ds[sw] = true
		}
		again, err := Certify(net, set, st, st, Params{DownLinks: dl, DownSwitches: ds, Mode: Exact})
		if err != nil {
			t.Fatalf("trial %d: re-check: %v", trial, err)
		}
		if again.OK {
			t.Fatalf("trial %d: fault set %v/%v does not induce the reported overload",
				trial, v.Faults.LinkNames, v.Faults.SwitchNames)
		}
		if !again.Violation.Faults.Empty() {
			t.Fatalf("trial %d: induced violation still needs faults %+v", trial, again.Violation.Faults)
		}
	}
	if found == 0 {
		t.Fatal("no trial produced a violation; the test exercised nothing")
	}
}

// TestCertifiedSolverPlan: an actual FFC solve must certify at its own
// protection level (the end-to-end positive case).
func TestCertifiedSolverPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, set, flows := randomNet(rng, 7, 5)
	dem := map[tunnel.Flow]float64{}
	for _, f := range flows {
		dem[f] = 2 + rng.Float64()*6
	}
	prot := core.Protection{Kc: 1, Ke: 1, Kv: 1}
	s := core.NewSolver(net, set, core.Options{})
	prev, _, err := s.Solve(core.Input{Demands: dem})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := s.Solve(core.Input{Demands: dem, Prot: prot, Prev: prev})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(net, set, st, prev, Params{Prot: prot, Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.OK || !cert.Exact {
		t.Fatalf("solver plan failed certification: %+v", cert.Violation)
	}
	if cert.WorstSlack < -1e-6 {
		t.Fatalf("worst slack %g negative without a violation", cert.WorstSlack)
	}
	if cert.CasesChecked == 0 || cert.CasesCovered < cert.CasesChecked {
		t.Fatalf("case accounting: checked %d covered %d", cert.CasesChecked, cert.CasesCovered)
	}
}

// TestEmptyPlan: a plan granting nothing is trivially congestion-free and
// the slack falls back to the smallest link capacity.
func TestEmptyPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net, set, _ := randomNet(rng, 5, 3)
	cert, err := Certify(net, set, core.NewState(), core.NewState(), Params{
		Prot: core.Protection{Kc: 1, Ke: 2, Kv: 1}, Mode: Exact,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.OK {
		t.Fatalf("empty plan rejected: %+v", cert.Violation)
	}
	minCap := math.Inf(1)
	for _, l := range net.Links {
		minCap = math.Min(minCap, l.Capacity)
	}
	if cert.WorstSlack != minCap {
		t.Fatalf("empty-plan slack %g, want min capacity %g", cert.WorstSlack, minCap)
	}
}

// TestPreDownSets: a plan solved around existing faults must certify with
// those faults pre-applied, and the protection budget must be spent on
// surviving elements only.
func TestPreDownSets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net, set, flows := randomNet(rng, 7, 4)
	dem := map[tunnel.Flow]float64{}
	for _, f := range flows {
		dem[f] = 1 + rng.Float64()*4
	}
	dl := map[topology.LinkID]bool{}
	l := net.Links[0].ID
	dl[l] = true
	if tw := net.Links[l].Twin; tw != topology.None {
		dl[tw] = true
	}
	s := core.NewSolver(net, set, core.Options{})
	st, _, err := s.Solve(core.Input{Demands: dem, Prot: core.Protection{Ke: 1}, DownLinks: dl})
	if err != nil {
		t.Skipf("protected solve infeasible on this seed: %v", err)
	}
	cert, err := Certify(net, set, st, st, Params{
		Prot: core.Protection{Ke: 1}, Mode: Exact, DownLinks: dl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.OK {
		t.Fatalf("plan solved around the down link fails certification: %+v", cert.Violation)
	}
	for _, fl := range cert.WorstCase.Links {
		if dl[fl] {
			t.Fatalf("pre-down link %d spent protection budget", fl)
		}
	}
}

// TestFailFast stops at the first violating case and reports coverage
// honestly (covered == checked on an aborted scan).
func TestFailFast(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		net, set, flows := randomNet(rng, 5, 4)
		st := randomState(rng, set, flows, 2)
		full, err := Certify(net, set, st, st, Params{Prot: core.Protection{Ke: 2}, Mode: Exact})
		if err != nil {
			t.Fatal(err)
		}
		if full.OK {
			continue
		}
		fast, err := Certify(net, set, st, st, Params{Prot: core.Protection{Ke: 2}, Mode: Exact, FailFast: true})
		if err != nil {
			t.Fatal(err)
		}
		if fast.OK {
			t.Fatalf("trial %d: fail-fast missed the violation the full scan found", trial)
		}
		if fast.CasesChecked > full.CasesChecked {
			t.Fatalf("trial %d: fail-fast checked more cases (%d) than the full scan (%d)",
				trial, fast.CasesChecked, full.CasesChecked)
		}
		if fast.CasesCovered != fast.CasesChecked {
			t.Fatalf("trial %d: aborted scan claims %d covered for %d checked",
				trial, fast.CasesCovered, fast.CasesChecked)
		}
		return
	}
	t.Fatal("no trial produced a violation")
}

// TestBadInputs: malformed plans error; they never certify and never panic.
func TestBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net, set, flows := randomNet(rng, 5, 3)
	if _, err := Certify(nil, set, core.NewState(), nil, Params{}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := Certify(net, set, nil, nil, Params{}); err == nil {
		t.Fatal("nil state accepted")
	}
	if _, err := Certify(net, set, core.NewState(), nil, Params{Prot: core.Protection{Kc: 1}}); err == nil {
		t.Fatal("kc>0 without prev accepted")
	}
	if _, err := Certify(net, set, core.NewState(), nil, Params{Prot: core.Protection{Ke: -1}}); err == nil {
		t.Fatal("negative protection accepted")
	}
	bad := core.NewState()
	bad.Rate[flows[0]] = math.NaN()
	if _, err := Certify(net, set, bad, nil, Params{}); err == nil {
		t.Fatal("NaN rate accepted")
	}
	bad2 := core.NewState()
	bad2.Alloc[flows[0]] = []float64{1, math.Inf(1)}
	if _, err := Certify(net, set, bad2, nil, Params{}); err == nil {
		t.Fatal("Inf alloc accepted")
	}
}

// TestShortAllocVectors: allocation vectors shorter than the tunnel list
// (a plan file that dropped tunnels) read as zero allocation, not a panic.
func TestShortAllocVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net, set, flows := randomNet(rng, 6, 3)
	st := core.NewState()
	for _, f := range flows {
		st.Rate[f] = 1
		st.Alloc[f] = []float64{2} // shorter than the tunnel list
	}
	cert, err := Certify(net, set, st, st, Params{Prot: core.Protection{Kc: 1, Ke: 1}, Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	_ = cert // any verdict is fine; the point is not panicking
}
