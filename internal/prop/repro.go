package prop

import (
	"encoding/json"
	"fmt"
	"os"
)

// Repro is a self-contained failing-case file: the shrunk scenario plus the
// failure it reproduces. Everything needed to replay is inside — topology,
// demands, fault sets, mutation — so the file fails identically wherever it
// runs: `ffcprop -repro file.json`, the go-test replay in this package, or
// ReadRepro + Replay from any program.
type Repro struct {
	// Failure is the invariant violation observed when the file was
	// written. Replay matches on the invariant name (details such as
	// throughput digits may legally vary across architectures).
	Failure Failure `json:"failure"`
	// Shrink records the minimization work that produced the scenario
	// (zero value when the scenario was written unshrunk).
	Shrink ShrinkStats `json:"shrink,omitempty"`
	// Scenario is the (typically shrunk) failing scenario.
	Scenario *Scenario `json:"scenario"`
}

// WriteRepro writes the repro as indented JSON.
func WriteRepro(path string, r *Repro) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("prop: encode repro: %w", err)
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// ReadRepro parses a repro file.
func ReadRepro(path string) (*Repro, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("prop: parse repro %s: %w", path, err)
	}
	if r.Scenario == nil {
		return nil, fmt.Errorf("prop: repro %s has no scenario", path)
	}
	if r.Failure.Invariant == "" {
		return nil, fmt.Errorf("prop: repro %s names no failing invariant", path)
	}
	return &r, nil
}

// Replay runs the repro's scenario and reports whether the recorded
// invariant still fails. The returned Result carries the fresh failure
// details; err is non-nil only if the scenario itself no longer
// materializes.
func (r *Repro) Replay() (*Result, bool, error) {
	sc := r.Scenario.Clone()
	if len(sc.Invariants) == 0 {
		sc.Invariants = []string{r.Failure.Invariant}
	}
	res, err := Run(sc)
	if err != nil {
		return nil, false, err
	}
	for _, f := range res.Failures {
		if f.Invariant == r.Failure.Invariant {
			return res, true, nil
		}
	}
	return res, false, nil
}
