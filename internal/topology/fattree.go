package topology

import "fmt"

// FatTree generates a k-ary fat-tree data-center fabric (k even): (k/2)²
// core switches, k pods of k/2 aggregation and k/2 edge switches each.
// Every edge switch uplinks to every aggregation switch in its pod; the
// i-th aggregation switch of each pod connects to core switches
// i·k/2 … (i+1)·k/2 − 1. The paper notes TE in DCNs runs over elephant
// flows between edge switches with capacities net of mice traffic; this
// generator provides that substrate for FFC experiments outside the WAN
// setting.
func FatTree(k int, linkCapacity float64) *Network {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topology: fat-tree arity must be even and ≥ 2, got %d", k))
	}
	if linkCapacity <= 0 {
		linkCapacity = 10
	}
	n := NewNetwork(fmt.Sprintf("fat-tree-%d", k))
	half := k / 2

	core := make([]SwitchID, half*half)
	for i := range core {
		core[i] = n.AddSwitch(fmt.Sprintf("core-%d", i), "core", 0, 0)
	}
	agg := make([][]SwitchID, k)
	edge := make([][]SwitchID, k)
	for p := 0; p < k; p++ {
		agg[p] = make([]SwitchID, half)
		edge[p] = make([]SwitchID, half)
		site := fmt.Sprintf("pod-%d", p)
		for i := 0; i < half; i++ {
			agg[p][i] = n.AddSwitch(fmt.Sprintf("agg-%d-%d", p, i), site, float64(p), 1)
			edge[p][i] = n.AddSwitch(fmt.Sprintf("edge-%d-%d", p, i), site, float64(p), 2)
		}
		for _, e := range edge[p] {
			for _, a := range agg[p] {
				n.AddDuplex(e, a, linkCapacity)
			}
		}
		for i, a := range agg[p] {
			for j := 0; j < half; j++ {
				n.AddDuplex(a, core[i*half+j], linkCapacity)
			}
		}
	}
	return n
}

// EdgeSwitches returns the IDs of a fat-tree's edge (top-of-rack) switches,
// the endpoints of elephant flows.
func (n *Network) EdgeSwitches() []SwitchID {
	var out []SwitchID
	for _, s := range n.Switches {
		if len(s.Name) >= 4 && s.Name[:4] == "edge" {
			out = append(out, s.ID)
		}
	}
	return out
}
