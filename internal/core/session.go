package core

import (
	"ffc/internal/lp"
	"ffc/internal/obs"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// Session solves a sequence of closely-related TE inputs — the per-interval
// recomputation loop of §5 — reusing work across calls:
//
//   - the simplex basis of the previous solve warm-starts the next one
//     (lp.WarmStart), typically eliminating Phase 1 and most iterations;
//   - when the input differs from the cached one only in *values* (demands,
//     capacities, rate caps/floors/fixings) and not in structure (same flow
//     set, same down elements, same protection, no control-plane FFC), the
//     built LP model is rebound in place via SetBounds/SetRHS instead of
//     being re-formulated, which also lets the lp layer reuse its presolve
//     mapping.
//
// A Session is NOT safe for concurrent use; create one per serial solve
// loop. Results are identical to Solver.Solve up to the simplex's choice
// among alternate optima.
type Session struct {
	s    *Solver
	warm *lp.WarmStart

	// Cached formulation and the fingerprint it was built for.
	b          *builder
	in         Input // deep-referenced by b.in; overwritten on reuse
	rebindable bool
	flows      []tunnel.Flow
	downLinks  map[topology.LinkID]bool
	downSw     map[topology.SwitchID]bool
}

var (
	obsSessionRebinds = obs.NewCounter("core.session_rebinds")
	obsSessionBuilds  = obs.NewCounter("core.session_builds")
)

// NewSession returns a solve session bound to s.
func (s *Solver) NewSession() *Session { return &Session{s: s} }

// Solve is Solver.Solve with cross-call model and basis reuse.
func (se *Session) Solve(in Input) (*State, *Stats, error) {
	return se.s.solve(in, se)
}

// Reset drops the cached model and basis; the next Solve starts cold.
func (se *Session) Reset() {
	se.warm, se.b, se.flows, se.downLinks, se.downSw = nil, nil, nil, nil, nil
	se.rebindable = false
}

// remember caches a freshly formulated builder and the structural
// fingerprint under which it may be rebound later. Only the plain
// max-throughput shape qualifies: MinMLU/PlanCapacity embed capacities as
// coefficients, control-plane FFC (Kc > 0) embeds the previous state's
// weights, mice selection depends on demand values, and demand-uncertainty
// FFC embeds per-flow loads — all structure, not bounds/RHS.
func (se *Session) remember(b *builder, in Input) {
	obsSessionBuilds.Inc()
	se.b = b
	se.in = in
	b.in = &se.in
	se.flows = b.flows
	se.downLinks = in.DownLinks
	se.downSw = in.DownSwitches
	se.rebindable = se.s.Opts.Objective == MaxThroughput &&
		se.s.Opts.MiceFraction <= 0 &&
		in.Prot.Kc == 0 &&
		(in.Demand.Count <= 0 || in.Demand.Factor <= 1)
}

// canRebind reports whether in matches the cached model's structure: same
// protection, same candidate flow list, same down sets, and a shape whose
// input values appear only in bounds and right-hand sides.
func (se *Session) canRebind(in *Input) bool {
	if se.b == nil || !se.rebindable {
		return false
	}
	if in.Prot != se.in.Prot {
		return false
	}
	if in.Demand.Count > 0 && in.Demand.Factor > 1 {
		return false
	}
	if !sameLinkSet(in.DownLinks, se.downLinks) || !sameSwitchSet(in.DownSwitches, se.downSw) {
		return false
	}
	// The candidate flow list (positive demand, has tunnels) must be
	// identical — it determines every variable and constraint.
	i := 0
	for _, f := range in.Demands.Flows() {
		if in.Demands[f] <= 0 || len(se.s.Tun.Tunnels(f)) == 0 {
			continue
		}
		if i >= len(se.flows) || se.flows[i] != f {
			return false
		}
		i++
	}
	return i == len(se.flows)
}

// rebind re-derives every input-dependent bound and right-hand side of the
// cached model from in, leaving the sparsity pattern untouched.
func (se *Session) rebind(in Input) *builder {
	obsSessionRebinds.Inc()
	b := se.b
	se.in = in
	b.in = &se.in
	for _, f := range b.flows {
		lo, hi := b.rateBounds(f)
		b.model.SetBounds(b.bVar[f], lo, hi)
		if b.mice[f] {
			continue
		}
		for i, v := range b.aVar[f] {
			alo, ahi := b.allocBounds(f, i)
			b.model.SetBounds(v, alo, ahi)
		}
	}
	for l, row := range b.capRow {
		b.model.SetRHS(row, se.s.capacity(&se.in, l))
	}
	return b
}

func sameLinkSet(a, b map[topology.LinkID]bool) bool {
	for l, v := range a {
		if v && !b[l] {
			return false
		}
	}
	for l, v := range b {
		if v && !a[l] {
			return false
		}
	}
	return true
}

func sameSwitchSet(a, b map[topology.SwitchID]bool) bool {
	for s, v := range a {
		if v && !b[s] {
			return false
		}
	}
	for s, v := range b {
		if v && !a[s] {
			return false
		}
	}
	return true
}
