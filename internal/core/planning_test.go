package core

import (
	"math"
	"math/rand"
	"testing"

	"ffc/internal/demand"
	"ffc/internal/topology"
)

func TestPlanCapacityNoProtectionNoCost(t *testing.T) {
	// Demand fits already: no expansion needed.
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{Objective: PlanCapacity})
	st, stats, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 10, fx.f34: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.AddedCapacity) != 0 {
		t.Fatalf("expansion %v bought for a fitting demand", stats.AddedCapacity)
	}
	if math.Abs(st.TotalRate()-16) > 1e-6 {
		t.Fatalf("rate %v, want full demand 16", st.TotalRate())
	}
}

func TestPlanCapacityBuysExactShortfall(t *testing.T) {
	// f24 demands 24 over a direct 10 + via-s1 10 = 20 of path capacity:
	// exactly 4 units of expansion are needed (on one of the two routes).
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{Objective: PlanCapacity})
	st, stats, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 24}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Rate[fx.f24]-24) > 1e-6 {
		t.Fatalf("rate %v, want 24", st.Rate[fx.f24])
	}
	var total float64
	for _, x := range stats.AddedCapacity {
		total += x
	}
	// The via-s1 route has two hops, so covering 4 extra units costs
	// either 4 (direct) or 8 (two links); the optimum expands the direct
	// link by 4... but 14 > direct cap 10 means direct also needs +4:
	// optimal split keeps each route within capacity: direct 10 + via 10
	// leaves 4 missing; cheapest is +4 on the direct link (1 link).
	if math.Abs(total-4) > 1e-6 {
		t.Fatalf("bought %v units total (%v), want 4", total, stats.AddedCapacity)
	}
}

func TestPlanCapacityForFFCProtection(t *testing.T) {
	// With ke=1 and two link-disjoint tunnels, τ=1: both tunnels must carry
	// the full 14 → the via-s1 route needs 4 extra on each of its two hops
	// and the direct link 4 → 12 units total.
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{Objective: PlanCapacity})
	st, stats, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 14}, Prot: Protection{Ke: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Rate[fx.f24]-14) > 1e-6 {
		t.Fatalf("rate %v, want 14", st.Rate[fx.f24])
	}
	var total float64
	for _, x := range stats.AddedCapacity {
		total += x
	}
	if math.Abs(total-12) > 1e-6 {
		t.Fatalf("bought %v units (%v), want 12", total, stats.AddedCapacity)
	}
	// The expanded network must satisfy the ke=1 guarantee: verify against
	// the raised capacities.
	caps := map[topology.LinkID]float64{}
	for _, l := range fx.net.Links {
		caps[l.ID] = l.Capacity
	}
	for l, x := range stats.AddedCapacity {
		caps[l] += x
	}
	if v := VerifyDataPlane(fx.net, fx.tun, st, 1, 0, caps); v != nil {
		t.Fatalf("planned capacity insufficient: %+v", v)
	}
}

func TestPlanCapacityWeightedCost(t *testing.T) {
	// Make the direct link prohibitively expensive: the optimum should
	// expand the two-hop via-s1 route instead (total 8 units, cost 8).
	fx := newFig25(t)
	direct := fx.net.FindLink(fx.s2, fx.s4)
	twin := fx.net.Links[direct].Twin
	opts := Options{Objective: PlanCapacity, CapacityCost: func(l topology.LinkID) float64 {
		if l == direct || l == twin {
			return 100
		}
		return 1
	}}
	s := NewSolver(fx.net, fx.tun, opts)
	_, stats, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 24}})
	if err != nil {
		t.Fatal(err)
	}
	if x := stats.AddedCapacity[direct]; x > 1e-9 {
		t.Fatalf("expanded the expensive direct link by %v", x)
	}
	var total float64
	for _, x := range stats.AddedCapacity {
		total += x
	}
	if math.Abs(total-8) > 1e-6 {
		t.Fatalf("bought %v units, want 8 on the two-hop route", total)
	}
}

func TestPlanCapacityControlPlane(t *testing.T) {
	// Fig 3/5 situation at kc=2 with the full 10-unit new flow: link s1−s4
	// must fit 10 (new) + 3 + 3 (two stale switches) = 16 → buy 6.
	fx := newFig25(t)
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 10, []float64{7, 3}
	prev.Rate[fx.f34], prev.Alloc[fx.f34] = 10, []float64{7, 3}
	s := NewSolver(fx.net, fx.tun, Options{Objective: PlanCapacity})
	st, stats, err := s.Solve(Input{
		Demands: demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 10},
		Prot:    Protection{Kc: 2},
		Prev:    prev,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Rate[fx.f14]-10) > 1e-6 {
		t.Fatalf("new flow %v, want full 10", st.Rate[fx.f14])
	}
	s14 := fx.net.FindLink(fx.s1, fx.s4)
	if x := stats.AddedCapacity[s14]; math.Abs(x-6) > 1e-6 {
		t.Fatalf("s1−s4 expansion %v, want 6 (%v)", x, stats.AddedCapacity)
	}
}

func TestShadowPricesIdentifyBottleneck(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	// Demand 30 through 20 units of path capacity: both routes binding.
	_, stats, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 30}})
	if err != nil {
		t.Fatal(err)
	}
	direct := fx.net.FindLink(fx.s2, fx.s4)
	if p := stats.LinkShadowPrice[direct]; math.Abs(p-1) > 1e-6 {
		t.Fatalf("direct link shadow price %v, want 1 (unit throughput per unit capacity)", p)
	}
	// A link carrying nothing for this flow has no price.
	s34 := fx.net.FindLink(fx.s3, fx.s4)
	if p := stats.LinkShadowPrice[s34]; p != 0 {
		t.Fatalf("idle link priced at %v", p)
	}
}

func TestShadowPricesRandomConsistency(t *testing.T) {
	// Property: raising the capacity of a positively-priced link by ε must
	// raise max throughput by ≈ ε·price.
	rng := rand.New(rand.NewSource(31))
	net, tun, flows := randomNetwork(rng, 6, 5)
	demands := demand.Matrix{}
	for _, f := range flows {
		demands[f] = 5 + rng.Float64()*10
	}
	s := NewSolver(net, tun, Options{})
	_, stats, err := s.Solve(Input{Demands: demands})
	if err != nil {
		t.Fatal(err)
	}
	for l, price := range stats.LinkShadowPrice {
		if price < 1e-6 {
			continue
		}
		const eps = 1e-3
		caps := map[topology.LinkID]float64{l: net.Links[l].Capacity + eps}
		_, stats2, err := s.Solve(Input{Demands: demands, Capacity: caps})
		if err != nil {
			t.Fatal(err)
		}
		gain := stats2.Objective - stats.Objective
		if math.Abs(gain-eps*price) > 1e-6 {
			t.Fatalf("link %d price %v predicted gain %v, measured %v", l, price, eps*price, gain)
		}
		break // one check suffices per run
	}
}
