//go:build race

package check

// raceEnabled reports whether this test binary was built with the race
// detector; the S-Net fixtures solve ke=2/kv=1 LPs that are ~15x slower
// under instrumentation, so the heavyweight tests skip there (the
// non-race CI job runs them in full).
const raceEnabled = true
