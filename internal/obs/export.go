package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// CounterSnap is one counter or gauge in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistSnap is one histogram in a Snapshot. Values are in the histogram's
// native unit — nanoseconds for span timers and worker-busy timings.
type HistSnap struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot is a point-in-time, deterministically ordered copy of a
// registry's metrics. Two snapshots of the same state marshal to
// identical bytes.
type Snapshot struct {
	Counters []CounterSnap `json:"counters"`
	Gauges   []CounterSnap `json:"gauges,omitempty"`
	Spans    []HistSnap    `json:"spans,omitempty"`
}

// Snapshot captures all metrics sorted by name.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{}
	for _, n := range r.sortedCounterNames() {
		s.Counters = append(s.Counters, CounterSnap{Name: n, Value: r.counts[n].Value()})
	}
	for _, n := range r.sortedGaugeNames() {
		s.Gauges = append(s.Gauges, CounterSnap{Name: n, Value: r.gauges[n].Value()})
	}
	for _, n := range r.sortedHistNames() {
		h := r.hists[n]
		s.Spans = append(s.Spans, HistSnap{
			Name:  n,
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			Min:   h.Min(),
			Max:   h.Max(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		})
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteText writes a human-readable dump: counters and gauges as aligned
// name/value pairs, histograms as a "/"-indented span tree with duration
// formatting.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		width := 0
		for _, c := range s.Counters {
			if len(c.Name) > width {
				width = len(c.Name)
			}
		}
		for _, c := range s.Counters {
			if _, err := fmt.Fprintf(w, "  %-*s %d\n", width, c.Name, c.Value); err != nil {
				return err
			}
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, g := range s.Gauges {
			if _, err := fmt.Fprintf(w, "  %s %d\n", g.Name, g.Value); err != nil {
				return err
			}
		}
	}
	if len(s.Spans) > 0 {
		fmt.Fprintln(w, "spans (total mean p50 p99 max over count):")
		for _, h := range s.Spans {
			if h.Count == 0 {
				continue
			}
			depth := strings.Count(h.Name, "/")
			if _, err := fmt.Fprintf(w, "  %s%-*s %10v %10v %10v %10v %10v ×%d\n",
				strings.Repeat("  ", depth), 36-2*depth, h.Name,
				time.Duration(h.Sum), time.Duration(int64(h.Mean)),
				time.Duration(h.P50), time.Duration(h.P99),
				time.Duration(h.Max), h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
