package ctrl

import (
	"encoding/json"
	"time"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/obs"
	"ffc/internal/topology"
	"ffc/internal/wire"
)

// Plan is one installed TE configuration, immutable after install. The
// controller publishes it behind an atomic pointer; readers share it
// freely and must not mutate State, File, or Encoded.
type Plan struct {
	// Seq increments with every install (restored snapshots resume their
	// persisted sequence).
	Seq int64
	// InstalledAt stamps the install.
	InstalledAt time.Time
	// Degraded carries the degradation reason ("", or timeout/crash/stale/
	// deadline/infeasible/solver-error/unsolved — the sim's vocabulary plus
	// "unsolved" for the pre-first-solve empty plan).
	Degraded string
	// Restored marks a plan loaded from a boot snapshot rather than solved
	// by this process.
	Restored bool
	// Outcome is the solver outcome that produced the plan.
	Outcome core.Outcome
	// Prot is the protection level the plan was computed for.
	Prot core.Protection
	// SolveTime is the wall clock of the producing solve (zero for
	// restored/unsolved plans).
	SolveTime time.Duration

	// State is the raw configuration (granted rates, tunnel allocations).
	State *core.State
	// File is the wire form of State against the controller's topology and
	// tunnel set at install time.
	File wire.StateFile
	// Encoded is File pre-marshalled: the serve path answers get_plan with
	// one buffer copy and zero encoding work.
	Encoded json.RawMessage
}

// Meta is the query-visible header of a plan (everything but the flows).
type Meta struct {
	Seq         int64         `json:"seq"`
	InstalledAt time.Time     `json:"installed_at"`
	Degraded    string        `json:"degraded,omitempty"`
	Restored    bool          `json:"restored,omitempty"`
	Outcome     string        `json:"outcome"`
	Kc          int           `json:"kc"`
	Ke          int           `json:"ke"`
	Kv          int           `json:"kv"`
	SolveTime   time.Duration `json:"solve_time_ns"`
	Flows       int           `json:"flows"`
	TotalRate   float64       `json:"total_rate"`
	TotalDemand float64       `json:"total_demand"`
}

// Meta summarizes the plan.
func (p *Plan) Meta() Meta {
	return Meta{
		Seq:         p.Seq,
		InstalledAt: p.InstalledAt,
		Degraded:    p.Degraded,
		Restored:    p.Restored,
		Outcome:     p.Outcome.String(),
		Kc:          p.Prot.Kc,
		Ke:          p.Prot.Ke,
		Kv:          p.Prot.Kv,
		SolveTime:   p.SolveTime,
		Flows:       len(p.File.Flows),
		TotalRate:   p.File.TotalRate,
		TotalDemand: p.File.TotalDemand,
	}
}

// Routes returns the installed flow entries (rates, tunnel paths, splitting
// weights) — the part a switch agent would program.
func (p *Plan) Routes() []wire.StateFlow { return p.File.Flows }

type installMeta struct {
	seq       int64
	degraded  string
	restored  bool
	outcome   core.Outcome
	solveTime time.Duration

	// prev is the previously installed state (the stale configuration for
	// control-plane certification); nil skips certification and tracing
	// (the pre-first-solve placeholder).
	prev         *core.State
	downLinks    map[topology.LinkID]bool
	downSwitches map[topology.SwitchID]bool
}

// install publishes st as the serving plan: encode once, then swap the
// atomic pointer. The previous plan stays valid for readers that already
// hold it.
func (c *Controller) install(st *core.State, dem demand.Matrix, prot core.Protection, m installMeta) {
	start := time.Now()
	file := wire.EncodeState(c.net, c.set, dem, st)
	blob, err := json.Marshal(file)
	if err != nil {
		// Unreachable for the types involved; keep serving the old plan.
		c.cfg.Logf("ctrl: encoding plan seq=%d: %v", m.seq, err)
		return
	}
	p := &Plan{
		Seq:         m.seq,
		InstalledAt: start,
		Degraded:    m.degraded,
		Restored:    m.restored,
		Outcome:     m.outcome,
		Prot:        prot,
		SolveTime:   m.solveTime,
		State:       st,
		File:        file,
		Encoded:     blob,
	}
	c.plan.Store(p)
	c.stats.plansInstalled.Add(1)
	obsPlansInstalled.Inc()
	if m.degraded != "" && m.degraded != "unsolved" {
		// The pre-first-solve placeholder is marked "unsolved" so clients
		// can tell, but it is a bootstrap artifact, not a degraded install.
		c.stats.degradedInstalls.Add(1)
		obsDegradedInstalls.Inc()
	}
	if obs.Enabled() {
		obsInstallLatency.ObserveSince(start)
	}
	if m.prev != nil {
		c.writeTrace(p, m.downLinks, m.downSwitches)
		if c.cfg.Certify != nil && !m.restored {
			// Restored plans were certified synchronously in New before
			// this install; everything else certifies in the background.
			c.enqueueCert(certJob{
				plan: p, prev: m.prev, set: c.set,
				params: c.certParams(prot, m.degraded, m.downLinks, m.downSwitches),
			})
		}
	}
}
