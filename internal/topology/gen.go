package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// LNetConfig parameterizes the synthetic L-Net-like WAN generator. The real
// L-Net has O(50) sites, O(100) switches and O(1000) links; the defaults
// here produce the same shape at a scale a pure-Go simplex handles in the
// full experiment sweeps. Raise Sites/SwitchesPerSite to approach the
// paper's scale.
type LNetConfig struct {
	// Sites is the number of geographic sites. Default 12.
	Sites int
	// SwitchesPerSite is the number of WAN-facing switches per site.
	// Default 2.
	SwitchesPerSite int
	// AvgSiteDegree is the target average degree of the site-level graph.
	// Default 3.4. A ring is always present, so the effective minimum is 2.
	AvgSiteDegree float64
	// Capacities is the set of inter-site physical link capacities to draw
	// from. Default {40, 100}.
	Capacities []float64
	// IntraSiteCapacity is the capacity of links between same-site
	// switches. Default 400 (intra-site fabric is not the bottleneck).
	IntraSiteCapacity float64
}

func (c *LNetConfig) fillDefaults() {
	if c.Sites == 0 {
		c.Sites = 12
	}
	if c.SwitchesPerSite == 0 {
		c.SwitchesPerSite = 2
	}
	if c.AvgSiteDegree == 0 {
		c.AvgSiteDegree = 3.4
	}
	if len(c.Capacities) == 0 {
		c.Capacities = []float64{40, 100}
	}
	if c.IntraSiteCapacity == 0 {
		c.IntraSiteCapacity = 400
	}
}

// LNet generates an L-Net-like wide-area network: sites scattered on the
// globe, a connected site-level graph biased toward short links (Waxman
// style), and full switch-pair meshes across each site adjacency so flows
// have parallel paths (the paper's L-Net has many parallel switch-level
// links per site pair).
func LNet(cfg LNetConfig, rng *rand.Rand) *Network {
	cfg.fillDefaults()
	n := NewNetwork("L-Net")

	type site struct {
		lat, lon float64
		switches []SwitchID
	}
	sites := make([]site, cfg.Sites)
	for i := range sites {
		// Populated latitudes: −45..+60.
		sites[i].lat = -45 + rng.Float64()*105
		sites[i].lon = -180 + rng.Float64()*360
		for j := 0; j < cfg.SwitchesPerSite; j++ {
			id := n.AddSwitch(fmt.Sprintf("site%02d-sw%d", i, j), fmt.Sprintf("site%02d", i), sites[i].lat, sites[i].lon)
			sites[i].switches = append(sites[i].switches, id)
		}
	}

	// Intra-site full mesh.
	for _, s := range sites {
		for a := 0; a < len(s.switches); a++ {
			for b := a + 1; b < len(s.switches); b++ {
				n.AddDuplex(s.switches[a], s.switches[b], cfg.IntraSiteCapacity)
			}
		}
	}

	// Site-level graph: ring for connectivity plus Waxman-ish extras.
	adj := make(map[[2]int]bool)
	addSiteEdge := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if adj[[2]int{a, b}] {
			return
		}
		adj[[2]int{a, b}] = true
		capac := cfg.Capacities[rng.Intn(len(cfg.Capacities))]
		for _, sa := range sites[a].switches {
			for _, sb := range sites[b].switches {
				n.AddDuplex(sa, sb, capac)
			}
		}
	}
	perm := rng.Perm(cfg.Sites)
	for i := 0; i < cfg.Sites; i++ {
		addSiteEdge(perm[i], perm[(i+1)%cfg.Sites])
	}
	wantEdges := int(cfg.AvgSiteDegree * float64(cfg.Sites) / 2)
	maxDist := 0.0
	dist := func(a, b int) float64 {
		return n.GeoDistanceKm(sites[a].switches[0], sites[b].switches[0])
	}
	for a := 0; a < cfg.Sites; a++ {
		for b := a + 1; b < cfg.Sites; b++ {
			if d := dist(a, b); d > maxDist {
				maxDist = d
			}
		}
	}
	for guard := 0; len(adj) < wantEdges && guard < 100000; guard++ {
		a, b := rng.Intn(cfg.Sites), rng.Intn(cfg.Sites)
		if a == b {
			continue
		}
		// Waxman probability: prefer geographically short edges.
		p := 0.9 * math.Exp(-dist(a, b)/(0.35*maxDist))
		if rng.Float64() < p {
			addSiteEdge(a, b)
		}
	}
	return n
}

// b4SiteEdges is the site-level adjacency used for S-Net, approximating the
// published B4 map (12 data-center sites spanning three continents, 19
// site-level links).
var b4SiteEdges = [][2]int{
	{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {3, 5},
	{4, 5}, {4, 6}, {5, 7}, {6, 7}, {6, 8}, {7, 8}, {7, 9},
	{8, 9}, {8, 10}, {9, 11}, {10, 11}, {2, 5},
}

// b4Sites gives the approximate geography of the 12 sites (name, lat, lon).
var b4Sites = []struct {
	name     string
	lat, lon float64
}{
	{"us-west1", 45.6, -121.2}, {"us-west2", 37.4, -122.1}, {"us-central1", 41.2, -95.9},
	{"us-central2", 33.7, -97.1}, {"us-east1", 33.0, -80.0}, {"us-east2", 39.0, -77.5},
	{"eu-west1", 53.3, -6.3}, {"eu-west2", 50.4, 3.8}, {"eu-central1", 52.5, 13.4},
	{"asia-east1", 24.1, 120.7}, {"asia-se1", 1.35, 103.8}, {"asia-ne1", 35.6, 139.7},
}

// SNet generates the S-Net topology of §8.1: B4's 12-site site-level graph,
// two switches per site, each site-level link realized as four 10-unit
// switch-level links between the four inter-site switch pairs.
func SNet() *Network {
	n := NewNetwork("S-Net")
	sw := make([][2]SwitchID, len(b4Sites))
	for i, s := range b4Sites {
		sw[i][0] = n.AddSwitch(s.name+"-a", s.name, s.lat, s.lon)
		sw[i][1] = n.AddSwitch(s.name+"-b", s.name, s.lat, s.lon)
		n.AddDuplex(sw[i][0], sw[i][1], 400)
	}
	for _, e := range b4SiteEdges {
		for _, a := range sw[e[0]] {
			for _, b := range sw[e[1]] {
				n.AddDuplex(a, b, 10)
			}
		}
	}
	return n
}

// Testbed returns the 8-site/4-continent WAN emulated in §7 (Figure 9):
// one WAN-facing switch per site, every cross-site link 1 unit (1 Gbps).
// The exact link set of Figure 9 is not given numerically in the paper; this
// reconstruction includes every link and tunnel the text references
// (s6–s7, s4–s5, s4–s3, s4–s6, s3–s6, s3–s5) plus periphery so that all
// sites are multiply connected.
func Testbed() *Network {
	n := NewNetwork("testbed")
	coords := []struct {
		name     string
		lat, lon float64
	}{
		{"s1", 47.6, -122.3}, // Seattle
		{"s2", 37.8, -122.4}, // San Francisco
		{"s3", 51.5, -0.1},   // London
		{"s4", 50.1, 8.7},    // Frankfurt
		{"s5", 40.7, -74.0},  // New York (TE controller site)
		{"s6", 1.35, 103.8},  // Singapore
		{"s7", 35.6, 139.7},  // Tokyo
		{"s8", -33.9, 151.2}, // Sydney
	}
	ids := make([]SwitchID, len(coords))
	for i, c := range coords {
		ids[i] = n.AddSwitch(c.name, c.name, c.lat, c.lon)
	}
	edges := [][2]int{
		{1, 2}, {1, 5}, {2, 5}, {2, 4}, {3, 4}, {3, 5}, {3, 6},
		{4, 5}, {4, 6}, {5, 6}, {6, 7}, {5, 7}, {7, 8}, {6, 8},
	}
	for _, e := range edges {
		n.AddDuplex(ids[e[0]-1], ids[e[1]-1], 1)
	}
	return n
}

// Example4 returns the 4-switch illustrative network of Figures 2–5:
// switches s1…s4, duplex unit-capacity links forming the diamond used by
// both the data-plane (Fig 2/4) and control-plane (Fig 3/5) walkthroughs.
// Capacities are 10 units, matching the figures' numbers.
func Example4() *Network {
	n := NewNetwork("example4")
	s1 := n.AddSwitch("s1", "s1", 0, 0)
	s2 := n.AddSwitch("s2", "s2", 0, 1)
	s3 := n.AddSwitch("s3", "s3", 1, 0)
	s4 := n.AddSwitch("s4", "s4", 1, 1)
	n.AddDuplex(s1, s2, 10)
	n.AddDuplex(s1, s3, 10)
	n.AddDuplex(s1, s4, 10)
	n.AddDuplex(s2, s4, 10)
	n.AddDuplex(s3, s4, 10)
	n.AddDuplex(s2, s3, 10)
	return n
}
