// Package topology models the TE input network: switches connected by
// directed capacitated links, as in the paper's G = (V, E). It also ships
// generators for the evaluation networks (§8.1): an L-Net-like wide-area
// network, the S-Net/B4 12-site topology, the 8-site testbed of Figure 9,
// and the small illustrative networks of Figures 2–5.
package topology

import (
	"encoding/json"
	"fmt"
	"math"
)

// SwitchID indexes a switch within a Network.
type SwitchID int

// LinkID indexes a directed link within a Network.
type LinkID int

// None marks an absent link reference (e.g. no reverse twin).
const None LinkID = -1

// Switch is one forwarding element.
type Switch struct {
	ID   SwitchID `json:"id"`
	Name string   `json:"name"`
	// Site groups switches that share a physical location; inter-site
	// links dominate propagation delay.
	Site string `json:"site"`
	// Lat and Lon position the site for propagation-delay estimates
	// (degrees).
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Link is a directed capacitated edge.
type Link struct {
	ID       LinkID   `json:"id"`
	Src      SwitchID `json:"src"`
	Dst      SwitchID `json:"dst"`
	Capacity float64  `json:"capacity"` // abstract bandwidth units (Gbps)
	// Twin is the reverse direction of the same physical link, or None.
	// A physical (data-plane) link failure takes out both directions.
	Twin LinkID `json:"twin"`
}

// Network is the TE graph.
type Network struct {
	Name     string   `json:"name"`
	Switches []Switch `json:"switches"`
	Links    []Link   `json:"links"`

	out [][]LinkID // lazily built adjacency
	in  [][]LinkID
}

// NewNetwork returns an empty named network.
func NewNetwork(name string) *Network { return &Network{Name: name} }

// AddSwitch appends a switch and returns its ID.
func (n *Network) AddSwitch(name, site string, lat, lon float64) SwitchID {
	id := SwitchID(len(n.Switches))
	n.Switches = append(n.Switches, Switch{ID: id, Name: name, Site: site, Lat: lat, Lon: lon})
	n.out, n.in = nil, nil
	return id
}

// AddLink appends a single directed link and returns its ID.
func (n *Network) AddLink(src, dst SwitchID, capacity float64) LinkID {
	id := LinkID(len(n.Links))
	n.Links = append(n.Links, Link{ID: id, Src: src, Dst: dst, Capacity: capacity, Twin: None})
	n.out, n.in = nil, nil
	return id
}

// AddDuplex appends both directions of a physical link, cross-referencing
// them as twins, and returns the forward direction's ID.
func (n *Network) AddDuplex(a, b SwitchID, capacity float64) LinkID {
	f := n.AddLink(a, b, capacity)
	r := n.AddLink(b, a, capacity)
	n.Links[f].Twin = r
	n.Links[r].Twin = f
	return f
}

// NumSwitches returns |V|.
func (n *Network) NumSwitches() int { return len(n.Switches) }

// NumLinks returns |E| (directed).
func (n *Network) NumLinks() int { return len(n.Links) }

func (n *Network) buildAdj() {
	if n.out != nil {
		return
	}
	n.out = make([][]LinkID, len(n.Switches))
	n.in = make([][]LinkID, len(n.Switches))
	for _, l := range n.Links {
		n.out[l.Src] = append(n.out[l.Src], l.ID)
		n.in[l.Dst] = append(n.in[l.Dst], l.ID)
	}
}

// OutLinks returns the IDs of links leaving v.
func (n *Network) OutLinks(v SwitchID) []LinkID {
	n.buildAdj()
	return n.out[v]
}

// InLinks returns the IDs of links entering v.
func (n *Network) InLinks(v SwitchID) []LinkID {
	n.buildAdj()
	return n.in[v]
}

// FindLink returns the first link src→dst, or None.
func (n *Network) FindLink(src, dst SwitchID) LinkID {
	n.buildAdj()
	for _, id := range n.out[src] {
		if n.Links[id].Dst == dst {
			return id
		}
	}
	return None
}

// SwitchByName returns the switch with the given name.
func (n *Network) SwitchByName(name string) (SwitchID, bool) {
	for _, s := range n.Switches {
		if s.Name == name {
			return s.ID, true
		}
	}
	return -1, false
}

// Clone deep-copies the network.
func (n *Network) Clone() *Network {
	c := &Network{Name: n.Name}
	c.Switches = append([]Switch(nil), n.Switches...)
	c.Links = append([]Link(nil), n.Links...)
	return c
}

// Validate checks internal consistency: link endpoints exist, twins are
// mutual, capacities are positive.
func (n *Network) Validate() error {
	for _, l := range n.Links {
		if l.Src < 0 || int(l.Src) >= len(n.Switches) || l.Dst < 0 || int(l.Dst) >= len(n.Switches) {
			return fmt.Errorf("topology: link %d endpoints (%d,%d) out of range", l.ID, l.Src, l.Dst)
		}
		if l.Src == l.Dst {
			return fmt.Errorf("topology: link %d is a self-loop at switch %d", l.ID, l.Src)
		}
		if l.Capacity <= 0 {
			return fmt.Errorf("topology: link %d has non-positive capacity %g", l.ID, l.Capacity)
		}
		if l.Twin != None {
			if l.Twin < 0 || int(l.Twin) >= len(n.Links) {
				return fmt.Errorf("topology: link %d twin %d out of range", l.ID, l.Twin)
			}
			t := n.Links[l.Twin]
			if t.Twin != l.ID || t.Src != l.Dst || t.Dst != l.Src {
				return fmt.Errorf("topology: link %d twin %d is not its reverse", l.ID, l.Twin)
			}
		}
	}
	return nil
}

// Connected reports whether the network is strongly connected when every
// duplex link is traversable both ways.
func (n *Network) Connected() bool {
	if len(n.Switches) == 0 {
		return true
	}
	n.buildAdj()
	seen := make([]bool, len(n.Switches))
	stack := []SwitchID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range n.out[v] {
			d := n.Links[id].Dst
			if !seen[d] {
				seen[d] = true
				count++
				stack = append(stack, d)
			}
		}
	}
	return count == len(n.Switches)
}

// TotalCapacity sums directed link capacities.
func (n *Network) TotalCapacity() float64 {
	var s float64
	for _, l := range n.Links {
		s += l.Capacity
	}
	return s
}

// MarshalJSON implements json.Marshaler (adjacency caches excluded).
func (n *Network) MarshalJSON() ([]byte, error) {
	type wire struct {
		Name     string   `json:"name"`
		Switches []Switch `json:"switches"`
		Links    []Link   `json:"links"`
	}
	return json.Marshal(wire{n.Name, n.Switches, n.Links})
}

// UnmarshalJSON implements json.Unmarshaler.
func (n *Network) UnmarshalJSON(b []byte) error {
	type wire struct {
		Name     string   `json:"name"`
		Switches []Switch `json:"switches"`
		Links    []Link   `json:"links"`
	}
	var w wire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	n.Name, n.Switches, n.Links = w.Name, w.Switches, w.Links
	n.out, n.in = nil, nil
	return n.Validate()
}

// GeoDistanceKm returns the great-circle distance between two switches'
// sites in kilometres.
func (n *Network) GeoDistanceKm(a, b SwitchID) float64 {
	const earthRadiusKm = 6371
	sa, sb := n.Switches[a], n.Switches[b]
	lat1, lon1 := sa.Lat*math.Pi/180, sa.Lon*math.Pi/180
	lat2, lon2 := sb.Lat*math.Pi/180, sb.Lon*math.Pi/180
	dlat, dlon := lat2-lat1, lon2-lon1
	h := math.Sin(dlat/2)*math.Sin(dlat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dlon/2)*math.Sin(dlon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}
