package lp

import "math"

// Brute-force reference solver for small LPs, used only in tests.
// It enumerates vertices of the feasible polytope: every vertex of
// {x : Ax (sense) b, l ≤ x ≤ u} (with finite l, u) is the solution of n
// linearly independent equations chosen from the rows (at equality) and the
// variable bounds.

type refProblem struct {
	n        int
	maximize bool
	obj      []float64
	rows     [][]float64
	sense    []Sense
	rhs      []float64
	lo, hi   []float64
}

// refSolve returns (best objective, found) by vertex enumeration. All
// variable bounds must be finite, guaranteeing the feasible set is a
// polytope whose optimum (when feasible) is attained at a vertex.
func refSolve(p *refProblem) (float64, []float64, bool) {
	type cand struct {
		row []float64
		rhs float64
	}
	var cands []cand
	for i, r := range p.rows {
		_ = p.sense[i]
		cands = append(cands, cand{r, p.rhs[i]})
	}
	for j := 0; j < p.n; j++ {
		row := make([]float64, p.n)
		row[j] = 1
		cands = append(cands, cand{row, p.lo[j]})
		if p.hi[j] != p.lo[j] {
			row2 := make([]float64, p.n)
			row2[j] = 1
			cands = append(cands, cand{row2, p.hi[j]})
		}
	}
	best := math.Inf(-1)
	if !p.maximize {
		best = math.Inf(1)
	}
	var bestX []float64
	found := false
	idx := make([]int, p.n)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == p.n {
			a := make([]float64, p.n*p.n)
			b := make([]float64, p.n)
			for k, ci := range idx {
				copy(a[k*p.n:(k+1)*p.n], cands[ci].row)
				b[k] = cands[ci].rhs
			}
			x, ok := gaussSolve(a, b, p.n)
			if !ok || !refFeasible(p, x) {
				return
			}
			v := dot(p.obj, x)
			if !found || (p.maximize && v > best) || (!p.maximize && v < best) {
				best, found = v, true
				bestX = append([]float64(nil), x...)
			}
			return
		}
		for c := start; c <= len(cands)-(p.n-pos); c++ {
			idx[pos] = c
			rec(pos+1, c+1)
		}
	}
	rec(0, 0)
	return best, bestX, found
}

func refFeasible(p *refProblem, x []float64) bool {
	const tol = 1e-7
	for j := 0; j < p.n; j++ {
		if x[j] < p.lo[j]-tol || x[j] > p.hi[j]+tol {
			return false
		}
	}
	for i, r := range p.rows {
		v := dot(r, x)
		switch p.sense[i] {
		case LE:
			if v > p.rhs[i]+tol {
				return false
			}
		case GE:
			if v < p.rhs[i]-tol {
				return false
			}
		case EQ:
			if math.Abs(v-p.rhs[i]) > tol {
				return false
			}
		}
	}
	return true
}

func dot(a, b []float64) float64 {
	var v float64
	for i := range a {
		v += a[i] * b[i]
	}
	return v
}

// gaussSolve solves the n×n system a·x = b; ok is false when a is singular.
func gaussSolve(a, b []float64, n int) ([]float64, bool) {
	for col := 0; col < n; col++ {
		p, best := -1, 1e-9
		for r := col; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > best {
				p, best = r, v
			}
		}
		if p < 0 {
			return nil, false
		}
		if p != col {
			swapRows(a, n, p, col)
			b[p], b[col] = b[col], b[p]
		}
		piv := a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] / piv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r*n+k] -= f * a[col*n+k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for k := r + 1; k < n; k++ {
			v -= a[r*n+k] * x[k]
		}
		x[r] = v / a[r*n+r]
	}
	return x, true
}

// toModel converts a refProblem into an lp.Model.
func (p *refProblem) toModel() (*Model, []Var) {
	m := NewModel()
	vars := make([]Var, p.n)
	for j := 0; j < p.n; j++ {
		vars[j] = m.NewVar("x", p.lo[j], p.hi[j])
	}
	for i, r := range p.rows {
		e := NewExpr()
		for j, c := range r {
			e.Add(c, vars[j])
		}
		m.AddConstraint(e, p.sense[i], p.rhs[i])
	}
	obj := NewExpr()
	for j, c := range p.obj {
		obj.Add(c, vars[j])
	}
	if p.maximize {
		m.Maximize(obj)
	} else {
		m.Minimize(obj)
	}
	return m, vars
}
