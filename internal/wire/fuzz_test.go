package wire

import (
	"testing"

	"ffc/internal/topology"
)

// FuzzParseDemands guards the demands parser against malformed inputs: it
// must return an error or a valid matrix, never panic.
func FuzzParseDemands(f *testing.F) {
	f.Add([]byte(`{"demands":[{"src":"s2","dst":"s4","demand":7}]}`))
	f.Add([]byte(`{"demands":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"demands":[{"src":"s2","dst":"s2","demand":-1}]}`))
	net := topology.Example4()
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseDemands(net, data)
		if err != nil {
			return
		}
		for fl, d := range m {
			if d < 0 {
				t.Fatalf("negative demand %v for %v accepted", d, fl)
			}
			if fl.Src == fl.Dst {
				t.Fatalf("self-flow %v accepted", fl)
			}
		}
	})
}
