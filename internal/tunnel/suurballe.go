package tunnel

import (
	"container/heap"
	"math"
	"sort"

	"ffc/internal/topology"
)

// DisjointPair returns a pair of physically link-disjoint paths from src to
// dst with minimum total weight (Suurballe/Bhandari), or a single shortest
// path when no disjoint pair exists, or nil when dst is unreachable.
//
// Greedy successive-shortest-paths can fail to find a disjoint pair that
// exists (the first path may use the only bridge between two otherwise
// disjoint routes); Suurballe's reduced-cost reversal is exact. The (1,q)
// tunnel layout seeds each flow with this pair before filling in greedily,
// so τf = |Tf| − ke·pf never collapses merely because the shortest path was
// greedy.
func DisjointPair(net *topology.Network, src, dst topology.SwitchID, w WeightFunc) [][]topology.LinkID {
	if w == nil {
		w = UnitWeights
	}
	dist, ok := dijkstraAll(net, src, w)
	if !ok[dst] {
		return nil
	}
	p1 := ShortestPath(net, src, dst, w, nil, nil)
	if p1 == nil {
		return nil
	}

	onP1 := map[topology.LinkID]bool{}
	twinOfP1 := map[topology.LinkID]bool{}
	for _, l := range p1 {
		onP1[l] = true
		if tw := net.Links[l].Twin; tw != topology.None {
			twinOfP1[tw] = true
		}
	}
	// Reduced costs: w'(u→v) = w + d(u) − d(v) ≥ 0; P1's edges are
	// removed and their twins become the zero-cost "reversal" arcs.
	reduced := func(l topology.LinkID) float64 {
		if onP1[l] {
			return math.Inf(1)
		}
		if twinOfP1[l] {
			return 0
		}
		lk := net.Links[l]
		if !ok[lk.Src] || !ok[lk.Dst] {
			return math.Inf(1)
		}
		c := w(l) + dist[lk.Src] - dist[lk.Dst]
		if c < 0 {
			c = 0 // floating-point guard; exact reduced costs are ≥ 0
		}
		return c
	}
	p2 := ShortestPath(net, src, dst, reduced, nil, nil)
	if p2 == nil {
		return [][]topology.LinkID{p1}
	}

	// Merge: cancel opposite traversals of the same physical link, then
	// decompose the remaining arcs into two s→t paths.
	use := map[topology.LinkID]int{}
	for _, l := range p1 {
		use[l]++
	}
	for _, l := range p2 {
		if tw := net.Links[l].Twin; tw != topology.None && use[tw] > 0 {
			use[tw]--
			continue
		}
		use[l]++
	}
	// Decomposition adjacency, built in sorted link order: when a vertex
	// has several outgoing arcs, which arc joins which of the two paths
	// depends on this order — iterating the map directly would make the
	// layout (and everything downstream of it) vary per process.
	merged := make([]topology.LinkID, 0, len(use))
	for l := range use {
		merged = append(merged, l)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	next := map[topology.SwitchID][]topology.LinkID{}
	for _, l := range merged {
		for i := 0; i < use[l]; i++ {
			next[net.Links[l].Src] = append(next[net.Links[l].Src], l)
		}
	}
	var out [][]topology.LinkID
	for i := 0; i < 2; i++ {
		var path []topology.LinkID
		v := src
		for v != dst {
			ls := next[v]
			if len(ls) == 0 {
				return [][]topology.LinkID{p1} // decomposition failed; fall back
			}
			l := ls[len(ls)-1]
			next[v] = ls[:len(ls)-1]
			path = append(path, l)
			v = net.Links[l].Dst
			if len(path) > net.NumLinks() {
				return [][]topology.LinkID{p1}
			}
		}
		out = append(out, path)
	}
	return out
}

// dijkstraAll computes shortest distances from src to every switch.
func dijkstraAll(net *topology.Network, src topology.SwitchID, w WeightFunc) ([]float64, []bool) {
	n := net.NumSwitches()
	dist := make([]float64, n)
	done := make([]bool, n)
	reach := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	reach[src] = true
	h := &pathHeap{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		v := it.sw
		if done[v] {
			continue
		}
		done[v] = true
		for _, lid := range net.OutLinks(v) {
			c := w(lid)
			if math.IsInf(c, 1) {
				continue
			}
			d := net.Links[lid].Dst
			if nd := it.dist + c; nd < dist[d]-1e-12 {
				dist[d] = nd
				reach[d] = true
				heap.Push(h, pqItem{d, nd})
			}
		}
	}
	return dist, reach
}
