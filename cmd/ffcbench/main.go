// Command ffcbench regenerates the paper's tables and figures (see
// DESIGN.md's per-experiment index). Examples:
//
//	ffcbench -exp all
//	ffcbench -exp fig13,fig14 -net lnet -sites 10 -intervals 48
//	ffcbench -exp table2 -net both
//
// Output is text: aligned tables for bar/line figures and "x y" series for
// CDFs, labelled with the corresponding paper artifact.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ffc/internal/experiments"
	"ffc/internal/faults"
	"ffc/internal/metrics"
)

var allExperiments = []string{
	"fig1a", "fig1b", "fig2to5", "fig6", "fig11", "fig12", "table2",
	"fig13", "fig14", "fig15", "fig16", "ablation_encoding", "ablation_tunnels", "ablation_rescaling",
}

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids, or 'all' ("+strings.Join(allExperiments, ",")+")")
		netKind   = flag.String("net", "lnet", "network: lnet, snet, or both")
		sites     = flag.Int("sites", 8, "L-Net sites (the real L-Net is ~50; larger is slower)")
		intervals = flag.Int("intervals", 24, "TE intervals in the demand series")
		seed      = flag.Int64("seed", 1, "random seed")
		tunnels   = flag.Int("tunnels", 6, "tunnels per flow")
		quick     = flag.Bool("quick", false, "shrink everything for a fast smoke run")
		par       = flag.Int("parallel", 0, "worker count for parallel stages (<=0 = all cores, 1 = serial)")
		compare   = flag.Bool("compare-serial", false, "after the run, repeat with -parallel 1 and print a wall-clock speedup table")
	)
	flag.Parse()

	if *quick {
		*sites, *intervals, *tunnels = 6, 6, 4
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, e := range allExperiments {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			e = strings.TrimSpace(e)
			if e != "" {
				want[e] = true
			}
		}
	}
	for e := range want {
		if !contains(allExperiments, e) {
			fatalf("unknown experiment %q; known: %s", e, strings.Join(allExperiments, ", "))
		}
	}

	var envs []*experiments.Env
	needEnv := false
	for e := range want {
		if e != "fig6" && e != "fig11" && e != "fig2to5" {
			needEnv = true
		}
	}
	if needEnv {
		cfg := experiments.EnvConfig{Sites: *sites, Intervals: *intervals, Seed: *seed, TunnelsPerFlow: *tunnels, Parallelism: *par}
		if *netKind == "lnet" || *netKind == "both" {
			fmt.Fprintf(os.Stderr, "building L-Net environment (%d sites, %d intervals)...\n", *sites, *intervals)
			env, err := experiments.NewLNet(cfg)
			if err != nil {
				fatalf("%v", err)
			}
			envs = append(envs, env)
		}
		if *netKind == "snet" || *netKind == "both" {
			fmt.Fprintln(os.Stderr, "building S-Net environment...")
			env, err := experiments.NewSNet(cfg)
			if err != nil {
				fatalf("%v", err)
			}
			envs = append(envs, env)
		}
		if len(envs) == 0 {
			fatalf("unknown -net %q (want lnet, snet, or both)", *netKind)
		}
	}

	pass := func(out io.Writer, sw *metrics.Stopwatch, verbose bool) {
		run := func(id string, fn func() error) {
			if !want[id] {
				return
			}
			t0 := time.Now()
			if verbose {
				fmt.Fprintf(os.Stderr, "running %s...\n", id)
			}
			if err := fn(); err != nil {
				fatalf("%s: %v", id, err)
			}
			d := time.Since(t0)
			sw.Record(id, d)
			if verbose {
				fmt.Fprintf(os.Stderr, "  %s done in %v\n", id, d.Round(time.Millisecond))
			}
			fmt.Fprintln(out)
		}

		run("fig2to5", func() error { return experiments.Fig2to5(out) })
		run("fig6", func() error { experiments.Fig6(out); return nil })
		run("fig11", func() error { return experiments.Fig11(out) })
		for _, env := range envs {
			env := env
			run("fig1a", func() error { _, err := experiments.Fig1a(env, out); return err })
			run("fig1b", func() error { _, err := experiments.Fig1b(env, out); return err })
			run("fig12", func() error { _, err := experiments.Fig12(env, out); return err })
			run("table2", func() error { _, err := experiments.Table2(env, out); return err })
			run("fig13", func() error { _, err := experiments.Fig13(env, out, nil, nil); return err })
			run("fig14", func() error {
				_, err := experiments.Fig14(env, out, faults.Realistic())
				return err
			})
			run("fig15", func() error { _, err := experiments.Fig15(env, out, nil, 0); return err })
			run("fig16", func() error { _, err := experiments.Fig16(env, out, 0); return err })
			run("ablation_encoding", func() error { _, err := experiments.AblationEncoding(env, out); return err })
			run("ablation_tunnels", func() error { _, err := experiments.AblationTunnels(env, out); return err })
			run("ablation_rescaling", func() error { _, err := experiments.AblationRescaling(env, out); return err })
		}
	}

	start := time.Now()
	var parTimes metrics.Stopwatch
	pass(os.Stdout, &parTimes, true)
	fmt.Fprintf(os.Stderr, "all done in %v\n", time.Since(start).Round(time.Millisecond))

	if *compare {
		fmt.Fprintln(os.Stderr, "re-running serially (-parallel 1) for the speedup table...")
		for _, env := range envs {
			env.Parallelism = 1
		}
		var serTimes metrics.Stopwatch
		pass(io.Discard, &serTimes, false)
		fmt.Println("# wall-clock: serial vs parallel")
		fmt.Print(metrics.RenderSpeedup(&serTimes, &parTimes))
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ffcbench: "+format+"\n", args...)
	os.Exit(1)
}
