package core

import (
	"math"
	"math/rand"
	"testing"

	"ffc/internal/demand"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

func TestMaxMinFairSharesBottleneck(t *testing.T) {
	fx := newFig25(t)
	// Both flows want 14 but share link s1−s4 for their overflow beyond the
	// 10-unit direct links: max-min splits the shared 10 evenly.
	s := NewSolver(fx.net, fx.tun, Options{})
	res, err := s.SolveMaxMin(Input{Demands: demand.Matrix{fx.f24: 14, fx.f34: 14}}, 1.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := res.State.Rate[fx.f24], res.State.Rate[fx.f34]
	if math.Abs(r1-r2) > 1.0 { // α=1.1 approximation slack
		t.Fatalf("max-min rates uneven: %v vs %v", r1, r2)
	}
	if r1+r2 < 19 {
		t.Fatalf("max-min wasted capacity: total %v, want ~20", r1+r2)
	}
	if res.Iterations < 2 {
		t.Fatalf("expected multiple iterations, got %d", res.Iterations)
	}
}

func TestMaxMinVsMaxThroughputStarvation(t *testing.T) {
	// Craft a case where max-throughput starves a long flow: flow A uses
	// two links that flows B and C each use one of. Max-throughput prefers
	// B+C (2 units per unit of capacity); max-min gives A a fair share.
	net, tun, _ := lineNetwork()
	fA := tunnel.Flow{Src: 0, Dst: 2}
	fB := tunnel.Flow{Src: 0, Dst: 1}
	fC := tunnel.Flow{Src: 1, Dst: 2}
	d := demand.Matrix{fA: 10, fB: 10, fC: 10}
	s := NewSolver(net, tun, Options{})
	stMax, _, err := s.Solve(Input{Demands: d})
	if err != nil {
		t.Fatal(err)
	}
	if stMax.Rate[fA] > 1e-6 {
		t.Fatalf("max-throughput should starve the long flow, got %v", stMax.Rate[fA])
	}
	res, err := s.SolveMaxMin(Input{Demands: d}, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Rate[fA] < 3 {
		t.Fatalf("max-min long-flow rate %v, want ≥ 3 (fair share ~5)", res.State.Rate[fA])
	}
}

// lineNetwork: 0−1−2 with 10-capacity duplex links; flows get their only
// paths as tunnels.
func lineNetwork() (*topology.Network, *tunnel.Set, []tunnel.Flow) {
	net := topology.NewNetwork("line")
	a := net.AddSwitch("a", "a", 0, 0)
	b := net.AddSwitch("b", "b", 0, 1)
	c := net.AddSwitch("c", "c", 0, 2)
	net.AddDuplex(a, b, 10)
	net.AddDuplex(b, c, 10)
	flows := []tunnel.Flow{{Src: a, Dst: c}, {Src: a, Dst: b}, {Src: b, Dst: c}}
	set := tunnel.Layout(net, flows, tunnel.LayoutConfig{TunnelsPerFlow: 2, P: 1, Q: 3})
	return net, set, flows
}

func TestMaxMinWithFFC(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	res, err := s.SolveMaxMin(Input{
		Demands: demand.Matrix{fx.f24: 14, fx.f34: 14},
		Prot:    Protection{Ke: 1},
	}, 1.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := VerifyDataPlane(fx.net, fx.tun, res.State, 1, 0, nil); v != nil {
		t.Fatalf("max-min FFC state violates guarantee: %+v", v)
	}
	r1, r2 := res.State.Rate[fx.f24], res.State.Rate[fx.f34]
	if math.Abs(r1-r2) > 1.0 { // α=1.1 approximation slack
		t.Fatalf("max-min FFC rates uneven: %v vs %v", r1, r2)
	}
}

func TestMaxMinEmptyDemands(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	res, err := s.SolveMaxMin(Input{Demands: demand.Matrix{}}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.TotalRate() != 0 {
		t.Fatal("empty demands should yield an empty state")
	}
}

func TestPlanUpdateDirectWhenSafe(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 5, []float64{5, 0}
	target := NewState()
	target.Rate[fx.f24], target.Alloc[fx.f24] = 5, []float64{5, 0}
	plan, err := s.PlanUpdate(prev, target, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Reached || len(plan.Steps) != 1 {
		t.Fatalf("identity update should be one direct step: %+v", plan)
	}
}

// TestPlanUpdatePaperScenario: the Fig 3 transition done safely. Moving
// {s2,s3}→s4 traffic off the via-s1 tunnels and then admitting s1→s4 must
// happen in multiple steps, and the chain must tolerate stuck switches.
func TestPlanUpdatePaperScenario(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 10, []float64{7, 3}
	prev.Rate[fx.f34], prev.Alloc[fx.f34] = 10, []float64{7, 3}
	prev.Rate[fx.f14], prev.Alloc[fx.f14] = 0, []float64{0}
	target := NewState()
	target.Rate[fx.f24], target.Alloc[fx.f24] = 10, []float64{10, 0}
	target.Rate[fx.f34], target.Alloc[fx.f34] = 10, []float64{10, 0}
	target.Rate[fx.f14], target.Alloc[fx.f14] = 10, []float64{10}

	for _, kc := range []int{0, 1, 2} {
		// The chain's destination must itself be kc-robust relative to the
		// history, so the proper target is the FFC-TE solution (which
		// admits 10/7/4 of the new flow for kc=0/1/2 — Fig 5).
		kcTarget := target
		if kc > 0 {
			st, _, err := s.Solve(Input{
				Demands: demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 10},
				Prot:    Protection{Kc: kc},
				Prev:    prev,
			})
			if err != nil {
				t.Fatalf("kc=%d: target solve: %v", kc, err)
			}
			kcTarget = st
		}
		plan, err := s.PlanUpdate(prev, kcTarget, kc, 8)
		if err != nil {
			t.Fatalf("kc=%d: %v", kc, err)
		}
		if !plan.Reached {
			t.Fatalf("kc=%d: target not reached", kc)
		}
		// Every adjacent transition must satisfy Eqn 16 (+FFC) — re-check
		// numerically with the solver's own checker.
		hist := []*State{prev}
		for _, st := range plan.Steps {
			if !s.transitionSafe(hist, st, kc) {
				t.Fatalf("kc=%d: unsafe transition in plan", kc)
			}
			hist = append(hist, st)
		}
	}
}

// TestPlanUpdateStuckSwitchSimulation simulates executing the kc=1 plan with
// one switch stuck at every step; no link may overload at any point.
func TestPlanUpdateStuckSwitchSimulation(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 10, []float64{7, 3}
	prev.Rate[fx.f34], prev.Alloc[fx.f34] = 10, []float64{7, 3}
	prev.Rate[fx.f14], prev.Alloc[fx.f14] = 0, []float64{0}
	// kc=1-robust destination (admits 7 units of f14, per Fig 5).
	target, _, err := s.Solve(Input{
		Demands: demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 10},
		Prot:    Protection{Kc: 1},
		Prev:    prev,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.PlanUpdate(prev, target, 1, 8)
	if err != nil || !plan.Reached {
		t.Fatalf("plan failed: %v", err)
	}
	// One stuck ingress switch: it applies none of the steps. Check the
	// network state after each step with the stuck switch's flows on their
	// original configuration.
	history := append([]*State{prev}, plan.Steps...)
	for _, stuck := range []int{int(fx.s2), int(fx.s3)} {
		for stepIdx := 1; stepIdx < len(history); stepIdx++ {
			loads := map[int]float64{}
			for f := range history[stepIdx].Alloc {
				// The stuck switch keeps the configuration it last applied:
				// it applied nothing, so its flows still use history[0].
				src := history[stepIdx]
				if int(f.Src) == stuck {
					src = history[0]
				}
				for _, tn := range fx.tun.Tunnels(f) {
					a := idx(src.Alloc[f], tn.Index)
					for _, l := range tn.Links {
						loads[int(l)] += a
					}
				}
			}
			for l, load := range loads {
				if load > fx.net.Links[l].Capacity+1e-6 {
					t.Fatalf("stuck=%d step=%d: link %d overloaded at %v", stuck, stepIdx, l, load)
				}
			}
		}
	}
}

func TestPlanUpdateRandomSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 8; trial++ {
		net, tun, flows := randomNetwork(rng, 6, 4)
		if len(flows) == 0 {
			continue
		}
		d1, d2 := demand.Matrix{}, demand.Matrix{}
		for _, f := range flows {
			d1[f] = 1 + rng.Float64()*6
			d2[f] = 1 + rng.Float64()*6
		}
		s := NewSolver(net, tun, Options{})
		prev, _, err := s.Solve(Input{Demands: d1})
		if err != nil {
			t.Fatal(err)
		}
		target, _, err := s.Solve(Input{Demands: d2})
		if err != nil {
			t.Fatal(err)
		}
		kc := rng.Intn(2)
		plan, err := s.PlanUpdate(prev, target, kc, 10)
		if err != nil {
			// Stalls can legitimately happen under tight capacity; what
			// must never happen is an unsafe step.
			t.Logf("trial %d: plan incomplete: %v", trial, err)
		}
		hist := []*State{prev}
		for _, st := range plan.Steps {
			if !s.transitionSafe(hist, st, kc) {
				t.Fatalf("trial %d kc=%d: unsafe step", trial, kc)
			}
			hist = append(hist, st)
		}
	}
}
