package core

import (
	"fmt"
	"sort"

	"ffc/internal/lp"
	"ffc/internal/obs"
	"ffc/internal/parallel"
	"ffc/internal/sortnet"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// DemandUncertainty extends FFC to demand faults, the future-work direction
// the paper sketches in §9: in networks without ingress rate control
// (MinMLU-style TE), actual flow rates can exceed predictions. Analogous to
// treating a mispredicted flow as a faulty rate limiter, the TE is made
// robust to ANY combination of up to Count flows each sending up to
// Factor × its predicted demand: since an uncontrolled flow's link load
// scales proportionally with its rate, the extra load a mispredicted flow
// puts on link e is (Factor−1) × its planned load there, and the worst case
// over all misprediction sets is a bounded M-sum — encoded with the same
// partial sorting networks as §4.4.
type DemandUncertainty struct {
	// Count is the number of simultaneously mispredicted flows tolerated.
	Count int
	// Factor bounds each mispredicted flow's rate as Factor × predicted
	// (must be > 1 to have any effect).
	Factor float64
}

// demandFFC emits the per-link robustness constraints. It must run after
// capacityConstraints (links are re-bounded, not reused).
func (b *builder) demandFFC(u DemandUncertainty) error {
	if u.Count <= 0 || u.Factor <= 1 {
		return nil
	}
	if b.s.Opts.Objective != MinMLU {
		return fmt.Errorf("core: demand-uncertainty FFC applies to networks without rate control (MinMLU objective)")
	}
	over := u.Factor - 1
	for _, l := range b.s.Net.Links {
		// Per-flow planned load on this link.
		byFlow := map[tunnel.Flow]*lp.Expr{}
		for _, ft := range b.s.incidence[l.ID] {
			if _, ok := b.bVar[ft.flow]; !ok {
				continue
			}
			if !b.alive[ft.flow][ft.idx] {
				continue
			}
			e := byFlow[ft.flow]
			if e == nil {
				e = lp.NewExpr()
				byFlow[ft.flow] = e
			}
			if b.mice[ft.flow] {
				e.Add(b.miceCoef[ft.flow], b.bVar[ft.flow])
			} else {
				e.Add(1, b.aVar[ft.flow][ft.idx])
			}
		}
		if len(byFlow) == 0 {
			continue
		}
		var flows []tunnel.Flow
		for f := range byFlow {
			flows = append(flows, f)
		}
		sort.Slice(flows, func(i, j int) bool {
			if flows[i].Src != flows[j].Src {
				return flows[i].Src < flows[j].Src
			}
			return flows[i].Dst < flows[j].Dst
		})
		exprs := make([]*lp.Expr, len(flows))
		for i, f := range flows {
			exprs[i] = lp.NewExpr().AddExpr(over, byFlow[f])
		}
		M := u.Count
		if M > len(exprs) {
			M = len(exprs)
		}
		name := fmt.Sprintf("du[e%d]", l.ID)
		var res sortnet.Result
		if b.s.Opts.Encoding == Compact {
			res = sortnet.TopKCompact(b.model, exprs, M, name)
		} else {
			res = sortnet.LargestSum(b.model, exprs, M, name)
		}
		b.encVars += res.Vars
		b.encCons += res.Constraints + 1
		// usage + worst-case overage ≤ ce · u_fault (reusing the §5.4
		// fault-MLU variable so operators can weight the robust case).
		load := b.usageExpr(l.ID).AddExpr(1, res.Sum)
		b.addCPConstraint(b.model, name, l.ID, load, b.s.capacity(b.in, l.ID))
	}
	return nil
}

// VerifyDemandUncertainty enumerates every set of up to count flows sending
// factor × their planned rate (everyone else at plan) and returns the worst
// overload, or nil when the state is robust. Exponential in count; for
// tests and small networks. Cases are verified across all cores; use
// VerifyDemandUncertaintyN to bound the worker count.
func VerifyDemandUncertainty(net *topology.Network, tun *tunnel.Set, st *State,
	count int, factor float64, capacity map[topology.LinkID]float64) *Violation {
	return VerifyDemandUncertaintyN(net, tun, st, count, factor, capacity, 0)
}

// VerifyDemandUncertaintyN is VerifyDemandUncertainty sharded over workers
// goroutines (≤ 0 means all cores); misprediction sets are the sharding
// unit and the reduction preserves serial enumeration order.
func VerifyDemandUncertaintyN(net *topology.Network, tun *tunnel.Set, st *State,
	count int, factor float64, capacity map[topology.LinkID]float64, workers int) *Violation {

	flows := make([]tunnel.Flow, 0, len(st.Rate))
	for f := range st.Rate {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	// Base loads plus each flow's per-link load.
	base := map[topology.LinkID]float64{}
	perFlow := make([]map[topology.LinkID]float64, len(flows))
	for i, f := range flows {
		perFlow[i] = map[topology.LinkID]float64{}
		w := st.Weights(f)
		for _, t := range tun.Tunnels(f) {
			share := st.Rate[f] * w[t.Index]
			if share == 0 {
				continue
			}
			for _, l := range t.Links {
				base[l] += share
				perFlow[i][l] += share
			}
		}
	}
	cases := combosUpTo(len(flows), count)
	sp := obs.StartSpan("core.verify/demand")
	defer sp.End()
	obsVerifyDemandCases.Add(int64(len(cases)))
	worst := make([]*Violation, len(cases))
	parallel.ForEachWorkerObs("core.verify.demand", len(cases), verifyShardWorkers(workers, len(cases)), func(_, ci int) {
		sel := cases[ci]
		overdriven := make([]tunnel.Flow, len(sel))
		for i, fi := range sel {
			overdriven[i] = flows[fi]
		}
		var local *Violation
		for _, l := range net.Links {
			load := base[l.ID]
			for _, i := range sel {
				load += (factor - 1) * perFlow[i][l.ID]
			}
			c := l.Capacity
			if capacity != nil {
				if o, ok := capacity[l.ID]; ok {
					c = o
				}
			}
			if overThreshold(load, c) {
				if over := load - c; local == nil || over > local.Over {
					local = &Violation{Case: fmt.Sprintf("overdriven=%v", overdriven), Link: l.ID, Over: over}
				}
			}
		}
		worst[ci] = local
	})
	return reduceWorst(worst)
}
