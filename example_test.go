package ffc_test

import (
	"fmt"
	"log"

	"ffc"
)

// Example computes an FFC-protected traffic distribution on the paper's
// 4-switch walkthrough network and verifies the guarantee exhaustively.
func Example() {
	net := ffc.Example4Topology()
	s2, _ := net.SwitchByName("s2")
	s3, _ := net.SwitchByName("s3")
	s4, _ := net.SwitchByName("s4")
	flows := []ffc.Flow{{Src: s2, Dst: s4}, {Src: s3, Dst: s4}}

	ctl, err := ffc.NewController(net, flows, ffc.ControllerConfig{TunnelsPerFlow: 2})
	if err != nil {
		log.Fatal(err)
	}
	demands := ffc.Demands{flows[0]: 14, flows[1]: 6}

	plain, _, _ := ctl.Compute(demands, ffc.NoProtection)
	protected, _, _ := ctl.Compute(demands, ffc.Protection{Ke: 1})

	fmt.Printf("plain: %.0f units, 1-link safe: %v\n",
		plain.TotalRate(), ctl.VerifyDataPlane(plain, 1, 0) == nil)
	fmt.Printf("FFC:   %.0f units, 1-link safe: %v\n",
		protected.TotalRate(), ctl.VerifyDataPlane(protected, 1, 0) == nil)
	// Output:
	// plain: 20 units, 1-link safe: false
	// FFC:   10 units, 1-link safe: true
}

// ExampleController_Compute reproduces the paper's Figure 5: the amount of
// a new flow that can be admitted shrinks as the tolerated number of stale
// switches grows.
func ExampleController_Compute() {
	net := ffc.Example4Topology()
	s1, _ := net.SwitchByName("s1")
	s2, _ := net.SwitchByName("s2")
	s3, _ := net.SwitchByName("s3")
	s4, _ := net.SwitchByName("s4")
	f24 := ffc.Flow{Src: s2, Dst: s4}
	f34 := ffc.Flow{Src: s3, Dst: s4}
	f14 := ffc.Flow{Src: s1, Dst: s4}

	mk := func(f ffc.Flow, hops ...ffc.SwitchID) *ffc.Tunnel {
		t := &ffc.Tunnel{Flow: f, Switches: hops}
		for i := 0; i+1 < len(hops); i++ {
			t.Links = append(t.Links, net.FindLink(hops[i], hops[i+1]))
		}
		return t
	}
	tun := ffc.NewTunnelSet(net)
	tun.Add(f24, mk(f24, s2, s4), mk(f24, s2, s1, s4))
	tun.Add(f34, mk(f34, s3, s4), mk(f34, s3, s1, s4))
	tun.Add(f14, mk(f14, s1, s4))
	ctl := ffc.NewControllerWithTunnels(net, tun, ffc.SolverOptions{})

	prev := ffc.NewState()
	prev.Rate[f24], prev.Alloc[f24] = 10, []float64{7, 3}
	prev.Rate[f34], prev.Alloc[f34] = 10, []float64{7, 3}
	ctl.Install(prev)

	demands := ffc.Demands{f24: 10, f34: 10, f14: 10}
	for kc := 0; kc <= 2; kc++ {
		st, _, err := ctl.Compute(demands, ffc.Protection{Kc: kc})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("kc=%d: new flow gets %.0f units\n", kc, st.Rate[f14])
	}
	// Output:
	// kc=0: new flow gets 10 units
	// kc=1: new flow gets 7 units
	// kc=2: new flow gets 4 units
}

// ExampleController_PlanCapacityFor shows the §3.3 provisioning use case:
// how much capacity single-link-failure protection costs for a demand that
// must traverse two link-disjoint routes.
func ExampleController_PlanCapacityFor() {
	net := ffc.Example4Topology()
	s2, _ := net.SwitchByName("s2")
	s4, _ := net.SwitchByName("s4")
	f := ffc.Flow{Src: s2, Dst: s4}
	ctl, err := ffc.NewController(net, []ffc.Flow{f}, ffc.ControllerConfig{TunnelsPerFlow: 2})
	if err != nil {
		log.Fatal(err)
	}
	_, plain, _ := ctl.PlanCapacityFor(ffc.Demands{f: 14}, ffc.NoProtection, nil)
	_, prot, _ := ctl.PlanCapacityFor(ffc.Demands{f: 14}, ffc.Protection{Ke: 1}, nil)
	fmt.Printf("capacity to buy without protection: %.0f units\n", plain)
	fmt.Printf("capacity to buy with ke=1:          %.0f units\n", prot)
	// Output:
	// capacity to buy without protection: 0 units
	// capacity to buy with ke=1:          12 units
}
