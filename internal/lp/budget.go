package lp

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// SolveOpts bounds one solve. The zero value imposes no budget beyond the
// model's own MaxIters safety limit. Budgets exist so a long-running TE
// controller can miss a computation window gracefully instead of blocking
// (or dying) the control loop: on a budget hit the solve returns a
// *BudgetError carrying the best feasible point found so far, which the
// caller may install or discard in favor of the last-good plan.
type SolveOpts struct {
	// Deadline is the wall-clock instant past which the solve stops. It is
	// checked every budgetBatch iterations, including before the first one,
	// so an already-expired deadline returns without pivoting (fault
	// injectors rely on this). Zero means no deadline.
	Deadline time.Time
	// MaxIters bounds the solve's total simplex iterations across both
	// phases. Unlike Model.MaxIters (a safety net that yields IterLimit),
	// exhausting this budget yields a *BudgetError. Zero means no bound.
	MaxIters int
	// Ctx cancels the solve between iteration batches; the simplex stops
	// within one batch of Ctx.Err() becoming non-nil. Nil means no
	// cancellation.
	Ctx context.Context
	// Hook, when non-nil, runs at every budget checkpoint (solve start and
	// each batch boundary) with the iterations completed so far. Tests and
	// fault injectors use it to observe or abort solves; a panic inside the
	// hook is recovered at the public boundary like any other solver panic.
	Hook func(iters int)
}

// unbounded reports whether the opts impose nothing to check, letting the
// iteration loop skip budget checkpoints entirely.
func (o SolveOpts) unbounded() bool {
	return o.Deadline.IsZero() && o.MaxIters <= 0 && o.Ctx == nil && o.Hook == nil
}

// budgetBatch is the number of simplex iterations between budget
// checkpoints: large enough that time.Now / Ctx.Err stay off the hot path,
// small enough that cancellation latency is a few microseconds of pivots.
const budgetBatch = 32

// ErrBudgetExceeded is wrapped by every *BudgetError; match with errors.Is.
var ErrBudgetExceeded = errors.New("lp: solve budget exceeded")

// ErrSolverPanic is wrapped by errors returned when a panic escapes the
// solver internals (or a SolveOpts.Hook). The public solve entry points
// recover such panics so a controller process survives solver bugs.
var ErrSolverPanic = errors.New("lp: solver panic")

// Budget-stop reasons carried by BudgetError.Reason.
const (
	BudgetDeadline = "deadline"   // SolveOpts.Deadline passed
	BudgetCanceled = "canceled"   // SolveOpts.Ctx canceled
	BudgetIters    = "iterations" // SolveOpts.MaxIters exhausted
)

// BudgetError reports a solve stopped by its SolveOpts budget.
type BudgetError struct {
	// Reason is one of BudgetDeadline, BudgetCanceled, BudgetIters.
	Reason string
	// Best is the best feasible point found before the stop — present only
	// when the budget hit in Phase II, where every simplex iterate is
	// primal-feasible (a mid-Phase-I stop has no feasible point to offer).
	// Its Objective is valid but not optimal.
	Best *Solution
}

func (e *BudgetError) Error() string {
	if e.Best != nil {
		return fmt.Sprintf("lp: solve budget exceeded (%s; feasible point available)", e.Reason)
	}
	return fmt.Sprintf("lp: solve budget exceeded (%s)", e.Reason)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) hold.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }
