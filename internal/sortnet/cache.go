// Template cache for partial bubble networks.
//
// The comparator sequence of a partial sort depends only on (direction, N,
// M) — never on the input expressions — so deriving it symbolically once
// and stamping the recorded operations per call removes the per-encoding
// wire bookkeeping and fmt.Sprintf name construction from the hot
// model-build path. Stamping replays the exact derivation, so the emitted
// variables, names, and constraint rows are byte-identical to the original
// direct construction with the cache on or off.
package sortnet

import (
	"fmt"
	"sync"

	"ffc/internal/lp"
	"ffc/internal/obs"
)

var (
	obsCacheHits   = obs.NewCounter("sortnet.cache.hits")
	obsCacheMisses = obs.NewCounter("sortnet.cache.misses")
)

// netKey identifies one memoized network: the kind of network (largest-M
// vs smallest-M partial bubble) and its dimensions.
type netKey struct {
	largest bool
	n, m    int
}

// netOp is one recorded compare-swap: wire ids x, y are inputs (0..n-1) or
// auxiliary wires (n+j = j-th auxiliary created during the stamp, in
// creation order: each op appends its hi then lo wire).
type netOp struct {
	x, y   int32
	suffix string // variable-name suffix ".p<pass>.c<i>" (pre-rendered)
}

// netTemplate is a fully derived partial bubble network, ready to stamp.
type netTemplate struct {
	n, m int
	ops  []netOp
	// tailWire/tailSuffix describe the single-wire final pass (the wire is
	// its own extremum and is bound to a fresh variable); tailWire is -1
	// when every pass ran a full comparator chain.
	tailWire    int32
	tailSuffix  string
	ranked      []int32 // wire id per rank, in rank order
	comparators int
}

var netCache struct {
	sync.RWMutex
	enabled bool
	m       map[netKey]*netTemplate
}

func init() {
	netCache.enabled = true
	netCache.m = make(map[netKey]*netTemplate)
}

// SetCache enables or disables template memoization. Disabling also drops
// the cached templates; stamping still goes through the same derive+stamp
// path, so emitted models are identical either way. Intended for tests and
// A/B benchmarks.
func SetCache(on bool) {
	netCache.Lock()
	defer netCache.Unlock()
	netCache.enabled = on
	netCache.m = make(map[netKey]*netTemplate)
}

// CacheLen returns the number of memoized network templates.
func CacheLen() int {
	netCache.RLock()
	defer netCache.RUnlock()
	return len(netCache.m)
}

// CacheCounters returns the process-lifetime template cache hit and miss
// totals (also published as obs counters sortnet.cache.hits/misses).
func CacheCounters() (hits, misses int64) {
	return obsCacheHits.Value(), obsCacheMisses.Value()
}

// templateFor returns the memoized template for (largest, n, m), deriving
// it on first use. Callers must have clamped m to [1, n].
func templateFor(largest bool, n, m int) *netTemplate {
	key := netKey{largest: largest, n: n, m: m}
	netCache.RLock()
	t, ok := netCache.m[key]
	enabled := netCache.enabled
	netCache.RUnlock()
	if ok {
		obsCacheHits.Inc()
		return t
	}
	obsCacheMisses.Inc()
	t = deriveTemplate(n, m)
	if enabled {
		netCache.Lock()
		if prev, ok := netCache.m[key]; ok {
			t = prev // lost a race; both derivations are identical
		} else {
			netCache.m[key] = t
		}
		netCache.Unlock()
	}
	return t
}

// deriveTemplate runs the partial bubble sort (Algorithms 1 and 2 of the
// paper) symbolically over wire ids, recording the compare-swap sequence.
// This is the same traversal the pre-cache code performed directly on LP
// expressions; stamp replays it verbatim.
func deriveTemplate(n, m int) *netTemplate {
	t := &netTemplate{n: n, m: m, tailWire: -1}
	wires := make([]int32, n)
	for i := range wires {
		wires[i] = int32(i)
	}
	aux := int32(n)
	for pass := 0; pass < m; pass++ {
		if len(wires) == 1 {
			// Single wire left: it is its own extremum; bind it to a
			// fresh variable to keep the Ranked contract (one var/rank).
			t.tailWire = wires[0]
			t.tailSuffix = fmt.Sprintf(".y%d", pass)
			t.ranked = append(t.ranked, aux)
			break
		}
		// One bubble pass: a chain of compare-swaps carries the running
		// extremum through the array; the losers feed the next pass.
		cur := wires[0]
		losers := make([]int32, 0, len(wires)-1)
		for i := 1; i < len(wires); i++ {
			t.ops = append(t.ops, netOp{x: cur, y: wires[i], suffix: fmt.Sprintf(".p%d.c%d", pass, i)})
			cur = aux
			losers = append(losers, aux+1)
			aux += 2
		}
		t.comparators += len(wires) - 1
		t.ranked = append(t.ranked, cur)
		wires = losers
	}
	return t
}

// stamp emits the recorded network into m over the given input expressions.
// Auxiliary wires are materialized in recording order, so variable creation,
// names, and constraint rows match the original direct construction exactly.
func (t *netTemplate) stamp(m lp.Emitter, exprs []*lp.Expr, name string, largest bool) Result {
	res := Result{Sum: lp.NewExpr(), Comparators: t.comparators}
	aux := make([]*lp.Expr, 0, 2*len(t.ops)+1)
	wire := func(w int32) *lp.Expr {
		if w < int32(t.n) {
			return exprs[w]
		}
		return aux[w-int32(t.n)]
	}
	for _, op := range t.ops {
		hi, lo := compareSwap(m, wire(op.x), wire(op.y), name+op.suffix, largest)
		aux = append(aux, hi, lo)
		res.Vars += 2
		res.Constraints += 3
	}
	if t.tailWire >= 0 {
		y := m.NewVar(name+t.tailSuffix, negInf(), lp.Inf)
		if largest {
			m.AddGE(lp.NewExpr().Add(1, y).AddExpr(-1, wire(t.tailWire)), 0)
		} else {
			m.AddLE(lp.NewExpr().Add(1, y).AddExpr(-1, wire(t.tailWire)), 0)
		}
		res.Vars++
		res.Constraints++
		aux = append(aux, lp.NewExpr().Add(1, y))
	}
	for _, w := range t.ranked {
		e := wire(w)
		res.Ranked = append(res.Ranked, e)
		res.Sum.AddExpr(1, e)
	}
	return res
}
