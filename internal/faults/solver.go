package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// SolverFaultKind enumerates injected controller failures — the control
// loop's own failure modes, as opposed to the data-plane faults FFC
// protects against. The sim uses them to measure availability when the TE
// computation itself misses its window.
type SolverFaultKind int8

const (
	// SolverTimeout makes the interval's TE solves start with their
	// deadline already expired: the controller missed its computation
	// window.
	SolverTimeout SolverFaultKind = iota
	// SolverCrash panics inside the simplex iteration loop (via the budget
	// hook), modeling a controller bug; the lp boundary recovers it into
	// an error.
	SolverCrash
	// SolverStale lets the solve complete but discards the fresh plan,
	// modeling a result that arrives after the installation window.
	SolverStale
)

func (k SolverFaultKind) String() string {
	switch k {
	case SolverTimeout:
		return "timeout"
	case SolverCrash:
		return "crash"
	case SolverStale:
		return "stale"
	}
	return "?"
}

// SolverFaultModel injects controller failures into a simulated control
// loop. The rates are per TE interval and mutually exclusive: one uniform
// draw is classified in timeout, crash, stale order, so the rates must sum
// to ≤ 1.
type SolverFaultModel struct {
	TimeoutRate float64
	CrashRate   float64
	StaleRate   float64
	// Force pins specific intervals (0-based) to a fault kind regardless
	// of the rates and without consuming a random draw — deterministic
	// injection for tests and the CI soak.
	Force map[int]SolverFaultKind
}

// Enabled reports whether the model can inject anything at all.
func (m *SolverFaultModel) Enabled() bool {
	return m.TimeoutRate > 0 || m.CrashRate > 0 || m.StaleRate > 0 || len(m.Force) > 0
}

// Sample decides the interval's fate. It draws from rng only when rates
// are configured, so enabling Force-only (or no) injection leaves the
// fault streams of existing runs bit-identical.
func (m *SolverFaultModel) Sample(interval int, rng *rand.Rand) (SolverFaultKind, bool) {
	if k, ok := m.Force[interval]; ok {
		return k, true
	}
	if m.TimeoutRate <= 0 && m.CrashRate <= 0 && m.StaleRate <= 0 {
		return 0, false
	}
	u := rng.Float64()
	switch {
	case u < m.TimeoutRate:
		return SolverTimeout, true
	case u < m.TimeoutRate+m.CrashRate:
		return SolverCrash, true
	case u < m.TimeoutRate+m.CrashRate+m.StaleRate:
		return SolverStale, true
	}
	return 0, false
}

// ParseSolverFaults parses a CLI spec like "timeout=0.1,crash=0.01" into a
// model. The empty string yields a disabled model.
func ParseSolverFaults(spec string) (SolverFaultModel, error) {
	var m SolverFaultModel
	if spec == "" {
		return m, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("faults: bad solver-fault term %q (want kind=rate)", part)
		}
		rate, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || rate < 0 || rate > 1 {
			return m, fmt.Errorf("faults: bad solver-fault rate %q (want a probability in [0,1])", kv[1])
		}
		switch kv[0] {
		case "timeout":
			m.TimeoutRate = rate
		case "crash":
			m.CrashRate = rate
		case "stale":
			m.StaleRate = rate
		default:
			return m, fmt.Errorf("faults: unknown solver-fault kind %q (want timeout, crash, or stale)", kv[0])
		}
	}
	if s := m.TimeoutRate + m.CrashRate + m.StaleRate; s > 1 {
		return m, fmt.Errorf("faults: solver-fault rates sum to %g > 1", s)
	}
	return m, nil
}
