package lp

import "math"

// basisRep abstracts the factorized representation of the simplex basis
// inverse. Two implementations exist:
//
//   - denseRep keeps an explicit dense B⁻¹ updated by elementary row
//     operations — simple and fast for small bases;
//   - pfiRep keeps B⁻¹ in product form (an eta file) with sparsity-aware
//     FTRAN/BTRAN and periodic reinversion — the classic sparse-simplex
//     scheme, orders of magnitude faster on the large, very sparse bases
//     the FFC formulations produce.
//
// The representation may permute the basis-position → row assignment during
// refactor (st.basis is reordered); callers recompute xB and duals after.
type basisRep interface {
	// refactor rebuilds the representation from st's current basis
	// columns. May reorder st.basis (the position↔row assignment is
	// bookkeeping, not semantics).
	refactor(st *simplexState)
	// ftran computes w = B⁻¹·a into the zeroed dense vector w, where a is
	// given sparsely. Returns the nonzero pattern of w, or nil meaning
	// "treat w as dense".
	ftran(aIdx []int32, aCoef []float64, w []float64) []int32
	// ftranDense computes x = B⁻¹·x in place for dense x.
	ftranDense(x []float64)
	// btranUnit computes y = e_rᵀ·B⁻¹ into the zeroed dense vector y.
	btranUnit(r int, y []float64)
	// btranDense computes y = yᵀ·B⁻¹ in place for dense y.
	btranDense(y []float64)
	// pivot applies a basis change: the entering column's FTRAN result w
	// (with nonzero pattern pat, nil = dense) pivots row r.
	pivot(r int, w []float64, pat []int32)
	// shouldRefactor reports whether accumulated updates warrant a
	// rebuild.
	shouldRefactor() bool
	// nnzCount reports the stored size of the representation — eta-file
	// nonzeros for the product form, m² for the dense inverse. It is the
	// fill-in statistic surfaced in SolveStats.BasisNnz.
	nnzCount() int
}

// pfiThreshold selects the representation: bases at least this large use
// the product-form inverse.
const pfiThreshold = 260

// ---------------------------------------------------------------- dense --

// denseRep is the explicit dense inverse.
type denseRep struct {
	m       int
	binv    []float64 // row-major m×m
	updates int
}

func newDenseRep(m int) *denseRep {
	return &denseRep{m: m, binv: make([]float64, m*m)}
}

// initDiagonal sets B⁻¹ for a diagonal starting basis with the given
// diagonal coefficients (the slack/artificial basis).
func (d *denseRep) initDiagonal(diag []float64) {
	for i := range d.binv {
		d.binv[i] = 0
	}
	for i := 0; i < d.m; i++ {
		d.binv[i*d.m+i] = 1 / diag[i]
	}
	d.updates = 0
}

func (d *denseRep) refactor(st *simplexState) {
	m := d.m
	b := make([]float64, m*m)
	for i := 0; i < m; i++ {
		j := st.basis[i]
		for k, r := range st.colIdx[j] {
			b[int(r)*m+i] = st.colCoef[j][k]
		}
	}
	invertInPlace(b, m)
	d.binv = b
	d.updates = 0
}

func (d *denseRep) ftran(aIdx []int32, aCoef []float64, w []float64) []int32 {
	m := d.m
	for k, r := range aIdx {
		a := aCoef[k]
		if a == 0 {
			continue
		}
		col := int(r)
		for i := 0; i < m; i++ {
			w[i] += a * d.binv[i*m+col]
		}
	}
	return nil
}

func (d *denseRep) ftranDense(x []float64) {
	m := d.m
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		row := d.binv[i*m : i*m+m]
		var acc float64
		for k := 0; k < m; k++ {
			acc += row[k] * x[k]
		}
		out[i] = acc
	}
	copy(x, out)
}

func (d *denseRep) btranUnit(r int, y []float64) {
	copy(y, d.binv[r*d.m:(r+1)*d.m])
}

func (d *denseRep) btranDense(y []float64) {
	m := d.m
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		ci := y[i]
		if ci == 0 {
			continue
		}
		row := d.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			out[k] += ci * row[k]
		}
	}
	copy(y, out)
}

func (d *denseRep) pivot(r int, w []float64, _ []int32) {
	m := d.m
	piv := w[r]
	invPiv := 1 / piv
	rowR := d.binv[r*m : r*m+m]
	for k := 0; k < m; k++ {
		rowR[k] *= invPiv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		f := w[i]
		if f == 0 {
			continue
		}
		ri := d.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			ri[k] -= f * rowR[k]
		}
	}
	d.updates++
}

func (d *denseRep) shouldRefactor() bool { return d.updates >= 256 }

func (d *denseRep) nnzCount() int { return d.m * d.m }

// ------------------------------------------------------------------ pfi --

// eta is one elementary column transformation: the identity with column r
// replaced by the sparse vector (idx, vals); vals holds the pivot element
// at the position where idx[k] == r.
type eta struct {
	r    int32
	idx  []int32
	vals []float64
	// pivIdx locates r within idx.
	pivIdx int32
}

// pfiRep is the product-form inverse: B = E₁·E₂·…·E_k, so
// B⁻¹x = E_k⁻¹(…(E₁⁻¹x)). Reinversion rebuilds the chain from the basis
// columns, choosing a sparsity-friendly pivot order.
type pfiRep struct {
	m        int
	etas     []eta
	nnz      int // total stored nonzeros
	baseEtas int // chain length after the last refactor
	baseNnz  int // stored nonzeros after the last refactor
	mark     []bool
	pat      []int32
}

func newPfiRep(m int) *pfiRep {
	return &pfiRep{m: m, mark: make([]bool, m), pat: make([]int32, 0, m)}
}

// applyEtaInv applies E⁻¹ to the dense vector x with pattern tracking
// (pattern nil = dense, no tracking). Returns the updated pattern.
func (p *pfiRep) applyEtaInv(e *eta, x []float64, pattern []int32, track bool) []int32 {
	xr := x[e.r]
	if xr == 0 {
		return pattern
	}
	piv := e.vals[e.pivIdx]
	xr /= piv
	x[e.r] = xr
	for k, i := range e.idx {
		if i == e.r {
			continue
		}
		before := x[i]
		x[i] = before - e.vals[k]*xr
		if track && !p.mark[i] {
			p.mark[i] = true
			pattern = append(pattern, i)
		}
	}
	return pattern
}

func (p *pfiRep) ftran(aIdx []int32, aCoef []float64, w []float64) []int32 {
	pattern := p.pat[:0]
	for k, r := range aIdx {
		if aCoef[k] == 0 {
			continue
		}
		w[r] += aCoef[k]
		if !p.mark[r] {
			p.mark[r] = true
			pattern = append(pattern, r)
		}
	}
	for i := range p.etas {
		pattern = p.applyEtaInv(&p.etas[i], w, pattern, true)
	}
	// Clear marks; keep the pattern storage for reuse.
	for _, i := range pattern {
		p.mark[i] = false
	}
	p.pat = pattern[:0:cap(pattern)]
	out := make([]int32, len(pattern))
	copy(out, pattern)
	return out
}

func (p *pfiRep) ftranDense(x []float64) {
	for i := range p.etas {
		p.applyEtaInv(&p.etas[i], x, nil, false)
	}
}

func (p *pfiRep) btranUnit(r int, y []float64) {
	y[r] = 1
	p.btranDense(y)
}

func (p *pfiRep) btranDense(y []float64) {
	// y' = y·B⁻¹ = ((y·E_k⁻¹)·…)·E₁⁻¹, applied last-to-first. For one
	// eta: z_j = y_j (j≠r), z_r = (y_r − Σ_{i≠r} y_i v_i)/v_r.
	for i := len(p.etas) - 1; i >= 0; i-- {
		e := &p.etas[i]
		var dot float64
		for k, idx := range e.idx {
			if idx == e.r {
				continue
			}
			dot += y[idx] * e.vals[k]
		}
		y[e.r] = (y[e.r] - dot) / e.vals[e.pivIdx]
	}
}

func (p *pfiRep) pivot(r int, w []float64, pat []int32) {
	e := eta{r: int32(r)}
	if pat == nil {
		for i, v := range w {
			if v != 0 || i == r {
				e.idx = append(e.idx, int32(i))
				e.vals = append(e.vals, v)
			}
		}
	} else {
		e.idx = make([]int32, 0, len(pat)+1)
		e.vals = make([]float64, 0, len(pat)+1)
		seenR := false
		for _, i := range pat {
			v := w[i]
			if v == 0 && int(i) != r {
				continue
			}
			e.idx = append(e.idx, i)
			e.vals = append(e.vals, v)
			if int(i) == r {
				seenR = true
			}
		}
		if !seenR {
			e.idx = append(e.idx, int32(r))
			e.vals = append(e.vals, w[r])
		}
	}
	for k, i := range e.idx {
		if int(i) == r {
			e.pivIdx = int32(k)
			break
		}
	}
	p.etas = append(p.etas, e)
	p.nnz += len(e.idx)
}

func (p *pfiRep) shouldRefactor() bool {
	appended := len(p.etas) - p.baseEtas
	if appended == 0 {
		return false
	}
	// Only reinvert when it plausibly helps: bases whose factorization is
	// inherently dense (baseNnz high) must not refactor on every pivot.
	return appended >= 128 || p.nnz > 2*p.baseNnz+40*p.m+4096
}

func (p *pfiRep) nnzCount() int { return p.nnz }

// refactor reinverts: it rebuilds the eta chain from the current basis
// columns in a structurally chosen order, with pre-assigned pivot rows
// where the structure dictates them. st.basis is reordered to match the
// chosen pivot rows.
//
// The order matters enormously: a column whose nonzeros all lie in rows
// not yet pivoted produces an eta identical to the column (zero fill), so
// the triangular part of the basis — which dominates in network LPs — is
// peeled first via Markowitz-style singleton elimination; only the
// remaining "bump" incurs fill.
func (p *pfiRep) refactor(st *simplexState) {
	m := p.m
	p.etas = p.etas[:0]
	p.nnz = 0

	order, pivRow := triangularOrder(st)

	pivoted := make([]bool, m)
	newBasis := make([]int, m)
	w := make([]float64, m)
	for k, v := range order {
		// w = (current chain)⁻¹ · A_v.
		pat := p.ftran(st.colIdx[v], st.colCoef[v], w)
		best := pivRow[k]
		if best >= 0 && (pivoted[best] || math.Abs(w[best]) <= pivotTol) {
			best = -1 // structural choice invalidated numerically
		}
		if best < 0 {
			bestAbs := pivotTol
			for _, i := range pat {
				if pivoted[i] {
					continue
				}
				if a := math.Abs(w[i]); a > bestAbs {
					best, bestAbs = int(i), a
				}
			}
		}
		if best < 0 {
			// Numerically singular column: grab any free row with a tiny
			// pivot so the factorization stays formally invertible; the
			// next refactor (or Phase I) cleans up.
			for i := 0; i < m; i++ {
				if !pivoted[i] {
					best = i
					break
				}
			}
			w[best] += 1e-30
			pat = append(pat, int32(best))
		}
		pivoted[best] = true
		newBasis[best] = v
		p.pivot(best, w, pat)
		// Zero w along its pattern for reuse.
		for _, i := range pat {
			w[i] = 0
		}
		w[best] = 0
	}
	copy(st.basis, newBasis)
	p.baseEtas = len(p.etas)
	p.baseNnz = p.nnz
}

// triangularOrder peels the basis pattern with Markowitz-style singleton
// elimination and returns the column processing order plus, per position,
// the structurally assigned pivot row (-1 when the column landed in the
// bump and the row must be chosen numerically).
func triangularOrder(st *simplexState) (order []int, pivRow []int) {
	m := st.m
	// Column patterns restricted to basis columns.
	cols := st.basis
	colRows := make([][]int32, m)
	rowCols := make([][]int32, m)
	colCnt := make([]int, m) // remaining-nnz per basis position
	rowCnt := make([]int, m)
	for ci, v := range cols {
		colRows[ci] = st.colIdx[v]
		colCnt[ci] = len(st.colIdx[v])
		for _, r := range st.colIdx[v] {
			rowCols[r] = append(rowCols[r], int32(ci))
			rowCnt[r]++
		}
	}
	colDone := make([]bool, m)
	rowDone := make([]bool, m)
	order = make([]int, 0, m)
	pivRow = make([]int, 0, m)

	// Queues of current singletons.
	var colQ, rowQ []int32
	for ci := 0; ci < m; ci++ {
		if colCnt[ci] == 1 {
			colQ = append(colQ, int32(ci))
		}
	}
	for r := 0; r < m; r++ {
		if rowCnt[r] == 1 {
			rowQ = append(rowQ, int32(r))
		}
	}
	eliminate := func(ci int, r int) {
		colDone[ci] = true
		rowDone[r] = true
		order = append(order, cols[ci])
		pivRow = append(pivRow, r)
		for _, rr := range colRows[ci] {
			if !rowDone[rr] {
				rowCnt[rr]--
				if rowCnt[rr] == 1 {
					rowQ = append(rowQ, rr)
				}
			}
		}
		for _, cc := range rowCols[r] {
			if !colDone[cc] {
				colCnt[cc]--
				if colCnt[cc] == 1 {
					colQ = append(colQ, cc)
				}
			}
		}
	}
	remaining := m
	for remaining > 0 {
		progressed := false
		for len(colQ) > 0 {
			ci := int(colQ[len(colQ)-1])
			colQ = colQ[:len(colQ)-1]
			if colDone[ci] || colCnt[ci] != 1 {
				continue
			}
			for _, r := range colRows[ci] {
				if !rowDone[r] {
					eliminate(ci, int(r))
					remaining--
					progressed = true
					break
				}
			}
		}
		for len(rowQ) > 0 {
			r := int(rowQ[len(rowQ)-1])
			rowQ = rowQ[:len(rowQ)-1]
			if rowDone[r] || rowCnt[r] != 1 {
				continue
			}
			for _, ci := range rowCols[r] {
				if !colDone[ci] {
					eliminate(int(ci), r)
					remaining--
					progressed = true
					break
				}
			}
		}
		if !progressed {
			// Bump: take the remaining column with the fewest remaining
			// rows; its pivot row is chosen numerically during FTRAN.
			best, bestCnt := -1, m+1
			for ci := 0; ci < m; ci++ {
				if !colDone[ci] && colCnt[ci] < bestCnt {
					best, bestCnt = ci, colCnt[ci]
				}
			}
			if best < 0 {
				break
			}
			colDone[best] = true
			order = append(order, cols[best])
			pivRow = append(pivRow, -1)
			remaining--
			for _, rr := range colRows[best] {
				if !rowDone[rr] {
					rowCnt[rr]--
					if rowCnt[rr] == 1 {
						rowQ = append(rowQ, rr)
					}
				}
			}
			// Note: the numerically chosen row is not known yet, so row
			// eliminations for it are skipped; subsequent counts are a
			// heuristic, which is all they need to be.
		}
	}
	return order, pivRow
}
