// Real-topology walkthrough: load the Abilene research backbone (Internet
// Topology Zoo GraphML), lay out FFC tunnels, and compare protection levels
// and their capacity-planning cost on a network that actually existed.
//
//	go run ./examples/real_topology
package main

import (
	_ "embed"
	"fmt"
	"log"
	"strings"

	"ffc"
)

//go:embed abilene.graphml
var abilene string

func main() {
	net, err := ffc.ParseGraphMLTopology(strings.NewReader(abilene), 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d PoPs, %d directed links\n", net.Name, net.NumSwitches(), net.NumLinks())

	// Coast-to-coast flows plus regional traffic.
	mk := func(a, b string) ffc.Flow {
		src, ok1 := net.SwitchByName(a)
		dst, ok2 := net.SwitchByName(b)
		if !ok1 || !ok2 {
			log.Fatalf("missing PoP %s/%s", a, b)
		}
		return ffc.Flow{Src: src, Dst: dst}
	}
	flows := []ffc.Flow{
		mk("New York", "Sunnyvale"),
		mk("Seattle", "Atlanta"),
		mk("Chicago", "Los Angeles"),
		mk("Washington DC", "Houston"),
	}
	demands := ffc.Demands{flows[0]: 6, flows[1]: 4, flows[2]: 5, flows[3]: 4}

	ctl, err := ffc.NewController(net, flows, ffc.ControllerConfig{TunnelsPerFlow: 3})
	if err != nil {
		log.Fatal(err)
	}

	for _, prot := range []ffc.Protection{{}, {Ke: 1}, {Ke: 2}} {
		st, stats, err := ctl.Compute(demands, prot)
		if err != nil {
			log.Fatal(err)
		}
		safe := "n/a"
		if prot.Ke > 0 {
			if v := ctl.VerifyDataPlane(st, prot.Ke, 0); v == nil {
				safe = "verified"
			} else {
				safe = "VIOLATED"
			}
		}
		fmt.Printf("prot %v: throughput %.1f/%.0f, LP %dx%d in %v, guarantee %s\n",
			prot, st.TotalRate(), demands.Total(), stats.Vars, stats.Constraints,
			stats.SolveTime.Round(0), safe)
	}

	added, total, err := ctl.PlanCapacityFor(demands, ffc.Protection{Ke: 1}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if total == 0 {
		fmt.Println("\nke=1 protection needs no extra capacity on Abilene for this demand")
	} else {
		fmt.Printf("\nke=1 protection at full demand requires %.1f Gbps of upgrades:\n", total)
		for l, x := range added {
			lk := net.Links[l]
			fmt.Printf("  %s → %s: +%.1f Gbps\n", net.Switches[lk.Src].Name, net.Switches[lk.Dst].Name, x)
		}
	}
}
