package sortnet

// Comparator is one compare-swap wire pair in a comparator network. After
// application, position Lo holds the smaller value and position Hi the
// larger (for ascending networks Lo < Hi as indices).
type Comparator struct {
	A, B int // wire indices; the smaller value ends on A, larger on B
}

// Network is an ordered sequence of comparators. The sequence is fixed in
// advance (data-oblivious), which is precisely the property that lets the
// LP encoding in this package work: every comparator becomes a fixed set of
// linear constraints regardless of input values.
type Network []Comparator

// Apply runs the network over a copy of values and returns the result.
func (n Network) Apply(values []float64) []float64 {
	out := make([]float64, len(values))
	copy(out, values)
	n.ApplyInPlace(out)
	return out
}

// ApplyInPlace runs the network over values.
func (n Network) ApplyInPlace(values []float64) {
	for _, c := range n {
		if values[c.A] > values[c.B] {
			values[c.A], values[c.B] = values[c.B], values[c.A]
		}
	}
}

// Bubble returns the full bubble-sort network over n wires (ascending:
// wire n−1 receives the maximum). It uses n·(n−1)/2 comparators.
func Bubble(n int) Network {
	var net Network
	for pass := 0; pass < n-1; pass++ {
		for i := 0; i < n-1-pass; i++ {
			net = append(net, Comparator{A: i, B: i + 1})
		}
	}
	return net
}

// BubblePartial returns the first m passes of the bubble network over n
// wires: after application, the top m positions (n−m … n−1) hold the m
// largest values in sorted order. This is the partial network of the paper
// (Figure 8(b)), with O(n·m) comparators.
func BubblePartial(n, m int) Network {
	if m > n-1 {
		m = n - 1
	}
	var net Network
	for pass := 0; pass < m; pass++ {
		for i := 0; i < n-1-pass; i++ {
			net = append(net, Comparator{A: i, B: i + 1})
		}
	}
	return net
}

// OddEvenMergeSort returns Batcher's odd-even merge sorting network for n
// wires (n need not be a power of two; the construction pads virtually).
// It uses O(n·log²n) comparators and is included as the "practical sorting
// network" the paper contrasts against (§4.4.2).
func OddEvenMergeSort(n int) Network {
	var net Network
	// Classic recursive construction over the padded size.
	p2 := 1
	for p2 < n {
		p2 <<= 1
	}
	var sortRange func(lo, cnt int)
	var merge func(lo, cnt, r int)
	merge = func(lo, cnt, r int) {
		step := r * 2
		if step < cnt {
			merge(lo, cnt, step)
			merge(lo+r, cnt, step)
			for i := lo + r; i+r < lo+cnt; i += step {
				if i < n && i+r < n {
					net = append(net, Comparator{A: i, B: i + r})
				}
			}
		} else if lo+r < n {
			net = append(net, Comparator{A: lo, B: lo + r})
		}
	}
	sortRange = func(lo, cnt int) {
		if cnt > 1 {
			m := cnt / 2
			sortRange(lo, m)
			sortRange(lo+m, m)
			merge(lo, cnt, 1)
		}
	}
	sortRange(0, p2)
	return net
}

// IsSortingNetwork verifies the zero-one principle: a comparator network
// sorts all inputs iff it sorts all 2^n boolean inputs. Usable only for
// small n (tests).
func IsSortingNetwork(net Network, n int) bool {
	for mask := 0; mask < 1<<uint(n); mask++ {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				v[i] = 1
			}
		}
		net.ApplyInPlace(v)
		for i := 1; i < n; i++ {
			if v[i] < v[i-1] {
				return false
			}
		}
	}
	return true
}
