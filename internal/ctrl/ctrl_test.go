package ctrl

import (
	"encoding/json"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/faults"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
	"ffc/internal/wire"
)

// testConfig returns a controller config over Example4 with a tiny demand
// set: fast solves, a very long ticker (tests step recomputes via Kick).
func testConfig(t *testing.T) Config {
	t.Helper()
	net := topology.Example4()
	s1, _ := net.SwitchByName("s1")
	s2, _ := net.SwitchByName("s2")
	s3, _ := net.SwitchByName("s3")
	s4, _ := net.SwitchByName("s4")
	return Config{
		Net: net,
		Demands: demand.Matrix{
			{Src: s2, Dst: s4}: 10,
			{Src: s1, Dst: s4}: 4,
			{Src: s3, Dst: s2}: 3,
		},
		Prot:     core.Protection{Ke: 1},
		Layout:   tunnel.LayoutConfig{TunnelsPerFlow: 3},
		Interval: time.Hour, // recomputes are driven by Kick in tests
	}
}

// waitSeq blocks until the served plan reaches at least seq.
func waitSeq(t *testing.T, c *Controller, seq int64) *Plan {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		p := c.GetPlan()
		if p.Seq >= seq {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatalf("plan stuck at seq %d, want >= %d", p.Seq, seq)
		}
		time.Sleep(time.Millisecond)
	}
}

// checkPlan asserts a served snapshot is internally consistent — the
// invariants a torn read would break: the flow rates sum to the advertised
// total, no flow's rate exceeds its allocation total (with Degrade's cap,
// rates can only be below), the pre-encoded payload matches the File, and
// the metadata matches the flow set.
func checkPlan(p *Plan) error {
	if p == nil {
		return fmt.Errorf("nil plan")
	}
	var sum float64
	for _, fl := range p.File.Flows {
		sum += fl.Rate
		var alloc float64
		for _, ta := range fl.Tunnels {
			alloc += ta.Alloc
		}
		if fl.Rate > alloc+1e-6 {
			return fmt.Errorf("seq %d: flow %s->%s rate %g exceeds allocation %g", p.Seq, fl.Src, fl.Dst, fl.Rate, alloc)
		}
	}
	if math.Abs(sum-p.File.TotalRate) > 1e-6 {
		return fmt.Errorf("seq %d: flow rates sum to %g, TotalRate says %g", p.Seq, sum, p.File.TotalRate)
	}
	m := p.Meta()
	if m.Flows != len(p.File.Flows) {
		return fmt.Errorf("seq %d: meta flows %d != %d", p.Seq, m.Flows, len(p.File.Flows))
	}
	var sf wire.StateFile
	if err := json.Unmarshal(p.Encoded, &sf); err != nil {
		return fmt.Errorf("seq %d: encoded payload: %v", p.Seq, err)
	}
	if len(sf.Flows) != len(p.File.Flows) || sf.TotalRate != p.File.TotalRate {
		return fmt.Errorf("seq %d: encoded payload disagrees with File", p.Seq)
	}
	return nil
}

// TestControllerSolvesAndServes: the first recompute installs a real plan
// and GetPlan serves it.
func TestControllerSolvesAndServes(t *testing.T) {
	c, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if p := c.GetPlan(); p.Seq != 0 || p.Degraded != "unsolved" {
		t.Fatalf("pre-start plan: seq %d degraded %q, want 0/unsolved", p.Seq, p.Degraded)
	}
	c.Start()
	defer c.Stop()
	p := waitSeq(t, c, 1)
	if err := checkPlan(p); err != nil {
		t.Fatal(err)
	}
	if p.Degraded != "" {
		t.Fatalf("first solve degraded: %q", p.Degraded)
	}
	if p.File.TotalRate <= 0 {
		t.Fatalf("no throughput granted: %+v", p.Meta())
	}
}

// TestApplyUpdates: streamed updates change the desired state and the next
// recompute reflects them; bad updates error without touching anything.
func TestApplyUpdates(t *testing.T) {
	c, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	p := waitSeq(t, c, 1)

	// Unknown names must error.
	down := false
	if err := c.Apply(&wire.Update{Op: wire.UpdateSwitch, Switch: "nope", Up: &down}); err == nil {
		t.Fatal("unknown switch accepted")
	}
	if err := c.Apply(&wire.Update{Op: wire.UpdateLink, Src: "s1", Dst: "nope", Up: &down}); err == nil {
		t.Fatal("unknown link accepted")
	}

	// A link failure must reduce or hold throughput, never break the plan.
	if err := c.Apply(&wire.Update{Op: wire.UpdateLink, Src: "s2", Dst: "s4", Up: &down}); err != nil {
		t.Fatal(err)
	}
	p2 := waitSeq(t, c, p.Seq+1)
	if err := checkPlan(p2); err != nil {
		t.Fatal(err)
	}
	if p2.File.TotalRate > p.File.TotalRate+1e-6 {
		t.Fatalf("throughput grew after link failure: %g -> %g", p.File.TotalRate, p2.File.TotalRate)
	}

	// New flow via demand update: the controller re-lays-out tunnels.
	if err := c.Apply(&wire.Update{Op: wire.UpdateDemands, Demands: []wire.DemandEntry{
		{Src: "s1", Dst: "s3", Demand: 2},
	}}); err != nil {
		t.Fatal(err)
	}
	p3 := waitSeq(t, c, p2.Seq+1)
	if err := checkPlan(p3); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fl := range p3.File.Flows {
		if fl.Src == "s1" && fl.Dst == "s3" {
			found = true
			if len(fl.Tunnels) == 0 {
				t.Fatal("new flow has no tunnels")
			}
		}
	}
	if !found {
		t.Fatalf("new flow missing from plan: %+v", p3.File.Flows)
	}

	// Protection change lands in the metadata.
	kc := 0
	ke := 0
	if err := c.Apply(&wire.Update{Op: wire.UpdateProtection, Kc: &kc, Ke: &ke}); err != nil {
		t.Fatal(err)
	}
	p4 := waitSeq(t, c, p3.Seq+1)
	if m := p4.Meta(); m.Ke != 0 || m.Kc != 0 {
		t.Fatalf("protection change not reflected: %+v", m)
	}
}

// TestGetPlanHammer runs queries against concurrent recomputes and
// updates; under -race this is the lock-free serving acceptance test.
// Every observed snapshot must be internally consistent and the sequence
// monotone per reader.
func TestGetPlanHammer(t *testing.T) {
	cfg := testConfig(t)
	cfg.Interval = 2 * time.Millisecond // free-running recomputes
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitSeq(t, c, 1)

	const readers = 8
	stop := make(chan struct{})
	errs := make(chan error, readers+1)
	var wg sync.WaitGroup
	var reads atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastSeq := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := c.GetPlan()
				if p.Seq < lastSeq {
					errs <- fmt.Errorf("seq went backwards: %d after %d", p.Seq, lastSeq)
					return
				}
				lastSeq = p.Seq
				if err := checkPlan(p); err != nil {
					errs <- err
					return
				}
				reads.Add(1)
			}
		}()
	}
	// One writer streams demand churn while the readers hammer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			u := &wire.Update{Op: wire.UpdateDemands, Demands: []wire.DemandEntry{
				{Src: "s2", Dst: "s4", Demand: float64(5 + i%10)},
			}}
			if err := c.Apply(u); err != nil {
				errs <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if reads.Load() == 0 {
		t.Fatal("hammer read nothing")
	}
	final := c.GetPlan()
	if final.Seq < 2 {
		t.Fatalf("recompute loop barely ran: seq %d", final.Seq)
	}
	t.Logf("%d reads across %d installs", reads.Load(), c.Stats().PlansInstalled)
}

// TestInjectedFaultsDegrade forces one fault of each kind and checks the
// controller installs a degraded plan (with the right reason) instead of
// failing, then recovers.
func TestInjectedFaultsDegrade(t *testing.T) {
	cfg := testConfig(t)
	cfg.Faults = faults.SolverFaultModel{Force: map[int]faults.SolverFaultKind{
		// Interval 0 is the boot solve; degrade the next three.
		1: faults.SolverCrash,
		2: faults.SolverTimeout,
		3: faults.SolverStale,
	}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	good := waitSeq(t, c, 1)
	if good.Degraded != "" {
		t.Fatalf("boot solve degraded: %q", good.Degraded)
	}

	want := []string{"crash", "timeout", "stale"}
	for i, reason := range want {
		c.Kick()
		p := waitSeq(t, c, good.Seq+int64(i)+1)
		if p.Degraded != reason {
			t.Fatalf("install %d: degraded %q, want %q", i, p.Degraded, reason)
		}
		if err := checkPlan(p); err != nil {
			t.Fatal(err)
		}
		// The degraded plan carries the last-good allocation: throughput
		// must survive (Example4 without faults degrades losslessly).
		if p.File.TotalRate < good.File.TotalRate-1e-6 {
			t.Fatalf("install %d: degraded plan lost throughput: %g -> %g", i, good.File.TotalRate, p.File.TotalRate)
		}
	}
	// Interval 4: no fault forced; the loop recovers with a fresh solve.
	c.Kick()
	p := waitSeq(t, c, good.Seq+4)
	if p.Degraded != "" {
		t.Fatalf("recovery solve still degraded: %q", p.Degraded)
	}
	if got := c.Stats().DegradedInstalls; got != 3 {
		t.Fatalf("degraded installs: %d, want 3", got)
	}
}

// TestSnapshotRestore: a stopped controller's snapshot boots a new one
// that serves the same plan — marked restored, same sequence — before its
// first solve runs (the first solve is held by FirstSolveDelay).
func TestSnapshotRestore(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "ffcd.snap")
	cfg := testConfig(t)
	cfg.SnapshotPath = snap

	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1.Start()
	p1 := waitSeq(t, c1, 1)
	down := false
	if err := c1.Apply(&wire.Update{Op: wire.UpdateLink, Src: "s2", Dst: "s4", Up: &down}); err != nil {
		t.Fatal(err)
	}
	p1 = waitSeq(t, c1, p1.Seq+1)
	c1.Stop() // writes the final snapshot

	cfg2 := cfg
	cfg2.FirstSolveDelay = time.Hour // the restored plan must serve alone
	c2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	defer c2.Stop()
	p2 := c2.GetPlan()
	if !p2.Restored {
		t.Fatalf("restarted controller serves a non-restored plan: %+v", p2.Meta())
	}
	if p2.Seq != p1.Seq {
		t.Fatalf("restored seq %d, want %d", p2.Seq, p1.Seq)
	}
	if math.Abs(p2.File.TotalRate-p1.File.TotalRate) > 1e-9 {
		t.Fatalf("restored rate %g, want %g", p2.File.TotalRate, p1.File.TotalRate)
	}
	if err := checkPlan(p2); err != nil {
		t.Fatal(err)
	}
	if !c2.Stats().RestoredAtBoot {
		t.Fatal("stats do not mark the boot as restored")
	}
	// The down link must survive the restart: it came back via the
	// snapshot's desired state, not the wire.
	c2.mu.Lock()
	downLinks := len(c2.downLinks)
	c2.mu.Unlock()
	if downLinks == 0 {
		t.Fatal("down link lost across restart")
	}
}

// TestServerEndToEnd drives the TCP protocol: queries, updates, malformed
// frames, and graceful close.
func TestServerEndToEnd(t *testing.T) {
	c, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitSeq(t, c, 1)

	srv, err := Serve(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	meta, sf, err := cl.GetPlan()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Seq < 1 || len(sf.Flows) == 0 {
		t.Fatalf("empty plan over the wire: %+v", meta)
	}
	_, routes, err := cl.GetRoutes()
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != len(sf.Flows) {
		t.Fatalf("routes/plan mismatch: %d vs %d", len(routes), len(sf.Flows))
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.QueriesServed == 0 {
		t.Fatal("stats served no queries")
	}

	// An update over the wire takes effect.
	down := false
	if err := cl.Update(&wire.Update{Op: wire.UpdateLink, Src: "s2", Dst: "s4", Up: &down}); err != nil {
		t.Fatal(err)
	}
	waitSeq(t, c, meta.Seq+1)

	// Malformed and invalid frames get error replies, not disconnects.
	for _, frame := range []string{
		`{"op":"link","src":"s1"}`,                   // missing fields
		`{"op":"switch","switch":"nope","up":false}`, // unknown name
		`{"nonsense":1}`,                             // neither q nor op
		`{"q":"reboot"}`,                             // unknown query
	} {
		resp, err := cl.do([]byte(frame))
		if err != nil {
			t.Fatalf("%s: transport error %v", frame, err)
		}
		if resp.OK || resp.Error == "" {
			t.Fatalf("%s: accepted (%+v)", frame, resp)
		}
	}
	// The connection still works afterwards.
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection broken after bad frames: %v", err)
	}
}

// TestServerConcurrentLoad hammers the server from many connections while
// the controller recomputes — the wire-level race check.
func TestServerConcurrentLoad(t *testing.T) {
	cfg := testConfig(t)
	cfg.Interval = 2 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitSeq(t, c, 1)
	srv, err := Serve(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const conns = 6
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(srv.Addr(), time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			lastSeq := int64(-1)
			for j := 0; j < 150; j++ {
				meta, sf, err := cl.GetPlan()
				if err != nil {
					errs <- err
					return
				}
				if meta.Seq < lastSeq {
					errs <- fmt.Errorf("seq went backwards over the wire: %d after %d", meta.Seq, lastSeq)
					return
				}
				lastSeq = meta.Seq
				var sum float64
				for _, fl := range sf.Flows {
					sum += fl.Rate
				}
				if math.Abs(sum-sf.TotalRate) > 1e-6 {
					errs <- fmt.Errorf("torn plan over the wire at seq %d", meta.Seq)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
