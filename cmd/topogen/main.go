// Command topogen emits topologies and demand files in the JSON formats
// cmd/ffcte consumes.
//
//	topogen -kind lnet -sites 8 -seed 1 -out net.json -demands d.json
//	topogen -kind snet -out snet.json
//	topogen -kind testbed -out tb.json
//	topogen -kind example4 -out ex.json
//	topogen -kind fattree -arity 4 -out ft.json
//	topogen -kind graphml -in Abilene.graphml -out abilene.json
//
// When -demands is given, a gravity-model demand matrix for one TE interval
// is written alongside the topology (scaled so plain TE satisfies ~99% of
// it, the paper's traffic scale 1.0, adjustable with -scale).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/obs"
	"ffc/internal/sim"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
	"ffc/internal/wire"
)

func main() {
	var (
		kind    = flag.String("kind", "lnet", "topology kind: lnet, snet, testbed, example4, fattree, graphml")
		sites   = flag.Int("sites", 8, "sites for lnet")
		arity   = flag.Int("arity", 4, "fat-tree arity (even)")
		inPath  = flag.String("in", "", "GraphML input file (for -kind graphml)")
		linkCap = flag.Float64("capacity", 10, "default link capacity (fattree/graphml)")
		seed    = flag.Int64("seed", 1, "random seed")
		outPath = flag.String("out", "", "topology output file (default stdout)")
		demPath = flag.String("demands", "", "also write a calibrated demand file here")
		scale   = flag.Float64("scale", 1.0, "traffic scale relative to the 99%-satisfied point")
		stats   = flag.Bool("stats", false, "print calibration-solver counters to stderr (with -demands)")
	)
	flag.Parse()

	if *stats {
		obs.Enable()
	}

	rng := rand.New(rand.NewSource(*seed))
	var net *topology.Network
	switch *kind {
	case "lnet":
		net = topology.LNet(topology.LNetConfig{Sites: *sites}, rng)
	case "snet":
		net = topology.SNet()
	case "testbed":
		net = topology.Testbed()
	case "example4":
		net = topology.Example4()
	case "fattree":
		net = topology.FatTree(*arity, *linkCap)
	case "graphml":
		if *inPath == "" {
			fatalf("-kind graphml requires -in <file>")
		}
		f, err := os.Open(*inPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		net, err = topology.ParseGraphML(f, *linkCap)
		if err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("unknown -kind %q", *kind)
	}
	writeJSON(*outPath, net)

	if *demPath != "" {
		series := demand.Generate(net, demand.Config{Intervals: 3}, rng)
		flows := sim.FlowsOf(series)
		set := tunnel.Layout(net, flows, tunnel.LayoutConfig{})
		solver := core.NewSolver(net, set, core.Options{MiceFraction: 0.01})
		k, err := sim.CalibrateScale(solver, series, 0.99, 2)
		if err != nil {
			fatalf("calibrating: %v", err)
		}
		writeJSON(*demPath, wire.EncodeDemands(net, series[0].Scale(k**scale)))
	}

	if *stats {
		obs.Default().WriteText(os.Stderr)
	}
}

func writeJSON(path string, v interface{}) {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("%v", err)
	}
	if path != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "topogen: "+format+"\n", args...)
	os.Exit(1)
}
