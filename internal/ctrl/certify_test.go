package ctrl

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ffc/internal/check"
	"ffc/internal/wire"
)

// syncBuffer serializes trace writes against test reads (install runs on
// the recompute goroutine).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() [][]byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out [][]byte
	for _, l := range bytes.Split(b.buf.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(l)) > 0 {
			out = append(out, append([]byte(nil), l...))
		}
	}
	return out
}

// TestCertifyInstalls: with Certify configured, every recompute's install
// is certified, none fail, and the trace records replay cleanly.
func TestCertifyInstalls(t *testing.T) {
	cfg := testConfig(t)
	cfg.Certify = &check.Params{}
	trace := &syncBuffer{}
	cfg.TraceWriter = trace

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	p := waitSeq(t, c, 1)
	c.Kick()
	waitSeq(t, c, p.Seq+1)
	c.Stop() // drains the certifier

	s := c.Stats()
	if s.CertRuns < 2 {
		t.Fatalf("cert runs %d, want >= 2", s.CertRuns)
	}
	if s.CertFailures != 0 {
		t.Fatalf("cert failures %d on healthy solves", s.CertFailures)
	}

	lines := trace.Lines()
	if len(lines) < 2 {
		t.Fatalf("trace has %d records, want >= 2", len(lines))
	}
	for i, line := range lines {
		rec, err := wire.ParseTraceRecord(line)
		if err != nil {
			t.Fatalf("trace line %d: %v", i, err)
		}
		if rec.Seq != int64(i+1) {
			t.Fatalf("trace line %d: seq %d, want %d", i, rec.Seq, i+1)
		}
		// Each record must certify on a set rebuilt purely from its own
		// recorded paths — the offline ffccheck replay path.
		set, err := wire.TunnelSetFromState(cfg.Net, &rec.State)
		if err != nil {
			t.Fatalf("trace line %d: %v", i, err)
		}
		st, err := wire.ResolveState(cfg.Net, set, &rec.State)
		if err != nil {
			t.Fatalf("trace line %d: %v", i, err)
		}
		cert, err := check.Certify(cfg.Net, set, st, st, check.Params{
			Prot: cfg.Prot,
		})
		if err != nil {
			t.Fatalf("trace line %d: %v", i, err)
		}
		if !cert.OK {
			t.Fatalf("trace line %d fails offline certification: %+v", i, cert.Violation)
		}
	}
}

// TestCertifyRestoredSnapshot: a healthy snapshot re-certifies at boot and
// serves restored; the certification counts as a run.
func TestCertifyRestoredSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "ffcd.snap")
	cfg := testConfig(t)
	cfg.SnapshotPath = snap

	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1.Start()
	waitSeq(t, c1, 1)
	c1.Stop()

	cfg2 := cfg
	cfg2.Certify = &check.Params{}
	cfg2.FirstSolveDelay = time.Hour
	c2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()
	p := c2.GetPlan()
	if !p.Restored {
		t.Fatalf("healthy snapshot did not restore: %+v", p.Meta())
	}
	if s := c2.Stats(); s.CertRuns != 1 || s.CertFailures != 0 {
		t.Fatalf("boot certification: %d runs %d failures, want 1/0", s.CertRuns, s.CertFailures)
	}
}

// writeHealthySnapshot runs a controller to seq>=1 with a snapshot path
// and returns the snapshot bytes and config used.
func writeHealthySnapshot(t *testing.T) (Config, string, []byte) {
	t.Helper()
	snap := filepath.Join(t.TempDir(), "ffcd.snap")
	cfg := testConfig(t)
	cfg.SnapshotPath = snap
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	waitSeq(t, c, 1)
	c.Stop()
	blob, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, snap, blob
}

// TestSnapshotRestoreTruncated: a truncated snapshot file must not
// restore — the controller boots with the seq-0 unsolved placeholder and
// no error (crash recovery best-effort, never boot-blocking).
func TestSnapshotRestoreTruncated(t *testing.T) {
	cfg, snap, blob := writeHealthySnapshot(t)
	for _, frac := range []int{2, 4, 10} {
		if err := os.WriteFile(snap, blob[:len(blob)/frac], 0o644); err != nil {
			t.Fatal(err)
		}
		cfg2 := cfg
		cfg2.FirstSolveDelay = time.Hour
		c, err := New(cfg2)
		if err != nil {
			t.Fatalf("truncation 1/%d: New errored: %v", frac, err)
		}
		p := c.GetPlan()
		if p.Restored || p.Seq != 0 || p.Degraded != "unsolved" {
			t.Fatalf("truncation 1/%d: restored a broken snapshot: %+v", frac, p.Meta())
		}
		if c.Stats().RestoredAtBoot {
			t.Fatalf("truncation 1/%d: stats claim a restore", frac)
		}
	}
}

// TestSnapshotRestoreCorrupted: garbage, a wrong version, and a snapshot
// naming unknown switches all refuse to restore.
func TestSnapshotRestoreCorrupted(t *testing.T) {
	cfg, snap, blob := writeHealthySnapshot(t)

	var parsed map[string]interface{}
	if err := json.Unmarshal(blob, &parsed); err != nil {
		t.Fatal(err)
	}
	wrongVersion, _ := json.Marshal(map[string]interface{}{"version": 99})

	cases := []struct {
		name    string
		blob    []byte
		wantErr bool // New must error (half-applied desired state is worse than no restore)
	}{
		{"garbage", []byte("{not json"), false},
		{"empty", nil, false},
		{"wrong-version", wrongVersion, false},
		{"unknown-switch", []byte(strings.Replace(string(blob), `"s2"`, `"zz"`, 1)), true},
	}
	for _, tc := range cases {
		if err := os.WriteFile(snap, tc.blob, 0o644); err != nil {
			t.Fatal(err)
		}
		cfg2 := cfg
		cfg2.FirstSolveDelay = time.Hour
		c, err := New(cfg2)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("%s: New accepted a snapshot naming unknown switches", tc.name)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: New errored: %v", tc.name, err)
		}
		p := c.GetPlan()
		if p.Restored || p.Seq != 0 {
			t.Fatalf("%s: restored a broken snapshot: %+v", tc.name, p.Meta())
		}
	}
}

// TestSnapshotRestoreRejectedByCertifier: a snapshot that parses fine but
// whose plan violates its own claimed guarantee (a link capacity shrunk
// out from under it) must fail boot certification and serve the unsolved
// placeholder instead of restored=true.
func TestSnapshotRestoreRejectedByCertifier(t *testing.T) {
	cfg, snap, blob := writeHealthySnapshot(t)

	// Corrupt semantically: multiply every recorded rate and allocation so
	// the plan overloads links that certify fine at the original values.
	var parsed map[string]interface{}
	if err := json.Unmarshal(blob, &parsed); err != nil {
		t.Fatal(err)
	}
	state := parsed["state"].(map[string]interface{})
	for _, fi := range state["flows"].([]interface{}) {
		fm := fi.(map[string]interface{})
		fm["rate"] = fm["rate"].(float64) * 1000
		for _, ti := range fm["tunnels"].([]interface{}) {
			tm := ti.(map[string]interface{})
			tm["alloc"] = tm["alloc"].(float64) * 1000
		}
	}
	bad, err := json.Marshal(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	// Without certification the poisoned snapshot is served as restored —
	// that is the hole the certifier closes.
	cfgNoCert := cfg
	cfgNoCert.FirstSolveDelay = time.Hour
	cNo, err := New(cfgNoCert)
	if err != nil {
		t.Fatal(err)
	}
	if p := cNo.GetPlan(); !p.Restored {
		t.Fatalf("precondition: poisoned snapshot should parse and restore without certification, got %+v", p.Meta())
	}

	cfg2 := cfg
	cfg2.Certify = &check.Params{}
	cfg2.FirstSolveDelay = time.Hour
	c, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	p := c.GetPlan()
	if p.Restored {
		t.Fatalf("certifier served an overloading snapshot as restored: %+v", p.Meta())
	}
	if p.Seq != 0 || p.Degraded != "unsolved" {
		t.Fatalf("rejected snapshot should leave the unsolved placeholder, got %+v", p.Meta())
	}
	s := c.Stats()
	if s.CertRuns != 1 || s.CertFailures != 1 {
		t.Fatalf("boot certification: %d runs %d failures, want 1/1", s.CertRuns, s.CertFailures)
	}
	if s.RestoredAtBoot {
		t.Fatal("stats claim a restore after certification rejected it")
	}
}
