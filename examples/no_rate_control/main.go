// TE without flow rate control (§5.4) plus demand-uncertainty protection
// (§9): ISP-style networks cannot cap ingress traffic, so TE minimizes the
// maximum link utilization — and with FFC it can also plan for flows that
// exceed their predicted demand.
//
//	go run ./examples/no_rate_control
package main

import (
	"fmt"
	"log"

	"ffc"
)

func main() {
	net := ffc.LNetTopology(6, 11)
	series := ffc.GenerateDemands(net, 1, 11)
	base := series[0]

	var flows []ffc.Flow
	for f := range base {
		flows = append(flows, f)
	}
	ctl, err := ffc.NewController(net, flows, ffc.ControllerConfig{TunnelsPerFlow: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Scale the predictions to a busy operating point.
	demands := ffc.Demands{}
	for f, d := range base {
		demands[f] = d * 60
	}

	plain, err := ctl.ComputeMinMLU(demands, ffc.NoProtection, ffc.DemandUncertainty{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered demand: %.0f units across %d flows\n", demands.Total(), len(flows))
	fmt.Printf("plain MinMLU TE: max link utilization %.3f\n\n", plain.MLU)

	for _, du := range []ffc.DemandUncertainty{
		{Count: 1, Factor: 1.5},
		{Count: 3, Factor: 1.5},
		{Count: 1, Factor: 2.0},
	} {
		res, err := ctl.ComputeMinMLU(demands, ffc.NoProtection, du)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("robust to any %d flow(s) sending %.1fx their prediction:\n", du.Count, du.Factor)
		fmt.Printf("  nominal MLU %.3f, worst-case (misprediction) MLU %.3f\n",
			res.MLU, res.FaultMLU)
	}
	fmt.Println("\nthe worst-case MLU is a guarantee: no combination of mispredictions within")
	fmt.Println("the protection level can load any link beyond it (verified exhaustively in tests)")
}
