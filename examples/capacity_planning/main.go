// Capacity planning (§3.3): instead of trading throughput for protection,
// compute exactly how much extra link capacity a desired protection level
// requires — the paper's alternative to blind over-provisioning. Also shows
// link shadow prices, which rank upgrades by marginal value.
//
//	go run ./examples/capacity_planning
package main

import (
	"fmt"
	"log"
	"sort"

	"ffc"
)

func main() {
	net := ffc.LNetTopology(6, 7)
	series := ffc.GenerateDemands(net, 1, 7)
	base := series[0]

	var flows []ffc.Flow
	for f := range base {
		flows = append(flows, f)
	}
	ctl, err := ffc.NewController(net, flows, ffc.ControllerConfig{TunnelsPerFlow: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Scale the gravity matrix up until plain TE can no longer satisfy it
	// (so protection genuinely costs capacity).
	scale := 40.0
	demands := ffc.Demands{}
	for {
		for f, d := range base {
			demands[f] = d * scale
		}
		st, _, err := ctl.Compute(demands, ffc.NoProtection)
		if err != nil {
			log.Fatal(err)
		}
		if st.TotalRate() < demands.Total()-1e-6 || scale > 1e6 {
			ctl.Install(st) // give control-plane FFC a configuration to be stale on
			break
		}
		scale *= 2
	}

	fmt.Printf("network: %d switches, %d directed links, %.0f units of demand\n\n",
		net.NumSwitches(), net.NumLinks(), demands.Total())

	for _, prot := range []ffc.Protection{{}, {Ke: 1}, {Kc: 2, Ke: 1}} {
		added, total, err := ctl.PlanCapacityFor(demands, prot, nil)
		if err != nil {
			log.Fatalf("prot %v: %v", prot, err)
		}
		fmt.Printf("protection %v: buy %.1f units of capacity across %d links\n",
			prot, total, len(added))
	}

	// Shadow prices under plain TE: which links limit throughput right now?
	prices, err := ctl.ShadowPrices(demands, ffc.NoProtection)
	if err != nil {
		log.Fatal(err)
	}
	type lp struct {
		link  ffc.LinkID
		price float64
	}
	var ranked []lp
	for l, p := range prices {
		ranked = append(ranked, lp{l, p})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].price > ranked[j].price })
	fmt.Println("\nmost valuable upgrades (marginal throughput per unit capacity):")
	for i, r := range ranked {
		if i == 5 {
			break
		}
		l := net.Links[r.link]
		fmt.Printf("  %s → %s: %.2f\n", net.Switches[l.Src].Name, net.Switches[l.Dst].Name, r.price)
	}
}
