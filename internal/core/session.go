package core

import (
	"ffc/internal/lp"
	"ffc/internal/obs"
)

// Session solves a sequence of closely-related TE inputs — the per-interval
// recomputation loop of §5 — reusing work across calls:
//
//   - the simplex basis of the previous solve warm-starts the next one
//     (lp.WarmStart), typically eliminating Phase 1 and most iterations;
//   - when the input differs from the cached one only in *values* (demands,
//     capacities, rate caps/floors/fixings) and not in structure, the built
//     LP model is re-instantiated from the cached ModelTemplate via
//     SetBounds/SetRHS/SetObjCoef instead of being re-formulated, which
//     also lets the lp layer reuse its presolve mapping.
//
// Options.DisableTemplate turns the second reuse off (every solve then
// re-formulates; the basis carry remains). A Session is NOT safe for
// concurrent use; create one per serial solve loop. Results are identical
// to Solver.Solve up to the simplex's choice among alternate optima.
type Session struct {
	s    *Solver
	warm *lp.WarmStart
	tmpl *ModelTemplate
}

var (
	obsSessionRebinds = obs.NewCounter("core.session_rebinds")
	obsSessionBuilds  = obs.NewCounter("core.session_builds")
)

// NewSession returns a solve session bound to s.
func (s *Solver) NewSession() *Session { return &Session{s: s} }

// Solve is Solver.Solve with cross-call model and basis reuse.
func (se *Session) Solve(in Input) (*State, *Stats, error) {
	return se.s.solve(in, se)
}

// Template exposes the session's cached model template (nil until the
// first successful build, or always nil with Options.DisableTemplate).
func (se *Session) Template() *ModelTemplate { return se.tmpl }

// Reset drops the cached template and basis; the next Solve starts cold.
func (se *Session) Reset() {
	se.warm, se.tmpl = nil, nil
}
