package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"ffc/internal/demand"
	"ffc/internal/topology"
)

func TestInputValidateRejectsBadValues(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})

	st, stats, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: math.NaN()}})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("NaN demand: err = %v, want ErrBadInput", err)
	}
	if st != nil || stats == nil || stats.Outcome != OutcomeSolverError {
		t.Fatalf("NaN demand: st=%v stats=%+v", st, stats)
	}

	_, stats, err = s.Solve(Input{Demands: demand.Matrix{fx.f24: -1}})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative demand: err = %v, want ErrBadInput", err)
	}
	if stats == nil || stats.Outcome != OutcomeSolverError {
		t.Fatalf("negative demand: stats = %+v", stats)
	}

	_, _, err = s.Solve(Input{Demands: demand.Matrix{fx.f24: 1}, Prot: Protection{Ke: -1}})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative protection: err = %v, want ErrBadInput", err)
	}
}

func TestDegradeCapsRateToSurvivingAlloc(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	// Force traffic onto both of f24's tunnels (direct + via s1).
	last, _, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 14}})
	if err != nil {
		t.Fatal(err)
	}

	// Nothing down: Degrade must reproduce the installed state exactly.
	same := Degrade(fx.net, fx.tun, last, nil, nil)
	if math.Abs(same.Rate[fx.f24]-last.Rate[fx.f24]) > 1e-9 {
		t.Fatalf("no-fault degrade changed rate: %v -> %v", last.Rate[fx.f24], same.Rate[fx.f24])
	}
	for i, a := range last.Alloc[fx.f24] {
		if math.Abs(same.Alloc[fx.f24][i]-a) > 1e-9 {
			t.Fatalf("no-fault degrade changed alloc[%d]: %v -> %v", i, a, same.Alloc[fx.f24][i])
		}
	}

	// Fail the direct s2→s4 link: the direct tunnel's allocation must drop
	// to zero and the rate cap to the surviving (via-s1) allocation.
	direct := fx.net.FindLink(fx.s2, fx.s4)
	down := map[topology.LinkID]bool{direct: true}
	if tw := fx.net.Links[direct].Twin; tw != topology.None {
		down[tw] = true
	}
	deg := Degrade(fx.net, fx.tun, last, down, nil)
	if deg.Alloc[fx.f24][0] != 0 {
		t.Fatalf("dead tunnel kept allocation %v", deg.Alloc[fx.f24][0])
	}
	want := last.Alloc[fx.f24][1]
	if math.Abs(deg.Rate[fx.f24]-want) > 1e-9 {
		t.Fatalf("degraded rate %v, want surviving alloc %v", deg.Rate[fx.f24], want)
	}
	// The degraded traffic must fit the installed plan's reservations.
	for l, load := range deg.ActualLinkLoads(fx.tun) {
		if load > fx.net.Links[l].Capacity+1e-6 {
			t.Fatalf("degraded state overloads link %d: %v", l, load)
		}
	}
}

func TestSolveBudgetHitReturnsBestSoFar(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	in := Input{Demands: demand.Matrix{fx.f24: 10, fx.f34: 10}}
	in.Budget.Deadline = -time.Nanosecond // expired before the first pivot
	st, stats, err := s.Solve(in)
	if err == nil {
		t.Fatalf("expired budget solved anyway")
	}
	if stats == nil || stats.Outcome != OutcomeBudgetHit {
		t.Fatalf("stats = %+v, want budget-hit", stats)
	}
	// The TE LP is feasible at the all-zero point, so a best-so-far state
	// must come back — and must respect capacities.
	if st == nil {
		t.Fatalf("budget hit in Phase II returned no best-so-far state")
	}
	for l, load := range st.LinkLoads(fx.tun) {
		if load > fx.net.Links[l].Capacity+1e-6 {
			t.Fatalf("best-so-far state overloads link %d: %v", l, load)
		}
	}
}

func TestSolveRecoversInjectedPanic(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	in := Input{Demands: demand.Matrix{fx.f24: 10}}
	in.Budget.Hook = func(int) { panic("injected solver crash") }
	st, stats, err := s.Solve(in)
	if err == nil {
		t.Fatalf("injected panic did not surface as an error")
	}
	if st != nil {
		t.Fatalf("crashed solve returned a state")
	}
	if stats == nil || stats.Outcome != OutcomeSolverError {
		t.Fatalf("stats = %+v, want solver-error", stats)
	}
}

func TestSolveBudgetGenerousCompletes(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{SolveBudget: time.Minute})
	st, stats, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 10, fx.f34: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Outcome != OutcomeOptimal {
		t.Fatalf("outcome = %v, want optimal", stats.Outcome)
	}
	if math.Abs(st.TotalRate()-20) > 1e-6 {
		t.Fatalf("throughput %v, want 20", st.TotalRate())
	}
}
