// Package ctrl is the long-running FFC TE controller service: it owns a
// core.Session (LP model template + warm simplex basis carried across
// intervals), ingests streamed topology/demand updates, recomputes the TE
// plan on a ticker and on update arrival, and serves the installed plan
// from an immutable snapshot behind an atomic pointer so queries never
// block on a solve. Solver trouble — budget hits, crashes, injected faults,
// infeasibility that survives the unprotected retry — falls back through
// core.Degrade, with the reason exposed in the plan metadata and counted
// in internal/obs. A periodic snapshot of the installed state lets a
// restarted daemon serve its first query before its first solve completes.
//
// cmd/ffcd wraps a Controller + Server into the daemon binary; cmd/ffcload
// is the matching load generator. The sim package remains the offline twin
// of this loop — both degrade through the same core paths.
package ctrl

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ffc/internal/check"
	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/faults"
	"ffc/internal/obs"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
	"ffc/internal/wire"
)

var (
	obsPlansInstalled   = obs.NewCounter("ctrl.plans_installed")
	obsDegradedInstalls = obs.NewCounter("ctrl.degraded_installs")
	obsUpdatesApplied   = obs.NewCounter("ctrl.updates_applied")
	obsRelayouts        = obs.NewCounter("ctrl.relayouts")
	obsSnapshotWrites   = obs.NewCounter("ctrl.snapshot_writes")
	obsQueueDepth       = obs.NewGauge("ctrl.update_queue_depth")
	obsInstallLatency   = obs.NewHistogram("ctrl.install_latency")
	obsServeLatency     = obs.NewHistogram("ctrl.serve_latency")
)

// Config parameterizes a Controller.
type Config struct {
	// Net is the topology served (required).
	Net *topology.Network
	// Demands is the initial demand matrix; a restored snapshot's demands
	// take precedence at boot.
	Demands demand.Matrix
	// Prot is the initial protection level (updatable over the wire).
	Prot core.Protection
	// Layout parameterizes tunnel layout for the demand flows.
	Layout tunnel.LayoutConfig
	// Opts tunes the solver (encoding, §6 skips, build workers, ...).
	Opts core.Options
	// Interval is the recompute ticker period; updates additionally kick an
	// immediate recompute. Default 5s.
	Interval time.Duration
	// SolveDeadline bounds each recompute's wall clock; a miss degrades to
	// the last-good plan. Zero defers to Opts.SolveBudget.
	SolveDeadline time.Duration
	// SnapshotPath, when set, enables crash recovery: the installed state is
	// persisted there (atomic rename) and restored at boot.
	SnapshotPath string
	// SnapshotEvery rate-limits periodic snapshot writes. Default 10s; the
	// final snapshot on Stop always happens.
	SnapshotEvery time.Duration
	// Faults injects controller failures per recompute (testing and soak;
	// the zero value injects nothing).
	Faults faults.SolverFaultModel
	// FaultSeed seeds the injection RNG. Default 1.
	FaultSeed int64
	// FirstSolveDelay holds the recompute loop idle after Start — the
	// restored snapshot (or empty plan) serves meanwhile. Exists so tests
	// and the CI soak can deterministically observe a restart answering
	// queries before its first solve completes.
	FirstSolveDelay time.Duration
	// Hook is forwarded to every solve's Budget.Hook (observation and fault
	// injection in tests).
	Hook func(iters int)
	// Logf, when non-nil, receives operational log lines (install
	// transitions, restore, snapshot errors).
	Logf func(format string, args ...interface{})
	// Certify, when non-nil, independently certifies plans with
	// internal/check: every install is checked asynchronously (never
	// blocking the serve or solve path; a full queue drops the job and
	// counts ctrl.cert_skipped), and a restored snapshot is checked
	// synchronously at boot — a plan that fails certification is not
	// served as restored. Prot, RateLimiter, and the down sets are filled
	// per install; the remaining fields (Mode, MaxExactCases, Restarts,
	// Seed, FailFast) come from this template.
	Certify *check.Params
	// TraceWriter, when non-nil, receives one wire.TraceRecord NDJSON
	// line per install — an offline-replayable plan history for
	// cmd/ffccheck.
	TraceWriter io.Writer
}

// statsCell is the controller's own atomic accounting, live regardless of
// obs.Enabled so the stats query and BENCH output always have data.
type statsCell struct {
	plansInstalled   atomic.Int64
	degradedInstalls atomic.Int64
	updatesApplied   atomic.Int64
	queriesServed    atomic.Int64
	relayouts        atomic.Int64
	snapshotWrites   atomic.Int64
	solveCount       atomic.Int64
	solveSumNs       atomic.Int64
	solveMaxNs       atomic.Int64
	certRuns         atomic.Int64
	certFailures     atomic.Int64
	certSkipped      atomic.Int64
}

// StatsSnapshot is the stats query's payload.
type StatsSnapshot struct {
	PlanSeq          int64 `json:"plan_seq"`
	PlansInstalled   int64 `json:"plans_installed"`
	DegradedInstalls int64 `json:"degraded_installs"`
	RestoredAtBoot   bool  `json:"restored_at_boot"`
	UpdatesApplied   int64 `json:"updates_applied"`
	QueriesServed    int64 `json:"queries_served"`
	Relayouts        int64 `json:"relayouts"`
	SnapshotWrites   int64 `json:"snapshot_writes"`
	PendingUpdates   int64 `json:"pending_updates"`
	SolveCount       int64 `json:"solve_count"`
	SolveMeanNs      int64 `json:"solve_mean_ns"`
	SolveMaxNs       int64 `json:"solve_max_ns"`
	CertRuns         int64 `json:"cert_runs"`
	CertFailures     int64 `json:"cert_failures"`
	CertSkipped      int64 `json:"cert_skipped"`
}

// Controller is the TE control loop plus its serving surface. Queries
// (GetPlan, Routes, Stats) are safe from any goroutine and never block on
// a solve; updates (Apply) are safe from any goroutine and coalesce into
// the next recompute. Start/Stop manage the recompute loop.
type Controller struct {
	cfg Config
	net *topology.Network

	// plan is the serving path: an immutable snapshot behind an atomic
	// pointer, replaced wholesale at install.
	plan atomic.Pointer[Plan]

	// mu guards the desired state the recompute loop snapshots: demands,
	// down sets, protection, and the pending-update count.
	mu           sync.Mutex
	demands      demand.Matrix
	downLinks    map[topology.LinkID]bool
	downSwitches map[topology.SwitchID]bool
	prot         core.Protection
	pending      int64

	kick chan struct{}

	// Solver state, owned by the recompute loop (rebuilt on re-layout).
	set     *tunnel.Set
	solver  *core.Solver
	session *core.Session

	rng          *rand.Rand
	intervalN    int
	lastSnapshot time.Time

	stats    statsCell
	restored bool

	// Async certification (nil unless Config.Certify is set and Start ran).
	certCh   chan certJob
	certDone chan struct{}

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// New builds a controller: it restores the snapshot if one exists (the
// restored plan serves immediately), lays out tunnels for the working
// demand set, and prepares — but does not start — the recompute loop.
func New(cfg Config) (*Controller, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("ctrl: nil network")
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, fmt.Errorf("ctrl: %w", err)
	}
	if cfg.Interval == 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 10 * time.Second
	}
	if cfg.FaultSeed == 0 {
		cfg.FaultSeed = 1
	}
	if cfg.Layout.TunnelsPerFlow == 0 {
		cfg.Layout.TunnelsPerFlow = 6
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	c := &Controller{
		cfg:          cfg,
		net:          cfg.Net,
		demands:      cfg.Demands.Clone(),
		downLinks:    map[topology.LinkID]bool{},
		downSwitches: map[topology.SwitchID]bool{},
		prot:         cfg.Prot,
		kick:         make(chan struct{}, 1),
		rng:          rand.New(rand.NewSource(cfg.FaultSeed)),
		done:         make(chan struct{}),
	}
	if c.demands == nil {
		c.demands = demand.Matrix{}
	}
	restoredSeq := int64(0)
	var restoredState *wire.StateFile
	var restoredReason string
	if cfg.SnapshotPath != "" {
		snap, err := loadSnapshot(cfg.SnapshotPath)
		if err != nil {
			c.cfg.Logf("ctrl: no snapshot restored: %v", err)
		} else {
			if err := c.adoptSnapshot(snap); err != nil {
				return nil, fmt.Errorf("ctrl: restoring snapshot %s: %w", cfg.SnapshotPath, err)
			}
			restoredSeq = snap.Seq
			restoredState = &snap.State
			restoredReason = snap.Degraded
			c.restored = true
		}
	}
	c.relayout(c.demands)
	if restoredState != nil {
		st, err := wire.ResolveState(c.net, c.set, restoredState)
		if err != nil {
			return nil, fmt.Errorf("ctrl: restoring snapshot state: %w", err)
		}
		certified := true
		if cfg.Certify != nil {
			// Re-certify synchronously before serving: a snapshot is the
			// one plan this process never solved itself, so a corrupted or
			// semantically-stale file must not be served as restored=true.
			// prev = st (a restart installs exactly what was running, so no
			// ingress is stale relative to it).
			job := certJob{
				prev: st, set: c.set,
				params: c.certParams(c.prot, restoredReason, c.downLinks, c.downSwitches),
			}
			job.plan = &Plan{Seq: restoredSeq, Degraded: restoredReason, State: st}
			certified = c.runCert(job)
		}
		if certified {
			c.install(st, c.demands.Clone(), c.prot, installMeta{
				seq: restoredSeq, degraded: restoredReason, restored: true,
				outcome:   core.OutcomeOptimal,
				downLinks: c.downLinks, downSwitches: c.downSwitches,
				prev: st,
			})
			c.cfg.Logf("ctrl: restored plan seq=%d from %s (%d flows); serving while the first solve runs",
				restoredSeq, cfg.SnapshotPath, len(restoredState.Flows))
		} else {
			c.restored = false
			c.cfg.Logf("ctrl: snapshot plan seq=%d from %s failed certification; serving empty plan instead",
				restoredSeq, cfg.SnapshotPath)
			c.install(core.NewState(), c.demands.Clone(), c.prot, installMeta{
				seq: 0, degraded: "unsolved", outcome: core.OutcomeSolverError,
			})
		}
	} else {
		// Serve an explicit empty plan from the start: a query must never
		// observe "no plan", only "the plan grants nothing yet".
		c.install(core.NewState(), c.demands.Clone(), c.prot, installMeta{
			seq: 0, degraded: "unsolved", outcome: core.OutcomeSolverError,
		})
	}
	return c, nil
}

// Start launches the recompute loop (and the async certifier when
// configured).
func (c *Controller) Start() {
	c.startCertifier()
	c.ctx, c.cancel = context.WithCancel(context.Background())
	go c.run()
}

// Stop drains the controller: the in-flight solve is cancelled through the
// budget path, the loop exits, queued certifications finish, and a final
// snapshot is written.
func (c *Controller) Stop() {
	if c.cancel == nil {
		return
	}
	c.cancel()
	<-c.done
	c.stopCertifier()
	c.writeSnapshot(true)
}

// Kick requests an immediate recompute (coalesced if one is pending).
func (c *Controller) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// GetPlan returns the installed plan snapshot. Never nil after New; never
// blocks on a solve.
func (c *Controller) GetPlan() *Plan {
	start := time.Now()
	p := c.plan.Load()
	c.stats.queriesServed.Add(1)
	if obs.Enabled() {
		obsServeLatency.ObserveSince(start)
	}
	return p
}

// Stats snapshots the controller's accounting.
func (c *Controller) Stats() StatsSnapshot {
	c.mu.Lock()
	pending := c.pending
	c.mu.Unlock()
	s := StatsSnapshot{
		PlansInstalled:   c.stats.plansInstalled.Load(),
		DegradedInstalls: c.stats.degradedInstalls.Load(),
		RestoredAtBoot:   c.restored,
		UpdatesApplied:   c.stats.updatesApplied.Load(),
		QueriesServed:    c.stats.queriesServed.Load(),
		Relayouts:        c.stats.relayouts.Load(),
		SnapshotWrites:   c.stats.snapshotWrites.Load(),
		PendingUpdates:   pending,
		SolveCount:       c.stats.solveCount.Load(),
		SolveMaxNs:       c.stats.solveMaxNs.Load(),
		CertRuns:         c.stats.certRuns.Load(),
		CertFailures:     c.stats.certFailures.Load(),
		CertSkipped:      c.stats.certSkipped.Load(),
	}
	if p := c.plan.Load(); p != nil {
		s.PlanSeq = p.Seq
	}
	if n := s.SolveCount; n > 0 {
		s.SolveMeanNs = c.stats.solveSumNs.Load() / n
	}
	return s
}

// Apply resolves one wire update against the topology and folds it into the
// desired state; the recompute loop is kicked. Unknown names error and
// change nothing.
func (c *Controller) Apply(u *wire.Update) error {
	if err := u.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer func() {
		pending := c.pending
		c.mu.Unlock()
		obsQueueDepth.Set(pending)
		c.Kick()
	}()
	switch u.Op {
	case wire.UpdateDemands:
		next := c.demands
		if u.Reset {
			next = demand.Matrix{}
		}
		// Resolve every entry before touching the matrix: an update is
		// applied atomically or not at all.
		type resolved struct {
			f tunnel.Flow
			d float64
		}
		rs := make([]resolved, 0, len(u.Demands))
		for i, d := range u.Demands {
			src, ok := c.net.SwitchByName(d.Src)
			if !ok {
				return fmt.Errorf("ctrl: demands update entry %d: unknown switch %q", i, d.Src)
			}
			dst, ok := c.net.SwitchByName(d.Dst)
			if !ok {
				return fmt.Errorf("ctrl: demands update entry %d: unknown switch %q", i, d.Dst)
			}
			rs = append(rs, resolved{tunnel.Flow{Src: src, Dst: dst}, d.Demand})
		}
		if u.Reset {
			c.demands = next
		}
		for _, r := range rs {
			c.demands[r.f] = r.d
		}
	case wire.UpdateLink:
		src, ok := c.net.SwitchByName(u.Src)
		if !ok {
			return fmt.Errorf("ctrl: link update: unknown switch %q", u.Src)
		}
		dst, ok := c.net.SwitchByName(u.Dst)
		if !ok {
			return fmt.Errorf("ctrl: link update: unknown switch %q", u.Dst)
		}
		l := c.net.FindLink(src, dst)
		if l == topology.None {
			l = c.net.FindLink(dst, src)
		}
		if l == topology.None {
			return fmt.Errorf("ctrl: link update: no link %s-%s", u.Src, u.Dst)
		}
		ids := []topology.LinkID{l}
		if tw := c.net.Links[l].Twin; tw != topology.None {
			ids = append(ids, tw)
		}
		for _, id := range ids {
			if *u.Up {
				delete(c.downLinks, id)
			} else {
				c.downLinks[id] = true
			}
		}
	case wire.UpdateSwitch:
		sw, ok := c.net.SwitchByName(u.Switch)
		if !ok {
			return fmt.Errorf("ctrl: switch update: unknown switch %q", u.Switch)
		}
		if *u.Up {
			delete(c.downSwitches, sw)
		} else {
			c.downSwitches[sw] = true
		}
	case wire.UpdateProtection:
		if u.Kc != nil {
			c.prot.Kc = *u.Kc
		}
		if u.Ke != nil {
			c.prot.Ke = *u.Ke
		}
		if u.Kv != nil {
			c.prot.Kv = *u.Kv
		}
	}
	c.pending++
	c.stats.updatesApplied.Add(1)
	obsUpdatesApplied.Inc()
	return nil
}

// run is the recompute loop: a ticker paces steady-state recomputes, the
// kick channel folds in streamed updates promptly, and context cancellation
// drains the loop (cancelling the in-flight solve via the budget path).
func (c *Controller) run() {
	defer close(c.done)
	if c.cfg.FirstSolveDelay > 0 {
		select {
		case <-time.After(c.cfg.FirstSolveDelay):
		case <-c.ctx.Done():
			return
		}
	}
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	c.recompute()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-ticker.C:
		case <-c.kick:
		}
		if c.ctx.Err() != nil {
			return
		}
		c.recompute()
	}
}

// relayout (re)builds the tunnel set, solver, and session for the flows of
// dem. The session starts cold — a changed flow set changes the model shape.
func (c *Controller) relayout(dem demand.Matrix) {
	flows := dem.Flows()
	c.set = tunnel.Layout(c.net, flows, c.cfg.Layout)
	c.solver = core.NewSolver(c.net, c.set, c.cfg.Opts)
	c.session = c.solver.NewSession()
	c.stats.relayouts.Add(1)
	obsRelayouts.Inc()
}

// covered reports whether every flow of dem has tunnels laid out.
func (c *Controller) covered(dem demand.Matrix) bool {
	for _, f := range dem.Flows() {
		if len(c.set.Tunnels(f)) == 0 {
			return false
		}
	}
	return true
}

// recompute runs one control interval: snapshot the desired state, solve
// (warm, templated), and install either the fresh plan or the core.Degrade
// fallback with its reason.
func (c *Controller) recompute() {
	c.mu.Lock()
	dem := c.demands.Clone()
	prot := c.prot
	dl := cloneIDSet(c.downLinks)
	ds := cloneSwitchSet(c.downSwitches)
	c.pending = 0
	c.mu.Unlock()
	obsQueueDepth.Set(0)

	if !c.covered(dem) {
		c.relayout(dem)
	}

	last := c.plan.Load()
	prev := core.NewState()
	if last != nil && last.State != nil {
		prev = last.State
	}

	in := core.Input{
		Demands:      dem,
		Prot:         prot,
		Prev:         prev,
		DownLinks:    dl,
		DownSwitches: ds,
	}
	in.Budget.Ctx = c.ctx
	in.Budget.Deadline = c.cfg.SolveDeadline
	in.Budget.Hook = c.cfg.Hook

	injected := ""
	if k, ok := c.cfg.Faults.Sample(c.intervalN, c.rng); ok {
		switch k {
		case faults.SolverTimeout:
			in.Budget.Deadline = -time.Nanosecond
			injected = "timeout"
		case faults.SolverCrash:
			in.Budget.Hook = func(int) { panic("ctrl: injected solver crash") }
			injected = "crash"
		case faults.SolverStale:
			injected = "stale"
		}
	}
	c.intervalN++

	start := time.Now()
	achieved := prot
	st, stats, err := c.session.Solve(in)
	if err != nil && stats != nil && stats.Outcome == core.OutcomeInfeasible && prot != core.None {
		// The protected LP has no solution (heavy faults can shrink the
		// network below the protection level): retry unprotected, cold.
		in2 := in
		in2.Prot = core.None
		st, stats, err = c.solver.Solve(in2)
		if err == nil {
			// The installed plan was solved without protection; record
			// that, or certification (and clients) would hold it to a
			// guarantee it never promised.
			achieved = core.None
		}
	}
	solveTime := time.Since(start)
	c.stats.solveCount.Add(1)
	c.stats.solveSumNs.Add(solveTime.Nanoseconds())
	for {
		max := c.stats.solveMaxNs.Load()
		if ns := solveTime.Nanoseconds(); ns <= max || c.stats.solveMaxNs.CompareAndSwap(max, ns) {
			break
		}
	}
	if c.ctx.Err() != nil && err != nil {
		// Shutting down: the cancelled solve must not install anything.
		return
	}

	reason := ""
	switch {
	case err != nil:
		reason = degradeReason(stats, injected)
	case injected == "stale":
		// The fresh plan missed its installation window.
		reason = "stale"
	}
	outcome := core.OutcomeSolverError
	if stats != nil {
		outcome = stats.Outcome
	}
	if reason != "" {
		st = core.Degrade(c.net, c.set, prev, dl, ds)
		// Installed limiters persist, but flows only offer current demand.
		for f, r := range st.Rate {
			if d := dem[f]; r > d {
				st.Rate[f] = d
			}
		}
		core.NoteDegradedInterval()
	}

	seq := int64(1)
	if last != nil {
		seq = last.Seq + 1
	}
	c.install(st, dem, achieved, installMeta{
		seq: seq, degraded: reason, outcome: outcome, solveTime: solveTime,
		prev: prev, downLinks: dl, downSwitches: ds,
	})
	if reason != "" {
		c.cfg.Logf("ctrl: installed DEGRADED plan seq=%d reason=%s (outcome %v, %v)", seq, reason, outcome, solveTime.Round(time.Microsecond))
	}
	c.writeSnapshot(false)
}

// degradeReason names why a recompute failed, mirroring the sim's
// accounting so timelines and daemon metadata agree.
func degradeReason(stats *core.Stats, injected string) string {
	if injected != "" {
		return injected
	}
	if stats == nil {
		return "solver-error"
	}
	switch stats.Outcome {
	case core.OutcomeBudgetHit:
		return "deadline"
	case core.OutcomeInfeasible:
		return "infeasible"
	}
	return "solver-error"
}

func cloneIDSet(m map[topology.LinkID]bool) map[topology.LinkID]bool {
	out := make(map[topology.LinkID]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = v
		}
	}
	return out
}

func cloneSwitchSet(m map[topology.SwitchID]bool) map[topology.SwitchID]bool {
	out := make(map[topology.SwitchID]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = v
		}
	}
	return out
}
