package core

import (
	"math"
	"math/rand"
	"testing"

	"ffc/internal/demand"
	"ffc/internal/topology"
)

// TestPerCaseOrdering verifies the fundamental sandwich on the Fig 2/4
// setup: FFC(ke=1) ≤ per-case-optimal ≤ plain TE. FFC is restricted to one
// configuration with proportional rescaling; the per-case scheme may
// re-split arbitrarily per failure; plain TE ignores failures entirely.
func TestPerCaseOrdering(t *testing.T) {
	fx := newFig25(t)
	demands := demand.Matrix{fx.f24: 14, fx.f34: 6}
	s := NewSolver(fx.net, fx.tun, Options{})

	plain, _, err := s.Solve(Input{Demands: demands})
	if err != nil {
		t.Fatal(err)
	}
	ffc, _, err := s.Solve(Input{Demands: demands, Prot: Protection{Ke: 1}})
	if err != nil {
		t.Fatal(err)
	}
	perCase, _, err := s.SolvePerCaseOptimal(Input{Demands: demands}, SingleLinkCases(fx.net))
	if err != nil {
		t.Fatal(err)
	}
	if ffc.TotalRate() > perCase.TotalRate()+1e-6 {
		t.Fatalf("FFC %v exceeds the per-case upper bound %v", ffc.TotalRate(), perCase.TotalRate())
	}
	if perCase.TotalRate() > plain.TotalRate()+1e-6 {
		t.Fatalf("per-case %v exceeds plain %v", perCase.TotalRate(), plain.TotalRate())
	}
	// On this example the two tunnels per flow share link s1−s4, so even
	// arbitrary re-splitting cannot carry everything through one failure:
	// the per-case bound is strictly below plain.
	if perCase.TotalRate() >= plain.TotalRate()-1e-6 {
		t.Fatalf("per-case %v should be strictly below plain %v here", perCase.TotalRate(), plain.TotalRate())
	}
}

// TestPerCaseBaseStateIsFeasible: the returned base configuration must
// respect link capacities in the no-fault case.
func TestPerCaseBaseStateIsFeasible(t *testing.T) {
	fx := newFig25(t)
	demands := demand.Matrix{fx.f24: 14, fx.f34: 6}
	s := NewSolver(fx.net, fx.tun, Options{})
	st, stats, err := s.SolvePerCaseOptimal(Input{Demands: demands}, SingleLinkCases(fx.net))
	if err != nil {
		t.Fatal(err)
	}
	for l, load := range st.LinkLoads(fx.tun) {
		if load > fx.net.Links[l].Capacity+1e-6 {
			t.Fatalf("base link %d overloaded: %v", l, load)
		}
	}
	if stats.Vars == 0 || stats.Constraints == 0 {
		t.Fatal("stats not populated")
	}
}

// TestPerCasePinsDoomedFlows: a flow that loses every tunnel in some case
// cannot be admitted at all (rates are shared across cases).
func TestPerCasePinsDoomedFlows(t *testing.T) {
	fx := newFig25(t)
	// f14 has only the direct s1−s4 tunnel; the case failing that link
	// kills it entirely.
	s := NewSolver(fx.net, fx.tun, Options{})
	st, _, err := s.SolvePerCaseOptimal(Input{Demands: demand.Matrix{fx.f14: 5}}, SingleLinkCases(fx.net))
	if err != nil {
		t.Fatal(err)
	}
	if st.Rate[fx.f14] != 0 {
		t.Fatalf("doomed flow admitted %v", st.Rate[fx.f14])
	}
}

// TestPerCaseDominatesFFCRandom: across random networks the sandwich holds,
// and the per-case optimum strictly dominates FFC often enough to be a
// meaningful bound.
func TestPerCaseDominatesFFCRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1717))
	atLeastOnceStrict := false
	for trial := 0; trial < 8; trial++ {
		net, tun, flows := randomNetwork(rng, 6, 4)
		if len(flows) == 0 {
			continue
		}
		demands := demand.Matrix{}
		for _, f := range flows {
			demands[f] = 2 + rng.Float64()*8
		}
		s := NewSolver(net, tun, Options{})
		ffc, _, err := s.Solve(Input{Demands: demands, Prot: Protection{Ke: 1}})
		if err != nil {
			t.Fatal(err)
		}
		perCase, _, err := s.SolvePerCaseOptimal(Input{Demands: demands}, SingleLinkCases(net))
		if err != nil {
			t.Fatal(err)
		}
		if ffc.TotalRate() > perCase.TotalRate()+1e-5 {
			t.Fatalf("trial %d: FFC %v above per-case bound %v", trial, ffc.TotalRate(), perCase.TotalRate())
		}
		if perCase.TotalRate() > ffc.TotalRate()+1e-5 {
			atLeastOnceStrict = true
		}
	}
	_ = atLeastOnceStrict // strictness depends on topology; the sandwich is the contract
}

// TestSingleLinkCases sanity.
func TestSingleLinkCases(t *testing.T) {
	net := topology.Example4()
	cases := SingleLinkCases(net)
	if len(cases) != 6 {
		t.Fatalf("%d cases, want 6 physical links", len(cases))
	}
	seen := map[topology.LinkID]bool{}
	for _, c := range cases {
		if len(c.Links) != 1 || seen[c.Links[0]] {
			t.Fatalf("bad case set %+v", cases)
		}
		seen[c.Links[0]] = true
	}
}

// TestPerCaseSwitchFailure: switch cases work too.
func TestPerCaseSwitchFailure(t *testing.T) {
	fx := newFig25(t)
	cases := []FailureCase{{Switches: []topology.SwitchID{fx.s1}}}
	s := NewSolver(fx.net, fx.tun, Options{})
	st, _, err := s.SolvePerCaseOptimal(Input{Demands: demand.Matrix{fx.f24: 14}}, cases)
	if err != nil {
		t.Fatal(err)
	}
	// With s1 down, only the direct tunnel survives: rate ≤ 10, and the
	// no-fault case allows the rest of the 14 on the via-s1 tunnel — but
	// rates are shared, so bf ≤ 10.
	if st.Rate[fx.f24] > 10+1e-6 {
		t.Fatalf("rate %v exceeds the s1-failure ceiling 10", st.Rate[fx.f24])
	}
	if math.Abs(st.Rate[fx.f24]-10) > 1e-6 {
		t.Fatalf("rate %v, want 10", st.Rate[fx.f24])
	}
}
