package wire

import (
	"encoding/json"
	"fmt"
	"math"

	"ffc/internal/core"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// ParseState is the inverse of EncodeState: it decodes a state file and
// resolves it against a topology and tunnel set. It validates everything an
// attacker-controlled (or merely stale) file could get wrong — unknown
// switch names, self-flows, non-finite or negative rates and allocations,
// duplicate flows — and tolerates tunnels whose paths no longer exist in
// the freshly laid-out set (their allocation is dropped, matching what the
// controller can actually install). Both cmd/ffcte's -prev and the ffcd
// daemon's snapshot restore go through here.
func ParseState(net *topology.Network, set *tunnel.Set, data []byte) (*core.State, error) {
	var sf StateFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("wire: parsing state: %w", err)
	}
	return ResolveState(net, set, &sf)
}

// ResolveState resolves an already-decoded StateFile (see ParseState).
func ResolveState(net *topology.Network, set *tunnel.Set, sf *StateFile) (*core.State, error) {
	st := core.NewState()
	seen := map[tunnel.Flow]bool{}
	for i, f := range sf.Flows {
		src, ok1 := net.SwitchByName(f.Src)
		dst, ok2 := net.SwitchByName(f.Dst)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("wire: state flow %d: unknown switch %q/%q", i, f.Src, f.Dst)
		}
		if src == dst {
			return nil, fmt.Errorf("wire: state flow %d: src == dst (%q)", i, f.Src)
		}
		fl := tunnel.Flow{Src: src, Dst: dst}
		if seen[fl] {
			return nil, fmt.Errorf("wire: state flow %d: duplicate flow %s->%s", i, f.Src, f.Dst)
		}
		seen[fl] = true
		if err := checkFinite("rate", i, f.Rate); err != nil {
			return nil, err
		}
		if err := checkFinite("demand", i, f.Demand); err != nil {
			return nil, err
		}
		st.Rate[fl] = f.Rate
		ts := set.Tunnels(fl)
		alloc := make([]float64, len(ts))
		for j, ta := range f.Tunnels {
			if err := checkFinite("tunnel alloc", i, ta.Alloc); err != nil {
				return nil, err
			}
			if err := checkFinite("tunnel weight", i, ta.Weight); err != nil {
				return nil, err
			}
			if len(ta.Path) < 2 {
				return nil, fmt.Errorf("wire: state flow %d tunnel %d: path has %d hops", i, j, len(ta.Path))
			}
			for _, t := range ts {
				if samePathNames(net, t, ta.Path) {
					alloc[t.Index] = ta.Alloc
				}
			}
		}
		st.Alloc[fl] = alloc
	}
	return st, nil
}

func checkFinite(what string, i int, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("wire: state flow %d: %s is %g", i, what, v)
	}
	return nil
}

// samePathNames reports whether a laid-out tunnel follows exactly the named
// switch sequence.
func samePathNames(net *topology.Network, t *tunnel.Tunnel, names []string) bool {
	if len(t.Switches) != len(names) {
		return false
	}
	for i, sw := range t.Switches {
		if net.Switches[sw].Name != names[i] {
			return false
		}
	}
	return true
}
