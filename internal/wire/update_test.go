package wire

import (
	"strings"
	"testing"
)

func TestParseUpdateAccepts(t *testing.T) {
	cases := []struct {
		name string
		blob string
		chk  func(u *Update) bool
	}{
		{"demands", `{"op":"demands","demands":[{"src":"a","dst":"b","demand":2.5}]}`,
			func(u *Update) bool { return u.Op == UpdateDemands && len(u.Demands) == 1 }},
		{"demands-reset", `{"op":"demands","reset":true}`,
			func(u *Update) bool { return u.Reset && len(u.Demands) == 0 }},
		{"link-down", `{"op":"link","src":"a","dst":"b","up":false}`,
			func(u *Update) bool { return u.Op == UpdateLink && u.Up != nil && !*u.Up }},
		{"switch-up", `{"op":"switch","switch":"a","up":true}`,
			func(u *Update) bool { return u.Op == UpdateSwitch && *u.Up }},
		{"protection", `{"op":"protection","kc":2,"ke":1}`,
			func(u *Update) bool { return *u.Kc == 2 && *u.Ke == 1 && u.Kv == nil }},
	}
	for _, tc := range cases {
		u, err := ParseUpdate([]byte(tc.blob))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !tc.chk(u) {
			t.Fatalf("%s: parsed wrong: %+v", tc.name, u)
		}
	}
}

func TestParseUpdateRejects(t *testing.T) {
	cases := []struct {
		name string
		blob string
		want string
	}{
		{"empty", ``, "parsing update"},
		{"not-json", `}{`, "parsing update"},
		{"no-op", `{"demands":[{"src":"a","dst":"b","demand":1}]}`, "missing op"},
		{"unknown-op", `{"op":"reboot"}`, "unknown update op"},
		{"unknown-field", `{"op":"link","src":"a","dst":"b","up":true,"bogus":1}`, "unknown field"},
		{"trailing", `{"op":"demands","reset":true}{"op":"demands","reset":true}`, "trailing data"},
		{"demands-empty", `{"op":"demands"}`, "no entries"},
		{"demands-self", `{"op":"demands","demands":[{"src":"a","dst":"a","demand":1}]}`, "src == dst"},
		{"demands-negative", `{"op":"demands","demands":[{"src":"a","dst":"b","demand":-3}]}`, "demand is -3"},
		{"link-no-up", `{"op":"link","src":"a","dst":"b"}`, "missing up"},
		{"link-self", `{"op":"link","src":"a","dst":"a","up":false}`, "src == dst"},
		{"switch-no-name", `{"op":"switch","up":false}`, "missing switch"},
		{"protection-empty", `{"op":"protection"}`, "changes nothing"},
		{"protection-negative", `{"op":"protection","kc":-1}`, "out of range"},
		{"protection-huge", `{"op":"protection","ke":100000}`, "out of range"},
	}
	for _, tc := range cases {
		if _, err := ParseUpdate([]byte(tc.blob)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestEncodeUpdateRoundTrip: every encodable update parses back equal.
func TestEncodeUpdateRoundTrip(t *testing.T) {
	up := true
	kc := 3
	for _, u := range []*Update{
		{Op: UpdateDemands, Demands: []DemandEntry{{Src: "a", Dst: "b", Demand: 7}}},
		{Op: UpdateDemands, Reset: true},
		{Op: UpdateLink, Src: "a", Dst: "b", Up: &up},
		{Op: UpdateSwitch, Switch: "c", Up: &up},
		{Op: UpdateProtection, Kc: &kc},
	} {
		blob, err := EncodeUpdate(u)
		if err != nil {
			t.Fatalf("%+v: %v", u, err)
		}
		back, err := ParseUpdate(blob)
		if err != nil {
			t.Fatalf("%s: %v", blob, err)
		}
		if back.Op != u.Op || len(back.Demands) != len(u.Demands) || back.Reset != u.Reset {
			t.Fatalf("round trip changed: %+v vs %+v", back, u)
		}
	}
}
