package lp

import "math"

// presolve performs conservative, duals-preserving reductions before the
// simplex runs:
//
//   - fixed variables (lo == hi) are folded into the right-hand sides and
//     removed from the column set;
//   - rows left with no variables are checked for trivial feasibility and
//     dropped (their dual value is exactly 0, so duals stay correct);
//   - bound contradictions and trivially-infeasible empty rows short-
//     circuit to Infeasible without touching the simplex.
//
// The reductions matter in practice: the FFC harness pins many variables
// (dead tunnels, zeroed flows, frozen fairness iterations, §5.6-pinned
// configurations), and folding them shrinks the basis the product-form
// inverse has to carry.
type presolved struct {
	// keep[j] is true when column j survives.
	keep []bool
	// fixedVal[j] is the folded value for removed columns.
	fixedVal []float64
	// newCol[j] maps an original column to its compacted index (-1 if
	// removed).
	newCol []int
	// origCol maps compacted indices back.
	origCol []int
	// rowKeep[i] is true when row i survives; removed rows have dual 0.
	rowKeep []int // -1 removed, else compacted index
	origRow []int
	// rhsAdj[i] is subtracted from row i's rhs.
	rhsAdj []float64
	// infeasible marks a trivially infeasible model.
	infeasible bool
}

// runPresolve analyzes the model and returns the reduction plan.
func runPresolve(m *Model) *presolved {
	nCols, nRows := len(m.cols), len(m.rows)
	p := &presolved{
		keep:     make([]bool, nCols),
		fixedVal: make([]float64, nCols),
		newCol:   make([]int, nCols),
		rowKeep:  make([]int, nRows),
		rhsAdj:   make([]float64, nRows),
	}
	liveTerms := make([]int, nRows)
	for i, r := range m.rows {
		liveTerms[i] = r.nnz
	}
	for j := range m.cols {
		c := &m.cols[j]
		if c.lo > c.hi {
			p.infeasible = true
			return p
		}
		if c.hi-c.lo <= fixedEps {
			// Fold the fixed value into every row it touches.
			v := c.lo
			p.fixedVal[j] = v
			for k, r := range c.rowIdx {
				p.rhsAdj[r] += c.rowCoef[k] * v
				liveTerms[r]--
			}
			continue
		}
		p.keep[j] = true
	}
	// Compact columns.
	for j := range m.cols {
		if p.keep[j] {
			p.newCol[j] = len(p.origCol)
			p.origCol = append(p.origCol, j)
		} else {
			p.newCol[j] = -1
		}
	}
	// Row disposition.
	for i := range m.rows {
		rhs := m.rows[i].rhs - p.rhsAdj[i]
		if liveTerms[i] <= 0 {
			// Vacuous row: constant (sense) rhs.
			ok := true
			switch m.rows[i].sense {
			case LE:
				ok = rhs >= -feasTol
			case GE:
				ok = rhs <= feasTol
			case EQ:
				ok = math.Abs(rhs) <= feasTol
			}
			if !ok {
				p.infeasible = true
				return p
			}
			p.rowKeep[i] = -1
			continue
		}
		p.rowKeep[i] = len(p.origRow)
		p.origRow = append(p.origRow, i)
	}
	return p
}

// worthApplying reports whether the reductions shrink anything.
func (p *presolved) worthApplying(m *Model) bool {
	return len(p.origCol) < len(m.cols) || len(p.origRow) < len(m.rows)
}

// presolveFor returns the model's presolve plan, reusing the cached one
// from the previous solve when the sparsity pattern is unchanged and the
// fixed/free split of every column still matches (so all index mappings —
// and therefore postsolve and warm-start restriction — stay valid). On a
// cache hit only the folded values and vacuous-row feasibility are
// recomputed.
func (m *Model) presolveFor() (*presolved, bool) {
	if m.preCache != nil && m.preVersion == m.structVersion && m.preCache.revalidate(m) {
		return m.preCache, true
	}
	p := runPresolve(m)
	if p.infeasible {
		// Early-exit plans are incomplete; never cache them.
		m.preCache, m.redCache = nil, nil
		return p, false
	}
	m.preCache, m.preVersion, m.redCache = p, m.structVersion, nil
	return p, false
}

// revalidate checks a cached plan against the model's current bounds: the
// plan survives iff every column's fixedness still matches its keep flag
// (bound *values* may drift freely — they are refreshed, not mapped).
// Vacuous-row feasibility is re-derived from the refreshed folded values;
// an infeasible verdict still counts as a valid (reusable) plan.
func (p *presolved) revalidate(m *Model) bool {
	for j := range m.cols {
		c := &m.cols[j]
		if (c.hi-c.lo <= fixedEps) == p.keep[j] {
			return false
		}
	}
	for i := range p.rhsAdj {
		p.rhsAdj[i] = 0
	}
	for j := range m.cols {
		if p.keep[j] {
			continue
		}
		c := &m.cols[j]
		v := c.lo
		p.fixedVal[j] = v
		if v == 0 {
			continue
		}
		for k, r := range c.rowIdx {
			p.rhsAdj[r] += c.rowCoef[k] * v
		}
	}
	p.infeasible = false
	for i := range m.rows {
		if p.rowKeep[i] >= 0 {
			continue
		}
		rhs := m.rows[i].rhs - p.rhsAdj[i]
		ok := true
		switch m.rows[i].sense {
		case LE:
			ok = rhs >= -feasTol
		case GE:
			ok = rhs <= feasTol
		case EQ:
			ok = math.Abs(rhs) <= feasTol
		}
		if !ok {
			p.infeasible = true
			return true
		}
	}
	return true
}

// reducedModel materializes the smaller model.
func (p *presolved) reducedModel(m *Model) *Model {
	rm := &Model{maximize: m.maximize, MaxIters: m.MaxIters, forceRep: m.forceRep}
	rm.cols = make([]column, len(p.origCol))
	for nj, j := range p.origCol {
		src := &m.cols[j]
		dst := &rm.cols[nj]
		dst.name = src.name
		dst.lo, dst.hi, dst.obj = src.lo, src.hi, src.obj
		for k, r := range src.rowIdx {
			if nr := p.rowKeep[r]; nr >= 0 {
				dst.rowIdx = append(dst.rowIdx, int32(nr))
				dst.rowCoef = append(dst.rowCoef, src.rowCoef[k])
			}
		}
	}
	rm.rows = make([]rowMeta, len(p.origRow))
	for ni, i := range p.origRow {
		rm.rows[ni] = rowMeta{
			name:  m.rows[i].name,
			sense: m.rows[i].sense,
			rhs:   m.rows[i].rhs - p.rhsAdj[i],
		}
	}
	return rm
}

// refreshReduced re-syncs a cached reduced model's scalars (bounds,
// objective, right-hand sides, direction) from the original without
// re-walking the nonzero structure. Valid only while the plan revalidates.
func (p *presolved) refreshReduced(m, rm *Model) {
	for nj, j := range p.origCol {
		src := &m.cols[j]
		dst := &rm.cols[nj]
		dst.lo, dst.hi, dst.obj = src.lo, src.hi, src.obj
	}
	for ni, i := range p.origRow {
		rm.rows[ni].rhs = m.rows[i].rhs - p.rhsAdj[i]
	}
	rm.maximize = m.maximize
	rm.MaxIters = m.MaxIters
	rm.forceRep = m.forceRep
}

// expand maps a reduced-model solution back to the original index spaces.
func (p *presolved) expand(m *Model, sol *Solution) *Solution {
	out := &Solution{
		Status:         sol.Status,
		Iters:          sol.Iters,
		Stats:          sol.Stats,
		X:              make([]float64, len(m.cols)),
		Duals:          make([]float64, len(m.rows)),
		budgetReason:   sol.budgetReason,
		budgetFeasible: sol.budgetFeasible,
	}
	for j := range m.cols {
		if nj := p.newCol[j]; nj >= 0 {
			out.X[j] = sol.X[nj]
		} else {
			out.X[j] = p.fixedVal[j]
		}
	}
	if sol.Duals != nil {
		for i := range m.rows {
			if ni := p.rowKeep[i]; ni >= 0 {
				out.Duals[i] = sol.Duals[ni]
			}
		}
	}
	if sol.warm != nil {
		out.warm = p.expandWarm(sol.warm, m)
	}
	out.Objective = objValue(m, out.X)
	return out
}
