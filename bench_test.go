package ffc

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark drives the
// same code path as `ffcbench -exp <id>` on a compact environment so the
// whole suite completes in minutes; the CLI runs the full-size versions.

import (
	"io"
	"sync"
	"testing"

	"ffc/internal/core"
	"ffc/internal/experiments"
	"ffc/internal/faults"
	"ffc/internal/sim"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

func getBenchEnv(b *testing.B) *experiments.Env {
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewLNet(experiments.EnvConfig{
			Sites: 6, Intervals: 6, TunnelsPerFlow: 4,
		})
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

func BenchmarkFig1aDataFaultOversubscription(b *testing.B) {
	e := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1a(e, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1bControlFaultOversubscription(b *testing.B) {
	e := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1b(e, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6UpdateLatencyModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(io.Discard)
	}
}

func BenchmarkFig11TestbedTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig11(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12ThroughputOverhead(b *testing.B) {
	e := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(e, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2ComputationTime measures single TE solves per
// configuration — the direct analogue of the paper's Table 2 cells.
func BenchmarkTable2ComputationTime(b *testing.B) {
	e := getBenchEnv(b)
	series := sim.ScaleSeries(e.Series, e.Scale1)
	solver := core.NewSolver(e.Net, e.Tun, e.Opts)
	prev, _, err := solver.Solve(core.Input{Demands: series[0]})
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		prot core.Protection
	}{
		{"FFC_330", core.Protection{Kc: 3, Ke: 3}},
		{"FFC_210", core.Protection{Kc: 2, Ke: 1}},
		{"NonFFC", core.None},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in := core.Input{Demands: series[1], Prot: tc.prot}
				if tc.prot.Kc > 0 {
					in.Prev = prev
				}
				if _, _, err := solver.Solve(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig13SinglePriority(b *testing.B) {
	e := getBenchEnv(b)
	models := []faults.SwitchModel{faults.Optimistic()}
	scales := []float64{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(e, io.Discard, models, scales); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14MultiPriority(b *testing.B) {
	e := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(e, io.Discard, faults.Optimistic()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15Tradeoff(b *testing.B) {
	e := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15(e, io.Discard, []float64{1}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16CongestionFreeUpdates(b *testing.B) {
	e := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16(e, io.Discard, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEncodings(b *testing.B) {
	e := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEncoding(e, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTunnelLayout(b *testing.B) {
	e := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTunnels(e, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the core computation, per encoding.

func benchSolve(b *testing.B, enc core.Encoding, prot core.Protection) {
	e := getBenchEnv(b)
	opts := e.Opts
	opts.Encoding = enc
	solver := core.NewSolver(e.Net, e.Tun, opts)
	series := sim.ScaleSeries(e.Series, e.Scale1)
	prev, _, err := solver.Solve(core.Input{Demands: series[0]})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := core.Input{Demands: series[1], Prot: prot}
		if prot.Kc > 0 {
			in.Prev = prev
		}
		if _, _, err := solver.Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolvePlainTE(b *testing.B) { benchSolve(b, core.SortNet, core.None) }
func BenchmarkSolveFFCSortNet(b *testing.B) {
	benchSolve(b, core.SortNet, core.Protection{Kc: 2, Ke: 1})
}
func BenchmarkSolveFFCCompact(b *testing.B) {
	benchSolve(b, core.Compact, core.Protection{Kc: 2, Ke: 1})
}

func BenchmarkControllerEndToEnd(b *testing.B) {
	net := Example4Topology()
	s2, _ := net.SwitchByName("s2")
	s3, _ := net.SwitchByName("s3")
	s4, _ := net.SwitchByName("s4")
	f24, f34 := Flow{Src: s2, Dst: s4}, Flow{Src: s3, Dst: s4}
	ctl, err := NewController(net, []Flow{f24, f34}, ControllerConfig{TunnelsPerFlow: 2})
	if err != nil {
		b.Fatal(err)
	}
	d := Demands{f24: 14, f34: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, err := ctl.Compute(d, Protection{Ke: 1})
		if err != nil {
			b.Fatal(err)
		}
		ctl.Install(st)
	}
}

func BenchmarkAblationRescaling(b *testing.B) {
	e := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRescaling(e, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
