package topology

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestAddDuplexTwins(t *testing.T) {
	n := NewNetwork("t")
	a := n.AddSwitch("a", "a", 0, 0)
	b := n.AddSwitch("b", "b", 0, 1)
	f := n.AddDuplex(a, b, 5)
	r := n.Links[f].Twin
	if r == None {
		t.Fatal("duplex forward link has no twin")
	}
	if n.Links[r].Src != b || n.Links[r].Dst != a || n.Links[r].Twin != f {
		t.Fatalf("twin mismatch: %+v", n.Links[r])
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadLinks(t *testing.T) {
	n := NewNetwork("t")
	a := n.AddSwitch("a", "a", 0, 0)
	b := n.AddSwitch("b", "b", 0, 1)
	n.AddLink(a, b, 5)
	n.Links[0].Dst = 99
	if err := n.Validate(); err == nil {
		t.Fatal("expected out-of-range endpoint error")
	}
	n.Links[0].Dst = b
	n.Links[0].Capacity = -1
	if err := n.Validate(); err == nil {
		t.Fatal("expected non-positive capacity error")
	}
	n.Links[0].Capacity = 5
	n.Links[0].Src = b // self loop b→b
	if err := n.Validate(); err == nil {
		t.Fatal("expected self-loop error")
	}
}

func TestAdjacency(t *testing.T) {
	n := Example4()
	s1, _ := n.SwitchByName("s1")
	if got := len(n.OutLinks(s1)); got != 3 {
		t.Fatalf("s1 out-degree = %d, want 3", got)
	}
	if got := len(n.InLinks(s1)); got != 3 {
		t.Fatalf("s1 in-degree = %d, want 3", got)
	}
	s4, _ := n.SwitchByName("s4")
	if id := n.FindLink(s1, s4); id == None {
		t.Fatal("s1→s4 link not found")
	}
	s2, _ := n.SwitchByName("s2")
	if id := n.FindLink(s2, s2); id != None {
		t.Fatal("found nonexistent self link")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	n := Example4()
	blob, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var back Network
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != n.Name || len(back.Switches) != len(n.Switches) || len(back.Links) != len(n.Links) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if back.FindLink(0, 3) == None {
		t.Fatal("adjacency broken after unmarshal")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	blob := []byte(`{"name":"x","switches":[{"id":0,"name":"a"}],"links":[{"id":0,"src":0,"dst":5,"capacity":1,"twin":-1}]}`)
	var n Network
	if err := json.Unmarshal(blob, &n); err == nil {
		t.Fatal("expected validation error for dangling link")
	}
}

func TestLNetGenerator(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := LNet(LNetConfig{}, rng)
		if err := n.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !n.Connected() {
			t.Fatalf("seed %d: L-Net not connected", seed)
		}
		if n.NumSwitches() != 24 {
			t.Fatalf("seed %d: %d switches, want 24", seed, n.NumSwitches())
		}
		if n.NumLinks() < 100 {
			t.Fatalf("seed %d: only %d directed links", seed, n.NumLinks())
		}
	}
}

func TestLNetScalesWithConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := LNet(LNetConfig{Sites: 20, SwitchesPerSite: 3}, rng)
	if n.NumSwitches() != 60 {
		t.Fatalf("%d switches, want 60", n.NumSwitches())
	}
	if !n.Connected() {
		t.Fatal("not connected")
	}
}

func TestSNetShape(t *testing.T) {
	n := SNet()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumSwitches() != 24 {
		t.Fatalf("%d switches, want 24", n.NumSwitches())
	}
	// 12 intra-site duplex + 19 site links × 4 switch pairs, ×2 directions.
	want := 2 * (12 + 19*4)
	if n.NumLinks() != want {
		t.Fatalf("%d directed links, want %d", n.NumLinks(), want)
	}
	if !n.Connected() {
		t.Fatal("S-Net not connected")
	}
}

func TestTestbedShape(t *testing.T) {
	n := Testbed()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumSwitches() != 8 {
		t.Fatalf("%d switches, want 8", n.NumSwitches())
	}
	if !n.Connected() {
		t.Fatal("testbed not connected")
	}
	// Links the paper's walkthrough depends on must exist.
	for _, pair := range [][2]string{{"s6", "s7"}, {"s4", "s5"}, {"s3", "s6"}, {"s4", "s6"}, {"s3", "s5"}} {
		a, _ := n.SwitchByName(pair[0])
		b, _ := n.SwitchByName(pair[1])
		if n.FindLink(a, b) == None {
			t.Fatalf("missing testbed link %s→%s", pair[0], pair[1])
		}
	}
	for _, l := range n.Links {
		if l.Capacity != 1 {
			t.Fatalf("testbed link %d capacity %g, want 1", l.ID, l.Capacity)
		}
	}
}

func TestGeoDistance(t *testing.T) {
	n := Testbed()
	sf, _ := n.SwitchByName("s2")
	ny, _ := n.SwitchByName("s5")
	d := n.GeoDistanceKm(sf, ny)
	if d < 3500 || d > 4800 {
		t.Fatalf("SF–NY distance %v km implausible", d)
	}
	if n.GeoDistanceKm(sf, sf) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := Example4()
	c := n.Clone()
	c.Links[0].Capacity = 999
	if n.Links[0].Capacity == 999 {
		t.Fatal("Clone shares link storage")
	}
}

func TestConnectedDetectsPartition(t *testing.T) {
	n := NewNetwork("p")
	a := n.AddSwitch("a", "a", 0, 0)
	b := n.AddSwitch("b", "b", 0, 1)
	n.AddSwitch("c", "c", 0, 2) // isolated
	n.AddDuplex(a, b, 1)
	if n.Connected() {
		t.Fatal("partitioned network reported connected")
	}
}

func TestTotalCapacity(t *testing.T) {
	n := NewNetwork("t")
	a := n.AddSwitch("a", "a", 0, 0)
	b := n.AddSwitch("b", "b", 0, 1)
	n.AddDuplex(a, b, 7)
	if got := n.TotalCapacity(); got != 14 {
		t.Fatalf("TotalCapacity = %v, want 14", got)
	}
}
