package core

import (
	"math"

	"ffc/internal/tunnel"
)

// MaxMinResult carries the outcome of the iterative max-min computation.
type MaxMinResult struct {
	State *State
	// Iterations is the number of LP solves performed.
	Iterations int
	// TotalStats aggregates solver work across iterations.
	TotalStats Stats
}

// SolveMaxMin computes an approximately max-min fair allocation following
// SWAN's iterative method (§5.3): flow rates are capped by a bound that
// grows by a factor alpha each iteration; flows that cannot reach the bound
// are frozen at their achieved rate. FFC constraints from in.Prot apply in
// every iteration, yielding an allocation that is both fair and
// fault-protected. alpha must exceed 1; u0 > 0 seeds the first bound
// (a value ≤ the smallest interesting rate; it is lowered automatically if
// it exceeds the smallest demand).
func (s *Solver) SolveMaxMin(in Input, alpha, u0 float64) (*MaxMinResult, error) {
	return s.solveMaxMin(in, alpha, u0, nil)
}

// SolveMaxMin is Solver.SolveMaxMin with the session's cross-solve reuse:
// the iterations differ only in rate caps, floors, and fixings, so each one
// re-solves from the previous iteration's basis (and rebinds the built
// model when the shape allows).
func (se *Session) SolveMaxMin(in Input, alpha, u0 float64) (*MaxMinResult, error) {
	return se.s.solveMaxMin(in, alpha, u0, se)
}

func (s *Solver) solveMaxMin(in Input, alpha, u0 float64, se *Session) (*MaxMinResult, error) {
	if alpha <= 1 {
		alpha = 2
	}
	maxDemand, minDemand := 0.0, math.Inf(1)
	for _, d := range in.Demands {
		if d > maxDemand {
			maxDemand = d
		}
		if d > 0 && d < minDemand {
			minDemand = d
		}
	}
	if maxDemand == 0 {
		return &MaxMinResult{State: NewState()}, nil
	}
	if u0 <= 0 {
		// Start well below the smallest demand so shares grow gradually —
		// that gradual growth is what yields the α-approximation.
		u0 = math.Min(minDemand, maxDemand/64)
	}
	if u0 > maxDemand {
		u0 = maxDemand
	}

	frozen := map[tunnel.Flow]float64{}
	res := &MaxMinResult{}
	bound, prevBound := u0, 0.0
	var last *State
	for {
		iter := in // copy
		iter.RateCaps = map[tunnel.Flow]float64{}
		iter.FixedRates = map[tunnel.Flow]float64{}
		iter.RateFloors = map[tunnel.Flow]float64{}
		for f, v := range frozen {
			iter.FixedRates[f] = v
		}
		for f, d := range in.Demands {
			if _, ok := frozen[f]; !ok {
				iter.RateCaps[f] = bound
				// Unfrozen flows reached the previous bound; that level is
				// guaranteed from now on (SWAN's α-approximation argument).
				iter.RateFloors[f] = math.Min(d, prevBound)
			}
		}
		st, stats, err := s.solve(iter, se)
		if err != nil {
			return nil, err
		}
		res.Iterations++
		res.TotalStats.Vars = stats.Vars
		res.TotalStats.Constraints = stats.Constraints
		res.TotalStats.Iters += stats.Iters
		res.TotalStats.SolveTime += stats.SolveTime
		last = st

		// Freeze flows that could not reach this iteration's bound.
		for f, d := range in.Demands {
			if _, ok := frozen[f]; ok {
				continue
			}
			cap := math.Min(d, bound)
			if overThreshold(cap, st.Rate[f]) {
				frozen[f] = st.Rate[f]
			} else if d <= bound {
				frozen[f] = st.Rate[f] // demand fully satisfied
			}
		}
		if bound >= maxDemand || len(frozen) == len(in.Demands) {
			break
		}
		prevBound = bound
		bound *= alpha
	}
	res.State = last
	res.TotalStats.Objective = last.TotalRate()
	return res, nil
}
