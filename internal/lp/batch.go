package lp

import "fmt"

// Emitter is the constraint-emission surface shared by *Model and *Batch.
// Code that builds a block of variables and constraints against an Emitter
// can run either directly on a model or into a detached Batch that is
// spliced in later — the resulting model is identical either way.
type Emitter interface {
	NewVar(name string, lo, hi float64) Var
	AddConstraint(expr *Expr, sense Sense, rhs float64) int
	AddNamed(name string, expr *Expr, sense Sense, rhs float64) int
	AddLE(expr *Expr, rhs float64) int
	AddGE(expr *Expr, rhs float64) int
	AddEQ(expr *Expr, rhs float64) int
}

var (
	_ Emitter = (*Model)(nil)
	_ Emitter = (*Batch)(nil)
)

// batchVarBase is the Var offset for variables created inside a Batch. A
// batch-local variable k is addressed as batchVarBase+k until Splice maps it
// onto the model; real models never approach 2^30 columns, so the ranges
// cannot collide.
const batchVarBase Var = 1 << 30

// IsBatchVar reports whether v is a batch-local variable that has not been
// spliced into a model yet.
func IsBatchVar(v Var) bool { return v >= batchVarBase }

type batchCol struct {
	name   string
	lo, hi float64
}

type batchRow struct {
	name  string
	sense Sense
	rhs   float64 // already net of the expression constant
	idx   []int32 // compacted; batch-local vars appear as batchVarBase+k
	coef  []float64
}

// Batch is a staging area for one independent block of variables and
// constraints. Multiple goroutines may each fill their own Batch
// concurrently; Model.Splice then appends the batches in a deterministic
// order. A Batch only ever references variables that already exist on the
// destination model plus its own local variables — never another batch's.
type Batch struct {
	cols []batchCol
	rows []batchRow
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// NumVars returns the number of batch-local variables created so far.
func (b *Batch) NumVars() int { return len(b.cols) }

// NumRows returns the number of constraints staged so far.
func (b *Batch) NumRows() int { return len(b.rows) }

// NewVar stages a variable and returns its batch-local handle
// (batchVarBase+k). After Splice the k-th staged variable becomes model
// variable varBase+k.
func (b *Batch) NewVar(name string, lo, hi float64) Var {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q has lo %g > hi %g", name, lo, hi))
	}
	b.cols = append(b.cols, batchCol{name: name, lo: lo, hi: hi})
	return batchVarBase + Var(len(b.cols)-1)
}

// AddConstraint stages expr (sense) rhs and returns the batch-local row
// index; after Splice the k-th staged row becomes model row rowBase+k.
func (b *Batch) AddConstraint(expr *Expr, sense Sense, rhs float64) int {
	return b.AddNamed("", expr, sense, rhs)
}

// AddNamed stages a named constraint. Like Model.AddNamed, the expression's
// constant is folded into the right-hand side at staging time.
func (b *Batch) AddNamed(name string, expr *Expr, sense Sense, rhs float64) int {
	idx, coef := expr.compact()
	b.rows = append(b.rows, batchRow{name: name, sense: sense, rhs: rhs - expr.Constant, idx: idx, coef: coef})
	return len(b.rows) - 1
}

// AddLE stages expr ≤ rhs.
func (b *Batch) AddLE(expr *Expr, rhs float64) int { return b.AddConstraint(expr, LE, rhs) }

// AddGE stages expr ≥ rhs.
func (b *Batch) AddGE(expr *Expr, rhs float64) int { return b.AddConstraint(expr, GE, rhs) }

// AddEQ stages expr = rhs.
func (b *Batch) AddEQ(expr *Expr, rhs float64) int { return b.AddConstraint(expr, EQ, rhs) }

// Splice appends a batch to the model: local variables first (the k-th
// staged variable becomes varBase+k), then rows in staging order with local
// variable references remapped. Because a block's rows can only reference
// pre-existing model variables and its own locals — and compact() keeps row
// indices sorted with locals (≥ batchVarBase) after all globals — the
// spliced rows are byte-identical to emitting the same block directly on
// the model.
func (m *Model) Splice(b *Batch) (varBase, rowBase int) {
	varBase, rowBase = len(m.cols), len(m.rows)
	if len(b.cols) == 0 && len(b.rows) == 0 {
		return varBase, rowBase
	}
	for _, c := range b.cols {
		m.cols = append(m.cols, column{name: c.name, lo: c.lo, hi: c.hi})
	}
	for _, r := range b.rows {
		ri := int32(len(m.rows))
		m.rows = append(m.rows, rowMeta{name: r.name, sense: r.sense, rhs: r.rhs, nnz: len(r.idx)})
		for i, ci := range r.idx {
			if ci >= int32(batchVarBase) {
				ci = int32(varBase) + (ci - int32(batchVarBase))
			}
			c := &m.cols[ci]
			c.rowIdx = append(c.rowIdx, ri)
			c.rowCoef = append(c.rowCoef, r.coef[i])
		}
	}
	m.structVersion++
	return varBase, rowBase
}

// SpliceVar translates a batch-local variable handle returned by
// Batch.NewVar into the model variable it became after Splice, given the
// varBase Splice returned. Global handles pass through unchanged.
func SpliceVar(v Var, varBase int) Var {
	if v >= batchVarBase {
		return Var(varBase) + (v - batchVarBase)
	}
	return v
}
