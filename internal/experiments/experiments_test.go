package experiments

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"ffc/internal/faults"
)

// tinyEnv keeps experiment tests fast.
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	e, err := NewLNet(EnvConfig{Sites: 6, Intervals: 6, TunnelsPerFlow: 4})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFig1aShapes(t *testing.T) {
	e := tinyEnv(t)
	series, err := Fig1a(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series, want 4 (1–3 links + 1 switch)", len(series))
	}
	// Oversubscription grows (in the mean) with the number of failures.
	if series[2].Dist.Mean() < series[0].Dist.Mean()-1e-9 {
		t.Fatalf("3-link mean %v below 1-link mean %v", series[2].Dist.Mean(), series[0].Dist.Mean())
	}
}

func TestFig1bShapes(t *testing.T) {
	e := tinyEnv(t)
	series, err := Fig1b(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series, want 3", len(series))
	}
}

func TestFig6Prints(t *testing.T) {
	var sb strings.Builder
	Fig6(&sb)
	out := sb.String()
	for _, want := range []string{"Realistic", "Optimistic", "per-rule", "10ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig12OverheadShapes(t *testing.T) {
	e := tinyEnv(t)
	rows, err := Fig12(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// 3 scales × 3 k for control + same for data + 3 scales for kv.
	if len(rows) != 9+9+3 {
		t.Fatalf("%d rows, want 21", len(rows))
	}
	byKey := map[string]Fig12Row{}
	for _, r := range rows {
		byKey[r.Plane+string(rune('0'+r.K))+"@"+ftoa(r.Scale)] = r
		if r.P50 < -1e-6 || r.P99 > 100+1e-6 {
			t.Fatalf("overhead out of range: %+v", r)
		}
		if r.P50 > r.P99+1e-9 {
			t.Fatalf("p50 > p99: %+v", r)
		}
	}
	// Paper shape: overhead grows with protection level at fixed scale.
	for _, plane := range []string{"control", "data"} {
		k1 := byKey[plane+"1@2"]
		k3 := byKey[plane+"3@2"]
		if k3.P90 < k1.P90-1e-6 {
			t.Fatalf("%s overhead not increasing in k at scale 2: k1 p90=%v k3 p90=%v", plane, k1.P90, k3.P90)
		}
	}
	// Paper shape: data-plane FFC at scale 0.5 is cheap (well-provisioned).
	if r := byKey["data1@0.5"]; r.P50 > 15 {
		t.Fatalf("data ke=1 overhead at scale 0.5 = %v%%, paper says low", r.P50)
	}
}

func ftoa(f float64) string {
	switch f {
	case 0.5:
		return "0.5"
	case 1:
		return "1"
	case 2:
		return "2"
	}
	return "x"
}

func TestTable2Ordering(t *testing.T) {
	e := tinyEnv(t)
	rows, err := Table2(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Non-FFC must be the cheapest; (3,3,0) at least as expensive as (2,1,0).
	if rows[2].MeanTime >= rows[1].MeanTime {
		t.Fatalf("non-FFC %v not cheaper than FFC(2,1,0) %v", rows[2].MeanTime, rows[1].MeanTime)
	}
	if rows[0].Cons <= rows[2].Cons {
		t.Fatal("FFC constraint counts should exceed non-FFC")
	}
}

func TestFig13SmallRun(t *testing.T) {
	e := tinyEnv(t)
	rows, err := Fig13(e, io.Discard, []faults.SwitchModel{faults.Optimistic()}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	// Carryover lets FFC serve deferred demand later, so the ratio can
	// legitimately nudge above 1.
	if r.ThroughputRatio <= 0 || r.ThroughputRatio > 1.05 {
		t.Fatalf("throughput ratio %v", r.ThroughputRatio)
	}
	if r.LossRatio > 1+1e-9 {
		t.Fatalf("FFC loss ratio %v > 1", r.LossRatio)
	}
}

func TestFig16Shapes(t *testing.T) {
	e := tinyEnv(t)
	res, err := Fig16(e, io.Discard, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d models", len(res))
	}
	for _, r := range res {
		if r.FFC.Percentile(50) > r.NonFFC.Percentile(50)+1e-9 {
			t.Fatalf("%s: FFC median %v above non-FFC %v", r.Model, r.FFC.Percentile(50), r.NonFFC.Percentile(50))
		}
	}
	// Realistic non-FFC updates have worse tails; when any stall at all
	// occurs it must hit the baseline at least as hard as FFC.
	real := res[0]
	if real.NonFFC.Percentile(99) < real.FFC.Percentile(99)-1e-9 {
		t.Fatalf("Realistic: non-FFC p99 %v below FFC %v",
			real.NonFFC.Percentile(99), real.FFC.Percentile(99))
	}
	if real.NonFFC.FractionAbove(299.9) < real.FFC.FractionAbove(299.9) {
		t.Fatalf("Realistic: FFC stalls (%v) above non-FFC (%v)",
			real.FFC.FractionAbove(299.9), real.NonFFC.FractionAbove(299.9))
	}
}

func TestAblationEncodingAgreement(t *testing.T) {
	e := tinyEnv(t)
	rows, err := AblationEncoding(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	// Full-env sortnet vs compact: same optimum, sortnet bigger.
	if diff := rows[0].Objective - rows[1].Objective; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("encodings disagree: %v vs %v", rows[0].Objective, rows[1].Objective)
	}
	if rows[0].Cons <= rows[1].Cons {
		t.Fatalf("sortnet (%d cons) should exceed compact (%d cons)", rows[0].Cons, rows[1].Cons)
	}
	// The literal Eqn 5/9 enumeration dwarfs the reduced encodings.
	if rows[3].Cons <= 10*rows[0].Cons {
		t.Fatalf("literal naive (%d cons) should dwarf sortnet (%d cons)", rows[3].Cons, rows[0].Cons)
	}
	// Small-env: all three agree.
	small := rows[4:]
	for _, r := range small[1:] {
		if diff := r.Objective - small[0].Objective; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("small-env encodings disagree: %+v vs %+v", r, small[0])
		}
	}
}

func TestAblationTunnels(t *testing.T) {
	e := tinyEnv(t)
	rows, err := AblationTunnels(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	disjoint, kshort := rows[0], rows[1]
	if disjoint.MeanP > 1+1e-9 {
		t.Fatalf("disjoint layout mean p = %v, want ≤ 1", disjoint.MeanP)
	}
	if kshort.MeanP < disjoint.MeanP {
		t.Fatal("k-shortest should share links at least as much")
	}
}

func TestFig11Timelines(t *testing.T) {
	var sb strings.Builder
	if err := Fig11(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"(a) FFC", "(b) non-FFC", "link-failure", "rescaled", "loss-stop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig11 missing %q:\n%s", want, out)
		}
	}
}

func TestFig2to5Walkthrough(t *testing.T) {
	var sb strings.Builder
	if err := Fig2to5(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The 10/7/4 series must appear.
	for _, want := range []string{"0   10", "1   7", "2   4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2to5 missing %q:\n%s", want, out)
		}
	}
}

func TestSNetEnvBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("S-Net env is slow")
	}
	e, err := NewSNet(EnvConfig{Intervals: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "S-Net" || e.Scale1 <= 0 {
		t.Fatalf("bad env: %+v", e.Name)
	}
}

func TestAblationRescalingSandwich(t *testing.T) {
	e := tinyEnv(t)
	rows, err := AblationRescaling(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	plain, perCase, ffc := rows[0].Throughput, rows[1].Throughput, rows[2].Throughput
	if !(ffc <= perCase+1e-5 && perCase <= plain+1e-5) {
		t.Fatalf("sandwich violated: ffc %v, per-case %v, plain %v", ffc, perCase, plain)
	}
	if ffc <= 0 {
		t.Fatal("FFC got nothing")
	}
}

func TestEnvConfigSeedSentinel(t *testing.T) {
	c := EnvConfig{}
	c.fill()
	if c.Seed != 1 {
		t.Fatalf("unset seed = %d, want default 1", c.Seed)
	}
	c = EnvConfig{SeedSet: true}
	c.fill()
	if c.Seed != 0 {
		t.Fatalf("explicit seed 0 rewritten to %d", c.Seed)
	}
	c = EnvConfig{Seed: 5}
	c.fill()
	if c.Seed != 5 {
		t.Fatalf("seed 5 rewritten to %d", c.Seed)
	}
}

// TestFiguresParallelMatchSerial reruns the sharded figures at several
// worker counts and requires byte-identical results: per-interval RNG
// derivation and in-order reductions make worker count invisible.
func TestFiguresParallelMatchSerial(t *testing.T) {
	e := tinyEnv(t)
	e.Parallelism = 1
	a1, err := Fig1a(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := Fig1b(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Fig12(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	e.Parallelism = 8
	a8, err := Fig1a(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := Fig1b(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Fig12(e, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a8) {
		t.Fatal("Fig1a differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(b1, b8) {
		t.Fatal("Fig1b differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("Fig12 differs between 1 and 8 workers")
	}
}
