// Package check is an independent certifier for installed FFC TE plans.
// It takes only a topology and a computed configuration (rates + tunnel
// allocations) and verifies the paper's guarantees directly, sharing no
// code with the LP formulation, the sorting-network encodings, or the
// solver-side verifiers in internal/core — solver-side and checker-side
// bugs don't correlate, so a plan that passes both was checked twice by
// genuinely different machinery.
//
// Two data-plane strategies: exact enumeration of every fault combination
// (with dominance pruning — only elements that can shift load are
// enumerated, everything else is covered by monotonicity) when the case
// count is small, and a bounded adversarial search (greedy
// worst-residual-capacity fault picking plus seeded random restarts) when
// it is not. Control-plane certification is always exact: per link, the
// worst set of ≤ kc stale ingresses is the top-kc positive stale-minus-new
// deltas, no enumeration required. The result is a typed Certificate
// recording which strategy ran, how many cases were checked and covered,
// the worst residual slack seen, and the violating fault set if any.
package check

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"ffc/internal/core"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// Mode selects the data-plane strategy.
type Mode int

const (
	// Auto runs the exact enumeration when the (pruned) case count is at
	// most Params.MaxExactCases and the adversarial search otherwise.
	Auto Mode = iota
	// Exact forces full enumeration regardless of case count.
	Exact
	// Adversarial forces the bounded search; the resulting Certificate is
	// not a proof (Exact=false).
	Adversarial
)

func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case Exact:
		return "exact"
	case Adversarial:
		return "adversarial"
	}
	return "?"
}

// ParseMode parses "auto", "exact", or "adversarial".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "auto":
		return Auto, nil
	case "exact":
		return Exact, nil
	case "adversarial":
		return Adversarial, nil
	}
	return Auto, fmt.Errorf("check: unknown mode %q", s)
}

// Params parameterizes one certification.
type Params struct {
	// Prot is the protection level to certify against.
	Prot core.Protection
	// RateLimiter is the control-plane fault model (§5.5), matching the
	// one the plan was computed for.
	RateLimiter core.RateLimiterMode
	// Mode selects the data-plane strategy; default Auto.
	Mode Mode
	// Capacity overrides link capacities (nil = topology capacities).
	Capacity map[topology.LinkID]float64
	// DownLinks / DownSwitches are elements already failed when the plan
	// was installed. They apply to every checked case, and the protection
	// budget is spent on the surviving elements only.
	DownLinks    map[topology.LinkID]bool
	DownSwitches map[topology.SwitchID]bool
	// MaxExactCases bounds Auto's exact enumeration (default 200000).
	MaxExactCases int64
	// Restarts is the adversarial search's random-restart count
	// (default 48).
	Restarts int
	// Seed seeds the adversarial search (default 1).
	Seed int64
	// FailFast stops at the first violating case instead of scanning for
	// the worst one.
	FailFast bool
}

// FaultSet names one combination of faults.
type FaultSet struct {
	// Links are failed physical links (canonical direction).
	Links []topology.LinkID `json:"-"`
	// Switches are failed switches.
	Switches []topology.SwitchID `json:"-"`
	// Stale are ingress switches stuck on their previous configuration.
	Stale []topology.SwitchID `json:"-"`

	LinkNames   []string `json:"links,omitempty"`
	SwitchNames []string `json:"switches,omitempty"`
	StaleNames  []string `json:"stale,omitempty"`
}

// Empty reports whether the set holds no faults.
func (fs FaultSet) Empty() bool {
	return len(fs.Links) == 0 && len(fs.Switches) == 0 && len(fs.Stale) == 0
}

// Violation is one fault case that overloads a link.
type Violation struct {
	// Plane is "data" (link/switch failures with ingress rescaling) or
	// "control" (stale ingress configurations).
	Plane string `json:"plane"`
	// Link is the overloaded directed link.
	Link     topology.LinkID `json:"-"`
	LinkName string          `json:"link"`
	// Load, Capacity, and Over (= Load − Capacity) at the violation.
	Load     float64 `json:"load"`
	Capacity float64 `json:"capacity"`
	Over     float64 `json:"over"`
	// Faults is the violating fault set.
	Faults FaultSet `json:"faults"`
}

// Certificate is the certification verdict.
type Certificate struct {
	// OK is true when no checked case overloads any link. With
	// Exact=true that is a proof over every fault combination within the
	// protection level; with Exact=false it only says the search found
	// nothing.
	OK bool `json:"ok"`
	// Exact marks a full data-plane enumeration (the control plane is
	// always exact).
	Exact bool   `json:"exact"`
	Mode  string `json:"mode"`

	Kc int `json:"kc"`
	Ke int `json:"ke"`
	Kv int `json:"kv"`

	// CasesChecked counts resolved fault cases: evaluated data-plane
	// combinations plus the control-plane stale sets the per-link top-kc
	// selection resolves exactly (no stale set is enumerated
	// individually, but every one within the level is decided).
	CasesChecked int64 `json:"cases_checked"`
	// CasesCovered counts the fault combinations the verdict covers,
	// including those dismissed by dominance pruning; ≥ CasesChecked for
	// exact runs, = CasesChecked for adversarial ones.
	CasesCovered int64 `json:"cases_covered"`

	// WorstSlack is the smallest residual capacity (capacity − load) seen
	// on any loaded link over all checked cases; negative beyond the
	// 1e-6·max(1, cap) tolerance iff a violation was found (a plan solved
	// to the capacity boundary can sit a few ulps below zero and still
	// certify). When no case loads any link it is the smallest link
	// capacity.
	WorstSlack float64 `json:"worst_slack"`
	// WorstLink and WorstCase attain WorstSlack.
	WorstLink string   `json:"worst_link,omitempty"`
	WorstCase FaultSet `json:"worst_case"`

	// Violation is the worst overload found (nil when OK). With FailFast
	// it is the first found, not necessarily the worst.
	Violation *Violation `json:"violation,omitempty"`

	Elapsed time.Duration `json:"elapsed_ns"`
}

// Summary renders the certificate as one human-readable line. The property
// harness (internal/prop, cmd/ffcprop) embeds it in failure details and
// repro files, so a violation reads identically wherever it surfaces.
func (c *Certificate) Summary() string {
	if c.OK {
		return fmt.Sprintf("%s-OK kc=%d ke=%d kv=%d: %d cases checked (%d covered), worst slack %.6g on %q",
			c.Mode, c.Kc, c.Ke, c.Kv, c.CasesChecked, c.CasesCovered, c.WorstSlack, c.WorstLink)
	}
	v := c.Violation
	return fmt.Sprintf("VIOLATION (%s plane, %s mode) link %q: load %.6g > capacity %.6g (over %.6g) under links=%v switches=%v stale=%v",
		v.Plane, c.Mode, v.LinkName, v.Load, v.Capacity, v.Over,
		v.Faults.LinkNames, v.Faults.SwitchNames, v.Faults.StaleNames)
}

// overThreshold mirrors the tolerance every planner and verifier in this
// repo uses: load exceeds cap only beyond 1e-6·max(1, cap).
func overThreshold(load, cap float64) bool {
	return load-cap > 1e-6*math.Max(1, cap)
}

// at reads sl[i] with 0 for out-of-range indexes, so short or missing
// allocation vectors read as zero allocation rather than panicking.
func at(sl []float64, i int) float64 {
	if i < 0 || i >= len(sl) {
		return 0
	}
	return sl[i]
}

// weightsOf converts an allocation vector into splitting weights the way
// ingress switches do: a/Σa, uniform when the vector sums to zero.
// (Reimplemented here on purpose — the checker trusts nothing from the
// solver side beyond the plan data itself.)
func weightsOf(alloc []float64) []float64 {
	w := make([]float64, len(alloc))
	var sum float64
	for _, a := range alloc {
		sum += a
	}
	if sum <= 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return w
	}
	for i, a := range alloc {
		w[i] = a / sum
	}
	return w
}

// Certify verifies that the plan st over net/set satisfies the FFC
// guarantees of p.Prot. prev is the previously installed plan (required
// when Prot.Kc > 0 — stale switches run it); pass st itself when
// certifying a plan with no predecessor.
func Certify(net *topology.Network, set *tunnel.Set, st, prev *core.State, p Params) (*Certificate, error) {
	start := time.Now()
	if net == nil || set == nil || st == nil {
		return nil, fmt.Errorf("check: nil network, tunnel set, or state")
	}
	if p.Prot.Kc < 0 || p.Prot.Ke < 0 || p.Prot.Kv < 0 {
		return nil, fmt.Errorf("check: negative protection level %v", p.Prot)
	}
	if p.Prot.Kc > 0 && prev == nil {
		return nil, fmt.Errorf("check: kc=%d needs the previous state", p.Prot.Kc)
	}
	if err := validState(st); err != nil {
		return nil, err
	}
	if prev != nil {
		if err := validState(prev); err != nil {
			return nil, fmt.Errorf("check: previous state: %w", err)
		}
	}
	if p.MaxExactCases == 0 {
		p.MaxExactCases = 200000
	}
	if p.Restarts == 0 {
		p.Restarts = 48
	}
	if p.Seed == 0 {
		p.Seed = 1
	}

	c := newChecker(net, set, st, p)
	cert := &Certificate{
		Kc: p.Prot.Kc, Ke: p.Prot.Ke, Kv: p.Prot.Kv,
	}

	// Data plane: choose the strategy, then search.
	exactCases := binomSum(len(c.activeP), p.Prot.Ke) * binomSum(len(c.activeS), p.Prot.Kv)
	exact := p.Mode == Exact || (p.Mode == Auto && exactCases <= float64(p.MaxExactCases))
	var data searchResult
	if exact {
		data = c.exactData()
		cert.Exact = true
		cert.Mode = "exact"
		if data.aborted {
			// Early exit: the verdict covers only what was evaluated.
			cert.CasesCovered = data.cases
		} else {
			// Dominance: combos touching only inert elements behave like
			// their active projection, so the full space is covered.
			cert.CasesCovered = satInt64(binomSum(len(c.phys), p.Prot.Ke) * binomSum(len(c.sws), p.Prot.Kv))
		}
	} else {
		data = c.adversarialData(rand.New(rand.NewSource(p.Seed)))
		cert.Mode = "adversarial"
		cert.CasesCovered = data.cases
	}
	cert.CasesChecked = data.cases
	cert.WorstSlack = data.slack
	if data.slackLink >= 0 {
		cert.WorstLink = c.linkName(topology.LinkID(data.slackLink))
		cert.WorstCase = c.faultSet(data.slackLinks, data.slackSws, nil)
	}
	cert.Violation = data.worst

	// Control plane: per-link top-kc selection, always exact.
	if p.Prot.Kc > 0 && (cert.Violation == nil || !p.FailFast) {
		ctrl := c.certifyControl(prev)
		staleSets := satInt64(binomSum(ctrl.sources, p.Prot.Kc))
		cert.CasesChecked += staleSets
		cert.CasesCovered += staleSets
		if ctrl.slack < cert.WorstSlack {
			cert.WorstSlack = ctrl.slack
			cert.WorstLink = c.linkName(ctrl.slackLink)
			cert.WorstCase = c.faultSet(nil, nil, ctrl.slackStale)
		}
		if ctrl.worst != nil && (cert.Violation == nil || ctrl.worst.Over > cert.Violation.Over) {
			cert.Violation = ctrl.worst
		}
	}

	if math.IsInf(cert.WorstSlack, 1) {
		// No case loaded any link: the binding slack is the smallest
		// capacity a fault-free, traffic-free network leaves untouched.
		cert.WorstSlack = 0
		cert.WorstLink = ""
		for _, l := range net.Links {
			cp := c.cap[l.ID]
			if cert.WorstLink == "" || cp < cert.WorstSlack {
				cert.WorstSlack = cp
				cert.WorstLink = c.linkName(l.ID)
			}
		}
		cert.WorstCase = FaultSet{}
	}
	cert.OK = cert.Violation == nil
	cert.Elapsed = time.Since(start)
	return cert, nil
}

// validState rejects non-finite or negative rates and allocations — a
// corrupted plan must fail certification loudly, not poison float math.
func validState(st *core.State) error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) || v < 0 }
	for f, r := range st.Rate {
		if bad(r) {
			return fmt.Errorf("check: flow %v: rate %g", f, r)
		}
	}
	for f, alloc := range st.Alloc {
		for i, a := range alloc {
			if bad(a) {
				return fmt.Errorf("check: flow %v tunnel %d: alloc %g", f, i, a)
			}
		}
	}
	return nil
}

// checker is the dense plan index one certification works over.
type checker struct {
	net *topology.Network
	set *tunnel.Set
	st  *core.State
	p   Params

	// cap is the effective capacity per directed link.
	cap []float64

	// phys are the candidate physical links (canonical direction, not
	// already down); physOf maps a directed link to its candidate index
	// (−1 when its physical link is pre-down).
	phys   []topology.LinkID
	physOf []int
	// sws are the candidate switches (not already down); swOf maps a
	// switch to its candidate index (−1 when pre-down).
	sws  []topology.SwitchID
	swOf []int

	flows []cflow

	// activeP / activeS index into phys / sws: the elements whose failure
	// can change some link's load (used by a positive-weight tunnel of a
	// positive-rate flow; switches only as intermediate hops — endpoint
	// failures drop whole flows, which is load-monotone). Every other
	// element is covered by dominance.
	activeP []int
	activeS []int

	// Scratch reused across case evaluations.
	loads   []float64
	touched []topology.LinkID
	downP   []bool
	downS   []bool
}

type cflow struct {
	f    tunnel.Flow
	rate float64
	// srcC / dstC are candidate-switch indexes of the endpoints.
	srcC, dstC int
	tuns       []ctun
}

type ctun struct {
	// w is the effective splitting weight.
	w float64
	// links are the directed links traversed.
	links []topology.LinkID
	// physC / midC are candidate indexes of the traversed physical links
	// and intermediate switches.
	physC []int
	midC  []int
	// dead marks a tunnel crossing a pre-down element.
	dead bool
}

func newChecker(net *topology.Network, set *tunnel.Set, st *core.State, p Params) *checker {
	c := &checker{net: net, set: set, st: st, p: p}

	c.cap = make([]float64, len(net.Links))
	for _, l := range net.Links {
		c.cap[l.ID] = l.Capacity
		if p.Capacity != nil {
			if o, ok := p.Capacity[l.ID]; ok {
				c.cap[l.ID] = o
			}
		}
	}

	linkDown := func(l topology.LinkID) bool {
		if p.DownLinks[l] {
			return true
		}
		tw := net.Links[l].Twin
		return tw != topology.None && p.DownLinks[tw]
	}
	c.physOf = make([]int, len(net.Links))
	for i := range c.physOf {
		c.physOf[i] = -1
	}
	for _, l := range net.Links {
		canonical := l.Twin == topology.None || l.ID < l.Twin
		if !canonical || linkDown(l.ID) {
			continue
		}
		ci := len(c.phys)
		c.phys = append(c.phys, l.ID)
		c.physOf[l.ID] = ci
		if l.Twin != topology.None {
			c.physOf[l.Twin] = ci
		}
	}

	c.swOf = make([]int, len(net.Switches))
	for i := range c.swOf {
		c.swOf[i] = -1
	}
	for _, sw := range net.Switches {
		if p.DownSwitches[sw.ID] {
			continue
		}
		c.swOf[sw.ID] = len(c.sws)
		c.sws = append(c.sws, sw.ID)
	}

	activeP := make([]bool, len(c.phys))
	activeS := make([]bool, len(c.sws))
	for _, f := range set.All() {
		rate := st.Rate[f]
		if rate == 0 {
			continue
		}
		if int(f.Src) >= len(c.swOf) || int(f.Dst) >= len(c.swOf) {
			continue
		}
		srcC, dstC := c.swOf[f.Src], c.swOf[f.Dst]
		if srcC < 0 || dstC < 0 {
			continue // an endpoint is already down: the flow sends nothing
		}
		ts := set.Tunnels(f)
		w := weightsOf(st.Alloc[f])
		fl := cflow{f: f, rate: rate, srcC: srcC, dstC: dstC}
		anyAlive := false
		for _, t := range ts {
			ct := ctun{w: at(w, t.Index), links: t.Links}
			if len(w) == 0 && len(ts) > 0 {
				// No allocation vector at all: ingress splits uniformly.
				ct.w = 1 / float64(len(ts))
			}
			for _, l := range t.Links {
				pi := c.physOf[l]
				if pi < 0 {
					ct.dead = true
					break
				}
				ct.physC = append(ct.physC, pi)
			}
			if !ct.dead {
				for _, v := range t.Switches[1 : len(t.Switches)-1] {
					si := c.swOf[v]
					if si < 0 {
						ct.dead = true
						break
					}
					ct.midC = append(ct.midC, si)
				}
			}
			if !ct.dead {
				anyAlive = true
				if ct.w > 0 {
					for _, pi := range ct.physC {
						activeP[pi] = true
					}
					for _, si := range ct.midC {
						activeS[si] = true
					}
				}
			}
			fl.tuns = append(fl.tuns, ct)
		}
		if anyAlive {
			c.flows = append(c.flows, fl)
		}
	}
	for i, on := range activeP {
		if on {
			c.activeP = append(c.activeP, i)
		}
	}
	for i, on := range activeS {
		if on {
			c.activeS = append(c.activeS, i)
		}
	}

	c.loads = make([]float64, len(net.Links))
	c.downP = make([]bool, len(c.phys))
	c.downS = make([]bool, len(c.sws))
	return c
}

func (c *checker) linkName(l topology.LinkID) string {
	lk := c.net.Links[l]
	return c.net.Switches[lk.Src].Name + ">" + c.net.Switches[lk.Dst].Name
}

// faultSet resolves candidate indexes / switch IDs into a named FaultSet.
func (c *checker) faultSet(physIdx, swIdx []int, stale []topology.SwitchID) FaultSet {
	var fs FaultSet
	for _, pi := range physIdx {
		l := c.phys[pi]
		fs.Links = append(fs.Links, l)
		lk := c.net.Links[l]
		fs.LinkNames = append(fs.LinkNames, c.net.Switches[lk.Src].Name+"-"+c.net.Switches[lk.Dst].Name)
	}
	for _, si := range swIdx {
		v := c.sws[si]
		fs.Switches = append(fs.Switches, v)
		fs.SwitchNames = append(fs.SwitchNames, c.net.Switches[v].Name)
	}
	for _, v := range stale {
		fs.Stale = append(fs.Stale, v)
		fs.StaleNames = append(fs.StaleNames, c.net.Switches[v].Name)
	}
	return fs
}

// caseResult is one fault case's evaluation.
type caseResult struct {
	// slack is min(cap − load) over loaded links, +Inf when nothing is
	// loaded; slackLink attains it.
	slack     float64
	slackLink topology.LinkID
	// over is the worst overload (0 when none); overLink attains it.
	over     float64
	overLink topology.LinkID
	load, cp float64
}

// evalData computes every link's load for one fault case: each flow's rate
// is split over its surviving tunnels in proportion to the installed
// weights (ingress rescaling); flows with a failed endpoint, and flows with
// no surviving positive weight, send nothing.
func (c *checker) evalData(downP, downS []bool) caseResult {
	res := caseResult{slack: math.Inf(1), slackLink: -1, overLink: -1}
	for fi := range c.flows {
		fl := &c.flows[fi]
		if downS[fl.srcC] || downS[fl.dstC] {
			continue
		}
		var total float64
		for ti := range fl.tuns {
			if tunAlive(&fl.tuns[ti], downP, downS) {
				total += fl.tuns[ti].w
			}
		}
		if total <= 0 {
			continue // blackhole: no survivors carry anything
		}
		for ti := range fl.tuns {
			t := &fl.tuns[ti]
			if t.w <= 0 || !tunAlive(t, downP, downS) {
				continue
			}
			load := fl.rate * t.w / total
			for _, l := range t.links {
				if c.loads[l] == 0 {
					c.touched = append(c.touched, l)
				}
				c.loads[l] += load
			}
		}
	}
	for _, l := range c.touched {
		load := c.loads[l]
		c.loads[l] = 0
		cp := c.cap[l]
		if s := cp - load; s < res.slack {
			res.slack = s
			res.slackLink = l
		}
		if overThreshold(load, cp) {
			if over := load - cp; over > res.over {
				res.over = over
				res.overLink = l
				res.load, res.cp = load, cp
			}
		}
	}
	c.touched = c.touched[:0]
	return res
}

func tunAlive(t *ctun, downP, downS []bool) bool {
	if t.dead {
		return false
	}
	for _, pi := range t.physC {
		if downP[pi] {
			return false
		}
	}
	for _, si := range t.midC {
		if downS[si] {
			return false
		}
	}
	return true
}

// searchResult aggregates a data-plane search (exact or adversarial).
type searchResult struct {
	cases int64
	// slack is the worst (smallest) per-case slack; slackLink, slackLinks
	// and slackSws describe where and under which faults. slackLink is −1
	// until some case loads a link.
	slack      float64
	slackLink  int
	slackLinks []int
	slackSws   []int
	worst      *Violation
	aborted    bool
}

// note folds one evaluated case into the running result; returns false
// when the search should stop (fail-fast on a violation).
func (c *checker) note(res *searchResult, cr caseResult, physSel, swSel []int) bool {
	res.cases++
	if cr.slackLink >= 0 && cr.slack < res.slack {
		res.slack = cr.slack
		res.slackLink = int(cr.slackLink)
		res.slackLinks = append(res.slackLinks[:0], physSel...)
		res.slackSws = append(res.slackSws[:0], swSel...)
	}
	if cr.over > 0 && (res.worst == nil || cr.over > res.worst.Over) {
		res.worst = &Violation{
			Plane:    "data",
			Link:     cr.overLink,
			LinkName: c.linkName(cr.overLink),
			Load:     cr.load,
			Capacity: cr.cp,
			Over:     cr.over,
			Faults:   c.faultSet(physSel, swSel, nil),
		}
		if c.p.FailFast {
			res.aborted = true
			return false
		}
	}
	return true
}

// binomSum is Σ_{i=0..k} C(n, i) in float64 (the counts get astronomical;
// the caller only compares against thresholds or saturates to int64).
func binomSum(n, k int) float64 {
	if k > n {
		k = n
	}
	total := 0.0
	term := 1.0
	for i := 0; i <= k; i++ {
		total += term
		term = term * float64(n-i) / float64(i+1)
	}
	return total
}

func satInt64(v float64) int64 {
	if v >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// sortedStale returns stale switch IDs in deterministic order.
func sortedStale(m []topology.SwitchID) []topology.SwitchID {
	out := append([]topology.SwitchID(nil), m...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
