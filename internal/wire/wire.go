// Package wire defines the JSON formats the CLI tools exchange: topologies
// (handled natively by internal/topology), demand files, and computed TE
// states, all keyed by switch names so files are human-editable.
package wire

import (
	"encoding/json"
	"fmt"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// DemandEntry is one flow's demand.
type DemandEntry struct {
	Src    string  `json:"src"`
	Dst    string  `json:"dst"`
	Demand float64 `json:"demand"`
}

// DemandsFile is the demand-file wrapper.
type DemandsFile struct {
	Demands []DemandEntry `json:"demands"`
}

// ParseDemands resolves a demands file against a topology.
func ParseDemands(net *topology.Network, data []byte) (demand.Matrix, error) {
	var f DemandsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("wire: parsing demands: %w", err)
	}
	m := demand.Matrix{}
	for i, d := range f.Demands {
		src, ok := net.SwitchByName(d.Src)
		if !ok {
			return nil, fmt.Errorf("wire: demand %d: unknown switch %q", i, d.Src)
		}
		dst, ok := net.SwitchByName(d.Dst)
		if !ok {
			return nil, fmt.Errorf("wire: demand %d: unknown switch %q", i, d.Dst)
		}
		if src == dst {
			return nil, fmt.Errorf("wire: demand %d: src == dst (%q)", i, d.Src)
		}
		if d.Demand < 0 {
			return nil, fmt.Errorf("wire: demand %d: negative demand %g", i, d.Demand)
		}
		m[tunnel.Flow{Src: src, Dst: dst}] += d.Demand
	}
	return m, nil
}

// EncodeDemands renders a matrix back to the file format (deterministic
// flow order).
func EncodeDemands(net *topology.Network, m demand.Matrix) DemandsFile {
	var f DemandsFile
	for _, fl := range m.Flows() {
		f.Demands = append(f.Demands, DemandEntry{
			Src: net.Switches[fl.Src].Name, Dst: net.Switches[fl.Dst].Name, Demand: m[fl],
		})
	}
	return f
}

// TunnelAlloc is one tunnel's share of a flow.
type TunnelAlloc struct {
	Path   []string `json:"path"` // switch names, ingress→egress
	Alloc  float64  `json:"alloc"`
	Weight float64  `json:"weight"`
}

// StateFlow is one flow of a computed configuration.
type StateFlow struct {
	Src     string        `json:"src"`
	Dst     string        `json:"dst"`
	Demand  float64       `json:"demand"`
	Rate    float64       `json:"rate"`
	Tunnels []TunnelAlloc `json:"tunnels"`
}

// StateFile is the TE-output wrapper.
type StateFile struct {
	TotalDemand float64     `json:"total_demand"`
	TotalRate   float64     `json:"total_rate"`
	Flows       []StateFlow `json:"flows"`
}

// EncodeState renders a computed configuration.
func EncodeState(net *topology.Network, tun *tunnel.Set, demands demand.Matrix, st *core.State) StateFile {
	out := StateFile{TotalDemand: demands.Total(), TotalRate: st.TotalRate()}
	for _, fl := range demands.Flows() {
		sf := StateFlow{
			Src: net.Switches[fl.Src].Name, Dst: net.Switches[fl.Dst].Name,
			Demand: demands[fl], Rate: st.Rate[fl],
		}
		alloc := st.Alloc[fl]
		weights := st.Weights(fl)
		for _, t := range tun.Tunnels(fl) {
			ta := TunnelAlloc{}
			for _, sw := range t.Switches {
				ta.Path = append(ta.Path, net.Switches[sw].Name)
			}
			if t.Index < len(alloc) {
				ta.Alloc = alloc[t.Index]
				ta.Weight = weights[t.Index]
			}
			sf.Tunnels = append(sf.Tunnels, ta)
		}
		out.Flows = append(out.Flows, sf)
	}
	return out
}
