// Package parallel is the repository's small worker-pool layer: it fans a
// fixed index space out over a bounded number of goroutines and collects
// nothing — callers write results into their own slot of a pre-sized slice,
// which keeps every parallel path bit-identical to its serial counterpart
// (the reduction over slots happens in index order afterwards).
//
// The verifiers in internal/core shard fault-case enumeration through it,
// and the experiment harness (internal/experiments, internal/sim) shards
// independent TE intervals and scenario replays.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob: values ≤ 0 mean "all cores"
// (runtime.GOMAXPROCS(0)); positive values are used as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach invokes fn(i) exactly once for every i in [0,n), fanned out over
// Workers(w) goroutines. With one worker it runs inline in index order.
// fn must confine its writes to per-index (or per-worker) state; results
// written by slot are deterministic regardless of scheduling.
func ForEach(n, w int, fn func(i int)) {
	ForEachWorker(n, w, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the worker's identity passed to fn
// (0 ≤ worker < effective worker count), so callers can reuse per-worker
// scratch buffers across the indices a worker processes.
func ForEachWorker(n, w int, fn func(worker, i int)) {
	w = Workers(w)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
}

// FirstError returns the lowest-index non-nil error, mirroring what a
// serial loop would have returned first (nil if none).
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
