// Testbed timeline (the paper's §7 / Figure 11): emulate the 8-site WAN,
// fail link s6–s7, and print the event timelines for FFC (no controller
// reaction needed) versus non-FFC with fast and slow switch updates.
//
//	go run ./examples/testbed_timeline
package main

import (
	"log"
	"os"

	"ffc/internal/experiments"
)

func main() {
	if err := experiments.Fig11(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
