// Quickstart: compute an FFC-protected traffic distribution on a small
// network and show what the protection buys.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ffc"
)

func main() {
	// The 4-switch walkthrough network of the paper's Figures 2–5:
	// duplex 10-unit links s1↔s2, s1↔s3, s1↔s4, s2↔s4, s3↔s4, s2↔s3.
	net := ffc.Example4Topology()
	s2, _ := net.SwitchByName("s2")
	s3, _ := net.SwitchByName("s3")
	s4, _ := net.SwitchByName("s4")

	flows := []ffc.Flow{{Src: s2, Dst: s4}, {Src: s3, Dst: s4}}
	ctl, err := ffc.NewController(net, flows, ffc.ControllerConfig{TunnelsPerFlow: 3})
	if err != nil {
		log.Fatal(err)
	}

	demands := ffc.Demands{flows[0]: 14, flows[1]: 6}

	// Plain TE: maximum throughput, but fragile.
	plain, _, err := ctl.Compute(demands, ffc.NoProtection)
	if err != nil {
		log.Fatal(err)
	}
	// FFC TE: guaranteed congestion-free under any single link failure.
	prot := ffc.Protection{Ke: 1}
	protected, stats, err := ctl.Compute(demands, prot)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("demands: %.0f units total\n", demands.Total())
	fmt.Printf("plain TE throughput:      %.2f  (1-link-failure safe: %v)\n",
		plain.TotalRate(), ctl.VerifyDataPlane(plain, 1, 0) == nil)
	fmt.Printf("FFC(ke=1) throughput:     %.2f  (1-link-failure safe: %v)\n",
		protected.TotalRate(), ctl.VerifyDataPlane(protected, 1, 0) == nil)
	fmt.Printf("FFC LP: %d variables, %d constraints, solved in %v\n",
		stats.Vars, stats.Constraints, stats.SolveTime.Round(0))

	fmt.Println("\nFFC tunnel allocations:")
	for _, f := range flows {
		fmt.Printf("  flow %s→%s  rate %.2f\n",
			net.Switches[f.Src].Name, net.Switches[f.Dst].Name, protected.Rate[f])
		for i, t := range ctl.Tunnels().Tunnels(f) {
			var hops []string
			for _, sw := range t.Switches {
				hops = append(hops, net.Switches[sw].Name)
			}
			fmt.Printf("    tunnel %d %v  alloc %.2f\n", i, hops, protected.Alloc[f][i])
		}
	}
	ctl.Install(protected)
	fmt.Println("\ninstalled; subsequent computations protect against stale switches relative to this state")
}
