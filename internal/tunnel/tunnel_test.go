package tunnel

import (
	"math"
	"math/rand"
	"testing"

	"ffc/internal/topology"
)

func mustSwitch(t *testing.T, n *topology.Network, name string) topology.SwitchID {
	t.Helper()
	id, ok := n.SwitchByName(name)
	if !ok {
		t.Fatalf("switch %q not found", name)
	}
	return id
}

func TestShortestPathDirect(t *testing.T) {
	n := topology.Example4()
	s1, s4 := mustSwitch(t, n, "s1"), mustSwitch(t, n, "s4")
	p := ShortestPath(n, s1, s4, UnitWeights, nil, nil)
	if len(p) != 1 {
		t.Fatalf("path length %d, want 1 (direct link)", len(p))
	}
	if n.Links[p[0]].Src != s1 || n.Links[p[0]].Dst != s4 {
		t.Fatalf("wrong link %+v", n.Links[p[0]])
	}
}

func TestShortestPathAvoidsBans(t *testing.T) {
	n := topology.Example4()
	s1, s4 := mustSwitch(t, n, "s1"), mustSwitch(t, n, "s4")
	direct := n.FindLink(s1, s4)
	ban := map[topology.LinkID]bool{direct: true}
	p := ShortestPath(n, s1, s4, UnitWeights, ban, nil)
	if len(p) != 2 {
		t.Fatalf("detour length %d, want 2", len(p))
	}
	for _, l := range p {
		if l == direct {
			t.Fatal("used banned link")
		}
	}
	// Ban all intermediate switches: no path remains.
	s2, s3 := mustSwitch(t, n, "s2"), mustSwitch(t, n, "s3")
	bs := map[topology.SwitchID]bool{s2: true, s3: true}
	if q := ShortestPath(n, s1, s4, UnitWeights, ban, bs); q != nil {
		t.Fatalf("expected no path, got %v", q)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	n := topology.NewNetwork("u")
	a := n.AddSwitch("a", "a", 0, 0)
	b := n.AddSwitch("b", "b", 0, 1)
	if p := ShortestPath(n, a, b, UnitWeights, nil, nil); p != nil {
		t.Fatalf("expected nil path, got %v", p)
	}
}

func TestShortestPathRespectsWeights(t *testing.T) {
	// Two-hop route through a fat path should win under InverseCapacity
	// when the direct link is thin.
	n := topology.NewNetwork("w")
	a := n.AddSwitch("a", "a", 0, 0)
	b := n.AddSwitch("b", "b", 0, 1)
	c := n.AddSwitch("c", "c", 1, 0)
	n.AddDuplex(a, b, 1)   // thin direct
	n.AddDuplex(a, c, 100) // fat detour
	n.AddDuplex(c, b, 100)
	p := ShortestPath(n, a, b, InverseCapacity(n), nil, nil)
	if len(p) != 2 {
		t.Fatalf("expected 2-hop fat path, got %d hops", len(p))
	}
}

func TestKShortestYen(t *testing.T) {
	n := topology.Example4()
	s1, s4 := mustSwitch(t, n, "s1"), mustSwitch(t, n, "s4")
	paths := KShortest(n, s1, s4, 4, UnitWeights)
	if len(paths) < 3 {
		t.Fatalf("got %d paths, want ≥ 3", len(paths))
	}
	// Sorted by length, loopless, distinct.
	for i := 1; i < len(paths); i++ {
		if len(paths[i]) < len(paths[i-1]) {
			t.Fatalf("paths not sorted: %d then %d hops", len(paths[i-1]), len(paths[i]))
		}
		if samePath(paths[i], paths[i-1]) {
			t.Fatal("duplicate path")
		}
	}
	for _, p := range paths {
		seen := map[topology.SwitchID]bool{s1: true}
		for _, l := range p {
			d := n.Links[l].Dst
			if seen[d] {
				t.Fatalf("loop at switch %d in path %v", d, p)
			}
			seen[d] = true
		}
	}
}

func TestKShortestOnTestbed(t *testing.T) {
	n := topology.Testbed()
	s3, s7 := mustSwitch(t, n, "s3"), mustSwitch(t, n, "s7")
	paths := KShortest(n, s3, s7, 6, UnitWeights)
	if len(paths) < 4 {
		t.Fatalf("got %d paths, want ≥ 4", len(paths))
	}
}

func TestLayoutPQRespected(t *testing.T) {
	n := topology.Testbed()
	flows := []Flow{
		{mustSwitch(t, n, "s3"), mustSwitch(t, n, "s7")},
		{mustSwitch(t, n, "s4"), mustSwitch(t, n, "s5")},
		{mustSwitch(t, n, "s1"), mustSwitch(t, n, "s8")},
	}
	set := Layout(n, flows, LayoutConfig{TunnelsPerFlow: 4, P: 1, Q: 3})
	for _, f := range flows {
		ts := set.Tunnels(f)
		if len(ts) == 0 {
			t.Fatalf("flow %v got no tunnels", f)
		}
		p, q := set.PQ(f)
		if p > 1 {
			t.Fatalf("flow %v: p = %d, want ≤ 1", f, p)
		}
		if q > 3 {
			t.Fatalf("flow %v: q = %d, want ≤ 3", f, q)
		}
		for _, tn := range ts {
			if tn.Switches[0] != f.Src || tn.Switches[len(tn.Switches)-1] != f.Dst {
				t.Fatalf("tunnel endpoints wrong: %v for flow %v", tn.Switches, f)
			}
		}
	}
}

func TestLayoutLinkDisjointSurvivesSingleFailure(t *testing.T) {
	// With p=1 (physically link-disjoint), any single physical link
	// failure kills at most one tunnel.
	n := topology.Testbed()
	f := Flow{mustSwitch(t, n, "s3"), mustSwitch(t, n, "s7")}
	set := Layout(n, []Flow{f}, LayoutConfig{TunnelsPerFlow: 3, P: 1, Q: 3})
	ts := set.Tunnels(f)
	if len(ts) < 2 {
		t.Fatalf("need ≥ 2 tunnels, got %d", len(ts))
	}
	for _, l := range n.Links {
		down := map[topology.LinkID]bool{l.ID: true}
		if l.Twin != topology.None {
			down[l.Twin] = true
		}
		alive := set.Residual(f, down, nil)
		if len(ts)-len(alive) > 1 {
			t.Fatalf("link %d killed %d tunnels despite p=1", l.ID, len(ts)-len(alive))
		}
	}
}

func TestTunnelAliveTwinFailure(t *testing.T) {
	n := topology.Example4()
	s1, s4 := mustSwitch(t, n, "s1"), mustSwitch(t, n, "s4")
	fw := n.FindLink(s1, s4)
	tn := newTunnel(n, Flow{s1, s4}, []topology.LinkID{fw})
	// Failing only the reverse direction must still kill the tunnel
	// (physical failure).
	tw := n.Links[fw].Twin
	if tn.Alive(n, map[topology.LinkID]bool{tw: true}, nil) {
		t.Fatal("tunnel survived twin failure")
	}
	if !tn.Alive(n, nil, nil) {
		t.Fatal("tunnel dead with no faults")
	}
	if tn.Alive(n, nil, map[topology.SwitchID]bool{s4: true}) {
		t.Fatal("tunnel survived endpoint switch failure")
	}
}

func TestRescaleProportional(t *testing.T) {
	n := topology.Example4()
	s2, s4 := mustSwitch(t, n, "s2"), mustSwitch(t, n, "s4")
	f := Flow{s2, s4}
	set := Layout(n, []Flow{f}, LayoutConfig{TunnelsPerFlow: 3, P: 1, Q: 3})
	ts := set.Tunnels(f)
	if len(ts) < 3 {
		t.Fatalf("want 3 tunnels, got %d", len(ts))
	}
	// Weights (0.5, 0.3, 0.2): failing tunnel 2's first link rescales to
	// (0.5/0.8, 0.3/0.8, 0) — the paper's §2.1 example.
	w := []float64{0.5, 0.3, 0.2}
	dead := ts[2].Links[0]
	down := map[topology.LinkID]bool{dead: true}
	if tw := n.Links[dead].Twin; tw != topology.None {
		down[tw] = true
	}
	// The failed link may also belong to tunnel 0 or 1 in theory, but the
	// layout is link-disjoint so only tunnel 2 dies.
	loads := set.Rescale(f, w, 1.0, down, nil)
	if math.Abs(loads[0]-0.5/0.8) > 1e-9 || math.Abs(loads[1]-0.3/0.8) > 1e-9 || loads[2] != 0 {
		t.Fatalf("rescaled loads = %v, want [0.625 0.375 0]", loads)
	}
}

func TestRescaleBlackhole(t *testing.T) {
	n := topology.Example4()
	s2, s4 := mustSwitch(t, n, "s2"), mustSwitch(t, n, "s4")
	f := Flow{s2, s4}
	set := Layout(n, []Flow{f}, LayoutConfig{TunnelsPerFlow: 2, P: 3, Q: 3})
	// Fail every link: no residual tunnels, all loads zero.
	down := map[topology.LinkID]bool{}
	for _, l := range n.Links {
		down[l.ID] = true
	}
	loads := set.Rescale(f, []float64{0.7, 0.3}, 1.0, down, nil)
	for _, v := range loads {
		if v != 0 {
			t.Fatalf("blackhole should zero all loads, got %v", loads)
		}
	}
}

func TestWeights(t *testing.T) {
	w := Weights([]float64{2, 6, 2})
	if math.Abs(w[0]-0.2) > 1e-12 || math.Abs(w[1]-0.6) > 1e-12 {
		t.Fatalf("weights %v", w)
	}
	u := Weights([]float64{0, 0})
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Fatalf("zero-alloc weights should be uniform, got %v", u)
	}
}

func TestPQComputation(t *testing.T) {
	n := topology.Example4()
	s2, s4 := mustSwitch(t, n, "s2"), mustSwitch(t, n, "s4")
	s1, s3 := mustSwitch(t, n, "s1"), mustSwitch(t, n, "s3")
	f := Flow{s2, s4}
	set := NewSet(n)
	// Two tunnels sharing the s1−s4 link (via different first hops is not
	// possible from s2... construct explicitly): s2→s1→s4 and s2→s3→s1→s4.
	p1 := []topology.LinkID{n.FindLink(s2, s1), n.FindLink(s1, s4)}
	p2 := []topology.LinkID{n.FindLink(s2, s3), n.FindLink(s3, s1), n.FindLink(s1, s4)}
	set.Add(f, newTunnel(n, f, p1), newTunnel(n, f, p2))
	p, q := set.PQ(f)
	if p != 2 {
		t.Fatalf("p = %d, want 2 (shared s1→s4)", p)
	}
	if q != 2 {
		t.Fatalf("q = %d, want 2 (both transit s1)", q)
	}
}

func TestSortTunnelsByLength(t *testing.T) {
	n := topology.Example4()
	s2, s4 := mustSwitch(t, n, "s2"), mustSwitch(t, n, "s4")
	s1, s3 := mustSwitch(t, n, "s1"), mustSwitch(t, n, "s3")
	f := Flow{s2, s4}
	set := NewSet(n)
	long := newTunnel(n, f, []topology.LinkID{n.FindLink(s2, s3), n.FindLink(s3, s1), n.FindLink(s1, s4)})
	short := newTunnel(n, f, []topology.LinkID{n.FindLink(s2, s4)})
	set.Add(f, long, short)
	set.SortTunnelsByLength(f)
	ts := set.Tunnels(f)
	if len(ts[0].Links) != 1 || ts[0].Index != 0 || ts[1].Index != 1 {
		t.Fatalf("sorting failed: lens %d,%d idx %d,%d", len(ts[0].Links), len(ts[1].Links), ts[0].Index, ts[1].Index)
	}
}

func TestLayoutOnLNetAllFlowsGetTunnels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := topology.LNet(topology.LNetConfig{}, rng)
	var flows []Flow
	// A sample of inter-site flows.
	for i := 0; i < 20; i++ {
		a := topology.SwitchID(rng.Intn(n.NumSwitches()))
		b := topology.SwitchID(rng.Intn(n.NumSwitches()))
		if a == b || n.Switches[a].Site == n.Switches[b].Site {
			continue
		}
		flows = append(flows, Flow{a, b})
	}
	set := Layout(n, flows, LayoutConfig{})
	for _, f := range flows {
		ts := set.Tunnels(f)
		if len(ts) < 2 {
			t.Fatalf("flow %v has %d tunnels, want ≥ 2", f, len(ts))
		}
		p, q := set.PQ(f)
		if p > 1 || q > 3 {
			t.Fatalf("flow %v violates (1,3): p=%d q=%d", f, p, q)
		}
	}
}

func TestLayoutKShortestAblation(t *testing.T) {
	n := topology.Testbed()
	f := Flow{mustSwitch(t, n, "s3"), mustSwitch(t, n, "s7")}
	set := LayoutKShortest(n, []Flow{f}, 5, nil)
	ts := set.Tunnels(f)
	if len(ts) < 3 {
		t.Fatalf("k-shortest layout gave %d tunnels", len(ts))
	}
	// Unconstrained layout may share links; p may exceed 1 — just verify
	// tunnels are valid paths.
	for _, tn := range ts {
		if tn.Switches[0] != f.Src || tn.Switches[len(tn.Switches)-1] != f.Dst {
			t.Fatalf("bad tunnel %v", tn.Switches)
		}
	}
}
