// Command ffcd is the long-running FFC TE controller daemon: it loads a
// topology, solves continuously (warm-started across intervals), and
// serves the installed plan over a newline-delimited-JSON TCP protocol.
// Queries are answered from an immutable plan snapshot behind an atomic
// pointer and never wait for a solve; streamed updates (demand changes,
// link/switch up/down, protection-level changes) kick an immediate
// recompute. Solver trouble degrades to the last-good plan via the same
// core.Degrade path the simulator models, with the reason in the plan
// metadata.
//
//	ffcd -topo net.json -demands d.json -kc 2 -ke 1 -listen 127.0.0.1:7070 \
//	     -snapshot /var/run/ffcd.snap
//
// With -snapshot, the installed plan is persisted periodically and
// restored at boot: a restarted daemon answers its first query from the
// snapshot while its first solve still runs. SIGINT/SIGTERM drain
// gracefully — in-flight queries get their replies, the in-flight solve is
// cancelled, and a final snapshot is written.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ffc/internal/check"
	"ffc/internal/core"
	"ffc/internal/ctrl"
	"ffc/internal/faults"
	"ffc/internal/obs"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
	"ffc/internal/wire"
)

func main() {
	var (
		topoPath   = flag.String("topo", "", "topology JSON (required; see cmd/topogen)")
		demPath    = flag.String("demands", "", "initial demands JSON (optional; updates can stream in later)")
		listen     = flag.String("listen", "127.0.0.1:7070", "TCP listen address for the NDJSON protocol (use :0 for an ephemeral port)")
		kc         = flag.Int("kc", 0, "control-plane protection level")
		ke         = flag.Int("ke", 0, "link-failure protection level")
		kv         = flag.Int("kv", 0, "switch-failure protection level")
		tunnels    = flag.Int("tunnels", 6, "tunnels per flow")
		p          = flag.Int("p", 1, "max tunnels of a flow per physical link")
		q          = flag.Int("q", 3, "max tunnels of a flow per intermediate switch")
		encoding   = flag.String("encoding", "sortnet", "bounded M-sum encoding: sortnet, compact, naive")
		interval   = flag.Duration("interval", 5*time.Second, "recompute period (updates additionally trigger immediate recomputes)")
		deadline   = flag.Duration("solver-deadline", 0, "per-recompute solve budget; a miss degrades to the last-good plan (0 = unbounded)")
		snapPath   = flag.String("snapshot", "", "snapshot file for crash recovery (restored at boot, written periodically and on shutdown)")
		snapEvery  = flag.Duration("snapshot-every", 10*time.Second, "minimum gap between periodic snapshot writes")
		firstDelay = flag.Duration("first-solve-delay", 0, "hold the first recompute for this long after boot (the restored snapshot serves meanwhile; used by restart tests)")
		injectSpec = flag.String("inject-solver", "", "inject controller faults per recompute, e.g. timeout=0.1,crash=0.01,stale=0.02")
		injectSeed = flag.Int64("inject-seed", 1, "fault-injection RNG seed")
		par        = flag.Int("parallel", 0, "LP constraint-emission workers (<=0 = all cores, 1 = serial)")
		statsFlag  = flag.Bool("stats", false, "enable the obs registry (counters, latency histograms)")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/obs on this address")
		certify    = flag.Bool("certify", false, "independently certify every installed plan with internal/check (async; failures are logged and counted in cert_failures); restored snapshots certify before serving")
		tracePath  = flag.String("trace", "", "append one NDJSON trace record per installed plan (replayable offline with ffccheck -trace)")
	)
	flag.Parse()
	if *topoPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "ffcd: ", log.LstdFlags|log.Lmicroseconds)
	if *statsFlag {
		obs.Enable()
	}
	if *debugAddr != "" {
		addr, err := obs.Serve(*debugAddr)
		if err != nil {
			fatalf("debug server: %v", err)
		}
		logger.Printf("debug server on http://%s/debug/obs (pprof, vars)", addr)
	}

	var net topology.Network
	blob, err := os.ReadFile(*topoPath)
	if err != nil {
		fatalf("%v", err)
	}
	if err := json.Unmarshal(blob, &net); err != nil {
		fatalf("parsing %s: %v", *topoPath, err)
	}

	cfg := ctrl.Config{
		Net:             &net,
		Prot:            core.Protection{Kc: *kc, Ke: *ke, Kv: *kv},
		Layout:          tunnel.LayoutConfig{TunnelsPerFlow: *tunnels, P: *p, Q: *q},
		Interval:        *interval,
		SolveDeadline:   *deadline,
		SnapshotPath:    *snapPath,
		SnapshotEvery:   *snapEvery,
		FirstSolveDelay: *firstDelay,
		FaultSeed:       *injectSeed,
		Logf:            logger.Printf,
	}
	cfg.Opts = core.Options{MiceFraction: 0.01, OldLoadSkip: 1e-5}
	if *par <= 0 {
		cfg.Opts.BuildWorkers = -1
	} else {
		cfg.Opts.BuildWorkers = *par
	}
	switch *encoding {
	case "sortnet":
		cfg.Opts.Encoding = core.SortNet
	case "compact":
		cfg.Opts.Encoding = core.Compact
	case "naive":
		cfg.Opts.Encoding = core.Naive
	default:
		fatalf("unknown encoding %q", *encoding)
	}
	cfg.Faults, err = faults.ParseSolverFaults(*injectSpec)
	if err != nil {
		fatalf("-inject-solver: %v", err)
	}
	if *certify {
		cfg.Certify = &check.Params{}
	}
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatalf("-trace: %v", err)
		}
		cfg.TraceWriter = traceFile
	}
	if *demPath != "" {
		demBytes, err := os.ReadFile(*demPath)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Demands, err = wire.ParseDemands(&net, demBytes)
		if err != nil {
			fatalf("%v", err)
		}
	}

	c, err := ctrl.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	srv, err := ctrl.Serve(c, *listen)
	if err != nil {
		fatalf("%v", err)
	}
	// The listen line is machine-read by scripts (the CI soak greps it for
	// the ephemeral port); keep the "listening on " prefix stable.
	logger.Printf("listening on %s (%d switches, %d links, prot %s)",
		srv.Addr(), len(net.Switches), len(net.Links), cfg.Prot)
	c.Start()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	logger.Printf("caught %v: draining (in-flight replies finish, solve cancels, final snapshot)", sig)
	signal.Stop(sigCh) // a second signal kills the process the default way
	srv.Close()
	c.Stop()
	if traceFile != nil {
		traceFile.Close()
	}
	s := c.Stats()
	logger.Printf("drained: %d plans installed (%d degraded), %d updates, %d queries served",
		s.PlansInstalled, s.DegradedInstalls, s.UpdatesApplied, s.QueriesServed)
	if *certify {
		logger.Printf("certification: %d runs, %d failures, %d skipped",
			s.CertRuns, s.CertFailures, s.CertSkipped)
		if s.CertFailures > 0 {
			os.Exit(1)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ffcd: "+format+"\n", args...)
	os.Exit(1)
}
