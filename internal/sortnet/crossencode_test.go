package sortnet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ffc/internal/lp"
)

// Cross-encoding property tests: the partial bubble network (the paper's
// encoding), a generic LP encoding of any full comparator network (here
// Batcher's odd-even merge sort), and the compact CVaR-style dual must all
// produce the SAME largest-M (and smallest-M) bound on identical inputs.
// Inputs are pinned via lo == hi variable bounds so every model's optimum
// is the exact order statistic, which in turn makes disagreement between
// encodings impossible to miss.

// encodeNetworkSum turns an arbitrary ascending comparator network into LP
// constraints via the same compare-swap operator the paper's encoding uses,
// then returns the sum of the top (largest=true) or bottom M wires.
func encodeNetworkSum(m *lp.Model, values []float64, net Network, M int, largest bool) *lp.Expr {
	wires := fixedExprs(m, values)
	for ci, c := range net {
		if largest {
			hi, lo := compareSwap(m, wires[c.A], wires[c.B], fmt.Sprintf("nw.c%d", ci), true)
			wires[c.A], wires[c.B] = lo, hi // larger value sinks to B
		} else {
			mn, rest := compareSwap(m, wires[c.A], wires[c.B], fmt.Sprintf("nw.c%d", ci), false)
			wires[c.A], wires[c.B] = mn, rest // smaller value rises to A
		}
	}
	n := len(values)
	sum := lp.NewExpr()
	if largest {
		for i := n - M; i < n; i++ {
			sum.AddExpr(1, wires[i])
		}
	} else {
		for i := 0; i < M; i++ {
			sum.AddExpr(1, wires[i])
		}
	}
	return sum
}

// solveBound builds a one-off model around build, optimizes the returned
// bound expression toward the true value (minimize for upper bounds,
// maximize for lower bounds), and returns the optimum.
func solveBound(t *testing.T, tag string, minimize bool, build func(m *lp.Model) *lp.Expr) float64 {
	t.Helper()
	m := lp.NewModel()
	sum := build(m)
	if minimize {
		m.Minimize(sum)
	} else {
		m.Maximize(sum)
	}
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	return sol.Objective
}

func TestCrossEncodingsAgreeLargest(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		M    int
	}{
		{"fig8-walkthrough", []float64{3, 1, 4, 1, 5}, 2},
		{"all-equal", []float64{2, 2, 2, 2}, 3},
		{"negative-mix", []float64{-3, 7, 0, -1, 2, 5}, 4},
		{"single", []float64{9, -9}, 1},
		{"take-all", []float64{1, 2, 3}, 3},
	}
	rng := rand.New(rand.NewSource(443))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round((rng.Float64()*20-10)*10) / 10
		}
		cases = append(cases, struct {
			name string
			vals []float64
			M    int
		}{fmt.Sprintf("seeded-%d", trial), vals, 1 + rng.Intn(n)})
	}
	for _, tc := range cases {
		truth := topMSum(tc.vals, tc.M)
		bubble := solveBound(t, tc.name+"/bubble", true, func(m *lp.Model) *lp.Expr {
			return LargestSum(m, fixedExprs(m, tc.vals), tc.M, "top").Sum
		})
		batcher := solveBound(t, tc.name+"/batcher", true, func(m *lp.Model) *lp.Expr {
			return encodeNetworkSum(m, tc.vals, OddEvenMergeSort(len(tc.vals)), tc.M, true)
		})
		cvar := solveBound(t, tc.name+"/cvar", true, func(m *lp.Model) *lp.Expr {
			return TopKCompact(m, fixedExprs(m, tc.vals), tc.M, "top").Sum
		})
		for _, enc := range []struct {
			name string
			got  float64
		}{{"bubble", bubble}, {"batcher", batcher}, {"cvar", cvar}} {
			if math.Abs(enc.got-truth) > 1e-7*(1+math.Abs(truth)) {
				t.Errorf("%s/%s: bound %g, true top-%d sum %g", tc.name, enc.name, enc.got, tc.M, truth)
			}
		}
	}
}

func TestCrossEncodingsAgreeSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(444))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		M := 1 + rng.Intn(n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round((rng.Float64()*20-10)*10) / 10
		}
		tag := fmt.Sprintf("seeded-%d", trial)
		truth := bottomMSum(vals, M)
		bubble := solveBound(t, tag+"/bubble", false, func(m *lp.Model) *lp.Expr {
			return SmallestSum(m, fixedExprs(m, vals), M, "bot").Sum
		})
		batcher := solveBound(t, tag+"/batcher", false, func(m *lp.Model) *lp.Expr {
			return encodeNetworkSum(m, vals, OddEvenMergeSort(len(vals)), M, false)
		})
		cvar := solveBound(t, tag+"/cvar", false, func(m *lp.Model) *lp.Expr {
			return BottomKCompact(m, fixedExprs(m, vals), M, "bot").Sum
		})
		for _, enc := range []struct {
			name string
			got  float64
		}{{"bubble", bubble}, {"batcher", batcher}, {"cvar", cvar}} {
			if math.Abs(enc.got-truth) > 1e-7*(1+math.Abs(truth)) {
				t.Errorf("%s/%s: bound %g, true bottom-%d sum %g", tag, enc.name, enc.got, M, truth)
			}
		}
	}
}

// TestCrossEncodingWarmPerturbed re-solves a largest-M model with perturbed
// pinned inputs from the previous basis and checks the optimum still equals
// the recomputed order statistic — the sortnet encodings are exactly the
// structures the warm-started TE re-solves carry between intervals.
func TestCrossEncodingWarmPerturbed(t *testing.T) {
	rng := rand.New(rand.NewSource(445))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(4)
		M := 1 + rng.Intn(n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(rng.Float64()*100) / 10
		}
		m := lp.NewModel()
		ins := make([]lp.Var, n)
		es := make([]*lp.Expr, n)
		for i, v := range vals {
			ins[i] = m.NewVar("in", v, v)
			es[i] = lp.NewExpr().Add(1, ins[i])
		}
		m.Minimize(LargestSum(m, es, M, "top").Sum)
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(sol.Objective-topMSum(vals, M)) > 1e-7 {
			t.Fatalf("trial %d: cold bound %g != %g", trial, sol.Objective, topMSum(vals, M))
		}
		for step := 0; step < 3; step++ {
			for i := range vals {
				if rng.Intn(2) == 0 {
					vals[i] = math.Round(rng.Float64()*100) / 10
					m.SetBounds(ins[i], vals[i], vals[i])
				}
			}
			sol, err = m.SolveFrom(sol.Warm())
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			want := topMSum(vals, M)
			if math.Abs(sol.Objective-want) > 1e-7*(1+math.Abs(want)) {
				t.Fatalf("trial %d step %d: warm bound %g, want %g", trial, step, sol.Objective, want)
			}
		}
	}
}
