// Command ffcload exercises a running ffcd: it hammers plan queries at a
// target QPS across several connections, optionally replays a recorded
// fault/demand trace (or generates synthetic churn) on the side, and
// reports serve-latency percentiles. It is both the daemon's load
// generator and its acceptance checker: -strict fails the run if any
// query is dropped, -require-degraded fails it if the daemon never took
// the degraded fallback (used by the CI soak, which injects solver
// faults and must see them absorbed).
//
//	ffcload -addr 127.0.0.1:7070 -qps 500 -duration 10s -churn \
//	        -strict -bench-json BENCH_ctrl.json
//
// A trace file is JSON: {"trace":[{"at_ms":120,"update":{...}}, ...]}
// where each update is one wire.Update frame (see internal/wire).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ffc/internal/ctrl"
	"ffc/internal/metrics"
	"ffc/internal/obs"
	"ffc/internal/wire"
)

// TraceEntry schedules one update relative to the start of the replay.
type TraceEntry struct {
	AtMs   int64       `json:"at_ms"`
	Update wire.Update `json:"update"`
}

// TraceFile is the on-disk trace format.
type TraceFile struct {
	Trace []TraceEntry `json:"trace"`
}

func main() {
	var (
		addr       = flag.String("addr", "", "ffcd address (required)")
		qps        = flag.Float64("qps", 200, "target aggregate query rate")
		conns      = flag.Int("conns", 4, "parallel connections")
		duration   = flag.Duration("duration", 5*time.Second, "run length")
		query      = flag.String("query", ctrl.QueryPlan, "query verb to hammer: get_plan, get_routes, meta, stats, ping")
		tracePath  = flag.String("trace", "", "replay this fault/demand trace while hammering")
		churn      = flag.Bool("churn", false, "generate synthetic churn (demand scaling, link flaps) learned from the served plan")
		churnEvery = flag.Duration("churn-every", 250*time.Millisecond, "synthetic churn period")
		seed       = flag.Int64("seed", 1, "churn RNG seed")
		timeout    = flag.Duration("timeout", 5*time.Second, "dial timeout")
		benchJSON  = flag.String("bench-json", "", "write ctrl_serve/ctrl_install BENCH entries here")
		benchLabel = flag.String("bench-label", "ctrl", "label for the BENCH file")
		strict     = flag.Bool("strict", false, "exit non-zero if any query fails")
		requireDeg = flag.Bool("require-degraded", false, "exit non-zero unless the daemon reports >=1 degraded install")
	)
	flag.Parse()
	if *addr == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *conns < 1 {
		*conns = 1
	}

	// A control connection for plan discovery, trace/churn, and stats.
	cc, err := ctrl.Dial(*addr, *timeout)
	if err != nil {
		fatalf("%v", err)
	}
	defer cc.Close()
	if err := cc.Ping(); err != nil {
		fatalf("ping: %v", err)
	}
	before, err := cc.Stats()
	if err != nil {
		fatalf("stats: %v", err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(*duration, func() { close(stop) })

	if *tracePath != "" {
		var tf TraceFile
		blob, err := os.ReadFile(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := json.Unmarshal(blob, &tf); err != nil {
			fatalf("parsing %s: %v", *tracePath, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			replayTrace(cc, tf, stop)
		}()
	}
	if *churn {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runChurn(cc, *churnEvery, rand.New(rand.NewSource(*seed)), stop)
		}()
	}

	// The query hammer: per-connection workers, each paced to its share of
	// the aggregate QPS. Latencies stay per-worker (metrics.Dist is not
	// concurrency-safe) and merge after the run.
	var failures atomic.Int64
	var failMsg sync.Once
	perConn := time.Duration(float64(time.Second) * float64(*conns) / *qps)
	if perConn <= 0 {
		perConn = time.Microsecond
	}
	lats := make([][]float64, *conns)
	for i := 0; i < *conns; i++ {
		cl, err := ctrl.Dial(*addr, *timeout)
		if err != nil {
			fatalf("%v", err)
		}
		wg.Add(1)
		go func(i int, cl *ctrl.Client) {
			defer wg.Done()
			defer cl.Close()
			tick := time.NewTicker(perConn)
			defer tick.Stop()
			lastSeq := int64(-1)
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				start := time.Now()
				resp, err := cl.Query(*query)
				lat := time.Since(start)
				if err == nil {
					err = checkReply(*query, resp, &lastSeq)
				}
				if err != nil {
					failures.Add(1)
					failMsg.Do(func() { fmt.Fprintf(os.Stderr, "ffcload: first failure: %v\n", err) })
					continue
				}
				lats[i] = append(lats[i], float64(lat.Nanoseconds()))
			}
		}(i, cl)
	}
	wg.Wait()

	var serve metrics.Dist
	var ok int64
	for _, ls := range lats {
		for _, v := range ls {
			serve.Add(v)
		}
		ok += int64(len(ls))
	}
	after, err := cc.Stats()
	if err != nil {
		fatalf("stats: %v", err)
	}
	meta, err := cc.Meta()
	if err != nil {
		fatalf("meta: %v", err)
	}

	installs := after.PlansInstalled - before.PlansInstalled
	degraded := after.DegradedInstalls - before.DegradedInstalls
	fmt.Printf("queries: %d ok, %d failed (%.0f qps over %v, %d conns)\n",
		ok, failures.Load(), float64(ok)/duration.Seconds(), *duration, *conns)
	if serve.N() > 0 {
		fmt.Printf("serve latency: p50 %v  p95 %v  p99 %v  max %v\n",
			nsDur(serve.Percentile(50)), nsDur(serve.Percentile(95)),
			nsDur(serve.Percentile(99)), nsDur(serve.Max()))
	}
	fmt.Printf("daemon: plan seq %d (degraded=%q restored=%v), %d installs (%d degraded) during the run, solve mean %v\n",
		meta.Seq, meta.Degraded, meta.Restored, installs, degraded, nsDur(float64(after.SolveMeanNs)))

	if *benchJSON != "" {
		f := &obs.BenchFile{Schema: obs.BenchSchema, Label: *benchLabel}
		var tags []string
		if degraded > 0 {
			tags = []string{obs.BenchTagDegraded}
		}
		if serve.N() > 0 {
			f.Benchmarks = append(f.Benchmarks, obs.BenchEntry{
				Name: "ctrl_serve", NsPerOp: serve.Mean(), Ops: ok, Tags: tags,
				Counters: map[string]int64{
					"p50_ns": int64(serve.Percentile(50)),
					"p99_ns": int64(serve.Percentile(99)),
					"failed": failures.Load(),
				},
			})
		}
		if installs > 0 && after.SolveMeanNs > 0 {
			f.Benchmarks = append(f.Benchmarks, obs.BenchEntry{
				Name: "ctrl_install", NsPerOp: float64(after.SolveMeanNs), Ops: installs, Tags: tags,
				Counters: map[string]int64{"degraded": degraded},
			})
		}
		if err := obs.WriteBenchFile(*benchJSON, f); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s (%d entries)\n", *benchJSON, len(f.Benchmarks))
	}

	if *strict && failures.Load() > 0 {
		fatalf("strict: %d queries failed", failures.Load())
	}
	if *requireDeg && degraded == 0 {
		fatalf("require-degraded: daemon reported no degraded installs during the run")
	}
}

// checkReply sanity-checks a hammer reply: the plan snapshot must be
// internally consistent and the sequence must never move backwards on one
// connection.
func checkReply(q string, resp *ctrl.Response, lastSeq *int64) error {
	if q == ctrl.QueryPing || q == ctrl.QueryStats {
		return nil
	}
	if resp.Meta == nil {
		return fmt.Errorf("reply without meta")
	}
	if resp.Meta.Seq < *lastSeq {
		return fmt.Errorf("plan seq went backwards: %d after %d", resp.Meta.Seq, *lastSeq)
	}
	*lastSeq = resp.Meta.Seq
	if q == ctrl.QueryPlan {
		var sf wire.StateFile
		if err := json.Unmarshal(resp.Plan, &sf); err != nil {
			return fmt.Errorf("bad plan payload: %v", err)
		}
		if len(sf.Flows) != resp.Meta.Flows {
			return fmt.Errorf("torn plan: meta says %d flows, payload has %d", resp.Meta.Flows, len(sf.Flows))
		}
		var sum float64
		for _, fl := range sf.Flows {
			sum += fl.Rate
		}
		if d := sum - sf.TotalRate; d > 1e-6+1e-9*sum || d < -(1e-6+1e-9*sum) {
			return fmt.Errorf("torn plan: flow rates sum to %g, total says %g", sum, sf.TotalRate)
		}
	}
	return nil
}

// replayTrace sends each trace update at its offset.
func replayTrace(cc *ctrl.Client, tf TraceFile, stop <-chan struct{}) {
	entries := append([]TraceEntry(nil), tf.Trace...)
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].AtMs < entries[j].AtMs })
	start := time.Now()
	for i := range entries {
		at := time.Duration(entries[i].AtMs) * time.Millisecond
		delay := at - time.Since(start)
		if delay > 0 {
			select {
			case <-stop:
				return
			case <-time.After(delay):
			}
		}
		if err := cc.Update(&entries[i].Update); err != nil {
			fmt.Fprintf(os.Stderr, "ffcload: trace entry %d: %v\n", i, err)
		}
	}
}

// runChurn learns the flow and link structure from the served plan and
// streams synthetic updates: demand rescales and link down/up flaps.
func runChurn(cc *ctrl.Client, every time.Duration, rng *rand.Rand, stop <-chan struct{}) {
	_, routes, err := cc.GetRoutes()
	if err != nil || len(routes) == 0 {
		fmt.Fprintf(os.Stderr, "ffcload: churn disabled: no routes to learn from (%v)\n", err)
		return
	}
	type link struct{ src, dst string }
	var links []link
	seen := map[link]bool{}
	base := map[[2]string]float64{}
	for _, fl := range routes {
		base[[2]string{fl.Src, fl.Dst}] = fl.Demand
		for _, t := range fl.Tunnels {
			for i := 0; i+1 < len(t.Path); i++ {
				l := link{t.Path[i], t.Path[i+1]}
				if !seen[l] && !seen[link{l.dst, l.src}] {
					seen[l] = true
					links = append(links, l)
				}
			}
		}
	}
	flows := make([][2]string, 0, len(base))
	for f := range base {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i][0] != flows[j][0] {
			return flows[i][0] < flows[j][0]
		}
		return flows[i][1] < flows[j][1]
	})

	tick := time.NewTicker(every)
	defer tick.Stop()
	var downed *link
	for {
		select {
		case <-stop:
			// Leave the network intact for whoever runs next.
			if downed != nil {
				up := true
				cc.Update(&wire.Update{Op: wire.UpdateLink, Src: downed.src, Dst: downed.dst, Up: &up})
			}
			return
		case <-tick.C:
		}
		var u *wire.Update
		switch {
		case downed != nil:
			up := true
			u = &wire.Update{Op: wire.UpdateLink, Src: downed.src, Dst: downed.dst, Up: &up}
			downed = nil
		case len(links) > 0 && rng.Float64() < 0.3:
			l := links[rng.Intn(len(links))]
			up := false
			u = &wire.Update{Op: wire.UpdateLink, Src: l.src, Dst: l.dst, Up: &up}
			downed = &l
		default:
			f := flows[rng.Intn(len(flows))]
			d := base[f] * (0.5 + rng.Float64())
			u = &wire.Update{Op: wire.UpdateDemands, Demands: []wire.DemandEntry{
				{Src: f[0], Dst: f[1], Demand: d},
			}}
		}
		if err := cc.Update(u); err != nil {
			fmt.Fprintf(os.Stderr, "ffcload: churn update: %v\n", err)
		}
	}
}

func nsDur(ns float64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ffcload: "+format+"\n", args...)
	os.Exit(1)
}
