package prop

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
)

// shortSeeds is the PR-budget property pass: a fixed seed set chosen to
// cover every solve path, every encoding, and several topology kinds while
// staying inside the normal `go test` budget. TestSeedCoverage pins the
// coverage so generator changes that would silently narrow it fail loudly.
var shortSeeds = []int64{1, 2, 4, 5, 6, 7, 8, 9, 10, 12}

// longSeeds extends the sweep when -short is not set.
var longSeeds = []int64{3, 11, 13, 14, 15, 16, 17, 18, 20, 21, 22, 23, 24}

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	for _, seed := range []int64{1, 7, 42, 1 << 40} {
		a, _ := json.Marshal(Generate(seed))
		b, _ := json.Marshal(Generate(seed))
		if string(a) != string(b) {
			t.Fatalf("Generate(%d) is not deterministic", seed)
		}
	}
	a, _ := json.Marshal(Generate(5))
	b, _ := json.Marshal(Generate(6))
	if string(a) == string(b) {
		t.Fatalf("Generate(5) and Generate(6) drew identical scenarios")
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	t.Parallel()
	sc := Generate(7)
	blob, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("scenario does not round-trip through JSON:\n%s\nvs\n%s", blob, blob2)
	}
}

// TestSeedCoverage pins that the short-pass seeds exercise all four solve
// paths and every encoding.
func TestSeedCoverage(t *testing.T) {
	t.Parallel()
	paths := map[string]bool{}
	encodings := map[string]bool{}
	for _, seed := range shortSeeds {
		sc := Generate(seed)
		paths[sc.Path] = true
		encodings[sc.Encoding] = true
	}
	for _, p := range Paths {
		if !paths[p] {
			t.Errorf("short seeds cover no %q-path scenario", p)
		}
	}
	for _, e := range []string{"sortnet", "compact", "naive"} {
		if !encodings[e] {
			t.Errorf("short seeds cover no %q-encoding scenario", e)
		}
	}
}

// TestProperties is the randomized end-to-end pass: every seed's scenario
// runs the full build → solve → verify → certify pipeline and must satisfy
// every metamorphic invariant.
func TestProperties(t *testing.T) {
	seeds := shortSeeds
	if !testing.Short() {
		seeds = append(append([]int64(nil), shortSeeds...), longSeeds...)
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(Generate(seed).Name, func(t *testing.T) {
			t.Parallel()
			sc := Generate(seed)
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("scenario invalid: %v", err)
			}
			if len(res.Checked) < 6 {
				t.Errorf("only %d invariants checked (%v); want ≥ 6", len(res.Checked), res.Checked)
			}
			for _, f := range res.Failures {
				t.Errorf("invariant violated: %s", f)
			}
			if t.Failed() {
				blob, _ := json.MarshalIndent(sc, "", "  ")
				t.Logf("failing scenario (save as repro):\n%s", blob)
			}
		})
	}
}

// TestRunDeterministic pins that Run is replay-stable: same scenario, same
// result, including the throughput digits.
func TestRunDeterministic(t *testing.T) {
	t.Parallel()
	sc := Generate(9)
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if a.Rate != b.Rate || !reflect.DeepEqual(a.Failures, b.Failures) {
		t.Fatalf("Run is not deterministic: %+v vs %+v", a, b)
	}
}

// brokenScenario returns the deliberately-corrupted scenario the catch/
// shrink/replay tests share: a solved plan whose most-loaded link has its
// observed capacity cut below the planned load.
func brokenScenario(t *testing.T) *Scenario {
	t.Helper()
	sc := Generate(7)
	clean, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.OK() {
		t.Fatalf("seed scenario must pass before corruption: %v", clean.Failures)
	}
	broken, err := MutateWorstLink(sc)
	if err != nil {
		t.Fatal(err)
	}
	return broken
}

func TestMutatedScenarioCaught(t *testing.T) {
	t.Parallel()
	broken := brokenScenario(t)
	res, err := Run(broken)
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, f := range res.Failures {
		if f.Invariant == InvCertify {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("capacity-shrunk scenario not caught; failures: %v", res.Failures)
	}
}

func TestShrinkMinimizesAndReplays(t *testing.T) {
	t.Parallel()
	broken := brokenScenario(t)
	res, err := Run(broken)
	if err != nil {
		t.Fatal(err)
	}
	failure := res.FirstFailure()
	if failure.Invariant != InvCertify {
		t.Fatalf("expected a certify-ok failure, got %v", res.Failures)
	}

	shrunk, stats := Shrink(broken, failure, 0)
	t.Logf("shrink: %d switches / %d flows after %d attempts (%d accepted)",
		shrunk.Topo.NumSwitches(), len(shrunk.Demands), stats.Attempts, stats.Accepted)
	if n := shrunk.Topo.NumSwitches(); n > 6 {
		t.Errorf("shrunk scenario has %d switches, want ≤ 6", n)
	}
	if n := len(shrunk.Demands); n > 8 {
		t.Errorf("shrunk scenario has %d flows, want ≤ 8", n)
	}

	// The shrunk scenario must still fail with the same invariant...
	sres, err := Run(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if sres.OK() || sres.FirstFailure().Invariant != failure.Invariant {
		t.Fatalf("shrunk scenario lost the failure: %v", sres.Failures)
	}

	// ...and its repro file must fail identically through the repro path.
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := WriteRepro(path, &Repro{Failure: failure, Shrink: stats, Scenario: shrunk}); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	rres, reproduced, err := rep.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !reproduced {
		t.Fatalf("repro did not reproduce; got %v", rres.Failures)
	}
}

// TestCommittedRepro is the go-test replay path for the checked-in repro
// artifact: the exact file ffcprop -repro replays must fail here with the
// same invariant (see also cmd/ffcprop's CLI test).
func TestCommittedRepro(t *testing.T) {
	t.Parallel()
	rep, err := ReadRepro(filepath.Join("testdata", "broken_capacity_repro.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure.Invariant != InvCertify {
		t.Fatalf("committed repro records %q, want %q", rep.Failure.Invariant, InvCertify)
	}
	res, reproduced, err := rep.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !reproduced {
		t.Fatalf("committed repro no longer reproduces; failures: %v", res.Failures)
	}
}

// TestDegradedInvariantCatchesExtraFaults sanity-checks the degraded
// invariant end to end: a scenario whose plan certifies must also certify
// after Degrade under its post-install faults (already part of Run), and
// the invariant filter restricts Run to exactly that check.
func TestInvariantFilter(t *testing.T) {
	t.Parallel()
	sc := Generate(8)
	sc.Invariants = []string{InvDegraded}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{InvSolveOK: true, InvDegraded: true}
	for _, inv := range res.Checked {
		if !want[inv] {
			t.Errorf("invariant %q ran despite the filter", inv)
		}
	}
	if len(res.Checked) != 2 {
		t.Errorf("checked %v, want exactly [solve-ok degraded-certifies]", res.Checked)
	}
}
