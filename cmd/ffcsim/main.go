// Command ffcsim runs one end-to-end evaluation scenario (the §8 harness)
// and prints the accounting: an FFC configuration against the unprotected
// baseline under identical faults.
//
//	ffcsim -net lnet -sites 8 -intervals 24 -scale 1 -kc 2 -ke 1 -model realistic
//	ffcsim -net snet -multi               # the §8.4 multi-priority setup
//
// Output: throughput/loss ratios, loss breakdown (blackhole vs congestion),
// oversubscription percentiles, reactions, per-class results with -multi.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/experiments"
	"ffc/internal/faults"
	"ffc/internal/metrics"
	"ffc/internal/obs"
	"ffc/internal/sim"
	"ffc/internal/wire"
)

func main() {
	var (
		timeline   = flag.Bool("timeline", false, "print the per-interval timeline of the FFC run")
		netKind    = flag.String("net", "lnet", "network: lnet or snet")
		sites      = flag.Int("sites", 8, "L-Net sites")
		intervals  = flag.Int("intervals", 24, "TE intervals to simulate")
		scale      = flag.Float64("scale", 1.0, "traffic scale (1.0 = 99% of demand satisfiable)")
		kc         = flag.Int("kc", 2, "control-plane protection")
		ke         = flag.Int("ke", 1, "link protection")
		kv         = flag.Int("kv", 0, "switch protection")
		model      = flag.String("model", "realistic", "switch model: realistic or optimistic")
		multi      = flag.Bool("multi", false, "multi-priority (§8.4) protection levels")
		seed       = flag.Int64("seed", 1, "random seed")
		mtbf       = flag.Duration("link-mtbf", 30*time.Minute, "network-wide link MTBF")
		warm       = flag.Bool("warm", false, "warm-start each class's interval re-solves from the previous basis")
		template   = flag.Bool("template", true, "reuse each class's LP model template across intervals (rebind bounds/RHS instead of re-formulating); -template=false forces scratch builds")
		par        = flag.Int("parallel", 0, "worker count for parallel stages, including LP constraint emission (<=0 = all cores, 1 = serial)")
		stats      = flag.Bool("stats", false, "print solver counters and the per-interval solve latency breakdown to stderr after the run")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/obs on this address")
		deadline   = flag.Duration("solver-deadline", 0, "per-interval TE solve budget; a missed solve degrades the interval to the last-good plan (0 = unbounded)")
		injectSpec = flag.String("inject-solver", "", "inject controller faults, e.g. timeout=0.1,crash=0.01,stale=0.02 (per-interval probabilities)")
		tracePath  = flag.String("trace", "", "record the FFC run's installed plans as NDJSON trace records (replayable offline with ffccheck -trace)")
	)
	flag.Parse()

	injected, err := faults.ParseSolverFaults(*injectSpec)
	if err != nil {
		fatalf("-inject-solver: %v", err)
	}

	if *stats {
		obs.Enable()
	}
	if *debugAddr != "" {
		addr, err := obs.Serve(*debugAddr)
		if err != nil {
			fatalf("debug server: %v", err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/obs (pprof, vars)\n", addr)
	}

	// SIGINT/SIGTERM cancel the runs through the sim's budget path: the
	// in-flight solves stop within an iteration batch and the partial
	// results (intervals completed so far) are still printed. A second
	// signal kills the process the default way.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var env *experiments.Env
	cfg := experiments.EnvConfig{Sites: *sites, Intervals: *intervals, Seed: *seed, Parallelism: *par,
		BuildWorkers: experiments.BuildWorkersFor(*par), NoTemplate: !*template, Ctx: ctx}
	switch *netKind {
	case "lnet":
		env, err = experiments.NewLNet(cfg)
	case "snet":
		env, err = experiments.NewSNet(cfg)
	default:
		fatalf("unknown -net %q", *netKind)
	}
	if err != nil {
		fatalf("%v", err)
	}

	var sw faults.SwitchModel
	switch *model {
	case "realistic":
		sw = faults.Realistic()
	case "optimistic":
		sw = faults.Optimistic()
	default:
		fatalf("unknown -model %q", *model)
	}
	sc := env.Scenario(*scale, sw)
	sc.Failures.LinkMTBF = *mtbf

	baseCfg := sim.RunConfig{SolverOpts: env.Opts, WarmStart: *warm}
	ffcCfg := sim.RunConfig{Prot: core.Protection{Kc: *kc, Ke: *ke, Kv: *kv}, SolverOpts: env.Opts, WarmStart: *warm}
	if *multi {
		rng := rand.New(rand.NewSource(*seed + 99))
		splits := demand.RandomSplits(sim.FlowsOf(sc.Series), rng)
		mp := &sim.PriorityConfig{Splits: splits}
		mp.Prot[demand.High] = core.Protection{Kc: 3, Ke: 3}
		mp.Prot[demand.Med] = core.Protection{Kc: 2, Ke: 1}
		mp.Prot[demand.Low] = core.None
		ffcCfg = sim.RunConfig{Multi: mp, SolverOpts: env.Opts, WarmStart: *warm}
		baseCfg = sim.RunConfig{Multi: &sim.PriorityConfig{Splits: splits}, SolverOpts: env.Opts, WarmStart: *warm}
	}
	for _, c := range []*sim.RunConfig{&baseCfg, &ffcCfg} {
		c.SolverDeadline = *deadline
		c.SolverFaults = injected
	}
	if *tracePath != "" {
		traceFile, err := os.Create(*tracePath)
		if err != nil {
			fatalf("-trace: %v", err)
		}
		defer traceFile.Close()
		tw := bufio.NewWriter(traceFile)
		defer tw.Flush()
		// Trace the FFC run only (the baseline's unprotected plans certify
		// trivially at kc=ke=kv=0 and would double the file for nothing).
		ffcCfg.OnPlan = func(pr sim.PlanRecord) {
			links, sws := wire.NamedDownSets(env.Net, pr.DownLinks, pr.DownSwitches)
			rec := &wire.TraceRecord{
				Seq:          int64(pr.Interval) + 1,
				Class:        pr.Class.String(),
				Kc:           pr.Prot.Kc,
				Ke:           pr.Prot.Ke,
				Kv:           pr.Prot.Kv,
				Degraded:     pr.Degraded,
				DownLinks:    links,
				DownSwitches: sws,
				State:        wire.EncodeState(env.Net, sc.Tun, pr.Demands, pr.State),
			}
			if err := wire.WriteTraceRecord(tw, rec); err != nil {
				fatalf("-trace: %v", err)
			}
		}
	}

	fmt.Fprintf(os.Stderr, "simulating %s: %d switches, %d links, %d intervals, scale %.2g, %s model...\n",
		env.Name, env.Net.NumSwitches(), env.Net.NumLinks(), *intervals, *scale, sw.Name)
	res, err := sim.RunMany(sc, []sim.RunConfig{baseCfg, ffcCfg})
	if err != nil {
		fatalf("%v", err)
	}
	base, ffcRes := res[0], res[1]
	if base.Interrupted || ffcRes.Interrupted {
		fmt.Fprintf(os.Stderr, "ffcsim: interrupted: partial results over %d/%d base and %d/%d FFC intervals\n",
			base.Intervals, *intervals, ffcRes.Intervals, *intervals)
	}

	tab := metrics.NewTable("metric", "non-FFC", "FFC", "ratio")
	row := func(name string, b, f float64) {
		tab.Row(name, b, f, metrics.SafeRatio(f, b, 1))
	}
	row("delivered (unit·s)", base.Total.DeliveredBytes(), ffcRes.Total.DeliveredBytes())
	row("lost (unit·s)", base.Total.LossBytes, ffcRes.Total.LossBytes)
	row("  blackhole", base.Total.BlackholeBytes, ffcRes.Total.BlackholeBytes)
	row("  congestion", base.Total.CongestionBytes, ffcRes.Total.CongestionBytes)
	tab.Row("max-oversub p50 (%)", 100*base.MaxOversub.Percentile(50), 100*ffcRes.MaxOversub.Percentile(50), "")
	tab.Row("max-oversub p99 (%)", 100*base.MaxOversub.Percentile(99), 100*ffcRes.MaxOversub.Percentile(99), "")
	tab.Row("controller reactions", base.Reactions, ffcRes.Reactions, "")
	tab.Row("TE solve mean (s)", base.SolveTime.Mean(), ffcRes.SolveTime.Mean(), "")
	if *deadline > 0 || injected.Enabled() {
		tab.Row("degraded intervals", base.DegradedIntervals, ffcRes.DegradedIntervals, "")
		tab.Row("degraded max-oversub (%)", 100*base.DegradedOversub.Max(), 100*ffcRes.DegradedOversub.Max(), "")
	}
	fmt.Print(tab.String())

	if *timeline {
		fmt.Println()
		tt := metrics.NewTable("interval", "demand", "granted", "lost", "link-faults", "switch-faults", "stale", "max-oversub-%", "degraded")
		for i, rec := range ffcRes.Timeline {
			tt.Row(i, rec.Demand, rec.Granted, rec.Lost, rec.LinkFaults, rec.SwitchFaults, rec.StaleSwitches, 100*rec.MaxOversub, rec.Degraded)
		}
		fmt.Print(tt.String())
	}

	if *multi {
		fmt.Println()
		ct := metrics.NewTable("class", "delivered-ratio", "loss-ratio", "ffc-loss-share")
		for _, p := range []demand.Priority{demand.High, demand.Med, demand.Low} {
			ct.Row(p.String(),
				metrics.SafeRatio(ffcRes.ByPriority[p].DeliveredBytes(), base.ByPriority[p].DeliveredBytes(), 1),
				metrics.SafeRatio(ffcRes.ByPriority[p].LossBytes, base.ByPriority[p].LossBytes, 0),
				metrics.SafeRatio(ffcRes.ByPriority[p].LossBytes, ffcRes.Total.LossBytes, 0))
		}
		fmt.Print(ct.String())
	}

	if *stats {
		fmt.Fprintln(os.Stderr)
		obs.Default().WriteText(os.Stderr)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ffcsim: "+format+"\n", args...)
	os.Exit(1)
}
