package sim

import (
	"reflect"
	"testing"
	"time"

	"ffc/internal/core"
	"ffc/internal/metrics"
)

func TestOversubDataFaultsParallelMatchesSerial(t *testing.T) {
	sc := testScenario(t, 20, 8, 1.0)
	sc.Parallelism = 1
	serial, err := OversubDataFaults(sc, core.None, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		sc.Parallelism = w
		par, err := OversubDataFaults(sc, core.None, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: distribution differs from serial\nserial CDF %v\nparallel CDF %v",
				w, serial.CDF(0), par.CDF(0))
		}
	}
}

func TestOversubControlFaultsParallelMatchesSerial(t *testing.T) {
	sc := testScenario(t, 21, 8, 1.0)
	sc.Parallelism = 1
	serial, err := OversubControlFaults(sc, core.None, 2)
	if err != nil {
		t.Fatal(err)
	}
	sc.Parallelism = 8
	par, err := OversubControlFaults(sc, core.None, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("distribution differs from serial\nserial CDF %v\nparallel CDF %v",
			serial.CDF(0), par.CDF(0))
	}
}

func TestRunManyMatchesIndividualRuns(t *testing.T) {
	sc := testScenario(t, 22, 6, 1.0)
	sc.Failures.LinkMTBF = 10 * time.Minute
	cfgs := []RunConfig{
		{},
		{Prot: core.Protection{Kc: 2, Ke: 1}},
	}
	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		r, err := Run(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	sc.Parallelism = 4
	got, err := RunMany(sc, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		// SolveTime is wall-clock and never repeats; blank it before the
		// deep comparison.
		want[i].SolveTime, got[i].SolveTime = metrics.Dist{}, metrics.Dist{}
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("config %d: RunMany result differs from individual Run\nwant %+v\ngot %+v", i, want[i], got[i])
		}
	}
}
