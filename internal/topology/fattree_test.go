package topology

import "testing"

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{2, 4, 6} {
		n := FatTree(k, 10)
		if err := n.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		half := k / 2
		wantSwitches := half*half + k*half*2
		if n.NumSwitches() != wantSwitches {
			t.Fatalf("k=%d: %d switches, want %d", k, n.NumSwitches(), wantSwitches)
		}
		// Directed links: 2 × (edge-agg: k·half·half, agg-core: k·half·half).
		wantLinks := 2 * (k*half*half + k*half*half)
		if n.NumLinks() != wantLinks {
			t.Fatalf("k=%d: %d links, want %d", k, n.NumLinks(), wantLinks)
		}
		if !n.Connected() {
			t.Fatalf("k=%d: not connected", k)
		}
		if got := len(n.EdgeSwitches()); got != k*half {
			t.Fatalf("k=%d: %d edge switches, want %d", k, got, k*half)
		}
	}
}

func TestFatTreeRejectsOddArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd k")
		}
	}()
	FatTree(3, 10)
}

func TestFatTreePathDiversity(t *testing.T) {
	// Any inter-pod edge pair must have at least k/2 link-disjoint paths
	// (one per aggregation uplink) — the property FFC's τ relies on.
	n := FatTree(4, 10)
	edges := n.EdgeSwitches()
	if len(edges) < 3 {
		t.Fatal("too few edge switches")
	}
	src, dst := edges[0], edges[len(edges)-1]
	if n.Switches[src].Site == n.Switches[dst].Site {
		t.Fatal("picked same-pod pair")
	}
	// Count disjoint paths greedily via repeated shortest path with link
	// removal (simple check, not max-flow).
	banned := map[LinkID]bool{}
	paths := 0
	for i := 0; i < 4; i++ {
		p := shortestPathForTest(n, src, dst, banned)
		if p == nil {
			break
		}
		paths++
		for _, l := range p {
			banned[l] = true
			if tw := n.Links[l].Twin; tw != None {
				banned[tw] = true
			}
		}
	}
	if paths < 2 {
		t.Fatalf("only %d disjoint paths between pods, want ≥ 2", paths)
	}
}

// shortestPathForTest is a minimal BFS over allowed links.
func shortestPathForTest(n *Network, src, dst SwitchID, banned map[LinkID]bool) []LinkID {
	type node struct {
		sw   SwitchID
		via  LinkID
		prev int
	}
	queue := []node{{sw: src, via: None, prev: -1}}
	seen := map[SwitchID]bool{src: true}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if cur.sw == dst {
			var rev []LinkID
			for j := i; queue[j].via != None; j = queue[j].prev {
				rev = append(rev, queue[j].via)
			}
			for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
				rev[a], rev[b] = rev[b], rev[a]
			}
			return rev
		}
		for _, l := range n.OutLinks(cur.sw) {
			if banned[l] || seen[n.Links[l].Dst] {
				continue
			}
			seen[n.Links[l].Dst] = true
			queue = append(queue, node{sw: n.Links[l].Dst, via: l, prev: i})
		}
	}
	return nil
}
