// Data-plane failover (the paper's Figures 2 and 4): shows that plain TE
// congests after ingress rescaling while FFC's spread absorbs any single
// link failure without controller involvement.
//
//	go run ./examples/dataplane_failover
package main

import (
	"fmt"
	"log"

	"ffc"
)

func main() {
	net := ffc.Example4Topology()
	s2, _ := net.SwitchByName("s2")
	s3, _ := net.SwitchByName("s3")
	s4, _ := net.SwitchByName("s4")
	f24 := ffc.Flow{Src: s2, Dst: s4}
	f34 := ffc.Flow{Src: s3, Dst: s4}

	ctl, err := ffc.NewController(net, []ffc.Flow{f24, f34}, ffc.ControllerConfig{TunnelsPerFlow: 2})
	if err != nil {
		log.Fatal(err)
	}
	demands := ffc.Demands{f24: 14, f34: 6}

	plain, _, err := ctl.Compute(demands, ffc.NoProtection)
	if err != nil {
		log.Fatal(err)
	}
	protected, _, err := ctl.Compute(demands, ffc.Protection{Ke: 1})
	if err != nil {
		log.Fatal(err)
	}

	for name, st := range map[string]*ffc.State{"plain TE": plain, "FFC ke=1": protected} {
		fmt.Printf("=== %s (throughput %.1f) ===\n", name, st.TotalRate())
		if v := ctl.VerifyDataPlane(st, 1, 0); v != nil {
			fmt.Printf("  UNSAFE: fault case {%s} overloads link %d by %.2f units\n",
				v.Case, v.Link, v.Over)
		} else {
			fmt.Println("  safe: no single link failure can congest any link after rescaling")
		}
		// Walk each physical link failure and report the worst post-rescale load.
		tun := ctl.Tunnels()
		for _, l := range net.Links {
			if l.Twin != -1 && l.Twin < l.ID {
				continue // one direction per physical link
			}
			down := map[ffc.LinkID]bool{l.ID: true}
			if l.Twin != -1 {
				down[l.Twin] = true
			}
			loads := map[ffc.LinkID]float64{}
			for _, f := range []ffc.Flow{f24, f34} {
				shares := tun.Rescale(f, st.Weights(f), st.Rate[f], down, nil)
				for _, t := range tun.Tunnels(f) {
					for _, lk := range t.Links {
						loads[lk] += shares[t.Index]
					}
				}
			}
			worstOver := 0.0
			var worstLink ffc.LinkID
			for lk, load := range loads {
				if down[lk] {
					continue
				}
				if over := load - net.Links[lk].Capacity; over > worstOver {
					worstOver, worstLink = over, lk
				}
			}
			a, b := net.Switches[l.Src].Name, net.Switches[l.Dst].Name
			if worstOver > 1e-9 {
				wl := net.Links[worstLink]
				fmt.Printf("  fail %s–%s → link %s–%s gets %.1f units over capacity\n",
					a, b, net.Switches[wl.Src].Name, net.Switches[wl.Dst].Name, worstOver)
			} else {
				fmt.Printf("  fail %s–%s → no congestion after rescaling\n", a, b)
			}
		}
	}
}
