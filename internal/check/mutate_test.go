package check

// Mutation tests: take the certified S-Net ke=2/kv=1 plan and break it in
// the three ways an installed configuration can silently rot — a rate
// above what was solved for, a backup tunnel the ingress no longer has,
// a link with less capacity than the solver believed — and assert the
// certifier rejects each one with a violating fault set that actually
// induces the overload.

import (
	"sort"
	"testing"

	"ffc/internal/core"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// clonePlan copies the plan data the certifier reads.
func clonePlan(st *core.State) *core.State {
	c := core.NewState()
	for f, r := range st.Rate {
		c.Rate[f] = r
	}
	for f, a := range st.Alloc {
		c.Alloc[f] = append([]float64(nil), a...)
	}
	return c
}

// downFromFaults renders a violation's fault set as pre-down sets (both
// directions of each physical link), so the case can be replayed as
// ground truth at zero protection.
func downFromFaults(net *topology.Network, fs FaultSet) (map[topology.LinkID]bool, map[topology.SwitchID]bool) {
	dl := map[topology.LinkID]bool{}
	for _, l := range fs.Links {
		dl[l] = true
		if tw := net.Links[l].Twin; tw != topology.None {
			dl[tw] = true
		}
	}
	ds := map[topology.SwitchID]bool{}
	for _, sw := range fs.Switches {
		ds[sw] = true
	}
	return dl, ds
}

// certifySNet certifies a (possibly mutated) S-Net plan at the fixture's
// protection level.
func certifySNet(t *testing.T, st *core.State) *Certificate {
	t.Helper()
	net, set, _, _ := snetPlan(t)
	cert, err := Certify(net, set, st, st, Params{Prot: snetProt, Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

// TestMutationRateBump: granting a flow more than the solver admitted
// must be rejected, and the overload must already exist with no faults
// at all — the empty fault set is the violating one.
func TestMutationRateBump(t *testing.T) {
	net, set, _, st := snetPlan(t)
	if cert := certifySNet(t, st); !cert.OK {
		t.Fatalf("unmutated plan failed certification: %+v", cert.Violation)
	}

	var totalCap float64
	for _, l := range net.Links {
		totalCap += l.Capacity
	}
	var victim tunnel.Flow
	for f, r := range st.Rate {
		if r > st.Rate[victim] || st.Rate[victim] == 0 {
			if len(set.Tunnels(f)) > 0 {
				victim = f
			}
		}
	}
	mut := clonePlan(st)
	mut.Rate[victim] += 2 * totalCap

	cert := certifySNet(t, mut)
	if cert.OK {
		t.Fatal("rate-bumped plan certified")
	}
	if cert.Violation.Plane != "data" {
		t.Fatalf("violation on %q plane, want data", cert.Violation.Plane)
	}
	// The bump overloads the network before any fault: certifying at zero
	// protection must also reject, with the empty fault set.
	zero, err := Certify(net, set, mut, mut, Params{Prot: core.None, Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if zero.OK {
		t.Fatal("rate bump needs faults to violate; the no-fault case should already overload")
	}
	if !zero.Violation.Faults.Empty() {
		t.Fatalf("zero-protection violation blames faults: %+v", zero.Violation.Faults)
	}
	// And the overloaded link actually carries the bumped flow.
	onVictim := map[topology.LinkID]bool{}
	for _, tn := range set.Tunnels(victim) {
		for _, l := range tn.Links {
			onVictim[l] = true
		}
	}
	if !onVictim[zero.Violation.Link] {
		t.Fatalf("violating link %s not on the bumped flow's tunnels", zero.Violation.LinkName)
	}
}

// TestMutationDroppedBackup: zeroing a backup tunnel's allocation (the
// ingress renormalizes the rest) must surface some plan whose worst fault
// case overloads a link — and replaying that exact fault set as pre-down
// state must reproduce the overload.
func TestMutationDroppedBackup(t *testing.T) {
	net, set, _, st := snetPlan(t)

	// Probe candidate mutations with the fast adversarial search (an
	// exact pass over the full S-Net takes seconds per candidate), then
	// confirm the hit with one exact enumeration.
	flows := append([]tunnel.Flow(nil), set.All()...)
	sort.Slice(flows, func(i, j int) bool { return st.Rate[flows[i]] > st.Rate[flows[j]] })
	probe := Params{Prot: snetProt, Mode: Adversarial, FailFast: true, Restarts: 8}
	var mutated *core.State
probing:
	for _, f := range flows {
		alloc := st.Alloc[f]
		if st.Rate[f] <= 0 {
			continue
		}
		positive := 0
		for _, a := range alloc {
			if a > 0 {
				positive++
			}
		}
		if positive < 2 {
			continue // dropping the only tunnel just blackholes the flow
		}
		for j, a := range alloc {
			if a <= 0 {
				continue
			}
			mut := clonePlan(st)
			mut.Alloc[f][j] = 0
			cert, err := Certify(net, set, mut, mut, probe)
			if err != nil {
				t.Fatal(err)
			}
			if !cert.OK {
				mutated = mut
				break probing
			}
		}
	}
	if mutated == nil {
		t.Fatal("no dropped backup tunnel was rejected; the fixture plan has no load-bearing backups")
	}
	rejected, err := Certify(net, set, mutated, mutated, Params{Prot: snetProt, Mode: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if rejected.OK {
		t.Fatal("exact enumeration disagrees with the adversarial rejection")
	}
	if rejected.Violation.Plane != "data" {
		t.Fatalf("violation on %q plane, want data", rejected.Violation.Plane)
	}
	// Ground-truth replay: apply the blamed fault set as pre-down state
	// and the overload must be there with zero remaining protection.
	dl, ds := downFromFaults(net, rejected.Violation.Faults)
	replay, err := Certify(net, set, mutated, mutated, Params{
		Prot: core.None, Mode: Exact, DownLinks: dl, DownSwitches: ds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if replay.OK {
		t.Fatalf("blamed fault set %+v does not induce the violation", rejected.Violation.Faults)
	}
	if !replay.Violation.Faults.Empty() {
		t.Fatalf("replay blames further faults: %+v", replay.Violation.Faults)
	}
}

// TestMutationShrunkCapacity: shrinking one link below its fault-free
// load must be rejected, the violation must be on exactly that link, and
// the blamed fault set must induce at least the fault-free overload.
func TestMutationShrunkCapacity(t *testing.T) {
	net, set, _, st := snetPlan(t)

	// Fault-free loads as the certifier computes them: each flow's rate
	// split over its tunnels by allocation weight (the allocation sums
	// themselves over-provision for failures, so they'd overstate load).
	loads := map[topology.LinkID]float64{}
	for _, f := range set.All() {
		w := weightsOf(st.Alloc[f])
		for _, tn := range set.Tunnels(f) {
			for _, l := range tn.Links {
				loads[l] += st.Rate[f] * at(w, tn.Index)
			}
		}
	}
	var worst topology.LinkID
	var worstLoad float64
	for l, load := range loads {
		if load > worstLoad {
			worst, worstLoad = l, load
		}
	}
	if worstLoad <= 0 {
		t.Fatal("fixture plan loads no link")
	}
	caps := map[topology.LinkID]float64{worst: 0.98 * worstLoad}

	cert, err := Certify(net, set, st, st, Params{Prot: snetProt, Mode: Exact, Capacity: caps})
	if err != nil {
		t.Fatal(err)
	}
	if cert.OK {
		t.Fatal("plan certified against a link shrunk below its fault-free load")
	}
	if cert.Violation.Link != worst {
		t.Fatalf("violation on %s, want the shrunk link", cert.Violation.LinkName)
	}
	if cert.Violation.Capacity != caps[worst] {
		t.Fatalf("violation capacity %g, want the override %g", cert.Violation.Capacity, caps[worst])
	}
	// Replaying the blamed fault set must reproduce an overload on the
	// same link at zero protection.
	dl, ds := downFromFaults(net, cert.Violation.Faults)
	replay, err := Certify(net, set, st, st, Params{
		Prot: core.None, Mode: Exact, Capacity: caps, DownLinks: dl, DownSwitches: ds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if replay.OK {
		t.Fatalf("blamed fault set %+v does not induce the violation", cert.Violation.Faults)
	}
	if replay.Violation.Link != worst {
		t.Fatalf("replay violation on %s, want the shrunk link", replay.Violation.LinkName)
	}
}
