package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets covers every non-negative int64: bucket b holds values v
// with bits.Len64(v) == b, i.e. [2^(b-1), 2^b). Bucket 0 holds exactly 0.
const histBuckets = 64

// Histogram is a fixed-size, allocation-free, concurrency-safe histogram
// of non-negative int64 samples with power-of-two buckets. Span timers
// record nanosecond durations into these, so quantiles carry roughly
// a factor-of-two resolution — plenty for "where does the time go" and
// cheap enough to sit on a per-interval solve path.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 when empty
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))%histBuckets].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Nanoseconds()) }

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average sample, or 0 if empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) by locating
// the bucket holding the q-th sample and interpolating linearly inside
// its [2^(b-1), 2^b) range. Resolution is therefore about a factor of
// two; exact for min/max, and clamped to them.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := q * float64(n-1)
	var seen float64
	for b := 0; b < histBuckets; b++ {
		c := float64(h.buckets[b].Load())
		if c == 0 {
			continue
		}
		if seen+c > rank {
			var lo, hi float64
			if b == 0 {
				lo, hi = 0, 0
			} else {
				lo = math.Exp2(float64(b - 1))
				hi = math.Exp2(float64(b)) - 1
			}
			frac := (rank - seen + 0.5) / c
			v := int64(lo + frac*(hi-lo))
			if m := h.Min(); v < m {
				v = m
			}
			if m := h.Max(); v > m {
				v = m
			}
			return v
		}
		seen += c
	}
	return h.Max()
}
