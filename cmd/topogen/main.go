// Command topogen emits topologies and demand files in the JSON formats
// cmd/ffcte consumes.
//
//	topogen -kind lnet -sites 8 -seed 1 -out net.json -demands d.json
//	topogen -kind snet -out snet.json
//	topogen -kind testbed -out tb.json
//	topogen -kind example4 -out ex.json
//	topogen -kind fattree -arity 4 -out ft.json
//	topogen -kind graphml -in Abilene.graphml -out abilene.json
//
// When -demands is given, a gravity-model demand matrix for one TE interval
// is written alongside the topology (scaled so plain TE satisfies ~99% of
// it, the paper's traffic scale 1.0, adjustable with -scale).
//
// Topology and demand generation draw from independent sub-streams of
// -seed, so the same seed yields the same topology bytes with or without
// -demands, and the same demands regardless of how much randomness the
// topology generator consumed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/faults"
	"ffc/internal/obs"
	"ffc/internal/sim"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
	"ffc/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind    = fs.String("kind", "lnet", "topology kind: lnet, snet, testbed, example4, fattree, graphml")
		sites   = fs.Int("sites", 8, "sites for lnet")
		arity   = fs.Int("arity", 4, "fat-tree arity (even)")
		inPath  = fs.String("in", "", "GraphML input file (for -kind graphml)")
		linkCap = fs.Float64("capacity", 10, "default link capacity (fattree/graphml)")
		seed    = fs.Int64("seed", 1, "random seed")
		outPath = fs.String("out", "", "topology output file (default stdout)")
		demPath = fs.String("demands", "", "also write a calibrated demand file here")
		scale   = fs.Float64("scale", 1.0, "traffic scale relative to the 99%-satisfied point")
		stats   = fs.Bool("stats", false, "print calibration-solver counters to stderr (with -demands)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *stats {
		obs.Enable()
	}

	topoRng := rand.New(rand.NewSource(faults.DeriveSeed(*seed, 0)))
	var net *topology.Network
	switch *kind {
	case "lnet":
		net = topology.LNet(topology.LNetConfig{Sites: *sites}, topoRng)
	case "snet":
		net = topology.SNet()
	case "testbed":
		net = topology.Testbed()
	case "example4":
		net = topology.Example4()
	case "fattree":
		net = topology.FatTree(*arity, *linkCap)
	case "graphml":
		if *inPath == "" {
			return fmt.Errorf("-kind graphml requires -in <file>")
		}
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		net, err = topology.ParseGraphML(f, *linkCap)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}
	if err := writeJSON(*outPath, net, stdout, stderr); err != nil {
		return err
	}

	if *demPath != "" {
		demRng := rand.New(rand.NewSource(faults.DeriveSeed(*seed, 1)))
		series := demand.Generate(net, demand.Config{Intervals: 3}, demRng)
		flows := sim.FlowsOf(series)
		set := tunnel.Layout(net, flows, tunnel.LayoutConfig{})
		solver := core.NewSolver(net, set, core.Options{MiceFraction: 0.01})
		k, err := sim.CalibrateScale(solver, series, 0.99, 2)
		if err != nil {
			return fmt.Errorf("calibrating: %w", err)
		}
		if err := writeJSON(*demPath, wire.EncodeDemands(net, series[0].Scale(k**scale)), stdout, stderr); err != nil {
			return err
		}
	}

	if *stats {
		obs.Default().WriteText(stderr)
	}
	return nil
}

func writeJSON(path string, v interface{}, stdout, stderr io.Writer) error {
	w := stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	if path != "" {
		fmt.Fprintf(stderr, "wrote %s\n", path)
	}
	return nil
}
