// Package faults models the failure processes and switch-update latency
// distributions used by the paper's evaluation (§8.1):
//
//   - data-plane failures: Poisson-like link and switch failure processes
//     calibrated to the paper's "a link fails every 30 minutes on average"
//     for L-Net, with failures persisting for one or more TE intervals;
//   - control-plane faults: per-switch configuration-update failures at the
//     0.1–1% rate the paper reports, plus empirical update-latency
//     distributions — the Realistic model follows B4's published RPC and
//     per-rule latencies (Fig 6a), the Optimistic model the paper's own
//     controlled lab measurements (Fig 6b).
//
// All sampling is deterministic in the caller-provided *rand.Rand.
package faults

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"ffc/internal/topology"
)

// LatencyModel is an empirical latency distribution represented as a
// piecewise-linear inverse CDF over (quantile, value) points.
type LatencyModel struct {
	// Points are (q, v) pairs with q ascending in [0,1].
	Q []float64
	V []time.Duration
}

// NewLatencyModel builds a model; the point lists must be equal-length,
// ascending, and span q=0..1.
func NewLatencyModel(q []float64, v []time.Duration) *LatencyModel {
	if len(q) != len(v) || len(q) < 2 || q[0] != 0 || q[len(q)-1] != 1 {
		panic("faults: malformed latency model")
	}
	if !sort.Float64sAreSorted(q) {
		panic("faults: quantiles not ascending")
	}
	return &LatencyModel{Q: q, V: v}
}

// Sample draws one latency.
func (m *LatencyModel) Sample(rng *rand.Rand) time.Duration {
	return m.Quantile(rng.Float64())
}

// Quantile returns the value at quantile p (piecewise-linear interpolation).
func (m *LatencyModel) Quantile(p float64) time.Duration {
	if p <= 0 {
		return m.V[0]
	}
	if p >= 1 {
		return m.V[len(m.V)-1]
	}
	i := sort.SearchFloat64s(m.Q, p)
	if i == 0 {
		return m.V[0]
	}
	q0, q1 := m.Q[i-1], m.Q[i]
	v0, v1 := float64(m.V[i-1]), float64(m.V[i])
	t := (p - q0) / (q1 - q0)
	return time.Duration(v0 + t*(v1-v0))
}

// SwitchModel bundles a control-plane behavior model (§8.1: Realistic vs
// Optimistic).
type SwitchModel struct {
	Name string
	// RPC is the per-update RPC delay distribution.
	RPC *LatencyModel
	// PerRule is the per-forwarding-rule update latency distribution.
	PerRule *LatencyModel
	// ConfigFailureRate is the probability one switch's configuration
	// update fails outright during a network update.
	ConfigFailureRate float64
	// RulesPerUpdate is the typical number of rules changed per switch per
	// network update (the paper: "commonly over 100 for L-Net").
	RulesPerUpdate int
}

// Realistic reproduces the B4-derived model: heavy RPC delays and per-rule
// latencies read off Figure 6(a), and a 1% configuration failure rate.
func Realistic() SwitchModel {
	return SwitchModel{
		Name: "Realistic",
		RPC: NewLatencyModel(
			[]float64{0, 0.10, 0.50, 0.75, 0.90, 0.99, 1},
			[]time.Duration{
				50 * time.Millisecond, 200 * time.Millisecond, time.Second,
				2 * time.Second, 3 * time.Second, 4500 * time.Millisecond, 5 * time.Second,
			}),
		PerRule: NewLatencyModel(
			[]float64{0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1},
			[]time.Duration{
				5 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
				300 * time.Millisecond, time.Second, 2 * time.Second,
				4 * time.Second, 5 * time.Second,
			}),
		ConfigFailureRate: 0.01,
		RulesPerUpdate:    100,
	}
}

// Optimistic reproduces the controlled-lab model of Figure 6(b): 10 ms
// median and ~200 ms worst-case per-rule latency, negligible RPC delay, and
// no configuration failures.
func Optimistic() SwitchModel {
	return SwitchModel{
		Name: "Optimistic",
		RPC: NewLatencyModel(
			[]float64{0, 0.5, 1},
			[]time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}),
		PerRule: NewLatencyModel(
			[]float64{0, 0.25, 0.50, 0.75, 0.90, 0.99, 1},
			[]time.Duration{
				2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
				30 * time.Millisecond, 60 * time.Millisecond, 150 * time.Millisecond,
				250 * time.Millisecond,
			}),
		ConfigFailureRate: 0,
		RulesPerUpdate:    100,
	}
}

// SampleUpdate draws the total time for one switch to apply a network
// update (RPC + rules × per-rule; the paper's §2.3 additive model), and
// whether the update fails outright.
func (m SwitchModel) SampleUpdate(rng *rand.Rand) (time.Duration, bool) {
	if rng.Float64() < m.ConfigFailureRate {
		return 0, true
	}
	d := m.RPC.Sample(rng)
	for i := 0; i < m.RulesPerUpdate; i++ {
		d += m.PerRule.Sample(rng)
	}
	return d, false
}

// FaultKind distinguishes data-plane fault types.
type FaultKind int8

// Data-plane fault kinds.
const (
	LinkFailure FaultKind = iota
	SwitchFailure
)

// Fault is one data-plane failure event.
type Fault struct {
	Kind FaultKind
	// Link is the physical link (canonical direction) for LinkFailure.
	Link topology.LinkID
	// Switch is the failed switch for SwitchFailure.
	Switch topology.SwitchID
	// At is the offset within the TE interval when the fault strikes.
	At time.Duration
	// DownFor is how many TE intervals the element stays down (≥1).
	DownFor int
}

// FailureModel is the data-plane failure process.
type FailureModel struct {
	// LinkMTBF is the mean time between link failures network-wide
	// (the paper's L-Net: 30 minutes).
	LinkMTBF time.Duration
	// SwitchMTBF is the network-wide mean time between switch failures.
	SwitchMTBF time.Duration
	// Interval is the TE interval length (5 minutes in the paper).
	Interval time.Duration
	// MinDown/MaxDown bound the repair time in intervals.
	MinDown, MaxDown int
}

// LNetFailures returns the failure process of §8.1 calibrated to L-Net's
// logs: a link failure every 30 minutes, switch failures an order of
// magnitude rarer, 5-minute TE intervals, repairs within 1–4 intervals.
func LNetFailures() FailureModel {
	return FailureModel{
		LinkMTBF:   30 * time.Minute,
		SwitchMTBF: 6 * time.Hour,
		Interval:   5 * time.Minute,
		MinDown:    1,
		MaxDown:    4,
	}
}

// SampleInterval draws the faults striking during one TE interval over net.
// The per-element probability divides the network-wide rate by the number
// of elements (the paper derives S-Net's rates from L-Net's the same way).
func (m FailureModel) SampleInterval(net *topology.Network, rng *rand.Rand) []Fault {
	var out []Fault
	var phys []topology.LinkID
	for _, l := range net.Links {
		if l.Twin == topology.None || l.ID < l.Twin {
			phys = append(phys, l.ID)
		}
	}
	if m.LinkMTBF > 0 && len(phys) > 0 {
		pNet := float64(m.Interval) / float64(m.LinkMTBF) // expected failures per interval
		pLink := pNet / float64(len(phys))
		for _, l := range phys {
			if rng.Float64() < pLink {
				out = append(out, Fault{
					Kind: LinkFailure, Link: l,
					At:      time.Duration(rng.Float64() * float64(m.Interval)),
					DownFor: m.sampleDown(rng),
				})
			}
		}
	}
	if m.SwitchMTBF > 0 && net.NumSwitches() > 0 {
		pNet := float64(m.Interval) / float64(m.SwitchMTBF)
		pSw := pNet / float64(net.NumSwitches())
		for _, sw := range net.Switches {
			if rng.Float64() < pSw {
				out = append(out, Fault{
					Kind: SwitchFailure, Switch: sw.ID,
					At:      time.Duration(rng.Float64() * float64(m.Interval)),
					DownFor: m.sampleDown(rng),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

func (m FailureModel) sampleDown(rng *rand.Rand) int {
	lo, hi := m.MinDown, m.MaxDown
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// PickFaults draws a uniformly random fault set of up to nLinks distinct
// physical links (canonical direction) and nSwitches distinct switches,
// deterministic in rng. Unlike SampleInterval it imposes no failure process —
// it is the "adversary picks any ≤k elements" draw property-based scenario
// generation needs (internal/prop seeds pre-down sets and post-install
// faults with it).
func PickFaults(net *topology.Network, rng *rand.Rand, nLinks, nSwitches int) ([]topology.LinkID, []topology.SwitchID) {
	var phys []topology.LinkID
	for _, l := range net.Links {
		if l.Twin == topology.None || l.ID < l.Twin {
			phys = append(phys, l.ID)
		}
	}
	if nLinks > len(phys) {
		nLinks = len(phys)
	}
	var links []topology.LinkID
	if nLinks > 0 {
		for _, i := range rng.Perm(len(phys))[:nLinks] {
			links = append(links, phys[i])
		}
		sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	}
	if nSwitches > net.NumSwitches() {
		nSwitches = net.NumSwitches()
	}
	var sws []topology.SwitchID
	if nSwitches > 0 {
		for _, i := range rng.Perm(net.NumSwitches())[:nSwitches] {
			sws = append(sws, topology.SwitchID(i))
		}
		sort.Slice(sws, func(i, j int) bool { return sws[i] < sws[j] })
	}
	return links, sws
}

// DeriveSeed deterministically derives an independent RNG seed for one
// shard (a TE interval, a scenario replay, ...) of a seeded computation.
// Serial and parallel executions that seed each shard's generator with
// DeriveSeed(base, shard) draw identical randomness per shard, which is
// what makes the harness's parallel paths bit-identical to the serial
// ones. The mix is SplitMix64 over the combined inputs.
func DeriveSeed(base, shard int64) int64 {
	z := uint64(base)*0x9e3779b97f4a7c15 + uint64(shard)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// ExpectedLinkFailuresPerInterval is a convenience for tests/calibration.
func (m FailureModel) ExpectedLinkFailuresPerInterval() float64 {
	if m.LinkMTBF == 0 {
		return 0
	}
	return float64(m.Interval) / float64(m.LinkMTBF)
}

// Median returns the model's 50th-percentile latency.
func (m *LatencyModel) Median() time.Duration { return m.Quantile(0.5) }

// Mean estimates the distribution mean by numeric integration.
func (m *LatencyModel) Mean() time.Duration {
	const steps = 1000
	var acc float64
	for i := 0; i < steps; i++ {
		acc += float64(m.Quantile((float64(i) + 0.5) / steps))
	}
	return time.Duration(math.Round(acc / steps))
}
