package lp

import (
	"math"
	"sort"
)

// WarmStart captures the final simplex basis of a solve so a follow-up
// Solve of a structurally identical (or merely similar) model can resume
// from it instead of cold-starting from the all-slack basis. Handles are
// expressed in the *original* model's index space — one status per
// structural column and one per row's slack — so they survive presolve:
// the solver maps them through the current presolve plan on the way in and
// back out on the way out.
//
// A handle is a basis *hint*, never a correctness requirement: the solver
// validates it against the target model (dimensions, bound changes,
// factorizability) and silently falls back to a cold start when it cannot
// be seated. Reusing a handle across models with different variable/row
// counts is therefore safe, just useless.
type WarmStart struct {
	nCols, nRows int
	// colStat[j] is the final status of structural column j; slackStat[i]
	// the status of row i's slack. Basic artificial variables (possible at
	// degenerate optima) are not recorded — the install pads the basis with
	// slacks instead.
	colStat   []varStatus
	slackStat []varStatus
}

// fits reports whether the handle matches m's dimensions.
func (ws *WarmStart) fits(m *Model) bool {
	return ws != nil && ws.nCols == len(m.cols) && ws.nRows == len(m.rows)
}

// captureWarm snapshots the state's final statuses in its model's space.
func (s *simplexState) captureWarm() *WarmStart {
	ws := &WarmStart{
		nCols:     s.nStruct,
		nRows:     s.m,
		colStat:   make([]varStatus, s.nStruct),
		slackStat: make([]varStatus, s.m),
	}
	copy(ws.colStat, s.status[:s.nStruct])
	copy(ws.slackStat, s.status[s.nStruct:s.nStruct+s.m])
	return ws
}

// restrictWarm maps a warm start given in the original index space into the
// reduced model's space (dropping statuses of presolved-away columns/rows).
// The caller has already checked ws against the original dimensions.
func (p *presolved) restrictWarm(ws *WarmStart) *WarmStart {
	if ws == nil {
		return nil
	}
	out := &WarmStart{
		nCols:     len(p.origCol),
		nRows:     len(p.origRow),
		colStat:   make([]varStatus, len(p.origCol)),
		slackStat: make([]varStatus, len(p.origRow)),
	}
	for nj, j := range p.origCol {
		out.colStat[nj] = ws.colStat[j]
	}
	for ni, i := range p.origRow {
		out.slackStat[ni] = ws.slackStat[i]
	}
	return out
}

// expandWarm maps a reduced-space warm start back to the original index
// space: presolved-away columns are fixed (nonbasic at their bound) and
// presolved-away rows are vacuous, so their slack is trivially "basic".
func (p *presolved) expandWarm(inner *WarmStart, m *Model) *WarmStart {
	out := &WarmStart{
		nCols:     len(m.cols),
		nRows:     len(m.rows),
		colStat:   make([]varStatus, len(m.cols)),
		slackStat: make([]varStatus, len(m.rows)),
	}
	for j := range out.colStat {
		out.colStat[j] = stAtLower
	}
	for i := range out.slackStat {
		out.slackStat[i] = stBasic
	}
	for nj, j := range p.origCol {
		out.colStat[j] = inner.colStat[nj]
	}
	for ni, i := range p.origRow {
		out.slackStat[i] = inner.slackStat[ni]
	}
	return out
}

// warmNonbasic resolves a remembered nonbasic status against the variable's
// *current* bounds (which may have changed since the basis was captured)
// and returns a valid status plus the value the variable parks at. A status
// that no longer makes sense — at-lower with lo now −∞, free with finite
// bounds — degrades to the nearest bound, exactly like the cold start.
func warmNonbasic(st varStatus, lo, hi float64) (varStatus, float64) {
	switch st {
	case stAtUpper:
		if !math.IsInf(hi, 1) {
			return stAtUpper, hi
		}
	case stAtLower:
		if !math.IsInf(lo, -1) {
			return stAtLower, lo
		}
	case stFreeZero:
		if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
			return stFreeZero, 0
		}
	}
	v := nearestBound(lo, hi)
	switch {
	case !math.IsInf(lo, -1) && v == lo:
		return stAtLower, lo
	case !math.IsInf(hi, 1) && v == hi:
		return stAtUpper, hi
	default:
		return stFreeZero, 0
	}
}

// installWarm seats ws as the starting basis: nonbasic statuses are
// revalidated against the current bounds, the basic set is trimmed/padded
// to exactly m members, the basis is factorized, and basic variables whose
// values violate their (possibly new) bounds are repaired row by row —
// demoted to a bound and replaced by a slack, or by a fresh artificial when
// no slack can pivot, so Phase 1 work is confined to the repaired rows.
// Returns false after restoring an all-nonbasic state when the basis cannot
// be seated (singular even after repairs, or repairs fail to converge); the
// caller then falls back to the diagonal crash, which retains the warm
// *nonbasic* statuses so rows they already satisfy skip Phase 1 too.
func (s *simplexState) installWarm(ws *WarmStart, model *Model) bool {
	m, nS := s.m, s.nStruct
	basisSet := make([]int, 0, m)
	for j := 0; j < nS+m; j++ {
		var st varStatus
		if j < nS {
			st = ws.colStat[j]
		} else {
			st = ws.slackStat[j-nS]
		}
		if st == stBasic {
			s.status[j] = stBasic
			s.nbVal[j] = 0
			basisSet = append(basisSet, j)
			continue
		}
		s.status[j], s.nbVal[j] = warmNonbasic(st, s.lo[j], s.hi[j])
	}
	// Trim extras (a handle restricted through a tighter presolve can carry
	// more basics than the reduced model has rows); slacks sit at the tail
	// of basisSet, so trimming from the end keeps the structural basics that
	// carry the interesting values.
	for len(basisSet) > m {
		j := basisSet[len(basisSet)-1]
		basisSet = basisSet[:len(basisSet)-1]
		s.status[j], s.nbVal[j] = warmNonbasic(stAtLower, s.lo[j], s.hi[j])
	}
	// Pad with nonbasic slacks (basic artificials were dropped at capture;
	// expansion through presolve can also leave the set short).
	for i := 0; i < m && len(basisSet) < m; i++ {
		if sj := nS + i; s.status[sj] != stBasic {
			s.status[sj] = stBasic
			s.nbVal[sj] = 0
			basisSet = append(basisSet, sj)
		}
	}
	// Assign basis positions: slack i prefers position i (the product-form
	// refactor pairs positions with pivot rows, so this keeps the pairing
	// natural); everything else fills the gaps.
	used := make([]bool, m)
	var rest []int
	for _, j := range basisSet {
		if j >= nS && !used[j-nS] {
			s.basis[j-nS] = j
			used[j-nS] = true
		} else {
			rest = append(rest, j)
		}
	}
	ri := 0
	for i := 0; i < m; i++ {
		if !used[i] {
			s.basis[i] = rest[ri]
			ri++
		}
	}
	s.n = len(s.colIdx)

	usePFI := m >= pfiThreshold
	if model.forceRep == 1 {
		usePFI = false
	} else if model.forceRep == 2 {
		usePFI = true
	}
	if usePFI {
		s.rep = newPfiRep(m)
	} else {
		s.rep = newDenseRep(m)
	}
	refac := func() bool {
		s.rep.refactor(s)
		s.computeXB()
		return s.consistent()
	}
	if !refac() {
		s.abortWarm()
		return false
	}

	// Repair loop: each round demotes out-of-bound basic variables to their
	// violated bound and replaces them with a variable that can actually
	// hold the resulting value — a nonbasic slack whose predicted entering
	// value fits its own bounds, or else a fresh artificial whose column
	// sign is chosen so it enters nonnegative. Each repair is a full
	// ratio-test-style exchange: the representation gets the elementary
	// pivot AND xB is updated incrementally (xB ← xB − t·w, entering value
	// at position i), so the repair exactly zeroes its row's violation and
	// later repairs in the same round see current values. Batching against
	// a stale B⁻¹ instead picks dead pivots and lands on a singular
	// factorization; ignoring the entering value seats equality-row slacks
	// that are forced straight back out of bounds, and the loop thrashes.
	// Feasible warm bases break out immediately with zero repairs;
	// bound/RHS drift typically converges in a round or two.
	rho := make([]float64, m)
	w := make([]float64, m)
	for round := 0; ; round++ {
		var bad []int
		for i := 0; i < m; i++ {
			j := s.basis[i]
			if s.xB[i] < s.lo[j]-feasTol || s.xB[i] > s.hi[j]+feasTol {
				bad = append(bad, i)
			}
		}
		sort.Slice(bad, func(a, b int) bool {
			return s.violation(bad[a]) > s.violation(bad[b])
		})
		repaired := 0
		for _, i := range bad {
			j := s.basis[i]
			if s.xB[i] < s.lo[j]-feasTol || s.xB[i] > s.hi[j]+feasTol {
				s.repairRow(i, rho, w, round >= forceArtifRound)
				repaired++
				// Long runs of elementary pivots erode the representation
				// (and with it the t = viol/w[i] predictions the repairs
				// rely on); refactor mid-round on the rep's usual schedule.
				if s.rep.shouldRefactor() && !refac() {
					s.abortWarm()
					return false
				}
			}
		}
		if repaired == 0 {
			break
		}
		s.stats.WarmRepairs += repaired
		// Refactor and recompute: incremental updates accumulate roundoff,
		// and the recompute is also what surfaces any rows knocked out of
		// bounds by this round's exchanges for the next pass.
		if !refac() {
			s.abortWarm()
			return false
		}
		if round >= 50*forceArtifRound {
			// Unreachable in theory once artificials are forced — each
			// forced exchange permanently converts a basis position — but
			// cheap insurance against numerical pathologies.
			s.abortWarm()
			return false
		}
	}
	// Any artificial introduced by a repair must be driven (back) to zero
	// before the real objective runs.
	s.phase1 = s.nArtif > 0
	return true
}

// violation returns how far basis position i sits outside its bounds.
func (s *simplexState) violation(i int) float64 {
	j := s.basis[i]
	if s.xB[i] > s.hi[j] {
		return s.xB[i] - s.hi[j]
	}
	return s.lo[j] - s.xB[i]
}

// forceArtifRound is the repair round after which repairRow stops trying
// slack replacements and installs artificials directly. Slack-preferred
// exchanges give the cheapest Phase 1 but can chase each other's
// perturbations on hard drifts; forced artificials make every subsequent
// exchange permanent (an artificial basis position never re-violates — its
// column sign just flips), so the loop provably terminates with the warm
// basis intact instead of falling all the way back to a cold start.
const forceArtifRound = 8

// repairRow fixes basis position i whose basic value violates its bounds
// with a ratio-test-style exchange: the basic j leaves to its violated
// bound β, an entering column e moves by t = (xB[i]−β)/w[i] (w = B⁻¹·a_e),
// and all basic values update as xB ← xB − t·w with the entering value
// nbVal_e + t landing at position i. Because t is known before committing,
// the replacement is chosen by where it ENDS UP, not just by pivot size:
// the slack with the best-conditioned pivot whose predicted value fits its
// own bounds wins, and when no slack qualifies (the row is genuinely
// infeasible at the current nonbasic values — e.g. an equality row whose
// fixed slack has no room) a fresh artificial enters, its column sign
// picked so its value t is nonnegative. A basic artificial driven negative
// by someone else's exchange just has its column negated (an elementary
// pivot by −e_i), which flips its value back positive.
// When forceArtif is set the slack search is skipped entirely.
// rho and w are caller-provided scratch of length m.
func (s *simplexState) repairRow(i int, rho, w []float64, forceArtif bool) {
	j := s.basis[i]
	if j >= s.nStruct+s.m {
		// Negating the artificial's column is B → B·diag(…,−1,…), i.e. the
		// elementary pivot with entering column B⁻¹·(−a_j) = −e_i; only
		// component i of xB changes, to −xB[i].
		s.colCoef[j][0] = -s.colCoef[j][0]
		for r := range w {
			w[r] = 0
		}
		w[i] = -1
		s.rep.pivot(i, w, []int32{int32(i)})
		s.xB[i] = -s.xB[i]
		return
	}
	var beta float64
	if s.xB[i] > s.hi[j] {
		s.status[j], s.nbVal[j] = warmNonbasic(stAtUpper, s.lo[j], s.hi[j])
		beta = s.hi[j]
	} else {
		s.status[j], s.nbVal[j] = warmNonbasic(stAtLower, s.lo[j], s.hi[j])
		beta = s.lo[j]
	}
	viol := s.xB[i] - beta
	for r := range rho {
		rho[r] = 0
	}
	s.rep.btranUnit(i, rho)
	// commit FTRANs the entering column, applies the elementary pivot to
	// the representation, and performs the xB update. For a slack e_r the
	// pivot element w[i] equals rho[r], so candidates are screened on rho
	// and the (more expensive) FTRAN runs only for the winner.
	commit := func(col int, enterVal float64) bool {
		for r := range w {
			w[r] = 0
		}
		pat := s.rep.ftran(s.colIdx[col], s.colCoef[col], w)
		if math.Abs(w[i]) <= pivotTol {
			return false
		}
		t := viol / w[i]
		s.rep.pivot(i, w, pat)
		for _, r := range pat {
			s.xB[r] -= t * w[r]
		}
		if len(pat) == 0 { // dense ftran path reports no pattern
			for r := 0; r < s.m; r++ {
				s.xB[r] -= t * w[r]
			}
		}
		s.basis[i] = col
		s.xB[i] = enterVal
		return true
	}
	// Prefer the nonbasic slack with the strongest pivot among those whose
	// predicted entering value stays within their own bounds.
	bestR, best := -1, pivotTol
	if forceArtif {
		bestR = -2
	}
	for r := 0; bestR != -2 && r < s.m; r++ {
		sj := s.nStruct + r
		if s.status[sj] == stBasic || math.Abs(rho[r]) <= pivotTol {
			continue
		}
		v := s.nbVal[sj] + viol/rho[r]
		if v < s.lo[sj] || v > s.hi[sj] {
			continue
		}
		if math.Abs(rho[r]) > best {
			bestR, best = r, math.Abs(rho[r])
		}
	}
	if bestR >= 0 {
		sj := s.nStruct + bestR
		enterVal := s.nbVal[sj] + viol/rho[bestR]
		old := s.status[sj]
		s.status[sj] = stBasic
		if commit(sj, enterVal) {
			s.nbVal[sj] = 0
			return
		}
		s.status[sj] = old
	}
	// No slack can hold the row: bring in an artificial on the strongest
	// pivot row, signed so it enters at a nonnegative value.
	bestR, best = i, 0
	for r := 0; r < s.m; r++ {
		if v := math.Abs(rho[r]); v > best {
			bestR, best = r, v
		}
	}
	sg := 1.0
	if viol/rho[bestR] < 0 {
		sg = -1
	}
	aj := len(s.colIdx)
	s.colIdx = append(s.colIdx, []int32{int32(bestR)})
	s.colCoef = append(s.colCoef, []float64{sg})
	s.lo = append(s.lo, 0)
	s.hi = append(s.hi, Inf)
	s.cost = append(s.cost, 0)
	s.p1cost = append(s.p1cost, 1)
	s.status = append(s.status, stBasic)
	s.nbVal = append(s.nbVal, 0)
	s.nArtif++
	s.n = len(s.colIdx)
	if !commit(aj, viol/(sg*rho[bestR])) {
		// e_bestR with bestR = argmax |rho| cannot have a zero pivot, but
		// stay safe: leave the artificial nonbasic at zero and keep the old
		// basis column; the round's refactor/consistency check decides.
		s.status[aj] = stAtLower
		s.nArtif--
		s.basis[i] = j
		s.status[j] = stBasic
	}
}

// abortWarm undoes a failed install: appended artificials are dropped and
// every basic variable is demoted to a bound, leaving a valid all-nonbasic
// state (with the warm nonbasic statuses intact) for the diagonal crash.
func (s *simplexState) abortWarm() {
	total := s.nStruct + s.m
	s.colIdx = s.colIdx[:total]
	s.colCoef = s.colCoef[:total]
	s.lo, s.hi = s.lo[:total], s.hi[:total]
	s.cost, s.p1cost = s.cost[:total], s.p1cost[:total]
	s.status, s.nbVal = s.status[:total], s.nbVal[:total]
	s.nArtif = 0
	s.n = total
	for j := 0; j < total; j++ {
		if s.status[j] == stBasic {
			s.status[j], s.nbVal[j] = warmNonbasic(stAtLower, s.lo[j], s.hi[j])
		}
	}
	s.rep = nil
}

// consistent verifies the factorized basic solution actually satisfies
// A·x = rhs and is finite. A structurally singular warm basis survives
// factorization via tiny fallback pivots; the residual exposes it.
func (s *simplexState) consistent() bool {
	act := make([]float64, s.m)
	for j := 0; j < s.n; j++ {
		if s.status[j] == stBasic {
			continue
		}
		v := s.nbVal[j]
		if v == 0 {
			continue
		}
		for k, r := range s.colIdx[j] {
			act[r] += s.colCoef[j][k] * v
		}
	}
	for i, j := range s.basis {
		v := s.xB[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		if v == 0 {
			continue
		}
		for k, r := range s.colIdx[j] {
			act[r] += s.colCoef[j][k] * v
		}
	}
	for i := range act {
		if math.Abs(act[i]-s.rhs[i]) > 1e-6*(1+math.Abs(s.rhs[i])) {
			return false
		}
	}
	return true
}
