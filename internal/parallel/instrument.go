package parallel

import (
	"time"

	"ffc/internal/obs"
)

// padded keeps each worker's busy-time accumulator on its own cache line
// so the instrumented path doesn't introduce false sharing between
// workers.
type padded struct {
	busy time.Duration
	_    [56]byte
}

// ForEachWorkerObs is ForEachWorker plus shard observability. When the
// obs layer is disabled it forwards directly — the only overhead is one
// atomic load. When enabled it additionally records, under the given
// metric name prefix:
//
//	<name>.items        counter: indices processed
//	<name>.calls        counter: fan-out invocations
//	<name>.worker_busy  histogram: per-worker busy time (ns), one sample
//	                    per worker per call — shard imbalance shows up
//	                    as the min/max spread
func ForEachWorkerObs(name string, n, w int, fn func(worker, i int)) {
	if !obs.Enabled() || n == 0 {
		ForEachWorker(n, w, fn)
		return
	}
	eff := Workers(w)
	if eff > n {
		eff = n
	}
	busy := make([]padded, eff)
	ForEachWorker(n, w, func(worker, i int) {
		t0 := time.Now()
		fn(worker, i)
		busy[worker].busy += time.Since(t0)
	})
	reg := obs.Default()
	reg.Counter(name + ".items").Add(int64(n))
	reg.Counter(name + ".calls").Inc()
	h := reg.Histogram(name + ".worker_busy")
	for i := range busy {
		if busy[i].busy > 0 {
			h.ObserveDuration(busy[i].busy)
		}
	}
}
