package ffc

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/experiments"
	"ffc/internal/sim"
)

// S-Net environment for the warm-start measurements (the paper's 12-site
// inter-datacenter WAN), shared across benchmarks like getBenchEnv.
var (
	snetEnvOnce sync.Once
	snetEnv     *experiments.Env
	snetEnvErr  error
)

func getSNetEnv(tb testing.TB) *experiments.Env {
	snetEnvOnce.Do(func() {
		snetEnv, snetEnvErr = experiments.NewSNet(experiments.EnvConfig{Intervals: 8})
	})
	if snetEnvErr != nil {
		tb.Fatal(snetEnvErr)
	}
	return snetEnv
}

// resolveSeries builds the re-solve workload: a fresh S-Net demand series at
// the paper's 5-minute TE cadence with a modest per-interval drift
// (σ = 5% lognormal noise on top of the diurnal cycle), scaled so interval 0
// carries the same total load as the calibrated experiment series. This is
// the regime warm starting targets — frequent re-solves under drift — as
// opposed to the coarse high-noise snapshots the fault experiments use.
func resolveSeries(tb testing.TB, intervals int) demand.Series {
	e := getSNetEnv(tb)
	gen := demand.Generate(e.Net, demand.Config{Intervals: intervals, NoiseSigma: 0.05}, rand.New(rand.NewSource(61)))
	ref := sim.ScaleSeries(e.Series, e.Scale1)[0].Total()
	return sim.ScaleSeries(gen, ref/gen[0].Total())
}

// resolveChain solves the chain at ke=2 serially and returns per-interval
// objectives plus total simplex iterations over the re-solves (interval 0,
// the unavoidable cold build, is excluded from the iteration count for both
// modes). Mice classification is disabled: it re-buckets flows by demand
// every interval, which changes the LP's column set and would force a
// rebuild (and warm-start fallback) even when nothing structural changed.
func resolveChain(tb testing.TB, series demand.Series, warm bool) (objs []float64, iters, phase1 int) {
	e := getSNetEnv(tb)
	opts := e.Opts
	opts.MiceFraction = 0
	solver := core.NewSolver(e.Net, e.Tun, opts)
	solve := solver.Solve
	if warm {
		solve = solver.NewSession().Solve
	}
	for t, dem := range series {
		st, stats, err := solve(core.Input{Demands: dem, Prot: core.Protection{Ke: 2}})
		if err != nil {
			tb.Fatalf("interval %d: %v", t, err)
		}
		objs = append(objs, st.TotalRate())
		if t > 0 {
			iters += stats.Iters
			phase1 += stats.LP.Phase1Iters
		}
	}
	return objs, iters, phase1
}

// TestWarmResolveIterationSavingsSNet is the acceptance gate for the warm
// start: across the S-Net re-solve chain, warm re-solves must reach the
// same optima as cold ones in at most half the simplex iterations.
func TestWarmResolveIterationSavingsSNet(t *testing.T) {
	if testing.Short() {
		t.Skip("S-Net chain is slow; skipped with -short")
	}
	series := resolveSeries(t, 6)
	coldObjs, coldIters, _ := resolveChain(t, series, false)
	warmObjs, warmIters, warmP1 := resolveChain(t, series, true)
	for i := range coldObjs {
		if d := math.Abs(coldObjs[i] - warmObjs[i]); d > 1e-6*(1+coldObjs[i]) {
			t.Fatalf("interval %d: warm objective %g != cold %g", i, warmObjs[i], coldObjs[i])
		}
	}
	if coldIters == 0 {
		t.Fatal("cold chain reported zero iterations")
	}
	if 2*warmIters > coldIters {
		t.Fatalf("warm re-solves used %d iterations vs %d cold — less than the required 2x reduction", warmIters, coldIters)
	}
	t.Logf("re-solve iterations: cold %d, warm %d (%.1fx, warm phase1 %d)",
		coldIters, warmIters, float64(coldIters)/float64(warmIters), warmP1)
}

// BenchmarkResolveWarmVsCold times one full S-Net re-solve chain per op,
// cold versus warm-started, and reports the simplex iterations spent on the
// re-solves as a metric so perf tracking sees the work reduction, not just
// wall clock.
func BenchmarkResolveWarmVsCold(b *testing.B) {
	series := resolveSeries(b, 6)
	for _, mode := range []struct {
		name string
		warm bool
	}{{"cold", false}, {"warm", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ResetTimer()
			var iters, phase1 int
			for i := 0; i < b.N; i++ {
				_, it, p1 := resolveChain(b, series, mode.warm)
				iters, phase1 = it, p1
			}
			b.ReportMetric(float64(iters), "iters/chain")
			b.ReportMetric(float64(phase1), "phase1/chain")
		})
	}
}
