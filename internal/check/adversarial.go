package check

import (
	"math"
	"math/rand"
)

// adversarialData is the bounded data-plane search for topologies whose
// exact case count is out of reach: a greedy pass grows one fault set by
// repeatedly failing whichever single additional element leaves the worst
// residual capacity, then seeded random restarts (each polished by a
// one-pass swap hill-climb) probe fault sets the greedy's myopia misses.
// Any violation it reports is a real, fully evaluated fault case; an OK is
// evidence, not a proof — the Certificate carries Exact=false.
func (c *checker) adversarialData(rng *rand.Rand) searchResult {
	res := searchResult{slack: math.Inf(1), slackLink: -1}
	ke, kv := c.p.Prot.Ke, c.p.Prot.Kv

	curP := make([]int, 0, ke)
	curS := make([]int, 0, kv)
	eval := func() (caseResult, bool) {
		for _, pi := range curP {
			c.downP[pi] = true
		}
		for _, si := range curS {
			c.downS[si] = true
		}
		cr := c.evalData(c.downP, c.downS)
		for _, pi := range curP {
			c.downP[pi] = false
		}
		for _, si := range curS {
			c.downS[si] = false
		}
		return cr, c.note(&res, cr, curP, curS)
	}

	// The no-fault case is always checked.
	if _, cont := eval(); !cont {
		return res
	}

	// Greedy: at each step try every single-element addition within the
	// remaining budget and commit the one with the worst residual slack.
	inP := make([]bool, len(c.phys))
	inS := make([]bool, len(c.sws))
	for len(curP) < min(ke, len(c.activeP)) || len(curS) < min(kv, len(c.activeS)) {
		bestSlack := math.Inf(1)
		bestIdx, bestIsSwitch := -1, false
		if len(curP) < ke {
			for _, pi := range c.activeP {
				if inP[pi] {
					continue
				}
				curP = append(curP, pi)
				cr, cont := eval()
				curP = curP[:len(curP)-1]
				if !cont {
					return res
				}
				if cr.slack < bestSlack {
					bestSlack, bestIdx, bestIsSwitch = cr.slack, pi, false
				}
			}
		}
		if len(curS) < kv {
			for _, si := range c.activeS {
				if inS[si] {
					continue
				}
				curS = append(curS, si)
				cr, cont := eval()
				curS = curS[:len(curS)-1]
				if !cont {
					return res
				}
				if cr.slack < bestSlack {
					bestSlack, bestIdx, bestIsSwitch = cr.slack, si, true
				}
			}
		}
		if bestIdx < 0 {
			break
		}
		if bestIsSwitch {
			curS = append(curS, bestIdx)
			inS[bestIdx] = true
		} else {
			curP = append(curP, bestIdx)
			inP[bestIdx] = true
		}
	}

	// Random restarts: sample a maximal fault set, then one swap pass per
	// element trying a few random replacements, keeping improvements.
	for r := 0; r < c.p.Restarts; r++ {
		curP = sampleInto(curP[:0], c.activeP, ke, rng)
		curS = sampleInto(curS[:0], c.activeS, kv, rng)
		cr, cont := eval()
		if !cont {
			return res
		}
		best := cr.slack
		for i := range curP {
			for try := 0; try < 3 && len(c.activeP) > len(curP); try++ {
				alt := c.activeP[rng.Intn(len(c.activeP))]
				if containsInt(curP, alt) {
					continue
				}
				old := curP[i]
				curP[i] = alt
				cr, cont := eval()
				if !cont {
					return res
				}
				if cr.slack < best {
					best = cr.slack
				} else {
					curP[i] = old
				}
			}
		}
		for i := range curS {
			for try := 0; try < 3 && len(c.activeS) > len(curS); try++ {
				alt := c.activeS[rng.Intn(len(c.activeS))]
				if containsInt(curS, alt) {
					continue
				}
				old := curS[i]
				curS[i] = alt
				cr, cont := eval()
				if !cont {
					return res
				}
				if cr.slack < best {
					best = cr.slack
				} else {
					curS[i] = old
				}
			}
		}
	}
	return res
}

// sampleInto fills dst with up to k distinct elements of pool, uniformly.
func sampleInto(dst, pool []int, k int, rng *rand.Rand) []int {
	if k > len(pool) {
		k = len(pool)
	}
	perm := rng.Perm(len(pool))
	for i := 0; i < k; i++ {
		dst = append(dst, pool[perm[i]])
	}
	return dst
}

func containsInt(sl []int, v int) bool {
	for _, x := range sl {
		if x == v {
			return true
		}
	}
	return false
}
