// Package demand generates and manipulates traffic demand for TE intervals
// (§8.1 of the paper): ingress-egress flows with a gravity-model base rate,
// diurnal variation and noise across 5-minute intervals, and a three-way
// priority partition (interactive / deadline / background) for the
// multi-priority experiments.
//
// Absolute units are arbitrary: experiments calibrate a global scale factor
// so that "99% of demands per interval are satisfied" defines traffic scale
// 1.0 (well-utilized), with 0.5 and 2.0 modelling well- and
// under-provisioned networks.
package demand

import (
	"math"
	"math/rand"
	"sort"

	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// Matrix is the demand of every flow in one TE interval.
type Matrix map[tunnel.Flow]float64

// Total sums all demands (in deterministic flow order, so repeated runs
// accumulate identical floating-point results).
func (m Matrix) Total() float64 {
	var s float64
	for _, f := range m.Flows() {
		s += m[f]
	}
	return s
}

// Scale returns a copy with every demand multiplied by k.
func (m Matrix) Scale(k float64) Matrix {
	out := make(Matrix, len(m))
	for f, v := range m {
		out[f] = v * k
	}
	return out
}

// Clone deep-copies the matrix.
func (m Matrix) Clone() Matrix { return m.Scale(1) }

// Flows returns the matrix's flows in deterministic order.
func (m Matrix) Flows() []tunnel.Flow {
	fs := make([]tunnel.Flow, 0, len(m))
	for f := range m {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Src != fs[j].Src {
			return fs[i].Src < fs[j].Src
		}
		return fs[i].Dst < fs[j].Dst
	})
	return fs
}

// Series is a sequence of per-interval matrices.
type Series []Matrix

// Config parameterizes the generator.
type Config struct {
	// Intervals is the number of TE intervals to generate. Default 48.
	Intervals int
	// IntervalMinutes is the TE interval length. Default 5 (the paper's).
	IntervalMinutes int
	// EdgeSwitch selects which switch index within each site terminates
	// flows (flows are aggregated site-pair traffic entering at one
	// WAN-facing switch). Default 0.
	EdgeSwitch int
	// DiurnalAmplitude is the relative amplitude of the daily cycle.
	// Default 0.3.
	DiurnalAmplitude float64
	// NoiseSigma is the lognormal noise σ per interval. Default 0.15.
	NoiseSigma float64
	// GravityExponent attenuates demand with distance. Default 0.5.
	GravityExponent float64
}

func (c *Config) fill() {
	if c.Intervals == 0 {
		c.Intervals = 48
	}
	if c.IntervalMinutes == 0 {
		c.IntervalMinutes = 5
	}
	if c.DiurnalAmplitude == 0 {
		c.DiurnalAmplitude = 0.3
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.15
	}
	if c.GravityExponent == 0 {
		c.GravityExponent = 0.5
	}
}

// Generate builds a demand series over net: one flow per ordered site pair,
// terminating at each site's EdgeSwitch-th switch, with gravity-model base
// rates modulated by a site-local diurnal cycle and lognormal noise.
// The output is deterministic in rng.
func Generate(net *topology.Network, cfg Config, rng *rand.Rand) Series {
	cfg.fill()

	// Collect sites in first-appearance order and their edge switches.
	type site struct {
		name  string
		sw    topology.SwitchID
		mass  float64
		phase float64
	}
	var sites []site
	seen := map[string]int{}
	for _, s := range net.Switches {
		if _, ok := seen[s.Site]; !ok {
			seen[s.Site] = len(sites)
			sites = append(sites, site{name: s.Site, sw: s.ID})
		}
	}
	// Edge switch: the cfg.EdgeSwitch-th switch of the site (clamped).
	counts := map[string]int{}
	for _, s := range net.Switches {
		if counts[s.Site] == cfg.EdgeSwitch {
			sites[seen[s.Site]].sw = s.ID
		}
		counts[s.Site]++
	}
	for i := range sites {
		sites[i].mass = math.Exp(rng.NormFloat64() * 0.6)
		sites[i].phase = rng.Float64()
	}

	// Gravity base matrix.
	base := make(Matrix)
	var maxBase float64
	for i := range sites {
		for j := range sites {
			if i == j {
				continue
			}
			d := net.GeoDistanceKm(sites[i].sw, sites[j].sw)
			g := sites[i].mass * sites[j].mass / math.Pow(1+d/1000, cfg.GravityExponent)
			base[tunnel.Flow{Src: sites[i].sw, Dst: sites[j].sw}] = g
			if g > maxBase {
				maxBase = g
			}
		}
	}
	for f := range base {
		base[f] /= maxBase // normalize to (0, 1]
	}

	intervalsPerDay := float64(24*60) / float64(cfg.IntervalMinutes)
	series := make(Series, cfg.Intervals)
	for t := range series {
		m := make(Matrix, len(base))
		for i := range sites {
			for j := range sites {
				if i == j {
					continue
				}
				f := tunnel.Flow{Src: sites[i].sw, Dst: sites[j].sw}
				diurnal := 1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*(float64(t)/intervalsPerDay+sites[i].phase))
				noise := math.Exp(rng.NormFloat64() * cfg.NoiseSigma)
				m[f] = base[f] * diurnal * noise
			}
		}
		series[t] = m
	}
	return series
}

// Priority identifies a traffic class, higher value = higher priority.
type Priority int

// Priority levels, following SWAN's service classes (§8.1).
const (
	Low  Priority = iota // background (e.g. replication): congestion-tolerant
	Med                  // deadline-driven transfers
	High                 // interactive: loss/delay sensitive
	NumPriorities
)

func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Med:
		return "med"
	case Low:
		return "low"
	}
	return "?"
}

// Split is a per-flow priority composition; fractions sum to 1.
type Split struct {
	High, Med, Low float64
}

// RandomSplits draws a stable per-flow priority mix: high is the smallest
// share (interactive traffic is a minority, keeping FFC's high-priority
// overhead affordable, per §8.2's recommendation).
func RandomSplits(flows []tunnel.Flow, rng *rand.Rand) map[tunnel.Flow]Split {
	out := make(map[tunnel.Flow]Split, len(flows))
	for _, f := range flows {
		h := 0.10 + rng.Float64()*0.15 // 10–25%
		m := 0.20 + rng.Float64()*0.20 // 20–40%
		out[f] = Split{High: h, Med: m, Low: 1 - h - m}
	}
	return out
}

// ByPriority partitions a matrix into [Low, Med, High] matrices (indexable
// by Priority) according to splits. Flows absent from splits go entirely to
// Low.
func ByPriority(m Matrix, splits map[tunnel.Flow]Split) [NumPriorities]Matrix {
	var out [NumPriorities]Matrix
	for p := range out {
		out[p] = make(Matrix, len(m))
	}
	for f, d := range m {
		s, ok := splits[f]
		if !ok {
			s = Split{Low: 1}
		}
		out[High][f] = d * s.High
		out[Med][f] = d * s.Med
		out[Low][f] = d * s.Low
	}
	return out
}
