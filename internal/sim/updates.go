package sim

import (
	"math/rand"
	"sort"
	"time"

	"ffc/internal/faults"
)

// UpdateExecConfig parameterizes the §8.5 congestion-free update execution
// simulation (Figure 16).
type UpdateExecConfig struct {
	// Steps is the number of configuration steps in the update chain.
	Steps int
	// Switches is how many switches each step must reconfigure.
	Switches int
	// Kc is the cumulative number of faults FFC tolerates; 0 models the
	// non-FFC baseline, where every switch of a step must confirm before
	// the next step starts.
	Kc int
	// Model is the switch behavior model.
	Model faults.SwitchModel
	// Deadline caps the simulated update duration (the paper waits at most
	// one TE interval, 300 s).
	Deadline time.Duration
}

// SimulateUpdateExecution plays out one multi-step update and returns how
// long it took (capped at Deadline).
//
// Each switch applies the chain's steps sequentially; a failed update is
// detected after one second and retried until it succeeds. Without FFC the
// controller may only issue step i+1 once every switch confirmed step i —
// the slowest switch gates the whole chain. With FFC (kc > 0) the
// controller proceeds once all but kc switches have confirmed (the paper's
// §5.2 guarantee makes that transition congestion-free), and the update
// completes when all but kc switches have applied the final step.
func SimulateUpdateExecution(cfg UpdateExecConfig, rng *rand.Rand) time.Duration {
	if cfg.Deadline == 0 {
		cfg.Deadline = 300 * time.Second
	}
	const retryDetect = time.Second
	n := cfg.Switches
	finish := make([]time.Duration, n) // per-switch completion of the last issued step
	var issue time.Duration            // when the current step was issued
	for step := 0; step < cfg.Steps; step++ {
		for s := 0; s < n; s++ {
			start := finish[s]
			if issue > start {
				start = issue
			}
			d, failed := cfg.Model.SampleUpdate(rng)
			for failed {
				var rd time.Duration
				rd, failed = cfg.Model.SampleUpdate(rng)
				d += retryDetect + rd
			}
			finish[s] = start + d
		}
		sorted := append([]time.Duration(nil), finish...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		need := n - cfg.Kc
		if need < 1 {
			need = 1
		}
		issue = sorted[need-1] // step s+1 may be issued now
		if issue >= cfg.Deadline {
			return cfg.Deadline
		}
	}
	return issue
}
