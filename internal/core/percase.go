package core

import (
	"fmt"
	"sort"

	"ffc/internal/lp"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// SolvePerCaseOptimal implements the comparison point of §9's related work
// (Suchara et al.): instead of one traffic spread plus proportional
// rescaling, the ingress switches hold a *precomputed optimal split per
// anticipated failure case*. Rates {bf} are shared across cases (the rate
// limiter does not react to failures); per-tunnel splits may differ
// arbitrarily per case. The result upper-bounds every proactive
// rescaling scheme on the same case set — the gap to FFC's single
// configuration is the price of commodity-switch proportional rescaling,
// which the paper argues is small for disjoint tunnel layouts.
//
// cases lists the anticipated fault sets; the no-fault case is always
// included. Each case's physical link failures take both directions of a
// duplex link, as everywhere in this repository.
func (s *Solver) SolvePerCaseOptimal(in Input, cases []FailureCase) (*State, *Stats, error) {
	model := lp.NewModel()
	flows := in.Demands.Flows()

	// Shared rates and base-case allocations.
	bVar := map[tunnel.Flow]lp.Var{}
	base := map[tunnel.Flow][]lp.Var{}
	obj := lp.NewExpr()
	for _, f := range flows {
		d := in.Demands[f]
		if d <= 0 || len(s.Tun.Tunnels(f)) == 0 {
			continue
		}
		bVar[f] = model.NewVar(fmt.Sprintf("b[%v]", f), 0, d)
		obj.Add(1, bVar[f])
		ts := s.Tun.Tunnels(f)
		vars := make([]lp.Var, len(ts))
		for i := range ts {
			vars[i] = model.NewVar(fmt.Sprintf("a[%v,%d]", f, i), 0, lp.Inf)
		}
		base[f] = vars
		cover := lp.NewExpr()
		for _, v := range vars {
			cover.Add(1, v)
		}
		model.AddGE(cover.Add(-1, bVar[f]), 0)
	}
	s.addCaseCapacity(model, in, base, nil, nil)

	// Per failure case: affected flows get fresh split variables; the
	// rest keep the base split. A flow whose tunnels all die pins bf = 0.
	for ci, fc := range cases {
		down := fc.downLinks(s.Net)
		downSw := map[topology.SwitchID]bool{}
		for _, v := range fc.Switches {
			downSw[v] = true
		}
		caseAlloc := map[tunnel.Flow][]lp.Var{}
		for _, f := range flows {
			if _, ok := bVar[f]; !ok {
				continue
			}
			ts := s.Tun.Tunnels(f)
			affected := false
			anyAlive := false
			for _, t := range ts {
				if t.Alive(s.Net, down, downSw) {
					anyAlive = true
				} else {
					affected = true
				}
			}
			if downSw[f.Src] || downSw[f.Dst] {
				anyAlive = false
			}
			if !anyAlive {
				model.SetBounds(bVar[f], 0, 0)
				continue
			}
			if !affected {
				continue // keeps the base split in this case
			}
			vars := make([]lp.Var, len(ts))
			cover := lp.NewExpr()
			for i, t := range ts {
				if !t.Alive(s.Net, down, downSw) {
					vars[i] = -1
					continue
				}
				v := model.NewVar(fmt.Sprintf("a%d[%v,%d]", ci, f, i), 0, lp.Inf)
				vars[i] = v
				cover.Add(1, v)
			}
			caseAlloc[f] = vars
			model.AddGE(cover.Add(-1, bVar[f]), 0)
		}
		s.addCaseCapacity(model, in, base, caseAlloc, down)
	}

	model.Maximize(obj)
	sol, err := model.Solve()
	stats := &Stats{
		Status: sol.Status, Objective: sol.Objective,
		Vars: model.NumVars(), Constraints: model.NumRows(), Iters: sol.Iters,
	}
	if err != nil {
		return nil, stats, fmt.Errorf("core: per-case solve: %w", err)
	}
	st := NewState()
	for f, bv := range bVar {
		st.Rate[f] = clampTiny(sol.Value(bv))
		alloc := make([]float64, len(base[f]))
		for i, v := range base[f] {
			alloc[i] = clampTiny(sol.Value(v))
		}
		st.Alloc[f] = alloc
	}
	return st, stats, nil
}

// addCaseCapacity emits link-capacity rows for one case: flows present in
// caseAlloc use their per-case variables (with dead tunnels omitted),
// everyone else the base variables. Links in down are skipped.
func (s *Solver) addCaseCapacity(model *lp.Model, in Input,
	base, caseAlloc map[tunnel.Flow][]lp.Var, down map[topology.LinkID]bool) {

	for _, l := range s.Net.Links {
		if down[l.ID] {
			continue
		}
		use := lp.NewExpr()
		for _, ft := range s.incidence[l.ID] {
			vars, ok := caseAlloc[ft.flow]
			if !ok {
				vars, ok = base[ft.flow]
				if !ok {
					continue
				}
			}
			if v := vars[ft.idx]; v >= 0 {
				use.Add(1, v)
			}
		}
		if len(use.Terms) == 0 {
			continue
		}
		model.AddLE(use, s.capacity(&in, l.ID))
	}
}

// FailureCase is one anticipated fault set.
type FailureCase struct {
	// Links lists physical links (either direction identifies the pair).
	Links []topology.LinkID
	// Switches lists failed switches.
	Switches []topology.SwitchID
}

func (fc FailureCase) downLinks(net *topology.Network) map[topology.LinkID]bool {
	down := map[topology.LinkID]bool{}
	for _, l := range fc.Links {
		down[l] = true
		if tw := net.Links[l].Twin; tw != topology.None {
			down[tw] = true
		}
	}
	return down
}

// SingleLinkCases enumerates one FailureCase per physical link.
func SingleLinkCases(net *topology.Network) []FailureCase {
	var out []FailureCase
	for _, l := range net.Links {
		if l.Twin == topology.None || l.ID < l.Twin {
			out = append(out, FailureCase{Links: []topology.LinkID{l.ID}})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Links[0] < out[j].Links[0] })
	return out
}
