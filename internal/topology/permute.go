package topology

import "fmt"

// Permute returns a copy of the network with its switches reordered: the new
// switch with ID i is the old switch perm[i] (same name, site, and
// coordinates). Links keep their IDs and capacities — only their endpoints
// are renumbered — so link-indexed data (tunnel paths, capacity overrides)
// remains valid across the relabeling. perm must be a permutation of
// [0, NumSwitches).
//
// Relabeling is a metamorphic identity for every TE computation in this
// repo: the graph is unchanged, so optimal throughput, MLU, and the FFC
// guarantees must all be invariant under Permute. internal/prop exercises
// exactly that.
func (n *Network) Permute(perm []int) (*Network, error) {
	if len(perm) != len(n.Switches) {
		return nil, fmt.Errorf("topology: permutation has %d entries for %d switches", len(perm), len(n.Switches))
	}
	inv := make([]SwitchID, len(perm))
	seen := make([]bool, len(perm))
	for newID, oldID := range perm {
		if oldID < 0 || oldID >= len(perm) || seen[oldID] {
			return nil, fmt.Errorf("topology: perm is not a permutation (entry %d = %d)", newID, oldID)
		}
		seen[oldID] = true
		inv[oldID] = SwitchID(newID)
	}

	c := &Network{Name: n.Name}
	c.Switches = make([]Switch, len(n.Switches))
	for newID, oldID := range perm {
		s := n.Switches[oldID]
		s.ID = SwitchID(newID)
		c.Switches[newID] = s
	}
	c.Links = make([]Link, len(n.Links))
	for i, l := range n.Links {
		l.Src = inv[l.Src]
		l.Dst = inv[l.Dst]
		c.Links[i] = l
	}
	return c, nil
}
