package lp

import (
	"math"
	"time"
)

// Solver tolerances. The FFC models are well scaled (capacities and demands
// are normalized to O(1..100) units by the callers), so fixed tolerances
// are adequate.
const (
	dualTol  = 1e-7  // reduced-cost optimality tolerance
	pivotTol = 1e-8  // minimum magnitude of an acceptable pivot element
	feasTol  = 1e-7  // bound/row feasibility tolerance
	degenEps = 1e-9  // step sizes below this count as degenerate
	fixedEps = 1e-12 // lo==hi detection
)

type varStatus int8

const (
	stBasic varStatus = iota
	stAtLower
	stAtUpper
	stFreeZero // free nonbasic variable parked at zero
)

// simplexState is the working state of one solve. All variables (structural,
// slack, artificial) live in one index space.
type simplexState struct {
	m, n     int // rows; total variables (structural+slack+artificial)
	nStruct  int
	colIdx   [][]int32
	colCoef  [][]float64
	lo, hi   []float64
	cost     []float64 // phase-II cost (minimization direction)
	p1cost   []float64 // phase-I cost
	rhs      []float64
	basis    []int // variable basic in each row
	status   []varStatus
	xB       []float64 // values of basic variables, per row
	rep      basisRep  // factorized basis inverse (dense or product-form)
	d        []float64 // reduced costs, per variable
	gamma    []float64 // Devex reference weights, per variable
	nbVal    []float64 // cached value of each nonbasic variable
	phase1   bool
	iters    int
	maxIters int
	nArtif   int
	stats    SolveStats // work counters, filled as the solve progresses

	// Budget checkpointing (SolveOpts). checkBudget gates the whole block
	// so an unbudgeted solve pays one boolean test per iteration;
	// budgetReason records why a BudgetExceeded stop fired.
	opts         SolveOpts
	checkBudget  bool
	budgetReason string
}

func solveSimplex(model *Model, ws *WarmStart, opts SolveOpts) *Solution {
	s := newState(model, ws, opts)
	sol := &Solution{X: make([]float64, len(model.cols))}
	if s == nil {
		// No rows: every variable independently sits at its objective-
		// optimal bound (or any bound when it has no objective weight).
		for i := range model.cols {
			c := &model.cols[i]
			up := c.obj > 0 == model.maximize && c.obj != 0
			switch {
			case c.obj == 0:
				sol.X[i] = nearestBound(c.lo, c.hi)
			case up:
				if math.IsInf(c.hi, 1) {
					sol.Status = Unbounded
					return sol
				}
				sol.X[i] = c.hi
			default:
				if math.IsInf(c.lo, -1) {
					sol.Status = Unbounded
					return sol
				}
				sol.X[i] = c.lo
			}
		}
		sol.Objective = objValue(model, sol.X)
		sol.Duals = []float64{}
		return sol
	}
	st := s.run()
	sol.Status = st
	sol.Iters = s.iters
	s.stats.Iters = s.iters
	s.stats.BasisNnz = s.rep.nnzCount()
	sol.Stats = s.stats
	if st == BudgetExceeded {
		sol.budgetReason = s.budgetReason
		// Phase-II iterates are primal-feasible, so a Phase-II stop has a
		// usable best-so-far point; a mid-Phase-I stop does not.
		sol.budgetFeasible = !s.phase1
	}
	if st == Optimal || st == IterLimit || (st == BudgetExceeded && !s.phase1) {
		xs := s.extract()
		copy(sol.X, xs[:s.nStruct])
		sol.Objective = objValue(model, sol.X)
		sol.Duals = s.dualValues(model.maximize)
	}
	if st == Optimal {
		sol.warm = s.captureWarm()
	}
	return sol
}

// dualValues returns y = c_B B⁻¹ per row, flipped back into the user's
// objective direction (the solver minimizes internally).
func (s *simplexState) dualValues(maximize bool) []float64 {
	y := make([]float64, s.m)
	for i := 0; i < s.m; i++ {
		y[i] = s.cost[s.basis[i]]
	}
	s.rep.btranDense(y)
	if maximize {
		for k := range y {
			y[k] = -y[k]
		}
	}
	return y
}

func objValue(model *Model, x []float64) float64 {
	var v float64
	for i := range model.cols {
		v += model.cols[i].obj * x[i]
	}
	return v
}

func nearestBound(lo, hi float64) float64 {
	switch {
	case !math.IsInf(lo, -1):
		return lo
	case !math.IsInf(hi, 1):
		return hi
	default:
		return 0
	}
}

// newState builds the working problem: slack per row, then either a warm
// basis install (when ws matches) or the cold diagonal crash — initial
// point with structural variables at a bound, slack basic where feasible,
// artificials elsewhere. Returns nil for a completely empty model.
func newState(model *Model, ws *WarmStart, opts SolveOpts) *simplexState {
	m := len(model.rows)
	nS := len(model.cols)
	if m == 0 {
		return nil
	}
	s := &simplexState{m: m, nStruct: nS, opts: opts, checkBudget: !opts.unbounded()}
	total := nS + m // artificials appended later
	s.colIdx = make([][]int32, total, total+m)
	s.colCoef = make([][]float64, total, total+m)
	s.lo = make([]float64, total, total+m)
	s.hi = make([]float64, total, total+m)
	s.cost = make([]float64, total, total+m)
	s.p1cost = make([]float64, total, total+m)
	s.rhs = make([]float64, m)
	s.status = make([]varStatus, total, total+m)
	s.nbVal = make([]float64, total, total+m)

	sign := 1.0
	if model.maximize {
		sign = -1 // internally we always minimize
	}
	for j := 0; j < nS; j++ {
		c := &model.cols[j]
		s.colIdx[j] = c.rowIdx
		s.colCoef[j] = c.rowCoef
		s.lo[j], s.hi[j] = c.lo, c.hi
		s.cost[j] = sign * c.obj
	}
	for i := 0; i < m; i++ {
		j := nS + i
		s.colIdx[j] = []int32{int32(i)}
		s.colCoef[j] = []float64{1}
		switch model.rows[i].sense {
		case LE:
			s.lo[j], s.hi[j] = 0, Inf
		case GE:
			s.lo[j], s.hi[j] = math.Inf(-1), 0
		case EQ:
			s.lo[j], s.hi[j] = 0, 0
		}
		s.rhs[i] = model.rows[i].rhs
	}

	// Park every variable (structural and slack) at its nearest bound.
	// A warm install overwrites these statuses; the diagonal crash keeps
	// them.
	for j := 0; j < total; j++ {
		v := nearestBound(s.lo[j], s.hi[j])
		s.nbVal[j] = v
		switch {
		case v == s.lo[j] && !math.IsInf(s.lo[j], -1):
			s.status[j] = stAtLower
		case v == s.hi[j] && !math.IsInf(s.hi[j], 1):
			s.status[j] = stAtUpper
		default:
			s.status[j] = stFreeZero
		}
	}

	s.basis = make([]int, m)
	s.xB = make([]float64, m)
	warmed := false
	if ws != nil && ws.nCols == nS && ws.nRows == m {
		if s.installWarm(ws, model) {
			warmed = true
			s.stats.Warm = true
		} else {
			// The failed install left the warm *nonbasic* statuses in
			// place, so the diagonal crash still needs artificials only on
			// rows those values don't satisfy.
			s.stats.WarmFellBack = true
		}
	}
	if !warmed {
		s.crashDiagonal(model)
	}

	s.d = make([]float64, s.n)
	s.gamma = make([]float64, s.n)
	s.resetDevex()
	s.computeDuals()

	s.maxIters = model.MaxIters
	if s.maxIters == 0 {
		s.maxIters = 200*(m+s.n) + 20000
	}
	return s
}

// crashDiagonal builds the classic diagonal starting basis from the current
// nonbasic statuses: slack basic where the row is satisfiable at the
// current structural values, an artificial absorbing the residual
// elsewhere.
func (s *simplexState) crashDiagonal(model *Model) {
	m, nS := s.m, s.nStruct

	// Row activity from structural variables at their parked values.
	act := make([]float64, m)
	for j := 0; j < nS; j++ {
		v := s.nbVal[j]
		if v == 0 {
			continue
		}
		for k, r := range s.colIdx[j] {
			act[r] += s.colCoef[j][k] * v
		}
	}

	needPhase1 := false
	for i := 0; i < m; i++ {
		sj := nS + i
		want := s.rhs[i] - act[i] // slack value that would satisfy the row
		if want >= s.lo[sj]-feasTol && want <= s.hi[sj]+feasTol {
			s.basis[i] = sj
			s.status[sj] = stBasic
			s.xB[i] = clamp(want, s.lo[sj], s.hi[sj])
			continue
		}
		// Slack stays at its nearest bound; an artificial absorbs the rest.
		bound := clamp(want, s.lo[sj], s.hi[sj])
		s.nbVal[sj] = bound
		if bound == s.lo[sj] {
			s.status[sj] = stAtLower
		} else {
			s.status[sj] = stAtUpper
		}
		resid := want - bound
		sg := 1.0
		if resid < 0 {
			sg = -1
		}
		aj := len(s.colIdx)
		s.colIdx = append(s.colIdx, []int32{int32(i)})
		s.colCoef = append(s.colCoef, []float64{sg})
		s.lo = append(s.lo, 0)
		s.hi = append(s.hi, Inf)
		s.cost = append(s.cost, 0)
		s.p1cost = append(s.p1cost, 1)
		s.status = append(s.status, stBasic)
		s.nbVal = append(s.nbVal, 0)
		s.basis[i] = aj
		s.xB[i] = math.Abs(resid)
		s.nArtif++
		needPhase1 = true
	}
	s.n = len(s.colIdx)
	s.phase1 = needPhase1

	// The initial basis matrix is diagonal: slack columns carry +1 and
	// artificial columns carry ±1.
	usePFI := m >= pfiThreshold
	if model.forceRep == 1 {
		usePFI = false
	} else if model.forceRep == 2 {
		usePFI = true
	}
	if usePFI {
		s.rep = newPfiRep(m)
		s.rep.refactor(s) // trivial for a diagonal basis
	} else {
		dr := newDenseRep(m)
		diag := make([]float64, m)
		for i := 0; i < m; i++ {
			diag[i] = s.colCoef[s.basis[i]][0]
		}
		dr.initDiagonal(diag)
		s.rep = dr
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (s *simplexState) activeCost(j int) float64 {
	if s.phase1 {
		return s.p1cost[j]
	}
	return s.cost[j]
}

// resetDevex restores the Devex reference framework (all weights 1).
func (s *simplexState) resetDevex() {
	for j := range s.gamma {
		s.gamma[j] = 1
	}
}

// computeDuals recomputes all reduced costs from scratch:
// y = c_B B⁻¹, d_j = c_j − y·A_j.
func (s *simplexState) computeDuals() {
	m := s.m
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		y[i] = s.activeCost(s.basis[i])
	}
	s.rep.btranDense(y)
	for j := 0; j < s.n; j++ {
		if s.status[j] == stBasic {
			s.d[j] = 0
			continue
		}
		dj := s.activeCost(j)
		idx, coef := s.colIdx[j], s.colCoef[j]
		for k, r := range idx {
			dj -= y[r] * coef[k]
		}
		s.d[j] = dj
	}
}

// refactor rebuilds the basis representation and the basic solution.
// The representation may reorder s.basis (position↔row bookkeeping).
func (s *simplexState) refactor() {
	s.stats.Reinversions++
	s.rep.refactor(s)
	s.computeXB()
	s.computeDuals()
}

// computeXB recomputes xB = B⁻¹ (rhs − N x_N) from the factorization.
func (s *simplexState) computeXB() {
	res := make([]float64, s.m)
	copy(res, s.rhs)
	for j := 0; j < s.n; j++ {
		if s.status[j] == stBasic {
			continue
		}
		v := s.nbVal[j]
		if v == 0 {
			continue
		}
		for k, r := range s.colIdx[j] {
			res[r] -= s.colCoef[j][k] * v
		}
	}
	s.rep.ftranDense(res)
	copy(s.xB, res)
}

// invertInPlace inverts the n×n row-major matrix a via Gauss-Jordan with
// partial pivoting. Singular bases should be impossible (every basis matrix
// is invertible by construction); in pathological numerical cases the tiny
// pivot is used anyway and the next refactor will clean up.
func invertInPlace(a []float64, n int) {
	inv := make([]float64, n*n)
	for i := 0; i < n; i++ {
		inv[i*n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p, best := col, math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > best {
				p, best = r, v
			}
		}
		if p != col {
			swapRows(a, n, p, col)
			swapRows(inv, n, p, col)
		}
		piv := a[col*n+col]
		if piv == 0 {
			piv = 1e-30
		}
		invPiv := 1 / piv
		ar := a[col*n : col*n+n]
		ir := inv[col*n : col*n+n]
		for k := range ar {
			ar[k] *= invPiv
			ir[k] *= invPiv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r*n+col]
			if f == 0 {
				continue
			}
			arr := a[r*n : r*n+n]
			irr := inv[r*n : r*n+n]
			for k := 0; k < n; k++ {
				arr[k] -= f * ar[k]
				irr[k] -= f * ir[k]
			}
		}
	}
	copy(a, inv)
}

func swapRows(a []float64, n, i, j int) {
	ri, rj := a[i*n:i*n+n], a[j*n:j*n+n]
	for k := 0; k < n; k++ {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// run executes Phase I (if needed) then Phase II.
func (s *simplexState) run() Status {
	if s.phase1 {
		st := s.optimize()
		s.stats.Phase1Iters = s.iters
		if st != Optimal {
			if st == Unbounded {
				// Phase-I objective is bounded below by zero; treat as numerical trouble.
				return Infeasible
			}
			return st
		}
		var infeas float64
		for i := range s.basis {
			if s.basis[i] >= s.nStruct+s.m {
				infeas += s.xB[i]
			}
		}
		for j := s.nStruct + s.m; j < s.n; j++ {
			if s.status[j] != stBasic && s.nbVal[j] > infeas {
				infeas = s.nbVal[j]
			}
		}
		if infeas > 1e-6 {
			return Infeasible
		}
		// Fix artificials at zero and move to Phase II.
		for j := s.nStruct + s.m; j < s.n; j++ {
			s.lo[j], s.hi[j] = 0, 0
			if s.status[j] != stBasic {
				s.nbVal[j] = 0
				s.status[j] = stAtLower
			}
		}
		s.phase1 = false
		s.resetDevex()
		s.computeDuals()
	}
	return s.optimize()
}

// budgetCheckpoint enforces SolveOpts at the iteration-loop head. The
// iteration cap is exact; deadline, cancellation, and the hook fire every
// budgetBatch iterations — including at iteration 0, so a solve whose
// deadline already passed (or whose context is already canceled) stops
// before the first pivot. Returns Optimal to mean "keep iterating".
func (s *simplexState) budgetCheckpoint() Status {
	if s.opts.MaxIters > 0 && s.iters >= s.opts.MaxIters {
		s.budgetReason = BudgetIters
		return BudgetExceeded
	}
	if s.iters%budgetBatch != 0 {
		return Optimal
	}
	if s.opts.Hook != nil {
		s.opts.Hook(s.iters)
	}
	if s.opts.Ctx != nil && s.opts.Ctx.Err() != nil {
		s.budgetReason = BudgetCanceled
		return BudgetExceeded
	}
	if !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline) {
		s.budgetReason = BudgetDeadline
		return BudgetExceeded
	}
	return Optimal
}

// optimize runs primal simplex iterations until optimality for the current
// phase's cost vector.
func (s *simplexState) optimize() Status {
	m := s.m
	w := make([]float64, m)
	rho := make([]float64, m)
	bland := false
	degenRun := 0
	for {
		if s.iters >= s.maxIters {
			return IterLimit
		}
		if s.checkBudget {
			if st := s.budgetCheckpoint(); st != Optimal {
				return st
			}
		}
		q, dir := s.chooseEntering(bland)
		if q < 0 {
			// Optimal for this phase. Verify with fresh duals once, to
			// guard against drift in the incremental reduced costs.
			s.computeDuals()
			q, dir = s.chooseEntering(bland)
			if q < 0 {
				return Optimal
			}
		}
		s.iters++

		// FTRAN: w = B⁻¹ A_q (w arrives zeroed; see loop tail).
		pat := s.rep.ftran(s.colIdx[q], s.colCoef[q], w)

		// Ratio test over basic variables plus the entering bound span.
		theta := math.Inf(1)
		leave := -1
		leaveAtUpper := false
		span := s.hi[q] - s.lo[q]
		if !math.IsInf(span, 1) {
			theta = span
		}
		ratioRow := func(i int) {
			wi := dir * w[i]
			if wi > pivotTol {
				// Basic variable i decreases toward its lower bound.
				if lo := s.lo[s.basis[i]]; !math.IsInf(lo, -1) {
					t := (s.xB[i] - lo) / wi
					if t < theta-degenEps || (t < theta+degenEps && better(leave, i, w, s)) {
						theta, leave, leaveAtUpper = maxf(t, 0), i, false
					}
				}
			} else if wi < -pivotTol {
				// Basic variable i increases toward its upper bound.
				if hi := s.hi[s.basis[i]]; !math.IsInf(hi, 1) {
					t := (s.xB[i] - hi) / wi
					if t < theta-degenEps || (t < theta+degenEps && better(leave, i, w, s)) {
						theta, leave, leaveAtUpper = maxf(t, 0), i, true
					}
				}
			}
		}
		if pat == nil {
			for i := 0; i < m; i++ {
				ratioRow(i)
			}
		} else {
			for _, i := range pat {
				ratioRow(int(i))
			}
		}
		if math.IsInf(theta, 1) {
			clearW(w, pat)
			return Unbounded
		}

		if theta <= degenEps {
			degenRun++
			if degenRun > 4*(m+64) {
				if !bland {
					s.stats.BlandActivations++
				}
				bland = true
			}
		} else {
			degenRun = 0
			bland = false
		}

		if leave < 0 {
			// Bound flip: entering variable moves across its full span.
			s.stats.BoundFlips++
			applyStep(s.xB, w, pat, dir*theta)
			if s.status[q] == stAtLower {
				s.status[q] = stAtUpper
				s.nbVal[q] = s.hi[q]
			} else {
				s.status[q] = stAtLower
				s.nbVal[q] = s.lo[q]
			}
			clearW(w, pat)
			continue
		}

		// Pivot: q enters the basis at row `leave`.
		enterVal := s.nbVal[q] + dir*theta
		applyStep(s.xB, w, pat, dir*theta)
		lv := s.basis[leave]
		if leaveAtUpper {
			s.status[lv] = stAtUpper
			s.nbVal[lv] = s.hi[lv]
		} else {
			s.status[lv] = stAtLower
			s.nbVal[lv] = s.lo[lv]
		}
		if s.lo[lv] == s.hi[lv] {
			s.nbVal[lv] = s.lo[lv]
		}
		s.basis[leave] = q
		s.status[q] = stBasic
		s.xB[leave] = enterVal

		// Pivot row of B⁻¹ (before the basis change) for the reduced-cost
		// update, then apply the transformation to the representation.
		for i := range rho {
			rho[i] = 0
		}
		s.rep.btranUnit(leave, rho)
		piv := w[leave]
		invPiv := 1 / piv
		s.rep.pivot(leave, w, pat)
		clearW(w, pat)

		// Incremental reduced costs (d_j -= (d_q/piv)·(ρ·A_j)) and Devex
		// weight updates (Forrest–Goldfarb) from the same pivot row.
		ratio := s.d[q] * invPiv
		gq := s.gamma[q]
		for j := 0; j < s.n; j++ {
			if s.status[j] == stBasic {
				s.d[j] = 0
				continue
			}
			var alpha float64
			for k, r := range s.colIdx[j] {
				alpha += rho[r] * s.colCoef[j][k]
			}
			if alpha == 0 {
				continue
			}
			s.d[j] -= ratio * alpha
			if g := (alpha * invPiv) * (alpha * invPiv) * gq; g > s.gamma[j] {
				s.gamma[j] = g
			}
		}
		s.d[q] = 0
		s.d[lv] = -ratio
		if g := gq * invPiv * invPiv; g > 1 {
			s.gamma[lv] = g
		} else {
			s.gamma[lv] = 1
		}
		if s.gamma[lv] > 1e12 || gq > 1e12 {
			s.stats.DevexResets++
			s.resetDevex()
		}

		if s.rep.shouldRefactor() {
			s.refactor()
		}
	}
}

// applyStep performs xB -= step·w over w's nonzero pattern (nil = dense).
func applyStep(xB, w []float64, pat []int32, step float64) {
	if step == 0 {
		return
	}
	if pat == nil {
		for i := range xB {
			xB[i] -= step * w[i]
		}
		return
	}
	for _, i := range pat {
		xB[i] -= step * w[i]
	}
}

// clearW zeroes w over its pattern so the buffer can be reused.
func clearW(w []float64, pat []int32) {
	if pat == nil {
		for i := range w {
			w[i] = 0
		}
		return
	}
	for _, i := range pat {
		w[i] = 0
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// better breaks ratio-test ties in favour of the larger pivot magnitude
// for numerical stability.
func better(cur, cand int, w []float64, s *simplexState) bool {
	if cur < 0 {
		return true
	}
	return math.Abs(w[cand]) > math.Abs(w[cur])
}

// chooseEntering returns the entering variable and its movement direction
// (+1 increase, −1 decrease), or (-1, 0) when no candidate improves. It
// prices with Devex weights (d_j²/γ_j), falling back to Bland's rule for
// anti-cycling when asked.
func (s *simplexState) chooseEntering(bland bool) (int, float64) {
	bestJ, bestDir, bestScore := -1, 0.0, 0.0
	for j := 0; j < s.n; j++ {
		st := s.status[j]
		if st == stBasic {
			continue
		}
		if s.hi[j]-s.lo[j] <= fixedEps && st != stFreeZero {
			continue // fixed variable can never move
		}
		dj := s.d[j]
		var dir float64
		switch st {
		case stAtLower:
			if dj < -dualTol {
				dir = 1
			}
		case stAtUpper:
			if dj > dualTol {
				dir = -1
			}
		case stFreeZero:
			if dj < -dualTol {
				dir = 1
			} else if dj > dualTol {
				dir = -1
			}
		}
		if dir == 0 {
			continue
		}
		if bland {
			return j, dir
		}
		if sc := dj * dj / s.gamma[j]; sc > bestScore {
			bestJ, bestDir, bestScore = j, dir, sc
		}
	}
	return bestJ, bestDir
}

// extract returns the value of every variable (structural first).
func (s *simplexState) extract() []float64 {
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if s.status[j] != stBasic {
			x[j] = s.nbVal[j]
		}
	}
	for i, j := range s.basis {
		x[j] = s.xB[i]
	}
	// Clamp small bound violations from floating-point drift.
	for j := 0; j < s.n; j++ {
		x[j] = clamp(x[j], s.lo[j]-0, s.hi[j]+0)
	}
	return x
}
