package parallel

import (
	"sync/atomic"
	"testing"

	"ffc/internal/obs"
)

func TestForEachWorkerObsDisabledRecordsNothing(t *testing.T) {
	obs.Disable()
	obs.Default().Reset()
	var calls atomic.Int64
	ForEachWorkerObs("test.shard", 100, 4, func(_, _ int) { calls.Add(1) })
	if calls.Load() != 100 {
		t.Fatalf("fn ran %d times, want 100", calls.Load())
	}
	if got := obs.Default().Counter("test.shard.items").Value(); got != 0 {
		t.Fatalf("disabled run recorded %d items", got)
	}
}

func TestForEachWorkerObsEnabledRecords(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	obs.Default().Reset()
	seen := make([]atomic.Int64, 64)
	ForEachWorkerObs("test.shard", 64, 4, func(_, i int) { seen[i].Add(1) })
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d processed %d times", i, seen[i].Load())
		}
	}
	reg := obs.Default()
	if got := reg.Counter("test.shard.items").Value(); got != 64 {
		t.Fatalf("items = %d, want 64", got)
	}
	if got := reg.Counter("test.shard.calls").Value(); got != 1 {
		t.Fatalf("calls = %d, want 1", got)
	}
	if got := reg.Histogram("test.shard.worker_busy").Count(); got < 1 || got > 4 {
		t.Fatalf("worker_busy samples = %d, want 1..4", got)
	}
	// Zero items must not divide or record anything.
	ForEachWorkerObs("test.empty", 0, 4, func(_, _ int) { t.Fatal("fn called for n=0") })
}
