package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ffc/internal/demand"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

func TestOverThreshold(t *testing.T) {
	// The slack is relative on large capacities: 1e-5 of round-off on a
	// 1e6-capacity link is not a violation...
	if overThreshold(1e6+1e-5, 1e6) {
		t.Fatal("1e-5 over a 1e6 capacity must be within tolerance")
	}
	// ...but the same absolute excess on a unit-capacity link is.
	if !overThreshold(1+1e-5, 1) {
		t.Fatal("1e-5 over a unit capacity must be a violation")
	}
	if overThreshold(1+1e-7, 1) {
		t.Fatal("1e-7 over a unit capacity must be within tolerance")
	}
	if overThreshold(0.5, 1) {
		t.Fatal("under-capacity load flagged")
	}
}

// snetFixture is a plain-TE S-Net state shared by the parallel-equivalence
// tests and benchmarks; solving it once keeps -race runs fast. S-Net is
// large enough (≈88 physical links, 12 ingresses, 132 flows) that every
// verifier crosses the serialVerifyCases threshold and actually fans out.
var snetOnce sync.Once
var snetFx struct {
	net    *topology.Network
	tun    *tunnel.Set
	states []*State
	err    error
}

func snetStates(tb testing.TB) (*topology.Network, *tunnel.Set, []*State) {
	tb.Helper()
	snetOnce.Do(func() {
		net := topology.SNet()
		rng := rand.New(rand.NewSource(7))
		series := demand.Generate(net, demand.Config{Intervals: 2}, rng)
		var flows []tunnel.Flow
		for f := range series[0] {
			flows = append(flows, f)
		}
		tun := tunnel.Layout(net, flows, tunnel.LayoutConfig{})
		solver := NewSolver(net, tun, Options{})
		states := make([]*State, len(series))
		for i, m := range series {
			st, _, err := solver.Solve(Input{Demands: m})
			if err != nil {
				snetFx.err = err
				return
			}
			states[i] = st
		}
		snetFx.net, snetFx.tun, snetFx.states = net, tun, states
	})
	if snetFx.err != nil {
		tb.Fatalf("solving S-Net fixture: %v", snetFx.err)
	}
	return snetFx.net, snetFx.tun, snetFx.states
}

// tightCaps overrides every loaded link's capacity to 90% of its fault-free
// load, guaranteeing violations for the verifiers to agree on.
func tightCaps(tun *tunnel.Set, st *State) map[topology.LinkID]float64 {
	caps := map[topology.LinkID]float64{}
	for l, load := range st.LinkLoads(tun) {
		if load > 0 {
			caps[l] = 0.9 * load
		}
	}
	return caps
}

func TestVerifyDataPlaneParallelMatchesSerial(t *testing.T) {
	net, tun, sts := snetStates(t)
	caps := tightCaps(tun, sts[0])
	serial := VerifyDataPlaneN(net, tun, sts[0], 1, 1, caps, 1)
	if serial == nil {
		t.Fatal("fixture produced no violation; capacities not tight enough")
	}
	for _, w := range []int{2, 4, 8} {
		if got := VerifyDataPlaneN(net, tun, sts[0], 1, 1, caps, w); !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d: %+v, serial: %+v", w, got, serial)
		}
	}
	// And both paths agree on the all-clear.
	if v := VerifyDataPlaneN(net, tun, sts[0], 1, 0, nil, 8); v != nil {
		if s := VerifyDataPlaneN(net, tun, sts[0], 1, 0, nil, 1); !reflect.DeepEqual(s, v) {
			t.Fatalf("parallel %+v, serial %+v", v, s)
		}
	}
}

func TestVerifyControlPlaneParallelMatchesSerial(t *testing.T) {
	net, tun, sts := snetStates(t)
	caps := tightCaps(tun, sts[1])
	for _, mode := range []RateLimiterMode{LimitersSynced, LimitersOrdered, LimitersIndependent} {
		serial := VerifyControlPlaneN(net, tun, sts[1], sts[0], 2, mode, caps, 1)
		if serial == nil {
			t.Fatalf("mode %v: fixture produced no violation", mode)
		}
		for _, w := range []int{2, 4, 8} {
			if got := VerifyControlPlaneN(net, tun, sts[1], sts[0], 2, mode, caps, w); !reflect.DeepEqual(serial, got) {
				t.Fatalf("mode %v workers=%d: %+v, serial: %+v", mode, w, got, serial)
			}
		}
	}
}

func TestVerifyDemandUncertaintyParallelMatchesSerial(t *testing.T) {
	net, tun, sts := snetStates(t)
	caps := tightCaps(tun, sts[0])
	serial := VerifyDemandUncertaintyN(net, tun, sts[0], 1, 2.0, caps, 1)
	if serial == nil {
		t.Fatal("fixture produced no violation")
	}
	for _, w := range []int{2, 4, 8} {
		if got := VerifyDemandUncertaintyN(net, tun, sts[0], 1, 2.0, caps, w); !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d: %+v, serial: %+v", w, got, serial)
		}
	}
}

// BenchmarkVerifyDataPlaneSNet compares the serial and parallel data-plane
// verifier on S-Net at ke=2 (≈3900 fault cases). With GOMAXPROCS ≥ 4 the
// parallel variant should be ≥ 2× faster; on one core they tie.
func BenchmarkVerifyDataPlaneSNet(b *testing.B) {
	net, tun, sts := snetStates(b)
	st := sts[0]
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			VerifyDataPlaneN(net, tun, st, 2, 0, nil, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			VerifyDataPlaneN(net, tun, st, 2, 0, nil, 0)
		}
	})
}
