// Control-plane FFC (the paper's Figures 3 and 5): admitting a new flow
// requires existing switches to move traffic; FFC reserves for the ones
// that may fail to update. Reproduces the paper's 10/7/4 admission series
// exactly, using the figures' tunnel layout.
//
//	go run ./examples/controlplane_update
package main

import (
	"fmt"
	"log"

	"ffc"
)

func main() {
	net := ffc.Example4Topology()
	s1, _ := net.SwitchByName("s1")
	s2, _ := net.SwitchByName("s2")
	s3, _ := net.SwitchByName("s3")
	s4, _ := net.SwitchByName("s4")
	f24 := ffc.Flow{Src: s2, Dst: s4}
	f34 := ffc.Flow{Src: s3, Dst: s4}
	f14 := ffc.Flow{Src: s1, Dst: s4}

	// The figures' layout: {s2,s3}→s4 each have a direct tunnel and one
	// via s1; the new flow s1→s4 has only its direct link.
	mk := func(f ffc.Flow, hops ...ffc.SwitchID) *ffc.Tunnel {
		t := &ffc.Tunnel{Flow: f, Switches: hops}
		for i := 0; i+1 < len(hops); i++ {
			l := net.FindLink(hops[i], hops[i+1])
			if l < 0 {
				log.Fatalf("missing link %d→%d", hops[i], hops[i+1])
			}
			t.Links = append(t.Links, l)
		}
		return t
	}
	tun := ffc.NewTunnelSet(net)
	tun.Add(f24, mk(f24, s2, s4), mk(f24, s2, s1, s4))
	tun.Add(f34, mk(f34, s3, s4), mk(f34, s3, s1, s4))
	tun.Add(f14, mk(f14, s1, s4))
	ctl := ffc.NewControllerWithTunnels(net, tun, ffc.SolverOptions{})

	// Install the "before" configuration of Figure 3(a): both existing
	// flows send 7 units direct and 3 via s1 (link s1–s4 carries 6/10).
	prev := ffc.NewState()
	prev.Rate[f24], prev.Alloc[f24] = 10, []float64{7, 3}
	prev.Rate[f34], prev.Alloc[f34] = 10, []float64{7, 3}
	ctl.Install(prev)

	fmt.Println("old config: {s2,s3}→s4 split 7 direct + 3 via s1 (link s1–s4 carries 6/10)")
	fmt.Println("new flow s1→s4 wants 10 units on the direct link s1–s4")
	fmt.Println()

	demands := ffc.Demands{f24: 10, f34: 10, f14: 10}
	for kc := 0; kc <= 2; kc++ {
		st, _, err := ctl.Compute(demands, ffc.Protection{Kc: kc})
		if err != nil {
			log.Fatal(err)
		}
		safe := ctl.VerifyControlPlane(st, kc) == nil
		fmt.Printf("kc=%d: admit %.0f units of s1→s4 (total %.0f, exhaustive %d-stale-switch check: %v)\n",
			kc, st.Rate[f14], st.TotalRate(), kc, safe)
	}
	fmt.Println("\npaper's Figure 5: 10 units unprotected, 7 with kc=1, 4 with kc=2")

	// And the danger this avoids: the unprotected plan congests if one
	// switch keeps its old splitting weights (Figure 3(c)).
	plain, _, err := ctl.Compute(demands, ffc.NoProtection)
	if err != nil {
		log.Fatal(err)
	}
	if v := ctl.VerifyControlPlane(plain, 1); v != nil {
		fmt.Printf("\nunprotected plan under one stale switch: %s overloads by %.1f units\n", v.Case, v.Over)
	}
}
