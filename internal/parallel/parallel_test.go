package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := Workers(-3); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", w)
	}
	if w := Workers(5); w != 5 {
		t.Fatalf("Workers(5) = %d", w)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(n, w, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("w=%d: index %d visited %d times", w, i, c)
			}
		}
	}
}

func TestForEachEmptyAndSmall(t *testing.T) {
	ForEach(0, 8, func(int) { t.Fatal("called for n=0") })
	hit := false
	ForEach(1, 8, func(i int) { hit = i == 0 })
	if !hit {
		t.Fatal("n=1 not visited")
	}
}

func TestForEachSerialIsOrdered(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForEachWorkerIDsInRange(t *testing.T) {
	const n, w = 200, 4
	var bad atomic.Int32
	ForEachWorker(n, w, func(worker, i int) {
		if worker < 0 || worker >= w {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker id out of range")
	}
}

func TestFirstError(t *testing.T) {
	e1, e2 := errors.New("a"), errors.New("b")
	if err := FirstError([]error{nil, nil}); err != nil {
		t.Fatal(err)
	}
	if err := FirstError([]error{nil, e1, e2}); err != e1 {
		t.Fatalf("got %v, want first error", err)
	}
}
