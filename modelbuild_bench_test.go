package ffc

import (
	"testing"
	"time"

	"ffc/internal/core"
	"ffc/internal/demand"
)

// modelBuildSolver is the S-Net solver the model-build measurements run on:
// mice classification off (it re-buckets flows by demand every interval,
// changing the column set and making no interval template-reusable), same
// as the warm-start chain in warm_bench_test.go.
func modelBuildSolver(tb testing.TB) *core.Solver {
	e := getSNetEnv(tb)
	opts := e.Opts
	opts.MiceFraction = 0
	return core.NewSolver(e.Net, e.Tun, opts)
}

// buildChain constructs every re-build interval's model (interval 0 is the
// unavoidable cold build either way and is excluded): cold formulates from
// scratch each time, warm freezes one ModelTemplate and re-instantiates it
// by rewriting bounds/RHS/objective coefficients in place. Returns the time
// spent on the re-build intervals.
func buildChain(tb testing.TB, solver *core.Solver, series demand.Series, warm bool) time.Duration {
	tb.Helper()
	in := func(i int) core.Input {
		return core.Input{Demands: series[i], Prot: core.Protection{Ke: 2}}
	}
	if !warm {
		var elapsed time.Duration
		for i := 1; i < len(series); i++ {
			t0 := time.Now()
			if _, err := solver.NewTemplate(in(i)); err != nil {
				tb.Fatalf("interval %d: %v", i, err)
			}
			elapsed += time.Since(t0)
		}
		return elapsed
	}
	tmpl, err := solver.NewTemplate(in(0))
	if err != nil {
		tb.Fatal(err)
	}
	var elapsed time.Duration
	for i := 1; i < len(series); i++ {
		t0 := time.Now()
		if err := tmpl.Instantiate(in(i)); err != nil {
			tb.Fatalf("interval %d: %v", i, err)
		}
		elapsed += time.Since(t0)
	}
	return elapsed
}

// TestModelBuildTemplateSpeedupSNet is the acceptance gate for the
// formulation cache: across the S-Net re-build chain, instantiating the
// frozen template must be at least 2x faster per interval than formulating
// from scratch. (In practice the gap is orders of magnitude — instantiate
// touches only bounds and RHS — so the 2x floor is safe against timer
// noise.) Bit-identity of the resulting models and solutions is asserted
// separately in internal/core's template equivalence suite and in
// TestSessionTemplateSolveMatchesScratchSNet below.
func TestModelBuildTemplateSpeedupSNet(t *testing.T) {
	if testing.Short() {
		t.Skip("S-Net chain is slow; skipped with -short")
	}
	series := resolveSeries(t, 6)
	solver := modelBuildSolver(t)
	cold := buildChain(t, solver, series, false)
	warm := buildChain(t, solver, series, true)
	if warm <= 0 {
		warm = time.Nanosecond
	}
	if 2*warm > cold {
		t.Fatalf("template instantiate took %v vs %v scratch — less than the required 2x speedup", warm, cold)
	}
	t.Logf("model build over %d intervals: scratch %v, template %v (%.1fx)",
		len(series)-1, cold, warm, float64(cold)/float64(warm))
}

// TestSessionTemplateSolveMatchesScratchSNet runs the warm-started S-Net
// re-solve chain with the model template enabled and disabled and requires
// exactly equal states: the instantiated model is byte-identical to a
// scratch formulation, so with the same carried basis the simplex must walk
// the same path to the same bits. ke=1 keeps the chain fast; byte-identity
// of the ke=2 formulation itself is covered in internal/core's suite.
func TestSessionTemplateSolveMatchesScratchSNet(t *testing.T) {
	if testing.Short() {
		t.Skip("S-Net chain is slow; skipped with -short")
	}
	series := resolveSeries(t, 4)
	e := getSNetEnv(t)
	run := func(disable bool) []*core.State {
		opts := e.Opts
		opts.MiceFraction = 0
		opts.DisableTemplate = disable
		se := core.NewSolver(e.Net, e.Tun, opts).NewSession()
		var out []*core.State
		for i, dem := range series {
			st, stats, err := se.Solve(core.Input{Demands: dem, Prot: core.Protection{Ke: 1}})
			if err != nil {
				t.Fatalf("disable=%v interval %d: %v", disable, i, err)
			}
			if wantReuse := !disable && i > 0; stats.ModelReused != wantReuse {
				t.Fatalf("disable=%v interval %d: ModelReused=%v, want %v", disable, i, stats.ModelReused, wantReuse)
			}
			out = append(out, st)
		}
		return out
	}
	withTmpl, scratch := run(false), run(true)
	for i := range withTmpl {
		for f, r := range scratch[i].Rate {
			if withTmpl[i].Rate[f] != r {
				t.Fatalf("interval %d flow %v: rate %v (template) != %v (scratch)", i, f, withTmpl[i].Rate[f], r)
			}
		}
		for f, alloc := range scratch[i].Alloc {
			got := withTmpl[i].Alloc[f]
			for j := range alloc {
				if got[j] != alloc[j] {
					t.Fatalf("interval %d flow %v tunnel %d: alloc %v (template) != %v (scratch)",
						i, f, j, got[j], alloc[j])
				}
			}
		}
	}
}

// BenchmarkModelBuildWarmVsCold times one S-Net model-construction chain
// per op — every interval formulated from scratch (cold) versus one frozen
// ModelTemplate re-instantiated per interval (warm). The warm/cold ns/op
// ratio is the formulation cache's payoff; the CI bench gate watches both
// entries (ffcbench emits the same workload as modelbuild_cold/_warm).
func BenchmarkModelBuildWarmVsCold(b *testing.B) {
	series := resolveSeries(b, 6)
	solver := modelBuildSolver(b)
	for _, mode := range []struct {
		name string
		warm bool
	}{{"cold", false}, {"warm", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buildChain(b, solver, series, mode.warm)
			}
		})
	}
}
