// Package prop is the property-based metamorphic test harness for the FFC
// pipeline. It generates randomized end-to-end scenarios — topology kind ×
// gravity demands × fault sets × protection level × solve path — runs the
// full build → solve → verify → certify pipeline on each, and checks a
// suite of paper-level metamorphic invariants (protection monotonicity,
// FFC ≤ plain TE, joint scale invariance, relabeling invariance, exact
// certification, degraded-plan safety). The paper's own evaluation sweeps
// randomized fault scenarios rather than fixed cases (Figs 1, 12–15); this
// package turns that methodology into an executable guarantee check.
//
// A Scenario is fully concrete: every random choice happens in Generate and
// is recorded in the struct, so Run is deterministic and RNG-free. That is
// what makes failing cases shrinkable (Shrink) and replayable from a
// self-contained JSON repro file (WriteRepro/ReadRepro, cmd/ffcprop -repro,
// and the go-test replay path in this package's tests).
package prop

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/faults"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
	"ffc/internal/wire"
)

// Solve paths a scenario can exercise. Each runs the same formulation
// through different machinery; the invariants must hold on all of them.
const (
	PathScratch  = "scratch"  // Solver.Solve, fresh model, cold simplex
	PathTemplate = "template" // Session with model-template rebinding
	PathWarm     = "warm"     // Session with basis carry, template disabled
	PathParallel = "parallel" // Solver.Solve with parallel constraint emission
)

// Paths lists every solve path, in the order the harness cycles them.
var Paths = []string{PathScratch, PathTemplate, PathWarm, PathParallel}

// Mutation is a deliberate post-solve corruption. It is applied after the
// plan is computed and before it is verified/certified, so a mutated
// scenario must fail the certify-ok invariant — this is how the harness
// proves, end to end, that it can catch, shrink, and replay real
// violations. The zero value (nil pointer) means no corruption.
type Mutation struct {
	// Kind is "scale-capacity" (multiply one directed link's capacity by
	// Factor during verification) or "bump-rate" (multiply one flow's
	// solved rate by Factor before verification).
	Kind string `json:"kind"`
	// Link names the directed link ("src>dst") for scale-capacity.
	Link string `json:"link,omitempty"`
	// Src/Dst name the flow for bump-rate.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// Factor is the multiplier.
	Factor float64 `json:"factor"`
}

// Mutation kinds.
const (
	MutScaleCapacity = "scale-capacity"
	MutBumpRate      = "bump-rate"
)

// Scenario is one fully-materialized end-to-end pipeline input. Everything
// is value-level and name-keyed so the JSON encoding is a self-contained
// repro: no seed re-derivation, no layout flags to match, no RNG at replay.
type Scenario struct {
	// Name labels the scenario (e.g. "seed-42"); informational.
	Name string `json:"name,omitempty"`
	// Seed records the generator seed for provenance; Run never reads it.
	Seed int64 `json:"seed"`
	// Kind records the topology family the generator drew; informational.
	Kind string `json:"kind,omitempty"`

	Topo *topology.Network `json:"topology"`
	// Demands is the TE interval under test; PrevDemands is the preceding
	// interval (it produces the previously-installed state control-plane
	// FFC is relative to, and primes the session solve paths).
	Demands     []wire.DemandEntry `json:"demands"`
	PrevDemands []wire.DemandEntry `json:"prev_demands,omitempty"`

	Kc int `json:"kc"`
	Ke int `json:"ke"`
	Kv int `json:"kv"`

	// Path is one of the Path* constants; Encoding is "sortnet",
	// "compact", or "naive"; RateLimiter is "synced", "ordered", or
	// "independent".
	Path        string `json:"path"`
	Encoding    string `json:"encoding"`
	RateLimiter string `json:"rate_limiter,omitempty"`
	// TunnelsPerFlow caps |Tf| at layout time (0 = the layout default).
	TunnelsPerFlow int `json:"tunnels_per_flow,omitempty"`

	// DownLinks ("src>dst", canonical direction; the twin goes down too)
	// and DownSwitches are elements already failed when the plan is
	// computed.
	DownLinks    []string `json:"down_links,omitempty"`
	DownSwitches []string `json:"down_switches,omitempty"`
	// ExtraFaultLinks/Switches strike after the plan is installed; the
	// degraded-certifies invariant re-certifies the Degrade()d plan under
	// them.
	ExtraFaultLinks    []string `json:"extra_fault_links,omitempty"`
	ExtraFaultSwitches []string `json:"extra_fault_switches,omitempty"`

	// Scale is the λ the scale-invariance check multiplies capacities and
	// demands by (a power of two, so the scaling is float-exact).
	Scale float64 `json:"scale,omitempty"`
	// Relabel is the switch permutation the relabeling-invariance check
	// applies: new switch i is old switch Relabel[i].
	Relabel []int `json:"relabel,omitempty"`

	// Mutation, when set, corrupts the pipeline post-solve (see Mutation).
	Mutation *Mutation `json:"mutation,omitempty"`

	// Invariants restricts which invariants Run checks (nil = all).
	Invariants []string `json:"invariants,omitempty"`
}

// Clone deep-copies the scenario via its JSON form (the struct is built to
// round-trip exactly).
func (sc *Scenario) Clone() *Scenario {
	blob, err := json.Marshal(sc)
	if err != nil {
		panic(fmt.Sprintf("prop: scenario does not marshal: %v", err))
	}
	var c Scenario
	if err := json.Unmarshal(blob, &c); err != nil {
		panic(fmt.Sprintf("prop: scenario does not round-trip: %v", err))
	}
	return &c
}

// maxExactCases bounds the data-plane fault-combination count a generated
// scenario may imply, so the certify-ok invariant always runs the exact
// enumeration (a proof, not a search) within the short-pass time budget.
// The generator downgrades ke/kv until the estimate fits.
const maxExactCases = 20000

// Generate draws one concrete scenario from seed. Identical seeds produce
// identical scenarios (all randomness flows through sub-seeded *rand.Rand
// streams — see faults.DeriveSeed); the returned scenario never needs the
// seed again.
func Generate(seed int64) *Scenario {
	topoRng := rand.New(rand.NewSource(faults.DeriveSeed(seed, 1)))
	demRng := rand.New(rand.NewSource(faults.DeriveSeed(seed, 2)))
	cfgRng := rand.New(rand.NewSource(faults.DeriveSeed(seed, 3)))
	faultRng := rand.New(rand.NewSource(faults.DeriveSeed(seed, 4)))

	sc := &Scenario{Name: fmt.Sprintf("seed-%d", seed), Seed: seed}

	// Topology family. Sizes are kept small enough that the exact
	// data-plane enumeration stays cheap; S-Net and fat-tree runs carry
	// reduced protection for the same reason.
	edgeSwitch := 0
	switch k := topoRng.Intn(10); {
	case k < 4:
		sc.Kind = "lnet"
		cfg := topology.LNetConfig{
			Sites:           3 + topoRng.Intn(3), // 3..5
			SwitchesPerSite: 1 + topoRng.Intn(2), // 1..2
		}
		sc.Topo = topology.LNet(cfg, topoRng)
	case k < 6:
		sc.Kind = "testbed"
		sc.Topo = topology.Testbed()
	case k < 8:
		sc.Kind = "example4"
		sc.Topo = topology.Example4()
	case k < 9:
		sc.Kind = "snet"
		sc.Topo = topology.SNet()
	default:
		sc.Kind = "fattree"
		sc.Topo = topology.FatTree(4, 10)
		edgeSwitch = 1 // pod sites list agg first; index 1 is the edge switch
	}

	// Demands: two gravity-model intervals (previous + current), scaled to
	// a randomized utilization regime. Any regime is valid — the scale only
	// decides whether capacity binds.
	series := demand.Generate(sc.Topo, demand.Config{Intervals: 2, EdgeSwitch: edgeSwitch}, demRng)
	util := 0.1 + demRng.Float64()*1.4
	k := util * sc.Topo.TotalCapacity() / (8 * math.Max(series[1].Total(), 1e-9))
	sc.PrevDemands = encodeDemands(sc.Topo, series[0].Scale(k))
	sc.Demands = encodeDemands(sc.Topo, series[1].Scale(k))

	// Protection level, downgraded until the exact data-plane enumeration
	// the certifier will run stays within budget.
	sc.Ke = cfgRng.Intn(3)
	sc.Kv = [4]int{0, 0, 0, 1}[cfgRng.Intn(4)]
	sc.Kc = [4]int{0, 1, 1, 2}[cfgRng.Intn(4)]
	nPhys, nSw := countElements(sc.Topo)
	for sc.Kv > 0 && exactCaseEstimate(nPhys, nSw, sc.Ke, sc.Kv) > maxExactCases {
		sc.Kv--
	}
	for sc.Ke > 0 && exactCaseEstimate(nPhys, nSw, sc.Ke, sc.Kv) > maxExactCases {
		sc.Ke--
	}
	if len(sc.Demands) > 100 && sc.Ke > 1 {
		// Data-plane sortnet blocks scale with flows × ke; ke=2 on the
		// 100+-flow topologies turns one scenario into a multi-second LP.
		sc.Ke = 1
	}

	sc.Path = Paths[cfgRng.Intn(len(Paths))]
	switch e := cfgRng.Intn(10); {
	case e < 6:
		sc.Encoding = "sortnet"
	case e < 9:
		sc.Encoding = "compact"
	default:
		sc.Encoding = "naive"
	}
	if sc.Encoding == "naive" && (sc.Ke+sc.Kv > 2 || nSw > 12) {
		sc.Encoding = "sortnet" // the enumeration would swamp the pass
	}
	if sc.Kc > 0 {
		sc.RateLimiter = [5]string{"synced", "synced", "synced", "ordered", "independent"}[cfgRng.Intn(5)]
	}
	sc.TunnelsPerFlow = 2 + cfgRng.Intn(3) // 2..4

	// Pre-down elements (faults persisting from earlier intervals) and the
	// post-install faults the degraded-certifies invariant applies.
	if faultRng.Float64() < 0.3 {
		links, _ := faults.PickFaults(sc.Topo, faultRng, 1, 0)
		sc.DownLinks = linkNames(sc.Topo, links)
	}
	if faultRng.Float64() < 0.15 {
		_, sws := faults.PickFaults(sc.Topo, faultRng, 0, 1)
		sc.DownSwitches = switchNames(sc.Topo, sws)
	}
	if faultRng.Float64() < 0.6 {
		nl := 1 + faultRng.Intn(2)
		ns := 0
		if faultRng.Float64() < 0.25 {
			ns = 1
		}
		links, sws := faults.PickFaults(sc.Topo, faultRng, nl, ns)
		sc.ExtraFaultLinks = linkNames(sc.Topo, links)
		sc.ExtraFaultSwitches = switchNames(sc.Topo, sws)
	}

	sc.Scale = []float64{0.25, 0.5, 2, 4}[cfgRng.Intn(4)]
	sc.Relabel = cfgRng.Perm(sc.Topo.NumSwitches())
	return sc
}

// exactCaseEstimate mirrors the certifier's pre-pruning case count: the
// generator uses it to keep exact certification affordable.
func exactCaseEstimate(nPhys, nSw, ke, kv int) float64 {
	return binomSum(nPhys, ke) * binomSum(nSw, kv)
}

func binomSum(n, k int) float64 {
	if k > n {
		k = n
	}
	total, term := 0.0, 1.0
	for i := 0; i <= k; i++ {
		total += term
		term = term * float64(n-i) / float64(i+1)
	}
	return total
}

func countElements(net *topology.Network) (phys, sws int) {
	for _, l := range net.Links {
		if l.Twin == topology.None || l.ID < l.Twin {
			phys++
		}
	}
	return phys, net.NumSwitches()
}

// encodeDemands renders a matrix as name-keyed entries in deterministic
// flow order, dropping zero flows.
func encodeDemands(net *topology.Network, m demand.Matrix) []wire.DemandEntry {
	var out []wire.DemandEntry
	for _, f := range m.Flows() {
		if m[f] <= 0 {
			continue
		}
		out = append(out, wire.DemandEntry{
			Src: net.Switches[f.Src].Name, Dst: net.Switches[f.Dst].Name, Demand: m[f],
		})
	}
	return out
}

func linkNames(net *topology.Network, links []topology.LinkID) []string {
	var out []string
	for _, l := range links {
		out = append(out, linkName(net, l))
	}
	return out
}

func switchNames(net *topology.Network, sws []topology.SwitchID) []string {
	var out []string
	for _, v := range sws {
		out = append(out, net.Switches[v].Name)
	}
	return out
}

// linkName renders a directed link as "src>dst" (matching the certifier's
// link naming).
func linkName(net *topology.Network, l topology.LinkID) string {
	lk := net.Links[l]
	return net.Switches[lk.Src].Name + ">" + net.Switches[lk.Dst].Name
}

// env is a materialized scenario: IDs resolved, tunnels laid out, matrices
// built. Variants (scaled, relabeled) materialize their own env.
type env struct {
	sc   *Scenario
	net  *topology.Network
	set  *tunnel.Set
	opts core.Options

	demands demand.Matrix
	prevDem demand.Matrix
	prot    core.Protection

	downLinks    map[topology.LinkID]bool
	downSwitches map[topology.SwitchID]bool
	extraLinks   map[topology.LinkID]bool
	extraSws     map[topology.SwitchID]bool
}

// materialize resolves the scenario into an env, validating every name
// reference. A nil error means Run can proceed deterministically.
func (sc *Scenario) materialize() (*env, error) {
	if sc.Topo == nil {
		return nil, fmt.Errorf("prop: scenario has no topology")
	}
	if err := sc.Topo.Validate(); err != nil {
		return nil, err
	}
	e := &env{sc: sc, net: sc.Topo}

	var err error
	if e.demands, err = resolveDemands(e.net, sc.Demands); err != nil {
		return nil, err
	}
	if e.prevDem, err = resolveDemands(e.net, sc.PrevDemands); err != nil {
		return nil, err
	}
	if len(e.demands) == 0 {
		return nil, fmt.Errorf("prop: scenario has no demands")
	}
	if len(e.prevDem) == 0 {
		// A previous interval is required to prime sessions and provide
		// the kc-relative state; default to the current demands.
		e.prevDem = e.demands.Clone()
	}

	// Tunnel layout over the union of flows, then restriction of the
	// matrices to flows that actually got tunnels (core requires every
	// demanded flow to exist in the set).
	flowSet := map[tunnel.Flow]bool{}
	for f := range e.demands {
		flowSet[f] = true
	}
	for f := range e.prevDem {
		flowSet[f] = true
	}
	flows := make([]tunnel.Flow, 0, len(flowSet))
	for f := range flowSet {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	e.set = tunnel.Layout(e.net, flows, tunnel.LayoutConfig{TunnelsPerFlow: sc.TunnelsPerFlow})
	for _, f := range flows {
		if len(e.set.Tunnels(f)) == 0 {
			delete(e.demands, f)
			delete(e.prevDem, f)
		}
	}
	if len(e.demands) == 0 {
		return nil, fmt.Errorf("prop: no demanded flow has a tunnel")
	}

	e.prot = core.Protection{Kc: sc.Kc, Ke: sc.Ke, Kv: sc.Kv}
	if e.prot.Kc < 0 || e.prot.Ke < 0 || e.prot.Kv < 0 {
		return nil, fmt.Errorf("prop: negative protection level %v", e.prot)
	}

	e.opts = core.Options{}
	switch sc.Encoding {
	case "", "sortnet":
		e.opts.Encoding = core.SortNet
	case "compact":
		e.opts.Encoding = core.Compact
	case "naive":
		e.opts.Encoding = core.Naive
	default:
		return nil, fmt.Errorf("prop: unknown encoding %q", sc.Encoding)
	}
	switch sc.RateLimiter {
	case "", "synced":
		e.opts.RateLimiter = core.LimitersSynced
	case "ordered":
		e.opts.RateLimiter = core.LimitersOrdered
	case "independent":
		e.opts.RateLimiter = core.LimitersIndependent
	default:
		return nil, fmt.Errorf("prop: unknown rate-limiter mode %q", sc.RateLimiter)
	}
	if sc.Path == PathParallel {
		e.opts.BuildWorkers = -1
	}
	switch sc.Path {
	case PathScratch, PathTemplate, PathWarm, PathParallel:
	default:
		return nil, fmt.Errorf("prop: unknown solve path %q", sc.Path)
	}

	if e.downLinks, err = resolveLinks(e.net, sc.DownLinks); err != nil {
		return nil, err
	}
	if e.downSwitches, err = resolveSwitches(e.net, sc.DownSwitches); err != nil {
		return nil, err
	}
	if e.extraLinks, err = resolveLinks(e.net, sc.ExtraFaultLinks); err != nil {
		return nil, err
	}
	if e.extraSws, err = resolveSwitches(e.net, sc.ExtraFaultSwitches); err != nil {
		return nil, err
	}
	if sc.Mutation != nil {
		switch sc.Mutation.Kind {
		case MutScaleCapacity:
			if _, err := findLink(e.net, sc.Mutation.Link); err != nil {
				return nil, err
			}
		case MutBumpRate:
			if _, err := findFlow(e.net, sc.Mutation.Src, sc.Mutation.Dst); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("prop: unknown mutation kind %q", sc.Mutation.Kind)
		}
	}
	return e, nil
}

func resolveDemands(net *topology.Network, entries []wire.DemandEntry) (demand.Matrix, error) {
	m := demand.Matrix{}
	for i, d := range entries {
		f, err := findFlow(net, d.Src, d.Dst)
		if err != nil {
			return nil, fmt.Errorf("prop: demand %d: %w", i, err)
		}
		if d.Demand < 0 || math.IsNaN(d.Demand) || math.IsInf(d.Demand, 0) {
			return nil, fmt.Errorf("prop: demand %d: bad rate %g", i, d.Demand)
		}
		if d.Demand == 0 {
			continue
		}
		m[f] += d.Demand
	}
	return m, nil
}

func findFlow(net *topology.Network, src, dst string) (tunnel.Flow, error) {
	s, ok := net.SwitchByName(src)
	if !ok {
		return tunnel.Flow{}, fmt.Errorf("unknown switch %q", src)
	}
	d, ok := net.SwitchByName(dst)
	if !ok {
		return tunnel.Flow{}, fmt.Errorf("unknown switch %q", dst)
	}
	if s == d {
		return tunnel.Flow{}, fmt.Errorf("flow %q->%q is a self-loop", src, dst)
	}
	return tunnel.Flow{Src: s, Dst: d}, nil
}

func findLink(net *topology.Network, name string) (topology.LinkID, error) {
	for _, l := range net.Links {
		if linkName(net, l.ID) == name {
			return l.ID, nil
		}
	}
	return topology.None, fmt.Errorf("prop: unknown link %q", name)
}

// resolveLinks maps "src>dst" names to a down-set covering both directions
// of each physical link.
func resolveLinks(net *topology.Network, names []string) (map[topology.LinkID]bool, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := map[topology.LinkID]bool{}
	for _, n := range names {
		l, err := findLink(net, n)
		if err != nil {
			return nil, err
		}
		out[l] = true
		if tw := net.Links[l].Twin; tw != topology.None {
			out[tw] = true
		}
	}
	return out, nil
}

func resolveSwitches(net *topology.Network, names []string) (map[topology.SwitchID]bool, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := map[topology.SwitchID]bool{}
	for _, n := range names {
		v, ok := net.SwitchByName(n)
		if !ok {
			return nil, fmt.Errorf("prop: unknown switch %q", n)
		}
		out[v] = true
	}
	return out, nil
}
