module ffc

go 1.22
