package lp

import (
	"math"
	"strings"
	"testing"
)

func TestWriteLPFormat(t *testing.T) {
	m := NewModel()
	x := m.NewVar("rate[a→b]", 0, 10)
	y := m.NewVar("free var", math.Inf(-1), Inf)
	z := m.NewVar("fixed", 5, 5)
	m.AddNamed("cap[e1]", NewExpr().Add(1, x).Add(-2, y), LE, 7)
	m.AddGE(NewExpr().Add(1, y).Add(1, z), 1)
	m.AddEQ(NewExpr().Add(3, x), 6)
	m.Maximize(NewExpr().Add(1, x).Add(-0.5, y))

	var sb strings.Builder
	if err := m.WriteLP(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Maximize",
		"cap_e1_: 1 x0 - 2 x1 <= 7",
		"c1: 1 x1 + 1 x2 >= 1",
		"c2: 3 x0 = 6",
		"Bounds",
		"0 <= x0 <= 10",
		"x1 free",
		"x2 = 5",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in LP output:\n%s", want, out)
		}
	}
}

func TestWriteLPMinimizeEmptyRow(t *testing.T) {
	m := NewModel()
	_ = m.NewVar("x", 0, Inf)
	m.AddLE(NewExpr(), 5)
	m.Minimize(NewExpr())
	var sb strings.Builder
	if err := m.WriteLP(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Minimize") || !strings.Contains(sb.String(), "0 x0 <= 5") {
		t.Fatalf("bad output:\n%s", sb.String())
	}
}

func TestIterLimitStatus(t *testing.T) {
	// A model that needs more than one iteration, capped at 1.
	m := NewModel()
	vars := make([]Var, 20)
	for i := range vars {
		vars[i] = m.NewVar("v", 0, 1)
	}
	e := NewExpr()
	obj := NewExpr()
	for _, v := range vars {
		e.Add(1, v)
		obj.Add(1, v)
	}
	m.AddGE(e, 10) // forces Phase I work
	m.Maximize(obj)
	m.MaxIters = 1
	sol, err := m.Solve()
	if err == nil {
		t.Fatal("expected iteration-limit error")
	}
	if sol.Status != IterLimit {
		t.Fatalf("status %v, want iteration-limit", sol.Status)
	}
}
