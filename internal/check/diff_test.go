package check

// The differential harness: every production path a plan can take from
// the solver to an installed configuration — scratch build, template
// rebind, warm-started session, parallel constraint emission, snapshot
// encode/restore — must yield plans that certify identically. The cold
// builds (scratch, parallel emission) share a byte-identical model and a
// cold simplex start, so their states and certificates must match
// bitwise; likewise the session builds (template rebind vs per-interval
// scratch with a carried basis) evolve the same basis over the same
// model, and a snapshot roundtrip is lossless (Go JSON round-trips
// float64 exactly). Across the groups a warm simplex may legitimately
// land on an alternate optimum, so there the assertion is the one that
// matters: every path certifies OK, exactly, at the same protection.

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
	"ffc/internal/wire"
)

// snetProt is the S-Net acceptance level: two link failures plus one
// switch failure.
var snetProt = core.Protection{Ke: 2, Kv: 1}

var (
	snetPlanOnce sync.Once
	snetPlanFx   struct {
		net  *topology.Network
		set  *tunnel.Set
		prev *core.State
		st   *core.State
		err  error
	}
)

// snetPlan solves the shared S-Net fixture once: an unprotected warm-up
// interval, then the ke=2/kv=1 plan the mutation tests and benchmarks
// certify. Demands are scaled far past capacity so the solve is
// capacity-limited — bottleneck links sit at the FFC boundary, which is
// what makes single-element mutations detectable.
func snetPlan(tb testing.TB) (*topology.Network, *tunnel.Set, *core.State, *core.State) {
	tb.Helper()
	if raceEnabled {
		tb.Skip("S-Net ke=2/kv=1 solves are prohibitively slow under the race detector")
	}
	snetPlanOnce.Do(func() {
		net := topology.SNet()
		rng := rand.New(rand.NewSource(7))
		series := demand.Generate(net, demand.Config{Intervals: 2}, rng)
		var flows []tunnel.Flow
		for f := range series[0] {
			flows = append(flows, f)
		}
		set := tunnel.Layout(net, flows, tunnel.LayoutConfig{})
		saturated := demand.Matrix{}
		for f, d := range series[1] {
			saturated[f] = 40 * d
		}
		s := core.NewSolver(net, set, core.Options{})
		prev, _, err := s.Solve(core.Input{Demands: series[0]})
		if err != nil {
			snetPlanFx.err = err
			return
		}
		st, _, err := s.Solve(core.Input{Demands: saturated, Prot: snetProt, Prev: prev})
		if err != nil {
			snetPlanFx.err = err
			return
		}
		snetPlanFx.net, snetPlanFx.set, snetPlanFx.prev, snetPlanFx.st = net, set, prev, st
	})
	if snetPlanFx.err != nil {
		tb.Fatalf("solving S-Net fixture: %v", snetPlanFx.err)
	}
	return snetPlanFx.net, snetPlanFx.set, snetPlanFx.prev, snetPlanFx.st
}

// statesEqual compares the plan data the certifier reads: rates and
// allocation vectors, bitwise.
func statesEqual(a, b *core.State) bool {
	return reflect.DeepEqual(a.Rate, b.Rate) && reflect.DeepEqual(a.Alloc, b.Alloc)
}

// certsEqual compares certificates bitwise, ignoring wall-clock.
func certsEqual(a, b *Certificate) bool {
	ca, cb := *a, *b
	ca.Elapsed, cb.Elapsed = 0, 0
	return reflect.DeepEqual(ca, cb)
}

func TestDifferentialPathEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  *topology.Network
	}{
		{"snet", topology.SNet()},
		{"fattree", topology.FatTree(4, 25)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "snet" && raceEnabled {
				t.Skip("S-Net ke=2/kv=1 solves are prohibitively slow under the race detector")
			}
			net := tc.net
			rng := rand.New(rand.NewSource(7))
			series := demand.Generate(net, demand.Config{Intervals: 2}, rng)
			var flows []tunnel.Flow
			for f := range series[0] {
				flows = append(flows, f)
			}
			set := tunnel.Layout(net, flows, tunnel.LayoutConfig{})
			in0 := core.Input{Demands: series[0], Prot: snetProt}
			in1 := core.Input{Demands: series[1], Prot: snetProt}

			solveCold := func(name string, opts core.Options) *core.State {
				st, _, err := core.NewSolver(net, set, opts).Solve(in1)
				if err != nil {
					t.Fatalf("%s solve: %v", name, err)
				}
				return st
			}
			scratch := solveCold("scratch", core.Options{DisableTemplate: true})
			parallel := solveCold("parallel", core.Options{BuildWorkers: -1})

			solveSession := func(name string, opts core.Options, wantReuse bool) *core.State {
				se := core.NewSolver(net, set, opts).NewSession()
				if _, _, err := se.Solve(in0); err != nil {
					t.Fatalf("%s interval 0: %v", name, err)
				}
				st, stats, err := se.Solve(in1)
				if err != nil {
					t.Fatalf("%s interval 1: %v", name, err)
				}
				if stats.ModelReused != wantReuse {
					t.Fatalf("%s interval 1: ModelReused=%v, want %v", name, stats.ModelReused, wantReuse)
				}
				return st
			}
			tmpl := solveSession("template", core.Options{}, true)
			warm := solveSession("warm", core.Options{DisableTemplate: true}, false)

			// Snapshot the template plan and restore it the way ctrl does at
			// boot: encode, marshal, parse against the controller's own set.
			sf := wire.EncodeState(net, set, series[1], tmpl)
			blob, err := json.Marshal(sf)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := wire.ParseState(net, set, blob)
			if err != nil {
				t.Fatalf("restoring snapshot: %v", err)
			}

			states := map[string]*core.State{
				"scratch": scratch, "template": tmpl, "warm": warm,
				"parallel": parallel, "snapshot": restored,
			}
			certs := map[string]*Certificate{}
			for name, st := range states {
				cert, err := Certify(net, set, st, st, Params{Prot: snetProt, Mode: Exact})
				if err != nil {
					t.Fatalf("certifying %s: %v", name, err)
				}
				if !cert.OK || !cert.Exact {
					t.Fatalf("%s plan failed exact certification at %+v: %+v", name, snetProt, cert.Violation)
				}
				certs[name] = cert
			}

			// Cold builds: parallel emission must not change a byte.
			if !statesEqual(scratch, parallel) {
				t.Fatal("scratch and parallel-emitted plans differ")
			}
			if !certsEqual(certs["scratch"], certs["parallel"]) {
				t.Fatalf("scratch/parallel certificates differ:\n%+v\n%+v", certs["scratch"], certs["parallel"])
			}
			// Session builds: the template rebind must match the scratch
			// rebuild with the same carried basis.
			if !statesEqual(tmpl, warm) {
				t.Fatal("template and warm (no-template) session plans differ")
			}
			if !certsEqual(certs["template"], certs["warm"]) {
				t.Fatalf("template/warm certificates differ:\n%+v\n%+v", certs["template"], certs["warm"])
			}
			// Snapshot roundtrip is lossless.
			if !statesEqual(tmpl, restored) {
				t.Fatal("snapshot roundtrip changed the plan")
			}
			if !certsEqual(certs["template"], certs["snapshot"]) {
				t.Fatalf("template/snapshot certificates differ:\n%+v\n%+v", certs["template"], certs["snapshot"])
			}

			// The ffccheck offline path rebuilds the tunnel set purely from
			// the recorded paths; flow order may differ, so per-link sums can
			// drift by ulps — the verdict and the case accounting may not.
			var back wire.StateFile
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatal(err)
			}
			rset, err := wire.TunnelSetFromState(net, &back)
			if err != nil {
				t.Fatal(err)
			}
			rst, err := wire.ResolveState(net, rset, &back)
			if err != nil {
				t.Fatal(err)
			}
			rcert, err := Certify(net, rset, rst, rst, Params{Prot: snetProt, Mode: Exact})
			if err != nil {
				t.Fatal(err)
			}
			tcert := certs["template"]
			if !rcert.OK || !rcert.Exact {
				t.Fatalf("rebuilt-set plan failed certification: %+v", rcert.Violation)
			}
			if rcert.CasesChecked != tcert.CasesChecked || rcert.CasesCovered != tcert.CasesCovered {
				t.Fatalf("rebuilt-set case accounting %d/%d, want %d/%d",
					rcert.CasesChecked, rcert.CasesCovered, tcert.CasesChecked, tcert.CasesCovered)
			}
			if d := math.Abs(rcert.WorstSlack - tcert.WorstSlack); d > 1e-9*math.Max(1, math.Abs(tcert.WorstSlack)) {
				t.Fatalf("rebuilt-set worst slack %g, want %g", rcert.WorstSlack, tcert.WorstSlack)
			}

			// A degraded last-good fallback promises congestion-freedom under
			// the faults it degraded around, nothing more: certify at zero
			// protection with the faults pre-applied.
			dl := map[topology.LinkID]bool{}
			l := net.Links[0].ID
			dl[l] = true
			if tw := net.Links[l].Twin; tw != topology.None {
				dl[tw] = true
			}
			deg := core.Degrade(net, set, tmpl, dl, nil)
			dcert, err := Certify(net, set, deg, deg, Params{Prot: core.None, Mode: Exact, DownLinks: dl})
			if err != nil {
				t.Fatal(err)
			}
			if !dcert.OK {
				t.Fatalf("degraded plan failed zero-protection certification: %+v", dcert.Violation)
			}
		})
	}
}
