// Package lp implements a self-contained linear-programming toolkit:
// a model builder (variables with bounds, linear constraints, a linear
// objective) and a bounded-variable revised-simplex solver.
//
// The FFC traffic-engineering formulations of this repository are plain
// linear programs. The original paper solved them with Microsoft Solver
// Foundation backed by CPLEX; this package is the pure-Go substitute.
// It is exact in the usual floating-point-simplex sense and is validated
// in the tests against brute-force vertex enumeration on small instances.
//
// Typical usage:
//
//	m := lp.NewModel()
//	x := m.NewVar("x", 0, 4)
//	y := m.NewVar("y", 0, lp.Inf)
//	m.AddLE(lp.NewExpr().Add(1, x).Add(2, y), 14)
//	m.AddGE(lp.NewExpr().Add(3, x).Add(-1, y), 0)
//	m.Maximize(lp.NewExpr().Add(1, x).Add(1, y))
//	sol, err := m.Solve()
//
// The solver uses a revised simplex with an explicit dense basis inverse,
// bounded variables (variable bounds never become rows), a Phase-I with
// per-row artificials, Dantzig pricing with a Bland fallback for
// anti-cycling, incremental reduced-cost updates, and periodic
// refactorization (re-inversion) for numerical hygiene.
package lp
