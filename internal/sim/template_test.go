package sim

import (
	"reflect"
	"testing"

	"ffc/internal/core"
	"ffc/internal/faults"
)

// TestTemplateInvariantUnderSolverFaults runs the same fault-injected,
// warm-started control loop with the model template enabled, disabled, and
// with parallel constraint emission, and requires identical outcomes —
// including the degraded intervals, where the loop falls back to the
// last-good plan (PR 4's path) around a timed-out, crashed, or stale solve.
// The template and the parallel builder promise byte-identical models, so
// every accounting number must match bit for bit.
func TestTemplateInvariantUnderSolverFaults(t *testing.T) {
	sc := quietScenario(t, 23, 8, 0.9)
	inject := faults.SolverFaultModel{
		Force: map[int]faults.SolverFaultKind{
			2: faults.SolverStale,
			4: faults.SolverTimeout,
			6: faults.SolverCrash,
		},
	}
	base := RunConfig{
		Prot:         core.Protection{Ke: 1},
		WarmStart:    true,
		SolverFaults: inject,
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"template", core.Options{}},
		{"scratch", core.Options{DisableTemplate: true}},
		{"template_parallel_build", core.Options{BuildWorkers: -1}},
		{"scratch_parallel_build", core.Options{DisableTemplate: true, BuildWorkers: -1}},
	}
	var ref *Result
	for _, v := range variants {
		cfg := base
		cfg.SolverOpts = v.opts
		res, err := Run(sc, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if res.DegradedIntervals != 3 {
			t.Fatalf("%s: DegradedIntervals = %d, want 3", v.name, res.DegradedIntervals)
		}
		// Wall-clock metrics differ run to run; compare everything the
		// controller's decisions and the data plane produced.
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Timeline, ref.Timeline) {
			t.Fatalf("%s: timeline differs from %s", v.name, variants[0].name)
		}
		if res.Total != ref.Total {
			t.Fatalf("%s: totals differ: %+v vs %+v", v.name, res.Total, ref.Total)
		}
		if res.Reactions != ref.Reactions || res.DegradedIntervals != ref.DegradedIntervals {
			t.Fatalf("%s: reactions/degraded differ (%d/%d vs %d/%d)",
				v.name, res.Reactions, res.DegradedIntervals, ref.Reactions, ref.DegradedIntervals)
		}
	}
}
