package sim

import (
	"math/rand"

	"ffc/internal/core"
	"ffc/internal/faults"
	"ffc/internal/metrics"
	"ffc/internal/parallel"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// OversubDataFaults reproduces Figure 1(a): for each interval, compute a TE
// state (plain TE by default; pass prot for an FFC variant), fail nLinks
// random physical links (or one switch when failSwitch is set), rescale,
// and record the maximum link oversubscription percentage. Intervals run
// across sc.Parallelism workers; each draws its fault set from a
// faults.DeriveSeed-derived RNG, so the distribution is bit-identical at
// any worker count.
func OversubDataFaults(sc Scenario, prot core.Protection, nLinks int, failSwitch bool) (*metrics.Dist, error) {
	solver := core.NewSolver(sc.Net, sc.Tun, core.Options{})
	states, err := solveSeries(solver, sc, prot, sc.Parallelism)
	if err != nil {
		return nil, err
	}
	phys := physicalLinkIDs(sc.Net)
	samples := make([]float64, len(sc.Series))
	parallel.ForEach(len(sc.Series), sc.Parallelism, func(t int) {
		rng := rand.New(rand.NewSource(faults.DeriveSeed(sc.Seed, int64(t))))
		down := map[topology.LinkID]bool{}
		downSw := map[topology.SwitchID]bool{}
		if failSwitch {
			downSw[topology.SwitchID(rng.Intn(sc.Net.NumSwitches()))] = true
		} else {
			for _, i := range rng.Perm(len(phys))[:min(nLinks, len(phys))] {
				down[phys[i]] = true
				if tw := sc.Net.Links[phys[i]].Twin; tw != topology.None {
					down[tw] = true
				}
			}
		}
		samples[t] = maxOversubPct(sc.Net, sc.Tun, states[t], down, downSw)
	})
	var dist metrics.Dist
	for _, s := range samples {
		dist.Add(s)
	}
	return &dist, nil
}

// OversubControlFaults reproduces Figure 1(b): simulate a network update
// every interval and make nStale random ingress switches keep the previous
// interval's configuration; record the maximum link oversubscription.
// Parallelized like OversubDataFaults: states first (independent unless
// kc > 0 chains them), then the per-interval stale replays.
func OversubControlFaults(sc Scenario, prot core.Protection, nStale int) (*metrics.Dist, error) {
	solver := core.NewSolver(sc.Net, sc.Tun, core.Options{})
	states, err := solveSeries(solver, sc, prot, sc.Parallelism)
	if err != nil {
		return nil, err
	}
	srcs := ingressSwitches(sc.Tun)
	if len(states) == 0 {
		return &metrics.Dist{}, nil
	}
	// The first interval has no previous configuration to be stale on.
	samples := make([]float64, len(states)-1)
	parallel.ForEach(len(samples), sc.Parallelism, func(i int) {
		t := i + 1
		rng := rand.New(rand.NewSource(faults.DeriveSeed(sc.Seed, int64(t))))
		stale := map[topology.SwitchID]bool{}
		for _, j := range rng.Perm(len(srcs))[:min(nStale, len(srcs))] {
			stale[srcs[j]] = true
		}
		samples[i] = maxOversubStalePct(sc.Net, sc.Tun, states[t], states[t-1], stale)
	})
	var dist metrics.Dist
	for _, s := range samples {
		dist.Add(s)
	}
	return &dist, nil
}

func physicalLinkIDs(net *topology.Network) []topology.LinkID {
	var out []topology.LinkID
	for _, l := range net.Links {
		if l.Twin == topology.None || l.ID < l.Twin {
			out = append(out, l.ID)
		}
	}
	return out
}

func ingressSwitches(tun *tunnel.Set) []topology.SwitchID {
	seen := map[topology.SwitchID]bool{}
	var out []topology.SwitchID
	for _, f := range tun.All() {
		if !seen[f.Src] {
			seen[f.Src] = true
			out = append(out, f.Src)
		}
	}
	return out
}

// maxOversubPct rescales every flow around the fault sets and returns the
// worst (load−cap)/cap×100 over surviving links (0 when none overloads).
func maxOversubPct(net *topology.Network, tun *tunnel.Set, st *core.State,
	down map[topology.LinkID]bool, downSw map[topology.SwitchID]bool) float64 {

	loads := map[topology.LinkID]float64{}
	for _, f := range tun.All() {
		rate := st.Rate[f]
		if rate == 0 || downSw[f.Src] || downSw[f.Dst] {
			continue
		}
		tl := tun.Rescale(f, st.Weights(f), rate, down, downSw)
		for _, t := range tun.Tunnels(f) {
			if tl[t.Index] == 0 {
				continue
			}
			for _, l := range t.Links {
				loads[l] += tl[t.Index]
			}
		}
	}
	worst := 0.0
	for l, load := range loads {
		if down[l] {
			continue
		}
		if over := (load - net.Links[l].Capacity) / net.Links[l].Capacity * 100; over > worst {
			worst = over
		}
	}
	return worst
}

// maxOversubStalePct computes the worst oversubscription when the switches
// in stale keep oldSt's splitting weights while rate limiters carry newSt's
// rates (the §2.2 situation).
func maxOversubStalePct(net *topology.Network, tun *tunnel.Set, newSt, oldSt *core.State,
	stale map[topology.SwitchID]bool) float64 {

	loads := map[topology.LinkID]float64{}
	for _, f := range tun.All() {
		rate := newSt.Rate[f]
		if rate == 0 {
			continue
		}
		w := newSt.Weights(f)
		if stale[f.Src] {
			if pa, ok := oldSt.Alloc[f]; ok && sum(pa) > 0 {
				w = tunnel.Weights(pa)
			}
		}
		for _, t := range tun.Tunnels(f) {
			if t.Index >= len(w) || w[t.Index] == 0 {
				continue
			}
			share := rate * w[t.Index]
			for _, l := range t.Links {
				loads[l] += share
			}
		}
	}
	worst := 0.0
	for l, load := range loads {
		if over := (load - net.Links[l].Capacity) / net.Links[l].Capacity * 100; over > worst {
			worst = over
		}
	}
	return worst
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
