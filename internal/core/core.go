// Package core implements the paper's contribution: FFC traffic
// engineering. It builds linear programs that compute tunnel-level traffic
// allocations guaranteed congestion-free under arbitrary combinations of up
// to kc control-plane faults (switches stuck on their previous
// configuration), ke link failures, and kv switch failures (with ingress
// switches proportionally rescaling onto residual tunnels).
//
// The basic TE formulation is Eqns 1–4 of the paper; control-plane FFC is
// Eqns 5–8 reduced via the bounded M-sum transformation to Eqn 14;
// data-plane FFC is Eqn 9 reduced to Eqn 15 (sound, and exact for disjoint
// layouts — Lemma 1). The combinatorially many fault cases are encoded in
// O(k·n) constraints with partial sorting networks (internal/sortnet);
// a compact top-k dual encoding and a naive full enumeration are available
// for ablation and validation.
//
// Extensions: multi-priority cascades (§5.1), congestion-free multi-step
// updates robust to update failures (§5.2), approximate max-min fairness
// (§5.3), minimize-MLU TE for networks without rate control (§5.4),
// rate-limiter fault models (§5.5), and uncertain current state (§5.6).
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"ffc/internal/demand"
	"ffc/internal/lp"
	"ffc/internal/obs"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// Protection is the FFC protection level (kc, ke, kv).
type Protection struct {
	// Kc is the number of switch configuration (control-plane) faults to
	// tolerate.
	Kc int
	// Ke is the number of link (data-plane) failures to tolerate.
	Ke int
	// Kv is the number of switch (data-plane) failures to tolerate.
	Kv int
}

// None is the zero protection level (plain TE).
var None = Protection{}

func (p Protection) String() string { return fmt.Sprintf("(%d,%d,%d)", p.Kc, p.Ke, p.Kv) }

// Encoding selects how bounded M-sum constraints are emitted.
type Encoding int

const (
	// SortNet uses the paper's partial bubble sorting network (§4.4.2).
	SortNet Encoding = iota
	// Compact uses the top-k dual (CVaR-style) encoding: exactly the same
	// feasible region with N+1 variables and N constraints per bound.
	Compact
	// Naive enumerates every fault case explicitly — intractable beyond
	// tiny networks; exists to demonstrate exactly that (Table 2's
	// ">12 hours" contrast) and to validate the reductions.
	Naive
)

func (e Encoding) String() string {
	switch e {
	case SortNet:
		return "sortnet"
	case Compact:
		return "compact"
	case Naive:
		return "naive"
	}
	return "?"
}

// RateLimiterMode models whether rate-limiter updates can also fail (§5.5).
type RateLimiterMode int

const (
	// LimitersSynced assumes rate-limiter updates always succeed (Eqn 8):
	// a stale switch splits the *new* rate with *old* weights.
	LimitersSynced RateLimiterMode = iota
	// LimitersOrdered assumes switches and limiters are updated in the
	// congestion-safe order of SWAN (Eqn 18): βf,t = max(a'f,t, af,t).
	LimitersOrdered
	// LimitersIndependent allows limiter and switch updates to fail
	// independently (Eqn 17). The old-rate×new-weights cross term is
	// bilinear in the LP variables; it is handled soundly by requiring
	// each previously-active flow's allocation to keep covering its old
	// rate (Σ_t a_{f,t} ≥ b'f), which makes w_t·b'f ≤ a_{f,t} ≤ β_{f,t}
	// per tunnel. A shrinking flow therefore releases its link
	// reservation only after its rate limiter is confirmed updated.
	LimitersIndependent
)

// Objective selects the TE goal.
type Objective int

const (
	// MaxThroughput maximizes Σ bf (Eqn 1), the default.
	MaxThroughput Objective = iota
	// MinMLU minimizes maximum link utilization for networks that cannot
	// rate-control flows (§5.4); bf ≡ df and links may exceed capacity.
	MinMLU
	// PlanCapacity is the §3.3 provisioning use case: carry the full
	// demand (bf ≡ df) and minimize the total extra link capacity needed
	// for the requested protection level. The per-link additions are
	// returned in Stats.AddedCapacity.
	PlanCapacity
)

// Options tunes the solver.
type Options struct {
	// Encoding of bounded M-sum constraints; default SortNet.
	Encoding Encoding
	// RateLimiter fault model; default LimitersSynced.
	RateLimiter RateLimiterMode
	// Objective; default MaxThroughput.
	Objective Objective
	// MLUSigma is §5.4's σ weighting fault-case MLU; default 0.5.
	MLUSigma float64
	// MiceFraction: flows collectively carrying up to this fraction of
	// total demand are "mice" whose tunnel split is fixed to uniform
	// (§6), removing their a-variables. Default 0 (disabled); the
	// experiment harness sets 0.01.
	MiceFraction float64
	// OldLoadSkip: sources whose previous traffic on a link is below this
	// fraction of capacity are ignored in that link's control-plane
	// constraint (§6). Default 0 (disabled); the harness sets 1e-5.
	OldLoadSkip float64
	// CapacityCost weights each link's expansion in the PlanCapacity
	// objective (e.g. proportional to fiber distance). Nil means unit
	// cost per capacity unit.
	CapacityCost func(topology.LinkID) float64
	// WeightSkip: old tunnel-splitting weights below this threshold are
	// treated as zero in control-plane FFC (in the spirit of §6's
	// negligible-load skips). A stale switch can then overload a link by
	// at most Σ_f |Tf|·WeightSkip·bf beyond the guarantee — set 0 (the
	// default) for exactness; the experiment harness uses 1e-3.
	WeightSkip float64
	// SolveBudget is the default wall-clock budget per computation
	// (formulation + simplex); 0 means unlimited. Warm-started Session
	// re-solves get SolveBudget/4 — they normally finish in a few
	// iterations, and a pathological re-solve must not eat the control
	// interval. Input.Budget.Deadline overrides per computation.
	SolveBudget time.Duration
	// BuildWorkers bounds the goroutines used to emit independent
	// constraint blocks (per-link capacity rows, per-flow data-plane
	// sortnet blocks, per-link control-plane blocks) during formulation:
	// 0 (the default) builds serially, negative values use all cores,
	// positive values use exactly that many. Blocks are staged into
	// detached batches and spliced in a fixed order, so the built model —
	// and therefore the solution — is byte-identical for every setting.
	BuildWorkers int
	// DisableTemplate turns off Session model-template reuse (see
	// ModelTemplate): every Session solve then re-formulates from scratch,
	// keeping only the warm-start basis carry. Exists for A/B comparison
	// and as an escape hatch; the template path produces bit-identical
	// models, so the default (enabled) is always safe.
	DisableTemplate bool
}

// Uncertain describes a flow whose current configuration is unknown between
// two candidate configurations (§5.6): the update from (AllocOlder,
// RateOlder) to the entry in Input.Prev may or may not have been applied.
type Uncertain struct {
	AllocOlder []float64
	RateOlder  float64
}

// Input is one TE computation request.
type Input struct {
	// Demands gives df per flow. Flows must exist in the solver's tunnel
	// set.
	Demands demand.Matrix
	// Prot is the protection level.
	Prot Protection
	// Prev is the currently installed configuration; required when
	// Prot.Kc > 0 (control-plane FFC is relative to the old state).
	Prev *State
	// Capacity overrides link capacities (e.g. residual capacity in
	// priority cascades); nil uses the topology's.
	Capacity map[topology.LinkID]float64
	// Uncertain marks flows with unconfirmed configuration (§5.6). Such
	// flows are re-pinned to Prev's configuration and both old
	// configurations are planned for.
	Uncertain map[tunnel.Flow]Uncertain
	// RateCaps further upper-bounds bf per flow (used by max-min
	// fairness iterations); nil means no extra caps.
	RateCaps map[tunnel.Flow]float64
	// FixedRates pins bf exactly (frozen flows in fairness iterations).
	FixedRates map[tunnel.Flow]float64
	// RateFloors lower-bounds bf per flow (the previous iteration's
	// guarantee in max-min fairness). Floors above the effective upper
	// bound are clamped down to it.
	RateFloors map[tunnel.Flow]float64
	// DownLinks and DownSwitches mark elements currently failed (faults
	// persisting from earlier intervals). Tunnels crossing them get zero
	// allocation, and the residual-tunnel bound τf is computed over the
	// surviving tunnels only.
	DownLinks    map[topology.LinkID]bool
	DownSwitches map[topology.SwitchID]bool
	// Demand extends protection to demand mispredictions (§9's future-work
	// direction); only meaningful with the MinMLU objective.
	Demand DemandUncertainty
	// Budget bounds this computation (deadline, iteration cap,
	// cancellation); see Budget. The zero value defers to the solver's
	// Options.SolveBudget.
	Budget Budget
}

// aliveTunnels returns which of f's tunnels survive the input's down sets
// (all true when nothing is down).
func (in *Input) aliveTunnels(net *topology.Network, set *tunnel.Set, f tunnel.Flow) []bool {
	ts := set.Tunnels(f)
	alive := make([]bool, len(ts))
	for i, t := range ts {
		alive[i] = t.Alive(net, in.DownLinks, in.DownSwitches)
	}
	return alive
}

// State is one TE configuration: per-flow granted rate and per-tunnel
// allocation (the paper's {bf} and {af,t}).
type State struct {
	Rate  map[tunnel.Flow]float64
	Alloc map[tunnel.Flow][]float64
}

// NewState returns an empty configuration.
func NewState() *State {
	return &State{Rate: map[tunnel.Flow]float64{}, Alloc: map[tunnel.Flow][]float64{}}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := NewState()
	for f, r := range s.Rate {
		c.Rate[f] = r
	}
	for f, a := range s.Alloc {
		c.Alloc[f] = append([]float64(nil), a...)
	}
	return c
}

// Weights returns the tunnel splitting weights installed for f.
func (s *State) Weights(f tunnel.Flow) []float64 { return tunnel.Weights(s.Alloc[f]) }

// sortedFlows returns m's keys in deterministic order. Every accumulation
// over a State iterates through it: floating-point sums must add in a fixed
// order, or run-to-run ULP noise leaks into anything compared against a
// boundary (the control-plane formulation skips links whose previous load
// already exceeds capacity — and a plain-TE previous state sits exactly at
// capacity on its bottleneck links).
func sortedFlows(m map[tunnel.Flow]float64) []tunnel.Flow {
	flows := make([]tunnel.Flow, 0, len(m))
	for f := range m {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	return flows
}

// TotalRate sums granted rates (in deterministic flow order, so repeated
// runs accumulate identical floating-point results).
func (s *State) TotalRate() float64 {
	var t float64
	for _, f := range sortedFlows(s.Rate) {
		t += s.Rate[f]
	}
	return t
}

// LinkLoads returns the no-fault load each link carries under allocation
// {af,t} (upper bound on actual traffic; actual is weights×rate).
// Accumulation is in deterministic flow order (see sortedFlows).
func (s *State) LinkLoads(set *tunnel.Set) map[topology.LinkID]float64 {
	loads := map[topology.LinkID]float64{}
	flows := make([]tunnel.Flow, 0, len(s.Alloc))
	for f := range s.Alloc {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	for _, f := range flows {
		alloc := s.Alloc[f]
		for _, t := range set.Tunnels(f) {
			if t.Index >= len(alloc) {
				continue
			}
			a := alloc[t.Index]
			if a == 0 {
				continue
			}
			for _, l := range t.Links {
				loads[l] += a
			}
		}
	}
	return loads
}

// ActualLinkLoads returns the traffic each link carries when every flow
// sends Rate[f] split by Weights(f) (Σ loads = Σ rates per flow).
// Accumulation is in deterministic flow order (see sortedFlows): the
// control-plane formulation compares these loads against capacity, and the
// skip decision must not depend on map iteration order.
func (s *State) ActualLinkLoads(set *tunnel.Set) map[topology.LinkID]float64 {
	loads := map[topology.LinkID]float64{}
	for _, f := range sortedFlows(s.Rate) {
		r := s.Rate[f]
		if r == 0 {
			continue
		}
		w := s.Weights(f)
		for _, t := range set.Tunnels(f) {
			if t.Index >= len(w) || w[t.Index] == 0 {
				continue
			}
			for _, l := range t.Links {
				loads[l] += r * w[t.Index]
			}
		}
	}
	return loads
}

// Stats reports solver work for one computation.
type Stats struct {
	Status lp.Status
	// Outcome classifies the computation for control-loop decisions
	// (optimal / budget-hit / infeasible / solver-error). It is set on
	// every return path, including errors.
	Outcome     Outcome
	Objective   float64
	Vars        int
	Constraints int
	// EncodingVars/EncodingConstraints count only the sorting-network (or
	// alternative) auxiliaries, the paper's §4.4.3 accounting.
	EncodingVars        int
	EncodingConstraints int
	Iters               int
	SolveTime           time.Duration
	// BuildTime is the slice of SolveTime spent constructing the LP
	// (formulation and encoding) before the simplex ran.
	BuildTime time.Duration
	// LP breaks down the simplex work (iteration split, reinversions,
	// presolve reductions, basis fill-in).
	LP lp.SolveStats
	// MLU is the max link utilization of the result (MinMLU objective).
	MLU float64
	// FaultMLU is the planned worst-case link utilization under the
	// protected fault/misprediction cases (MinMLU objective with kc > 0 or
	// demand uncertainty; 0 otherwise).
	FaultMLU float64
	// LinkShadowPrice maps each capacity-constrained link to its dual
	// value: the marginal throughput gained per unit of extra capacity
	// (MaxThroughput objective only; links whose constraint is slack are
	// omitted or zero).
	LinkShadowPrice map[topology.LinkID]float64
	// AddedCapacity is the per-link capacity expansion chosen by the
	// PlanCapacity objective (zero entries omitted).
	AddedCapacity map[topology.LinkID]float64
	// Warm marks solves whose simplex started from a previous basis
	// (Session solves only).
	Warm bool
	// ModelReused marks Session solves that rebound the cached LP in place
	// (bounds/RHS mutation) instead of re-formulating it.
	ModelReused bool
}

// Solver computes FFC TE configurations over a fixed network + tunnel set.
type Solver struct {
	Net  *topology.Network
	Tun  *tunnel.Set
	Opts Options

	// Cached incidence: for every directed link, the (flow, tunnel) pairs
	// crossing it.
	incidence map[topology.LinkID][]flowTunnel
	// Cached (p,q) per flow.
	pq map[tunnel.Flow][2]int
}

type flowTunnel struct {
	flow tunnel.Flow
	idx  int // tunnel index within the flow
}

// NewSolver builds a solver. The tunnel set must cover every flow that will
// appear in inputs.
func NewSolver(net *topology.Network, tun *tunnel.Set, opts Options) *Solver {
	if opts.MLUSigma == 0 {
		opts.MLUSigma = 0.5
	}
	s := &Solver{Net: net, Tun: tun, Opts: opts,
		incidence: map[topology.LinkID][]flowTunnel{},
		pq:        map[tunnel.Flow][2]int{}}
	for _, f := range tun.All() {
		for _, t := range tun.Tunnels(f) {
			for _, l := range t.Links {
				s.incidence[l] = append(s.incidence[l], flowTunnel{f, t.Index})
			}
		}
		p, q := tun.PQ(f)
		s.pq[f] = [2]int{p, q}
	}
	return s
}

// capacity returns the effective capacity of link e for in.
func (s *Solver) capacity(in *Input, e topology.LinkID) float64 {
	if in.Capacity != nil {
		if c, ok := in.Capacity[e]; ok {
			return c
		}
	}
	return s.Net.Links[e].Capacity
}

// tauOf returns τf = |Tf| − ke·pf − kv·qf, the guaranteed number of residual
// tunnels for f under the protection level.
func (s *Solver) tauOf(f tunnel.Flow, prot Protection) int {
	nT := len(s.Tun.Tunnels(f))
	pq := s.pq[f]
	return nT - prot.Ke*pq[0] - prot.Kv*pq[1]
}

// tauAlive is tauOf restricted to the surviving tunnel subset: τ computed
// with (p,q) measured over alive tunnels only.
func (s *Solver) tauAlive(f tunnel.Flow, prot Protection, alive []bool) int {
	n := 0
	linkUse := map[topology.LinkID]int{}
	swUse := map[topology.SwitchID]int{}
	p, q := 0, 0
	for _, t := range s.Tun.Tunnels(f) {
		if !alive[t.Index] {
			continue
		}
		n++
		for _, l := range t.Links {
			cl := canonLink(s.Net, l)
			linkUse[cl]++
			if linkUse[cl] > p {
				p = linkUse[cl]
			}
		}
		for _, v := range t.Switches[1 : len(t.Switches)-1] {
			swUse[v]++
			if swUse[v] > q {
				q = swUse[v]
			}
		}
	}
	return n - prot.Ke*p - prot.Kv*q
}

// FormulateOnly builds the LP for in and reports its size without solving
// it — used to quantify encodings whose solve would be impractical (the
// naive enumeration at scale).
func (s *Solver) FormulateOnly(in Input) (*Stats, error) {
	start := time.Now()
	b := newBuilder(s, &in)
	if err := b.formulate(); err != nil {
		return nil, err
	}
	return &Stats{
		Vars:                b.model.NumVars(),
		Constraints:         b.model.NumRows(),
		EncodingVars:        b.encVars,
		EncodingConstraints: b.encCons,
		SolveTime:           time.Since(start),
	}, nil
}

// Solve computes a TE configuration for in.
func (s *Solver) Solve(in Input) (*State, *Stats, error) { return s.solve(in, nil) }

// solve is the shared implementation behind Solver.Solve (se == nil, always
// a fresh model and cold simplex start) and Session.Solve (cached model
// rebound in place when the structure allows it, simplex warm-started from
// the previous basis).
//
// Error returns always carry non-nil Stats with Stats.Outcome set, so the
// control loop can choose its fallback; on a budget hit that reached
// feasibility, the best-so-far State is returned alongside the error.
// Panics escaping the formulation (including lp's internal-invariant
// checks) are recovered into a solver-error outcome; panics inside the
// simplex are already recovered at the lp boundary.
func (s *Solver) solve(in Input, se *Session) (st *State, stats *Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			st = nil
			if stats == nil {
				stats = &Stats{}
			}
			stats.Outcome = OutcomeSolverError
			err = fmt.Errorf("core: TE solve panicked: %v", r)
		}
	}()
	if err := in.validate(); err != nil {
		return nil, &Stats{Outcome: OutcomeSolverError}, err
	}
	sp := obs.StartSpan("core.solve")
	build := sp.Child("build")
	start := time.Now()
	var b *builder
	var ws *lp.WarmStart
	reused := false
	if se != nil {
		ws = se.warm
		if !s.Opts.DisableTemplate && se.tmpl != nil && se.tmpl.Matches(&in) {
			b = se.tmpl.instantiate(in)
			reused = true
			obsTemplateHits.Inc()
			obsSessionRebinds.Inc()
		}
	}
	if b == nil {
		b = newBuilder(s, &in)
		if err := b.formulate(); err != nil {
			return nil, &Stats{Outcome: OutcomeSolverError}, err
		}
		if se != nil {
			obsSessionBuilds.Inc()
			if s.Opts.DisableTemplate {
				se.tmpl = nil
			} else {
				se.tmpl = newTemplate(s, b, in)
				obsTemplateMisses.Inc()
			}
		}
	}
	buildTime := time.Since(start)
	build.End()
	// The budget's deadline runs from start, so formulation time counts
	// against it — the controller's window covers the whole computation.
	opts := lp.SolveOpts{MaxIters: in.Budget.MaxIters, Ctx: in.Budget.Ctx, Hook: in.Budget.Hook}
	deadline := in.Budget.Deadline
	if deadline == 0 && s.Opts.SolveBudget > 0 {
		deadline = s.Opts.SolveBudget
		if se != nil && ws != nil {
			deadline /= warmBudgetDiv
		}
	}
	if deadline != 0 {
		opts.Deadline = start.Add(deadline)
	}
	lpSpan := sp.Child("lp")
	sol, err := b.model.SolveWith(ws, opts)
	lpSpan.End()
	if se != nil && sol != nil && sol.Warm() != nil {
		se.warm = sol.Warm()
	}
	stats = &Stats{
		Vars:                b.model.NumVars(),
		Constraints:         b.model.NumRows(),
		EncodingVars:        b.encVars,
		EncodingConstraints: b.encCons,
		SolveTime:           time.Since(start),
		BuildTime:           buildTime,
		ModelReused:         reused,
		Outcome:             outcomeOf(sol, err),
	}
	if sol != nil {
		stats.Status = sol.Status
		stats.Objective = sol.Objective
		stats.Iters = sol.Iters
		stats.LP = sol.Stats
		stats.Warm = sol.Stats.Warm
	}
	if deadline > 0 && obs.Enabled() {
		obsSolveVsDeadline.Observe(int64(100 * stats.SolveTime / deadline))
	}
	if err != nil {
		sp.End()
		var be *lp.BudgetError
		if errors.As(err, &be) && be.Best != nil {
			// The budget hit after feasibility: hand back the best-so-far
			// plan with the error so the caller may install it rather than
			// fall back to the last-good configuration.
			st = b.extract(be.Best)
		}
		return st, stats, fmt.Errorf("core: TE solve failed: %w", err)
	}
	extract := sp.Child("extract")
	st = b.extract(sol)
	extract.End()
	defer sp.End()
	switch s.Opts.Objective {
	case MinMLU:
		stats.MLU = sol.Value(b.mluVar)
		if b.haveMLUFault {
			stats.FaultMLU = sol.Value(b.mluFaultVar)
		}
	case MaxThroughput:
		stats.LinkShadowPrice = map[topology.LinkID]float64{}
		for l, row := range b.capRow {
			if d := sol.Duals[row]; d > 1e-9 {
				stats.LinkShadowPrice[l] = d
			}
		}
	case PlanCapacity:
		stats.AddedCapacity = map[topology.LinkID]float64{}
		for l, v := range b.capVar {
			if x := sol.Value(v); x > 1e-9 {
				stats.AddedCapacity[l] = x
			}
		}
	}
	return st, stats, nil
}

// outcomeOf classifies an lp solve result (sol may be nil after a
// recovered solver panic).
func outcomeOf(sol *lp.Solution, err error) Outcome {
	switch {
	case err == nil:
		return OutcomeOptimal
	case sol == nil:
		return OutcomeSolverError
	case sol.Status == lp.BudgetExceeded || sol.Status == lp.IterLimit:
		return OutcomeBudgetHit
	case sol.Status == lp.Infeasible || sol.Status == lp.Unbounded:
		return OutcomeInfeasible
	}
	return OutcomeSolverError
}

// almostLE reports a ≤ b within the verification tolerance.
func almostLE(a, b float64) bool { return a <= b+1e-6*math.Max(1, math.Abs(b)) }
