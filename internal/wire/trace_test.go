package wire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

func exampleSetAndState(t *testing.T) (*topology.Network, *tunnel.Set, demand.Matrix, *core.State) {
	t.Helper()
	net := topology.Example4()
	var flows []tunnel.Flow
	for src := range net.Switches {
		for dst := range net.Switches {
			if src != dst {
				flows = append(flows, tunnel.Flow{Src: topology.SwitchID(src), Dst: topology.SwitchID(dst)})
			}
		}
	}
	set := tunnel.Layout(net, flows, tunnel.LayoutConfig{TunnelsPerFlow: 3, P: 1, Q: 3})
	st := core.NewState()
	demands := demand.Matrix{}
	for i, f := range set.All() {
		ts := set.Tunnels(f)
		alloc := make([]float64, len(ts))
		var sum float64
		for j := range alloc {
			alloc[j] = float64((i+j)%5) * 0.5
			sum += alloc[j]
		}
		st.Alloc[f] = alloc
		st.Rate[f] = sum
		demands[f] = sum + 1
	}
	return net, set, demands, st
}

func TestTraceRecordRoundTrip(t *testing.T) {
	net, set, demands, st := exampleSetAndState(t)
	sf := EncodeState(net, set, demands, st)
	rec := &TraceRecord{
		Seq: 3, Class: "gold", Kc: 1, Ke: 2, Kv: 1,
		Degraded:     "solver timeout",
		DownLinks:    [][2]string{{"s1", "s2"}},
		DownSwitches: []string{"s3"},
		State:        sf,
	}
	var buf bytes.Buffer
	if err := WriteTraceRecord(&buf, rec); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceRecord(&buf, &TraceRecord{Seq: 4, State: sf}); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no first line")
	}
	got, err := ParseTraceRecord(sc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 || got.Class != "gold" || got.Kc != 1 || got.Ke != 2 || got.Kv != 1 ||
		got.Degraded != "solver timeout" || len(got.DownLinks) != 1 || len(got.DownSwitches) != 1 {
		t.Fatalf("round trip mangled record: %+v", got)
	}

	// The recorded paths alone must rebuild a set on which the state
	// resolves identically to the original.
	set2, err := TunnelSetFromState(net, &got.State)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := ResolveState(net, set2, &got.State)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range set.All() {
		if st2.Rate[f] != st.Rate[f] {
			t.Fatalf("flow %v: rate %v != %v", f, st2.Rate[f], st.Rate[f])
		}
		a, b := st.Alloc[f], st2.Alloc[f]
		if len(a) != len(b) {
			t.Fatalf("flow %v: alloc length %d != %d", f, len(b), len(a))
		}
		// Tunnel order may differ between the layouts; compare per-path.
		for ti, tun := range set.Tunnels(f) {
			found := false
			for _, tun2 := range set2.Tunnels(f) {
				if len(tun.Links) == len(tun2.Links) && b[tun2.Index] == a[ti] {
					found = true
					break
				}
			}
			if !found && a[ti] != 0 {
				t.Fatalf("flow %v tunnel %d: alloc %v not found in rebuilt set", f, ti, a[ti])
			}
		}
	}

	if !sc.Scan() {
		t.Fatal("no second line")
	}
	if got2, err := ParseTraceRecord(sc.Bytes()); err != nil || got2.Seq != 4 {
		t.Fatalf("second record: %+v err %v", got2, err)
	}
}

func TestParseTraceRecordErrors(t *testing.T) {
	if _, err := ParseTraceRecord([]byte(`{"seq":`)); err == nil {
		t.Fatal("garbage should error")
	}
	if _, err := ParseTraceRecord([]byte(`{"seq":1,"kc":-1}`)); err == nil ||
		!strings.Contains(err.Error(), "negative protection") {
		t.Fatalf("negative protection: %v", err)
	}
}

func TestTunnelSetFromStateErrors(t *testing.T) {
	net, set, demands, st := exampleSetAndState(t)
	good := EncodeState(net, set, demands, st)

	mutate := func(fn func(sf *StateFile)) *StateFile {
		cp := good
		cp.Flows = append([]StateFlow(nil), good.Flows...)
		fn(&cp)
		return &cp
	}

	cases := []struct {
		name string
		sf   *StateFile
		want string
	}{
		{"unknown-switch", mutate(func(sf *StateFile) {
			f := sf.Flows[0]
			f.Src = "nope"
			sf.Flows[0] = f
		}), "unknown switch"},
		{"self-flow", mutate(func(sf *StateFile) {
			f := sf.Flows[0]
			f.Dst = f.Src
			sf.Flows[0] = f
		}), "src == dst"},
		{"duplicate-flow", mutate(func(sf *StateFile) {
			sf.Flows = append(sf.Flows, sf.Flows[0])
		}), "duplicate flow"},
		{"short-path", mutate(func(sf *StateFile) {
			f := sf.Flows[0]
			f.Tunnels = append([]TunnelAlloc(nil), f.Tunnels...)
			f.Tunnels[0].Path = f.Tunnels[0].Path[:1]
			sf.Flows[0] = f
		}), "hops"},
		{"unknown-hop", mutate(func(sf *StateFile) {
			f := sf.Flows[0]
			f.Tunnels = append([]TunnelAlloc(nil), f.Tunnels...)
			f.Tunnels[0].Path = append([]string(nil), f.Tunnels[0].Path...)
			f.Tunnels[0].Path[0] = "nope2"
			sf.Flows[0] = f
		}), "unknown switch"},
	}
	for _, tc := range cases {
		if _, err := TunnelSetFromState(net, tc.sf); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}

	// No-link: a path naming two non-adjacent switches.
	var aName, bName string
outer:
	for a := range net.Switches {
		for b := range net.Switches {
			if a == b {
				continue
			}
			if net.FindLink(topology.SwitchID(a), topology.SwitchID(b)) == topology.None {
				aName, bName = net.Switches[a].Name, net.Switches[b].Name
				break outer
			}
		}
	}
	if aName != "" {
		bad := mutate(func(sf *StateFile) {
			f := sf.Flows[0]
			f.Tunnels = append([]TunnelAlloc(nil), f.Tunnels...)
			f.Tunnels[0].Path = []string{aName, bName}
			sf.Flows[0] = f
		})
		if _, err := TunnelSetFromState(net, bad); err == nil ||
			(!strings.Contains(err.Error(), "no link") && !strings.Contains(err.Error(), "don't match")) {
			t.Fatalf("no-link path: %v", err)
		}
	}
}

func TestResolveDownSets(t *testing.T) {
	net := topology.Example4()
	dl, ds, err := ResolveDownSets(net, [][2]string{{"s1", "s2"}}, []string{"s3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("down switches: %v", ds)
	}
	// Both directions of the physical link must be down.
	s1, _ := net.SwitchByName("s1")
	s2, _ := net.SwitchByName("s2")
	fwd := net.FindLink(s1, s2)
	rev := net.FindLink(s2, s1)
	if fwd == topology.None || !dl[fwd] {
		t.Fatalf("forward link not down: %v", dl)
	}
	if rev != topology.None && !dl[rev] {
		t.Fatalf("reverse link not down: %v", dl)
	}

	// Reversed name order resolves too.
	dl2, _, err := ResolveDownSets(net, [][2]string{{"s2", "s1"}}, nil)
	if err != nil || len(dl2) != len(dl) {
		t.Fatalf("reversed pair: %v %v", dl2, err)
	}

	if _, _, err := ResolveDownSets(net, [][2]string{{"s1", "nope"}}, nil); err == nil {
		t.Fatal("unknown link switch should error")
	}
	if _, _, err := ResolveDownSets(net, nil, []string{"nope"}); err == nil {
		t.Fatal("unknown down switch should error")
	}
	if _, _, err := ResolveDownSets(net, [][2]string{{"s1", "s4"}}, nil); err == nil {
		t.Log("s1-s4 adjacent in Example4; skipping no-link assertion")
	}
}
