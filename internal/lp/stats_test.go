package lp

import "testing"

// TestSolveStatsPopulated checks the work counters surface on Solution:
// a model with a fixed column and a vacuous row reports the presolve
// reductions, and the iteration split is consistent.
func TestSolveStatsPopulated(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 10)
	y := m.NewVar("y", 0, 10)
	f := m.NewVar("f", 3, 3) // fixed: presolve folds it
	m.AddLE(NewExpr().Add(1, x).Add(1, y).Add(1, f), 9)
	m.AddGE(NewExpr().Add(1, x).Add(2, y), 4) // needs an artificial → phase 1
	m.AddLE(NewExpr().Add(1, f), 5)           // vacuous after folding
	m.Maximize(NewExpr().Add(2, x).Add(3, y))

	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	st := sol.Stats
	if st.PresolveCols != 1 {
		t.Errorf("PresolveCols = %d, want 1", st.PresolveCols)
	}
	if st.PresolveRows != 1 {
		t.Errorf("PresolveRows = %d, want 1 (vacuous row)", st.PresolveRows)
	}
	if st.Iters != sol.Iters {
		t.Errorf("Stats.Iters = %d, Solution.Iters = %d", st.Iters, sol.Iters)
	}
	if st.Phase1Iters < 0 || st.Phase1Iters > st.Iters {
		t.Errorf("Phase1Iters = %d outside [0, %d]", st.Phase1Iters, st.Iters)
	}
	if st.BasisNnz <= 0 {
		t.Errorf("BasisNnz = %d, want > 0", st.BasisNnz)
	}
}

// TestSolveStatsSurviveExpandPaths pins that both basis representations
// report fill-in and that stats pass through the presolve expand path.
func TestSolveStatsBothReps(t *testing.T) {
	for _, force := range []int8{1, 2} {
		m := NewModel()
		x := m.NewVar("x", 0, 5)
		y := m.NewVar("y", 0, 5)
		m.forceRep = force
		m.AddLE(NewExpr().Add(1, x).Add(1, y), 6)
		m.Maximize(NewExpr().Add(1, x).Add(2, y))
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("forceRep=%d: %v", force, err)
		}
		if sol.Stats.BasisNnz <= 0 {
			t.Errorf("forceRep=%d: BasisNnz = %d, want > 0", force, sol.Stats.BasisNnz)
		}
	}
}
