package core

import (
	"fmt"
	"math"

	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// Violation describes one fault case that overloads a link.
type Violation struct {
	Case string
	Link topology.LinkID
	// Over is load − capacity (positive).
	Over float64
}

// VerifyDataPlane enumerates every fault case with up to ke physical link
// failures and kv switch failures, applies ingress rescaling, and returns
// the worst overload found (nil if the state is congestion-free in all
// cases — the guarantee of Lemma 1). Exponential in (ke, kv); intended for
// tests and small networks.
func VerifyDataPlane(net *topology.Network, tun *tunnel.Set, st *State, ke, kv int, capacity map[topology.LinkID]float64) *Violation {
	links := physicalLinks(net)
	var switches []topology.SwitchID
	for _, sw := range net.Switches {
		switches = append(switches, sw.ID)
	}
	var worst *Violation
	forEachComboUpTo(len(links), ke, func(li []int) {
		down := map[topology.LinkID]bool{}
		for _, i := range li {
			down[links[i]] = true
			if tw := net.Links[links[i]].Twin; tw != topology.None {
				down[tw] = true
			}
		}
		forEachComboUpTo(len(switches), kv, func(si []int) {
			downSw := map[topology.SwitchID]bool{}
			for _, i := range si {
				downSw[switches[i]] = true
			}
			v := checkRescaledLoads(net, tun, st, down, downSw, capacity)
			if v != nil {
				v.Case = fmt.Sprintf("links=%v switches=%v", li, si)
				if worst == nil || v.Over > worst.Over {
					worst = v
				}
			}
		})
	})
	return worst
}

// checkRescaledLoads computes per-link load after every ingress rescales
// around the fault sets, skipping links that are themselves down, and
// returns the worst overload (nil if none). Flows whose ingress or egress
// switch failed send nothing.
func checkRescaledLoads(net *topology.Network, tun *tunnel.Set, st *State,
	down map[topology.LinkID]bool, downSw map[topology.SwitchID]bool,
	capacity map[topology.LinkID]float64) *Violation {

	loads := map[topology.LinkID]float64{}
	for _, f := range tun.All() {
		rate := st.Rate[f]
		if rate == 0 || downSw[f.Src] || downSw[f.Dst] {
			continue
		}
		w := st.Weights(f)
		tl := tun.Rescale(f, w, rate, down, downSw)
		for _, t := range tun.Tunnels(f) {
			if tl[t.Index] == 0 {
				continue
			}
			for _, l := range t.Links {
				loads[l] += tl[t.Index]
			}
		}
	}
	var worst *Violation
	for l, load := range loads {
		if down[l] {
			continue
		}
		c := net.Links[l].Capacity
		if capacity != nil {
			if o, ok := capacity[l]; ok {
				c = o
			}
		}
		if over := load - c; over > 1e-6*math.Max(1, c) {
			if worst == nil || over > worst.Over {
				worst = &Violation{Link: l, Over: over}
			}
		}
	}
	return worst
}

// VerifyControlPlane enumerates every set of up to kc ingress switches whose
// configuration update fails. A failed switch keeps old tunnel-splitting
// weights per the rate-limiter mode; per-flow the adversary picks whichever
// of old/new behavior loads each link more (a sound upper bound on any
// realizable combination). Returns the worst overload, or nil.
func VerifyControlPlane(net *topology.Network, tun *tunnel.Set, newSt, oldSt *State,
	kc int, mode RateLimiterMode, capacity map[topology.LinkID]float64) *Violation {

	// Per-link per-source contributions under "updated" and "stale".
	type key struct {
		link topology.LinkID
		src  topology.SwitchID
	}
	newLoad := map[key]float64{}
	staleLoad := map[key]float64{}
	srcSet := map[topology.SwitchID]bool{}

	for _, f := range tun.All() {
		srcSet[f.Src] = true
		alloc := newSt.Alloc[f]
		oldW := tunnel.Weights(oldSt.Alloc[f])
		newW := newSt.Weights(f)
		for _, t := range tun.Tunnels(f) {
			a := idx(alloc, t.Index)
			var stale float64
			switch mode {
			case LimitersOrdered:
				stale = math.Max(idx(oldSt.Alloc[f], t.Index), a)
			case LimitersIndependent:
				// Any mix of {old,new} weights × {old,new} rate.
				stale = math.Max(math.Max(idx(oldSt.Alloc[f], t.Index), a),
					math.Max(idx(oldW, t.Index)*newSt.Rate[f],
						idx(newW, t.Index)*oldSt.Rate[f]))
			default: // LimitersSynced: old weights, new rate
				stale = math.Max(idx(oldW, t.Index)*newSt.Rate[f], a)
			}
			for _, l := range t.Links {
				newLoad[key{l, f.Src}] += a
				staleLoad[key{l, f.Src}] += stale
			}
		}
	}
	var srcs []topology.SwitchID
	for v := range srcSet {
		srcs = append(srcs, v)
	}
	sortSwitchIDs(srcs)

	var worst *Violation
	forEachComboUpTo(len(srcs), kc, func(sel []int) {
		failed := map[topology.SwitchID]bool{}
		for _, i := range sel {
			failed[srcs[i]] = true
		}
		for _, l := range net.Links {
			var load float64
			for _, v := range srcs {
				if failed[v] {
					load += staleLoad[key{l.ID, v}]
				} else {
					load += newLoad[key{l.ID, v}]
				}
			}
			c := l.Capacity
			if capacity != nil {
				if o, ok := capacity[l.ID]; ok {
					c = o
				}
			}
			if over := load - c; over > 1e-6*math.Max(1, c) {
				if worst == nil || over > worst.Over {
					worst = &Violation{Case: fmt.Sprintf("failed=%v link=%d", sel, l.ID), Link: l.ID, Over: over}
				}
			}
		}
	})
	return worst
}

func physicalLinks(net *topology.Network) []topology.LinkID {
	var out []topology.LinkID
	for _, l := range net.Links {
		if l.Twin == topology.None || l.ID < l.Twin {
			out = append(out, l.ID)
		}
	}
	return out
}

func sortSwitchIDs(s []topology.SwitchID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// forEachComboUpTo calls fn with every index combination of size 0..k.
func forEachComboUpTo(n, k int, fn func([]int)) {
	if k > n {
		k = n
	}
	for size := 0; size <= k; size++ {
		forEachCombo(n, size, fn)
	}
}
