package check

// FuzzCheckPlan throws arbitrary plan bytes at the certifier over small
// random topologies, exercising both production entry points: the
// ffccheck offline pipeline (parse a recorded state file, rebuild the
// tunnel set from its paths, certify) and direct certification of a
// byte-driven state that need not be solver-consistent. The certifier
// must never panic, its case accounting must stay coherent, and an exact
// all-clear must imply an adversarial all-clear — the search checks a
// subset of what the enumeration proves.

import (
	"encoding/json"
	"math/rand"
	"testing"

	"ffc/internal/core"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
	"ffc/internal/wire"
)

func FuzzCheckPlan(f *testing.F) {
	f.Add([]byte(`{"flows":[]}`), uint16(1), uint8(1), uint8(1), uint8(0))
	f.Add([]byte{0, 1, 2, 3, 200, 10, 255, 17}, uint16(7), uint8(0), uint8(2), uint8(1))
	f.Add([]byte(`{"flows":[{"src":"sa","dst":"sb","rate":1e9,"tunnels":[{"path":["sa","sb"],"alloc":1e9}]}]}`),
		uint16(2), uint8(2), uint8(2), uint8(1))
	// A well-formed recorded plan seeds the wire path.
	{
		rng := rand.New(rand.NewSource(3))
		net, set, flows := randomNet(rng, 6, 4)
		dem := map[tunnel.Flow]float64{}
		st := randomState(rng, set, flows, 0.3)
		for _, fl := range flows {
			dem[fl] = st.Rate[fl]
		}
		blob, err := json.Marshal(wire.EncodeState(net, set, dem, st))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob, uint16(3), uint8(1), uint8(1), uint8(1))
	}

	f.Fuzz(func(t *testing.T, data []byte, netSeed uint16, kc, ke, kv uint8) {
		prot := core.Protection{Kc: int(kc % 3), Ke: int(ke % 3), Kv: int(kv % 2)}
		rng := rand.New(rand.NewSource(int64(netSeed)))
		net, set, flows := randomNet(rng, 3+int(netSeed%5), 2+int(netSeed%4))

		// Path 1: the ffccheck offline pipeline on the raw bytes.
		var sf wire.StateFile
		if json.Unmarshal(data, &sf) == nil {
			if rset, err := wire.TunnelSetFromState(net, &sf); err == nil {
				if rst, err := wire.ResolveState(net, rset, &sf); err == nil {
					certifyBoth(t, net, rset, rst, rst, prot)
				}
			}
		}

		// Path 2: a byte-driven direct state, including rates no solver
		// would emit.
		if len(data) == 0 {
			return
		}
		i := 0
		next := func() float64 {
			v := float64(data[i%len(data)])
			i++
			return v / 8
		}
		st, prev := core.NewState(), core.NewState()
		for _, fl := range flows {
			n := len(set.Tunnels(fl))
			a := make([]float64, n)
			pa := make([]float64, n)
			var sum, psum float64
			for j := range a {
				a[j] = next()
				sum += a[j]
				pa[j] = next()
				psum += pa[j]
			}
			st.Alloc[fl], st.Rate[fl] = a, sum*next()/8
			prev.Alloc[fl], prev.Rate[fl] = pa, psum
		}
		certifyBoth(t, net, set, st, prev, prot)
	})
}

// certifyBoth runs the exact and adversarial certifiers on one plan and
// checks the cross-mode and accounting invariants.
func certifyBoth(t *testing.T, net *topology.Network, set *tunnel.Set, st, prev *core.State, prot core.Protection) {
	exact, err := Certify(net, set, st, prev, Params{Prot: prot, Mode: Exact})
	if err != nil {
		t.Fatalf("exact certify: %v", err)
	}
	checkCert(t, exact, "exact")
	if !exact.Exact {
		t.Fatal("Exact mode produced a non-exact certificate")
	}
	adv, err := Certify(net, set, st, prev, Params{Prot: prot, Mode: Adversarial, Restarts: 8})
	if err != nil {
		t.Fatalf("adversarial certify: %v", err)
	}
	checkCert(t, adv, "adversarial")
	if exact.OK && !adv.OK {
		t.Fatalf("exact proves the plan safe but adversarial found %+v", adv.Violation)
	}
}

func checkCert(t *testing.T, c *Certificate, mode string) {
	t.Helper()
	if c.CasesCovered < c.CasesChecked {
		t.Fatalf("%s: covered %d < checked %d", mode, c.CasesCovered, c.CasesChecked)
	}
	if c.OK != (c.Violation == nil) {
		t.Fatalf("%s: OK=%v but violation=%+v", mode, c.OK, c.Violation)
	}
	if !c.OK {
		v := c.Violation
		if v.Over <= 0 || v.Load <= v.Capacity {
			t.Fatalf("%s: violation without overload: %+v", mode, v)
		}
	}
}
