package core

import (
	"math"
	"math/rand"
	"testing"

	"ffc/internal/demand"
)

// TestCombinedProtectionProperty verifies §4.5: a single solve with
// (kc, ke, kv) simultaneously satisfies both planes' guarantees.
func TestCombinedProtectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 12; trial++ {
		net, tun, flows := randomNetwork(rng, 6, 4)
		if len(flows) == 0 {
			continue
		}
		d1, d2 := demand.Matrix{}, demand.Matrix{}
		for _, f := range flows {
			d1[f] = 1 + rng.Float64()*6
			d2[f] = 1 + rng.Float64()*6
		}
		s := NewSolver(net, tun, Options{Encoding: Encoding(rng.Intn(2))})
		prev, _, err := s.Solve(Input{Demands: d1})
		if err != nil {
			t.Fatal(err)
		}
		prot := Protection{Kc: 1 + rng.Intn(2), Ke: 1, Kv: rng.Intn(2)}
		st, _, err := s.Solve(Input{Demands: d2, Prot: prot, Prev: prev})
		if err != nil {
			t.Fatalf("trial %d %v: %v", trial, prot, err)
		}
		if v := VerifyDataPlane(net, tun, st, prot.Ke, prot.Kv, nil); v != nil {
			t.Fatalf("trial %d %v: data plane violated: %+v", trial, prot, v)
		}
		if v := VerifyControlPlane(net, tun, st, prev, prot.Kc, LimitersSynced, nil); v != nil {
			t.Fatalf("trial %d %v: control plane violated: %+v", trial, prot, v)
		}
	}
}

// TestProtectionMonotoneOverhead: throughput is non-increasing in each
// protection dimension (more protection can never admit more traffic).
func TestProtectionMonotoneOverhead(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	net, tun, flows := randomNetwork(rng, 7, 6)
	demands := demand.Matrix{}
	for _, f := range flows {
		demands[f] = 2 + rng.Float64()*10
	}
	s := NewSolver(net, tun, Options{})
	prev, _, err := s.Solve(Input{Demands: demands})
	if err != nil {
		t.Fatal(err)
	}
	solveAt := func(p Protection) float64 {
		in := Input{Demands: demands, Prot: p}
		if p.Kc > 0 {
			in.Prev = prev
		}
		st, _, err := s.Solve(in)
		if err != nil {
			return 0 // infeasible counts as zero throughput
		}
		return st.TotalRate()
	}
	prevRate := math.Inf(1)
	for ke := 0; ke <= 2; ke++ {
		r := solveAt(Protection{Ke: ke})
		if r > prevRate+1e-6 {
			t.Fatalf("throughput increased with ke: %v → %v", prevRate, r)
		}
		prevRate = r
	}
	prevRate = math.Inf(1)
	for kc := 0; kc <= 3; kc++ {
		r := solveAt(Protection{Kc: kc})
		if r > prevRate+1e-6 {
			t.Fatalf("throughput increased with kc: %v → %v", prevRate, r)
		}
		prevRate = r
	}
}

// TestEqn15OverprotectionEffect validates the §4.4.1 observation: with a
// (1,q) layout, protecting ke=q link failures also covers one switch
// failure "for free" (kt = ke·p ≥ kv·q tunnel failures).
func TestEqn15OverprotectionEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 6; trial++ {
		net, tun, flows := randomNetwork(rng, 7, 4)
		if len(flows) == 0 {
			continue
		}
		demands := demand.Matrix{}
		for _, f := range flows {
			demands[f] = 1 + rng.Float64()*5
		}
		// Measure the layout's worst q.
		qMax := 0
		for _, f := range flows {
			_, q := tun.PQ(f)
			if q > qMax {
				qMax = q
			}
		}
		if qMax == 0 {
			qMax = 1
		}
		s := NewSolver(net, tun, Options{})
		st, _, err := s.Solve(Input{Demands: demands, Prot: Protection{Ke: qMax}})
		if err != nil {
			t.Fatal(err)
		}
		// ke=qMax link protection must imply kv=1 switch protection.
		if v := VerifyDataPlane(net, tun, st, 0, 1, nil); v != nil {
			t.Fatalf("trial %d: ke=%d did not cover one switch failure: %+v", trial, qMax, v)
		}
	}
}

// TestOrderedLimitersTighter: Eqn 18 (ordered updates) admits at least as
// much as LimitersIndependent's reservation-based handling of Eqn 17.
func TestOrderedLimitersTighter(t *testing.T) {
	fx := newFig25(t)
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 10, []float64{7, 3}
	prev.Rate[fx.f34], prev.Alloc[fx.f34] = 10, []float64{7, 3}
	demands := demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 10}
	in := Input{Demands: demands, Prot: Protection{Kc: 1}, Prev: prev}

	rate := func(mode RateLimiterMode) float64 {
		s := NewSolver(fx.net, fx.tun, Options{RateLimiter: mode})
		st, _, err := s.Solve(in)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if v := VerifyControlPlane(fx.net, fx.tun, st, prev, 1, mode, nil); v != nil {
			t.Fatalf("mode %d: violated: %+v", mode, v)
		}
		return st.TotalRate()
	}
	ordered := rate(LimitersOrdered)
	synced := rate(LimitersSynced)
	independent := rate(LimitersIndependent)
	if independent > synced+1e-6 {
		t.Fatalf("independent (%v) admits more than synced (%v)", independent, synced)
	}
	if ordered < synced-1e-6 {
		t.Fatalf("ordered (%v) admits less than synced (%v); Eqn 18 should be no tighter", ordered, synced)
	}
}

// TestBigFaultWaiverEndToEnd simulates the §4.5 situation end to end: a
// fault beyond the protection level overloads a link; the next computation
// must still be feasible (waiving kc on overloaded links) and drain it.
func TestBigFaultWaiverEndToEnd(t *testing.T) {
	fx := newFig25(t)
	// Previous state overloads s1−s4 with 12 units from one source.
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 14, []float64{2, 12}
	prev.Rate[fx.f34], prev.Alloc[fx.f34] = 8, []float64{8, 0}
	s := NewSolver(fx.net, fx.tun, Options{})
	st, _, err := s.Solve(Input{
		Demands: demand.Matrix{fx.f24: 14, fx.f34: 8},
		Prot:    Protection{Kc: 2},
		Prev:    prev,
	})
	if err != nil {
		t.Fatalf("waiver did not restore feasibility: %v", err)
	}
	// The new configuration itself must not overload anything.
	for l, load := range st.LinkLoads(fx.tun) {
		if load > fx.net.Links[l].Capacity+1e-6 {
			t.Fatalf("link %d still overloaded at %v", l, load)
		}
	}
}

// TestSolverReuseAcrossIntervals exercises the controller pattern: many
// sequential solves against evolving demands with kc protection, each
// verified, mimicking a production control loop.
func TestSolverReuseAcrossIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	net, tun, flows := randomNetwork(rng, 6, 5)
	if len(flows) == 0 {
		t.Skip("degenerate network")
	}
	s := NewSolver(net, tun, Options{MiceFraction: 0.01, OldLoadSkip: 1e-5})
	prev := NewState()
	for interval := 0; interval < 8; interval++ {
		demands := demand.Matrix{}
		for _, f := range flows {
			demands[f] = 1 + rng.Float64()*8
		}
		st, _, err := s.Solve(Input{Demands: demands, Prot: Protection{Kc: 1, Ke: 1}, Prev: prev})
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		if v := VerifyControlPlane(net, tun, st, prev, 1, LimitersSynced, nil); v != nil {
			t.Fatalf("interval %d: control violated: %+v", interval, v)
		}
		if v := VerifyDataPlane(net, tun, st, 1, 0, nil); v != nil {
			t.Fatalf("interval %d: data violated: %+v", interval, v)
		}
		prev = st
	}
}

// TestVerifierCatchesPlantedViolation guards the verifiers themselves: a
// hand-planted unsafe state must be flagged.
func TestVerifierCatchesPlantedViolation(t *testing.T) {
	fx := newFig25(t)
	bad := NewState()
	// 14 units forced onto the single direct link (cap 10): no faults even
	// needed, but VerifyDataPlane(0,0) checks the fault-free case too.
	bad.Rate[fx.f24], bad.Alloc[fx.f24] = 14, []float64{14, 0}
	if v := VerifyDataPlane(fx.net, fx.tun, bad, 0, 0, nil); v == nil {
		t.Fatal("verifier missed a planted overload")
	}
	// Control-plane verifier: new state overloads when s2 keeps old 100%-
	// direct weights at the new higher rate.
	old := NewState()
	old.Rate[fx.f24], old.Alloc[fx.f24] = 8, []float64{8, 0}
	upd := NewState()
	upd.Rate[fx.f24], upd.Alloc[fx.f24] = 14, []float64{7, 7}
	if v := VerifyControlPlane(fx.net, fx.tun, upd, old, 1, LimitersSynced, nil); v == nil {
		t.Fatal("control verifier missed a planted stale-weights overload")
	}
}

// TestEncodingSizeMatchesPaperBounds checks §4.4.3's accounting: control-
// plane FFC adds at most |E| + 4·kc·|V|·|E| constraints and 3·kc·|V|·|E|
// variables; data-plane FFC at most |F| + 4·Σf |Tf|·min(|Tf|−τf, τf)
// constraints. Our compare-swap encoding (3 rows, 2 vars per swap) sits
// within those bounds.
func TestEncodingSizeMatchesPaperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	net, tun, flows := randomNetwork(rng, 7, 6)
	demands := demand.Matrix{}
	for _, f := range flows {
		demands[f] = 3 + rng.Float64()*5
	}
	s := NewSolver(net, tun, Options{Encoding: SortNet})
	prev, _, err := s.Solve(Input{Demands: demands})
	if err != nil {
		t.Fatal(err)
	}
	for _, prot := range []Protection{{Kc: 2}, {Ke: 1}, {Kc: 3, Ke: 1}} {
		stats, err := s.FormulateOnly(Input{Demands: demands, Prot: prot, Prev: prev})
		if err != nil {
			t.Fatal(err)
		}
		V, E := net.NumSwitches(), net.NumLinks()
		bound := 0
		if prot.Kc > 0 {
			bound += E + 4*prot.Kc*V*E
		}
		if prot.Ke > 0 || prot.Kv > 0 {
			sumT := 0
			for _, f := range flows {
				nT := len(tun.Tunnels(f))
				tau := s.tauOf(f, prot)
				m := nT - tau
				if tau < m {
					m = tau
				}
				if m > 0 {
					sumT += nT * m
				}
			}
			bound += len(flows) + 4*sumT
		}
		if stats.EncodingConstraints > bound {
			t.Fatalf("prot %v: %d encoding constraints exceed the §4.4.3 bound %d",
				prot, stats.EncodingConstraints, bound)
		}
	}
}
