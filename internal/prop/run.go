package prop

import (
	"fmt"
	"math"

	"ffc/internal/check"
	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// Invariant names. Each is a metamorphic or safety property of the FFC
// pipeline that must hold on every generated scenario.
const (
	// InvSolveOK: the previous-state solve, the session prime (on session
	// paths), and the main solve all complete with an optimal plan.
	InvSolveOK = "solve-ok"
	// InvPlanSane: the plan grants 0 ≤ rate ≤ demand per flow, with finite
	// non-negative allocations whose sum covers the rate.
	InvPlanSane = "plan-sane"
	// InvProtMono: raising any protection dimension by one (holding the
	// previous state fixed) never increases optimal throughput — the
	// feasible regions are nested.
	InvProtMono = "prot-monotone"
	// InvFFCLeTE: FFC throughput ≤ plain-TE throughput, with equality at
	// zero protection (the paper's Fig 12 ordering).
	InvFFCLeTE = "ffc-le-te"
	// InvScale: multiplying every capacity and demand (and the previous
	// state) by λ multiplies optimal throughput by exactly λ — the
	// formulation is positively homogeneous. λ is a power of two, so the
	// scaling itself is float-exact.
	InvScale = "scale-invariant"
	// InvRelabel: permuting switch IDs (carrying the tunnel set and
	// previous state through the permutation) leaves optimal throughput
	// unchanged. Checked only at kc = 0: with control-plane protection the
	// previous state is itself a solver artifact, and alternate optima
	// break cross-run comparability.
	InvRelabel = "relabel-invariant"
	// InvCertify: the solved plan certifies congestion-free at its own
	// protection level under the independent checker's exact enumeration.
	InvCertify = "certify-ok"
	// InvDegraded: after further faults strike, the Degrade()d plan
	// certifies congestion-free at zero protection under the grown fault
	// set — the paper's rescaling-headroom guarantee.
	InvDegraded = "degraded-certifies"
)

// AllInvariants lists every invariant in check order.
var AllInvariants = []string{
	InvSolveOK, InvPlanSane, InvProtMono, InvFFCLeTE,
	InvScale, InvRelabel, InvCertify, InvDegraded,
}

// relTol is the relative tolerance for throughput comparisons: optimal LP
// objectives reached via different solve paths (cold vs warm basis,
// template rebind) agree only up to simplex numerics.
const relTol = 1e-5

func leTol(a, b float64) bool { return a <= b+relTol*math.Max(1, math.Abs(b)) }
func eqTol(a, b float64) bool {
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= relTol*m
}

// Failure is one invariant violation.
type Failure struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (f Failure) String() string { return f.Invariant + ": " + f.Detail }

// Result reports one scenario run.
type Result struct {
	// Rate is the main plan's total granted rate.
	Rate float64 `json:"rate"`
	// Checked lists the invariants that ran.
	Checked []string `json:"checked"`
	// Failures lists every violated invariant (empty = pass).
	Failures []Failure `json:"failures,omitempty"`
}

// OK reports whether every checked invariant held.
func (r *Result) OK() bool { return len(r.Failures) == 0 }

// FirstFailure returns the first failure (zero value if none).
func (r *Result) FirstFailure() Failure {
	if len(r.Failures) == 0 {
		return Failure{}
	}
	return r.Failures[0]
}

// Run executes the scenario's full pipeline and checks its invariants.
// It is deterministic: no RNG, no clocks — identical scenarios produce
// identical results. A non-nil error means the scenario itself is invalid
// (unknown names, broken topology), not that an invariant failed.
func Run(sc *Scenario) (*Result, error) {
	e, err := sc.materialize()
	if err != nil {
		return nil, err
	}
	r := &runner{e: e, res: &Result{}}
	r.run()
	return r.res, nil
}

type runner struct {
	e   *env
	res *Result

	solver *core.Solver
	// prev is the previously-installed state the main solve (and every
	// comparison solve) is relative to. On scratch paths it is S0 (the
	// plain-TE solve of the previous interval); on session paths it is S1
	// (the session's priming solve at the scenario's protection level).
	// Holding it fixed across compared solves is what makes the
	// monotonicity and ordering invariants sound: the feasible regions are
	// then nested by construction.
	prev *core.State
	plan *core.State
}

func (r *runner) enabled(inv string) bool {
	if len(r.e.sc.Invariants) == 0 {
		return true
	}
	for _, want := range r.e.sc.Invariants {
		if want == inv {
			return true
		}
	}
	return false
}

func (r *runner) fail(inv, format string, args ...interface{}) {
	r.res.Failures = append(r.res.Failures, Failure{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

func (r *runner) checked(inv string) { r.res.Checked = append(r.res.Checked, inv) }

func (r *runner) run() {
	e := r.e
	r.solver = core.NewSolver(e.net, e.set, e.opts)

	// S0: the previous interval's plain-TE plan — the state "installed"
	// before this interval. Solving (rather than fabricating) it keeps the
	// previous state on the solver's own manifold.
	r.checked(InvSolveOK) // solve-ok is a precondition; always reported
	s0, _, err := r.solver.Solve(core.Input{
		Demands: e.prevDem, Prot: core.None,
		DownLinks: e.downLinks, DownSwitches: e.downSwitches,
	})
	if err != nil {
		r.fail(InvSolveOK, "previous-state solve failed: %v", err)
		return
	}
	r.prev = s0

	mainIn := core.Input{
		Demands: e.demands, Prot: e.prot, Prev: r.prev,
		DownLinks: e.downLinks, DownSwitches: e.downSwitches,
	}
	switch e.sc.Path {
	case PathScratch, PathParallel:
		st, stats, err := r.solver.Solve(mainIn)
		if err != nil || stats.Outcome != core.OutcomeOptimal {
			r.fail(InvSolveOK, "main %s solve: outcome %v err %v", e.sc.Path, outcomeOf(stats), err)
			return
		}
		r.plan = st
	case PathTemplate, PathWarm:
		se := r.solver.NewSession()
		s1, stats, err := se.Solve(core.Input{
			Demands: e.prevDem, Prot: e.prot, Prev: s0,
			DownLinks: e.downLinks, DownSwitches: e.downSwitches,
		})
		if err != nil || stats.Outcome != core.OutcomeOptimal {
			r.fail(InvSolveOK, "session prime solve: outcome %v err %v", outcomeOf(stats), err)
			return
		}
		r.prev = s1
		mainIn.Prev = s1
		st, stats, err := se.Solve(mainIn)
		if err != nil || stats.Outcome != core.OutcomeOptimal {
			r.fail(InvSolveOK, "main %s solve: outcome %v err %v", e.sc.Path, outcomeOf(stats), err)
			return
		}
		// Whether the template rebinds or rebuilds is the session's own
		// decision (the previous state can change the control-plane row
		// structure between prime and main); both are correct, so no
		// assertion on stats.ModelReused here.
		r.plan = st
	}
	r.res.Rate = r.plan.TotalRate()

	if r.enabled(InvPlanSane) {
		r.checked(InvPlanSane)
		r.planSane()
	}
	if r.enabled(InvProtMono) {
		r.checked(InvProtMono)
		r.protMonotone()
	}
	if r.enabled(InvFFCLeTE) {
		r.checked(InvFFCLeTE)
		r.ffcLeTE()
	}
	if r.enabled(InvScale) && r.e.sc.Scale > 0 && r.e.sc.Scale != 1 {
		r.checked(InvScale)
		r.scaleInvariant()
	}
	if r.enabled(InvRelabel) && len(r.e.sc.Relabel) > 0 && r.e.prot.Kc == 0 {
		r.checked(InvRelabel)
		r.relabelInvariant()
	}
	if r.enabled(InvCertify) {
		r.checked(InvCertify)
		r.certifyOK()
	}
	if r.enabled(InvDegraded) {
		r.checked(InvDegraded)
		r.degradedCertifies()
	}
}

func outcomeOf(stats *core.Stats) core.Outcome {
	if stats == nil {
		return core.OutcomeSolverError
	}
	return stats.Outcome
}

// planSane checks the plan's per-flow arithmetic sanity.
func (r *runner) planSane() {
	e := r.e
	for _, f := range flowsOf(r.plan) {
		rate := r.plan.Rate[f]
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < -1e-9 {
			r.fail(InvPlanSane, "flow %s: rate %g", flowName(e.net, f), rate)
			return
		}
		if d := e.demands[f]; !leTol(rate, d) {
			r.fail(InvPlanSane, "flow %s: rate %g exceeds demand %g", flowName(e.net, f), rate, d)
			return
		}
		var sum float64
		for _, a := range r.plan.Alloc[f] {
			if math.IsNaN(a) || math.IsInf(a, 0) || a < -1e-9 {
				r.fail(InvPlanSane, "flow %s: allocation %g", flowName(e.net, f), a)
				return
			}
			sum += a
		}
		if !leTol(rate, sum) {
			r.fail(InvPlanSane, "flow %s: rate %g exceeds allocation sum %g", flowName(e.net, f), rate, sum)
			return
		}
	}
}

// protMonotone re-solves with each protection dimension lowered by one,
// holding the previous state fixed, and requires throughput not to drop
// when protection drops.
func (r *runner) protMonotone() {
	e := r.e
	for _, c := range []struct {
		dim  string
		prot core.Protection
	}{
		{"kc", core.Protection{Kc: e.prot.Kc - 1, Ke: e.prot.Ke, Kv: e.prot.Kv}},
		{"ke", core.Protection{Kc: e.prot.Kc, Ke: e.prot.Ke - 1, Kv: e.prot.Kv}},
		{"kv", core.Protection{Kc: e.prot.Kc, Ke: e.prot.Ke, Kv: e.prot.Kv - 1}},
	} {
		if c.prot.Kc < 0 || c.prot.Ke < 0 || c.prot.Kv < 0 {
			continue
		}
		st, stats, err := r.solver.Solve(core.Input{
			Demands: e.demands, Prot: c.prot, Prev: r.prev,
			DownLinks: e.downLinks, DownSwitches: e.downSwitches,
		})
		if err != nil || stats.Outcome != core.OutcomeOptimal {
			r.fail(InvProtMono, "solve at reduced %s %v: outcome %v err %v", c.dim, c.prot, outcomeOf(stats), err)
			return
		}
		if lower := st.TotalRate(); !leTol(r.res.Rate, lower) {
			r.fail(InvProtMono, "throughput %.9g at %v exceeds %.9g at reduced %s %v",
				r.res.Rate, e.prot, lower, c.dim, c.prot)
			return
		}
	}
}

// ffcLeTE compares against the unprotected solve: FFC never beats plain TE,
// and matches it exactly at zero protection (which also cross-checks the
// session paths against the scratch path on identical inputs).
func (r *runner) ffcLeTE() {
	e := r.e
	st, stats, err := r.solver.Solve(core.Input{
		Demands: e.demands, Prot: core.None, Prev: r.prev,
		DownLinks: e.downLinks, DownSwitches: e.downSwitches,
	})
	if err != nil || stats.Outcome != core.OutcomeOptimal {
		r.fail(InvFFCLeTE, "plain-TE solve: outcome %v err %v", outcomeOf(stats), err)
		return
	}
	te := st.TotalRate()
	if !leTol(r.res.Rate, te) {
		r.fail(InvFFCLeTE, "FFC throughput %.9g at %v exceeds plain TE %.9g", r.res.Rate, e.prot, te)
		return
	}
	if e.prot == core.None && !eqTol(r.res.Rate, te) {
		r.fail(InvFFCLeTE, "zero-protection throughput %.9g differs from plain TE %.9g", r.res.Rate, te)
	}
}

// scaleInvariant solves the λ-scaled instance (capacities, demands, and the
// previous state all multiplied by λ) and requires throughput exactly λ×.
// The previous state is scaled arithmetically rather than re-solved so both
// instances are relative to the same (scaled) state — re-solving could pick
// a different vertex among alternate optima and break comparability.
func (r *runner) scaleInvariant() {
	e := r.e
	lam := e.sc.Scale

	net := e.net.Clone()
	for i := range net.Links {
		net.Links[i].Capacity *= lam
	}
	// The layout metric is hop count, so the scaled network lays out the
	// identical tunnel set; rebuild it over the scaled network.
	set := tunnel.Layout(net, e.set.All(), tunnel.LayoutConfig{TunnelsPerFlow: e.sc.TunnelsPerFlow})
	solver := core.NewSolver(net, set, e.opts)

	st, stats, err := solver.Solve(core.Input{
		Demands: e.demands.Scale(lam), Prot: e.prot, Prev: scaleState(r.prev, lam),
		DownLinks: e.downLinks, DownSwitches: e.downSwitches,
	})
	if err != nil || stats.Outcome != core.OutcomeOptimal {
		r.fail(InvScale, "solve at scale %g: outcome %v err %v", lam, outcomeOf(stats), err)
		return
	}
	if got, want := st.TotalRate(), lam*r.res.Rate; !eqTol(got, want) {
		r.fail(InvScale, "throughput %.9g at scale %g, want %.9g (= %g × %.9g)",
			got, lam, want, lam, r.res.Rate)
	}
}

func scaleState(st *core.State, lam float64) *core.State {
	out := core.NewState()
	for f, rt := range st.Rate {
		out.Rate[f] = rt * lam
	}
	for f, alloc := range st.Alloc {
		na := make([]float64, len(alloc))
		for i, a := range alloc {
			na[i] = a * lam
		}
		out.Alloc[f] = na
	}
	return out
}

// relabelInvariant permutes switch IDs and carries the tunnel set, demands,
// and previous state through the permutation — the relabeled instance is
// the same graph, so optimal throughput must match. The tunnel set is
// mapped, not re-laid-out: layout tie-breaking under a different vertex
// order would legitimately change the feasible region.
func (r *runner) relabelInvariant() {
	e := r.e
	net, err := e.net.Permute(e.sc.Relabel)
	if err != nil {
		r.fail(InvRelabel, "permute: %v", err)
		return
	}
	inv := make([]topology.SwitchID, len(e.sc.Relabel))
	for newID, oldID := range e.sc.Relabel {
		inv[oldID] = topology.SwitchID(newID)
	}
	mapFlow := func(f tunnel.Flow) tunnel.Flow {
		return tunnel.Flow{Src: inv[f.Src], Dst: inv[f.Dst]}
	}

	set := tunnel.NewSet(net)
	for _, f := range e.set.All() {
		var ts []*tunnel.Tunnel
		for _, t := range e.set.Tunnels(f) {
			sws := make([]topology.SwitchID, len(t.Switches))
			for i, v := range t.Switches {
				sws[i] = inv[v]
			}
			ts = append(ts, &tunnel.Tunnel{
				Links:    append([]topology.LinkID(nil), t.Links...),
				Switches: sws,
			})
		}
		set.Add(mapFlow(f), ts...)
	}

	mapMatrix := func(m demand.Matrix) demand.Matrix {
		out := make(demand.Matrix, len(m))
		for f, d := range m {
			out[mapFlow(f)] = d
		}
		return out
	}
	prev := core.NewState()
	for f, rt := range r.prev.Rate {
		prev.Rate[mapFlow(f)] = rt
	}
	for f, alloc := range r.prev.Alloc {
		prev.Alloc[mapFlow(f)] = append([]float64(nil), alloc...)
	}
	downSws := map[topology.SwitchID]bool{}
	for v := range e.downSwitches {
		downSws[inv[v]] = true
	}
	if len(e.downSwitches) == 0 {
		downSws = nil
	}

	solver := core.NewSolver(net, set, e.opts)
	st, stats, err := solver.Solve(core.Input{
		Demands: mapMatrix(e.demands), Prot: e.prot, Prev: prev,
		DownLinks: e.downLinks, DownSwitches: downSws,
	})
	if err != nil || stats.Outcome != core.OutcomeOptimal {
		r.fail(InvRelabel, "solve on relabeled network: outcome %v err %v", outcomeOf(stats), err)
		return
	}
	if got := st.TotalRate(); !eqTol(got, r.res.Rate) {
		r.fail(InvRelabel, "throughput %.9g on relabeled network, want %.9g", got, r.res.Rate)
	}
}

// observedPlan returns the plan as the certifier will see it: the solved
// plan, plus any bump-rate mutation (the deliberate-corruption mechanism
// the harness's self-test and shrinker replay use).
func (r *runner) observedPlan() *core.State {
	m := r.e.sc.Mutation
	if m == nil || m.Kind != MutBumpRate {
		return r.plan
	}
	st := r.plan.Clone()
	f, err := findFlow(r.e.net, m.Src, m.Dst)
	if err == nil {
		st.Rate[f] *= m.Factor
	}
	return st
}

// observedCapacity returns the certifier's capacity view: nil (topology
// capacities), or a one-link override from a scale-capacity mutation.
func (r *runner) observedCapacity() map[topology.LinkID]float64 {
	m := r.e.sc.Mutation
	if m == nil || m.Kind != MutScaleCapacity {
		return nil
	}
	l, err := findLink(r.e.net, m.Link)
	if err != nil {
		return nil
	}
	return map[topology.LinkID]float64{l: r.e.net.Links[l].Capacity * m.Factor}
}

// certifyOK runs the independent checker on the (possibly mutated) plan at
// the scenario's protection level and requires an exact OK verdict. The
// generator downgraded protection until the exact enumeration fits, so an
// adversarial (non-proof) fallback is itself a failure.
func (r *runner) certifyOK() {
	e := r.e
	cert, err := check.Certify(e.net, e.set, r.observedPlan(), r.prev, check.Params{
		Prot: e.prot, RateLimiter: e.opts.RateLimiter, Mode: check.Auto,
		Capacity: r.observedCapacity(), DownLinks: e.downLinks, DownSwitches: e.downSwitches,
	})
	if err != nil {
		r.fail(InvCertify, "certify: %v", err)
		return
	}
	if !cert.OK {
		r.fail(InvCertify, "%s", cert.Summary())
		return
	}
	if !cert.Exact {
		r.fail(InvCertify, "expected exact certification, got %s", cert.Summary())
	}
}

// degradedCertifies applies the scenario's post-install faults, degrades
// the plan (zero dead allocations, rates capped to surviving headroom),
// and requires the result to certify congestion-free at zero protection
// under the grown fault set.
func (r *runner) degradedCertifies() {
	e := r.e
	downLinks := map[topology.LinkID]bool{}
	for l := range e.downLinks {
		downLinks[l] = true
	}
	for l := range e.extraLinks {
		downLinks[l] = true
	}
	downSws := map[topology.SwitchID]bool{}
	for v := range e.downSwitches {
		downSws[v] = true
	}
	for v := range e.extraSws {
		downSws[v] = true
	}

	degraded := core.Degrade(e.net, e.set, r.observedPlan(), downLinks, downSws)
	cert, err := check.Certify(e.net, e.set, degraded, nil, check.Params{
		Prot: core.None, RateLimiter: e.opts.RateLimiter, Mode: check.Auto,
		Capacity: r.observedCapacity(), DownLinks: downLinks, DownSwitches: downSws,
	})
	if err != nil {
		r.fail(InvDegraded, "certify degraded plan: %v", err)
		return
	}
	if !cert.OK {
		r.fail(InvDegraded, "degraded plan: %s", cert.Summary())
	}
}

// MutateWorstLink returns a copy of sc carrying a scale-capacity mutation
// guaranteed to violate certification: it solves the scenario's pipeline,
// finds the most-loaded directed link, and shrinks that link's observed
// capacity below its load. The result is the harness's deliberately-broken
// scenario — Run must report a certify-ok failure on it, and the shrinker
// and repro machinery are exercised against it.
func MutateWorstLink(sc *Scenario) (*Scenario, error) {
	c := sc.Clone()
	c.Mutation = nil
	e, err := c.materialize()
	if err != nil {
		return nil, err
	}
	r := &runner{e: e, res: &Result{}}
	// Run only the solve; any solve failure surfaces as a Failure.
	c.Invariants = []string{InvSolveOK}
	e.sc = c
	r.run()
	c.Invariants = nil
	if !r.res.OK() {
		return nil, fmt.Errorf("prop: scenario does not solve: %v", r.res.FirstFailure())
	}
	loads := r.plan.LinkLoads(e.set)
	var worst topology.LinkID = topology.None
	var worstLoad float64
	for l, ld := range loads {
		if ld > worstLoad {
			worst, worstLoad = l, ld
		}
	}
	if worst == topology.None || worstLoad <= 0 {
		return nil, fmt.Errorf("prop: plan loads no link; nothing to corrupt")
	}
	cap := e.net.Links[worst].Capacity
	c.Mutation = &Mutation{
		Kind: MutScaleCapacity, Link: linkName(e.net, worst),
		// Observed capacity = half the planned load: a certain violation.
		Factor: 0.5 * worstLoad / cap,
	}
	return c, nil
}

func flowsOf(st *core.State) []tunnel.Flow {
	m := make(demand.Matrix, len(st.Rate))
	for f, rt := range st.Rate {
		m[f] = rt + 1 // value unused; Flows() sorts keys
	}
	return m.Flows()
}

func flowName(net *topology.Network, f tunnel.Flow) string {
	return net.Switches[f.Src].Name + "->" + net.Switches[f.Dst].Name
}
