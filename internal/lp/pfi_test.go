package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestPFIAgainstEnumeration re-runs the vertex-enumeration cross-check with
// the product-form inverse forced on, exercising eta-file FTRAN/BTRAN,
// reinversion, and basis permutation on small problems.
func TestPFIAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(3)
		k := 1 + rng.Intn(4)
		p := &refProblem{n: n, maximize: rng.Intn(2) == 0}
		for j := 0; j < n; j++ {
			lo := float64(rng.Intn(7)) - 3
			hi := lo + float64(rng.Intn(8))
			p.lo = append(p.lo, lo)
			p.hi = append(p.hi, hi)
			p.obj = append(p.obj, float64(rng.Intn(11)-5))
		}
		for i := 0; i < k; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(9) - 4)
			}
			p.rows = append(p.rows, row)
			p.sense = append(p.sense, Sense(rng.Intn(3)))
			p.rhs = append(p.rhs, float64(rng.Intn(21)-10))
		}
		want, _, feasible := refSolve(p)
		m, _ := p.toModel()
		m.forceRep = 2 // force PFI
		sol, err := m.Solve()
		if !feasible {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: reference infeasible, PFI simplex %v", trial, sol.Status)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: reference obj %v but PFI simplex failed: %v", trial, want, err)
		}
		if math.Abs(sol.Objective-want) > 1e-5 {
			t.Fatalf("trial %d: PFI obj %v, reference %v", trial, sol.Objective, want)
		}
	}
}

// TestPFIMatchesDenseOnMediumLPs solves identical medium problems with both
// representations and requires matching optima.
func TestPFIMatchesDenseOnMediumLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		build := func() *Model {
			r := rand.New(rand.NewSource(int64(1000 + trial)))
			n, k := 120, 90
			m := NewModel()
			vars := make([]Var, n)
			for j := range vars {
				vars[j] = m.NewVar("v", 0, 1+r.Float64()*9)
			}
			for i := 0; i < k; i++ {
				e := NewExpr()
				for c := 0; c < 5; c++ {
					e.Add(0.2+r.Float64()*2, vars[r.Intn(n)])
				}
				if i%4 == 0 {
					m.AddGE(e, r.Float64()*2)
				} else {
					m.AddLE(e, 4+r.Float64()*25)
				}
			}
			obj := NewExpr()
			for _, v := range vars {
				obj.Add(r.Float64(), v)
			}
			m.Maximize(obj)
			return m
		}
		md := build()
		md.forceRep = 1
		sd, err := md.Solve()
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		mp := build()
		mp.forceRep = 2
		sp, err := mp.Solve()
		if err != nil {
			t.Fatalf("trial %d pfi: %v", trial, err)
		}
		if math.Abs(sd.Objective-sp.Objective) > 1e-5*math.Max(1, math.Abs(sd.Objective)) {
			t.Fatalf("trial %d: dense %v != pfi %v", trial, sd.Objective, sp.Objective)
		}
		_ = rng
	}
}

// TestPFIDualsMatchDense: shadow prices must agree across representations.
func TestPFIDualsMatchDense(t *testing.T) {
	build := func(force int8) (*Solution, []int) {
		m := NewModel()
		x := m.NewVar("x", 0, Inf)
		y := m.NewVar("y", 0, Inf)
		r1 := m.AddLE(NewExpr().Add(2, x).Add(1, y), 10)
		r2 := m.AddLE(NewExpr().Add(1, x).Add(2, y), 10)
		m.Maximize(NewExpr().Add(1, x).Add(1, y))
		m.forceRep = force
		sol, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return sol, []int{r1, r2}
	}
	sd, rows := build(1)
	sp, _ := build(2)
	for _, r := range rows {
		if math.Abs(sd.Duals[r]-sp.Duals[r]) > 1e-6 {
			t.Fatalf("row %d duals differ: dense %v pfi %v", r, sd.Duals[r], sp.Duals[r])
		}
	}
}

// TestPFIRefactorPath drives enough pivots to force reinversion (the
// 128-eta trigger) and checks the solution is still exact.
func TestPFIRefactorPath(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n, k := 400, 300
	m := NewModel()
	vars := make([]Var, n)
	for j := range vars {
		vars[j] = m.NewVar("v", 0, 5)
	}
	type rowRec struct {
		e   *Expr
		rhs float64
	}
	var recs []rowRec
	for i := 0; i < k; i++ {
		e := NewExpr()
		for c := 0; c < 4; c++ {
			e.Add(0.5+r.Float64(), vars[r.Intn(n)])
		}
		rhs := 3 + r.Float64()*10
		m.AddLE(e, rhs)
		recs = append(recs, rowRec{e, rhs})
	}
	obj := NewExpr()
	for _, v := range vars {
		obj.Add(0.1+r.Float64(), v)
	}
	m.Maximize(obj)
	m.forceRep = 2
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Iters < 129 {
		t.Skipf("only %d iterations; refactor path not exercised", sol.Iters)
	}
	for i, rec := range recs {
		if v := sol.Violation(rec.e, LE, rec.rhs); v > 1e-6 {
			t.Fatalf("row %d violated by %v after refactors", i, v)
		}
	}
}

func benchLargeSparseLP(b *testing.B, force int8) {
	r := rand.New(rand.NewSource(12))
	n, k := 900, 700
	m := NewModel()
	vars := make([]Var, n)
	for j := range vars {
		vars[j] = m.NewVar("v", 0, 5)
	}
	for i := 0; i < k; i++ {
		e := NewExpr()
		for c := 0; c < 4; c++ {
			e.Add(0.5+r.Float64(), vars[r.Intn(n)])
		}
		m.AddLE(e, 3+r.Float64()*10)
	}
	obj := NewExpr()
	for _, v := range vars {
		obj.Add(0.1+r.Float64(), v)
	}
	m.Maximize(obj)
	m.forceRep = force
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimplexDenseRep vs BenchmarkSimplexPFIRep quantify the
// product-form inverse's advantage on a sparse 700-row basis.
func BenchmarkSimplexDenseRep(b *testing.B) { benchLargeSparseLP(b, 1) }
func BenchmarkSimplexPFIRep(b *testing.B)   { benchLargeSparseLP(b, 2) }
