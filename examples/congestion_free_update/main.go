// Congestion-free multi-step updates with FFC (§5.2): the controller moves
// the network through intermediate configurations such that no link
// congests regardless of switch application order, and the chain keeps
// progressing even if up to kc switches are stuck on an earlier step.
//
//	go run ./examples/congestion_free_update
package main

import (
	"fmt"
	"log"

	"ffc"
)

func main() {
	net := ffc.Example4Topology()
	s1, _ := net.SwitchByName("s1")
	s2, _ := net.SwitchByName("s2")
	s3, _ := net.SwitchByName("s3")
	s4, _ := net.SwitchByName("s4")
	f24 := ffc.Flow{Src: s2, Dst: s4}
	f34 := ffc.Flow{Src: s3, Dst: s4}
	f14 := ffc.Flow{Src: s1, Dst: s4}

	// The figures' tunnel layout (see examples/controlplane_update).
	mk := func(f ffc.Flow, hops ...ffc.SwitchID) *ffc.Tunnel {
		t := &ffc.Tunnel{Flow: f, Switches: hops}
		for i := 0; i+1 < len(hops); i++ {
			t.Links = append(t.Links, net.FindLink(hops[i], hops[i+1]))
		}
		return t
	}
	tun := ffc.NewTunnelSet(net)
	tun.Add(f24, mk(f24, s2, s4), mk(f24, s2, s1, s4))
	tun.Add(f34, mk(f34, s3, s4), mk(f34, s3, s1, s4))
	tun.Add(f14, mk(f14, s1, s4))
	ctl := ffc.NewControllerWithTunnels(net, tun, ffc.SolverOptions{})

	prev := ffc.NewState()
	prev.Rate[f24], prev.Alloc[f24] = 10, []float64{7, 3}
	prev.Rate[f34], prev.Alloc[f34] = 10, []float64{7, 3}
	prev.Rate[f14], prev.Alloc[f14] = 0, []float64{0}
	ctl.Install(prev)

	const kc = 1
	target, _, err := ctl.Compute(ffc.Demands{f24: 10, f34: 10, f14: 10}, ffc.Protection{Kc: kc})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target admits %.0f units of the new flow s1→s4 (kc=%d; Fig 5's number)\n\n", target.Rate[f14], kc)

	plan, err := ctl.PlanUpdate(target, kc, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update plan: %d step(s), target reached: %v\n", len(plan.Steps), plan.Reached)
	name := func(f ffc.Flow) string {
		return net.Switches[f.Src].Name + "→" + net.Switches[f.Dst].Name
	}
	for i, st := range plan.Steps {
		fmt.Printf("  step %d:\n", i+1)
		for _, f := range []ffc.Flow{f24, f34, f14} {
			fmt.Printf("    %-6s alloc %v (rate %.1f)\n", name(f), rounded(st.Alloc[f]), st.Rate[f])
		}
	}
	fmt.Println("\nevery adjacent transition satisfies Eqn 16 plus the §5.2 FFC condition:")
	fmt.Printf("no link congests in any switch-application order, with up to %d stuck switch(es)\n", kc)
}

func rounded(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*100+0.5)) / 100
	}
	return out
}
