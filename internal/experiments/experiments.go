// Package experiments regenerates every table and figure of the paper's
// evaluation (§7–§8) on the synthetic L-Net/S-Net substrates. Each Fig*/
// Table* function writes the same rows or series the paper reports to an
// io.Writer and returns structured results for programmatic checks; the
// cmd/ffcbench CLI and the repository's benchmark suite both drive them.
//
// Scale note: the real L-Net is O(50) sites/O(1000) links and the paper
// solved its LPs with CPLEX; the default environments here are smaller so
// the full suite completes against the pure-Go simplex. The shapes being
// reproduced (who wins, by what factor, where crossovers fall) are scale-
// robust; EXPERIMENTS.md records paper-vs-measured for every artifact.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/faults"
	"ffc/internal/metrics"
	"ffc/internal/obs"
	"ffc/internal/parallel"
	"ffc/internal/sim"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// obsExpSolve is the per-interval TE solve latency distribution across
// the experiment harness (Fig12 protection sweeps and Table2 timing).
var obsExpSolve = obs.NewHistogram("experiments.interval_solve")

// Env bundles one evaluation network with its demand series and tunnels.
type Env struct {
	Name   string
	Net    *topology.Network
	Tun    *tunnel.Set
	Series demand.Series // unscaled
	Scale1 float64       // multiplier defining traffic scale 1.0
	Seed   int64
	Opts   core.Options
	// Parallelism bounds the per-figure worker pools (see
	// EnvConfig.Parallelism). Mutable between figure runs.
	Parallelism int
	// WarmStart carries each serial interval loop's LP basis (and, where the
	// model shape allows, the built model) across intervals: it is forwarded
	// to every sim.RunConfig the harness builds and to Table2's per-config
	// solve chains. Mutable between figure runs.
	WarmStart bool
	// SolverDeadline bounds every per-interval TE solve the harness runs; a
	// solve that misses it degrades the interval to the last-good plan (see
	// sim.RunConfig.SolverDeadline). Zero means unbounded. Mutable between
	// figure runs.
	SolverDeadline time.Duration
	// SolverFaults injects controller failures (timeouts, crashes, stale
	// results) into every sim the harness builds. Mutable between figure
	// runs.
	SolverFaults faults.SolverFaultModel
	// Ctx cancels every sim.Scenario the environment builds (see
	// sim.Scenario.Ctx): long CLI runs wire SIGINT/SIGTERM here so an
	// interrupted sweep still reports the intervals it finished. Mutable
	// between figure runs.
	Ctx context.Context
}

// EnvConfig sizes an environment.
type EnvConfig struct {
	// Sites for the L-Net generator (ignored for S-Net). Default 8.
	Sites int
	// Intervals in the demand series. Default 24.
	Intervals int
	// Seed for all generation. A zero Seed defaults to 1 unless SeedSet
	// marks it as explicitly requested.
	Seed int64
	// SeedSet distinguishes "seed 0" from "Seed left unset": without it
	// the zero value is rewritten to the default of 1.
	SeedSet bool
	// Encoding for the big sweeps. Default core.Compact — identical
	// optima to the paper's sorting network at a fraction of the LP size
	// (the ablation experiment quantifies the difference; SortNet remains
	// the default encoding of the core library itself).
	Encoding core.Encoding
	// TunnelsPerFlow for the (1,3) link-switch disjoint layout. Default 6.
	TunnelsPerFlow int
	// Parallelism bounds the worker count for the harness's independent
	// TE intervals and scenario replays. ≤ 0 means all cores
	// (runtime.GOMAXPROCS(0)); 1 forces the serial path. Results are
	// bit-identical at any setting (per-interval RNG seeds are derived
	// with faults.DeriveSeed).
	Parallelism int
	// WarmStart enables warm-started interval re-solves throughout the
	// harness (see Env.WarmStart). Optima match cold runs; the simplex may
	// pick a different vertex among ties.
	WarmStart bool
	// SolverDeadline bounds each per-interval TE solve (see
	// Env.SolverDeadline). Zero means unbounded.
	SolverDeadline time.Duration
	// SolverFaults injects controller failures into every sim run (see
	// Env.SolverFaults).
	SolverFaults faults.SolverFaultModel
	// Ctx cancels every scenario the environment builds (see Env.Ctx).
	Ctx context.Context
	// BuildWorkers bounds parallel constraint emission inside each TE
	// solve (core.Options.BuildWorkers): 0 (the default) derives it from
	// Parallelism for sim runs, negative means all cores, positive is
	// exact. Built models are bit-identical at any setting.
	BuildWorkers int
	// NoTemplate disables Session model-template reuse
	// (core.Options.DisableTemplate): warm interval re-solves then
	// re-formulate the LP from scratch each time.
	NoTemplate bool
}

func (c *EnvConfig) fill() {
	if c.Sites == 0 {
		c.Sites = 8
	}
	if c.Intervals == 0 {
		c.Intervals = 24
	}
	if c.Seed == 0 && !c.SeedSet {
		c.Seed = 1
	}
	if c.TunnelsPerFlow == 0 {
		c.TunnelsPerFlow = 6
	}
}

func buildEnv(name string, net *topology.Network, cfg EnvConfig) (*Env, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	series := demand.Generate(net, demand.Config{Intervals: cfg.Intervals}, rng)
	flows := sim.FlowsOf(series)
	tun := tunnel.Layout(net, flows, tunnel.LayoutConfig{TunnelsPerFlow: cfg.TunnelsPerFlow, P: 1, Q: 3})
	opts := core.Options{Encoding: cfg.Encoding, MiceFraction: 0.01, OldLoadSkip: 1e-5, WeightSkip: 1e-3,
		BuildWorkers: cfg.BuildWorkers, DisableTemplate: cfg.NoTemplate}
	solver := core.NewSolver(net, tun, opts)
	scale1, err := sim.CalibrateScale(solver, series, 0.99, 3)
	if err != nil {
		return nil, fmt.Errorf("experiments: calibrating %s: %w", name, err)
	}
	return &Env{Name: name, Net: net, Tun: tun, Series: series, Scale1: scale1, Seed: cfg.Seed, Opts: opts, Parallelism: cfg.Parallelism, WarmStart: cfg.WarmStart, SolverDeadline: cfg.SolverDeadline, SolverFaults: cfg.SolverFaults, Ctx: cfg.Ctx}, nil
}

// runCfg seeds a sim.RunConfig with the environment-wide solver settings:
// LP options, warm starting, the per-solve deadline, and injected
// controller faults. Figure runners layer protection/priority config on
// top of it.
func (e *Env) runCfg(prot core.Protection) sim.RunConfig {
	opts := e.Opts
	if opts.BuildWorkers == 0 {
		// Follow the harness parallelism knob (mutable between figure
		// runs, e.g. ffcbench's serial comparison pass): ≤ 0 means all
		// cores, mapped onto BuildWorkers' negative convention.
		opts.BuildWorkers = BuildWorkersFor(e.Parallelism)
	}
	return sim.RunConfig{
		Prot:           prot,
		SolverOpts:     opts,
		WarmStart:      e.WarmStart,
		SolverDeadline: e.SolverDeadline,
		SolverFaults:   e.SolverFaults,
	}
}

// BuildWorkersFor maps a harness parallelism knob (≤ 0 = all cores) onto
// core.Options.BuildWorkers (0 = serial, < 0 = all cores).
func BuildWorkersFor(parallelism int) int {
	if parallelism <= 0 {
		return -1
	}
	return parallelism
}

// NewLNet builds the L-Net-like environment.
func NewLNet(cfg EnvConfig) (*Env, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := topology.LNet(topology.LNetConfig{Sites: cfg.Sites}, rng)
	return buildEnv("L-Net", net, cfg)
}

// NewSNet builds the S-Net (B4 12-site) environment.
func NewSNet(cfg EnvConfig) (*Env, error) {
	cfg.fill()
	return buildEnv("S-Net", topology.SNet(), cfg)
}

// Scenario assembles a sim.Scenario at the given traffic scale.
func (e *Env) Scenario(scale float64, model faults.SwitchModel) sim.Scenario {
	return sim.Scenario{
		Net: e.Net, Tun: e.Tun,
		Series:      sim.ScaleSeries(e.Series, e.Scale1*scale),
		Interval:    5 * time.Minute,
		Failures:    faults.LNetFailures(),
		Switches:    model,
		Seed:        e.Seed + 1000,
		Parallelism: e.Parallelism,
		Ctx:         e.Ctx,
	}
}

// CDFSeries is one labelled empirical distribution for figure output.
type CDFSeries struct {
	Label string
	Dist  *metrics.Dist
}

func printCDFs(w io.Writer, title string, series []CDFSeries, points int) {
	fmt.Fprintf(w, "## %s\n", title)
	for _, s := range series {
		fmt.Fprint(w, metrics.RenderCDF(s.Label, s.Dist.CDF(points)))
	}
}

// Fig1a characterizes congestion from data-plane faults under plain TE:
// CDFs of maximum link oversubscription for 1–3 link failures and 1 switch
// failure per interval.
func Fig1a(e *Env, w io.Writer) ([]CDFSeries, error) {
	var out []CDFSeries
	sc := e.Scenario(1.0, faults.Realistic())
	for n := 1; n <= 3; n++ {
		d, err := sim.OversubDataFaults(sc, core.None, n, false)
		if err != nil {
			return nil, err
		}
		out = append(out, CDFSeries{fmt.Sprintf("%d link(s)", n), d})
	}
	d, err := sim.OversubDataFaults(sc, core.None, 0, true)
	if err != nil {
		return nil, err
	}
	out = append(out, CDFSeries{"1 switch", d})
	printCDFs(w, fmt.Sprintf("Fig 1(a) — %s: link oversubscription (%%) under data-plane faults, plain TE", e.Name), out, 20)
	return out, nil
}

// Fig1b is the control-plane analogue: 1–3 switches stuck on the previous
// interval's configuration.
func Fig1b(e *Env, w io.Writer) ([]CDFSeries, error) {
	var out []CDFSeries
	sc := e.Scenario(1.0, faults.Realistic())
	for n := 1; n <= 3; n++ {
		d, err := sim.OversubControlFaults(sc, core.None, n)
		if err != nil {
			return nil, err
		}
		out = append(out, CDFSeries{fmt.Sprintf("%d fault(s)", n), d})
	}
	printCDFs(w, fmt.Sprintf("Fig 1(b) — %s: link oversubscription (%%) under control-plane faults, plain TE", e.Name), out, 20)
	return out, nil
}

// Fig6 prints the two switch-update latency models (the paper's measured
// distributions that the simulation samples from).
func Fig6(w io.Writer) {
	fmt.Fprintln(w, "## Fig 6 — switch update latency models")
	for _, m := range []faults.SwitchModel{faults.Realistic(), faults.Optimistic()} {
		fmt.Fprintf(w, "# model %s (config-failure rate %.2g, %d rules/update)\n",
			m.Name, m.ConfigFailureRate, m.RulesPerUpdate)
		tab := metrics.NewTable("quantile", "rpc", "per-rule")
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			tab.Row(q, m.RPC.Quantile(q).String(), m.PerRule.Quantile(q).String())
		}
		fmt.Fprint(w, tab.String())
	}
}

// Fig12Row is one bar of Figure 12: the FFC throughput overhead
// (1 − throughput ratio, percent) at the 50th/90th/99th percentiles.
type Fig12Row struct {
	Plane   string // "control" or "data"
	Scale   float64
	K       int
	P50     float64
	P90     float64
	P99     float64
	Samples int
}

// Fig12 measures FFC's throughput overhead in isolation: per interval,
// solve plain TE and FFC TE on identical demands (no faults injected, no
// carryover) and report 1 − (FFC throughput / plain throughput).
//
// Intervals are independent here (the FFC solve's Prev is the previous
// interval's plain-TE state, itself computed without carryover), so both
// the shared plain-TE baselines and each protection level's sweep fan out
// over e.Parallelism workers; the simplex is deterministic per input, so
// the rows are identical to a serial run.
func Fig12(e *Env, w io.Writer) ([]Fig12Row, error) {
	var rows []Fig12Row
	solver := core.NewSolver(e.Net, e.Tun, e.Opts)
	scales := []float64{0.5, 1, 2}

	// Plain-TE baselines per scale, shared by every protection level.
	scaled := map[float64]demand.Series{}
	baseStates := map[float64][]*core.State{}
	for _, scale := range scales {
		series := sim.ScaleSeries(e.Series, e.Scale1*scale)
		states := make([]*core.State, len(series))
		errs := make([]error, len(series))
		parallel.ForEach(len(series), e.Parallelism, func(t int) {
			states[t], _, errs[t] = solver.Solve(core.Input{Demands: series[t]})
		})
		if err := parallel.FirstError(errs); err != nil {
			return nil, err
		}
		scaled[scale], baseStates[scale] = series, states
	}

	overheads := func(prot func(k int) core.Protection, plane string, ks []int) error {
		for _, scale := range scales {
			series, base := scaled[scale], baseStates[scale]
			for _, k := range ks {
				overheadPct := make([]float64, len(series))
				parallel.ForEach(len(series), e.Parallelism, func(t int) {
					prev := core.NewState()
					if t > 0 {
						prev = base[t-1]
					}
					in := core.Input{Demands: series[t], Prot: prot(k), Prev: prev}
					ffc, stats, err := solver.Solve(in)
					if stats != nil && obs.Enabled() {
						obsExpSolve.ObserveDuration(stats.SolveTime)
					}
					if err != nil {
						// Infeasible at this protection level: total loss
						// of throughput for the interval.
						overheadPct[t] = 100
						return
					}
					overheadPct[t] = 100 * (1 - metrics.SafeRatio(ffc.TotalRate(), base[t].TotalRate(), 1))
				})
				var dist metrics.Dist
				for _, v := range overheadPct {
					dist.Add(v)
				}
				rows = append(rows, Fig12Row{
					Plane: plane, Scale: scale, K: k,
					P50: dist.Percentile(50), P90: dist.Percentile(90), P99: dist.Percentile(99),
					Samples: dist.N(),
				})
			}
		}
		return nil
	}

	if err := overheads(func(k int) core.Protection { return core.Protection{Kc: k} }, "control", []int{1, 2, 3}); err != nil {
		return nil, err
	}
	if err := overheads(func(k int) core.Protection { return core.Protection{Ke: k} }, "data", []int{1, 2, 3}); err != nil {
		return nil, err
	}
	// kv=1 ("Kr=1" in the figure): one switch failure.
	if err := overheads(func(int) core.Protection { return core.Protection{Kv: 1} }, "data-kv", []int{1}); err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "## Fig 12 — %s: FFC throughput overhead (%%), 1 − throughput ratio\n", e.Name)
	tab := metrics.NewTable("plane", "scale", "k", "p50", "p90", "p99")
	for _, r := range rows {
		tab.Row(r.Plane, r.Scale, r.K, r.P50, r.P90, r.P99)
	}
	fmt.Fprint(w, tab.String())
	return rows, nil
}

// Table2Row is one cell of Table 2.
type Table2Row struct {
	Network  string
	Config   string
	MeanTime time.Duration
	Vars     int
	Cons     int
}

// Table2 benchmarks TE computation time for FFC (3,3,0)∪(3,0,1) (which the
// (1,3)-disjoint layout provides via the Eqn 15 slack), FFC (2,1,0), and
// plain TE, averaged over the series' intervals. The three configurations
// are independent and run across e.Parallelism workers (each one's
// intervals chain through its previous state, so they stay serial within a
// configuration); per-solve times are measured inside Solve, but expect
// some wall-clock contention when comparing absolute numbers across
// parallel runs.
func Table2(e *Env, w io.Writer) ([]Table2Row, error) {
	solver := core.NewSolver(e.Net, e.Tun, e.Opts)
	series := sim.ScaleSeries(e.Series, e.Scale1)
	n := len(series)
	if n > 6 {
		n = 6
	}
	configs := []struct {
		name string
		prot core.Protection
	}{
		{"FFC (3,3,0)∪(3,0,1)", core.Protection{Kc: 3, Ke: 3}},
		{"FFC (2,1,0)", core.Protection{Kc: 2, Ke: 1}},
		{"Non-FFC", core.None},
	}
	rows := make([]Table2Row, len(configs))
	errs := make([]error, len(configs))
	parallel.ForEach(len(configs), e.Parallelism, func(ci int) {
		cfg := configs[ci]
		var total time.Duration
		var vars, cons int
		prev := core.NewState()
		// Each configuration's intervals form one serial solve chain, the
		// natural consumer of a warm-start session.
		solve := solver.Solve
		if e.WarmStart {
			solve = solver.NewSession().Solve
		}
		for i := 0; i < n; i++ {
			in := core.Input{Demands: series[i], Prot: cfg.prot}
			if cfg.prot.Kc > 0 {
				in.Prev = prev
			}
			st, stats, err := solve(in)
			if err != nil {
				errs[ci] = fmt.Errorf("table2 %s: %w", cfg.name, err)
				return
			}
			if obs.Enabled() {
				obsExpSolve.ObserveDuration(stats.SolveTime)
			}
			total += stats.SolveTime
			vars, cons = stats.Vars, stats.Constraints
			prev = st
		}
		rows[ci] = Table2Row{e.Name, cfg.name, total / time.Duration(n), vars, cons}
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "## Table 2 — %s: TE computation time\n", e.Name)
	tab := metrics.NewTable("network", "config", "mean-time", "vars", "constraints")
	for _, r := range rows {
		tab.Row(r.Network, r.Config, r.MeanTime.String(), r.Vars, r.Cons)
	}
	fmt.Fprint(w, tab.String())
	return rows, nil
}

// Fig13Row is one bar pair of Figure 13.
type Fig13Row struct {
	Model           string
	Scale           float64
	ThroughputRatio float64
	LossRatio       float64
	BaseLoss        float64
	FFCLoss         float64
}

// Fig13 runs the end-to-end single-priority comparison: FFC (2,1,0) versus
// plain TE under the full fault environment, for both switch models and all
// three traffic scales.
func Fig13(e *Env, w io.Writer, models []faults.SwitchModel, scales []float64) ([]Fig13Row, error) {
	if len(models) == 0 {
		models = []faults.SwitchModel{faults.Realistic(), faults.Optimistic()}
	}
	if len(scales) == 0 {
		scales = []float64{0.5, 1, 2}
	}
	// Every (model, scale) pair needs a baseline and an FFC replay of the
	// same scenario; all of them are independent, so they fan out together.
	type job struct {
		sc  sim.Scenario
		cfg sim.RunConfig
	}
	var jobs []job
	for _, model := range models {
		for _, scale := range scales {
			sc := e.Scenario(scale, model)
			jobs = append(jobs, job{sc, e.runCfg(core.None)})
			jobs = append(jobs, job{sc, e.runCfg(core.Protection{Kc: 2, Ke: 1})})
		}
	}
	results := make([]*sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	parallel.ForEach(len(jobs), e.Parallelism, func(i int) {
		results[i], errs[i] = sim.Run(jobs[i].sc, jobs[i].cfg)
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	var rows []Fig13Row
	i := 0
	for _, model := range models {
		for _, scale := range scales {
			base, ffc := results[i], results[i+1]
			i += 2
			rows = append(rows, Fig13Row{
				Model: model.Name, Scale: scale,
				ThroughputRatio: ffc.ThroughputRatioVs(base),
				LossRatio:       ffc.LossRatioVs(base),
				BaseLoss:        base.Total.LossBytes,
				FFCLoss:         ffc.Total.LossBytes,
			})
		}
	}
	fmt.Fprintf(w, "## Fig 13 — %s: single-priority throughput and data-loss ratios (FFC (2,1,0) vs non-FFC)\n", e.Name)
	tab := metrics.NewTable("model", "scale", "throughput-ratio", "loss-ratio", "base-loss", "ffc-loss")
	for _, r := range rows {
		tab.Row(r.Model, r.Scale, r.ThroughputRatio, r.LossRatio, r.BaseLoss, r.FFCLoss)
	}
	fmt.Fprint(w, tab.String())
	return rows, nil
}

// Fig14Row summarizes the multi-priority comparison for one class.
type Fig14Row struct {
	Class           string
	ThroughputRatio float64
	LossRatio       float64
	// FFCLossFrac / BaseLossFrac: the class's share of all lost bytes.
	FFCLossFrac  float64
	BaseLossFrac float64
}

// Fig14 runs the multi-priority experiment at traffic scale 1 with the
// paper's per-class protection levels: high (3,0,1)∪(3,3,0), medium
// (2,1,0), low unprotected.
func Fig14(e *Env, w io.Writer, model faults.SwitchModel) ([]Fig14Row, error) {
	sc := e.Scenario(1.0, model)
	rng := rand.New(rand.NewSource(e.Seed + 99))
	splits := demand.RandomSplits(sim.FlowsOf(sc.Series), rng)

	multiProt := &sim.PriorityConfig{Splits: splits}
	multiProt.Prot[demand.High] = core.Protection{Kc: 3, Ke: 3}
	multiProt.Prot[demand.Med] = core.Protection{Kc: 2, Ke: 1}
	multiProt.Prot[demand.Low] = core.None
	multiBase := &sim.PriorityConfig{Splits: splits} // all classes unprotected

	// The protected and baseline cascades replay the same scenario
	// independently; RunMany runs them concurrently.
	baseCfg, protCfg := e.runCfg(core.None), e.runCfg(core.None)
	baseCfg.Multi, protCfg.Multi = multiBase, multiProt
	res, err := sim.RunMany(sc, []sim.RunConfig{baseCfg, protCfg})
	if err != nil {
		return nil, err
	}
	base, ffc := res[0], res[1]

	classes := []demand.Priority{demand.High, demand.Med, demand.Low}
	var rows []Fig14Row
	for _, p := range classes {
		rows = append(rows, Fig14Row{
			Class:           p.String(),
			ThroughputRatio: metrics.SafeRatio(ffc.ByPriority[p].DeliveredBytes(), base.ByPriority[p].DeliveredBytes(), 1),
			LossRatio:       metrics.SafeRatio(ffc.ByPriority[p].LossBytes, base.ByPriority[p].LossBytes, 0),
			FFCLossFrac:     metrics.SafeRatio(ffc.ByPriority[p].LossBytes, ffc.Total.LossBytes, 0),
			BaseLossFrac:    metrics.SafeRatio(base.ByPriority[p].LossBytes, base.Total.LossBytes, 0),
		})
	}
	rows = append(rows, Fig14Row{
		Class:           "total",
		ThroughputRatio: ffc.ThroughputRatioVs(base),
		LossRatio:       ffc.LossRatioVs(base),
		FFCLossFrac:     1, BaseLossFrac: 1,
	})
	fmt.Fprintf(w, "## Fig 14 — %s: multi-priority (scale 1, %s model)\n", e.Name, model.Name)
	tab := metrics.NewTable("class", "throughput-ratio", "loss-ratio", "ffc-loss-frac", "base-loss-frac")
	for _, r := range rows {
		tab.Row(r.Class, r.ThroughputRatio, r.LossRatio, r.FFCLossFrac, r.BaseLossFrac)
	}
	fmt.Fprint(w, tab.String())
	return rows, nil
}

// Fig15Point is one point of the loss-vs-throughput trade-off curve.
type Fig15Point struct {
	Scale           float64
	Ke              int
	ThroughputRatio float64 // percent
	LossRatio       float64 // percent
}

// Fig15 sweeps the link protection level (kc=kv=0) under the Realistic
// model and reports the trade-off between data loss and throughput, both as
// percentages of the unprotected run (the paper's (100,100) corner).
func Fig15(e *Env, w io.Writer, scales []float64, maxKe int) ([]Fig15Point, error) {
	if len(scales) == 0 {
		scales = []float64{0.5, 1, 2}
	}
	if maxKe == 0 {
		maxKe = 3
	}
	// One baseline plus maxKe protected replays per scale, all independent.
	type job struct {
		sc  sim.Scenario
		cfg sim.RunConfig
	}
	var jobs []job
	for _, scale := range scales {
		sc := e.Scenario(scale, faults.Realistic())
		jobs = append(jobs, job{sc, e.runCfg(core.None)})
		for ke := 1; ke <= maxKe; ke++ {
			jobs = append(jobs, job{sc, e.runCfg(core.Protection{Ke: ke})})
		}
	}
	results := make([]*sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	parallel.ForEach(len(jobs), e.Parallelism, func(i int) {
		results[i], errs[i] = sim.Run(jobs[i].sc, jobs[i].cfg)
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	var pts []Fig15Point
	i := 0
	for _, scale := range scales {
		base := results[i]
		i++
		pts = append(pts, Fig15Point{Scale: scale, Ke: 0, ThroughputRatio: 100, LossRatio: 100})
		for ke := 1; ke <= maxKe; ke++ {
			ffc := results[i]
			i++
			pts = append(pts, Fig15Point{
				Scale: scale, Ke: ke,
				ThroughputRatio: 100 * ffc.ThroughputRatioVs(base),
				LossRatio:       100 * ffc.LossRatioVs(base),
			})
		}
	}
	fmt.Fprintf(w, "## Fig 15 — %s: data loss vs throughput trade-off (link protection sweep)\n", e.Name)
	tab := metrics.NewTable("scale", "ke", "throughput-ratio-%", "loss-ratio-%")
	for _, p := range pts {
		tab.Row(p.Scale, p.Ke, p.ThroughputRatio, p.LossRatio)
	}
	fmt.Fprint(w, tab.String())
	return pts, nil
}

// Fig16Result carries the update-time CDFs.
type Fig16Result struct {
	Model   string
	FFC     *metrics.Dist // seconds
	NonFFC  *metrics.Dist
	Updates int
}

// Fig16 simulates congestion-free multi-step updates: per interval pair a
// 2–3 step chain over the network's ingress switches, executed with and
// without FFC (kc=2) under both switch models.
func Fig16(e *Env, w io.Writer, updates int) ([]Fig16Result, error) {
	if updates == 0 {
		updates = 200
	}
	// Network updates touch every switch (tunnel state lives on transit
	// switches too, and the paper's L-Net updates ~100 switches).
	nSwitches := e.Net.NumSwitches()
	var out []Fig16Result
	for _, model := range []faults.SwitchModel{faults.Realistic(), faults.Optimistic()} {
		rng := rand.New(rand.NewSource(e.Seed + 31))
		ffc, base := &metrics.Dist{}, &metrics.Dist{}
		for i := 0; i < updates; i++ {
			steps := 2 + rng.Intn(2) // chains of 2–3 steps (§5.2 plans)
			cfgBase := sim.UpdateExecConfig{Steps: steps, Switches: nSwitches, Kc: 0, Model: model, Deadline: 300 * time.Second}
			cfgFFC := cfgBase
			cfgFFC.Kc = 2
			base.Add(sim.SimulateUpdateExecution(cfgBase, rng).Seconds())
			ffc.Add(sim.SimulateUpdateExecution(cfgFFC, rng).Seconds())
		}
		out = append(out, Fig16Result{Model: model.Name, FFC: ffc, NonFFC: base, Updates: updates})
	}
	fmt.Fprintf(w, "## Fig 16 — %s: congestion-free update completion time (s)\n", e.Name)
	tab := metrics.NewTable("model", "approach", "p50", "p90", "p99", "stalled-at-300s-%")
	for _, r := range out {
		tab.Row(r.Model, "FFC kc=2", r.FFC.Percentile(50), r.FFC.Percentile(90), r.FFC.Percentile(99), 100*r.FFC.FractionAbove(299.9))
		tab.Row(r.Model, "Non-FFC", r.NonFFC.Percentile(50), r.NonFFC.Percentile(90), r.NonFFC.Percentile(99), 100*r.NonFFC.FractionAbove(299.9))
	}
	fmt.Fprint(w, tab.String())
	return out, nil
}
