package lp

import (
	"errors"
	"fmt"
	"math"

	"ffc/internal/obs"
)

// Sense is the direction of a linear constraint.
type Sense int8

const (
	// LE constrains expr ≤ rhs.
	LE Sense = iota
	// GE constrains expr ≥ rhs.
	GE
	// EQ constrains expr = rhs.
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int8

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies all constraints and bounds.
	Infeasible
	// Unbounded means the objective can be improved without limit.
	Unbounded
	// IterLimit means the solver gave up after MaxIters iterations.
	IterLimit
	// BudgetExceeded means a SolveOpts budget (deadline, iteration cap, or
	// context cancellation) stopped the solve; see BudgetError.
	BudgetExceeded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case BudgetExceeded:
		return "budget-exceeded"
	}
	return "unknown"
}

// ErrNotOptimal is wrapped by Solve errors when the status is not Optimal.
var ErrNotOptimal = errors.New("lp: no optimal solution")

type column struct {
	name    string
	lo, hi  float64
	obj     float64 // objective coefficient (in the user's direction)
	rowIdx  []int32
	rowCoef []float64
}

type rowMeta struct {
	name  string
	sense Sense
	rhs   float64
	nnz   int
}

// Model is a linear program under construction. Models are not safe for
// concurrent mutation.
type Model struct {
	cols     []column
	rows     []rowMeta
	maximize bool
	objConst float64

	// Options.

	// MaxIters bounds total simplex iterations (both phases). Zero means
	// a generous default proportional to the problem size.
	MaxIters int

	// forceRep overrides basis-representation selection in tests:
	// 0 = by size, 1 = dense, 2 = product-form.
	forceRep int8

	// Presolve cache for incremental re-solves. structVersion increments
	// whenever the sparsity pattern changes (new variable or constraint);
	// SetRHS/SetBounds/SetObjCoef leave it alone, so a repeat Solve can
	// revalidate and reuse the previous presolve plan and reduced model
	// instead of rebuilding them.
	structVersion int
	preCache      *presolved
	preVersion    int
	redCache      *Model
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NumVars returns the number of variables created so far.
func (m *Model) NumVars() int { return len(m.cols) }

// NumRows returns the number of constraints added so far.
func (m *Model) NumRows() int { return len(m.rows) }

// NewVar creates a variable with the given bounds. Use lp.Inf / -lp.Inf for
// unbounded directions. The name is used only in diagnostics.
func (m *Model) NewVar(name string, lo, hi float64) Var {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q has lo %g > hi %g", name, lo, hi))
	}
	m.cols = append(m.cols, column{name: name, lo: lo, hi: hi})
	m.structVersion++
	return Var(len(m.cols) - 1)
}

// SetBounds replaces the bounds of an existing variable.
func (m *Model) SetBounds(v Var, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("lp: SetBounds(%d) lo %g > hi %g", v, lo, hi))
	}
	m.cols[v].lo, m.cols[v].hi = lo, hi
}

// Bounds returns the current bounds of v.
func (m *Model) Bounds(v Var) (lo, hi float64) { return m.cols[v].lo, m.cols[v].hi }

// SetRHS replaces the right-hand side of a row (as returned by
// AddConstraint). The sparsity pattern is untouched, so a follow-up Solve
// can reuse the cached presolve mapping and a warm-start basis.
func (m *Model) SetRHS(row int, rhs float64) { m.rows[row].rhs = rhs }

// RHS returns the current right-hand side of a row.
func (m *Model) RHS(row int) float64 { return m.rows[row].rhs }

// SetObjCoef replaces v's objective coefficient (interpreted in the
// direction set by Maximize/Minimize) without rebuilding the objective.
func (m *Model) SetObjCoef(v Var, coef float64) { m.cols[v].obj = coef }

// ObjCoef returns v's current objective coefficient.
func (m *Model) ObjCoef(v Var) float64 { return m.cols[v].obj }

// VarName returns the diagnostic name of v.
func (m *Model) VarName(v Var) string { return m.cols[v].name }

// AddConstraint adds expr (sense) rhs. The expression's constant is moved to
// the right-hand side. Returns the row index for diagnostics.
func (m *Model) AddConstraint(expr *Expr, sense Sense, rhs float64) int {
	return m.addConstraintNamed("", expr, sense, rhs)
}

// AddNamed adds a named constraint; the name appears in diagnostics.
func (m *Model) AddNamed(name string, expr *Expr, sense Sense, rhs float64) int {
	return m.addConstraintNamed(name, expr, sense, rhs)
}

func (m *Model) addConstraintNamed(name string, expr *Expr, sense Sense, rhs float64) int {
	idx, coef := expr.compact()
	m.structVersion++
	r := int32(len(m.rows))
	m.rows = append(m.rows, rowMeta{name: name, sense: sense, rhs: rhs - expr.Constant, nnz: len(idx)})
	for i, ci := range idx {
		c := &m.cols[ci]
		c.rowIdx = append(c.rowIdx, r)
		c.rowCoef = append(c.rowCoef, coef[i])
	}
	return int(r)
}

// AddLE adds expr ≤ rhs.
func (m *Model) AddLE(expr *Expr, rhs float64) int { return m.AddConstraint(expr, LE, rhs) }

// AddGE adds expr ≥ rhs.
func (m *Model) AddGE(expr *Expr, rhs float64) int { return m.AddConstraint(expr, GE, rhs) }

// AddEQ adds expr = rhs.
func (m *Model) AddEQ(expr *Expr, rhs float64) int { return m.AddConstraint(expr, EQ, rhs) }

// Maximize sets the objective to maximize expr.
func (m *Model) Maximize(expr *Expr) { m.setObjective(expr, true) }

// Minimize sets the objective to minimize expr.
func (m *Model) Minimize(expr *Expr) { m.setObjective(expr, false) }

func (m *Model) setObjective(expr *Expr, maximize bool) {
	for i := range m.cols {
		m.cols[i].obj = 0
	}
	idx, coef := expr.compact()
	for i, ci := range idx {
		m.cols[ci].obj = coef[i]
	}
	m.objConst = expr.Constant
	m.maximize = maximize
}

// Solution holds the result of a successful solve.
type Solution struct {
	// Status of the solve; Optimal unless Solve returned an error.
	Status Status
	// Objective is the objective value in the user's direction
	// (including any constant term).
	Objective float64
	// X holds a value per variable, indexed by Var.
	X []float64
	// Duals holds one dual value (shadow price) per constraint row, in the
	// user's objective direction: for a maximization, Duals[i] is the rate
	// at which the optimum grows per unit of extra slack on row i (≥ 0 for
	// binding ≤ rows, ≤ 0 for binding ≥ rows, 0 for non-binding rows).
	Duals []float64
	// Iters is the total number of simplex iterations used.
	Iters int
	// Stats breaks down the work the solve performed (iteration split,
	// reinversions, presolve reductions, ...).
	Stats SolveStats

	// warm is the reusable basis snapshot (nil unless the solve reached
	// optimality on a model with rows).
	warm *WarmStart

	// budgetReason and budgetFeasible describe a BudgetExceeded stop: why
	// the budget fired and whether X holds a primal-feasible point (the
	// stop landed in Phase II).
	budgetReason   string
	budgetFeasible bool
}

// Value returns the solution value of v.
func (s *Solution) Value(v Var) float64 { return s.X[v] }

// Warm returns the solve's reusable basis handle for SolveFrom, or nil
// when the solve did not produce one (non-optimal status, empty model).
func (s *Solution) Warm() *WarmStart { return s.warm }

// Solve runs presolve then the simplex method. On non-optimal outcomes it
// returns a Solution carrying the status plus an error wrapping
// ErrNotOptimal.
func (m *Model) Solve() (*Solution, error) { return m.SolveWith(nil, SolveOpts{}) }

// SolveFrom is Solve starting from a previous solution's basis: the warm
// handle is mapped through the current presolve plan and crash-repaired
// against the current bounds/RHS, so re-solves after SetRHS / SetBounds /
// SetObjCoef mutations typically skip Phase 1 and most iterations. A handle
// that no longer fits the model (structure changed) is ignored; passing nil
// is exactly Solve.
func (m *Model) SolveFrom(ws *WarmStart) (*Solution, error) {
	return m.SolveWith(ws, SolveOpts{})
}

// SolveWith is SolveFrom under a budget (see SolveOpts). It is the single
// public solve boundary: a budget stop returns the Solution (status
// BudgetExceeded) plus a *BudgetError carrying the best feasible point when
// one exists, and any panic escaping the solver internals — or the
// caller's Hook — is recovered into an error wrapping ErrSolverPanic
// (with a nil Solution), so a long-running controller never dies here.
func (m *Model) SolveWith(ws *WarmStart, opts SolveOpts) (sol *Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			sol = nil
			err = fmt.Errorf("%w: %v", ErrSolverPanic, r)
		}
	}()
	sp := obs.StartSpan("lp.solve")
	pre, preCached := m.presolveFor()
	wsMismatch := ws != nil && !ws.fits(m)
	if wsMismatch {
		ws = nil
	}
	switch {
	case pre.infeasible:
		sol = &Solution{Status: Infeasible, X: make([]float64, len(m.cols)), Duals: make([]float64, len(m.rows))}
		for j := range m.cols {
			if pre.newCol[j] < 0 {
				sol.X[j] = pre.fixedVal[j]
			}
		}
	case pre.worthApplying(m):
		rm := m.redCache
		if preCached && rm != nil {
			pre.refreshReduced(m, rm)
		} else {
			rm = pre.reducedModel(m)
			m.redCache = rm
		}
		inner := solveSimplex(rm, pre.restrictWarm(ws), opts)
		sol = pre.expand(m, inner)
	default:
		sol = solveSimplex(m, ws, opts)
	}
	sol.Stats.PresolveRows = len(m.rows) - len(pre.origRow)
	sol.Stats.PresolveCols = len(m.cols) - len(pre.origCol)
	sol.Stats.PresolveCached = preCached
	if wsMismatch {
		sol.Stats.WarmFellBack = true
	}
	sol.Stats.publish(sol.Status)
	sp.End()
	sol.Objective += m.objConst
	switch sol.Status {
	case Optimal:
		return sol, nil
	case BudgetExceeded:
		be := &BudgetError{Reason: sol.budgetReason}
		if sol.budgetFeasible {
			be.Best = sol
		}
		return sol, be
	default:
		return sol, fmt.Errorf("%w: %s", ErrNotOptimal, sol.Status)
	}
}

// EvalExpr evaluates expr at the solution point.
func (s *Solution) EvalExpr(e *Expr) float64 {
	v := e.Constant
	for _, t := range e.Terms {
		v += t.Coef * s.X[t.Var]
	}
	return v
}

// Violation returns how far the solution is from satisfying expr (sense)
// rhs; non-positive values (within tolerance) mean satisfied.
func (s *Solution) Violation(e *Expr, sense Sense, rhs float64) float64 {
	v := s.EvalExpr(e)
	switch sense {
	case LE:
		return v - rhs
	case GE:
		return rhs - v
	default:
		return math.Abs(v - rhs)
	}
}
