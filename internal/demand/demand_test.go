package demand

import (
	"math"
	"math/rand"
	"testing"

	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

func genSeries(t *testing.T, seed int64, cfg Config) (*topology.Network, Series) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := topology.LNet(topology.LNetConfig{}, rng)
	return net, Generate(net, cfg, rng)
}

func TestGenerateShape(t *testing.T) {
	net, s := genSeries(t, 1, Config{Intervals: 10})
	if len(s) != 10 {
		t.Fatalf("%d intervals, want 10", len(s))
	}
	sites := map[string]bool{}
	for _, sw := range net.Switches {
		sites[sw.Site] = true
	}
	wantFlows := len(sites) * (len(sites) - 1)
	for i, m := range s {
		if len(m) != wantFlows {
			t.Fatalf("interval %d: %d flows, want %d", i, len(m), wantFlows)
		}
		for f, d := range m {
			if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				t.Fatalf("interval %d: flow %v demand %v", i, f, d)
			}
			if f.Src == f.Dst {
				t.Fatalf("self flow %v", f)
			}
			if net.Switches[f.Src].Site == net.Switches[f.Dst].Site {
				t.Fatalf("intra-site flow %v", f)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	_, a := genSeries(t, 7, Config{Intervals: 5})
	_, b := genSeries(t, 7, Config{Intervals: 5})
	for i := range a {
		for f, v := range a[i] {
			if b[i][f] != v {
				t.Fatalf("interval %d flow %v: %v != %v", i, f, v, b[i][f])
			}
		}
	}
}

func TestGenerateVariesAcrossIntervals(t *testing.T) {
	_, s := genSeries(t, 3, Config{Intervals: 20})
	f := s[0].Flows()[0]
	varies := false
	for i := 1; i < len(s); i++ {
		if math.Abs(s[i][f]-s[0][f]) > 1e-9 {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("demand constant across intervals; diurnal/noise missing")
	}
}

func TestScaleAndTotal(t *testing.T) {
	m := Matrix{tunnel.Flow{Src: 0, Dst: 1}: 2, tunnel.Flow{Src: 1, Dst: 0}: 3}
	if m.Total() != 5 {
		t.Fatalf("Total = %v", m.Total())
	}
	s := m.Scale(2)
	if s.Total() != 10 || m.Total() != 5 {
		t.Fatalf("Scale mutated original or wrong: %v %v", s.Total(), m.Total())
	}
}

func TestCloneNoAliasing(t *testing.T) {
	m := Matrix{tunnel.Flow{Src: 0, Dst: 1}: 2, tunnel.Flow{Src: 1, Dst: 0}: 3}
	cl := m.Clone()
	cl[tunnel.Flow{Src: 0, Dst: 1}] = 99
	cl[tunnel.Flow{Src: 2, Dst: 3}] = 1
	if m[tunnel.Flow{Src: 0, Dst: 1}] != 2 || len(m) != 2 {
		t.Fatalf("Clone aliases the receiver's storage: %v", m)
	}
	s := m.Scale(2)
	s[tunnel.Flow{Src: 1, Dst: 0}] = -1
	if m[tunnel.Flow{Src: 1, Dst: 0}] != 3 {
		t.Fatalf("Scale aliases the receiver's storage: %v", m)
	}
}

func TestByPriorityPartitionsTotalExactly(t *testing.T) {
	_, s := genSeries(t, 9, Config{Intervals: 1})
	m := s[0]
	splits := RandomSplits(m.Flows(), rand.New(rand.NewSource(11)))
	parts := ByPriority(m, splits)
	var total float64
	for p := Low; p < NumPriorities; p++ {
		total += parts[p].Total()
	}
	if want := m.Total(); math.Abs(total-want) > 1e-9*math.Max(1, want) {
		t.Fatalf("priority totals sum to %v, want %v", total, want)
	}
	for p := Low; p < NumPriorities; p++ {
		if len(parts[p]) != len(m) {
			t.Fatalf("priority %v has %d flows, want %d", p, len(parts[p]), len(m))
		}
	}
}

func TestFlowsDeterministicOrder(t *testing.T) {
	m := Matrix{
		{Src: 2, Dst: 1}: 1, {Src: 0, Dst: 3}: 1, {Src: 0, Dst: 1}: 1,
	}
	fs := m.Flows()
	if fs[0] != (tunnel.Flow{Src: 0, Dst: 1}) || fs[1] != (tunnel.Flow{Src: 0, Dst: 3}) || fs[2] != (tunnel.Flow{Src: 2, Dst: 1}) {
		t.Fatalf("order %v", fs)
	}
}

func TestRandomSplitsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	flows := []tunnel.Flow{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	splits := RandomSplits(flows, rng)
	for f, s := range splits {
		if math.Abs(s.High+s.Med+s.Low-1) > 1e-12 {
			t.Fatalf("flow %v split sums to %v", f, s.High+s.Med+s.Low)
		}
		if s.High <= 0 || s.High > 0.25+1e-9 {
			t.Fatalf("high share %v out of range", s.High)
		}
		if s.Low < 0.3 {
			t.Fatalf("low share %v implausibly small", s.Low)
		}
	}
}

func TestByPriorityPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Matrix{{Src: 0, Dst: 1}: 10, {Src: 1, Dst: 0}: 4}
	splits := RandomSplits(m.Flows(), rng)
	parts := ByPriority(m, splits)
	for f, d := range m {
		sum := parts[High][f] + parts[Med][f] + parts[Low][f]
		if math.Abs(sum-d) > 1e-9 {
			t.Fatalf("flow %v: parts sum %v != %v", f, sum, d)
		}
	}
}

func TestByPriorityMissingSplitGoesLow(t *testing.T) {
	m := Matrix{{Src: 0, Dst: 1}: 6}
	parts := ByPriority(m, nil)
	if parts[Low][tunnel.Flow{Src: 0, Dst: 1}] != 6 || parts[High][tunnel.Flow{Src: 0, Dst: 1}] != 0 {
		t.Fatalf("unsplit flow should be all low: %v", parts)
	}
}

func TestPriorityOrdering(t *testing.T) {
	if !(High > Med && Med > Low) {
		t.Fatal("priority constants out of order")
	}
	if High.String() != "high" || Low.String() != "low" || Med.String() != "med" {
		t.Fatal("priority names wrong")
	}
}
