package lp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteLP emits the model in CPLEX LP file format, so models can be
// inspected or cross-checked against external solvers. Variable names are
// sanitized to x<i> with the original names in comments; constraints use
// their AddNamed labels when present.
func (m *Model) WriteLP(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("\\ %d variables, %d constraints\n", len(m.cols), len(m.rows))
	for i, c := range m.cols {
		if c.name != "" {
			bw.printf("\\ x%d = %s\n", i, sanitizeComment(c.name))
		}
	}
	if m.maximize {
		bw.printf("Maximize\n obj:")
	} else {
		bw.printf("Minimize\n obj:")
	}
	first := true
	for i, c := range m.cols {
		if c.obj == 0 {
			continue
		}
		bw.printf(" %s x%d", signed(c.obj, first), i)
		first = false
	}
	if first {
		bw.printf(" 0 x0")
	}
	bw.printf("\nSubject To\n")

	// Rebuild rows from the column-major storage.
	type term struct {
		v    int
		coef float64
	}
	rows := make([][]term, len(m.rows))
	for j := range m.cols {
		c := &m.cols[j]
		for k, r := range c.rowIdx {
			rows[r] = append(rows[r], term{j, c.rowCoef[k]})
		}
	}
	for i, meta := range m.rows {
		label := meta.name
		if label == "" {
			label = fmt.Sprintf("c%d", i)
		}
		bw.printf(" %s:", sanitizeName(label))
		if len(rows[i]) == 0 {
			bw.printf(" 0 x0")
		}
		for k, t := range rows[i] {
			bw.printf(" %s x%d", signed(t.coef, k == 0), t.v)
		}
		switch meta.sense {
		case LE:
			bw.printf(" <= %g\n", meta.rhs)
		case GE:
			bw.printf(" >= %g\n", meta.rhs)
		case EQ:
			bw.printf(" = %g\n", meta.rhs)
		}
	}

	bw.printf("Bounds\n")
	for i, c := range m.cols {
		switch {
		case c.lo == 0 && math.IsInf(c.hi, 1):
			// default bound; omit
		case math.IsInf(c.lo, -1) && math.IsInf(c.hi, 1):
			bw.printf(" x%d free\n", i)
		case math.IsInf(c.hi, 1):
			bw.printf(" x%d >= %g\n", i, c.lo)
		case math.IsInf(c.lo, -1):
			bw.printf(" x%d <= %g\n", i, c.hi)
		case c.lo == c.hi:
			bw.printf(" x%d = %g\n", i, c.lo)
		default:
			bw.printf(" %g <= x%d <= %g\n", c.lo, i, c.hi)
		}
	}
	bw.printf("End\n")
	return bw.err
}

func signed(v float64, first bool) string {
	if first {
		return fmt.Sprintf("%g", v)
	}
	if v < 0 {
		return fmt.Sprintf("- %g", -v)
	}
	return fmt.Sprintf("+ %g", v)
}

func sanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "c"
	}
	return b.String()
}

func sanitizeComment(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' {
			return ' '
		}
		return r
	}, s)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...interface{}) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
