// Command ffccheck independently certifies FFC TE plans: it rebuilds the
// tunnel set purely from the paths recorded in a plan file or trace (no
// layout flags to match against the producing process) and verifies the
// congestion-freedom guarantees with internal/check — machinery that
// shares nothing with the LP formulation or the solver-side verifiers.
//
// Certify one plan file (as written by ffcte, or a get_plan reply's state):
//
//	ffccheck -topo net.json -plan state.json -kc 2 -ke 1
//
// Replay an interval trace recorded by ffcsim -trace or ffcd -trace,
// chaining each class's previous state for control-plane certification:
//
//	ffccheck -topo net.json -trace run.trace
//
// One NDJSON verdict line per certified plan goes to stdout. Exit status:
// 0 when every certificate is OK, 1 when any plan fails certification,
// 2 on usage or input errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ffc/internal/check"
	"ffc/internal/core"
	"ffc/internal/topology"
	"ffc/internal/wire"
)

func main() {
	var (
		topoPath  = flag.String("topo", "", "topology JSON (required; see cmd/topogen)")
		planPath  = flag.String("plan", "", "certify one plan file (wire state JSON)")
		prevPath  = flag.String("prev", "", "previously installed plan for control-plane (kc) certification; defaults to the plan itself (no stale delta)")
		tracePath = flag.String("trace", "", "replay an NDJSON interval trace (ffcsim/ffcd -trace)")
		kc        = flag.Int("kc", 0, "control-plane protection to certify (-plan mode; -trace takes levels from each record)")
		ke        = flag.Int("ke", 0, "link-failure protection to certify (-plan mode)")
		kv        = flag.Int("kv", 0, "switch-failure protection to certify (-plan mode)")
		modeFlag  = flag.String("mode", "auto", "data-plane strategy: auto, exact, adversarial")
		limiters  = flag.String("limiters", "synced", "rate-limiter fault model: synced, ordered, independent")
		maxCases  = flag.Int64("max-exact-cases", 0, "auto mode's exact-enumeration budget (0 = default)")
		restarts  = flag.Int("restarts", 0, "adversarial random restarts (0 = default)")
		seed      = flag.Int64("seed", 0, "adversarial search seed (0 = default)")
		failFast  = flag.Bool("fail-fast", false, "stop each certification at the first violating case")
		quiet     = flag.Bool("quiet", false, "suppress per-plan verdict lines; only the summary and exit status")
	)
	flag.Parse()
	if *topoPath == "" || (*planPath == "") == (*tracePath == "") {
		fmt.Fprintln(os.Stderr, "ffccheck: need -topo and exactly one of -plan / -trace")
		flag.Usage()
		os.Exit(2)
	}

	mode, err := check.ParseMode(*modeFlag)
	if err != nil {
		fatalf("%v", err)
	}
	var rl core.RateLimiterMode
	switch *limiters {
	case "synced":
		rl = core.LimitersSynced
	case "ordered":
		rl = core.LimitersOrdered
	case "independent":
		rl = core.LimitersIndependent
	default:
		fatalf("unknown -limiters %q", *limiters)
	}
	base := check.Params{
		RateLimiter:   rl,
		Mode:          mode,
		MaxExactCases: *maxCases,
		Restarts:      *restarts,
		Seed:          *seed,
		FailFast:      *failFast,
	}

	var net topology.Network
	blob, err := os.ReadFile(*topoPath)
	if err != nil {
		fatalf("%v", err)
	}
	if err := json.Unmarshal(blob, &net); err != nil {
		fatalf("parsing %s: %v", *topoPath, err)
	}
	if err := net.Validate(); err != nil {
		fatalf("%s: %v", *topoPath, err)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	var checked, failed int
	if *planPath != "" {
		base.Prot = core.Protection{Kc: *kc, Ke: *ke, Kv: *kv}
		ok := certifyPlanFile(&net, *planPath, *prevPath, base, out, *quiet)
		checked = 1
		if !ok {
			failed = 1
		}
	} else {
		checked, failed = replayTrace(&net, *tracePath, base, out, *quiet)
	}
	out.Flush()
	fmt.Fprintf(os.Stderr, "ffccheck: %d plan(s) certified, %d failed\n", checked, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// verdict is one output line: the record's identity plus its certificate.
type verdict struct {
	Seq   int64  `json:"seq,omitempty"`
	Class string `json:"class,omitempty"`
	*check.Certificate
}

// certifyPlanFile certifies one wire state file at the protection level in
// params.
func certifyPlanFile(net *topology.Network, planPath, prevPath string, params check.Params, out *bufio.Writer, quiet bool) bool {
	sf := readStateFile(planPath)
	set, err := wire.TunnelSetFromState(net, sf)
	if err != nil {
		fatalf("%s: %v", planPath, err)
	}
	st, err := wire.ResolveState(net, set, sf)
	if err != nil {
		fatalf("%s: %v", planPath, err)
	}
	prev := st // no previous plan: every ingress is already on this one
	if prevPath != "" {
		// The previous plan may use tunnels the current one dropped;
		// resolving it against the current set keeps the surviving paths
		// (exactly what a stale ingress can still send on).
		prev, err = wire.ResolveState(net, set, readStateFile(prevPath))
		if err != nil {
			fatalf("%s: %v", prevPath, err)
		}
	}
	cert, err := check.Certify(net, set, st, prev, params)
	if err != nil {
		fatalf("%s: %v", planPath, err)
	}
	emit(out, verdict{Certificate: cert}, quiet)
	return cert.OK
}

// replayTrace certifies every record of an NDJSON trace. Control-plane
// certification chains the previous record's state per class; degraded
// records (last-good fallbacks) certify at zero protection.
func replayTrace(net *topology.Network, path string, base check.Params, out *bufio.Writer, quiet bool) (checked, failed int) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	prevByClass := map[string]*wire.StateFile{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20) // a large net's records are long lines
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, err := wire.ParseTraceRecord(line)
		if err != nil {
			fatalf("%s:%d: %v", path, lineNo, err)
		}
		set, err := wire.TunnelSetFromState(net, &rec.State)
		if err != nil {
			fatalf("%s:%d: %v", path, lineNo, err)
		}
		st, err := wire.ResolveState(net, set, &rec.State)
		if err != nil {
			fatalf("%s:%d: %v", path, lineNo, err)
		}
		prev := st
		if prevSF := prevByClass[rec.Class]; prevSF != nil {
			// Resolve the previous record against this record's set: a
			// stale ingress can only keep sending on tunnels that still
			// exist.
			prev, err = wire.ResolveState(net, set, prevSF)
			if err != nil {
				fatalf("%s:%d: resolving previous state: %v", path, lineNo, err)
			}
		}
		params := base
		params.Prot = core.Protection{Kc: rec.Kc, Ke: rec.Ke, Kv: rec.Kv}
		if rec.Degraded != "" && rec.Degraded != "unsolved" {
			// A degraded install is the last-good plan rescaled around the
			// faults; it promises congestion-freedom under them, nothing
			// more.
			params.Prot = core.None
		}
		params.DownLinks, params.DownSwitches, err = wire.ResolveDownSets(net, rec.DownLinks, rec.DownSwitches)
		if err != nil {
			fatalf("%s:%d: %v", path, lineNo, err)
		}
		cert, err := check.Certify(net, set, st, prev, params)
		if err != nil {
			fatalf("%s:%d: %v", path, lineNo, err)
		}
		checked++
		if !cert.OK {
			failed++
		}
		emit(out, verdict{Seq: rec.Seq, Class: rec.Class, Certificate: cert}, quiet && cert.OK)
		prevByClass[rec.Class] = &rec.State
	}
	if err := sc.Err(); err != nil {
		fatalf("%s: %v", path, err)
	}
	return checked, failed
}

func readStateFile(path string) *wire.StateFile {
	blob, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var sf wire.StateFile
	if err := json.Unmarshal(blob, &sf); err != nil {
		fatalf("parsing %s: %v", path, err)
	}
	return &sf
}

func emit(out *bufio.Writer, v verdict, quiet bool) {
	if quiet {
		return
	}
	blob, err := json.Marshal(v)
	if err != nil {
		fatalf("encoding verdict: %v", err)
	}
	out.Write(blob)
	out.WriteByte('\n')
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ffccheck: "+format+"\n", args...)
	os.Exit(2)
}
