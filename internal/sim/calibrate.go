package sim

import (
	"fmt"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/tunnel"
)

// CalibrateScale finds the global demand multiplier at which plain TE
// satisfies the target fraction (the paper's 0.99) of offered demand — the
// definition of traffic scale 1.0 in §8.1. It bisects over the multiplier
// using up to sample intervals of the series.
func CalibrateScale(solver *core.Solver, series demand.Series, target float64, samples int) (float64, error) {
	if target <= 0 || target >= 1 {
		target = 0.99
	}
	if samples <= 0 || samples > len(series) {
		samples = len(series)
	}
	if samples > 5 {
		samples = 5
	}
	stride := len(series) / samples
	if stride == 0 {
		stride = 1
	}
	var sample []demand.Matrix
	for i := 0; i < len(series) && len(sample) < samples; i += stride {
		sample = append(sample, series[i])
	}

	satisfied := func(scale float64) (float64, error) {
		var granted, offered float64
		for _, m := range sample {
			scaled := m.Scale(scale)
			st, _, err := solver.Solve(core.Input{Demands: scaled})
			if err != nil {
				return 0, err
			}
			granted += st.TotalRate()
			offered += scaled.Total()
		}
		if offered == 0 {
			return 1, nil
		}
		return granted / offered, nil
	}

	// Bracket: find hi with satisfaction below target.
	lo, hi := 0.0, 1.0
	for iter := 0; ; iter++ {
		s, err := satisfied(hi)
		if err != nil {
			return 0, err
		}
		if s < target {
			break
		}
		lo = hi
		hi *= 2
		if iter > 40 {
			return 0, fmt.Errorf("sim: calibration failed to bracket (satisfaction stays ≥ %v)", target)
		}
	}
	for iter := 0; iter < 20; iter++ {
		mid := (lo + hi) / 2
		s, err := satisfied(mid)
		if err != nil {
			return 0, err
		}
		if s >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// FlowsOf lists the flows appearing anywhere in the series.
func FlowsOf(series demand.Series) []tunnel.Flow {
	seen := map[tunnel.Flow]bool{}
	var out []tunnel.Flow
	for _, m := range series {
		for _, f := range m.Flows() {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// ScaleSeries multiplies every interval by k.
func ScaleSeries(series demand.Series, k float64) demand.Series {
	out := make(demand.Series, len(series))
	for i, m := range series {
		out[i] = m.Scale(k)
	}
	return out
}
