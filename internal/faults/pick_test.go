package faults

import (
	"math/rand"
	"testing"

	"ffc/internal/topology"
)

func TestPickFaultsDistinctSortedCanonical(t *testing.T) {
	net := topology.SNet()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		links, sws := PickFaults(net, rng, 3, 2)
		if len(links) != 3 || len(sws) != 2 {
			t.Fatalf("trial %d: got %d links / %d switches, want 3 / 2", trial, len(links), len(sws))
		}
		for i, l := range links {
			lk := net.Links[l]
			if lk.Twin != topology.None && lk.Twin < l {
				t.Fatalf("trial %d: link %d is not the canonical half of its duplex pair", trial, l)
			}
			if i > 0 && links[i-1] >= l {
				t.Fatalf("trial %d: links not strictly sorted: %v", trial, links)
			}
		}
		for i := 1; i < len(sws); i++ {
			if sws[i-1] >= sws[i] {
				t.Fatalf("trial %d: switches not strictly sorted: %v", trial, sws)
			}
		}
	}
}

func TestPickFaultsClampsAndZero(t *testing.T) {
	net := topology.Example4()
	rng := rand.New(rand.NewSource(1))
	links, sws := PickFaults(net, rng, 1000, 1000)
	phys := 0
	for _, l := range net.Links {
		if l.Twin == topology.None || l.ID < l.Twin {
			phys++
		}
	}
	if len(links) != phys || len(sws) != net.NumSwitches() {
		t.Fatalf("clamping: got %d links / %d switches, want %d / %d",
			len(links), len(sws), phys, net.NumSwitches())
	}
	links, sws = PickFaults(net, rng, 0, 0)
	if links != nil || sws != nil {
		t.Fatalf("zero request: got %v / %v, want nil / nil", links, sws)
	}
}

func TestPickFaultsDeterministic(t *testing.T) {
	net := topology.SNet()
	l1, s1 := PickFaults(net, rand.New(rand.NewSource(7)), 2, 1)
	l2, s2 := PickFaults(net, rand.New(rand.NewSource(7)), 2, 1)
	if len(l1) != len(l2) || len(s1) != len(s2) {
		t.Fatal("same seed, different fault counts")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("same seed, different links: %v vs %v", l1, l2)
		}
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed, different switches: %v vs %v", s1, s2)
		}
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	// Distinct shards of the same base must give distinct seeds, and the
	// mapping must be stable (these values are load-bearing: topogen and
	// internal/prop split their streams with it).
	seen := map[int64]bool{}
	for shard := int64(0); shard < 100; shard++ {
		s := DeriveSeed(42, shard)
		if seen[s] {
			t.Fatalf("shard %d: seed %d collides", shard, s)
		}
		seen[s] = true
		if s != DeriveSeed(42, shard) {
			t.Fatalf("shard %d: DeriveSeed is not a pure function", shard)
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different bases, same seed")
	}
}
