package core

import (
	"math"
	"math/rand"
	"testing"

	"ffc/internal/demand"
	"ffc/internal/topology"
)

// TestSessionMatchesColdSolve drives a Session through a drifting-demand
// interval sequence and checks every solve against a cold Solver.Solve of
// the identical input: equal optima and feasible allocations, with the
// session actually reusing the model after the first interval.
func TestSessionMatchesColdSolve(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	se := s.NewSession()
	rng := rand.New(rand.NewSource(42))

	reused := 0
	for i := 0; i < 12; i++ {
		in := Input{Demands: demand.Matrix{
			fx.f24: 4 + 8*rng.Float64(),
			fx.f34: 4 + 8*rng.Float64(),
			fx.f14: 2 * rng.Float64(),
		}}
		if i%4 == 3 {
			in.Prot = Protection{Ke: 1} // structure change: forces a rebuild
		}
		warmSt, warmStats, warmErr := se.Solve(in)
		coldSt, _, coldErr := s.Solve(in)
		if (warmErr == nil) != (coldErr == nil) {
			t.Fatalf("interval %d: session err %v vs cold err %v", i, warmErr, coldErr)
		}
		if warmErr != nil {
			continue
		}
		if d := math.Abs(warmSt.TotalRate() - coldSt.TotalRate()); d > 1e-6*(1+coldSt.TotalRate()) {
			t.Fatalf("interval %d: session throughput %v vs cold %v", i, warmSt.TotalRate(), coldSt.TotalRate())
		}
		for l, load := range warmSt.LinkLoads(fx.tun) {
			if load > fx.net.Links[l].Capacity+1e-6 {
				t.Fatalf("interval %d: link %d overloaded: %v", i, l, load)
			}
		}
		for f, r := range warmSt.Rate {
			if r < -1e-9 || r > in.Demands[f]+1e-6 {
				t.Fatalf("interval %d: flow %v rate %v outside [0, %v]", i, f, r, in.Demands[f])
			}
		}
		if warmStats.ModelReused {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("session never rebound the cached model across 12 intervals")
	}
}

// TestSessionRebindTracksCapacity checks that rebinding refreshes the
// capacity right-hand sides: shrinking a link's capacity between session
// solves must shrink the optimum exactly as a cold solve does.
func TestSessionRebindTracksCapacity(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	se := s.NewSession()
	dem := demand.Matrix{fx.f24: 10, fx.f34: 10}

	if _, _, err := se.Solve(Input{Demands: dem}); err != nil {
		t.Fatal(err)
	}
	// Halve every capacity via the override map; the cached model must be
	// rebound, not reused verbatim.
	caps := map[topology.LinkID]float64{}
	for _, l := range fx.net.Links {
		caps[l.ID] = l.Capacity / 2
	}
	in := Input{Demands: dem, Capacity: caps}
	warmSt, warmStats, err := se.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	coldSt, _, err := s.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !warmStats.ModelReused {
		t.Fatal("capacity-only change should rebind, not rebuild")
	}
	if d := math.Abs(warmSt.TotalRate() - coldSt.TotalRate()); d > 1e-6 {
		t.Fatalf("session %v vs cold %v after capacity change", warmSt.TotalRate(), coldSt.TotalRate())
	}
	for l, load := range warmSt.LinkLoads(fx.tun) {
		if load > caps[l]+1e-6 {
			t.Fatalf("link %d exceeds halved capacity: %v > %v", l, load, caps[l])
		}
	}
}

// TestSessionStructureChangesRebuild checks the fingerprint: flow-set and
// down-set changes must invalidate the cached model (and still solve
// correctly), not be rebound onto a stale structure.
func TestSessionStructureChangesRebuild(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	se := s.NewSession()

	if _, _, err := se.Solve(Input{Demands: demand.Matrix{fx.f24: 10, fx.f34: 10}}); err != nil {
		t.Fatal(err)
	}
	// New flow appears: different variable set.
	in := Input{Demands: demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 5}}
	st, stats, err := se.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ModelReused {
		t.Fatal("flow-set change was rebound onto the old model")
	}
	if st.Rate[fx.f14] <= 0 {
		t.Fatal("new flow got no rate after rebuild")
	}
	// Down link appears: different alive sets inside the constraints.
	l := fx.net.FindLink(fx.s2, fx.s4)
	in = Input{
		Demands:   demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 5},
		DownLinks: map[topology.LinkID]bool{l: true},
	}
	warmSt, stats, err := se.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ModelReused {
		t.Fatal("down-set change was rebound onto the old model")
	}
	coldSt, _, err := s.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(warmSt.TotalRate() - coldSt.TotalRate()); d > 1e-6 {
		t.Fatalf("session %v vs cold %v with a down link", warmSt.TotalRate(), coldSt.TotalRate())
	}
}

// TestSessionMaxMin checks the warm-started max-min iteration against the
// cold one: same fixed point, same LP count, fewer or equal simplex
// iterations in total.
func TestSessionMaxMin(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	in := Input{Demands: demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 6}}

	cold, err := s.SolveMaxMin(in, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.NewSession().SolveMaxMin(in, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations != cold.Iterations {
		t.Fatalf("LP count diverged: warm %d vs cold %d", warm.Iterations, cold.Iterations)
	}
	for f := range in.Demands {
		if d := math.Abs(warm.State.Rate[f] - cold.State.Rate[f]); d > 1e-6 {
			t.Fatalf("flow %v: warm rate %v vs cold %v", f, warm.State.Rate[f], cold.State.Rate[f])
		}
	}
	if warm.TotalStats.Iters > cold.TotalStats.Iters {
		t.Fatalf("warm max-min used more simplex iterations (%d) than cold (%d)",
			warm.TotalStats.Iters, cold.TotalStats.Iters)
	}
}
