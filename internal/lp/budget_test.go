package lp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// feasibleLE builds a model that is feasible at the origin (all LE rows,
// nonnegative RHS), so the cold crash seats a feasible slack basis and the
// solve starts directly in Phase II.
func feasibleLE(rng *rand.Rand, n int) *Model {
	m := NewModel()
	vars := make([]Var, n)
	for j := range vars {
		vars[j] = m.NewVar("x", 0, Inf)
	}
	obj := NewExpr()
	for j, v := range vars {
		obj.Add(1+rng.Float64(), v)
		_ = j
	}
	for i := 0; i < n; i++ {
		e := NewExpr()
		for j, v := range vars {
			if j == i || rng.Float64() < 0.3 {
				e.Add(0.1+rng.Float64(), v)
			}
		}
		m.AddLE(e, 1+10*rng.Float64())
	}
	m.Maximize(obj)
	return m
}

func checkFeasiblePoint(t *testing.T, m *Model, sol *Solution) {
	t.Helper()
	for j := range m.cols {
		c := &m.cols[j]
		if sol.X[j] < c.lo-1e-6 || sol.X[j] > c.hi+1e-6 {
			t.Fatalf("X[%d] = %g outside [%g, %g]", j, sol.X[j], c.lo, c.hi)
		}
	}
	for i := range m.rows {
		var v float64
		for j := range m.cols {
			c := &m.cols[j]
			for k, r := range c.rowIdx {
				if int(r) == i {
					v += c.rowCoef[k] * sol.X[j]
				}
			}
		}
		r := &m.rows[i]
		switch r.sense {
		case LE:
			if v > r.rhs+1e-6 {
				t.Fatalf("row %d: %g > %g", i, v, r.rhs)
			}
		case GE:
			if v < r.rhs-1e-6 {
				t.Fatalf("row %d: %g < %g", i, v, r.rhs)
			}
		case EQ:
			if !almost(v, r.rhs, 1e-6) {
				t.Fatalf("row %d: %g != %g", i, v, r.rhs)
			}
		}
	}
}

func TestBudgetExpiredDeadline(t *testing.T) {
	m := feasibleLE(rand.New(rand.NewSource(1)), 20)
	sol, err := m.SolveWith(nil, SolveOpts{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if sol.Status != BudgetExceeded {
		t.Fatalf("status = %v, want budget-exceeded", sol.Status)
	}
	if sol.Iters != 0 {
		t.Fatalf("expired deadline still ran %d iterations", sol.Iters)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != BudgetDeadline {
		t.Fatalf("err = %#v, want BudgetError{Reason: deadline}", err)
	}
	// Feasible at the crash point, so a best-so-far point must be offered
	// and must satisfy the constraints.
	if be.Best == nil {
		t.Fatalf("no best-so-far point despite feasible start")
	}
	checkFeasiblePoint(t, m, be.Best)
}

func TestBudgetExpiredDeadlineMidPhase1(t *testing.T) {
	// GE rows force Phase I; an already-expired deadline stops the solve
	// before feasibility is proven, so no best-so-far point may be offered.
	m := NewModel()
	x := m.NewVar("x", 0, 10)
	y := m.NewVar("y", 0, 10)
	m.AddGE(NewExpr().Add(1, x).Add(1, y), 5)
	m.AddGE(NewExpr().Add(2, x).Add(1, y), 7)
	m.Minimize(NewExpr().Add(1, x).Add(3, y))
	sol, err := m.SolveWith(nil, SolveOpts{Deadline: time.Now().Add(-time.Minute)})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Best != nil {
		t.Fatalf("mid-Phase-1 budget hit offered a 'feasible' point: %+v", be.Best)
	}
	if sol.Status != BudgetExceeded {
		t.Fatalf("status = %v, want budget-exceeded", sol.Status)
	}
}

func TestBudgetMaxItersCarriesBestFeasible(t *testing.T) {
	m := feasibleLE(rand.New(rand.NewSource(2)), 40)
	ref, err := m.Solve()
	requireOptimal(t, ref, err)
	if ref.Iters <= 2 {
		t.Skipf("problem solved in %d iterations; nothing to budget", ref.Iters)
	}
	sol, err := m.SolveWith(nil, SolveOpts{MaxIters: 2})
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != BudgetIters {
		t.Fatalf("err = %v, want BudgetError{Reason: iterations}", err)
	}
	if sol.Iters != 2 {
		t.Fatalf("iteration budget 2 ran %d iterations", sol.Iters)
	}
	if be.Best == nil {
		t.Fatalf("Phase-II budget hit carried no best-so-far point")
	}
	checkFeasiblePoint(t, m, be.Best)
	if be.Best.Objective > ref.Objective+1e-6 {
		t.Fatalf("truncated objective %g beats the optimum %g", be.Best.Objective, ref.Objective)
	}
}

func TestBudgetPreCanceledContext(t *testing.T) {
	m := feasibleLE(rand.New(rand.NewSource(3)), 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := m.SolveWith(nil, SolveOpts{Ctx: ctx})
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != BudgetCanceled {
		t.Fatalf("err = %v, want BudgetError{Reason: canceled}", err)
	}
	if sol.Iters != 0 {
		t.Fatalf("pre-canceled context still ran %d iterations", sol.Iters)
	}
}

func TestBudgetCancelStopsWithinOneBatch(t *testing.T) {
	m := feasibleLE(rand.New(rand.NewSource(4)), 120)
	ref, err := m.Solve()
	requireOptimal(t, ref, err)
	if ref.Iters <= budgetBatch {
		t.Fatalf("problem solved in %d iterations; cannot exercise mid-solve cancel", ref.Iters)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	canceledAt := -1
	sol, err := m.SolveWith(nil, SolveOpts{
		Ctx: ctx,
		Hook: func(iters int) {
			if iters > 0 && canceledAt < 0 {
				canceledAt = iters
				cancel()
			}
		},
	})
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != BudgetCanceled {
		t.Fatalf("err = %v, want BudgetError{Reason: canceled}", err)
	}
	if canceledAt < 0 {
		t.Fatalf("hook never saw a positive iteration count")
	}
	// The simplex must stop within one iteration batch of the cancellation.
	if got := sol.Iters - canceledAt; got < 0 || got > budgetBatch {
		t.Fatalf("stopped %d iterations after cancel, want within %d", got, budgetBatch)
	}
	if be.Best == nil {
		t.Fatalf("Phase-II cancellation carried no best-so-far point")
	}
	checkFeasiblePoint(t, m, be.Best)
}

func TestBudgetGenerousDeadlineSolvesToOptimal(t *testing.T) {
	m := feasibleLE(rand.New(rand.NewSource(5)), 40)
	hooked := 0
	sol, err := m.SolveWith(nil, SolveOpts{
		Deadline: time.Now().Add(time.Minute),
		Ctx:      context.Background(),
		Hook:     func(int) { hooked++ },
	})
	requireOptimal(t, sol, err)
	if hooked == 0 {
		t.Fatalf("hook never ran")
	}
}

func TestSolverPanicRecovered(t *testing.T) {
	m := feasibleLE(rand.New(rand.NewSource(6)), 20)
	sol, err := m.SolveWith(nil, SolveOpts{
		Hook: func(int) { panic("injected solver crash") },
	})
	if !errors.Is(err, ErrSolverPanic) {
		t.Fatalf("err = %v, want ErrSolverPanic", err)
	}
	if sol != nil {
		t.Fatalf("recovered panic returned a solution: %+v", sol)
	}
}
