package prop

import (
	"math"
	"strings"

	"ffc/internal/topology"
	"ffc/internal/wire"
)

// ShrinkStats reports the shrinker's work.
type ShrinkStats struct {
	// Attempts counts candidate scenarios replayed.
	Attempts int `json:"attempts"`
	// Accepted counts candidates that kept the failure and became the new
	// minimum.
	Accepted int `json:"accepted"`
}

// DefaultShrinkRuns caps how many candidate replays Shrink performs.
const DefaultShrinkRuns = 400

// Shrink greedily minimizes a failing scenario while preserving the given
// failure's invariant: it tries removing flows, switches, and links,
// clearing fault sets, lowering protection, simplifying the solve path and
// encoding, and rounding numbers — accepting a candidate only if the same
// invariant still fails on it. The process is fully deterministic (the
// candidate order is fixed and Run has no randomness), bounded by maxRuns
// replays (≤ 0 uses DefaultShrinkRuns), and always returns a scenario on
// which the invariant fails — at worst the input itself.
//
// The returned scenario carries Invariants = [failure.Invariant], so
// replaying it checks exactly the shrunk property.
func Shrink(sc *Scenario, failure Failure, maxRuns int) (*Scenario, ShrinkStats) {
	if maxRuns <= 0 {
		maxRuns = DefaultShrinkRuns
	}
	best := sc.Clone()
	best.Invariants = []string{failure.Invariant}
	var stats ShrinkStats

	fails := func(c *Scenario) bool {
		if c == nil || stats.Attempts >= maxRuns {
			return false
		}
		stats.Attempts++
		res, err := Run(c)
		if err != nil {
			return false // invalid candidate; keep looking
		}
		for _, f := range res.Failures {
			if f.Invariant == failure.Invariant {
				return true
			}
		}
		return false
	}

	passes := []func(*Scenario) []*Scenario{
		simplifyPass,
		clearFaultsPass,
		reduceProtPass,
		dropSwitchPass,
		dropDemandPass,
		dropLinkPass,
		dropPrevPass,
		roundPass,
	}
	for improved := true; improved && stats.Attempts < maxRuns; {
		improved = false
		for _, pass := range passes {
			// Restart a pass after each acceptance: the shrunk scenario
			// exposes new candidates of the same kind.
			for retry := true; retry; {
				retry = false
				for _, cand := range pass(best) {
					if fails(cand) {
						best = cand
						stats.Accepted++
						improved, retry = true, true
						break
					}
					if stats.Attempts >= maxRuns {
						return best, stats
					}
				}
			}
		}
	}
	return best, stats
}

// simplifyPass collapses configuration dimensions to their simplest values.
func simplifyPass(sc *Scenario) []*Scenario {
	var out []*Scenario
	mod := func(f func(*Scenario) bool) {
		c := sc.Clone()
		if f(c) {
			out = append(out, c)
		}
	}
	mod(func(c *Scenario) bool {
		if c.Path == PathScratch {
			return false
		}
		c.Path = PathScratch
		return true
	})
	mod(func(c *Scenario) bool {
		if c.Encoding == "" || c.Encoding == "sortnet" {
			return false
		}
		c.Encoding = "sortnet"
		return true
	})
	mod(func(c *Scenario) bool {
		if c.RateLimiter == "" || c.RateLimiter == "synced" {
			return false
		}
		c.RateLimiter = "synced"
		return true
	})
	mod(func(c *Scenario) bool {
		if len(c.Relabel) == 0 || has(c.Invariants, InvRelabel) {
			return false
		}
		c.Relabel = nil
		return true
	})
	mod(func(c *Scenario) bool {
		if c.Scale == 0 || c.Scale == 2 || has(c.Invariants, InvScale) {
			return false
		}
		c.Scale = 2
		return true
	})
	mod(func(c *Scenario) bool {
		if c.TunnelsPerFlow == 0 || c.TunnelsPerFlow <= 2 {
			return false
		}
		c.TunnelsPerFlow = 2
		return true
	})
	return out
}

func has(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// clearFaultsPass empties each fault list wholesale, then element-wise.
func clearFaultsPass(sc *Scenario) []*Scenario {
	var out []*Scenario
	clear := func(f func(*Scenario)) {
		c := sc.Clone()
		f(c)
		out = append(out, c)
	}
	if len(sc.DownLinks) > 0 {
		clear(func(c *Scenario) { c.DownLinks = nil })
	}
	if len(sc.DownSwitches) > 0 {
		clear(func(c *Scenario) { c.DownSwitches = nil })
	}
	if len(sc.ExtraFaultLinks) > 0 {
		clear(func(c *Scenario) { c.ExtraFaultLinks = nil })
	}
	if len(sc.ExtraFaultSwitches) > 0 {
		clear(func(c *Scenario) { c.ExtraFaultSwitches = nil })
	}
	for i := range sc.ExtraFaultLinks {
		i := i
		clear(func(c *Scenario) { c.ExtraFaultLinks = dropIndex(c.ExtraFaultLinks, i) })
	}
	for i := range sc.DownLinks {
		i := i
		clear(func(c *Scenario) { c.DownLinks = dropIndex(c.DownLinks, i) })
	}
	return out
}

func dropIndex(list []string, i int) []string {
	out := append([]string(nil), list[:i]...)
	return append(out, list[i+1:]...)
}

// reduceProtPass lowers each protection dimension by one.
func reduceProtPass(sc *Scenario) []*Scenario {
	var out []*Scenario
	if sc.Kc > 0 {
		c := sc.Clone()
		c.Kc--
		out = append(out, c)
	}
	if sc.Ke > 0 {
		c := sc.Clone()
		c.Ke--
		out = append(out, c)
	}
	if sc.Kv > 0 {
		c := sc.Clone()
		c.Kv--
		out = append(out, c)
	}
	return out
}

// dropDemandPass removes chunks of demand entries, delta-debugging style:
// halves first, then smaller chunks, down to single entries.
func dropDemandPass(sc *Scenario) []*Scenario {
	var out []*Scenario
	n := len(sc.Demands)
	for size := n / 2; size >= 1; size /= 2 {
		for lo := 0; lo+size <= n; lo += size {
			c := sc.Clone()
			c.Demands = append(append([]wire.DemandEntry(nil), c.Demands[:lo]...), c.Demands[lo+size:]...)
			if len(c.Demands) == 0 {
				continue
			}
			out = append(out, c)
		}
	}
	return out
}

// dropPrevPass drops previous-interval demand entries (or the whole list —
// an empty list defaults the previous state to the current demands).
func dropPrevPass(sc *Scenario) []*Scenario {
	var out []*Scenario
	if len(sc.PrevDemands) == 0 {
		return nil
	}
	c := sc.Clone()
	c.PrevDemands = nil
	out = append(out, c)
	for i := range sc.PrevDemands {
		c := sc.Clone()
		c.PrevDemands = append(append([]wire.DemandEntry(nil), c.PrevDemands[:i]...), c.PrevDemands[i+1:]...)
		out = append(out, c)
	}
	return out
}

// dropSwitchPass removes one switch (with its links, demands, faults, and
// relabel entry) per candidate.
func dropSwitchPass(sc *Scenario) []*Scenario {
	var out []*Scenario
	for _, sw := range sc.Topo.Switches {
		if c := removeSwitch(sc, sw.Name); c != nil {
			out = append(out, c)
		}
	}
	return out
}

// dropLinkPass removes one physical link per candidate.
func dropLinkPass(sc *Scenario) []*Scenario {
	var out []*Scenario
	for _, l := range sc.Topo.Links {
		if l.Twin != topology.None && l.Twin < l.ID {
			continue // canonical direction only
		}
		if c := removeLink(sc, l.ID); c != nil {
			out = append(out, c)
		}
	}
	return out
}

// roundPass rounds capacities and demand rates to few significant digits,
// then to integers — small integer repros read far better than 15-digit
// floats.
func roundPass(sc *Scenario) []*Scenario {
	var out []*Scenario
	for _, digits := range []int{2, 1} {
		digits := digits
		c := sc.Clone()
		changed := false
		for i := range c.Topo.Links {
			if r := roundSig(c.Topo.Links[i].Capacity, digits); r != c.Topo.Links[i].Capacity && r > 0 {
				c.Topo.Links[i].Capacity = r
				changed = true
			}
		}
		for i := range c.Demands {
			if r := roundSig(c.Demands[i].Demand, digits); r != c.Demands[i].Demand && r > 0 {
				c.Demands[i].Demand = r
				changed = true
			}
		}
		for i := range c.PrevDemands {
			if r := roundSig(c.PrevDemands[i].Demand, digits); r != c.PrevDemands[i].Demand && r > 0 {
				c.PrevDemands[i].Demand = r
				changed = true
			}
		}
		if changed {
			out = append(out, c)
		}
	}
	return out
}

// roundSig rounds x to the given number of significant digits.
func roundSig(x float64, digits int) float64 {
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	mag := math.Pow(10, float64(digits-1)-math.Floor(math.Log10(math.Abs(x))))
	return math.Round(x*mag) / mag
}

// removeSwitch rebuilds the scenario without the named switch, dropping
// every reference to it (links, demands, faults, the relabel entry). It
// returns nil when the removal is inapplicable (last switch, or the
// mutation targets it).
func removeSwitch(sc *Scenario, name string) *Scenario {
	old := sc.Topo
	victim, ok := old.SwitchByName(name)
	if !ok || old.NumSwitches() <= 2 {
		return nil
	}
	if m := sc.Mutation; m != nil {
		if m.Src == name || m.Dst == name || linkTouches(m.Link, name) {
			return nil
		}
	}

	c := sc.Clone()
	net := topology.NewNetwork(old.Name)
	newID := map[string]topology.SwitchID{}
	for _, sw := range old.Switches {
		if sw.ID == victim {
			continue
		}
		newID[sw.Name] = net.AddSwitch(sw.Name, sw.Site, sw.Lat, sw.Lon)
	}
	for _, l := range old.Links {
		if l.Twin != topology.None && l.Twin < l.ID {
			continue
		}
		if l.Src == victim || l.Dst == victim {
			continue
		}
		src, dst := newID[old.Switches[l.Src].Name], newID[old.Switches[l.Dst].Name]
		if l.Twin == topology.None {
			net.AddLink(src, dst, l.Capacity)
		} else {
			net.AddDuplex(src, dst, l.Capacity)
		}
	}
	c.Topo = net

	c.Demands = filterDemands(c.Demands, name)
	c.PrevDemands = filterDemands(c.PrevDemands, name)
	if len(c.Demands) == 0 {
		return nil
	}
	c.DownLinks = filterLinks(c.DownLinks, name)
	c.ExtraFaultLinks = filterLinks(c.ExtraFaultLinks, name)
	c.DownSwitches = filterStrings(c.DownSwitches, name)
	c.ExtraFaultSwitches = filterStrings(c.ExtraFaultSwitches, name)

	if len(c.Relabel) > 0 {
		// Drop the victim from the permutation: remove its old-ID entry
		// and renumber the remaining old IDs downward.
		var perm []int
		for _, oldID := range c.Relabel {
			if oldID == int(victim) {
				continue
			}
			if oldID > int(victim) {
				oldID--
			}
			perm = append(perm, oldID)
		}
		c.Relabel = perm
	}
	return c
}

// removeLink rebuilds the scenario without one physical link (canonical
// direction given). Returns nil when the mutation targets it.
func removeLink(sc *Scenario, victim topology.LinkID) *Scenario {
	old := sc.Topo
	fwd := linkNameOf(old, victim)
	rev := ""
	if tw := old.Links[victim].Twin; tw != topology.None {
		rev = linkNameOf(old, tw)
	}
	if m := sc.Mutation; m != nil && (m.Link == fwd || (rev != "" && m.Link == rev)) {
		return nil
	}

	c := sc.Clone()
	net := topology.NewNetwork(old.Name)
	for _, sw := range old.Switches {
		net.AddSwitch(sw.Name, sw.Site, sw.Lat, sw.Lon)
	}
	for _, l := range old.Links {
		if l.Twin != topology.None && l.Twin < l.ID {
			continue
		}
		if l.ID == victim {
			continue
		}
		if l.Twin == topology.None {
			net.AddLink(l.Src, l.Dst, l.Capacity)
		} else {
			net.AddDuplex(l.Src, l.Dst, l.Capacity)
		}
	}
	c.Topo = net
	c.DownLinks = removeStrings(c.DownLinks, fwd, rev)
	c.ExtraFaultLinks = removeStrings(c.ExtraFaultLinks, fwd, rev)
	return c
}

func linkNameOf(net *topology.Network, l topology.LinkID) string {
	lk := net.Links[l]
	return net.Switches[lk.Src].Name + ">" + net.Switches[lk.Dst].Name
}

// linkTouches reports whether the "src>dst" link name involves the switch.
func linkTouches(link, sw string) bool {
	if link == "" {
		return false
	}
	parts := strings.SplitN(link, ">", 2)
	return parts[0] == sw || (len(parts) == 2 && parts[1] == sw)
}

func filterDemands(entries []wire.DemandEntry, sw string) []wire.DemandEntry {
	var out []wire.DemandEntry
	for _, d := range entries {
		if d.Src == sw || d.Dst == sw {
			continue
		}
		out = append(out, d)
	}
	return out
}

func filterLinks(names []string, sw string) []string {
	var out []string
	for _, n := range names {
		if linkTouches(n, sw) {
			continue
		}
		out = append(out, n)
	}
	return out
}

func filterStrings(names []string, drop string) []string {
	var out []string
	for _, n := range names {
		if n == drop {
			continue
		}
		out = append(out, n)
	}
	return out
}

func removeStrings(names []string, drop ...string) []string {
	var out []string
	for _, n := range names {
		skip := false
		for _, d := range drop {
			if d != "" && n == d {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, n)
		}
	}
	return out
}
