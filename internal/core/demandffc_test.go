package core

import (
	"math/rand"
	"testing"

	"ffc/internal/demand"
	"ffc/internal/topology"
)

func TestDemandFFCRequiresMinMLU(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	_, _, err := s.Solve(Input{
		Demands: demand.Matrix{fx.f24: 5},
		Demand:  DemandUncertainty{Count: 1, Factor: 1.5},
	})
	if err == nil {
		t.Fatal("expected error: demand FFC without MinMLU")
	}
}

func TestDemandFFCSpreadsForHeadroom(t *testing.T) {
	fx := newFig25(t)
	// Offered 8 units s2→s4; if one flow may send 1.5×, the worst load is
	// 12 on a 10 link unless spread. With demand FFC the solver must keep
	// fault-MLU ≤ 1 by splitting across both tunnels.
	opts := Options{Objective: MinMLU}
	s := NewSolver(fx.net, fx.tun, opts)
	st, _, err := s.Solve(Input{
		Demands: demand.Matrix{fx.f24: 8, fx.f34: 8},
		Demand:  DemandUncertainty{Count: 1, Factor: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Robustness: no single 1.5× misprediction may overload any link.
	if v := VerifyDemandUncertainty(fx.net, fx.tun, st, 1, 1.5, nil); v != nil {
		t.Fatalf("demand FFC violated: %+v", v)
	}
}

func TestDemandFFCPlainMLUIsUnsafe(t *testing.T) {
	fx := newFig25(t)
	opts := Options{Objective: MinMLU}
	s := NewSolver(fx.net, fx.tun, opts)
	// Without demand FFC, MinMLU on a busy network concentrates each flow
	// enough that a 2× misprediction overloads something.
	st, _, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 10, fx.f34: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if v := VerifyDemandUncertainty(fx.net, fx.tun, st, 2, 2.0, nil); v == nil {
		t.Skip("plain MLU happened to be robust on this instance")
	}
	// With demand FFC at the same level the guarantee must hold relative
	// to the planned fault-case MLU (both flows doubling cannot fit in raw
	// capacity; the LP plans — and reports — the ceiling instead).
	robust, stats, err := s.Solve(Input{
		Demands: demand.Matrix{fx.f24: 10, fx.f34: 10},
		Demand:  DemandUncertainty{Count: 2, Factor: 2.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FaultMLU <= 1 {
		t.Fatalf("FaultMLU %v; doubling both flows must exceed capacity", stats.FaultMLU)
	}
	caps := map[topology.LinkID]float64{}
	for _, l := range fx.net.Links {
		caps[l.ID] = l.Capacity * (stats.FaultMLU + 1e-6)
	}
	if v := VerifyDemandUncertainty(fx.net, fx.tun, robust, 2, 2.0, caps); v != nil {
		t.Fatalf("demand FFC violated its planned ceiling: %+v", v)
	}
}

// TestDemandFFCPropertyRandom: the guarantee in MinMLU mode is relative to
// the planned fault-case MLU (Stats.FaultMLU): no combination of up to
// Count mispredicted flows may load any link beyond FaultMLU × capacity.
func TestDemandFFCPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 10; trial++ {
		net, tun, flows := randomNetwork(rng, 6, 4)
		if len(flows) == 0 {
			continue
		}
		demands := demand.Matrix{}
		for _, f := range flows {
			demands[f] = 0.5 + rng.Float64()*3
		}
		count := 1 + rng.Intn(2)
		factor := 1.2 + rng.Float64()
		s := NewSolver(net, tun, Options{Objective: MinMLU, Encoding: Encoding(rng.Intn(2))})
		st, stats, err := s.Solve(Input{Demands: demands, Demand: DemandUncertainty{Count: count, Factor: factor}})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if stats.FaultMLU <= 0 {
			t.Fatalf("trial %d: FaultMLU not reported", trial)
		}
		caps := map[topology.LinkID]float64{}
		for _, l := range net.Links {
			caps[l.ID] = l.Capacity * (stats.FaultMLU + 1e-6)
		}
		if v := VerifyDemandUncertainty(net, tun, st, count, factor, caps); v != nil {
			t.Fatalf("trial %d (count=%d factor=%.2f, fault MLU %.3f): %+v",
				trial, count, factor, stats.FaultMLU, v)
		}
	}
}
