// Package sim is the data-driven evaluation harness of §8: it replays a
// demand series over a network, computes TE (with or without FFC) every
// interval, injects data- and control-plane faults from the paper's failure
// models, and accounts throughput and data loss exactly as the paper does —
// blackhole loss between a failure and ingress rescaling, and congestion
// loss integrated over the time and degree by which links are
// oversubscribed, with strict-priority dropping across traffic classes.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/faults"
	"ffc/internal/metrics"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// Scenario fixes the network, demand series, and fault environment shared
// by the runs being compared (FFC vs non-FFC use identical scenarios and
// seeds, so they see identical faults).
type Scenario struct {
	Net      *topology.Network
	Tun      *tunnel.Set
	Series   demand.Series
	Interval time.Duration
	Failures faults.FailureModel
	Switches faults.SwitchModel
	Seed     int64
	// Parallelism bounds the worker count for the scenario's
	// embarrassingly-parallel work: independent TE intervals in the
	// oversubscription replays and independent runs in RunMany. ≤ 0 means
	// all cores (runtime.GOMAXPROCS(0)); 1 forces the serial path. Every
	// interval draws from its own faults.DeriveSeed-derived RNG, so
	// results are bit-identical at any setting.
	Parallelism int
	// Ctx, when non-nil, cancels the run: the interval loop stops at the
	// next interval boundary, and the in-flight solve is cancelled through
	// the budget path (within one simplex iteration batch). A cancelled run
	// returns its partial Result with Interrupted set rather than an error,
	// so long CLI runs can emit what they measured on SIGINT/SIGTERM.
	Ctx context.Context
}

// PriorityConfig enables multi-priority simulation (§8.4).
type PriorityConfig struct {
	// Splits partitions each flow's demand across classes.
	Splits map[tunnel.Flow]demand.Split
	// Prot is the per-class protection level, indexed by demand.Priority.
	Prot [demand.NumPriorities]core.Protection
}

// RunConfig selects the TE approach under test.
type RunConfig struct {
	// Prot is the single-priority protection level; core.None disables FFC
	// (the baseline).
	Prot core.Protection
	// Multi switches to the multi-priority cascade; Prot is then ignored.
	Multi *PriorityConfig
	// SolverOpts tunes the FFC solver (encoding, §6 optimizations, ...).
	SolverOpts core.Options
	// DetectDelay is failure detection + ingress notification before
	// rescaling (the paper's testbed: ≈50 ms).
	DetectDelay time.Duration
	// ControlDetect is how long the controller takes to notice a failed
	// switch update and begin repair.
	ControlDetect time.Duration
	// NoCarryover disables adding unserved demand to the next interval
	// (micro-benchmarks use this).
	NoCarryover bool
	// WarmStart reuses each class's LP model and simplex basis across
	// intervals (core.Session): consecutive intervals differ only in
	// demands, capacities, and previous rates, so the solver rebinds
	// bounds/RHS and re-solves from the old basis instead of starting cold.
	// Results can differ from cold solves only by the simplex's choice among
	// alternate optima; the infeasible-interval fallback always solves cold.
	WarmStart bool
	// DetectDelaySet / ControlDetectSet mark an explicit zero in the
	// corresponding field as intentional (instantaneous detection) instead
	// of "unset, use the default" — the same sentinel-free pattern as
	// experiments.EnvConfig.SeedSet.
	DetectDelaySet   bool
	ControlDetectSet bool
	// SolverDeadline bounds each TE computation's wall clock; a solve that
	// misses it degrades the interval to the last installed allocation
	// (core.Degrade) instead of stalling the control loop. 0 = unlimited.
	SolverDeadline time.Duration
	// SolverFaults injects controller failures (timeout / crash / stale
	// result) per interval to measure availability under controller
	// trouble; the zero value injects nothing and consumes no randomness.
	SolverFaults faults.SolverFaultModel
	// OnPlan, when non-nil, observes every installed per-class state right
	// after its interval completes — the offline twin of the controller's
	// install hook, used to trace runs for independent certification
	// (cmd/ffcsim -trace → cmd/ffccheck). The record's fields are shared
	// with the simulator; the callback must not mutate them.
	OnPlan func(PlanRecord)
}

// PlanRecord is one per-class installed state handed to RunConfig.OnPlan.
type PlanRecord struct {
	// Interval is the 0-based interval index.
	Interval int
	// Class is the priority class (0 in single-priority runs).
	Class demand.Priority
	// Prot is the protection the state actually achieved: the class's
	// configured level, or core.None after the unprotected infeasibility
	// retry or a degraded fallback.
	Prot core.Protection
	// Degraded is the class's degradation reason ("" when its solve
	// landed).
	Degraded string
	// Demands is what the class asked for this interval (incl. backlog).
	Demands demand.Matrix
	// Prev and State are the previously and newly installed states.
	Prev, State *core.State
	// DownLinks / DownSwitches were known failed when the state was
	// computed.
	DownLinks    map[topology.LinkID]bool
	DownSwitches map[topology.SwitchID]bool
}

func (c *RunConfig) fill() {
	if c.DetectDelay == 0 && !c.DetectDelaySet {
		c.DetectDelay = 50 * time.Millisecond
	}
	if c.ControlDetect == 0 && !c.ControlDetectSet {
		c.ControlDetect = time.Second
	}
}

// PriorityResult aggregates per-class accounting.
type PriorityResult struct {
	DemandBytes     float64
	GrantedBytes    float64
	LossBytes       float64
	BlackholeBytes  float64
	CongestionBytes float64
}

// DeliveredBytes is granted minus lost.
func (p PriorityResult) DeliveredBytes() float64 { return p.GrantedBytes - p.LossBytes }

// IntervalRecord is one TE interval's outcome in the run timeline.
type IntervalRecord struct {
	// Demand and Granted are rates (units), summed over classes.
	Demand, Granted float64
	// Lost is the interval's lost bytes (unit·s).
	Lost float64
	// LinkFaults and SwitchFaults strike during the interval;
	// StaleSwitches failed this interval's configuration push.
	LinkFaults, SwitchFaults, StaleSwitches int
	// MaxOversub is the interval's worst link oversubscription ratio.
	MaxOversub float64
	// Degraded is empty when the interval's TE solves all landed; otherwise
	// the reason the interval fell back to the last-good allocation
	// ("timeout", "crash", "stale", "deadline", "infeasible",
	// "solver-error").
	Degraded string
}

// Result is one run's aggregate outcome. "Bytes" are rate-units × seconds.
type Result struct {
	Intervals  int
	Total      PriorityResult
	ByPriority [demand.NumPriorities]PriorityResult
	// Timeline records one entry per interval, in order.
	Timeline []IntervalRecord
	// MaxOversub collects each interval's worst link oversubscription
	// ratio ((load−cap)/cap, 0 when none).
	MaxOversub metrics.Dist
	// SolveTime collects per-interval TE computation times.
	SolveTime metrics.Dist
	// Reactions counts controller interventions.
	Reactions int
	// InfeasibleIntervals counts intervals where the FFC LP had no
	// feasible solution and the run fell back to the unprotected TE.
	InfeasibleIntervals int
	// DegradedIntervals counts intervals that served the last-good
	// allocation because a solve missed its deadline, crashed, or arrived
	// stale (see IntervalRecord.Degraded for per-interval reasons).
	DegradedIntervals int
	// DegradedOversub collects MaxOversub over degraded intervals only —
	// the availability cost of controller failures.
	DegradedOversub metrics.Dist
	// Interrupted marks a run cancelled via Scenario.Ctx: the aggregates
	// cover only the intervals that completed.
	Interrupted bool
}

// ThroughputRatioVs returns this run's delivered bytes over the baseline's
// (the paper's throughput ratio).
func (r *Result) ThroughputRatioVs(base *Result) float64 {
	return metrics.SafeRatio(r.Total.DeliveredBytes(), base.Total.DeliveredBytes(), 1)
}

// LossRatioVs returns this run's lost bytes over the baseline's (the
// paper's data loss ratio).
func (r *Result) LossRatioVs(base *Result) float64 {
	return metrics.SafeRatio(r.Total.LossBytes, base.Total.LossBytes, 0)
}

// activeFault is a data-plane fault in progress.
type activeFault struct {
	faults.Fault
	// remaining intervals (including the current one).
	remaining int
	// struck is true once its onset interval has passed (it is visible at
	// interval start thereafter).
	struck bool
}

// Run executes the scenario under cfg.
func Run(sc Scenario, cfg RunConfig) (*Result, error) {
	cfg.fill()
	if sc.Interval == 0 {
		sc.Interval = 5 * time.Minute
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	res := &Result{}

	solver := core.NewSolver(sc.Net, sc.Tun, cfg.SolverOpts)

	// Per-priority previous states (single-priority runs use index 0).
	classes := classesOf(cfg)
	// One solve session per class when warm-starting: the interval loop is
	// serial, so each class's basis and model carry over interval to interval.
	var sessions []*core.Session
	if cfg.WarmStart {
		sessions = make([]*core.Session, len(classes))
		for i := range sessions {
			sessions[i] = solver.NewSession()
		}
	}
	prev := make([]*core.State, len(classes))
	for i := range prev {
		prev[i] = core.NewState()
	}
	backlog := make([]demand.Matrix, len(classes))
	for i := range backlog {
		backlog[i] = demand.Matrix{}
	}

	var active []activeFault
	for t, m := range sc.Series {
		if sc.Ctx != nil && sc.Ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		res.Intervals++
		iv := intervalState{
			sc: &sc, cfg: &cfg, rng: rng, solver: solver,
			res: res, classes: classes, sessions: sessions,
		}
		// Elements already down at interval start.
		iv.downLinks, iv.downSwitches = map[topology.LinkID]bool{}, map[topology.SwitchID]bool{}
		for _, af := range active {
			if af.struck && af.remaining > 0 {
				markFault(sc.Net, af.Fault, iv.downLinks, iv.downSwitches)
			}
		}

		// Controller fault for this interval, if injected (one decision per
		// interval: a dead controller affects every class's solve).
		if k, ok := cfg.SolverFaults.Sample(t, rng); ok {
			iv.solverFault = &k
		}

		// Per-class demand for this interval (plus backlog).
		var splits map[tunnel.Flow]demand.Split
		if cfg.Multi != nil {
			splits = cfg.Multi.Splits
		}
		iv.demands = classDemands(m, classes, splits, backlog)

		// Compute TE per class (priority cascade shares residual capacity).
		if err := iv.solveTE(prev); err != nil {
			return nil, fmt.Errorf("sim: interval %d: %w", t, err)
		}

		// Control-plane outcomes for this interval's update.
		iv.sampleControlFaults()

		// New data-plane faults striking during this interval.
		newFaults := sc.Failures.SampleInterval(sc.Net, rng)
		var striking []activeFault
		for _, f := range newFaults {
			if faultAlreadyDown(sc.Net, f, iv.downLinks, iv.downSwitches) {
				continue
			}
			striking = append(striking, activeFault{Fault: f, remaining: f.DownFor})
		}
		iv.striking = striking

		// Integrate losses over the interval.
		lostBefore := res.Total.LossBytes
		worstOver := iv.integrate()
		rec := IntervalRecord{
			Lost:          res.Total.LossBytes - lostBefore,
			StaleSwitches: len(iv.staleUntil),
			MaxOversub:    worstOver,
			Degraded:      iv.degraded,
		}
		if iv.degraded != "" {
			res.DegradedIntervals++
			res.DegradedOversub.Add(worstOver)
		}
		for _, af := range striking {
			if af.Kind == faults.LinkFailure {
				rec.LinkFaults++
			} else {
				rec.SwitchFaults++
			}
		}

		// Bookkeeping: backlog, previous states, fault aging.
		for ci := range classes {
			granted := iv.states[ci].TotalRate()
			dem := iv.demands[ci].Total()
			res.ByPriority[classes[ci]].DemandBytes += dem * sc.Interval.Seconds()
			res.ByPriority[classes[ci]].GrantedBytes += granted * sc.Interval.Seconds()
			res.Total.DemandBytes += dem * sc.Interval.Seconds()
			res.Total.GrantedBytes += granted * sc.Interval.Seconds()
			if !cfg.NoCarryover {
				backlog[ci] = nextBacklog(iv.demands[ci], iv.states[ci])
			}
			if cfg.OnPlan != nil {
				cfg.OnPlan(PlanRecord{
					Interval:     t,
					Class:        classes[ci],
					Prot:         iv.classProt[ci],
					Degraded:     iv.classDegraded[ci],
					Demands:      iv.demands[ci],
					Prev:         prev[ci],
					State:        iv.states[ci],
					DownLinks:    iv.downLinks,
					DownSwitches: iv.downSwitches,
				})
			}
			prev[ci] = iv.states[ci]
			rec.Demand += dem
			rec.Granted += granted
		}
		res.Timeline = append(res.Timeline, rec)

		var stillActive []activeFault
		for _, af := range active {
			if af.struck {
				af.remaining--
			}
			if af.remaining > 0 {
				stillActive = append(stillActive, af)
			}
		}
		for _, af := range striking {
			af.struck = true
			af.remaining-- // the onset interval counts toward DownFor
			if af.remaining > 0 {
				stillActive = append(stillActive, af)
			}
		}
		active = stillActive
	}
	return res, nil
}

// classesOf returns the priority classes simulated, highest first (the
// cascade order); single-priority runs use a single Low-class slot.
func classesOf(cfg RunConfig) []demand.Priority {
	if cfg.Multi == nil {
		return []demand.Priority{demand.Low}
	}
	return []demand.Priority{demand.High, demand.Med, demand.Low}
}

// classDemands splits the interval matrix per class and adds backlog.
func classDemands(m demand.Matrix, classes []demand.Priority, splits map[tunnel.Flow]demand.Split, backlog []demand.Matrix) []demand.Matrix {
	out := make([]demand.Matrix, len(classes))
	if len(classes) == 1 {
		out[0] = m.Clone()
	} else {
		// classes are [High Med Low]; ByPriority indexes by Priority.
		parts := demand.ByPriority(m, splits)
		for i, p := range classes {
			out[i] = parts[p].Clone()
		}
	}
	for i := range out {
		for f, b := range backlog[i] {
			// Cap carried-over demand to keep overloaded runs bounded.
			if b > 4*out[i][f] && out[i][f] > 0 {
				b = 4 * out[i][f]
			}
			out[i][f] += b
		}
	}
	return out
}

// nextBacklog computes unserved demand carried to the next interval.
func nextBacklog(dem demand.Matrix, st *core.State) demand.Matrix {
	out := demand.Matrix{}
	for f, d := range dem {
		if rest := d - st.Rate[f]; rest > 1e-9 {
			out[f] = rest
		}
	}
	return out
}

func markFault(net *topology.Network, f faults.Fault, dl map[topology.LinkID]bool, ds map[topology.SwitchID]bool) {
	switch f.Kind {
	case faults.LinkFailure:
		dl[f.Link] = true
		if tw := net.Links[f.Link].Twin; tw != topology.None {
			dl[tw] = true
		}
	case faults.SwitchFailure:
		ds[f.Switch] = true
	}
}

func faultAlreadyDown(net *topology.Network, f faults.Fault, dl map[topology.LinkID]bool, ds map[topology.SwitchID]bool) bool {
	switch f.Kind {
	case faults.LinkFailure:
		return dl[f.Link]
	case faults.SwitchFailure:
		return ds[f.Switch]
	}
	return false
}
