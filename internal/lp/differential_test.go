package lp

import (
	"math"
	"math/rand"
	"testing"
)

// Randomized differential harness: small random LPs (mixed bounds, fixed
// variables, duplicate/degenerate rows) solved by the simplex are checked
// against brute-force vertex enumeration, and warm-started re-solves after
// random RHS/bound/objective perturbations are checked against a cold solve
// of the same perturbed model (and against the enumerator again). Seeds are
// fixed; the generator covers both basis representations via forceRep.

// randomRefProblem draws a small LP with all-finite bounds (required by the
// enumerator). Roughly 1 in 6 columns is fixed (lo == hi) to exercise
// presolve folding, and 1 in 4 extra rows duplicates an earlier row's
// coefficients to create degenerate vertices.
func randomRefProblem(rng *rand.Rand) *refProblem {
	n := 2 + rng.Intn(3)
	nRows := 1 + rng.Intn(4)
	p := &refProblem{
		n:        n,
		maximize: rng.Intn(2) == 0,
		obj:      make([]float64, n),
		lo:       make([]float64, n),
		hi:       make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.obj[j] = float64(rng.Intn(9) - 4)
		p.lo[j] = float64(rng.Intn(4) - 3)
		if rng.Intn(6) == 0 {
			p.hi[j] = p.lo[j] // fixed variable
		} else {
			p.hi[j] = p.lo[j] + float64(rng.Intn(5))
		}
	}
	for i := 0; i < nRows; i++ {
		var row []float64
		if i > 0 && rng.Intn(4) == 0 {
			row = append([]float64(nil), p.rows[rng.Intn(i)]...)
		} else {
			row = make([]float64, n)
			nz := 0
			for j := 0; j < n; j++ {
				row[j] = float64(rng.Intn(5) - 2)
				if row[j] != 0 {
					nz++
				}
			}
			if nz == 0 {
				row[rng.Intn(n)] = 1
			}
		}
		p.rows = append(p.rows, row)
		p.sense = append(p.sense, Sense(rng.Intn(3)))
		p.rhs = append(p.rhs, float64(rng.Intn(11)-3))
	}
	return p
}

// perturb mutates the problem in place the way the TE interval loop mutates
// its model: RHS drift, bound drift (fixedness preserved so the presolve
// pattern stays reusable roughly half the time), objective drift.
func perturb(p *refProblem, rng *rand.Rand) {
	for i := range p.rhs {
		if rng.Intn(2) == 0 {
			p.rhs[i] += float64(rng.Intn(5)-2) / 2
		}
	}
	for j := 0; j < p.n; j++ {
		switch rng.Intn(4) {
		case 0: // shift both bounds
			d := float64(rng.Intn(3)-1) / 2
			p.lo[j] += d
			p.hi[j] += d
		case 1: // widen
			p.hi[j] += float64(rng.Intn(3)) / 2
		}
		if rng.Intn(3) == 0 {
			p.obj[j] = float64(rng.Intn(9) - 4)
		}
	}
}

// applyMutations pushes p's current data into a model previously built by
// p.toModel, using only the incremental mutators.
func applyMutations(m *Model, vars []Var, p *refProblem) {
	for i := range p.rhs {
		m.SetRHS(i, p.rhs[i])
	}
	for j, v := range vars {
		m.SetBounds(v, p.lo[j], p.hi[j])
		c := p.obj[j]
		if !p.maximize {
			// toModel sets coefficients via Minimize; SetObjCoef stores the
			// user-direction coefficient, which is the same either way.
			_ = c
		}
		m.SetObjCoef(v, p.obj[j])
	}
}

func checkAgainstRef(t *testing.T, tag string, p *refProblem, sol *Solution, err error) {
	t.Helper()
	refObj, _, refOK := refSolve(p)
	if !refOK {
		if err == nil || sol.Status != Infeasible {
			t.Fatalf("%s: reference says infeasible, simplex says %v (obj %g)", tag, sol.Status, sol.Objective)
		}
		return
	}
	if err != nil {
		t.Fatalf("%s: reference optimum %g but simplex failed: %v", tag, refObj, err)
	}
	tol := 1e-7 * (1 + math.Abs(refObj))
	if math.Abs(sol.Objective-refObj) > tol {
		t.Fatalf("%s: objective %g, reference %g (diff %g)", tag, sol.Objective, refObj, sol.Objective-refObj)
	}
	// The returned point must itself be feasible.
	x := make([]float64, p.n)
	copy(x, sol.X)
	if !refFeasible(p, x) {
		t.Fatalf("%s: simplex point %v infeasible", tag, x)
	}
}

func TestRandomDifferentialLPs(t *testing.T) {
	const cases = 500
	rng := rand.New(rand.NewSource(20140817))
	for c := 0; c < cases; c++ {
		p := randomRefProblem(rng)
		m, vars := p.toModel()
		if c%3 == 0 {
			m.forceRep = 2 // cover the product-form inverse path too
		}
		sol, err := m.Solve()
		checkAgainstRef(t, "cold", p, sol, err)
		if err != nil {
			continue // infeasible problems have no basis to warm-start from
		}

		// Re-solving the identical model from its own basis must terminate
		// immediately: the old basis is feasible and dual-feasible.
		again, err := m.SolveFrom(sol.Warm())
		if err != nil {
			t.Fatalf("case %d: identical warm re-solve failed: %v", c, err)
		}
		if !again.Stats.Warm && len(m.rows) > 0 && len(p.rows) > 0 {
			// A fully presolved-away model has no simplex state to warm.
			if len(p.rows) > again.Stats.PresolveRows {
				t.Fatalf("case %d: warm basis not seated on identical re-solve", c)
			}
		}
		if again.Iters > 0 {
			t.Fatalf("case %d: identical warm re-solve took %d iterations", c, again.Iters)
		}
		if math.Abs(again.Objective-sol.Objective) > 1e-7*(1+math.Abs(sol.Objective)) {
			t.Fatalf("case %d: identical warm re-solve objective %g != %g", c, again.Objective, sol.Objective)
		}

		// Perturb RHS/bounds/objective, mutate the model in place, and
		// check the warm re-solve against both a cold solve of a freshly
		// built model and the enumerator.
		perturb(p, rng)
		applyMutations(m, vars, p)
		warmSol, warmErr := m.SolveFrom(sol.Warm())
		checkAgainstRef(t, "warm-perturbed", p, warmSol, warmErr)

		coldM, _ := p.toModel()
		coldSol, coldErr := coldM.Solve()
		if (warmErr == nil) != (coldErr == nil) {
			t.Fatalf("case %d: warm status %v vs cold status %v", c, warmSol.Status, coldSol.Status)
		}
		if warmErr == nil {
			if math.Abs(warmSol.Objective-coldSol.Objective) > 1e-7*(1+math.Abs(coldSol.Objective)) {
				t.Fatalf("case %d: warm objective %g != cold %g", c, warmSol.Objective, coldSol.Objective)
			}
		}
	}
}

// TestWarmAcrossStructureChange documents the safety contract: a handle from
// a model with a different shape is ignored, not misapplied.
func TestWarmAcrossStructureChange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomRefProblem(rng)
	m, _ := p.toModel()
	sol, err := m.Solve()
	for err != nil || sol.Warm() == nil { // roll until feasible with a basis
		p = randomRefProblem(rng)
		m, _ = p.toModel()
		sol, err = m.Solve()
	}
	// New variable changes the structure: the old handle must be rejected.
	v := m.NewVar("extra", 0, 1)
	e := NewExpr().Add(1, v)
	m.AddLE(e, 1)
	sol2, err := m.SolveFrom(sol.Warm())
	if err != nil {
		t.Fatalf("re-solve failed: %v", err)
	}
	if sol2.Stats.Warm {
		t.Fatal("stale handle was seated across a structure change")
	}
	if !sol2.Stats.WarmFellBack {
		t.Fatal("stale handle fallback not reported")
	}
}
