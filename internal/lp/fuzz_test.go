package lp

import "testing"

// decodeRefProblem derives a small all-finite-bounds LP from fuzz bytes:
// up to 4 variables and 4 rows with half-integer data (exactly
// representable, so the enumeration oracle's tolerances are meaningful).
// Exhausted input reads as zero, so every byte string decodes.
func decodeRefProblem(data []byte) *refProblem {
	i := 0
	next := func() int {
		if i >= len(data) {
			return 0
		}
		b := int(data[i])
		i++
		return b
	}
	n := 1 + next()%4
	nRows := next() % 5
	p := &refProblem{
		n:        n,
		maximize: next()%2 == 0,
		obj:      make([]float64, n),
		lo:       make([]float64, n),
		hi:       make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.obj[j] = float64(next()%9 - 4)
		p.lo[j] = float64(next()%7-3) / 2
		p.hi[j] = p.lo[j] + float64(next()%6)/2 // hi == lo fixes the column
	}
	for r := 0; r < nRows; r++ {
		row := make([]float64, n)
		nz := 0
		for j := range row {
			row[j] = float64(next()%7 - 3)
			if row[j] != 0 {
				nz++
			}
		}
		if nz == 0 {
			row[0] = 1
		}
		p.rows = append(p.rows, row)
		p.sense = append(p.sense, Sense(next()%3))
		p.rhs = append(p.rhs, float64(next()%21-10)/2)
	}
	return p
}

// FuzzSolveSmallLP fuzzes the simplex against the brute-force vertex
// enumerator: on every decoded problem the two must agree on feasibility,
// on the optimal objective, and the simplex's point must satisfy every
// constraint (checkAgainstRef, the same oracle the seeded differential
// suite uses).
func FuzzSolveSmallLP(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 0, 3, 1, 4, 2, 2, 3, 1, 1, 2, 5})
	f.Add([]byte{3, 4, 1, 0, 2, 2, 4, 1, 3, 6, 0, 5, 1, 2, 3, 0, 4, 2, 1, 6, 3, 0, 2, 18})
	f.Add([]byte{1, 2, 0, 8, 0, 0, 6, 2, 0, 6, 1, 20}) // equality rows vs a fixed column
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeRefProblem(data)
		m, _ := p.toModel()
		sol, err := m.Solve()
		checkAgainstRef(t, "fuzz", p, sol, err)
	})
}
