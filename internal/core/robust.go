package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"ffc/internal/obs"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// Budget bounds one TE computation. The zero value imposes nothing (the
// solver's Options.SolveBudget default, if any, still applies). The budget
// covers the whole computation — formulation and simplex — measured from
// the moment Solve is called.
type Budget struct {
	// Deadline is the wall-clock budget relative to the start of the
	// computation. Negative means already expired (fault injection uses
	// this to force a deterministic budget hit before the first pivot);
	// zero falls back to Options.SolveBudget.
	Deadline time.Duration
	// MaxIters bounds total simplex iterations; exceeding it is a budget
	// hit, not an lp.IterLimit. Zero means no bound.
	MaxIters int
	// Ctx cancels the computation between simplex iteration batches; nil
	// means no cancellation.
	Ctx context.Context
	// Hook is forwarded to lp.SolveOpts.Hook (observation and fault
	// injection); a panic inside it is recovered into a solver-error
	// outcome instead of killing the process.
	Hook func(iters int)
}

// warmBudgetDiv tightens the default budget for warm-started Session
// re-solves: they typically finish in a few simplex iterations, so giving
// them the full cold-solve budget would let a pathological re-solve eat an
// entire control interval. An explicit Input.Budget.Deadline overrides.
const warmBudgetDiv = 4

// Outcome classifies one TE computation for control-loop decisions: only
// OutcomeOptimal yields a plan safe to install as-is; the other outcomes
// tell the caller which fallback applies (retry unprotected, reuse the
// last-good plan via Degrade, ...).
type Outcome int8

const (
	// OutcomeOptimal: the solve completed with an optimal plan.
	OutcomeOptimal Outcome = iota
	// OutcomeBudgetHit: the budget (deadline, iterations, cancellation)
	// expired first. A best-so-far State may still have been returned.
	OutcomeBudgetHit
	// OutcomeInfeasible: no allocation satisfies the constraints at this
	// protection level.
	OutcomeInfeasible
	// OutcomeSolverError: invalid input or an internal solver failure
	// (including recovered panics).
	OutcomeSolverError
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOptimal:
		return "optimal"
	case OutcomeBudgetHit:
		return "budget-hit"
	case OutcomeInfeasible:
		return "infeasible"
	case OutcomeSolverError:
		return "solver-error"
	}
	return "unknown"
}

// ErrBadInput is wrapped by Solve errors caused by invalid Input values
// (NaN/negative demands, caps, floors, or protection levels). Catching bad
// numbers here keeps lp's bound panics as pure internal-invariant checks.
var ErrBadInput = errors.New("core: invalid input")

// validate rejects inputs that would otherwise surface as lp bound panics
// or silently nonsensical plans deep inside the formulation.
func (in *Input) validate() error {
	if in.Prot.Kc < 0 || in.Prot.Ke < 0 || in.Prot.Kv < 0 {
		return fmt.Errorf("%w: negative protection level %v", ErrBadInput, in.Prot)
	}
	check := func(what string, f tunnel.Flow, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: %s for flow %d->%d is %g", ErrBadInput, what, f.Src, f.Dst, v)
		}
		return nil
	}
	for f, d := range in.Demands {
		if err := check("demand", f, d); err != nil {
			return err
		}
	}
	for f, v := range in.RateCaps {
		if err := check("rate cap", f, v); err != nil {
			return err
		}
	}
	for f, v := range in.FixedRates {
		if err := check("fixed rate", f, v); err != nil {
			return err
		}
	}
	for f, v := range in.RateFloors {
		if err := check("rate floor", f, v); err != nil {
			return err
		}
	}
	for l, c := range in.Capacity {
		if math.IsNaN(c) || c < 0 {
			return fmt.Errorf("%w: capacity override for link %d is %g", ErrBadInput, l, c)
		}
	}
	return nil
}

var (
	obsDegradedIntervals = obs.NewCounter("core.degraded_intervals")
	obsSolveVsDeadline   = obs.NewHistogram("core.solve_vs_deadline_pct")
)

// NoteDegradedInterval records one control interval that fell back to a
// degraded (last-good) configuration; the sim's control loop calls it once
// per such interval.
func NoteDegradedInterval() { obsDegradedIntervals.Inc() }

// Degrade derives the operating configuration for a control interval whose
// TE computation missed its window (budget hit, solver crash, stale
// result): keep the last successfully installed state, drop allocation
// from tunnels that have failed since it was computed, and cap each flow's
// rate to its surviving allocation — the FFC headroom rule applied at the
// controller instead of the ingress.
//
// Soundness: ingress rescaling sends rate·alloc[t]/Σalive alloc on each
// surviving tunnel, so capping rate to Σalive alloc makes every tunnel's
// load ≤ alloc[t] ≤ the link reservations of the installed plan — the
// degraded interval is congestion-free for all faults known at degrade
// time, and retains the plan's FFC guarantee against further faults up to
// its protection level (lowering rates only relaxes Eqn 15).
func Degrade(net *topology.Network, set *tunnel.Set, last *State, downLinks map[topology.LinkID]bool, downSwitches map[topology.SwitchID]bool) *State {
	st := NewState()
	for f, alloc := range last.Alloc {
		na := make([]float64, len(alloc))
		var aliveSum float64
		for _, t := range set.Tunnels(f) {
			if t.Index >= len(alloc) {
				continue
			}
			if !t.Alive(net, downLinks, downSwitches) {
				continue
			}
			na[t.Index] = alloc[t.Index]
			aliveSum += alloc[t.Index]
		}
		st.Alloc[f] = na
		r := last.Rate[f]
		if r > aliveSum {
			r = aliveSum
		}
		st.Rate[f] = r
	}
	return st
}
