package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualsSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0.
	// Optimum (4, 0), obj 12. Duals: row1 = 3 (binding), row2 = 0 (slack).
	m := NewModel()
	x := m.NewVar("x", 0, Inf)
	y := m.NewVar("y", 0, Inf)
	r1 := m.AddLE(NewExpr().Add(1, x).Add(1, y), 4)
	r2 := m.AddLE(NewExpr().Add(1, x).Add(3, y), 6)
	m.Maximize(NewExpr().Add(3, x).Add(2, y))
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 12, 1e-6) {
		t.Fatalf("objective %v", sol.Objective)
	}
	if !almost(sol.Duals[r1], 3, 1e-6) {
		t.Fatalf("dual r1 = %v, want 3", sol.Duals[r1])
	}
	if !almost(sol.Duals[r2], 0, 1e-6) {
		t.Fatalf("dual r2 = %v, want 0", sol.Duals[r2])
	}
}

func TestDualsBothBinding(t *testing.T) {
	// max x + y s.t. 2x + y ≤ 10, x + 2y ≤ 10 → (10/3, 10/3), duals 1/3 each.
	m := NewModel()
	x := m.NewVar("x", 0, Inf)
	y := m.NewVar("y", 0, Inf)
	r1 := m.AddLE(NewExpr().Add(2, x).Add(1, y), 10)
	r2 := m.AddLE(NewExpr().Add(1, x).Add(2, y), 10)
	m.Maximize(NewExpr().Add(1, x).Add(1, y))
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Duals[r1], 1.0/3, 1e-6) || !almost(sol.Duals[r2], 1.0/3, 1e-6) {
		t.Fatalf("duals %v %v, want 1/3 each", sol.Duals[r1], sol.Duals[r2])
	}
}

func TestDualsGERowSign(t *testing.T) {
	// min 2x s.t. x ≥ 3 (row). Dual of the GE row in a minimization:
	// dObj*/dRHS = +2 (raising the floor raises the minimum cost).
	m := NewModel()
	x := m.NewVar("x", 0, Inf)
	r := m.AddGE(NewExpr().Add(1, x), 3)
	m.Minimize(NewExpr().Add(2, x))
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Duals[r], 2, 1e-6) {
		t.Fatalf("dual = %v, want 2", sol.Duals[r])
	}
}

// TestDualsPerturbationProperty: duals predict the objective change for a
// small RHS perturbation of a binding constraint.
func TestDualsPerturbationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n, k := 4, 4
		build := func(bump int, eps float64) (*Model, []int) {
			m := NewModel()
			vars := make([]Var, n)
			r2 := rand.New(rand.NewSource(int64(trial))) // same structure per trial
			for j := range vars {
				vars[j] = m.NewVar("v", 0, 2+r2.Float64()*4)
			}
			rows := make([]int, k)
			for i := 0; i < k; i++ {
				e := NewExpr()
				for j := range vars {
					e.Add(0.2+r2.Float64(), vars[j])
				}
				rhs := 1 + r2.Float64()*6
				if i == bump {
					rhs += eps
				}
				rows[i] = m.AddLE(e, rhs)
			}
			obj := NewExpr()
			for j := range vars {
				obj.Add(0.5+r2.Float64(), vars[j])
			}
			m.Maximize(obj)
			return m, rows
		}
		bump := rng.Intn(k)
		m0, rows := build(-1, 0)
		sol0, err := m0.Solve()
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1e-4
		m1, _ := build(bump, eps)
		sol1, err := m1.Solve()
		if err != nil {
			t.Fatal(err)
		}
		predicted := sol0.Objective + eps*sol0.Duals[rows[bump]]
		if math.Abs(sol1.Objective-predicted) > 1e-6 {
			t.Fatalf("trial %d: perturbed obj %v, predicted %v (dual %v)",
				trial, sol1.Objective, predicted, sol0.Duals[rows[bump]])
		}
	}
}
