package sortnet

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ffc/internal/lp"
)

// fixedExprs creates one LP variable per value, fixed by bounds, and
// returns expressions referencing them.
func fixedExprs(m *lp.Model, values []float64) []*lp.Expr {
	es := make([]*lp.Expr, len(values))
	for i, v := range values {
		x := m.NewVar("in", v, v)
		es[i] = lp.NewExpr().Add(1, x)
	}
	return es
}

func topMSum(values []float64, M int) float64 {
	s := append([]float64(nil), values...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	var sum float64
	for i := 0; i < M && i < len(s); i++ {
		sum += s[i]
	}
	return sum
}

func bottomMSum(values []float64, M int) float64 {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	var sum float64
	for i := 0; i < M && i < len(s); i++ {
		sum += s[i]
	}
	return sum
}

// TestLargestSumExactOnConstants: minimizing the encoded Sum over fixed
// inputs must recover exactly the true top-M sum (the encoding is tight).
func TestLargestSumExactOnConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		M := 1 + rng.Intn(n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(rng.Float64()*100) / 10
		}
		m := lp.NewModel()
		res := LargestSum(m, fixedExprs(m, vals), M, "top")
		m.Minimize(res.Sum)
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := topMSum(vals, M)
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: min Σtop%d = %v, want %v (vals %v)", trial, M, sol.Objective, want, vals)
		}
	}
}

func TestSmallestSumExactOnConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		M := 1 + rng.Intn(n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(rng.Float64()*100) / 10
		}
		m := lp.NewModel()
		res := SmallestSum(m, fixedExprs(m, vals), M, "bot")
		m.Maximize(res.Sum)
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bottomMSum(vals, M)
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: max Σbottom%d = %v, want %v (vals %v)", trial, M, sol.Objective, want, vals)
		}
	}
}

// TestLargestSumSoundness: the constraint Sum ≤ B must be feasible exactly
// when B ≥ true top-M sum.
func TestLargestSumSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		M := 1 + rng.Intn(n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(50))
		}
		want := topMSum(vals, M)

		build := func(bound float64) (*lp.Solution, error) {
			m := lp.NewModel()
			res := LargestSum(m, fixedExprs(m, vals), M, "top")
			m.AddLE(res.Sum, bound)
			m.Maximize(lp.NewExpr())
			return m.Solve()
		}
		if _, err := build(want + 1e-9); err != nil {
			t.Fatalf("trial %d: bound = topM %v should be feasible: %v", trial, want, err)
		}
		if sol, err := build(want - 0.5); err == nil || sol.Status != lp.Infeasible {
			t.Fatalf("trial %d: bound below topM %v should be infeasible, got %v", trial, want, sol.Status)
		}
	}
}

func TestSmallestSumSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		M := 1 + rng.Intn(n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(50))
		}
		want := bottomMSum(vals, M)
		build := func(bound float64) (*lp.Solution, error) {
			m := lp.NewModel()
			res := SmallestSum(m, fixedExprs(m, vals), M, "bot")
			m.AddGE(res.Sum, bound)
			m.Maximize(lp.NewExpr())
			return m.Solve()
		}
		if _, err := build(want - 1e-9); err != nil {
			t.Fatalf("trial %d: bound = bottomM %v should be feasible: %v", trial, want, err)
		}
		if sol, err := build(want + 0.5); err == nil || sol.Status != lp.Infeasible {
			t.Fatalf("trial %d: bound above bottomM %v should be infeasible, got %v", trial, want, sol.Status)
		}
	}
}

// TestEmbeddedOptimization: the encoding must not distort an optimization
// where the inputs are decision variables. max Σxᵢ s.t. xᵢ ≤ cap and
// Σ top-M xᵢ ≤ B has optimum n·min(cap, B/M).
func TestEmbeddedOptimization(t *testing.T) {
	for _, enc := range []struct {
		name string
		fn   func(lp.Emitter, []*lp.Expr, int, string) Result
	}{
		{"sortnet", LargestSum},
		{"compact", TopKCompact},
	} {
		t.Run(enc.name, func(t *testing.T) {
			const (
				n   = 6
				M   = 2
				cap = 10.0
				B   = 14.0
			)
			m := lp.NewModel()
			exprs := make([]*lp.Expr, n)
			obj := lp.NewExpr()
			for i := 0; i < n; i++ {
				x := m.NewVar("x", 0, cap)
				exprs[i] = lp.NewExpr().Add(1, x)
				obj.Add(1, x)
			}
			res := enc.fn(m, exprs, M, "t")
			m.AddLE(res.Sum, B)
			m.Maximize(obj)
			sol, err := m.Solve()
			if err != nil {
				t.Fatal(err)
			}
			want := n * math.Min(cap, B/M)
			if math.Abs(sol.Objective-want) > 1e-6 {
				t.Fatalf("objective = %v, want %v", sol.Objective, want)
			}
		})
	}
}

// TestEncodingsAgree: sorting-network and compact encodings must yield the
// same optima on random embedded problems.
func TestEncodingsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		M := 1 + rng.Intn(n)
		caps := make([]float64, n)
		for i := range caps {
			caps[i] = 1 + rng.Float64()*9
		}
		B := rng.Float64() * 20
		solveWith := func(fn func(lp.Emitter, []*lp.Expr, int, string) Result) float64 {
			m := lp.NewModel()
			exprs := make([]*lp.Expr, n)
			obj := lp.NewExpr()
			for i := 0; i < n; i++ {
				x := m.NewVar("x", 0, caps[i])
				exprs[i] = lp.NewExpr().Add(1, x)
				obj.Add(1, x)
			}
			res := fn(m, exprs, M, "t")
			m.AddLE(res.Sum, B)
			m.Maximize(obj)
			sol, err := m.Solve()
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return sol.Objective
		}
		a := solveWith(LargestSum)
		b := solveWith(TopKCompact)
		if math.Abs(a-b) > 1e-5 {
			t.Fatalf("trial %d: sortnet %v != compact %v", trial, a, b)
		}
	}
}

func TestBottomKCompactMatchesSmallestSum(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		M := 1 + rng.Intn(n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(30))
		}
		want := bottomMSum(vals, M)
		m := lp.NewModel()
		res := BottomKCompact(m, fixedExprs(m, vals), M, "b")
		m.Maximize(res.Sum)
		sol, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: compact bottom-M max %v, want %v (vals %v)", trial, sol.Objective, want, vals)
		}
	}
}

func TestZeroAndFullM(t *testing.T) {
	m := lp.NewModel()
	es := fixedExprs(m, []float64{5, 3, 9})
	if r := LargestSum(m, es, 0, "z"); len(r.Ranked) != 0 || len(r.Sum.Terms) != 0 {
		t.Fatal("M=0 should produce an empty result")
	}
	// M beyond len clamps to len: sum of all.
	r := LargestSum(m, es, 10, "all")
	m.Minimize(r.Sum)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-17) > 1e-6 {
		t.Fatalf("Σ all = %v, want 17", sol.Objective)
	}
}

func TestConstraintCountsLinearInKN(t *testing.T) {
	// The paper's headline: O(k·n) constraints for the partial network.
	for _, tc := range []struct{ n, M int }{{10, 1}, {10, 3}, {40, 3}} {
		m := lp.NewModel()
		vals := make([]float64, tc.n)
		res := LargestSum(m, fixedExprs(m, vals), tc.M, "c")
		maxCons := 3 * tc.M * tc.n // 3 constraints per compare-swap, ≤ n per pass
		if res.Constraints > maxCons {
			t.Fatalf("n=%d M=%d: %d constraints > bound %d", tc.n, tc.M, res.Constraints, maxCons)
		}
		if res.Vars > 2*tc.M*tc.n {
			t.Fatalf("n=%d M=%d: %d vars > bound %d", tc.n, tc.M, res.Vars, 2*tc.M*tc.n)
		}
	}
}

// TestRankedExpressions: Ranked[j] individually over-approximates the j-th
// largest value when minimized.
func TestRankedExpressions(t *testing.T) {
	vals := []float64{4, 9, 1, 7}
	m := lp.NewModel()
	res := LargestSum(m, fixedExprs(m, vals), 3, "r")
	// Individual rank variables are only pinned under lexicographic
	// minimization; steeply decreasing weights emulate it.
	obj := lp.NewExpr()
	for j, e := range res.Ranked {
		obj.AddExpr(math.Pow(100, float64(len(res.Ranked)-j)), e)
	}
	m.Minimize(obj)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 7, 4}
	for j, e := range res.Ranked {
		if got := sol.EvalExpr(e); math.Abs(got-want[j]) > 1e-6 {
			t.Fatalf("rank %d = %v, want %v", j, got, want[j])
		}
	}
}
