// Package tunnel implements tunnel-based forwarding state for TE (§2 of the
// paper): per-flow tunnel sets, (p,q) link-switch disjoint tunnel layout
// (§4.3), residual-tunnel computation under data-plane faults, and the
// proportional rescaling ingress switches perform when tunnels fail (§2.1).
package tunnel

import (
	"fmt"
	"sort"

	"ffc/internal/topology"
)

// Flow identifies aggregated ingress→egress traffic.
type Flow struct {
	Src, Dst topology.SwitchID
}

func (f Flow) String() string { return fmt.Sprintf("%d→%d", f.Src, f.Dst) }

// Tunnel is one path assigned to a flow.
type Tunnel struct {
	// Index of this tunnel within its flow's tunnel list.
	Index int
	Flow  Flow
	// Links is the ordered list of directed links from Flow.Src to
	// Flow.Dst.
	Links []topology.LinkID
	// Switches is the ordered switch sequence (len(Links)+1, starting at
	// Flow.Src).
	Switches []topology.SwitchID
}

// Uses reports whether the tunnel traverses the directed link e
// (the paper's L[t,e]).
func (t *Tunnel) Uses(e topology.LinkID) bool {
	for _, l := range t.Links {
		if l == e {
			return true
		}
	}
	return false
}

// Transits reports whether the tunnel passes through switch v, including
// endpoints.
func (t *Tunnel) Transits(v topology.SwitchID) bool {
	for _, s := range t.Switches {
		if s == v {
			return true
		}
	}
	return false
}

// Alive reports whether the tunnel survives the given fault sets: it dies if
// any of its directed links (or their twins, since a physical failure takes
// both directions) or any of its switches is down.
func (t *Tunnel) Alive(net *topology.Network, downLinks map[topology.LinkID]bool, downSwitches map[topology.SwitchID]bool) bool {
	for _, l := range t.Links {
		if downLinks[l] {
			return false
		}
		if tw := net.Links[l].Twin; tw != topology.None && downLinks[tw] {
			return false
		}
	}
	for _, s := range t.Switches {
		if downSwitches[s] {
			return false
		}
	}
	return true
}

// newTunnel builds a Tunnel from a link path, deriving the switch sequence.
func newTunnel(net *topology.Network, f Flow, links []topology.LinkID) *Tunnel {
	t := &Tunnel{Flow: f, Links: links}
	if len(links) == 0 {
		return t
	}
	t.Switches = append(t.Switches, net.Links[links[0]].Src)
	for _, l := range links {
		t.Switches = append(t.Switches, net.Links[l].Dst)
	}
	return t
}

// Set holds the tunnels of every flow over one network.
type Set struct {
	Net    *topology.Network
	Flows  []Flow
	tunMap map[Flow][]*Tunnel
}

// NewSet returns an empty tunnel set over net.
func NewSet(net *topology.Network) *Set {
	return &Set{Net: net, tunMap: make(map[Flow][]*Tunnel)}
}

// Add registers tunnels for a flow (appending), keeping indices consistent.
func (s *Set) Add(f Flow, ts ...*Tunnel) {
	cur := s.tunMap[f]
	if cur == nil {
		s.Flows = append(s.Flows, f)
	}
	for _, t := range ts {
		t.Index = len(cur)
		t.Flow = f
		cur = append(cur, t)
	}
	s.tunMap[f] = cur
}

// Tunnels returns the tunnels of f (nil if unknown).
func (s *Set) Tunnels(f Flow) []*Tunnel { return s.tunMap[f] }

// All iterates flows in insertion order, returning flow/tunnel pairs.
func (s *Set) All() []Flow { return s.Flows }

// PQ returns the layout's actual (p, q) for a flow: the maximum number of
// its tunnels sharing one physical link (either direction pooled) and one
// intermediate switch. Endpoints are excluded from q — every tunnel
// necessarily transits them, and FFC's residual-tunnel bound covers
// non-terminal switch failures (an ingress/egress failure kills the flow
// entirely, which no traffic spreading can mitigate).
func (s *Set) PQ(f Flow) (p, q int) {
	linkUse := map[topology.LinkID]int{}
	swUse := map[topology.SwitchID]int{}
	for _, t := range s.tunMap[f] {
		for _, l := range t.Links {
			id := canonicalLink(s.Net, l)
			linkUse[id]++
			if linkUse[id] > p {
				p = linkUse[id]
			}
		}
		for _, v := range t.Switches[1 : len(t.Switches)-1] {
			swUse[v]++
			if swUse[v] > q {
				q = swUse[v]
			}
		}
	}
	return p, q
}

// canonicalLink folds a directed link onto its physical identity (the lower
// of the twin pair) so both directions count as one physical link.
func canonicalLink(net *topology.Network, l topology.LinkID) topology.LinkID {
	if tw := net.Links[l].Twin; tw != topology.None && tw < l {
		return tw
	}
	return l
}

// Residual returns the tunnels of f alive under the fault sets.
func (s *Set) Residual(f Flow, downLinks map[topology.LinkID]bool, downSwitches map[topology.SwitchID]bool) []*Tunnel {
	var alive []*Tunnel
	for _, t := range s.tunMap[f] {
		if t.Alive(s.Net, downLinks, downSwitches) {
			alive = append(alive, t)
		}
	}
	return alive
}

// Rescale computes per-tunnel loads after faults: the flow's rate is split
// over residual tunnels in proportion to the configured weights (§2.1).
// weights is indexed by tunnel Index; rate is the flow's sending rate.
// Dead tunnels get 0. If no tunnel survives, all loads are 0 (blackhole;
// the caller accounts the loss).
func (s *Set) Rescale(f Flow, weights []float64, rate float64, downLinks map[topology.LinkID]bool, downSwitches map[topology.SwitchID]bool) []float64 {
	ts := s.tunMap[f]
	loads := make([]float64, len(ts))
	var total float64
	for _, t := range ts {
		if t.Alive(s.Net, downLinks, downSwitches) {
			total += weights[t.Index]
		}
	}
	if total <= 0 {
		return loads
	}
	for _, t := range ts {
		if t.Alive(s.Net, downLinks, downSwitches) {
			loads[t.Index] = rate * weights[t.Index] / total
		}
	}
	return loads
}

// Weights converts per-tunnel allocations {a_{f,t}} into splitting weights
// w_{f,t} = a_{f,t} / Σ a (the configuration installed at ingress switches).
// A zero allocation vector yields uniform weights.
func Weights(alloc []float64) []float64 {
	w := make([]float64, len(alloc))
	var sum float64
	for _, a := range alloc {
		sum += a
	}
	if sum <= 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return w
	}
	for i, a := range alloc {
		w[i] = a / sum
	}
	return w
}

// SortTunnelsByLength orders a flow's tunnels shortest-first (stable),
// reindexing them. Deterministic layouts make experiments reproducible.
func (s *Set) SortTunnelsByLength(f Flow) {
	ts := s.tunMap[f]
	sort.SliceStable(ts, func(i, j int) bool { return len(ts[i].Links) < len(ts[j].Links) })
	for i, t := range ts {
		t.Index = i
	}
}
