package wire

import (
	"encoding/json"
	"strings"
	"testing"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// solveExample computes a small real configuration to round-trip.
func solveExample(t *testing.T) (*topology.Network, *tunnel.Set, demand.Matrix, *core.State) {
	t.Helper()
	net := topology.Example4()
	s1, _ := net.SwitchByName("s1")
	s2, _ := net.SwitchByName("s2")
	s4, _ := net.SwitchByName("s4")
	flows := []tunnel.Flow{{Src: s2, Dst: s4}, {Src: s1, Dst: s4}}
	set := tunnel.Layout(net, flows, tunnel.LayoutConfig{TunnelsPerFlow: 2})
	solver := core.NewSolver(net, set, core.Options{})
	demands := demand.Matrix{flows[0]: 10, flows[1]: 4}
	st, _, err := solver.Solve(core.Input{Demands: demands})
	if err != nil {
		t.Fatal(err)
	}
	return net, set, demands, st
}

// TestParseStateRoundTrip checks encode → parse → encode is byte-stable:
// ParseState is the exact inverse of EncodeState on files EncodeState
// produced.
func TestParseStateRoundTrip(t *testing.T) {
	net, set, demands, st := solveExample(t)
	first, err := json.Marshal(EncodeState(net, set, demands, st))
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseState(net, set, first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(EncodeState(net, set, demands, parsed))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("round trip not byte-identical:\n first: %s\nsecond: %s", first, second)
	}
	if parsed.TotalRate() != st.TotalRate() {
		t.Fatalf("total rate changed: %v vs %v", parsed.TotalRate(), st.TotalRate())
	}
}

// TestParseStateUnknownPathTolerated: a tunnel whose path no longer exists
// in the freshly laid-out set loses its allocation but does not error (the
// topology may legitimately have changed between runs).
func TestParseStateUnknownPathTolerated(t *testing.T) {
	net, set, demands, st := solveExample(t)
	sf := EncodeState(net, set, demands, st)
	sf.Flows[0].Tunnels[0].Path = []string{"s2", "s3", "s1", "s4"} // not a laid-out tunnel
	blob, _ := json.Marshal(sf)
	parsed, err := ParseState(net, set, blob)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.TotalRate() != st.TotalRate() {
		t.Fatalf("rates must survive: %v vs %v", parsed.TotalRate(), st.TotalRate())
	}
}

func TestParseStateErrors(t *testing.T) {
	net, set, demands, st := solveExample(t)
	good := EncodeState(net, set, demands, st)
	mutate := func(fn func(sf *StateFile)) []byte {
		var sf StateFile
		blob, _ := json.Marshal(good)
		if err := json.Unmarshal(blob, &sf); err != nil {
			t.Fatal(err)
		}
		fn(&sf)
		out, _ := json.Marshal(sf)
		return out
	}
	cases := []struct {
		name string
		blob []byte
		want string
	}{
		{"garbage", []byte(`{"flows": 3}`), "parsing state"},
		{"unknown-switch", mutate(func(sf *StateFile) { sf.Flows[0].Src = "nope" }), "unknown switch"},
		{"self-flow", mutate(func(sf *StateFile) { sf.Flows[0].Dst = sf.Flows[0].Src }), "src == dst"},
		{"negative-rate", mutate(func(sf *StateFile) { sf.Flows[0].Rate = -1 }), "rate is -1"},
		{"negative-alloc", mutate(func(sf *StateFile) { sf.Flows[0].Tunnels[0].Alloc = -2 }), "tunnel alloc is -2"},
		{"short-path", mutate(func(sf *StateFile) { sf.Flows[0].Tunnels[0].Path = []string{"s2"} }), "path has 1 hops"},
		{"duplicate-flow", mutate(func(sf *StateFile) { sf.Flows = append(sf.Flows, sf.Flows[0]) }), "duplicate flow"},
	}
	for _, tc := range cases {
		if _, err := ParseState(net, set, tc.blob); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
}
