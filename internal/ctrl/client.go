package ctrl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"ffc/internal/wire"
)

// Client speaks the ffcd protocol over one TCP connection. Safe for
// concurrent use: requests are serialized on the connection (the protocol
// answers in order). For parallel load, open several clients.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to an ffcd server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ctrl: dial %s: %w", addr, err)
	}
	r := bufio.NewReaderSize(conn, 64<<10)
	return &Client{conn: conn, r: r}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// do sends one frame and reads one reply.
func (c *Client) do(frame []byte) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.conn.Write(append(frame, '\n')); err != nil {
		return nil, fmt.Errorf("ctrl: send: %w", err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("ctrl: recv: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("ctrl: bad reply: %w", err)
	}
	return &resp, nil
}

// Query sends `{"q":...}` and returns the reply (an error reply is an
// error, not a Response).
func (c *Client) Query(q string) (*Response, error) {
	resp, err := c.do([]byte(fmt.Sprintf(`{"q":%q}`, q)))
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("ctrl: server: %s", resp.Error)
	}
	return resp, nil
}

// Ping round-trips a ping frame.
func (c *Client) Ping() error {
	_, err := c.Query(QueryPing)
	return err
}

// Meta fetches the installed plan's metadata.
func (c *Client) Meta() (*Meta, error) {
	resp, err := c.Query(QueryMeta)
	if err != nil {
		return nil, err
	}
	return resp.Meta, nil
}

// GetPlan fetches the installed plan: metadata plus the full
// wire.StateFile.
func (c *Client) GetPlan() (*Meta, *wire.StateFile, error) {
	resp, err := c.Query(QueryPlan)
	if err != nil {
		return nil, nil, err
	}
	var sf wire.StateFile
	if err := json.Unmarshal(resp.Plan, &sf); err != nil {
		return nil, nil, fmt.Errorf("ctrl: bad plan payload: %w", err)
	}
	return resp.Meta, &sf, nil
}

// GetRoutes fetches the installed flow entries.
func (c *Client) GetRoutes() (*Meta, []wire.StateFlow, error) {
	resp, err := c.Query(QueryRoutes)
	if err != nil {
		return nil, nil, err
	}
	return resp.Meta, resp.Routes, nil
}

// Stats fetches the controller accounting.
func (c *Client) Stats() (*StatsSnapshot, error) {
	resp, err := c.Query(QueryStats)
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Update streams one update frame and waits for its ack.
func (c *Client) Update(u *wire.Update) error {
	frame, err := wire.EncodeUpdate(u)
	if err != nil {
		return err
	}
	resp, err := c.do(frame)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("ctrl: server: %s", resp.Error)
	}
	return nil
}
