package ctrl

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"ffc/internal/wire"
)

// maxFrame bounds one protocol line; a larger frame drops the connection
// rather than buffering without limit.
const maxFrame = 4 << 20

// Query verbs. A request frame is either a query (`{"q":"get_plan"}`) or a
// wire.Update (`{"op":"link",...}`); the "q"/"op" key discriminates.
const (
	QueryPing   = "ping"
	QueryMeta   = "meta"
	QueryPlan   = "get_plan"
	QueryRoutes = "get_routes"
	QueryStats  = "stats"
)

// Response is one reply frame. Every request gets exactly one.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Meta describes the installed plan (all queries except stats/ping).
	Meta *Meta `json:"meta,omitempty"`
	// Plan is the installed plan's wire.StateFile, pre-encoded at install.
	Plan json.RawMessage `json:"plan,omitempty"`
	// Routes are the installed flow entries (get_routes).
	Routes []wire.StateFlow `json:"routes,omitempty"`
	// Stats is the controller accounting (stats).
	Stats *StatsSnapshot `json:"stats,omitempty"`
}

// Server speaks the ffcd protocol over TCP: newline-delimited JSON frames,
// one request per line, one response per line, pipelined in order. Queries
// are answered from the installed plan snapshot and never touch the
// solver; update frames are folded into the controller's desired state.
type Server struct {
	ctrl *Controller
	ln   net.Listener
	logf func(format string, args ...interface{})

	mu     sync.Mutex
	conns  map[net.Conn]*serverConn
	closed bool
	wg     sync.WaitGroup
}

type serverConn struct {
	// mu is held across handle+respond, so a graceful Close never cuts a
	// connection mid-reply: it waits for the in-flight frame, then closes.
	mu sync.Mutex
	c  net.Conn
}

// Serve starts a server for ctrl on addr ("host:port"; ":0" picks a free
// port — see Addr).
func Serve(ctrl *Controller, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctrl: listen %s: %w", addr, err)
	}
	s := &Server{ctrl: ctrl, ln: ln, logf: ctrl.cfg.Logf, conns: map[net.Conn]*serverConn{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close drains the server: stop accepting, let every in-flight request
// finish its reply, then close all connections and return.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for _, sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sc := range conns {
		sc.mu.Lock() // waits for the in-flight handle+reply
		sc.c.Close()
		sc.mu.Unlock()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &serverConn{c: conn}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = sc
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(sc)
	}
}

func (s *Server) serveConn(sc *serverConn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, sc.c)
		s.mu.Unlock()
		sc.c.Close()
	}()
	scan := bufio.NewScanner(sc.c)
	scan.Buffer(make([]byte, 64<<10), maxFrame)
	out := bufio.NewWriter(sc.c)
	for scan.Scan() {
		line := scan.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		sc.mu.Lock()
		resp := s.handle(line)
		werr := writeFrame(out, resp)
		sc.mu.Unlock()
		if werr != nil {
			return
		}
	}
	if err := scan.Err(); err != nil && !errors.Is(err, net.ErrClosed) {
		s.logf("ctrl: conn %s: %v", sc.c.RemoteAddr(), err)
	}
}

func writeFrame(out *bufio.Writer, resp *Response) error {
	blob, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	if _, err := out.Write(blob); err != nil {
		return err
	}
	if err := out.WriteByte('\n'); err != nil {
		return err
	}
	return out.Flush()
}

// handle answers one request frame.
func (s *Server) handle(line []byte) *Response {
	var probe struct {
		Q  string `json:"q"`
		Op string `json:"op"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return &Response{Error: fmt.Sprintf("bad frame: %v", err)}
	}
	switch {
	case probe.Op != "":
		u, err := wire.ParseUpdate(line)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		if err := s.ctrl.Apply(u); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true}
	case probe.Q != "":
		return s.query(probe.Q)
	}
	return &Response{Error: "frame has neither q nor op"}
}

func (s *Server) query(q string) *Response {
	switch q {
	case QueryPing:
		return &Response{OK: true}
	case QueryStats:
		st := s.ctrl.Stats()
		return &Response{OK: true, Stats: &st}
	case QueryMeta, QueryPlan, QueryRoutes:
		p := s.ctrl.GetPlan()
		m := p.Meta()
		resp := &Response{OK: true, Meta: &m}
		switch q {
		case QueryPlan:
			resp.Plan = p.Encoded
		case QueryRoutes:
			resp.Routes = p.Routes()
		}
		return resp
	}
	return &Response{Error: fmt.Sprintf("unknown query %q", q)}
}
