package sortnet

import (
	"math"
	"sort"
	"testing"

	"ffc/internal/lp"
)

// FuzzPartialBubbleVsSort fuzzes the partial bubble sorting network against
// plain sorting (sort.Slice): with the network's inputs pinned by variable
// bounds, minimizing the encoded top-M sum (resp. maximizing the bottom-M
// sum) must recover exactly the sum of the M largest (smallest) values —
// the encoding is tight on constants. Values are byte-derived quarters, so
// the oracle's sums are exact in float64. M may exceed n to exercise the
// encoder's clamping.
func FuzzPartialBubbleVsSort(f *testing.F) {
	f.Add(uint8(1), []byte{10, 20, 30})
	f.Add(uint8(3), []byte{5, 5, 5, 5})
	f.Add(uint8(7), []byte{0})
	f.Add(uint8(2), []byte{255, 0, 128, 64, 32, 16, 8, 4})
	f.Fuzz(func(t *testing.T, mRaw uint8, data []byte) {
		if len(data) == 0 {
			return
		}
		n := len(data)
		if n > 8 {
			n = 8 // keep each LP tiny; the network is uniform in n
		}
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(data[i]) / 4
		}
		M := 1 + int(mRaw)%(n+2)

		sorted := append([]float64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		var top, bottom float64
		for i := 0; i < M && i < n; i++ {
			top += sorted[i]
			bottom += sorted[n-1-i]
		}

		m := lp.NewModel()
		res := LargestSum(m, fixedExprs(m, vals), M, "top")
		m.Minimize(res.Sum)
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("largest: solve failed: %v (vals %v, M %d)", err, vals, M)
		}
		if math.Abs(sol.Objective-top) > 1e-6*(1+top) {
			t.Fatalf("largest: min Σtop%d = %v, sort.Slice says %v (vals %v)", M, sol.Objective, top, vals)
		}

		m2 := lp.NewModel()
		res2 := SmallestSum(m2, fixedExprs(m2, vals), M, "bot")
		m2.Maximize(res2.Sum)
		sol2, err := m2.Solve()
		if err != nil {
			t.Fatalf("smallest: solve failed: %v (vals %v, M %d)", err, vals, M)
		}
		if math.Abs(sol2.Objective-bottom) > 1e-6*(1+bottom) {
			t.Fatalf("smallest: max Σbottom%d = %v, sort.Slice says %v (vals %v)", M, sol2.Objective, bottom, vals)
		}
	})
}
