package core

import (
	"fmt"
	"math"
	"sort"

	"ffc/internal/obs"
	"ffc/internal/parallel"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// Fault-case totals per verifier — the denominators for the per-shard
// timings ForEachWorkerObs records under core.verify.*.
var (
	obsVerifyDataCases   = obs.NewCounter("core.verify.dataplane.cases")
	obsVerifyCtrlCases   = obs.NewCounter("core.verify.controlplane.cases")
	obsVerifyDemandCases = obs.NewCounter("core.verify.demand.cases")
)

// Violation describes one fault case that overloads a link.
type Violation struct {
	Case string
	Link topology.LinkID
	// Over is load − capacity (positive).
	Over float64
}

// overThreshold is the single overload-tolerance comparison shared by every
// verifier and planner: load counts as exceeding cap only beyond
// 1e-6·max(1, cap), so solver round-off on large-capacity links doesn't
// trip false violations (an absolute cutoff would).
func overThreshold(load, cap float64) bool {
	return load-cap > 1e-6*math.Max(1, cap)
}

// serialVerifyCases is the sharding-unit count below which the verifiers
// stay on the serial path — fanning a handful of cases over a worker pool
// costs more than it saves.
const serialVerifyCases = 64

// verifyShardWorkers picks the worker count for nCases sharding units.
func verifyShardWorkers(workers, nCases int) int {
	if nCases < serialVerifyCases {
		return 1
	}
	return parallel.Workers(workers)
}

// combosUpTo materializes every index combination of size 0..k over [0,n)
// in enumeration order — the verifiers' sharding unit. The slice is
// proportional to the number of fault cases, which the per-case load
// computation dominates anyway.
func combosUpTo(n, k int) [][]int {
	var out [][]int
	forEachComboUpTo(n, k, func(sel []int) {
		out = append(out, append([]int(nil), sel...))
	})
	return out
}

// reduceWorst folds per-shard worst violations in shard order with the
// strictly-greater rule the serial scan uses, so the parallel verifiers
// return the exact violation the serial enumeration would.
func reduceWorst(vs []*Violation) *Violation {
	var worst *Violation
	for _, v := range vs {
		if v != nil && (worst == nil || v.Over > worst.Over) {
			worst = v
		}
	}
	return worst
}

// VerifyDataPlane enumerates every fault case with up to ke physical link
// failures and kv switch failures, applies ingress rescaling, and returns
// the worst overload found (nil if the state is congestion-free in all
// cases — the guarantee of Lemma 1). Exponential in (ke, kv); intended for
// tests and small networks. Cases are verified across all cores; use
// VerifyDataPlaneN to bound the worker count.
func VerifyDataPlane(net *topology.Network, tun *tunnel.Set, st *State, ke, kv int, capacity map[topology.LinkID]float64) *Violation {
	return VerifyDataPlaneN(net, tun, st, ke, kv, capacity, 0)
}

// VerifyDataPlaneN is VerifyDataPlane sharded over workers goroutines
// (≤ 0 means all cores). Link-failure combinations are the sharding unit;
// each worker keeps its own load buffers and a local worst violation, and
// the per-shard results are reduced in enumeration order, so the outcome is
// identical to the serial enumeration regardless of worker count.
func VerifyDataPlaneN(net *topology.Network, tun *tunnel.Set, st *State, ke, kv int, capacity map[topology.LinkID]float64, workers int) *Violation {
	links := physicalLinks(net)
	switches := make([]topology.SwitchID, 0, len(net.Switches))
	for _, sw := range net.Switches {
		switches = append(switches, sw.ID)
	}
	cases := combosUpTo(len(links), ke)
	w := verifyShardWorkers(workers, len(cases))
	sp := obs.StartSpan("core.verify/dataplane")
	defer sp.End()
	obsVerifyDataCases.Add(int64(len(cases)))

	type buffers struct {
		down  map[topology.LinkID]bool
		loads map[topology.LinkID]float64
	}
	bufs := make([]buffers, w)
	worst := make([]*Violation, len(cases))
	parallel.ForEachWorkerObs("core.verify.dataplane", len(cases), w, func(worker, ci int) {
		b := &bufs[worker]
		if b.down == nil {
			b.down = map[topology.LinkID]bool{}
			b.loads = map[topology.LinkID]float64{}
		}
		clear(b.down)
		li := cases[ci]
		linkIDs := make([]topology.LinkID, len(li))
		for i, idx := range li {
			linkIDs[i] = links[idx]
			b.down[links[idx]] = true
			if tw := net.Links[links[idx]].Twin; tw != topology.None {
				b.down[tw] = true
			}
		}
		var local *Violation
		forEachComboUpTo(len(switches), kv, func(si []int) {
			downSw := make(map[topology.SwitchID]bool, len(si))
			swIDs := make([]topology.SwitchID, len(si))
			for i, idx := range si {
				swIDs[i] = switches[idx]
				downSw[switches[idx]] = true
			}
			v := checkRescaledLoads(net, tun, st, b.down, downSw, capacity, b.loads)
			if v != nil {
				v.Case = fmt.Sprintf("links=%v switches=%v", linkIDs, swIDs)
				if local == nil || v.Over > local.Over {
					local = v
				}
			}
		})
		worst[ci] = local
	})
	return reduceWorst(worst)
}

// checkRescaledLoads computes per-link load after every ingress rescales
// around the fault sets, skipping links that are themselves down, and
// returns the worst overload (nil if none). Flows whose ingress or egress
// switch failed send nothing. loads is the caller's scratch buffer (cleared
// here), so repeated case checks don't reallocate it.
func checkRescaledLoads(net *topology.Network, tun *tunnel.Set, st *State,
	down map[topology.LinkID]bool, downSw map[topology.SwitchID]bool,
	capacity map[topology.LinkID]float64, loads map[topology.LinkID]float64) *Violation {

	clear(loads)
	for _, f := range tun.All() {
		rate := st.Rate[f]
		if rate == 0 || downSw[f.Src] || downSw[f.Dst] {
			continue
		}
		w := st.Weights(f)
		tl := tun.Rescale(f, w, rate, down, downSw)
		for _, t := range tun.Tunnels(f) {
			if tl[t.Index] == 0 {
				continue
			}
			for _, l := range t.Links {
				loads[l] += tl[t.Index]
			}
		}
	}
	var worst *Violation
	for l, load := range loads {
		if down[l] {
			continue
		}
		c := net.Links[l].Capacity
		if capacity != nil {
			if o, ok := capacity[l]; ok {
				c = o
			}
		}
		if overThreshold(load, c) {
			if over := load - c; worst == nil || over > worst.Over {
				worst = &Violation{Link: l, Over: over}
			}
		}
	}
	return worst
}

// VerifyControlPlane enumerates every set of up to kc ingress switches whose
// configuration update fails. A failed switch keeps old tunnel-splitting
// weights per the rate-limiter mode; per-flow the adversary picks whichever
// of old/new behavior loads each link more (a sound upper bound on any
// realizable combination). Returns the worst overload, or nil. Cases are
// verified across all cores; use VerifyControlPlaneN to bound the worker
// count.
func VerifyControlPlane(net *topology.Network, tun *tunnel.Set, newSt, oldSt *State,
	kc int, mode RateLimiterMode, capacity map[topology.LinkID]float64) *Violation {
	return VerifyControlPlaneN(net, tun, newSt, oldSt, kc, mode, capacity, 0)
}

// VerifyControlPlaneN is VerifyControlPlane sharded over workers goroutines
// (≤ 0 means all cores); stale-switch-set combinations are the sharding
// unit and the reduction preserves serial enumeration order, so the result
// is identical at any worker count.
func VerifyControlPlaneN(net *topology.Network, tun *tunnel.Set, newSt, oldSt *State,
	kc int, mode RateLimiterMode, capacity map[topology.LinkID]float64, workers int) *Violation {

	// Per-link per-source contributions under "updated" and "stale".
	type key struct {
		link topology.LinkID
		src  topology.SwitchID
	}
	newLoad := map[key]float64{}
	staleLoad := map[key]float64{}
	srcSet := map[topology.SwitchID]bool{}

	for _, f := range tun.All() {
		srcSet[f.Src] = true
		alloc := newSt.Alloc[f]
		oldW := tunnel.Weights(oldSt.Alloc[f])
		newW := newSt.Weights(f)
		for _, t := range tun.Tunnels(f) {
			a := idx(alloc, t.Index)
			var stale float64
			switch mode {
			case LimitersOrdered:
				stale = math.Max(idx(oldSt.Alloc[f], t.Index), a)
			case LimitersIndependent:
				// Any mix of {old,new} weights × {old,new} rate.
				stale = math.Max(math.Max(idx(oldSt.Alloc[f], t.Index), a),
					math.Max(idx(oldW, t.Index)*newSt.Rate[f],
						idx(newW, t.Index)*oldSt.Rate[f]))
			default: // LimitersSynced: old weights, new rate
				stale = math.Max(idx(oldW, t.Index)*newSt.Rate[f], a)
			}
			for _, l := range t.Links {
				newLoad[key{l, f.Src}] += a
				staleLoad[key{l, f.Src}] += stale
			}
		}
	}
	var srcs []topology.SwitchID
	for v := range srcSet {
		srcs = append(srcs, v)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })

	cases := combosUpTo(len(srcs), kc)
	sp := obs.StartSpan("core.verify/controlplane")
	defer sp.End()
	obsVerifyCtrlCases.Add(int64(len(cases)))
	worst := make([]*Violation, len(cases))
	parallel.ForEachWorkerObs("core.verify.controlplane", len(cases), verifyShardWorkers(workers, len(cases)), func(_, ci int) {
		sel := cases[ci]
		failed := make(map[topology.SwitchID]bool, len(sel))
		failedIDs := make([]topology.SwitchID, len(sel))
		for i, idx := range sel {
			failedIDs[i] = srcs[idx]
			failed[srcs[idx]] = true
		}
		var local *Violation
		for _, l := range net.Links {
			var load float64
			for _, v := range srcs {
				if failed[v] {
					load += staleLoad[key{l.ID, v}]
				} else {
					load += newLoad[key{l.ID, v}]
				}
			}
			c := l.Capacity
			if capacity != nil {
				if o, ok := capacity[l.ID]; ok {
					c = o
				}
			}
			if overThreshold(load, c) {
				if over := load - c; local == nil || over > local.Over {
					local = &Violation{Case: fmt.Sprintf("failed=%v link=%d", failedIDs, l.ID), Link: l.ID, Over: over}
				}
			}
		}
		worst[ci] = local
	})
	return reduceWorst(worst)
}

func physicalLinks(net *topology.Network) []topology.LinkID {
	var out []topology.LinkID
	for _, l := range net.Links {
		if l.Twin == topology.None || l.ID < l.Twin {
			out = append(out, l.ID)
		}
	}
	return out
}

// forEachComboUpTo calls fn with every index combination of size 0..k.
func forEachComboUpTo(n, k int, fn func([]int)) {
	if k > n {
		k = n
	}
	for size := 0; size <= k; size++ {
		forEachCombo(n, size, fn)
	}
}
