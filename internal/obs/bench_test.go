package obs

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_bench.json from the fixed-seed fixture")

// fixedBenchFile builds a BenchFile from a fixed seed, deliberately
// inserting entries out of order so the writer's sorting is exercised.
func fixedBenchFile() *BenchFile {
	rng := rand.New(rand.NewSource(42))
	f := &BenchFile{Schema: BenchSchema, Label: "golden", Counters: map[string]int64{
		"lp.solves": 12,
		"lp.iters":  int64(rng.Intn(1000) + 500),
	}}
	f.Benchmarks = []BenchEntry{
		{Name: "VerifyDataPlaneSNet/serial", NsPerOp: 714031886, Ops: 3, Cases: 3917},
		{Name: "SimplexMediumLP", NsPerOp: float64(rng.Intn(100000) + 100000), Ops: 10},
		{Name: "VerifyDataPlaneSNet/parallel", NsPerOp: 182007153, Ops: 3, Cases: 3917, Speedup: 3.92,
			Counters: map[string]int64{"workers": 8}},
	}
	return f
}

// TestBenchGoldenRoundTrip is the exporter's golden-file test: emit →
// compare against testdata/golden_bench.json byte-for-byte → parse →
// compare structurally → re-emit and check byte stability across runs.
func TestBenchGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "golden_bench.json")
	var buf bytes.Buffer
	if err := WriteBench(&buf, fixedBenchFile()); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("emitted BENCH json differs from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	parsed, err := ParseBench(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Label != "golden" || len(parsed.Benchmarks) != 3 {
		t.Fatalf("round-trip lost data: %+v", parsed)
	}
	if e := parsed.Find("VerifyDataPlaneSNet/parallel"); e == nil || e.Speedup != 3.92 || e.Counters["workers"] != 8 {
		t.Fatalf("round-trip entry mismatch: %+v", e)
	}
	if parsed.Find("nope") != nil {
		t.Fatal("Find on a missing name must return nil")
	}

	// Byte stability: a second emission of the re-built fixed state (and
	// of the parsed copy) must be identical.
	var again, reparsed bytes.Buffer
	if err := WriteBench(&again, fixedBenchFile()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two emissions with a fixed seed differ")
	}
	if err := WriteBench(&reparsed, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), reparsed.Bytes()) {
		t.Fatal("emit → parse → emit is not byte-stable")
	}
}

func TestParseBenchRejectsBadSchema(t *testing.T) {
	if _, err := ParseBench([]byte(`{"schema": 99, "label": "x", "benchmarks": []}`)); err == nil {
		t.Fatal("schema 99 must be rejected")
	}
	if _, err := ParseBench([]byte(`{"label": "x"}`)); err == nil {
		t.Fatal("schema 0 must be rejected")
	}
	if _, err := ParseBench([]byte(`not json`)); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestNormalizeBenchName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkVerifyDataPlaneSNet/serial-8": "VerifyDataPlaneSNet/serial",
		"BenchmarkSimplexPFIRep-16":             "SimplexPFIRep",
		"BenchmarkSolveFFCSortNet":              "SolveFFCSortNet",
		"VerifyDataPlaneSNet/parallel":          "VerifyDataPlaneSNet/parallel",
		"BenchmarkFig12-quick-4":                "Fig12-quick", // only a numeric tail is stripped as GOMAXPROCS
	}
	for in, want := range cases {
		if got := NormalizeBenchName(in); got != want {
			t.Errorf("NormalizeBenchName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: ffc/internal/core
cpu: Intel(R) Xeon(R) CPU @ 2.70GHz
BenchmarkVerifyDataPlaneSNet/serial-8         	       3	714031886 ns/op
BenchmarkVerifyDataPlaneSNet/parallel-8       	       3	182007153 ns/op	       5 B/op	       0 allocs/op
BenchmarkVerifyDataPlaneSNet/serial-8         	       3	693532564 ns/op
not a benchmark line
BenchmarkBroken-8	three	bad ns/op
PASS
`
	f, err := ParseGoBench(strings.NewReader(out), "ci")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	ser := f.Find("VerifyDataPlaneSNet/serial")
	if ser == nil || ser.NsPerOp != 693532564 {
		t.Fatalf("duplicate entries must keep min ns/op: %+v", ser)
	}
	par := f.Find("VerifyDataPlaneSNet/parallel")
	if par == nil || par.NsPerOp != 182007153 || par.Ops != 3 {
		t.Fatalf("parallel entry: %+v", par)
	}
}

func TestCompareBench(t *testing.T) {
	base1 := &BenchFile{Schema: 1, Label: "a", Benchmarks: []BenchEntry{
		{Name: "Fast", NsPerOp: 100},
		{Name: "Slow", NsPerOp: 1000},
	}}
	base2 := &BenchFile{Schema: 1, Label: "b", Benchmarks: []BenchEntry{
		{Name: "Fast", NsPerOp: 150}, // max across files wins as the reference
	}}
	cur := &BenchFile{Schema: 1, Label: "ci", Benchmarks: []BenchEntry{
		{Name: "Fast", NsPerOp: 290},  // 290 < 2×150 → ok
		{Name: "Slow", NsPerOp: 2500}, // 2500 > 2×1000 → regression
		{Name: "New", NsPerOp: 42},    // no baseline → unmatched, never gated
	}}
	regs, matched, unmatched, ignored := CompareBench([]*BenchFile{base1, nil, base2}, cur, 2.0)
	if len(matched) != 2 || len(unmatched) != 1 || unmatched[0] != "New" || len(ignored) != 0 {
		t.Fatalf("matched=%v unmatched=%v ignored=%v", matched, unmatched, ignored)
	}
	if len(regs) != 1 || regs[0].Name != "Slow" || regs[0].Ratio != 2.5 || regs[0].BaselineNs != 1000 {
		t.Fatalf("regressions: %+v", regs)
	}
	// Tighten the gate and Fast regresses too; order is worst-first.
	regs, _, _, _ = CompareBench([]*BenchFile{base1, base2}, cur, 1.5)
	if len(regs) != 2 || regs[0].Name != "Slow" || regs[1].Name != "Fast" {
		t.Fatalf("regressions (1.5x gate): %+v", regs)
	}
}

func TestCompareBenchIgnoresDegradedEntries(t *testing.T) {
	base := &BenchFile{Schema: 1, Label: "a", Benchmarks: []BenchEntry{
		{Name: "Solve", NsPerOp: 1000},
		// A degraded baseline must not weaken the reference for others.
		{Name: "Other", NsPerOp: 5000, Tags: []string{BenchTagDegraded}},
		{Name: "Other", NsPerOp: 100},
	}}
	cur := &BenchFile{Schema: 1, Label: "ci", Benchmarks: []BenchEntry{
		// 10× over baseline, but the run was fault-injected: never gated.
		{Name: "Solve", NsPerOp: 10000, Tags: []string{BenchTagDegraded}},
		{Name: "Other", NsPerOp: 150},
	}}
	regs, matched, unmatched, ignored := CompareBench([]*BenchFile{base}, cur, 2.0)
	if len(regs) != 0 {
		t.Fatalf("degraded entry gated: %+v", regs)
	}
	if len(ignored) != 1 || ignored[0] != "Solve" {
		t.Fatalf("ignored = %v, want [Solve]", ignored)
	}
	if len(matched) != 1 || matched[0] != "Other" || len(unmatched) != 0 {
		t.Fatalf("matched=%v unmatched=%v", matched, unmatched)
	}
	// Degraded baseline excluded: a clean current entry gates against the
	// clean 100, not the degraded 5000.
	cur2 := &BenchFile{Schema: 1, Label: "ci", Benchmarks: []BenchEntry{
		{Name: "Other", NsPerOp: 900},
	}}
	regs, _, _, _ = CompareBench([]*BenchFile{base}, cur2, 2.0)
	if len(regs) != 1 || regs[0].BaselineNs != 100 {
		t.Fatalf("degraded baseline leaked into the reference: %+v", regs)
	}
}
