package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileBasics(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := d.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := d.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 50.5", got)
	}
	if got := d.Percentile(90); math.Abs(got-90.1) > 1e-9 {
		t.Fatalf("p90 = %v, want 90.1", got)
	}
}

func TestPercentileEmptyAndSingle(t *testing.T) {
	var d Dist
	if d.Percentile(50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	d.Add(7)
	for _, p := range []float64{0, 50, 100} {
		if d.Percentile(p) != 7 {
			t.Fatalf("single-sample percentile %v != 7", p)
		}
	}
}

func TestMeanSumMax(t *testing.T) {
	var d Dist
	d.Add(1)
	d.Add(3)
	d.AddN(2, 2)
	if d.Sum() != 8 || d.N() != 4 || d.Mean() != 2 || d.Max() != 3 {
		t.Fatalf("sum=%v n=%v mean=%v max=%v", d.Sum(), d.N(), d.Mean(), d.Max())
	}
}

func TestCDFMonotone(t *testing.T) {
	var d Dist
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		d.Add(rng.NormFloat64())
	}
	pts := d.CDF(50)
	if len(pts) != 50 {
		t.Fatalf("%d points, want 50", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF not monotone")
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("CDF must end at 1, got %v", pts[len(pts)-1].Y)
	}
}

func TestFractionAbove(t *testing.T) {
	var d Dist
	for _, v := range []float64{1, 2, 3, 4} {
		d.Add(v)
	}
	if got := d.FractionAbove(2); got != 0.5 {
		t.Fatalf("FractionAbove(2) = %v, want 0.5", got)
	}
	if got := d.FractionAbove(0); got != 1 {
		t.Fatalf("FractionAbove(0) = %v, want 1", got)
	}
	if got := d.FractionAbove(4); got != 0 {
		t.Fatalf("FractionAbove(4) = %v, want 0", got)
	}
}

// Property: percentile is monotone in p and bracketed by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		var d Dist
		for _, v := range raw {
			d.Add(v)
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := d.Percentile(p)
			if v < prev || v < sorted[0] || v > sorted[len(sorted)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.25)
	tb.Row("beta-long-name", 0.333333)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[2], "1.25") {
		t.Fatalf("unexpected render:\n%s", out)
	}
	// All rows align: same prefix width before second column.
	if !strings.Contains(lines[3], "0.3333") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
}

func TestRenderCDF(t *testing.T) {
	out := RenderCDF("test", []CDFPoint{{1, 0.5}, {2, 1}})
	if !strings.Contains(out, "# series: test") || !strings.Contains(out, "2 1.0000") {
		t.Fatalf("bad render:\n%s", out)
	}
}

func TestSafeRatio(t *testing.T) {
	if SafeRatio(4, 2, 9) != 2 {
		t.Fatal("ratio wrong")
	}
	if SafeRatio(4, 0, 9) != 9 {
		t.Fatal("default not used")
	}
}

func TestStopwatch(t *testing.T) {
	var sw Stopwatch
	if sw.Total() != 0 || sw.Get("x") != 0 || len(sw.Names()) != 0 {
		t.Fatal("zero Stopwatch not empty")
	}
	sw.Record("fig1a", 2*time.Second)
	sw.Record("fig12", time.Second)
	sw.Record("fig1a", time.Second) // accumulates, keeps insertion order
	if got := sw.Get("fig1a"); got != 3*time.Second {
		t.Fatalf("fig1a = %v, want 3s", got)
	}
	if got := sw.Total(); got != 4*time.Second {
		t.Fatalf("total = %v, want 4s", got)
	}
	names := sw.Names()
	if len(names) != 2 || names[0] != "fig1a" || names[1] != "fig12" {
		t.Fatalf("names = %v", names)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(4*time.Second, 2*time.Second); got != 2 {
		t.Fatalf("speedup = %v, want 2", got)
	}
	if got := Speedup(time.Second, 0); got != 0 {
		t.Fatalf("speedup with zero parallel = %v, want 0", got)
	}
}

func TestRenderSpeedup(t *testing.T) {
	var ser, par Stopwatch
	ser.Record("fig1a", 4*time.Second)
	par.Record("fig1a", 2*time.Second)
	out := RenderSpeedup(&ser, &par)
	if !strings.Contains(out, "fig1a") || !strings.Contains(out, "total") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "2") {
		t.Fatalf("missing speedup factor:\n%s", out)
	}
}
