package core

import (
	"fmt"
	"math"
	"sort"

	"ffc/internal/lp"
	"ffc/internal/parallel"
	"ffc/internal/sortnet"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// builder assembles one TE LP.
type builder struct {
	s     *Solver
	in    *Input
	model *lp.Model
	// workers is the effective constraint-emission parallelism (≥ 1),
	// resolved from Options.BuildWorkers.
	workers int

	flows    []tunnel.Flow
	bVar     map[tunnel.Flow]lp.Var
	aVar     map[tunnel.Flow][]lp.Var // nil for mice flows
	mice     map[tunnel.Flow]bool
	miceCoef map[tunnel.Flow]float64 // per-tunnel share of bf for mice
	// betaVar caches β_{f,t} variables, created lazily per tunnel.
	betaVar map[tunnel.Flow][]lp.Var
	// alive[f][i] reports whether tunnel i of f survives the input's down
	// sets; aliveTau[f] is τf computed over surviving tunnels.
	alive    map[tunnel.Flow][]bool
	aliveTau map[tunnel.Flow]int

	encVars, encCons int
	mluVar           lp.Var
	mluFaultVar      lp.Var
	haveMLUFault     bool
	// capRow maps links to their Eqn 2 row (for shadow prices); capVar
	// maps links to their expansion variable (PlanCapacity objective).
	capRow map[topology.LinkID]int
	capVar map[topology.LinkID]lp.Var
}

func newBuilder(s *Solver, in *Input) *builder {
	w := 1
	switch {
	case s.Opts.BuildWorkers < 0:
		w = parallel.Workers(0)
	case s.Opts.BuildWorkers > 0:
		w = s.Opts.BuildWorkers
	}
	return &builder{
		s: s, in: in, model: lp.NewModel(), workers: w,
		bVar:     map[tunnel.Flow]lp.Var{},
		aVar:     map[tunnel.Flow][]lp.Var{},
		mice:     map[tunnel.Flow]bool{},
		miceCoef: map[tunnel.Flow]float64{},
		betaVar:  map[tunnel.Flow][]lp.Var{},
		alive:    map[tunnel.Flow][]bool{},
		aliveTau: map[tunnel.Flow]int{},
		capRow:   map[topology.LinkID]int{},
		capVar:   map[topology.LinkID]lp.Var{},
	}
}

// independentReservations handles Eqn 17's bilinear old-rate × new-weights
// term soundly: requiring Σ_t a_{f,t} ≥ b'f makes w_t·b'f ≤ a_t per tunnel
// (weights are a_t/Σa), so β ≥ a_t already covers it. The cost is that a
// shrinking flow's link reservation cannot drop below its old rate within
// one interval — exactly the capacity that must be held while the old rate
// limiter may still be live.
func (b *builder) independentReservations() {
	for _, f := range b.flows {
		old := b.in.Prev.Rate[f]
		if old <= 0 || b.mice[f] {
			continue
		}
		if _, ok := b.in.Uncertain[f]; ok {
			continue // pinned to the old configuration already
		}
		e := lp.NewExpr()
		for _, v := range b.aVar[f] {
			e.Add(1, v)
		}
		b.model.AddNamed(fmt.Sprintf("resv[%v]", f), e, lp.GE, old)
		b.encCons++
	}
}

func (b *builder) formulate() error {
	if b.in.Prot.Kc > 0 && b.in.Prev == nil {
		return fmt.Errorf("core: control-plane FFC (kc=%d) requires the previous configuration", b.in.Prot.Kc)
	}
	b.selectFlows()
	b.selectMice()
	b.createVars()
	b.coverageConstraints()
	b.capacityConstraints()
	if err := b.dataPlane(); err != nil {
		return err
	}
	if b.in.Prot.Kc > 0 {
		if b.s.Opts.RateLimiter == LimitersIndependent {
			b.independentReservations()
		}
		if err := b.controlPlane(); err != nil {
			return err
		}
	}
	if err := b.demandFFC(b.in.Demand); err != nil {
		return err
	}
	b.objective()
	return nil
}

// emitBlocks stages n independent constraint blocks into detached
// lp.Batches — fanned over the builder's worker count — and splices them
// into the model in index order. A block may reference variables that
// existed before the call plus the ones it creates itself, never another
// block's. done(i, varBase, rowBase) runs in index order after block i's
// rows land, for translating batch-local row/variable indices to model
// indices. Splicing preserves each batch's staging order, so the final
// model is byte-identical for every worker count, including 1.
func (b *builder) emitBlocks(n int, emit func(i int, em lp.Emitter), done func(i, varBase, rowBase int)) {
	batches := make([]*lp.Batch, n)
	parallel.ForEach(n, b.workers, func(i int) {
		batches[i] = lp.NewBatch()
		emit(i, batches[i])
	})
	for i, bt := range batches {
		vb, rb := b.model.Splice(bt)
		if done != nil {
			done(i, vb, rb)
		}
	}
}

// selectFlows picks flows with positive demand and at least one tunnel, in
// deterministic order.
func (b *builder) selectFlows() {
	for _, f := range b.in.Demands.Flows() {
		if b.in.Demands[f] <= 0 {
			continue
		}
		if len(b.s.Tun.Tunnels(f)) == 0 {
			continue
		}
		b.flows = append(b.flows, f)
		alive := b.in.aliveTunnels(b.s.Net, b.s.Tun, f)
		b.alive[f] = alive
		b.aliveTau[f] = b.s.tauAlive(f, b.in.Prot, alive)
	}
}

// selectMice marks the smallest flows carrying at most MiceFraction of the
// total demand (§6); their tunnel split is fixed to uniform-over-τf.
func (b *builder) selectMice() {
	frac := b.s.Opts.MiceFraction
	if frac <= 0 {
		return
	}
	total := 0.0
	for _, f := range b.flows {
		total += b.in.Demands[f]
	}
	order := append([]tunnel.Flow(nil), b.flows...)
	sort.Slice(order, func(i, j int) bool { return b.in.Demands[order[i]] < b.in.Demands[order[j]] })
	budget := frac * total
	for _, f := range order {
		d := b.in.Demands[f]
		if d > budget {
			break
		}
		if _, isUncertain := b.in.Uncertain[f]; isUncertain {
			continue // uncertain flows are pinned, not re-split
		}
		if b.s.Opts.RateLimiter == LimitersIndependent && b.in.Prot.Kc > 0 &&
			b.in.Prev != nil && b.in.Prev.Rate[f] > 0 {
			continue // needs the Σa ≥ b' reservation, which mice can't carry
		}
		tau := b.aliveTau[f]
		if tau <= 0 {
			continue // flow will be zeroed anyway
		}
		budget -= d
		b.mice[f] = true
		b.miceCoef[f] = 1 / float64(tau)
	}
}

// rateBounds derives bf's bounds from the current input (a pure function
// of values, given fixed flow structure — Session.rebind reuses it to
// re-bound a cached model without re-formulating).
func (b *builder) rateBounds(f tunnel.Flow) (lo, hi float64) {
	d := b.in.Demands[f]
	lo, hi = 0.0, d
	if b.s.Opts.Objective == MinMLU || b.s.Opts.Objective == PlanCapacity {
		lo = d // the full offered demand must be carried
	}
	if cap, ok := b.in.RateCaps[f]; ok && cap < hi {
		hi = cap
		if lo > hi {
			lo = hi
		}
	}
	if floor, ok := b.in.RateFloors[f]; ok {
		if floor > hi {
			floor = hi
		}
		if floor > lo {
			lo = floor
		}
	}
	if fixed, ok := b.in.FixedRates[f]; ok {
		lo, hi = fixed, fixed
	}
	if _, ok := b.in.Uncertain[f]; ok {
		prevRate := b.in.Prev.Rate[f]
		lo, hi = prevRate, prevRate
	}
	if b.aliveTau[f] <= 0 {
		// Worst-case faults can kill every surviving tunnel: the flow
		// cannot be admitted under this protection level (§4.3).
		lo, hi = 0, 0
	}
	return lo, hi
}

// allocBounds derives a_{f,t}'s bounds from the current input (also reused
// by Session.rebind).
func (b *builder) allocBounds(f tunnel.Flow, i int) (alo, ahi float64) {
	alo, ahi = 0, lp.Inf
	if _, ok := b.in.Uncertain[f]; ok {
		prev := 0.0
		if pa := b.in.Prev.Alloc[f]; i < len(pa) {
			prev = pa[i]
		}
		alo, ahi = prev, prev
	}
	if !b.alive[f][i] {
		alo, ahi = 0, 0 // tunnel is currently down
	}
	return alo, ahi
}

func (b *builder) createVars() {
	for _, f := range b.flows {
		lo, hi := b.rateBounds(f)
		b.bVar[f] = b.model.NewVar(fmt.Sprintf("b[%v]", f), lo, hi)

		if b.mice[f] {
			b.aVar[f] = nil
			continue
		}
		ts := b.s.Tun.Tunnels(f)
		as := make([]lp.Var, len(ts))
		for i := range ts {
			alo, ahi := b.allocBounds(f, i)
			as[i] = b.model.NewVar(fmt.Sprintf("a[%v,%d]", f, i), alo, ahi)
		}
		b.aVar[f] = as
	}
}

// allocExpr returns the allocation a_{f,t} as an expression (variable, or
// mice coefficient on bf).
func (b *builder) allocExpr(f tunnel.Flow, t int) *lp.Expr {
	if b.mice[f] {
		return lp.NewExpr().Add(b.miceCoef[f], b.bVar[f])
	}
	return lp.NewExpr().Add(1, b.aVar[f][t])
}

// usageExpr builds Σ_{f,t crossing e} a_{f,t} for link e.
func (b *builder) usageExpr(e topology.LinkID) *lp.Expr {
	expr := lp.NewExpr()
	for _, ft := range b.s.incidence[e] {
		if _, ok := b.bVar[ft.flow]; !ok {
			continue // flow not in this computation
		}
		if !b.alive[ft.flow][ft.idx] {
			continue // down tunnel carries nothing
		}
		if b.mice[ft.flow] {
			expr.Add(b.miceCoef[ft.flow], b.bVar[ft.flow])
		} else {
			expr.Add(1, b.aVar[ft.flow][ft.idx])
		}
	}
	return expr
}

// coverageConstraints emits Eqn 3: Σ_t a_{f,t} ≥ bf.
func (b *builder) coverageConstraints() {
	for _, f := range b.flows {
		if b.mice[f] {
			continue // |Tf|·bf/τf ≥ bf holds by construction
		}
		e := lp.NewExpr()
		for _, v := range b.aVar[f] {
			e.Add(1, v)
		}
		e.Add(-1, b.bVar[f])
		b.model.AddNamed(fmt.Sprintf("cover[%v]", f), e, lp.GE, 0)
	}
}

// capacityConstraints emits Eqn 2 (or the MLU coupling for MinMLU, or the
// expandable-capacity form for PlanCapacity) as one block per link.
func (b *builder) capacityConstraints() {
	if b.s.Opts.Objective == MinMLU {
		b.mluVar = b.model.NewVar("MLU", 0, lp.Inf)
	}
	links := b.s.Net.Links
	type capOut struct {
		row int    // batch-local capacity row (MaxThroughput), or -1
		v   lp.Var // batch-local expansion variable (PlanCapacity), or -1
	}
	outs := make([]capOut, len(links))
	b.emitBlocks(len(links), func(i int, em lp.Emitter) {
		outs[i] = capOut{row: -1, v: -1}
		l := links[i]
		use := b.usageExpr(l.ID)
		if len(use.Terms) == 0 {
			return
		}
		c := b.s.capacity(b.in, l.ID)
		switch b.s.Opts.Objective {
		case MinMLU:
			// u ≥ usage/ce  ⟺  usage − ce·u ≤ 0
			use.Add(-c, b.mluVar)
			em.AddNamed(fmt.Sprintf("mlu[e%d]", l.ID), use, lp.LE, 0)
		case PlanCapacity:
			// usage − x_e ≤ ce with x_e ≥ 0 the expansion bought.
			v := em.NewVar(fmt.Sprintf("x[e%d]", l.ID), 0, lp.Inf)
			outs[i].v = v
			use.Add(-1, v)
			em.AddNamed(fmt.Sprintf("cap[e%d]", l.ID), use, lp.LE, c)
		default:
			outs[i].row = em.AddNamed(fmt.Sprintf("cap[e%d]", l.ID), use, lp.LE, c)
		}
	}, func(i, varBase, rowBase int) {
		if outs[i].row >= 0 {
			b.capRow[links[i].ID] = rowBase + outs[i].row
		}
		if outs[i].v >= 0 {
			b.capVar[links[i].ID] = lp.SpliceVar(outs[i].v, varBase)
		}
	})
}

// expandVar lazily creates the PlanCapacity expansion variable for a link.
func (b *builder) expandVar(l topology.LinkID) lp.Var {
	if v, ok := b.capVar[l]; ok {
		return v
	}
	v := b.model.NewVar(fmt.Sprintf("x[e%d]", l), 0, lp.Inf)
	b.capVar[l] = v
	return v
}

// dataPlane emits Eqn 15 (or the naive Eqn 9 enumeration) as one block per
// flow — the sortnet-heaviest phase, so the biggest parallel-emission win.
func (b *builder) dataPlane() error {
	prot := b.in.Prot
	if prot.Ke == 0 && prot.Kv == 0 {
		return nil
	}
	type dpOut struct{ vars, cons int }
	outs := make([]dpOut, len(b.flows))
	b.emitBlocks(len(b.flows), func(fi int, em lp.Emitter) {
		f := b.flows[fi]
		if b.mice[f] {
			return // uniform split satisfies Eqn 15 by construction
		}
		var aliveTs []*tunnel.Tunnel
		for _, t := range b.s.Tun.Tunnels(f) {
			if b.alive[f][t.Index] {
				aliveTs = append(aliveTs, t)
			}
		}
		tau := b.aliveTau[f]
		if tau <= 0 {
			return // bf already fixed to 0
		}
		if tau >= len(aliveTs) {
			return // no tunnel can be lost at this protection level
		}
		if b.s.Opts.Encoding == Naive {
			outs[fi].cons = b.dataPlaneNaive(em, f, aliveTs, prot)
			return
		}
		exprs := make([]*lp.Expr, len(aliveTs))
		for i, t := range aliveTs {
			exprs[i] = lp.NewExpr().Add(1, b.aVar[f][t.Index])
		}
		drop := len(aliveTs) - tau
		rhs := lp.NewExpr().Add(1, b.bVar[f])
		name := fmt.Sprintf("dp[%v]", f)
		var res sortnet.Result
		if tau <= drop {
			// Encode the smallest τ directly: Σ smallest-τ a ≥ bf.
			if b.s.Opts.Encoding == Compact {
				res = sortnet.BottomKCompact(em, exprs, tau, name)
			} else {
				res = sortnet.SmallestSum(em, exprs, tau, name)
			}
			em.AddNamed(name, lp.NewExpr().AddExpr(1, res.Sum).AddExpr(-1, rhs), lp.GE, 0)
		} else {
			// Cheaper dual form: Σ all − Σ largest-(|T|−τ) ≥ bf.
			if b.s.Opts.Encoding == Compact {
				res = sortnet.TopKCompact(em, exprs, drop, name)
			} else {
				res = sortnet.LargestSum(em, exprs, drop, name)
			}
			total := lp.NewExpr()
			for _, t := range aliveTs {
				total.Add(1, b.aVar[f][t.Index])
			}
			total.AddExpr(-1, res.Sum).AddExpr(-1, rhs)
			em.AddNamed(name, total, lp.GE, 0)
		}
		outs[fi] = dpOut{res.Vars, res.Constraints + 1}
	}, func(fi, _, _ int) {
		b.encVars += outs[fi].vars
		b.encCons += outs[fi].cons
	})
	return nil
}

// dataPlaneNaive enumerates Eqn 9's fault cases for one flow: every
// combination of Ke physical links and Kv switches drawn from the elements
// the flow's tunnels actually traverse. Returns the constraint count.
func (b *builder) dataPlaneNaive(em lp.Emitter, f tunnel.Flow, ts []*tunnel.Tunnel, prot Protection) int {
	// Collect candidate physical links and intermediate switches.
	linkSet := map[topology.LinkID]bool{}
	swSet := map[topology.SwitchID]bool{}
	for _, t := range ts {
		for _, l := range t.Links {
			linkSet[canonLink(b.s.Net, l)] = true
		}
		for _, v := range t.Switches[1 : len(t.Switches)-1] {
			swSet[v] = true
		}
	}
	links := sortedLinks(linkSet)
	sws := sortedSwitches(swSet)

	ke := prot.Ke
	if ke > len(links) {
		ke = len(links)
	}
	kv := prot.Kv
	if kv > len(sws) {
		kv = len(sws)
	}
	// Maximal fault sets dominate smaller ones (residual sets shrink
	// monotonically), so only size-ke × size-kv combinations are emitted.
	cons := 0
	forEachCombo(len(links), ke, func(li []int) {
		down := map[topology.LinkID]bool{}
		for _, i := range li {
			down[links[i]] = true
			if tw := b.s.Net.Links[links[i]].Twin; tw != topology.None {
				down[tw] = true
			}
		}
		forEachCombo(len(sws), kv, func(si []int) {
			downSw := map[topology.SwitchID]bool{}
			for _, i := range si {
				downSw[sws[i]] = true
			}
			e := lp.NewExpr()
			for _, t := range ts {
				if t.Alive(b.s.Net, down, downSw) {
					e.Add(1, b.aVar[f][t.Index])
				}
			}
			e.Add(-1, b.bVar[f])
			em.AddNamed(fmt.Sprintf("dp9[%v]", f), e, lp.GE, 0)
			cons++
		})
	})
	return cons
}

// betaExpr returns (β_{f,t} − a_{f,t}) as an expression for the configured
// rate-limiter mode, or nil when the difference is identically zero (the §6
// skip). Lazily creates β variables for non-mice flows.
func (b *builder) betaMinusAlpha(f tunnel.Flow, t int) *lp.Expr {
	prev := b.in.Prev
	if u, ok := b.in.Uncertain[f]; ok {
		// §5.6: β = max of the two candidate old configurations; the
		// current allocation is pinned to prev. Both are constants.
		aPrev := idx(prev.Alloc[f], t)
		aOlder := idx(u.AllocOlder, t)
		d := math.Max(aOlder, aPrev) - aPrev
		if d <= 0 {
			return nil
		}
		return lp.NewExpr().AddConst(d)
	}

	oldWeight := 0.0
	if pa, ok := prev.Alloc[f]; ok {
		w := tunnel.Weights(pa)
		if t < len(w) {
			oldWeight = w[t]
		}
	}
	if oldWeight <= b.s.Opts.WeightSkip {
		oldWeight = 0
	}
	oldAlloc := idx(prev.Alloc[f], t)
	if oldAlloc <= b.s.Opts.WeightSkip*prev.Rate[f] {
		oldAlloc = 0
	}

	if b.mice[f] {
		// β − a = (max(w', 1/τ) − 1/τ)·bf, a constant coefficient on bf.
		c := b.miceCoef[f]
		var coef float64
		switch b.s.Opts.RateLimiter {
		case LimitersOrdered:
			// β = max(a', a) with a = c·bf: a constant part max(a'−c·bf,0)
			// is not linear; fall back to the synced shape which dominates
			// it when weights persist. For mice this conservative choice
			// is negligible by construction.
			coef = math.Max(oldWeight, c) - c
		default:
			coef = math.Max(oldWeight, c) - c
		}
		if coef <= 0 {
			return nil
		}
		return lp.NewExpr().Add(coef, b.bVar[f])
	}

	var needs []func(beta lp.Var)
	switch b.s.Opts.RateLimiter {
	case LimitersSynced:
		// Eqn 8: β ≥ w'·bf, β ≥ a.
		if oldWeight <= 0 {
			return nil // β = a exactly; contributes nothing
		}
		needs = append(needs, func(beta lp.Var) {
			b.model.AddGE(lp.NewExpr().Add(1, beta).Add(-oldWeight, b.bVar[f]), 0)
		})
	case LimitersOrdered:
		// Eqn 18: β ≥ a' (constant), β ≥ a.
		if oldAlloc <= 0 {
			return nil
		}
		needs = append(needs, func(beta lp.Var) {
			b.model.AddGE(lp.NewExpr().Add(1, beta), oldAlloc)
		})
	case LimitersIndependent:
		// Eqn 17 less the bilinear b'f·w term (handled at the (v,e) level
		// as a per-flow constant; see controlPlane).
		if oldAlloc <= 0 && oldWeight <= 0 {
			return nil
		}
		needs = append(needs, func(beta lp.Var) {
			if oldAlloc > 0 {
				b.model.AddGE(lp.NewExpr().Add(1, beta), oldAlloc)
			}
			if oldWeight > 0 {
				b.model.AddGE(lp.NewExpr().Add(1, beta).Add(-oldWeight, b.bVar[f]), 0)
			}
		})
	}

	// Create (or reuse) the β variable for this tunnel.
	bs := b.betaVar[f]
	if bs == nil {
		bs = make([]lp.Var, len(b.s.Tun.Tunnels(f)))
		for i := range bs {
			bs[i] = -1
		}
		b.betaVar[f] = bs
	}
	if bs[t] < 0 {
		beta := b.model.NewVar(fmt.Sprintf("beta[%v,%d]", f, t), 0, lp.Inf)
		bs[t] = beta
		b.model.AddGE(lp.NewExpr().Add(1, beta).Add(-1, b.aVar[f][t]), 0)
		b.encCons++
		for _, add := range needs {
			add(beta)
			b.encCons++
		}
		b.encVars++
	}
	return lp.NewExpr().Add(1, lp.Var(bs[t])).Add(-1, b.aVar[f][t])
}

func idx(s []float64, i int) float64 {
	if i < len(s) {
		return s[i]
	}
	return 0
}

// controlPlane emits Eqn 14 per link (or the naive Eqn 5 enumeration) in
// two phases. Phase A runs serially in link order: β variables and their
// defining rows are shared across every link a tunnel crosses, so they are
// created up front along with each link's sorted (β−a) source grouping.
// Phase B then emits the per-link sortnet blocks and safety rows — fully
// independent — through emitBlocks.
func (b *builder) controlPlane() error {
	prev := b.in.Prev
	prevLoads := prev.ActualLinkLoads(b.s.Tun)
	type cpBlock struct {
		l     topology.LinkID
		c     float64
		exprs []*lp.Expr
		kc    int
	}
	var blocks []cpBlock
	for _, l := range b.s.Net.Links {
		inc := b.s.incidence[l.ID]
		if len(inc) == 0 {
			continue
		}
		c := b.s.capacity(b.in, l.ID)
		if prevLoads[l.ID] > c+1e-9 {
			// §4.5: the link is already overloaded (a fault beyond the
			// protection level occurred); allow an unprotected move by
			// setting kc=0 for this link.
			continue
		}

		// Group (β−a) contributions by ingress switch.
		bySrc := map[topology.SwitchID]*lp.Expr{}
		oldLoad := map[topology.SwitchID]float64{}
		for _, ft := range inc {
			if _, ok := b.bVar[ft.flow]; !ok {
				continue
			}
			oldLoad[ft.flow.Src] += idx(prev.Alloc[ft.flow], ft.idx)
			d := b.betaMinusAlpha(ft.flow, ft.idx)
			if d == nil {
				continue
			}
			if e := bySrc[ft.flow.Src]; e != nil {
				e.AddExpr(1, d)
			} else {
				bySrc[ft.flow.Src] = d
			}
		}
		// §6: ignore sources with (near-)zero old load on this link.
		type srcExpr struct {
			src topology.SwitchID
			e   *lp.Expr
		}
		var pairs []srcExpr
		for v, e := range bySrc {
			if b.s.Opts.OldLoadSkip > 0 && oldLoad[v] < b.s.Opts.OldLoadSkip*c {
				continue
			}
			pairs = append(pairs, srcExpr{v, e})
		}
		if len(pairs) == 0 {
			continue
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].src < pairs[j].src }) // determinism
		exprs := make([]*lp.Expr, len(pairs))
		for i, p := range pairs {
			exprs[i] = p.e
		}

		kc := b.in.Prot.Kc
		if kc > len(exprs) {
			kc = len(exprs)
		}
		blocks = append(blocks, cpBlock{l: l.ID, c: c, exprs: exprs, kc: kc})
	}
	if len(blocks) == 0 {
		return nil
	}
	// Variables shared across blocks must exist before phase B so the
	// parallel blocks only read them.
	if b.s.Opts.Objective == MinMLU && !b.haveMLUFault {
		b.mluFaultVar = b.model.NewVar("MLUfault", 0, lp.Inf)
		b.haveMLUFault = true
	}
	if b.s.Opts.Objective == PlanCapacity {
		for _, blk := range blocks {
			b.expandVar(blk.l)
		}
	}
	type cpOut struct{ vars, cons int }
	outs := make([]cpOut, len(blocks))
	b.emitBlocks(len(blocks), func(i int, em lp.Emitter) {
		blk := blocks[i]
		use := b.usageExpr(blk.l)
		name := fmt.Sprintf("cp[e%d]", blk.l)
		switch b.s.Opts.Encoding {
		case Naive:
			// Eqn 5/13 directly: every ≤kc subset. d ≥ 0, so only
			// maximal subsets are needed.
			forEachCombo(len(blk.exprs), blk.kc, func(sel []int) {
				e := use.Clone()
				for _, j := range sel {
					e.AddExpr(1, blk.exprs[j])
				}
				b.addCPConstraint(em, name, blk.l, e, blk.c)
				outs[i].cons++
			})
		case Compact:
			res := sortnet.TopKCompact(em, blk.exprs, blk.kc, name)
			outs[i] = cpOut{res.Vars, res.Constraints + 1}
			b.addCPConstraint(em, name, blk.l, use.Clone().AddExpr(1, res.Sum), blk.c)
		default:
			res := sortnet.LargestSum(em, blk.exprs, blk.kc, name)
			outs[i] = cpOut{res.Vars, res.Constraints + 1}
			b.addCPConstraint(em, name, blk.l, use.Clone().AddExpr(1, res.Sum), blk.c)
		}
	}, func(i, _, _ int) {
		b.encVars += outs[i].vars
		b.encCons += outs[i].cons
	})
	return nil
}

// addCPConstraint installs a control-plane safety bound for link l: a hard
// capacity constraint for MaxThroughput, the fault-MLU coupling for MinMLU
// (§5.4), or the expandable form for PlanCapacity. When em is a detached
// batch the shared MLUfault/expansion variables must already exist (see
// controlPlane's phase split); the lazy creation below only fires on serial
// emitters (demandFFC).
func (b *builder) addCPConstraint(em lp.Emitter, name string, l topology.LinkID, load *lp.Expr, c float64) {
	switch b.s.Opts.Objective {
	case MinMLU:
		if !b.haveMLUFault {
			b.mluFaultVar = b.model.NewVar("MLUfault", 0, lp.Inf)
			b.haveMLUFault = true
		}
		load.Add(-c, b.mluFaultVar)
		em.AddNamed(name, load, lp.LE, 0)
	case PlanCapacity:
		load.Add(-1, b.expandVar(l))
		em.AddNamed(name, load, lp.LE, c)
	default:
		em.AddNamed(name, load, lp.LE, c)
	}
}

func (b *builder) objective() {
	switch b.s.Opts.Objective {
	case MinMLU:
		obj := lp.NewExpr().Add(1, b.mluVar)
		if b.haveMLUFault {
			obj.Add(b.s.Opts.MLUSigma, b.mluFaultVar)
		}
		b.model.Minimize(obj)
	case PlanCapacity:
		obj := lp.NewExpr()
		for l, v := range b.capVar {
			cost := 1.0
			if b.s.Opts.CapacityCost != nil {
				cost = b.s.Opts.CapacityCost(l)
			}
			obj.Add(cost, v)
		}
		b.model.Minimize(obj)
	default:
		obj := lp.NewExpr()
		for _, f := range b.flows {
			obj.Add(1, b.bVar[f])
		}
		b.model.Maximize(obj)
	}
}

// extract reads the solved LP back into a State.
func (b *builder) extract(sol *lp.Solution) *State {
	st := NewState()
	for _, f := range b.flows {
		rate := clampTiny(sol.Value(b.bVar[f]))
		st.Rate[f] = rate
		ts := b.s.Tun.Tunnels(f)
		alloc := make([]float64, len(ts))
		if b.mice[f] {
			for i := range alloc {
				if b.alive[f][i] {
					alloc[i] = clampTiny(b.miceCoef[f] * rate)
				}
			}
		} else {
			for i := range alloc {
				alloc[i] = clampTiny(sol.Value(b.aVar[f][i]))
			}
		}
		st.Alloc[f] = alloc
	}
	return st
}

func clampTiny(v float64) float64 {
	if v < 1e-9 && v > -1e-9 {
		return 0
	}
	return v
}

func canonLink(net *topology.Network, l topology.LinkID) topology.LinkID {
	if tw := net.Links[l].Twin; tw != topology.None && tw < l {
		return tw
	}
	return l
}

func sortedLinks(m map[topology.LinkID]bool) []topology.LinkID {
	out := make([]topology.LinkID, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedSwitches(m map[topology.SwitchID]bool) []topology.SwitchID {
	out := make([]topology.SwitchID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// forEachCombo calls fn with every size-k index combination from [0,n).
// k = 0 yields the empty combination once.
func forEachCombo(n, k int, fn func([]int)) {
	if k > n {
		k = n
	}
	sel := make([]int, k)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == k {
			fn(sel)
			return
		}
		for i := start; i <= n-(k-pos); i++ {
			sel[pos] = i
			rec(pos+1, i+1)
		}
	}
	rec(0, 0)
}
