package core

import (
	"fmt"
	"math"
	"sort"

	"ffc/internal/lp"
	"ffc/internal/sortnet"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// UpdatePlan is a chain of intermediate configurations A1…Am that moves the
// network from a current configuration to a target such that every adjacent
// transition is congestion-free regardless of the order in which switches
// apply it (Eqn 16), and — with Kc > 0 — remains so while up to Kc switches
// are stuck on any earlier configuration of the chain (§5.2).
//
// Stale switches follow the §4.2 synced-limiter model: a switch stuck on an
// earlier step splits each flow's *current* rate-limited traffic with that
// step's weights. Rate limiters are updated with each step, so shrinking a
// flow's rate immediately defuses its stale-weight risk — which is what
// makes multi-step admission of new flows possible at all.
type UpdatePlan struct {
	Steps []*State
	// Reached reports whether the final step equals the target.
	Reached bool
	// Solves is the number of LPs computed.
	Solves int
}

// PlanUpdate computes a congestion-free multi-step update from prev to
// target, robust to kc cumulative configuration faults. maxSteps bounds the
// chain length. The per-step LP maximizes progress toward the target
// allocation; planning stops early once the target is reachable in one
// final safe transition.
func (s *Solver) PlanUpdate(prev, target *State, kc, maxSteps int) (*UpdatePlan, error) {
	if maxSteps <= 0 {
		maxSteps = 8
	}
	plan := &UpdatePlan{}
	history := []*State{prev}
	cur := prev
	for step := 0; step < maxSteps; step++ {
		if s.transitionSafe(history, target, kc) {
			plan.Steps = append(plan.Steps, target.Clone())
			plan.Reached = true
			return plan, nil
		}
		next, err := s.planOneStep(history, target, kc)
		plan.Solves++
		if err != nil {
			return plan, fmt.Errorf("core: update step %d: %w", step+1, err)
		}
		if statesClose(next, cur) {
			return plan, fmt.Errorf("core: update stalled at step %d (kc=%d)", step+1, kc)
		}
		plan.Steps = append(plan.Steps, next)
		history = append(history, next)
		cur = next
	}
	if s.transitionSafe(history, target, kc) {
		plan.Steps = append(plan.Steps, target.Clone())
		plan.Reached = true
		return plan, nil
	}
	return plan, fmt.Errorf("core: target not reached within %d steps", maxSteps)
}

// planFlows returns the union of flows across states, ordered.
func planFlows(states ...*State) []tunnel.Flow {
	set := map[tunnel.Flow]bool{}
	for _, st := range states {
		for f := range st.Alloc {
			set[f] = true
		}
		for f := range st.Rate {
			set[f] = true
		}
	}
	flows := make([]tunnel.Flow, 0, len(set))
	for f := range set {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	return flows
}

// actualLoadBySrc returns, per link and ingress switch, the traffic st
// actually sends (weights × rate).
func (s *Solver) actualLoadBySrc(st *State) map[topology.LinkID]map[topology.SwitchID]float64 {
	out := map[topology.LinkID]map[topology.SwitchID]float64{}
	for f, rate := range st.Rate {
		if rate == 0 {
			continue
		}
		w := st.Weights(f)
		for _, t := range s.Tun.Tunnels(f) {
			if t.Index >= len(w) || w[t.Index] == 0 {
				continue
			}
			share := rate * w[t.Index]
			for _, l := range t.Links {
				m := out[l]
				if m == nil {
					m = map[topology.SwitchID]float64{}
					out[l] = m
				}
				m[f.Src] += share
			}
		}
	}
	return out
}

// histWeightOnLink returns, per flow, the worst (maximum over history
// configurations) fraction of the flow's rate that lands on each link when
// its ingress is stuck: hw[l][f] = max_j Σ_{t∋l} w^j_{f,t}.
func (s *Solver) histWeightOnLink(history []*State, flows []tunnel.Flow) map[topology.LinkID]map[tunnel.Flow]float64 {
	out := map[topology.LinkID]map[tunnel.Flow]float64{}
	for _, h := range history {
		for _, f := range flows {
			alloc, ok := h.Alloc[f]
			if !ok || sumFloats(alloc) == 0 {
				continue
			}
			w := tunnel.Weights(alloc)
			perLink := map[topology.LinkID]float64{}
			for _, t := range s.Tun.Tunnels(f) {
				if t.Index >= len(w) || w[t.Index] == 0 {
					continue
				}
				for _, l := range t.Links {
					perLink[l] += w[t.Index]
				}
			}
			for l, frac := range perLink {
				m := out[l]
				if m == nil {
					m = map[tunnel.Flow]float64{}
					out[l] = m
				}
				if frac > m[f] {
					m[f] = frac
				}
			}
		}
	}
	return out
}

func sumFloats(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// transitionSafe checks numerically whether moving from the last state of
// history directly to next satisfies Eqn 16 plus the §5.2 FFC condition:
// per link, the max of adjacent-step traffic from each source, plus the
// worst kc sources' stale excess (historical weights × next's rates), must
// fit capacity.
func (s *Solver) transitionSafe(history []*State, next *State, kc int) bool {
	cur := history[len(history)-1]
	flows := planFlows(append(history, next)...)
	curL := s.actualLoadBySrc(cur)
	nextL := s.actualLoadBySrc(next)
	hw := s.histWeightOnLink(history, flows)

	for _, l := range s.Net.Links {
		srcs := map[topology.SwitchID]bool{}
		for v := range curL[l.ID] {
			srcs[v] = true
		}
		for v := range nextL[l.ID] {
			srcs[v] = true
		}
		staleBySrc := map[topology.SwitchID]float64{}
		for f, frac := range hw[l.ID] {
			staleBySrc[f.Src] += frac * next.Rate[f]
		}
		for v := range staleBySrc {
			srcs[v] = true
		}
		var base float64
		var excess []float64
		for v := range srcs {
			m := math.Max(curL[l.ID][v], nextL[l.ID][v])
			base += m
			if e := staleBySrc[v] - m; e > 0 {
				excess = append(excess, e)
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(excess)))
		top := 0.0
		for i := 0; i < kc && i < len(excess); i++ {
			top += excess[i]
		}
		if overThreshold(base+top, s.Net.Links[l.ID].Capacity) {
			return false
		}
	}
	return true
}

// planOneStep solves the per-step LP: maximize progress toward the target
// subject to the transition-safety constraints against the last
// configuration and the stale-weight FFC condition against all earlier
// ones.
func (s *Solver) planOneStep(history []*State, target *State, kc int) (*State, error) {
	cur := history[len(history)-1]
	model := lp.NewModel()
	flows := planFlows(append(history, target)...)

	// Variables: per-tunnel allocation a, per-flow rate r ≤ Σa capped by
	// the target rate. Rates are what limiters enforce; stale-weight risk
	// scales with them.
	aVar := map[tunnel.Flow][]lp.Var{}
	rVar := map[tunnel.Flow]lp.Var{}
	obj := lp.NewExpr()
	for _, f := range flows {
		ts := s.Tun.Tunnels(f)
		vars := make([]lp.Var, len(ts))
		cover := lp.NewExpr()
		for i := range ts {
			tgt := idx(target.Alloc[f], i)
			curA := idx(cur.Alloc[f], i)
			// Never overshoot past max(current, target): keeps steps
			// monotone and the search stable.
			vars[i] = model.NewVar(fmt.Sprintf("a[%v,%d]", f, i), 0, math.Max(tgt, curA))
			cover.Add(1, vars[i])
			// z ≤ a, z ≤ target; progress plus a small shrink incentive.
			z := model.NewVar("z", 0, tgt)
			model.AddGE(lp.NewExpr().Add(1, vars[i]).Add(-1, z), 0)
			obj.Add(1, z)
			obj.Add(-1e-3, vars[i])
		}
		r := model.NewVar(fmt.Sprintf("r[%v]", f), 0, target.Rate[f])
		model.AddGE(cover.Add(-1, r), 0)
		obj.Add(10, r) // rates are the real progress currency
		aVar[f] = vars
		rVar[f] = r
	}

	curL := s.actualLoadBySrc(cur)
	hw := s.histWeightOnLink(history, flows)

	for _, l := range s.Net.Links {
		// New per-source loads (allocation upper-bounds the traffic).
		bySrc := map[topology.SwitchID]*lp.Expr{}
		for _, ft := range s.incidence[l.ID] {
			if vars, ok := aVar[ft.flow]; ok {
				e := bySrc[ft.flow.Src]
				if e == nil {
					e = lp.NewExpr()
					bySrc[ft.flow.Src] = e
				}
				e.Add(1, vars[ft.idx])
			}
		}
		// Stale-weight loads per source: Σ_f hw·r_f.
		staleBySrc := map[topology.SwitchID]*lp.Expr{}
		for f, frac := range hw[l.ID] {
			e := staleBySrc[f.Src]
			if e == nil {
				e = lp.NewExpr()
				staleBySrc[f.Src] = e
			}
			e.Add(frac, rVar[f])
		}

		srcs := map[topology.SwitchID]bool{}
		for v := range bySrc {
			srcs[v] = true
		}
		for v := range curL[l.ID] {
			srcs[v] = true
		}
		for v := range staleBySrc {
			srcs[v] = true
		}
		if len(srcs) == 0 {
			continue
		}
		var srcList []topology.SwitchID
		for v := range srcs {
			srcList = append(srcList, v)
		}
		sort.Slice(srcList, func(i, j int) bool { return srcList[i] < srcList[j] })

		base := lp.NewExpr() // Σ_v M_v with M_v ≥ max(cur, next)
		var excess []*lp.Expr
		for _, v := range srcList {
			m := model.NewVar(fmt.Sprintf("M[e%d,v%d]", l.ID, v), 0, lp.Inf)
			model.AddGE(lp.NewExpr().Add(1, m), curL[l.ID][v])
			if e := bySrc[v]; e != nil {
				model.AddGE(lp.NewExpr().Add(1, m).AddExpr(-1, e), 0)
			}
			base.Add(1, m)
			if kc > 0 {
				if se := staleBySrc[v]; se != nil {
					// G_v ≥ stale(v) − M_v, G_v ≥ 0.
					g := model.NewVar(fmt.Sprintf("G[e%d,v%d]", l.ID, v), 0, lp.Inf)
					model.AddGE(lp.NewExpr().Add(1, g).Add(1, m).AddExpr(-1, se), 0)
					excess = append(excess, lp.NewExpr().Add(1, g))
				}
			}
		}
		c := s.Net.Links[l.ID].Capacity
		if kc > 0 && len(excess) > 0 {
			k := kc
			if k > len(excess) {
				k = len(excess)
			}
			var res sortnet.Result
			if s.Opts.Encoding == Compact {
				res = sortnet.TopKCompact(model, excess, k, fmt.Sprintf("upd[e%d]", l.ID))
			} else {
				res = sortnet.LargestSum(model, excess, k, fmt.Sprintf("upd[e%d]", l.ID))
			}
			base.AddExpr(1, res.Sum)
		}
		model.AddNamed(fmt.Sprintf("trans[e%d]", l.ID), base, lp.LE, c)
	}

	model.Maximize(obj)
	sol, err := model.Solve()
	if err != nil {
		return nil, err
	}
	next := NewState()
	for _, f := range flows {
		alloc := make([]float64, len(aVar[f]))
		for i, v := range aVar[f] {
			alloc[i] = clampTiny(sol.Value(v))
		}
		next.Alloc[f] = alloc
		next.Rate[f] = clampTiny(sol.Value(rVar[f]))
	}
	return next, nil
}

func statesClose(a, b *State) bool {
	diff := 0.0
	for f, av := range a.Alloc {
		bv := b.Alloc[f]
		for i := range av {
			diff += math.Abs(av[i] - idx(bv, i))
		}
	}
	for f, bv := range b.Alloc {
		if _, ok := a.Alloc[f]; ok {
			continue
		}
		for _, x := range bv {
			diff += math.Abs(x)
		}
	}
	for f, ar := range a.Rate {
		diff += math.Abs(ar - b.Rate[f])
	}
	for f, br := range b.Rate {
		if _, ok := a.Rate[f]; !ok {
			diff += math.Abs(br)
		}
	}
	return diff < 1e-6
}
