package faults

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"ffc/internal/topology"
)

func TestLatencyModelQuantiles(t *testing.T) {
	m := NewLatencyModel(
		[]float64{0, 0.5, 1},
		[]time.Duration{0, 100 * time.Millisecond, time.Second})
	if m.Quantile(0) != 0 {
		t.Fatalf("q0 = %v", m.Quantile(0))
	}
	if m.Median() != 100*time.Millisecond {
		t.Fatalf("median = %v", m.Median())
	}
	if m.Quantile(1) != time.Second {
		t.Fatalf("q1 = %v", m.Quantile(1))
	}
	// Interpolation: q=0.25 is halfway between 0 and 100ms.
	if got := m.Quantile(0.25); got != 50*time.Millisecond {
		t.Fatalf("q0.25 = %v, want 50ms", got)
	}
	// Monotone.
	prev := time.Duration(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		v := m.Quantile(p)
		if v < prev {
			t.Fatalf("quantile not monotone at %v", p)
		}
		prev = v
	}
}

func TestLatencyModelMalformedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for malformed model")
		}
	}()
	NewLatencyModel([]float64{0, 0.6}, []time.Duration{0, 1})
}

func TestSamplingMatchesQuantiles(t *testing.T) {
	m := Realistic().PerRule
	rng := rand.New(rand.NewSource(1))
	n := 20000
	var below float64
	med := m.Median()
	for i := 0; i < n; i++ {
		if m.Sample(rng) <= med {
			below++
		}
	}
	frac := below / float64(n)
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("fraction below median = %v, want ≈ 0.5", frac)
	}
}

func TestRealisticVsOptimisticShape(t *testing.T) {
	r, o := Realistic(), Optimistic()
	if r.PerRule.Median() <= o.PerRule.Median() {
		t.Fatal("Realistic per-rule median must exceed Optimistic")
	}
	if o.ConfigFailureRate != 0 {
		t.Fatal("Optimistic must have no config failures")
	}
	if r.ConfigFailureRate != 0.01 {
		t.Fatalf("Realistic failure rate %v, want 0.01 (the paper's 1%%)", r.ConfigFailureRate)
	}
	// §2.3: Optimistic per-rule median 10 ms, worst case ~hundreds of ms.
	if o.PerRule.Median() != 10*time.Millisecond {
		t.Fatalf("Optimistic per-rule median %v, want 10ms", o.PerRule.Median())
	}
	if o.PerRule.Quantile(1) < 200*time.Millisecond {
		t.Fatalf("Optimistic worst case %v, want ≥ 200ms", o.PerRule.Quantile(1))
	}
}

func TestSampleUpdateAdditiveModel(t *testing.T) {
	m := Optimistic()
	rng := rand.New(rand.NewSource(2))
	// With 100 rules at ≥2ms each, total must exceed 200ms and typically
	// land near 100 × median = 1s (§2.3's arithmetic).
	var sum time.Duration
	const n = 200
	for i := 0; i < n; i++ {
		d, failed := m.SampleUpdate(rng)
		if failed {
			t.Fatal("Optimistic update failed; failure rate is 0")
		}
		if d < 200*time.Millisecond {
			t.Fatalf("update %v implausibly fast for 100 rules", d)
		}
		sum += d
	}
	mean := sum / n
	if mean < 500*time.Millisecond || mean > 5*time.Second {
		t.Fatalf("mean update %v outside the §2.3 ballpark (~1-2s)", mean)
	}
}

func TestRealisticUpdatesSometimesFail(t *testing.T) {
	m := Realistic()
	rng := rand.New(rand.NewSource(3))
	fails := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if _, failed := m.SampleUpdate(rng); failed {
			fails++
		}
	}
	rate := float64(fails) / n
	if rate < 0.005 || rate > 0.02 {
		t.Fatalf("observed failure rate %v, want ≈ 0.01", rate)
	}
}

func TestFailureModelRate(t *testing.T) {
	net := topology.SNet()
	m := LNetFailures()
	rng := rand.New(rand.NewSource(4))
	const intervals = 30000
	linkFails, switchFails := 0, 0
	for i := 0; i < intervals; i++ {
		for _, f := range m.SampleInterval(net, rng) {
			switch f.Kind {
			case LinkFailure:
				linkFails++
			case SwitchFailure:
				switchFails++
			}
		}
	}
	// Expected: one link failure per 30 min = per 6 intervals.
	wantLink := float64(intervals) / 6
	if math.Abs(float64(linkFails)-wantLink) > 0.15*wantLink {
		t.Fatalf("link failures %d, want ≈ %v", linkFails, wantLink)
	}
	wantSwitch := float64(intervals) * (5.0 / 360.0)
	if math.Abs(float64(switchFails)-wantSwitch) > 0.25*wantSwitch {
		t.Fatalf("switch failures %d, want ≈ %v", switchFails, wantSwitch)
	}
}

func TestFaultFieldsValid(t *testing.T) {
	net := topology.Testbed()
	m := LNetFailures()
	m.LinkMTBF = time.Minute // crank the rate for coverage
	rng := rand.New(rand.NewSource(5))
	seen := 0
	for i := 0; i < 200; i++ {
		for _, f := range m.SampleInterval(net, rng) {
			seen++
			if f.At < 0 || f.At > m.Interval {
				t.Fatalf("fault time %v outside interval", f.At)
			}
			if f.DownFor < m.MinDown || f.DownFor > m.MaxDown {
				t.Fatalf("DownFor %d outside [%d,%d]", f.DownFor, m.MinDown, m.MaxDown)
			}
			if f.Kind == LinkFailure {
				l := net.Links[f.Link]
				if l.Twin != topology.None && l.Twin < f.Link {
					t.Fatal("link fault not on canonical direction")
				}
			}
		}
	}
	if seen == 0 {
		t.Fatal("no faults sampled at 1-minute MTBF")
	}
}

func TestDeterministicSampling(t *testing.T) {
	net := topology.Testbed()
	m := LNetFailures()
	a := m.SampleInterval(net, rand.New(rand.NewSource(9)))
	b := m.SampleInterval(net, rand.New(rand.NewSource(9)))
	if len(a) != len(b) {
		t.Fatal("nondeterministic fault sampling")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic fault sampling")
		}
	}
}

func TestMeanEstimate(t *testing.T) {
	m := NewLatencyModel([]float64{0, 1}, []time.Duration{0, time.Second})
	mean := m.Mean()
	if mean < 490*time.Millisecond || mean > 510*time.Millisecond {
		t.Fatalf("uniform mean %v, want ≈ 500ms", mean)
	}
}

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	if DeriveSeed(1, 5) != DeriveSeed(1, 5) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for shard := int64(0); shard < 256; shard++ {
			s := DeriveSeed(base, shard)
			if seen[s] {
				t.Fatalf("seed collision at base=%d shard=%d", base, shard)
			}
			seen[s] = true
		}
	}
	// Seed 0 must be usable: shards of base 0 still get distinct streams.
	if DeriveSeed(0, 0) == DeriveSeed(0, 1) {
		t.Fatal("base-0 shards collide")
	}
}
