package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// BenchSchema is the current BENCH_*.json schema version. Readers reject
// files with a larger version so an old gate never silently misreads a
// newer format.
const BenchSchema = 1

// BenchEntry is one benchmark result. Names use go-test convention with
// the "Benchmark" prefix and "-GOMAXPROCS" suffix stripped (see
// NormalizeBenchName), so entries written by ffcbench and entries parsed
// from `go test -bench` output compare directly.
type BenchEntry struct {
	Name     string           `json:"name"`
	NsPerOp  float64          `json:"ns_per_op"`
	Ops      int64            `json:"ops,omitempty"`     // iterations the measurement averaged over
	Cases    int64            `json:"cases,omitempty"`   // fault cases enumerated per op, when meaningful
	Speedup  float64          `json:"speedup,omitempty"` // serial/parallel ratio, when meaningful
	Counters map[string]int64 `json:"counters,omitempty"`
	// Tags mark entries the regression gate must treat specially. The only
	// recognized tag today is BenchTagDegraded: the run had solver-fault
	// injection or a solve deadline active, so its timings measure the
	// degraded control loop, not the solver. Additive: absent in older
	// files, so the schema version stays 1.
	Tags []string `json:"tags,omitempty"`
}

// BenchTagDegraded marks entries measured under solver-fault injection or
// a per-solve deadline; CompareBench excludes them from gating.
const BenchTagDegraded = "degraded"

// Tagged reports whether the entry carries the given tag.
func (e *BenchEntry) Tagged(tag string) bool {
	for _, t := range e.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// BenchFile is the on-disk BENCH_*.json format: the repo's perf
// trajectory and the input to the CI regression gate. Deliberately free
// of timestamps and hostnames so that two runs over the same state are
// byte-identical (WriteBench sorts entries and map keys).
type BenchFile struct {
	Schema     int              `json:"schema"`
	Label      string           `json:"label"` // e.g. "snet", "ci", "baseline"
	Benchmarks []BenchEntry     `json:"benchmarks"`
	Counters   map[string]int64 `json:"counters,omitempty"` // global solver counters for the whole run
}

// Sort orders benchmarks by name, making output deterministic.
func (f *BenchFile) Sort() {
	sort.Slice(f.Benchmarks, func(i, j int) bool { return f.Benchmarks[i].Name < f.Benchmarks[j].Name })
}

// Find returns the entry with the given name, or nil.
func (f *BenchFile) Find(name string) *BenchEntry {
	for i := range f.Benchmarks {
		if f.Benchmarks[i].Name == name {
			return &f.Benchmarks[i]
		}
	}
	return nil
}

// WriteBench writes f as stable, indented JSON (sorted benchmarks;
// encoding/json already sorts map keys).
func WriteBench(w io.Writer, f *BenchFile) error {
	f.Sort()
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteBenchFile writes f to path via WriteBench.
func WriteBenchFile(path string, f *BenchFile) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBench(out, f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ParseBench decodes a BENCH_*.json document and validates its schema.
func ParseBench(data []byte) (*BenchFile, error) {
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	if f.Schema < 1 || f.Schema > BenchSchema {
		return nil, fmt.Errorf("unsupported bench schema %d (want 1..%d)", f.Schema, BenchSchema)
	}
	return &f, nil
}

// ReadBenchFile reads and decodes one BENCH_*.json file.
func ReadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := ParseBench(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// NormalizeBenchName maps a go-test benchmark name to BENCH form: the
// "Benchmark" prefix and the trailing "-<GOMAXPROCS>" go-test appends
// are stripped, sub-benchmark paths are kept.
// "BenchmarkVerifyDataPlaneSNet/serial-8" → "VerifyDataPlaneSNet/serial".
func NormalizeBenchName(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// ParseGoBench parses `go test -bench` output into a BenchFile. Names
// are normalized; when a benchmark appears more than once (-count > 1,
// or several packages) the minimum ns/op is kept — the least-noisy
// estimate, and the generous side for the caller's regression gate.
func ParseGoBench(r io.Reader, label string) (*BenchFile, error) {
	f := &BenchFile{Schema: BenchSchema, Label: label}
	byName := map[string]int{} // name → index in f.Benchmarks
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		ops, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		var ns float64
		found := false
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] == "ns/op" {
				if ns, err = strconv.ParseFloat(fields[i], 64); err == nil {
					found = true
				}
				break
			}
		}
		if !found {
			continue
		}
		name := NormalizeBenchName(fields[0])
		if i, ok := byName[name]; ok {
			if ns < f.Benchmarks[i].NsPerOp {
				f.Benchmarks[i].NsPerOp = ns
				f.Benchmarks[i].Ops = ops
			}
			continue
		}
		byName[name] = len(f.Benchmarks)
		f.Benchmarks = append(f.Benchmarks, BenchEntry{Name: name, NsPerOp: ns, Ops: ops})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	f.Sort()
	return f, nil
}

// Regression is one benchmark whose current ns/op exceeds the baseline
// by more than the gate's allowed ratio.
type Regression struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	Ratio      float64
}

// CompareBench checks current against the union of baseline files.
// The baseline for a name is the MAX ns/op across all files that carry
// it (committed baselines come from different machines; the gate should
// only fire when we regress past the slowest recorded one). Entries in
// current with no baseline are returned in unmatched, never gated.
// Entries tagged BenchTagDegraded — on either side — are excluded from
// gating entirely: degraded-mode timings measure the fallback path, not
// solver performance. Such current entries are returned in ignored, and
// such baseline entries contribute nothing to the reference.
// A regression is current > maxRatio × baseline.
func CompareBench(baselines []*BenchFile, current *BenchFile, maxRatio float64) (regs []Regression, matched, unmatched, ignored []string) {
	base := map[string]float64{}
	for _, b := range baselines {
		if b == nil {
			continue
		}
		for _, e := range b.Benchmarks {
			if e.Tagged(BenchTagDegraded) {
				continue
			}
			if e.NsPerOp > base[e.Name] {
				base[e.Name] = e.NsPerOp
			}
		}
	}
	for i := range current.Benchmarks {
		e := &current.Benchmarks[i]
		if e.Tagged(BenchTagDegraded) {
			ignored = append(ignored, e.Name)
			continue
		}
		ref, ok := base[e.Name]
		if !ok || ref <= 0 {
			unmatched = append(unmatched, e.Name)
			continue
		}
		matched = append(matched, e.Name)
		if e.NsPerOp > maxRatio*ref {
			regs = append(regs, Regression{
				Name:       e.Name,
				BaselineNs: ref,
				CurrentNs:  e.NsPerOp,
				Ratio:      e.NsPerOp / ref,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio > regs[j].Ratio })
	return regs, matched, unmatched, ignored
}
