// Package testbed emulates the paper's §7 evaluation: an 8-site WAN
// (Figure 9) with 1 Gbps inter-site links, geodesic propagation delays, a
// TE controller at New York (s5), link-liveness detection, ingress
// rescaling, and — without FFC — reactive TE recomputation. It produces the
// event timelines of Figure 11 and the resulting packet-loss accounting.
package testbed

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ffc/internal/core"
	"ffc/internal/faults"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// Event is one timeline entry (Figure 11's rows).
type Event struct {
	At   time.Duration
	Kind string
	Site string
	Note string
}

func (e Event) String() string {
	return fmt.Sprintf("%8.1fms  %-22s %-4s %s", float64(e.At)/float64(time.Millisecond), e.Kind, e.Site, e.Note)
}

// Outcome is the result of one fault injection.
type Outcome struct {
	Events []Event
	// LossDuration is how long any link was congested or any traffic
	// blackholed.
	LossDuration time.Duration
	// LostBytes integrates loss (rate-units × seconds).
	LostBytes float64
	// ControllerReacted reports whether the TE controller had to intervene.
	ControllerReacted bool
}

// Emulation is a configured testbed.
type Emulation struct {
	Net *topology.Network
	Tun *tunnel.Set
	// Controller is the controller's site switch (the paper: s5, New York).
	Controller topology.SwitchID
	// DetectDelay is link-failure detection at the adjacent switch (5 ms).
	DetectDelay time.Duration
	// RescaleDelay is the ingress-local rescale time (2 ms).
	RescaleDelay time.Duration
	// ComputeDelay is the controller's TE recomputation time.
	ComputeDelay time.Duration
	// Switches models rule-update latency for reactive fixes.
	Switches faults.SwitchModel
}

// New returns an emulation over the Figure 9 testbed with the paper's
// measured delays.
func New() *Emulation {
	net := topology.Testbed()
	ctrl, _ := net.SwitchByName("s5")
	return &Emulation{
		Net:          net,
		Controller:   ctrl,
		DetectDelay:  5 * time.Millisecond,
		RescaleDelay: 2 * time.Millisecond,
		ComputeDelay: 50 * time.Millisecond,
		Switches:     faults.Optimistic(),
	}
}

// propagation returns the one-way propagation delay between two switches
// (fiber at ~2/3 c, shortest-path geodesic approximated by great circle).
func (e *Emulation) propagation(a, b topology.SwitchID) time.Duration {
	if a == b {
		return 0
	}
	km := e.Net.GeoDistanceKm(a, b)
	const fiberKmPerSec = 200000.0
	return time.Duration(km / fiberKmPerSec * float64(time.Second))
}

// FailLink injects a failure of the given physical link at t=0 under state
// and plays out detection, notification, rescaling, and (if congestion
// persists) the controller reaction. ruleUpdateOverride, when positive,
// replaces the sampled switch-update time for the reactive fix — Figure
// 11(b) vs 11(c) differ only in that number.
func (e *Emulation) FailLink(link topology.LinkID, st *core.State, rng *rand.Rand, ruleUpdateOverride time.Duration) *Outcome {
	out := &Outcome{}
	l := e.Net.Links[link]
	down := map[topology.LinkID]bool{link: true}
	if l.Twin != topology.None {
		down[l.Twin] = true
	}
	add := func(at time.Duration, kind, site, note string) {
		out.Events = append(out.Events, Event{At: at, Kind: kind, Site: site, Note: note})
	}
	siteName := func(v topology.SwitchID) string { return e.Net.Switches[v].Name }
	add(0, "link-failure", siteName(l.Src), fmt.Sprintf("link %s–%s down", siteName(l.Src), siteName(l.Dst)))

	detectAt := e.DetectDelay
	add(detectAt, "failure-detected", siteName(l.Src), "liveness protocol")

	// Which flows lose a tunnel, and when does each ingress rescale?
	type hit struct {
		flow      tunnel.Flow
		rescaleAt time.Duration
		lostRate  float64 // traffic blackholed until rescale
	}
	var hits []hit
	for _, f := range e.Tun.All() {
		rate := st.Rate[f]
		if rate == 0 {
			continue
		}
		w := st.Weights(f)
		var lost float64
		affected := false
		for _, t := range e.Tun.Tunnels(f) {
			if !t.Alive(e.Net, down, nil) {
				affected = true
				lost += rate * w[t.Index]
			}
		}
		if !affected {
			continue
		}
		notify := detectAt + e.propagation(l.Src, f.Src)
		rescale := notify + e.RescaleDelay
		hits = append(hits, hit{f, rescale, lost})
		add(notify, "failure-notified", siteName(f.Src), fmt.Sprintf("flow %s→%s", siteName(f.Src), siteName(f.Dst)))
		add(rescale, "rescaled", siteName(f.Src), "traffic moved to residual tunnels")
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].rescaleAt < hits[j].rescaleAt })

	// Blackhole loss until each ingress rescales.
	var lastRescale time.Duration
	for _, h := range hits {
		out.LostBytes += h.lostRate * h.rescaleAt.Seconds()
		if h.rescaleAt > lastRescale {
			lastRescale = h.rescaleAt
		}
	}
	if len(hits) > 0 {
		add(0, "loss-start", "", "blackhole on failed tunnels")
	}

	// Post-rescale link loads: is anything congested?
	loads := map[topology.LinkID]float64{}
	for _, f := range e.Tun.All() {
		rate := st.Rate[f]
		if rate == 0 {
			continue
		}
		tl := e.Tun.Rescale(f, st.Weights(f), rate, down, nil)
		for _, t := range e.Tun.Tunnels(f) {
			if tl[t.Index] == 0 {
				continue
			}
			for _, lk := range t.Links {
				loads[lk] += tl[t.Index]
			}
		}
	}
	var overloadRate float64
	var congested []topology.LinkID
	for lk, load := range loads {
		if down[lk] {
			continue
		}
		if over := load - e.Net.Links[lk].Capacity; over > 1e-9 {
			overloadRate += over
			congested = append(congested, lk)
		}
	}
	sort.Slice(congested, func(i, j int) bool { return congested[i] < congested[j] })

	if overloadRate <= 0 {
		add(lastRescale, "loss-stop", "", "no congestion after rescaling (FFC)")
		out.LossDuration = lastRescale
		sort.SliceStable(out.Events, func(i, j int) bool { return out.Events[i].At < out.Events[j].At })
		return out
	}

	// Reactive path: controller hears, recomputes, updates the switches.
	for _, lk := range congested {
		add(lastRescale, "congestion-start", siteName(e.Net.Links[lk].Src),
			fmt.Sprintf("link %s–%s over capacity", siteName(e.Net.Links[lk].Src), siteName(e.Net.Links[lk].Dst)))
	}
	out.ControllerReacted = true
	heard := detectAt + e.propagation(l.Src, e.Controller)
	add(heard, "controller-notified", siteName(e.Controller), "")
	computed := heard + e.ComputeDelay
	add(computed, "te-recomputed", siteName(e.Controller), "new traffic distribution")

	applyTime := ruleUpdateOverride
	if applyTime <= 0 {
		applyTime, _ = e.Switches.SampleUpdate(rng)
	}
	// The controller updates the congested flows' ingresses; the slowest
	// gates relief. Propagation controller→ingress plus rule updates.
	var fixedAt time.Duration
	for _, f := range e.Tun.All() {
		if st.Rate[f] == 0 {
			continue
		}
		at := computed + e.propagation(e.Controller, f.Src) + applyTime
		if at > fixedAt {
			fixedAt = at
		}
	}
	add(fixedAt, "update-applied", "", "congestion relieved")
	add(fixedAt, "loss-stop", "", "")
	out.LostBytes += overloadRate * (fixedAt - lastRescale).Seconds()
	out.LossDuration = fixedAt

	sort.SliceStable(out.Events, func(i, j int) bool { return out.Events[i].At < out.Events[j].At })
	return out
}

// Fig10Setup reconstructs the §7 experiment: the two testbed flows s3→s7
// and s4→s5 (1 Gbps each) with hand-laid tunnels, plus the FFC and non-FFC
// traffic distributions of Figure 10. The non-FFC distribution backs
// s3→s7 with the tunnel through s4–s5, so when link s6–s7 fails the
// rescaled gigabit lands on s4–s5 (already carrying 0.5) and congests it;
// the FFC distribution backs it with s3–s5–s7 and moves s4→s5's overflow
// onto s4–s6–s5, which survives any single link failure.
func Fig10Setup() (net *topology.Network, tun *tunnel.Set, ffc, plain *core.State, err error) {
	net = topology.Testbed()
	get := func(name string) topology.SwitchID {
		id, ok := net.SwitchByName(name)
		if !ok {
			panic("testbed: missing switch " + name)
		}
		return id
	}
	s3, s4, s5, s6, s7 := get("s3"), get("s4"), get("s5"), get("s6"), get("s7")
	f37 := tunnel.Flow{Src: s3, Dst: s7}
	f45 := tunnel.Flow{Src: s4, Dst: s5}

	mk := func(f tunnel.Flow, hops ...topology.SwitchID) *tunnel.Tunnel {
		t := &tunnel.Tunnel{Flow: f, Switches: hops}
		for i := 0; i+1 < len(hops); i++ {
			l := net.FindLink(hops[i], hops[i+1])
			if l == topology.None {
				panic("testbed: missing link in hand-laid tunnel")
			}
			t.Links = append(t.Links, l)
		}
		return t
	}
	tun = tunnel.NewSet(net)
	tun.Add(f37,
		mk(f37, s3, s6, s7),     // primary
		mk(f37, s3, s4, s5, s7), // non-FFC backup (shares link s4–s5)
		mk(f37, s3, s5, s7),     // FFC backup
	)
	tun.Add(f45,
		mk(f45, s4, s5),     // direct
		mk(f45, s4, s3, s5), // non-FFC overflow path
		mk(f45, s4, s6, s5), // FFC overflow path (Fig 10's difference)
	)

	plain = core.NewState()
	plain.Rate[f37], plain.Alloc[f37] = 1, []float64{0.9, 0.1, 0}
	plain.Rate[f45], plain.Alloc[f45] = 1, []float64{0.5, 0.5, 0}

	ffc = core.NewState()
	ffc.Rate[f37], ffc.Alloc[f37] = 1, []float64{0.9, 0, 0.1}
	ffc.Rate[f45], ffc.Alloc[f45] = 1, []float64{0.5, 0, 0.5}

	if v := core.VerifyDataPlane(net, tun, ffc, 1, 0, nil); v != nil {
		return nil, nil, nil, nil, fmt.Errorf("testbed: FFC Fig 10 state not 1-link safe: %+v", v)
	}
	return net, tun, ffc, plain, nil
}
