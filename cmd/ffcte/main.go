// Command ffcte is a one-shot FFC TE solver: it reads a topology and a
// demands file (JSON), computes a traffic distribution at the requested
// protection level, and writes the configuration as JSON.
//
//	ffcte -topo net.json -demands d.json -kc 2 -ke 1 -kv 0 > state.json
//
// With -prev it computes relative to an existing configuration (required
// for kc > 0; the previous state file must have been produced by ffcte on
// the same topology). With -verify it exhaustively checks the result
// against every fault combination at the protection level before printing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ffc/internal/core"
	"ffc/internal/obs"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
	"ffc/internal/wire"
)

func main() {
	var (
		topoPath   = flag.String("topo", "", "topology JSON (required; see cmd/topogen)")
		demPath    = flag.String("demands", "", "demands JSON (required)")
		prevPath   = flag.String("prev", "", "previous state JSON (for kc > 0)")
		kc         = flag.Int("kc", 0, "control-plane protection level")
		ke         = flag.Int("ke", 0, "link-failure protection level")
		kv         = flag.Int("kv", 0, "switch-failure protection level")
		tunnels    = flag.Int("tunnels", 6, "tunnels per flow")
		p          = flag.Int("p", 1, "max tunnels of a flow per physical link")
		q          = flag.Int("q", 3, "max tunnels of a flow per intermediate switch")
		encoding   = flag.String("encoding", "sortnet", "bounded M-sum encoding: sortnet, compact, naive")
		objective  = flag.String("objective", "throughput", "objective: throughput, mlu, maxmin")
		verifyFlag = flag.Bool("verify", false, "exhaustively verify the guarantee (small networks)")
		warm       = flag.Bool("warm", false, "warm-start successive LP solves from the previous basis (used by -objective maxmin's iterations)")
		template   = flag.Bool("template", true, "reuse the LP model template across -objective maxmin's iterations; -template=false forces scratch builds")
		par        = flag.Int("parallel", 0, "verification and LP constraint-emission workers (<=0 = all cores, 1 = serial)")
		statsFlag  = flag.Bool("stats", false, "print the solver/verifier counter and latency breakdown to stderr")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/obs on this address")
		deadline   = flag.Duration("solver-deadline", 0, "solve budget; on a budget hit the best feasible configuration found so far is emitted with a warning (0 = unbounded)")
		injectKind = flag.String("inject-solver", "", "inject a controller fault for testing: timeout (start with the budget expired) or crash (panic inside the simplex)")
	)
	flag.Parse()
	if *topoPath == "" || *demPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *statsFlag {
		obs.Enable()
	}
	if *debugAddr != "" {
		addr, err := obs.Serve(*debugAddr)
		if err != nil {
			fatalf("debug server: %v", err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/obs (pprof, vars)\n", addr)
	}

	var net topology.Network
	mustReadJSON(*topoPath, &net)
	demBytes, err := os.ReadFile(*demPath)
	if err != nil {
		fatalf("%v", err)
	}
	demands, err := wire.ParseDemands(&net, demBytes)
	if err != nil {
		fatalf("%v", err)
	}

	var flows []tunnel.Flow
	for _, f := range demands.Flows() {
		flows = append(flows, f)
	}
	set := tunnel.Layout(&net, flows, tunnel.LayoutConfig{TunnelsPerFlow: *tunnels, P: *p, Q: *q})

	opts := core.Options{MiceFraction: 0.01, OldLoadSkip: 1e-5, DisableTemplate: !*template}
	if *par <= 0 {
		opts.BuildWorkers = -1 // all cores, matching -parallel's convention
	} else {
		opts.BuildWorkers = *par
	}
	switch *encoding {
	case "sortnet":
		opts.Encoding = core.SortNet
	case "compact":
		opts.Encoding = core.Compact
	case "naive":
		opts.Encoding = core.Naive
	default:
		fatalf("unknown encoding %q", *encoding)
	}
	if *objective == "mlu" {
		opts.Objective = core.MinMLU
	}
	solver := core.NewSolver(&net, set, opts)

	prev := core.NewState()
	if *prevPath != "" {
		blob, err := os.ReadFile(*prevPath)
		if err != nil {
			fatalf("%v", err)
		}
		prev, err = wire.ParseState(&net, set, blob)
		if err != nil {
			fatalf("prev state: %v", err)
		}
	}

	prot := core.Protection{Kc: *kc, Ke: *ke, Kv: *kv}
	in := core.Input{Demands: demands, Prot: prot, Prev: prev}
	in.Budget.Deadline = *deadline
	switch *injectKind {
	case "":
	case "timeout":
		in.Budget.Deadline = -time.Nanosecond // expired before the first pivot
	case "crash":
		in.Budget.Hook = func(int) { panic("ffcte: injected solver crash") }
	default:
		fatalf("unknown -inject-solver %q (want timeout or crash)", *injectKind)
	}
	var st *core.State
	var stats *core.Stats
	if *objective == "maxmin" {
		var res *core.MaxMinResult
		var merr error
		if *warm {
			res, merr = solver.NewSession().SolveMaxMin(in, 2, 0)
		} else {
			res, merr = solver.SolveMaxMin(in, 2, 0)
		}
		if merr != nil {
			fatalf("solve: %v", merr)
		}
		st, stats = res.State, &res.TotalStats
	} else {
		st, stats, err = solver.Solve(in)
		if err != nil {
			// A budget hit with a feasible best-so-far point still yields a
			// usable (congestion-free, just suboptimal) configuration: emit
			// it and warn, rather than leaving the caller with nothing.
			if st != nil && stats != nil && stats.Outcome == core.OutcomeBudgetHit {
				fmt.Fprintf(os.Stderr, "ffcte: warning: %v; emitting the best feasible configuration found\n", err)
			} else {
				fatalf("solve: %v (outcome %v)", err, stats.Outcome)
			}
		}
	}

	if *verifyFlag {
		if v := core.VerifyDataPlaneN(&net, set, st, prot.Ke, prot.Kv, nil, *par); v != nil {
			fatalf("verification failed (data plane): %+v", v)
		}
		if prot.Kc > 0 {
			if v := core.VerifyControlPlaneN(&net, set, st, prev, prot.Kc, opts.RateLimiter, nil, *par); v != nil {
				fatalf("verification failed (control plane): %+v", v)
			}
		}
		fmt.Fprintln(os.Stderr, "verification passed: congestion-free under all fault cases at", prot)
	}

	fmt.Fprintf(os.Stderr, "solved: %d vars, %d constraints, %d iterations, %v; throughput %.4g/%.4g\n",
		stats.Vars, stats.Constraints, stats.Iters, stats.SolveTime.Round(0), st.TotalRate(), demands.Total())
	if *statsFlag {
		fmt.Fprintf(os.Stderr, "solver: build %v, solve %v; phase1 %d/%d iters, %d reinversions, %d devex resets, %d bound flips, basis nnz %d, presolve -%d rows -%d cols\n",
			stats.BuildTime.Round(0), stats.SolveTime.Round(0),
			stats.LP.Phase1Iters, stats.LP.Iters, stats.LP.Reinversions, stats.LP.DevexResets,
			stats.LP.BoundFlips, stats.LP.BasisNnz, stats.LP.PresolveRows, stats.LP.PresolveCols)
		fmt.Fprintln(os.Stderr)
		obs.Default().WriteText(os.Stderr)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(wire.EncodeState(&net, set, demands, st)); err != nil {
		fatalf("%v", err)
	}
}

func mustReadJSON(path string, v interface{}) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		fatalf("parsing %s: %v", path, err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ffcte: "+format+"\n", args...)
	os.Exit(1)
}
