package obs

import "time"

// Span is a value-type hierarchical timer. StartSpan("core.solve")
// followed by Child("build") records into the histograms "core.solve"
// and "core.solve/build"; exporters render the "/"-joined paths as a
// tree. A Span started while the layer is disabled is inert: Child and
// End on it are no-ops and never call time.Now, so wrapping hot paths in
// spans costs one atomic load when -stats is off.
//
// Spans are values, not pointers — starting and ending one allocates
// nothing beyond the child path string (built once per span, off the
// per-iteration path).
type Span struct {
	path  string
	start time.Time
	r     *Registry
}

// StartSpan begins a root span recording into the Default registry.
// Returns an inert span when the layer is disabled.
func StartSpan(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	return Span{path: name, start: time.Now(), r: def}
}

// Child begins a sub-span whose path is parent.path + "/" + name.
// Children of an inert span are inert.
func (s Span) Child(name string) Span {
	if s.r == nil {
		return Span{}
	}
	return Span{path: s.path + "/" + name, start: time.Now(), r: s.r}
}

// End records the elapsed time into the histogram named by the span's
// path and returns it. Inert spans return 0.
func (s Span) End() time.Duration {
	if s.r == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.Histogram(s.path).Observe(d.Nanoseconds())
	return d
}

// Active reports whether the span is recording (false when it was
// started while the layer was disabled).
func (s Span) Active() bool { return s.r != nil }
