package tunnel

import (
	"math/rand"
	"testing"

	"ffc/internal/topology"
)

// bridgeTrap builds the topology where greedy disjoint paths fail: the
// shortest path uses a "bridge" link shared between the only two disjoint
// routes. Suurballe must still find the pair.
//
//	s ─ a ─ b ─ t        short route via the bridge a─b
//	s ─ c ─ a            west detour
//	b ─ d ─ t            east detour
//
// Greedy takes s-a-b-t; banning its links leaves s-c-a (dead end: a─b
// banned) — no second path. The true pair is s-a-…? Actually the two
// disjoint routes are s-a-b-t is NOT part of either: s-c-a-b-d-t and
// s-a-…: the pair is {s-a-b-d-t? shares a-b}. Construct precisely below.
func bridgeTrap(t *testing.T) (*topology.Network, topology.SwitchID, topology.SwitchID) {
	t.Helper()
	net := topology.NewNetwork("trap")
	s := net.AddSwitch("s", "s", 0, 0)
	a := net.AddSwitch("a", "a", 0, 1)
	b := net.AddSwitch("b", "b", 0, 2)
	tt := net.AddSwitch("t", "t", 0, 3)
	c := net.AddSwitch("c", "c", 1, 1)
	d := net.AddSwitch("d", "d", 1, 2)
	// Disjoint pair: s-a-d-t and s-c-b-t. Greedy shortest: s-a-b-t
	// (if a-b exists and is shortest) which blocks both routes' middles.
	net.AddDuplex(s, a, 1)
	net.AddDuplex(a, b, 1)
	net.AddDuplex(b, tt, 1)
	net.AddDuplex(s, c, 1)
	net.AddDuplex(c, b, 1)
	net.AddDuplex(a, d, 1)
	net.AddDuplex(d, tt, 1)
	return net, s, tt
}

func TestDisjointPairBeatsGreedy(t *testing.T) {
	net, s, dst := bridgeTrap(t)
	pair := DisjointPair(net, s, dst, nil)
	if len(pair) != 2 {
		t.Fatalf("Suurballe found %d paths, want 2", len(pair))
	}
	used := map[topology.LinkID]bool{}
	for _, p := range pair {
		v := s
		for _, l := range p {
			lk := net.Links[l]
			if lk.Src != v {
				t.Fatalf("broken path %v", p)
			}
			v = lk.Dst
			can := l
			if lk.Twin != topology.None && lk.Twin < l {
				can = lk.Twin
			}
			if used[can] {
				t.Fatalf("paths share physical link %d", can)
			}
			used[can] = true
		}
		if v != dst {
			t.Fatalf("path does not reach t: %v", p)
		}
	}
}

func TestLayoutUsesSuurballeSeed(t *testing.T) {
	net, s, dst := bridgeTrap(t)
	set := Layout(net, []Flow{{Src: s, Dst: dst}}, LayoutConfig{TunnelsPerFlow: 2, P: 1, Q: 3})
	if got := len(set.Tunnels(Flow{Src: s, Dst: dst})); got != 2 {
		t.Fatalf("layout produced %d tunnels, want 2 (greedy-only finds 1 here)", got)
	}
	p, _ := set.PQ(Flow{Src: s, Dst: dst})
	if p != 1 {
		t.Fatalf("p = %d, want 1", p)
	}
}

func TestDisjointPairNoPairExists(t *testing.T) {
	// A pure chain has exactly one path.
	net := topology.NewNetwork("chain")
	a := net.AddSwitch("a", "a", 0, 0)
	b := net.AddSwitch("b", "b", 0, 1)
	c := net.AddSwitch("c", "c", 0, 2)
	net.AddDuplex(a, b, 1)
	net.AddDuplex(b, c, 1)
	pair := DisjointPair(net, a, c, nil)
	if len(pair) != 1 {
		t.Fatalf("%d paths on a chain, want 1", len(pair))
	}
}

func TestDisjointPairUnreachable(t *testing.T) {
	net := topology.NewNetwork("u")
	a := net.AddSwitch("a", "a", 0, 0)
	b := net.AddSwitch("b", "b", 0, 1)
	if pair := DisjointPair(net, a, b, nil); pair != nil {
		t.Fatalf("expected nil, got %v", pair)
	}
}

func TestDisjointPairRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(6)
		net := topology.NewNetwork("r")
		for i := 0; i < n; i++ {
			net.AddSwitch("sw", "s", float64(i), 0)
		}
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			net.AddDuplex(topology.SwitchID(perm[i]), topology.SwitchID(perm[(i+1)%n]), 1)
		}
		for i := 0; i < n/2; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b && net.FindLink(topology.SwitchID(a), topology.SwitchID(b)) == topology.None {
				net.AddDuplex(topology.SwitchID(a), topology.SwitchID(b), 1)
			}
		}
		src := topology.SwitchID(rng.Intn(n))
		dst := topology.SwitchID(rng.Intn(n))
		if src == dst {
			continue
		}
		pair := DisjointPair(net, src, dst, nil)
		// A ring is 2-edge-connected: a disjoint pair always exists.
		if len(pair) != 2 {
			t.Fatalf("trial %d: %d paths on a 2-edge-connected graph", trial, len(pair))
		}
		used := map[topology.LinkID]bool{}
		for _, p := range pair {
			v := src
			for _, l := range p {
				lk := net.Links[l]
				if lk.Src != v {
					t.Fatalf("trial %d: disconnected path", trial)
				}
				v = lk.Dst
				can := l
				if lk.Twin != topology.None && lk.Twin < l {
					can = lk.Twin
				}
				if used[can] {
					t.Fatalf("trial %d: shared physical link", trial)
				}
				used[can] = true
			}
			if v != dst {
				t.Fatalf("trial %d: wrong endpoint", trial)
			}
		}
	}
}
