package sim

import (
	"math/rand"
	"sort"
	"time"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/faults"
	"ffc/internal/obs"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// obsIntervalSolve is the per-interval TE solve latency distribution for
// simulated scenarios (one sample per interval per priority class).
var obsIntervalSolve = obs.NewHistogram("sim.interval_solve")

// intervalState is the working state of one simulated TE interval.
type intervalState struct {
	sc      *Scenario
	cfg     *RunConfig
	rng     *rand.Rand
	solver  *core.Solver
	res     *Result
	classes []demand.Priority
	// sessions, when non-nil, holds one core.Session per class for
	// warm-started interval re-solves (RunConfig.WarmStart).
	sessions []*core.Session

	downLinks    map[topology.LinkID]bool
	downSwitches map[topology.SwitchID]bool
	demands      []demand.Matrix
	states       []*core.State
	prev         []*core.State

	// classProt is the protection each class's installed state actually
	// achieved (core.None after the unprotected infeasibility retry or a
	// degraded fallback); classDegraded is the per-class degradation
	// reason. Both feed RunConfig.OnPlan.
	classProt     []core.Protection
	classDegraded []string

	// staleUntil maps ingress switches whose configuration update failed
	// to the moment their repair completes.
	staleUntil map[topology.SwitchID]time.Duration

	striking []activeFault

	// solverFault is this interval's injected controller failure, if any.
	solverFault *faults.SolverFaultKind
	// degraded is set to the reason the interval fell back to the
	// last-good allocation ("" when all solves landed).
	degraded string
}

// solveTE computes this interval's TE per class, cascading residual
// capacity (§5.1). On LP infeasibility (possible when heavy faults shrink
// the network below the protection level), the run falls back to
// unprotected TE for the interval, mirroring the paper's "only big, rare
// faults are handled reactively". Every other solve failure — a missed
// deadline, a crashed solver, a plan arriving after its installation
// window — degrades the class to its last successfully installed
// allocation via core.Degrade; solveTE itself never fails on solver
// trouble, which is the whole point of the robust control loop.
func (iv *intervalState) solveTE(prev []*core.State) error {
	iv.prev = prev
	iv.states = make([]*core.State, len(iv.classes))
	iv.classProt = make([]core.Protection, len(iv.classes))
	iv.classDegraded = make([]string, len(iv.classes))
	residual := map[topology.LinkID]float64{}
	for _, l := range iv.sc.Net.Links {
		residual[l.ID] = l.Capacity
	}
	for ci := range iv.classes {
		prot := iv.cfg.Prot
		if iv.cfg.Multi != nil {
			prot = iv.cfg.Multi.Prot[iv.classes[ci]]
		}
		in := core.Input{
			Demands:      iv.demands[ci],
			Prot:         prot,
			Prev:         prev[ci],
			Capacity:     cloneCaps(residual),
			DownLinks:    iv.downLinks,
			DownSwitches: iv.downSwitches,
		}
		in.Budget.Deadline = iv.cfg.SolverDeadline
		in.Budget.Ctx = iv.sc.Ctx
		injected := ""
		if iv.solverFault != nil {
			switch *iv.solverFault {
			case faults.SolverTimeout:
				// The controller missed its window: the solve starts with
				// its deadline already expired, driving the real budget
				// machinery rather than a simulated shortcut.
				in.Budget.Deadline = -time.Nanosecond
				injected = "timeout"
			case faults.SolverCrash:
				in.Budget.Hook = func(int) { panic("faults: injected solver crash") }
				injected = "crash"
			case faults.SolverStale:
				injected = "stale"
			}
		}
		var st *core.State
		var stats *core.Stats
		var err error
		if iv.sessions != nil {
			st, stats, err = iv.sessions[ci].Solve(in)
		} else {
			st, stats, err = iv.solver.Solve(in)
		}
		achieved := prot
		if err != nil && stats != nil && stats.Outcome == core.OutcomeInfeasible {
			// Retry unprotected (always cold: a one-shot solve with a
			// different protection shape cannot reuse the session model).
			in.Prot = core.None
			st, stats, err = iv.solver.Solve(in)
			if err == nil {
				iv.res.InfeasibleIntervals++
				achieved = core.None
			}
		}
		reason := ""
		switch {
		case err != nil && iv.sc.Ctx != nil && iv.sc.Ctx.Err() != nil:
			// The run is being cancelled; the interval degrades to last-good
			// and the interval loop exits with Result.Interrupted.
			reason = "cancelled"
		case err != nil:
			reason = degradeReason(stats, injected)
		case injected == "stale":
			// The fresh plan missed its installation window; the network
			// keeps running the previous configuration.
			reason = "stale"
		}
		if reason != "" {
			if iv.degraded == "" {
				iv.degraded = reason
				core.NoteDegradedInterval()
			}
			achieved = core.None // last-good rescale promises no protection
			st = core.Degrade(iv.sc.Net, iv.sc.Tun, prev[ci], iv.downLinks, iv.downSwitches)
			// The installed rate limiters persist, but flows only offer
			// this interval's demand.
			for f, r := range st.Rate {
				if d := iv.demands[ci][f]; r > d {
					st.Rate[f] = d
				}
			}
		}
		if err == nil && stats != nil {
			iv.res.SolveTime.Add(stats.SolveTime.Seconds())
			if obs.Enabled() {
				obsIntervalSolve.ObserveDuration(stats.SolveTime)
			}
		}
		iv.states[ci] = st
		iv.classProt[ci] = achieved
		iv.classDegraded[ci] = reason
		// §5.1: lower classes use capacity net of the traffic higher
		// classes *actually* send (weights×rate), not their allocations —
		// the protection headroom is reusable because priority queueing
		// sheds the lower class when faults make the higher one expand.
		for l, u := range st.ActualLinkLoads(iv.sc.Tun) {
			residual[l] -= u
			if residual[l] < 0 {
				residual[l] = 0
			}
		}
	}
	return nil
}

// degradeReason names why a class's solve failed, for IntervalRecord
// accounting; injected faults report their own kind.
func degradeReason(stats *core.Stats, injected string) string {
	if injected != "" {
		return injected
	}
	if stats == nil {
		return "solver-error"
	}
	switch stats.Outcome {
	case core.OutcomeBudgetHit:
		return "deadline"
	case core.OutcomeInfeasible:
		// The unprotected retry failed too (e.g. the network is partitioned
		// below the demand set): serve the last-good plan.
		return "infeasible"
	}
	return "solver-error"
}

func cloneCaps(m map[topology.LinkID]float64) map[topology.LinkID]float64 {
	out := make(map[topology.LinkID]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sampleControlFaults decides which ingress switches fail to apply this
// interval's configuration and when they get repaired. Successful updates
// are treated as instantaneous at interval start (transient mixing during
// rollout affects FFC and the baseline identically and is the subject of
// §5.2's multi-step updates, simulated separately).
func (iv *intervalState) sampleControlFaults() {
	iv.staleUntil = map[topology.SwitchID]time.Duration{}
	seen := map[topology.SwitchID]bool{}
	for _, f := range iv.sc.Tun.All() {
		if seen[f.Src] || iv.downSwitches[f.Src] {
			continue
		}
		seen[f.Src] = true
		if iv.rng.Float64() >= iv.sc.Switches.ConfigFailureRate {
			continue
		}
		// Repair: detection plus repeated update attempts.
		repair := iv.cfg.ControlDetect
		for {
			d, failed := iv.sc.Switches.SampleUpdate(iv.rng)
			if !failed {
				repair += d
				break
			}
			repair += iv.cfg.ControlDetect
		}
		iv.staleUntil[f.Src] = repair
	}
}

// reactionTime samples how long the controller takes to compute and install
// a new TE after detecting an event at time at. The computation term is a
// fixed Table-2-scale constant (not the measured wall time, which would
// make runs nondeterministic).
func (iv *intervalState) reactionTime(at time.Duration) time.Duration {
	compute := 500 * time.Millisecond
	// Network-wide update: the slowest of the ingress switches bounds it.
	var worst time.Duration
	for i := 0; i < 8; i++ {
		d, failed := iv.sc.Switches.SampleUpdate(iv.rng)
		if failed {
			d = iv.cfg.ControlDetect * 4
		}
		if d > worst {
			worst = d
		}
	}
	return at + iv.cfg.ControlDetect/2 + compute + worst
}

// integrate walks the interval's piecewise-constant segments, accumulates
// blackhole and congestion losses, and returns the interval's worst link
// oversubscription ratio.
func (iv *intervalState) integrate() float64 {
	T := iv.sc.Interval

	// Determine the reaction moment, if any.
	reactAt := time.Duration(-1)
	prot := iv.cfg.Prot
	if iv.cfg.Multi != nil {
		prot = iv.cfg.Multi.Prot[demand.High] // strongest class gates reaction
	}
	// Only faults striking after this interval's TE computation count
	// against the protection budget — the interval-start solve already
	// routed around anything that was down.
	linkFaults, switchFaults := 0, 0
	for _, af := range iv.striking {
		if af.Kind == faults.LinkFailure {
			linkFaults++
		} else {
			switchFaults++
		}
		exceeded := linkFaults > prot.Ke || switchFaults > prot.Kv
		if prot == core.None {
			exceeded = true
		}
		if exceeded && reactAt < 0 {
			reactAt = iv.reactionTime(af.At + iv.cfg.DetectDelay)
		}
	}
	// Stale switches repair on their own per-switch timelines (already
	// event points below); no global reaction is modelled for them.
	if reactAt >= 0 {
		iv.res.Reactions++
	}

	// Event points: fault onsets, rescale moments, stale repairs,
	// reaction completion.
	pts := map[time.Duration]bool{0: true, T: true}
	addPt := func(d time.Duration) {
		if d > 0 && d < T {
			pts[d] = true
		}
	}
	for _, af := range iv.striking {
		addPt(af.At)
		addPt(af.At + iv.cfg.DetectDelay)
	}
	for _, until := range iv.staleUntil {
		addPt(until)
	}
	if reactAt > 0 {
		addPt(reactAt)
	}
	var times []time.Duration
	for d := range pts {
		times = append(times, d)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	maxOver := 0.0
	for i := 0; i+1 < len(times); i++ {
		from, to := times[i], times[i+1]
		dur := (to - from).Seconds()
		if dur <= 0 {
			continue
		}
		reacted := reactAt >= 0 && from >= reactAt
		over := iv.segmentLoss(from, dur, reacted)
		if over > maxOver {
			maxOver = over
		}
	}
	iv.res.MaxOversub.Add(maxOver)
	return maxOver
}

// segmentLoss computes the loss rates during [from, from+dur) and
// accumulates bytes into the result; it returns the segment's worst link
// oversubscription ratio. When reacted is true, the controller has already
// rebalanced: congestion and blackholes are considered resolved.
func (iv *intervalState) segmentLoss(from time.Duration, dur float64, reacted bool) float64 {
	if reacted {
		return 0
	}
	net := iv.sc.Net

	// Fault visibility in this segment.
	knownDown := map[topology.LinkID]bool{}
	knownDownSw := map[topology.SwitchID]bool{}
	for l, d := range iv.downLinks {
		if d {
			knownDown[l] = true
		}
	}
	for v := range iv.downSwitches {
		knownDownSw[v] = true
	}
	unknownDead := map[topology.LinkID]bool{}
	unknownDeadSw := map[topology.SwitchID]bool{}
	for _, af := range iv.striking {
		if af.At > from {
			continue // not struck yet
		}
		detected := af.At+iv.cfg.DetectDelay <= from
		switch af.Kind {
		case faults.LinkFailure:
			ids := []topology.LinkID{af.Link}
			if tw := net.Links[af.Link].Twin; tw != topology.None {
				ids = append(ids, tw)
			}
			for _, id := range ids {
				if detected {
					knownDown[id] = true
				} else {
					unknownDead[id] = true
				}
			}
		case faults.SwitchFailure:
			if detected {
				knownDownSw[af.Switch] = true
			} else {
				unknownDeadSw[af.Switch] = true
			}
		}
	}

	// Per-link, per-class loads; blackhole loss accrues directly.
	type linkLoad struct{ byClass []float64 }
	loads := map[topology.LinkID]*linkLoad{}
	for ci := range iv.classes {
		st := iv.states[ci]
		prev := iv.prev[ci]
		for _, f := range iv.sc.Tun.All() {
			rate := st.Rate[f]
			weights := st.Weights(f)
			if until, stale := iv.staleUntil[f.Src]; stale && from < until {
				// Stale ingress: old weights with the new rate (Eqn 8's
				// synced-limiter model) — when the flow existed before.
				if pa, ok := prev.Alloc[f]; ok && sum(pa) > 0 {
					weights = tunnel.Weights(pa)
				}
			}
			if rate == 0 {
				continue
			}
			if knownDownSw[f.Src] || knownDownSw[f.Dst] || unknownDeadSw[f.Src] || unknownDeadSw[f.Dst] {
				// Endpoint dead: everything is lost (blackhole at the
				// edge) until reaction.
				iv.addBlackhole(ci, rate*dur)
				continue
			}
			// Blackhole: traffic sent into undetected-dead tunnels.
			tl := iv.sc.Tun.Rescale(f, weights, rate, knownDown, knownDownSw)
			var alive float64
			for _, t := range iv.sc.Tun.Tunnels(f) {
				share := tl[t.Index]
				if share == 0 {
					continue
				}
				dead := false
				for _, l := range t.Links {
					if unknownDead[l] {
						dead = true
						break
					}
				}
				for _, v := range t.Switches {
					if unknownDeadSw[v] {
						dead = true
						break
					}
				}
				if dead {
					iv.addBlackhole(ci, share*dur)
					continue
				}
				alive += share
				for _, l := range t.Links {
					ll := loads[l]
					if ll == nil {
						ll = &linkLoad{byClass: make([]float64, len(iv.classes))}
						loads[l] = ll
					}
					ll.byClass[ci] += share
				}
			}
			if alive == 0 && sum(tl) == 0 {
				// No residual tunnels at all: the whole rate blackholes.
				iv.addBlackhole(ci, rate*dur)
			}
		}
	}

	// Congestion loss with strict priority queueing (classes are ordered
	// highest first). Links are visited in ID order so accumulated losses
	// are bit-for-bit reproducible (map iteration would perturb float
	// rounding between runs).
	linkIDs := make([]topology.LinkID, 0, len(loads))
	for l := range loads {
		linkIDs = append(linkIDs, l)
	}
	sort.Slice(linkIDs, func(i, j int) bool { return linkIDs[i] < linkIDs[j] })
	maxOver := 0.0
	for _, l := range linkIDs {
		ll := loads[l]
		cp := net.Links[l].Capacity
		var total float64
		remaining := cp
		for ci := range iv.classes {
			load := ll.byClass[ci]
			total += load
			lost := load - remaining
			remaining -= load
			if remaining < 0 {
				remaining = 0
			}
			if lost > 1e-7*cp { // ignore LP-tolerance dust
				iv.addCongestion(ci, lost*dur)
			}
		}
		if over := (total - cp) / cp; over > maxOver && over > 1e-7 {
			maxOver = over
		}
	}
	return maxOver
}

func (iv *intervalState) addBlackhole(ci int, bytes float64) {
	p := iv.classes[ci]
	iv.res.ByPriority[p].BlackholeBytes += bytes
	iv.res.ByPriority[p].LossBytes += bytes
	iv.res.Total.BlackholeBytes += bytes
	iv.res.Total.LossBytes += bytes
}

func (iv *intervalState) addCongestion(ci int, bytes float64) {
	p := iv.classes[ci]
	iv.res.ByPriority[p].CongestionBytes += bytes
	iv.res.ByPriority[p].LossBytes += bytes
	iv.res.Total.CongestionBytes += bytes
	iv.res.Total.LossBytes += bytes
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
