package topology

import (
	"strings"
	"testing"
)

// abileneGraphML is a hand-reduced Internet-Topology-Zoo-style sample
// (Abilene's shape: 5 of its PoPs).
const abileneGraphML = `<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="Latitude" attr.type="double" for="node" id="d29"/>
  <key attr.name="Longitude" attr.type="double" for="node" id="d32"/>
  <key attr.name="label" attr.type="string" for="node" id="d33"/>
  <key attr.name="LinkSpeedRaw" attr.type="double" for="edge" id="d38"/>
  <graph edgedefault="undirected" id="Abilene5">
    <node id="0"><data key="d33">New York</data><data key="d29">40.71</data><data key="d32">-74.00</data></node>
    <node id="1"><data key="d33">Chicago</data><data key="d29">41.85</data><data key="d32">-87.65</data></node>
    <node id="2"><data key="d33">Washington DC</data><data key="d29">38.89</data><data key="d32">-77.03</data></node>
    <node id="3"><data key="d33">Atlanta</data><data key="d29">33.74</data><data key="d32">-84.39</data></node>
    <node id="4"><data key="d33">Indianapolis</data><data key="d29">39.76</data><data key="d32">-86.15</data></node>
    <edge source="0" target="1"><data key="d38">10000000000</data></edge>
    <edge source="0" target="2"><data key="d38">10000000000</data></edge>
    <edge source="2" target="3"/>
    <edge source="1" target="4"/>
    <edge source="3" target="4"><data key="d38">2500000000</data></edge>
    <edge source="1" target="4"/> <!-- parallel edge, must collapse -->
    <edge source="2" target="2"/> <!-- self loop, must be dropped -->
  </graph>
</graphml>`

func TestParseGraphML(t *testing.T) {
	net, err := ParseGraphML(strings.NewReader(abileneGraphML), 10)
	if err != nil {
		t.Fatal(err)
	}
	if net.Name != "Abilene5" {
		t.Fatalf("name %q", net.Name)
	}
	if net.NumSwitches() != 5 {
		t.Fatalf("%d switches, want 5", net.NumSwitches())
	}
	// 5 distinct undirected edges → 10 directed links.
	if net.NumLinks() != 10 {
		t.Fatalf("%d directed links, want 10", net.NumLinks())
	}
	ny, ok := net.SwitchByName("New York")
	if !ok {
		t.Fatal("New York missing")
	}
	if net.Switches[ny].Lat < 40 || net.Switches[ny].Lat > 41 {
		t.Fatalf("NY latitude %v", net.Switches[ny].Lat)
	}
	chi, _ := net.SwitchByName("Chicago")
	l := net.FindLink(ny, chi)
	if l == None {
		t.Fatal("NY–Chicago link missing")
	}
	if net.Links[l].Capacity != 10 {
		t.Fatalf("10 Gbps link parsed as %v", net.Links[l].Capacity)
	}
	atl, _ := net.SwitchByName("Atlanta")
	ind, _ := net.SwitchByName("Indianapolis")
	if la := net.FindLink(atl, ind); la == None || net.Links[la].Capacity != 2.5 {
		t.Fatalf("2.5 Gbps link wrong: %v", net.Links[net.FindLink(atl, ind)].Capacity)
	}
	dc, _ := net.SwitchByName("Washington DC")
	if net.FindLink(atl, dc) == None {
		t.Fatal("default-capacity link missing")
	}
	if !net.Connected() {
		t.Fatal("parsed network disconnected")
	}
	// Geo distances usable for propagation modeling.
	if d := net.GeoDistanceKm(ny, chi); d < 900 || d > 1400 {
		t.Fatalf("NY–Chicago %v km", d)
	}
}

func TestParseGraphMLErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not xml at all",
		"no nodes":     `<graphml><graph id="g"></graph></graphml>`,
		"bad edge ref": `<graphml><graph id="g"><node id="a"/><edge source="a" target="zz"/></graph></graphml>`,
		"dup node":     `<graphml><graph id="g"><node id="a"/><node id="a"/></graph></graphml>`,
	}
	for name, blob := range cases {
		if _, err := ParseGraphML(strings.NewReader(blob), 10); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestParseGraphMLMalformedCoordinates(t *testing.T) {
	// A malformed Latitude/Longitude must fail loudly, naming the node —
	// silently parsing it as 0,0 would corrupt geo-distance modeling.
	const badLat = `<graphml>
	  <key attr.name="Latitude" attr.type="double" for="node" id="k1"/>
	  <graph id="g">
	    <node id="n1"><data key="k1">40.7</data></node>
	    <node id="n2"><data key="k1">forty-one</data></node>
	    <edge source="n1" target="n2"/>
	  </graph>
	</graphml>`
	_, err := ParseGraphML(strings.NewReader(badLat), 10)
	if err == nil {
		t.Fatal("malformed Latitude accepted")
	}
	if !strings.Contains(err.Error(), "n2") || !strings.Contains(err.Error(), "Latitude") {
		t.Fatalf("error does not name the node and attribute: %v", err)
	}

	const badLon = `<graphml>
	  <key attr.name="Longitude" attr.type="double" for="node" id="k2"/>
	  <graph id="g">
	    <node id="n1"><data key="k2">1e</data></node>
	  </graph>
	</graphml>`
	if _, err := ParseGraphML(strings.NewReader(badLon), 10); err == nil || !strings.Contains(err.Error(), "Longitude") {
		t.Fatalf("malformed Longitude: %v", err)
	}
}

func TestParseGraphMLIntoFFCPipeline(t *testing.T) {
	// A parsed real-world-style topology must flow through tunnel layout.
	net, err := ParseGraphML(strings.NewReader(abileneGraphML), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}
