package lp

import "ffc/internal/obs"

// SolveStats details the work one Solve performed. The counters are
// accumulated in plain struct fields on the simplex state as the solver
// always did — the hot loop never touches the obs layer — and published
// to the process-wide registry in one batch per solve.
type SolveStats struct {
	// Iters is total simplex iterations across both phases (== Solution.Iters).
	Iters int
	// Phase1Iters is the portion spent finding a feasible basis.
	Phase1Iters int
	// Reinversions counts basis refactorizations after the initial one.
	Reinversions int
	// DevexResets counts Devex reference-framework resets forced by
	// weight overflow (per-phase initializations are not counted).
	DevexResets int
	// BlandActivations counts falls back to Bland's anti-cycling rule
	// after a long degenerate run.
	BlandActivations int
	// BoundFlips counts nonbasic bound-to-bound steps (no basis change).
	BoundFlips int
	// BasisNnz is the nonzero count of the final basis-inverse
	// representation (eta-file nonzeros for PFI, m² for dense) — the
	// fill-in proxy.
	BasisNnz int
	// PresolveRows and PresolveCols count rows/columns removed before
	// the simplex ran.
	PresolveRows int
	PresolveCols int
	// Warm marks solves that successfully started from a caller-provided
	// basis (SolveFrom with a seated handle).
	Warm bool
	// WarmRepairs counts basic variables demoted while crashing the warm
	// basis against the new bounds/RHS (0 = the old basis was immediately
	// feasible).
	WarmRepairs int
	// WarmFellBack marks solves where a warm basis was provided but could
	// not be seated (structure change, singular basis, non-converging
	// repairs) — the solve ran from the cold crash instead.
	WarmFellBack bool
	// PresolveCached marks solves that reused the previous solve's presolve
	// mapping and reduced model (sparsity pattern unchanged).
	PresolveCached bool
}

// Package-level handles into the Default registry: the publish path is a
// handful of atomic adds, allocation-free.
var (
	obsSolves       = obs.NewCounter("lp.solves")
	obsNotOptimal   = obs.NewCounter("lp.not_optimal")
	obsIters        = obs.NewCounter("lp.iters")
	obsPhase1Iters  = obs.NewCounter("lp.phase1_iters")
	obsReinversions = obs.NewCounter("lp.reinversions")
	obsDevexResets  = obs.NewCounter("lp.devex_resets")
	obsBlandActs    = obs.NewCounter("lp.bland_activations")
	obsBoundFlips   = obs.NewCounter("lp.bound_flips")
	obsPresolveRows = obs.NewCounter("lp.presolve_rows_removed")
	obsPresolveCols = obs.NewCounter("lp.presolve_cols_removed")
	obsBasisNnz     = obs.NewGauge("lp.basis_nnz_max")
	obsWarmSolves   = obs.NewCounter("lp.warm_solves")
	obsWarmRepairs  = obs.NewCounter("lp.warm_repairs")
	obsWarmFellBack = obs.NewCounter("lp.warm_fallbacks")
	obsPreCacheHits = obs.NewCounter("lp.presolve_cache_hits")
	obsBudgetHits   = obs.NewCounter("lp.budget_hits")
)

// publish pushes one solve's stats into the registry.
func (st *SolveStats) publish(status Status) {
	obsSolves.Inc()
	if status != Optimal {
		obsNotOptimal.Inc()
	}
	if status == BudgetExceeded {
		obsBudgetHits.Inc()
	}
	obsIters.Add(int64(st.Iters))
	obsPhase1Iters.Add(int64(st.Phase1Iters))
	obsReinversions.Add(int64(st.Reinversions))
	obsDevexResets.Add(int64(st.DevexResets))
	obsBlandActs.Add(int64(st.BlandActivations))
	obsBoundFlips.Add(int64(st.BoundFlips))
	obsPresolveRows.Add(int64(st.PresolveRows))
	obsPresolveCols.Add(int64(st.PresolveCols))
	obsBasisNnz.SetMax(int64(st.BasisNnz))
	if st.Warm {
		obsWarmSolves.Inc()
	}
	obsWarmRepairs.Add(int64(st.WarmRepairs))
	if st.WarmFellBack {
		obsWarmFellBack.Inc()
	}
	if st.PresolveCached {
		obsPreCacheHits.Inc()
	}
}
