package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("same name must return the same handle")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.SetMax(3)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax lowered the gauge: %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %d, want 9", got)
	}
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("Reset must zero values")
	}
	if r.Counter("a") != c {
		t.Fatal("Reset must keep handle identity")
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < 1000; i++ {
				c.Inc()
				r.Histogram("h").Observe(int64(i))
				r.Gauge("g").SetMax(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 999 {
		t.Fatalf("gauge = %d, want 999", got)
	}
}

func TestHistogramStats(t *testing.T) {
	h := newHistogram()
	if h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for _, v := range []int64{10, 20, 30, 40, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1100 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 10 || h.Max() != 1000 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 220 {
		t.Fatalf("mean=%v", got)
	}
	// Bucketed quantiles are factor-of-two estimates: the median of
	// {10,20,30,40,1000} is 30; accept anything inside the [16,64)
	// bucket span but demand it is far from both tails.
	if q := h.Quantile(0.5); q < 16 || q > 64 {
		t.Fatalf("p50=%d, want within [16,64]", q)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("p100=%d, want 1000 (clamped to max)", q)
	}
	if q := h.Quantile(0); q != 10 {
		t.Fatalf("p0=%d, want 10 (clamped to min)", q)
	}
	h.Observe(-5) // clamps to 0
	if h.Min() != 0 {
		t.Fatalf("negative observation must clamp to 0, min=%d", h.Min())
	}
}

func TestSpanRecordsOnlyWhenEnabled(t *testing.T) {
	defer Disable()
	Disable()
	Default().Reset()

	s := StartSpan("t.root")
	if s.Active() {
		t.Fatal("span started while disabled must be inert")
	}
	if c := s.Child("sub"); c.Active() {
		t.Fatal("child of inert span must be inert")
	}
	s.End()
	if got := Default().Histogram("t.root").Count(); got != 0 {
		t.Fatalf("inert span recorded %d samples", got)
	}

	Enable()
	s = StartSpan("t.root")
	c := s.Child("sub")
	time.Sleep(time.Millisecond)
	c.End()
	s.End()
	if got := Default().Histogram("t.root").Count(); got != 1 {
		t.Fatalf("root span count = %d, want 1", got)
	}
	sub := Default().Histogram("t.root/sub")
	if sub.Count() != 1 || sub.Max() < int64(time.Millisecond)/2 {
		t.Fatalf("child span count=%d max=%d", sub.Count(), sub.Max())
	}
}

func TestSnapshotDeterministicAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("mid").Set(3)
	r.Histogram("root").Observe(100)
	r.Histogram("root/child").Observe(50)

	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two JSON dumps of the same state differ")
	}
	s := r.Snapshot()
	if s.Counters[0].Name != "a.first" || s.Counters[1].Name != "z.last" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}

	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"a.first", "z.last", "mid", "root", "child"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
}
