package sim

import (
	"math/rand"
	"testing"
	"time"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/faults"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// testScenario builds a small but nontrivial scenario: an L-Net-scaled-down
// topology with calibrated demands.
func testScenario(t testing.TB, seed int64, intervals int, scale float64) Scenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := topology.LNet(topology.LNetConfig{Sites: 6}, rng)
	series := demand.Generate(net, demand.Config{Intervals: intervals}, rng)
	flows := FlowsOf(series)
	tun := tunnel.Layout(net, flows, tunnel.LayoutConfig{TunnelsPerFlow: 4})
	solver := core.NewSolver(net, tun, core.Options{})
	k, err := CalibrateScale(solver, series, 0.99, 3)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return Scenario{
		Net: net, Tun: tun,
		Series:   ScaleSeries(series, k*scale),
		Interval: 5 * time.Minute,
		Failures: faults.LNetFailures(),
		Switches: faults.Realistic(),
		Seed:     seed + 1000,
	}
}

func TestCalibrationHitsTarget(t *testing.T) {
	sc := testScenario(t, 1, 6, 1.0)
	// At scale 1, plain TE should satisfy ≈99% of demand on the sampled
	// intervals.
	solver := core.NewSolver(sc.Net, sc.Tun, core.Options{})
	var granted, offered float64
	for _, m := range sc.Series[:3] {
		st, _, err := solver.Solve(core.Input{Demands: m})
		if err != nil {
			t.Fatal(err)
		}
		granted += st.TotalRate()
		offered += m.Total()
	}
	frac := granted / offered
	if frac < 0.96 || frac > 1.0+1e-9 {
		t.Fatalf("satisfaction at scale 1 = %v, want ≈ 0.99", frac)
	}
}

func TestRunBaselineVsFFC(t *testing.T) {
	sc := testScenario(t, 2, 10, 1.0)
	// Crank failure rates so the short run actually sees faults.
	sc.Failures.LinkMTBF = 10 * time.Minute

	base, err := Run(sc, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ffc, err := Run(sc, RunConfig{Prot: core.Protection{Kc: 2, Ke: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Intervals != 10 || ffc.Intervals != 10 {
		t.Fatalf("interval counts: %d/%d", base.Intervals, ffc.Intervals)
	}
	if base.Total.GrantedBytes <= 0 {
		t.Fatal("baseline granted nothing")
	}
	// FFC grants at most the baseline (overhead ≥ 0) and loses at most
	// what the baseline loses.
	if r := ffc.ThroughputRatioVs(base); r > 1.0+1e-6 || r < 0.3 {
		t.Fatalf("throughput ratio %v implausible", r)
	}
	if ffc.Total.LossBytes > base.Total.LossBytes+1e-6 {
		t.Fatalf("FFC lost more than baseline: %v vs %v", ffc.Total.LossBytes, base.Total.LossBytes)
	}
	// Identical seeds ⇒ deterministic repeat.
	again, err := Run(sc, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Total.LossBytes != base.Total.LossBytes || again.Total.GrantedBytes != base.Total.GrantedBytes {
		t.Fatal("simulation not deterministic")
	}
}

func TestRunAccountingConsistency(t *testing.T) {
	sc := testScenario(t, 3, 8, 1.0)
	sc.Failures.LinkMTBF = 15 * time.Minute
	res, err := Run(sc, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Total.LossBytes - (res.Total.BlackholeBytes + res.Total.CongestionBytes); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("loss %v != blackhole %v + congestion %v",
			res.Total.LossBytes, res.Total.BlackholeBytes, res.Total.CongestionBytes)
	}
	if res.Total.DeliveredBytes() > res.Total.GrantedBytes {
		t.Fatal("delivered exceeds granted")
	}
	if res.Total.GrantedBytes > res.Total.DemandBytes+1e-6 {
		t.Fatalf("granted %v exceeds demand %v", res.Total.GrantedBytes, res.Total.DemandBytes)
	}
	if res.SolveTime.N() != 8 {
		t.Fatalf("solve time samples %d, want 8", res.SolveTime.N())
	}
}

func TestRunNoFaultsNoLoss(t *testing.T) {
	sc := testScenario(t, 4, 5, 0.5)
	sc.Failures = faults.FailureModel{} // disabled
	sc.Switches = faults.Optimistic()   // no config failures
	res, err := Run(sc, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.LossBytes != 0 {
		t.Fatalf("loss %v without any faults", res.Total.LossBytes)
	}
	if res.MaxOversub.Max() != 0 {
		t.Fatalf("oversubscription %v without faults", res.MaxOversub.Max())
	}
}

func TestRunMultiPriority(t *testing.T) {
	sc := testScenario(t, 5, 8, 1.0)
	sc.Failures.LinkMTBF = 10 * time.Minute
	rng := rand.New(rand.NewSource(42))
	splits := demand.RandomSplits(FlowsOf(sc.Series), rng)
	multi := &PriorityConfig{Splits: splits}
	multi.Prot[demand.High] = core.Protection{Kc: 3, Ke: 3}
	multi.Prot[demand.Med] = core.Protection{Kc: 2, Ke: 1}
	multi.Prot[demand.Low] = core.None

	res, err := Run(sc, RunConfig{Multi: multi})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByPriority[demand.High].GrantedBytes <= 0 ||
		res.ByPriority[demand.Med].GrantedBytes <= 0 ||
		res.ByPriority[demand.Low].GrantedBytes <= 0 {
		t.Fatalf("some class granted nothing: %+v", res.ByPriority)
	}
	// The paper's headline: high-priority loss is (near) zero while lower
	// classes absorb the damage.
	highLossFrac := res.ByPriority[demand.High].LossBytes / (res.Total.LossBytes + 1e-12)
	if res.Total.LossBytes > 0 && highLossFrac > 0.05 {
		t.Fatalf("high-priority carries %.1f%% of loss; want ≈ 0", highLossFrac*100)
	}
	total := res.ByPriority[demand.High].LossBytes + res.ByPriority[demand.Med].LossBytes + res.ByPriority[demand.Low].LossBytes
	if diff := total - res.Total.LossBytes; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("per-class losses %v don't sum to total %v", total, res.Total.LossBytes)
	}

	// §8.4's headline: total multi-priority throughput stays close to the
	// unprotected cascade because lower classes reuse protection headroom.
	base, err := Run(sc, RunConfig{Multi: &PriorityConfig{Splits: splits}})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := res.ThroughputRatioVs(base); ratio < 0.85 {
		t.Fatalf("multi-priority throughput ratio %v; want near 1 (§8.4)", ratio)
	}
}

func TestOversubDataFaults(t *testing.T) {
	sc := testScenario(t, 6, 6, 1.0)
	d1, err := OversubDataFaults(sc, core.None, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := OversubDataFaults(sc, core.None, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if d1.N() != 6 || d3.N() != 6 {
		t.Fatalf("sample counts %d/%d", d1.N(), d3.N())
	}
	// More failures can only hurt (in distribution): compare means.
	if d3.Mean() < d1.Mean()-1e-9 {
		t.Fatalf("3-link mean oversub %v < 1-link %v", d3.Mean(), d1.Mean())
	}
	// FFC ke=1 must zero the single-failure oversubscription.
	f1, err := OversubDataFaults(sc, core.Protection{Ke: 1}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Max() > 1e-6 {
		t.Fatalf("FFC ke=1 still oversubscribes: %v%%", f1.Max())
	}
}

func TestOversubSwitchFault(t *testing.T) {
	sc := testScenario(t, 7, 5, 1.0)
	d, err := OversubDataFaults(sc, core.None, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 5 {
		t.Fatalf("samples %d", d.N())
	}
}

func TestOversubControlFaults(t *testing.T) {
	sc := testScenario(t, 8, 8, 1.0)
	base, err := OversubControlFaults(sc, core.None, 2)
	if err != nil {
		t.Fatal(err)
	}
	if base.N() != 7 { // first interval has no previous config
		t.Fatalf("samples %d, want 7", base.N())
	}
	ffc, err := OversubControlFaults(sc, core.Protection{Kc: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ffc.Max() > 1e-6 {
		t.Fatalf("FFC kc=2 still oversubscribes under 2 stale switches: %v%%", ffc.Max())
	}
}

func TestSimulateUpdateExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	model := faults.Optimistic()
	base := UpdateExecConfig{Steps: 3, Switches: 12, Kc: 0, Model: model}
	ffc := base
	ffc.Kc = 2
	var baseSum, ffcSum time.Duration
	const n = 100
	for i := 0; i < n; i++ {
		baseSum += SimulateUpdateExecution(base, rng)
		ffcSum += SimulateUpdateExecution(ffc, rng)
	}
	if ffcSum >= baseSum {
		t.Fatalf("FFC updates not faster: %v vs %v", ffcSum/n, baseSum/n)
	}
	if baseSum/n <= 0 {
		t.Fatal("zero baseline update time")
	}
}

func TestSimulateUpdateExecutionRealisticStalls(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	model := faults.Realistic()
	cfg := UpdateExecConfig{Steps: 3, Switches: 30, Kc: 0, Model: model, Deadline: 300 * time.Second}
	stalled := 0
	const n = 120
	for i := 0; i < n; i++ {
		if SimulateUpdateExecution(cfg, rng) >= cfg.Deadline {
			stalled++
		}
	}
	// The paper: ~40% of non-FFC updates miss the 300 s deadline under the
	// Realistic model. Accept a broad band.
	frac := float64(stalled) / n
	if frac < 0.05 {
		t.Fatalf("only %.0f%% of realistic updates stalled; model too optimistic", frac*100)
	}
	ffc := cfg
	ffc.Kc = 2
	fst := 0
	for i := 0; i < n; i++ {
		if SimulateUpdateExecution(ffc, rng) >= ffc.Deadline {
			fst++
		}
	}
	if fst >= stalled {
		t.Fatalf("FFC stalls (%d) not fewer than baseline (%d)", fst, stalled)
	}
}

func TestScaleSeries(t *testing.T) {
	s := demand.Series{demand.Matrix{tunnel.Flow{Src: 0, Dst: 1}: 2}}
	out := ScaleSeries(s, 3)
	if out[0][tunnel.Flow{Src: 0, Dst: 1}] != 6 {
		t.Fatal("scale wrong")
	}
	if s[0][tunnel.Flow{Src: 0, Dst: 1}] != 2 {
		t.Fatal("original mutated")
	}
}

func TestTimelineRecords(t *testing.T) {
	sc := testScenario(t, 11, 6, 0.8)
	sc.Failures.LinkMTBF = 8 * time.Minute
	res, err := Run(sc, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 6 {
		t.Fatalf("%d timeline records, want 6", len(res.Timeline))
	}
	var lost, granted float64
	faultsSeen := 0
	for i, rec := range res.Timeline {
		if rec.Demand <= 0 || rec.Granted <= 0 {
			t.Fatalf("record %d: demand %v granted %v", i, rec.Demand, rec.Granted)
		}
		if rec.Granted > rec.Demand+1e-6 {
			t.Fatalf("record %d: granted exceeds demand", i)
		}
		lost += rec.Lost
		granted += rec.Granted * sc.Interval.Seconds()
		faultsSeen += rec.LinkFaults + rec.SwitchFaults
	}
	if diff := lost - res.Total.LossBytes; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("timeline losses %v != total %v", lost, res.Total.LossBytes)
	}
	if diff := granted - res.Total.GrantedBytes; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("timeline granted %v != total %v", granted, res.Total.GrantedBytes)
	}
	if faultsSeen == 0 {
		t.Fatal("no faults recorded at an 8-minute MTBF over 30 minutes; suspicious")
	}
}

func TestNoCarryover(t *testing.T) {
	sc := testScenario(t, 12, 4, 2.0) // scale 2: demand always exceeds capacity
	sc.Failures = faults.FailureModel{}
	sc.Switches = faults.Optimistic()
	with, err := Run(sc, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(sc, RunConfig{NoCarryover: true})
	if err != nil {
		t.Fatal(err)
	}
	// Carryover inflates later intervals' demand; without it, demand is
	// exactly the series'.
	if with.Total.DemandBytes <= without.Total.DemandBytes {
		t.Fatalf("carryover should inflate demand: %v vs %v",
			with.Total.DemandBytes, without.Total.DemandBytes)
	}
	var offered float64
	for _, m := range sc.Series {
		offered += m.Total() * sc.Interval.Seconds()
	}
	if diff := without.Total.DemandBytes - offered; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("NoCarryover demand %v != offered %v", without.Total.DemandBytes, offered)
	}
}
