package ffc

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// TestExamplesRun smoke-runs every example program under examples/ with
// `go run` and a hard deadline: each must exit 0 on its own (no arguments —
// the examples are self-contained walkthroughs). This keeps the documented
// entry points compiling AND executing as the library underneath them
// changes.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke run is slow; skipped with -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatal("no example directories found")
	}
	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+dir)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("timed out after 3m\noutput:\n%s", out)
			}
			if err != nil {
				t.Fatalf("go run failed: %v\noutput:\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
