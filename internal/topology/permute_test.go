package topology

import (
	"math/rand"
	"testing"
)

func TestPermuteIdentity(t *testing.T) {
	net := Testbed()
	perm := make([]int, net.NumSwitches())
	for i := range perm {
		perm[i] = i
	}
	p, err := net.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range p.Switches {
		if s != net.Switches[i] {
			t.Fatalf("identity permutation changed switch %d: %+v vs %+v", i, s, net.Switches[i])
		}
	}
	for i, l := range p.Links {
		if l != net.Links[i] {
			t.Fatalf("identity permutation changed link %d: %+v vs %+v", i, l, net.Links[i])
		}
	}
}

func TestPermutePreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := LNet(LNetConfig{Sites: 4}, rng)
	perm := rng.Perm(net.NumSwitches())
	p, err := net.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("permuted network invalid: %v", err)
	}
	if p.NumSwitches() != net.NumSwitches() || p.NumLinks() != net.NumLinks() {
		t.Fatal("permutation changed the element counts")
	}
	if p.TotalCapacity() != net.TotalCapacity() {
		t.Fatal("permutation changed total capacity")
	}

	// The new switch i is the old switch perm[i], carrying its name; links
	// keep IDs and capacities with endpoints renumbered accordingly.
	for newID, oldID := range perm {
		if p.Switches[newID].Name != net.Switches[oldID].Name {
			t.Fatalf("switch %d: name %q, want old switch %d's %q",
				newID, p.Switches[newID].Name, oldID, net.Switches[oldID].Name)
		}
		if p.Switches[newID].ID != SwitchID(newID) {
			t.Fatalf("switch %d: stale ID %d", newID, p.Switches[newID].ID)
		}
	}
	for i, l := range p.Links {
		old := net.Links[i]
		if l.ID != old.ID || l.Capacity != old.Capacity || l.Twin != old.Twin {
			t.Fatalf("link %d changed identity: %+v vs %+v", i, l, old)
		}
		// Same physical link: endpoints are the permuted images.
		if net.Switches[old.Src].Name != p.Switches[l.Src].Name ||
			net.Switches[old.Dst].Name != p.Switches[l.Dst].Name {
			t.Fatalf("link %d endpoints remapped wrongly", i)
		}
	}

	// The original must be untouched.
	if err := net.Validate(); err != nil {
		t.Fatalf("Permute mutated the receiver: %v", err)
	}
	for i := range net.Switches {
		if net.Switches[i].ID != SwitchID(i) {
			t.Fatal("Permute mutated the receiver's switch IDs")
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := LNet(LNetConfig{Sites: 3}, rng)
	perm := rng.Perm(net.NumSwitches())
	p, err := net.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	// Applying the inverse permutation restores the original labeling.
	inv := make([]int, len(perm))
	for newID, oldID := range perm {
		inv[oldID] = newID
	}
	back, err := p.Permute(inv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Switches {
		if back.Switches[i] != net.Switches[i] {
			t.Fatalf("round trip changed switch %d", i)
		}
	}
	for i := range net.Links {
		if back.Links[i] != net.Links[i] {
			t.Fatalf("round trip changed link %d", i)
		}
	}
}

func TestPermuteRejectsBadInput(t *testing.T) {
	net := Example4()
	for _, perm := range [][]int{
		{0, 1},          // wrong length
		{0, 1, 2, 2},    // duplicate
		{0, 1, 2, 4},    // out of range
		{-1, 1, 2, 3},   // negative
		{0, 1, 2, 3, 4}, // too long
	} {
		if _, err := net.Permute(perm); err == nil {
			t.Errorf("perm %v: expected an error", perm)
		}
	}
}
