// Multi-priority FFC (§5.1/§8.4): interactive traffic gets strong
// protection, background traffic rides the reserved headroom, and total
// throughput stays near the unprotected optimum.
//
//	go run ./examples/multipriority
package main

import (
	"fmt"
	"log"

	"ffc"
)

func main() {
	// A synthetic 8-site WAN with site-pair flows.
	net := ffc.LNetTopology(8, 42)
	series := ffc.GenerateDemands(net, 1, 42)
	matrix := series[0]

	var flows []ffc.Flow
	for f := range matrix {
		flows = append(flows, f)
	}
	ctl, err := ffc.NewController(net, flows, ffc.ControllerConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Scale demand up until the network is busy (~3× the raw gravity
	// matrix keeps this example interesting without calibration machinery).
	total := ffc.Demands{}
	for f, d := range matrix {
		total[f] = d * 3
	}
	// 20% interactive (high), 30% deadline (med), 50% background (low).
	high, med, low := ffc.Demands{}, ffc.Demands{}, ffc.Demands{}
	for f, d := range total {
		high[f], med[f], low[f] = 0.2*d, 0.3*d, 0.5*d
	}

	states, err := ctl.ComputePriorities(
		[]string{"high", "med", "low"},
		[]ffc.Demands{high, med, low},
		[]ffc.Protection{{Kc: 3, Ke: 3}, {Kc: 2, Ke: 1}, {}},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("priority cascade (each class sees the residual capacity of the classes above):")
	var grand float64
	for _, ps := range states {
		fmt.Printf("  %-4s prot %v: granted %.1f of %.1f demanded (%.0f%%)\n",
			ps.Class, ps.Prot, ps.State.TotalRate(), ps.Demand,
			100*ps.State.TotalRate()/ps.Demand)
		grand += ps.State.TotalRate()
	}
	fmt.Printf("  total granted: %.1f\n\n", grand)

	// The headline property: the high class survives worst-case faults.
	if v := ctl.VerifyDataPlane(states[0].State, 1, 0); v != nil {
		log.Fatalf("high class not 1-link safe: %+v", v)
	}
	fmt.Println("high class verified congestion-free under every single link failure;")
	fmt.Println("low class uses the reserved headroom and is shed first by priority queueing when faults strike")
}
