// Package obs is the repository's lightweight observability layer:
// counters, gauges, latency histograms, and hierarchical span timers,
// with text/JSON exporters, an expvar/pprof debug server, and the
// machine-readable BENCH_*.json benchmark format the CI perf gate
// consumes.
//
// Design rules, in priority order:
//
//   - Off-path cost is near zero. The hot paths (simplex pivots, per-case
//     verification) accumulate into their own local state as they always
//     did and publish ONE batch of atomic adds per solve/verify; nothing
//     per-iteration touches this package. Span timers and per-worker
//     timings call time.Now only when Enabled() is true.
//   - No allocation on the publish path. Instrumented packages hold
//     package-level *Counter/*Histogram handles created at init; Observe
//     and Add are single atomic operations into fixed arrays.
//   - Exports are deterministic: snapshots are sorted by name, so two
//     dumps of the same state are byte-identical.
//
// Metrics live in a Registry; the package-level Default registry is what
// the binaries dump behind their -stats flags and serve behind
// -debug-addr.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates the instrumentation that costs real work when on (span
// timers, per-worker busy timings, latency histograms). Plain counters
// stay live regardless — one atomic add per solve is cheaper than
// auditing every publish site for the gate.
var enabled atomic.Bool

// Enable turns on spans, histograms, and per-worker timings.
func Enable() { enabled.Store(true) }

// Disable restores the near-zero-cost default.
func Disable() { enabled.Store(false) }

// Enabled reports whether the costlier instrumentation is active.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a last-value (or high-watermark) metric.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetMax raises the gauge to n if n is larger.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; handles returned by Counter/Gauge/Histogram are stable
// for the registry's lifetime (Reset zeroes values, never identities).
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

var def = NewRegistry()

// Default returns the process-wide registry used by the package-level
// helpers, the -stats dumps, and the debug server.
func Default() *Registry { return def }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every metric's value. Registered handles stay valid.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counts {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// CounterValues returns a name → value map of all counters (for embedding
// into BENCH files).
func (r *Registry) CounterValues() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counts))
	for n, c := range r.counts {
		out[n] = c.Value()
	}
	return out
}

func (r *Registry) sortedCounterNames() []string {
	names := make([]string, 0, len(r.counts))
	for n := range r.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) sortedGaugeNames() []string {
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) sortedHistNames() []string {
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewCounter registers (or fetches) a counter in the Default registry.
// Instrumented packages call it from package-level var initializers so
// the publish path is a single atomic add.
func NewCounter(name string) *Counter { return def.Counter(name) }

// NewGauge registers (or fetches) a gauge in the Default registry.
func NewGauge(name string) *Gauge { return def.Gauge(name) }

// NewHistogram registers (or fetches) a histogram in the Default registry.
func NewHistogram(name string) *Histogram { return def.Histogram(name) }
