package ctrl

import (
	"ffc/internal/check"
	"ffc/internal/core"
	"ffc/internal/obs"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
	"ffc/internal/wire"
)

var (
	obsCertRuns       = obs.NewCounter("ctrl.cert_runs")
	obsCertFailures   = obs.NewCounter("ctrl.cert_failures")
	obsCertSkipped    = obs.NewCounter("ctrl.cert_skipped")
	obsCertWorstSlack = obs.NewGauge("ctrl.cert_worst_slack_milli")
)

// certJob carries everything a certification needs, captured at install
// time: the installed plan, the previously installed state (the control
// plane's stale configuration), and the tunnel set the plan was laid out
// on — a later relayout must not change what an in-flight job checks.
type certJob struct {
	plan   *Plan
	prev   *core.State
	set    *tunnel.Set
	params check.Params
}

// startCertifier launches the async certification goroutine when
// Config.Certify is set. Called from Start; installs before Start (the
// boot placeholder, the restored snapshot) are handled synchronously in
// New instead.
func (c *Controller) startCertifier() {
	if c.cfg.Certify == nil {
		return
	}
	c.certCh = make(chan certJob, 16)
	c.certDone = make(chan struct{})
	go func() {
		defer close(c.certDone)
		for job := range c.certCh {
			c.runCert(job)
		}
	}()
}

// stopCertifier drains queued jobs and waits for the goroutine to exit.
func (c *Controller) stopCertifier() {
	if c.certCh == nil {
		return
	}
	close(c.certCh)
	<-c.certDone
	c.certCh = nil
}

// enqueueCert hands a job to the certifier without ever blocking the
// install path; a full queue drops the job and counts a skip.
func (c *Controller) enqueueCert(job certJob) {
	if c.certCh == nil {
		return
	}
	select {
	case c.certCh <- job:
	default:
		c.stats.certSkipped.Add(1)
		obsCertSkipped.Inc()
	}
}

// certParams instantiates Config.Certify for one install. Degraded plans
// (last-good fallbacks) only promise congestion-freedom under the faults
// they degraded around, so they certify at zero protection; everything
// else certifies at the protection it was solved for.
func (c *Controller) certParams(prot core.Protection, degraded string,
	dl map[topology.LinkID]bool, ds map[topology.SwitchID]bool) check.Params {
	p := *c.cfg.Certify
	p.Prot = prot
	if degraded != "" {
		p.Prot = core.None
	}
	p.RateLimiter = c.cfg.Opts.RateLimiter
	p.DownLinks = dl
	p.DownSwitches = ds
	return p
}

// runCert certifies one installed plan and records the verdict in stats
// and obs. Returns the certificate's OK (false on checker error too).
func (c *Controller) runCert(job certJob) bool {
	cert, err := check.Certify(c.net, job.set, job.plan.State, job.prev, job.params)
	c.stats.certRuns.Add(1)
	obsCertRuns.Inc()
	if err != nil {
		c.stats.certFailures.Add(1)
		obsCertFailures.Inc()
		c.cfg.Logf("ctrl: CERT ERROR plan seq=%d: %v", job.plan.Seq, err)
		return false
	}
	if !cert.OK {
		c.stats.certFailures.Add(1)
		obsCertFailures.Inc()
		v := cert.Violation
		c.cfg.Logf("ctrl: CERT FAILED plan seq=%d (%s, kc=%d ke=%d kv=%d): link %s load %.6g > cap %.6g under %v",
			job.plan.Seq, cert.Mode, cert.Kc, cert.Ke, cert.Kv,
			v.LinkName, v.Load, v.Capacity, v.Faults)
		return false
	}
	obsCertWorstSlack.Set(int64(cert.WorstSlack * 1000))
	return true
}

// writeTrace appends one NDJSON record for an install when a trace writer
// is configured. Install is serialized (New, then the single recompute
// goroutine), so no locking.
func (c *Controller) writeTrace(p *Plan, dl map[topology.LinkID]bool, ds map[topology.SwitchID]bool) {
	if c.cfg.TraceWriter == nil {
		return
	}
	links, sws := wire.NamedDownSets(c.net, dl, ds)
	rec := &wire.TraceRecord{
		Seq:          p.Seq,
		Time:         p.InstalledAt,
		Kc:           p.Prot.Kc,
		Ke:           p.Prot.Ke,
		Kv:           p.Prot.Kv,
		Degraded:     p.Degraded,
		Restored:     p.Restored,
		DownLinks:    links,
		DownSwitches: sws,
		State:        p.File,
	}
	if err := wire.WriteTraceRecord(c.cfg.TraceWriter, rec); err != nil {
		c.cfg.Logf("ctrl: writing trace record seq=%d: %v", p.Seq, err)
	}
}
