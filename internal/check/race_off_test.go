//go:build !race

package check

const raceEnabled = false
