package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/faults"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// quietScenario is testScenario with constant demands and every organic
// fault source disabled, so injected controller faults are the only events.
func quietScenario(t testing.TB, seed int64, intervals int, scale float64) Scenario {
	t.Helper()
	sc := testScenario(t, seed, intervals, scale)
	for i := range sc.Series {
		sc.Series[i] = sc.Series[0].Clone()
	}
	sc.Failures = faults.FailureModel{}
	sc.Switches = faults.SwitchModel{}
	return sc
}

func TestDegradedIntervalReusesLastGood(t *testing.T) {
	sc := quietScenario(t, 11, 8, 0.9)
	cfg := RunConfig{
		Prot:        core.Protection{Ke: 1},
		NoCarryover: true,
		SolverFaults: faults.SolverFaultModel{
			Force: map[int]faults.SolverFaultKind{3: faults.SolverTimeout},
		},
	}
	res, err := Run(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedIntervals != 1 {
		t.Fatalf("DegradedIntervals = %d, want 1", res.DegradedIntervals)
	}
	for i, rec := range res.Timeline {
		want := ""
		if i == 3 {
			want = "timeout"
		}
		if rec.Degraded != want {
			t.Fatalf("interval %d Degraded = %q, want %q", i, rec.Degraded, want)
		}
	}
	// The timed-out interval must not have produced a fresh solve: one
	// SolveTime sample per interval except the degraded one.
	if got := res.SolveTime.N(); got != len(sc.Series)-1 {
		t.Fatalf("SolveTime samples = %d, want %d (degraded interval must not solve)", got, len(sc.Series)-1)
	}
	// Degraded-interval equivalence: with nothing failed, interval 3 serves
	// exactly interval 2's installed allocation.
	if d := math.Abs(res.Timeline[3].Granted - res.Timeline[2].Granted); d > 1e-9 {
		t.Fatalf("degraded interval granted %v, previous interval %v (diff %g)",
			res.Timeline[3].Granted, res.Timeline[2].Granted, d)
	}
	// Serving the last-good plan under no faults is congestion-free.
	if res.Timeline[3].MaxOversub != 0 {
		t.Fatalf("degraded interval oversubscribed: %v", res.Timeline[3].MaxOversub)
	}
	if res.DegradedOversub.N() != 1 || res.DegradedOversub.Max() != 0 {
		t.Fatalf("DegradedOversub = %+v, want one zero sample", res.DegradedOversub)
	}
}

func TestDegradedCrashAndStale(t *testing.T) {
	sc := quietScenario(t, 12, 7, 0.9)
	cfg := RunConfig{
		Prot:        core.Protection{Ke: 1},
		NoCarryover: true,
		SolverFaults: faults.SolverFaultModel{
			Force: map[int]faults.SolverFaultKind{
				2: faults.SolverCrash,
				4: faults.SolverStale,
			},
		},
	}
	res, err := Run(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedIntervals != 2 {
		t.Fatalf("DegradedIntervals = %d, want 2", res.DegradedIntervals)
	}
	if res.Timeline[2].Degraded != "crash" || res.Timeline[4].Degraded != "stale" {
		t.Fatalf("reasons = %q, %q; want crash, stale", res.Timeline[2].Degraded, res.Timeline[4].Degraded)
	}
	// Both degraded intervals serve the prior interval's plan.
	for _, i := range []int{2, 4} {
		if d := math.Abs(res.Timeline[i].Granted - res.Timeline[i-1].Granted); d > 1e-9 {
			t.Fatalf("interval %d granted %v, want prior interval's %v",
				i, res.Timeline[i].Granted, res.Timeline[i-1].Granted)
		}
	}
	// A stale plan was computed (and timed) even though it wasn't installed;
	// the crashed interval produced no timing sample.
	if got := res.SolveTime.N(); got != len(sc.Series)-1 {
		t.Fatalf("SolveTime samples = %d, want %d", got, len(sc.Series)-1)
	}
}

// snetScenario builds the paper's S-Net with calibrated demands — the
// acceptance-criteria substrate for controller-fault injection.
func snetScenario(t testing.TB, seed int64, intervals int, scale float64) Scenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := topology.SNet()
	series := demand.Generate(net, demand.Config{Intervals: intervals}, rng)
	flows := FlowsOf(series)
	tun := tunnel.Layout(net, flows, tunnel.LayoutConfig{TunnelsPerFlow: 4})
	solver := core.NewSolver(net, tun, core.Options{})
	k, err := CalibrateScale(solver, series, 0.99, 3)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return Scenario{
		Net: net, Tun: tun,
		Series:   ScaleSeries(series, k*scale),
		Interval: 5 * time.Minute,
		Failures: faults.LNetFailures(),
		Switches: faults.Realistic(),
		Seed:     seed + 1000,
	}
}

// TestSNetInjectedTimeouts is the PR's acceptance scenario: solver timeouts
// on 10% of S-Net intervals (2 of 20, pinned for determinism), organic
// data-plane faults active. The sim must complete without panics, every
// degraded interval reuses the last-good allocation, and degraded-interval
// oversubscription stays within the FFC guarantee for the configured k.
func TestSNetInjectedTimeouts(t *testing.T) {
	const intervals = 20
	sc := snetScenario(t, 21, intervals, 0.9)
	prot := core.Protection{Ke: 1}
	cfg := RunConfig{
		Prot: prot,
		SolverFaults: faults.SolverFaultModel{
			Force: map[int]faults.SolverFaultKind{
				4:  faults.SolverTimeout,
				14: faults.SolverTimeout,
			},
		},
	}
	res, err := Run(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals != intervals {
		t.Fatalf("completed %d intervals, want %d", res.Intervals, intervals)
	}
	if res.DegradedIntervals != 2 {
		t.Fatalf("DegradedIntervals = %d, want 2", res.DegradedIntervals)
	}
	for i, rec := range res.Timeline {
		if (i == 4 || i == 14) != (rec.Degraded != "") {
			t.Fatalf("interval %d Degraded = %q", i, rec.Degraded)
		}
		if rec.Degraded == "" {
			continue
		}
		// FFC guarantee on a degraded interval: congestion-free as long as
		// the faults not already routed around (those striking the previous
		// interval, after its plan, and this one) stay within k and no
		// switch serves a stale configuration.
		newFaults := rec.LinkFaults + res.Timeline[i-1].LinkFaults
		if rec.SwitchFaults+res.Timeline[i-1].SwitchFaults == 0 &&
			newFaults <= prot.Ke && rec.StaleSwitches == 0 {
			if rec.MaxOversub > 1e-7 {
				t.Fatalf("degraded interval %d oversubscribed %v within the protection level",
					i, rec.MaxOversub)
			}
		}
	}
}

// TestSolverFaultSoak hammers the fault-injected control loop — random
// timeouts, crashes, and stale results on top of organic data-plane faults,
// with and without warm-started sessions — and checks the run always
// completes with coherent accounting. Run with -race in CI.
func TestSolverFaultSoak(t *testing.T) {
	sc := testScenario(t, 31, 10, 1.0)
	sc.Failures.LinkMTBF = 10 * time.Minute
	model := faults.SolverFaultModel{TimeoutRate: 0.2, CrashRate: 0.1, StaleRate: 0.1}
	cfgs := []RunConfig{
		{SolverFaults: model},
		{Prot: core.Protection{Ke: 1}, SolverFaults: model},
		{Prot: core.Protection{Kc: 1, Ke: 1}, SolverFaults: model},
		{Prot: core.Protection{Ke: 1}, WarmStart: true, SolverFaults: model},
		{Prot: core.Protection{Ke: 1}, SolverDeadline: 50 * time.Millisecond, SolverFaults: model},
	}
	results, err := RunMany(sc, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Intervals != 10 {
			t.Fatalf("cfg %d: %d intervals", i, res.Intervals)
		}
		degraded := 0
		for _, rec := range res.Timeline {
			if rec.Degraded != "" {
				degraded++
			}
		}
		if degraded != res.DegradedIntervals {
			t.Fatalf("cfg %d: timeline shows %d degraded intervals, result says %d",
				i, degraded, res.DegradedIntervals)
		}
		if res.DegradedOversub.N() != res.DegradedIntervals {
			t.Fatalf("cfg %d: %d oversub samples for %d degraded intervals",
				i, res.DegradedOversub.N(), res.DegradedIntervals)
		}
		if res.Total.GrantedBytes < 0 || res.Total.LossBytes < 0 {
			t.Fatalf("cfg %d: negative accounting: %+v", i, res.Total)
		}
	}
	// The rates are high enough that at least one run must have degraded.
	anyDegraded := false
	for _, res := range results {
		if res.DegradedIntervals > 0 {
			anyDegraded = true
		}
	}
	if !anyDegraded {
		t.Fatalf("no run degraded despite 40%% injection rates")
	}
}

func TestRunConfigExplicitZeroDelays(t *testing.T) {
	c := RunConfig{DetectDelaySet: true, ControlDetectSet: true}
	c.fill()
	if c.DetectDelay != 0 || c.ControlDetect != 0 {
		t.Fatalf("explicit zeros overwritten: %v, %v", c.DetectDelay, c.ControlDetect)
	}
	d := RunConfig{}
	d.fill()
	if d.DetectDelay != 50*time.Millisecond || d.ControlDetect != time.Second {
		t.Fatalf("defaults not applied: %v, %v", d.DetectDelay, d.ControlDetect)
	}
	e := RunConfig{DetectDelay: time.Millisecond, ControlDetect: 2 * time.Second}
	e.fill()
	if e.DetectDelay != time.Millisecond || e.ControlDetect != 2*time.Second {
		t.Fatalf("explicit values overwritten: %v, %v", e.DetectDelay, e.ControlDetect)
	}
}
