package testbed

import (
	"math/rand"
	"testing"
	"time"

	"ffc/internal/core"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

func setup(t *testing.T) (*Emulation, *tunnel.Set, *core.State, *core.State, topology.LinkID) {
	t.Helper()
	net, tun, ffc, plain, err := Fig10Setup()
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	e.Net, e.Tun = net, tun
	s6, _ := e.Net.SwitchByName("s6")
	s7, _ := e.Net.SwitchByName("s7")
	link := e.Net.FindLink(s6, s7)
	if link == topology.None {
		t.Fatal("link s6–s7 missing")
	}
	return e, tun, ffc, plain, link
}

func TestFFCTimelineNoControllerReaction(t *testing.T) {
	e, _, ffc, _, link := setup(t)
	rng := rand.New(rand.NewSource(1))
	out := e.FailLink(link, ffc, rng, 0)
	if out.ControllerReacted {
		t.Fatal("FFC state should not need controller intervention for one link failure")
	}
	// Loss ends shortly after detection + notification + rescale:
	// detection 5 ms, Singapore→affected-ingress propagation tens of ms.
	if out.LossDuration > 150*time.Millisecond {
		t.Fatalf("FFC loss lasted %v, want well under 150ms", out.LossDuration)
	}
	if out.LossDuration < e.DetectDelay {
		t.Fatalf("loss duration %v shorter than detection delay", out.LossDuration)
	}
	kinds := map[string]bool{}
	for _, ev := range out.Events {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"link-failure", "failure-detected", "failure-notified", "rescaled", "loss-stop"} {
		if !kinds[want] {
			t.Fatalf("missing event %q in timeline: %v", want, out.Events)
		}
	}
}

func TestNonFFCTimelineReacts(t *testing.T) {
	e, _, _, plain, link := setup(t)
	rng := rand.New(rand.NewSource(2))
	// Fast case (Fig 11b): 5 ms rule update.
	fast := e.FailLink(link, plain, rng, 5*time.Millisecond)
	if !fast.ControllerReacted {
		t.Fatal("non-FFC Fig 10 state must congest after s6–s7 fails")
	}
	// Slow case (Fig 11c): 1 s rule update stretches the congestion.
	slow := e.FailLink(link, plain, rng, time.Second)
	if slow.LossDuration <= fast.LossDuration {
		t.Fatalf("slow update loss %v not longer than fast %v", slow.LossDuration, fast.LossDuration)
	}
	if slow.LostBytes <= fast.LostBytes {
		t.Fatalf("slow update lost %v ≤ fast %v", slow.LostBytes, fast.LostBytes)
	}
}

func TestFFCVsNonFFCLoss(t *testing.T) {
	e, tun, ffc, plain, link := setup(t)
	// Confirm the FFC state really survives every single link failure and
	// the plain state does not (otherwise the comparison is vacuous).
	if v := core.VerifyDataPlane(e.Net, tun, ffc, 1, 0, nil); v != nil {
		t.Fatalf("FFC state not 1-link safe: %+v", v)
	}
	rng := rand.New(rand.NewSource(3))
	of := e.FailLink(link, ffc, rng, 100*time.Millisecond)
	op := e.FailLink(link, plain, rng, 100*time.Millisecond)
	if op.ControllerReacted && of.LostBytes >= op.LostBytes {
		t.Fatalf("FFC lost %v ≥ non-FFC %v", of.LostBytes, op.LostBytes)
	}
}

func TestTimelineOrdering(t *testing.T) {
	e, _, ffc, _, link := setup(t)
	rng := rand.New(rand.NewSource(4))
	out := e.FailLink(link, ffc, rng, 0)
	for i := 1; i < len(out.Events); i++ {
		if out.Events[i].At < out.Events[i-1].At {
			t.Fatalf("events out of order: %v", out.Events)
		}
	}
	if out.Events[0].Kind != "link-failure" && out.Events[0].Kind != "loss-start" {
		t.Fatalf("first event %q", out.Events[0].Kind)
	}
}

func TestPropagationDelays(t *testing.T) {
	e := New()
	s2, _ := e.Net.SwitchByName("s2") // San Francisco
	s5, _ := e.Net.SwitchByName("s5") // New York
	d := e.propagation(s2, s5)
	// ~4100 km at 200,000 km/s ≈ 20 ms one-way.
	if d < 15*time.Millisecond || d > 30*time.Millisecond {
		t.Fatalf("SF→NY propagation %v implausible", d)
	}
	if e.propagation(s2, s2) != 0 {
		t.Fatal("self propagation nonzero")
	}
}

func TestFig10StatesDiffer(t *testing.T) {
	e, tun, ffc, plain, _ := setup(t)
	s4, _ := e.Net.SwitchByName("s4")
	s5, _ := e.Net.SwitchByName("s5")
	f45 := tunnel.Flow{Src: s4, Dst: s5}
	if ffc.Rate[f45] < 1-1e-6 || plain.Rate[f45] < 1-1e-6 {
		t.Fatalf("both approaches must carry the full demand: %v / %v", ffc.Rate[f45], plain.Rate[f45])
	}
	// Fig 10's difference: FFC routes the overflow via s6, non-FFC via s3.
	if ffc.Alloc[f45][2] <= 0 || plain.Alloc[f45][1] <= 0 {
		t.Fatalf("overflow paths wrong: ffc %v plain %v", ffc.Alloc[f45], plain.Alloc[f45])
	}
	// And the paper's headline: plain is not 1-link safe, FFC is.
	if v := core.VerifyDataPlane(e.Net, tun, plain, 1, 0, nil); v == nil {
		t.Fatal("plain Fig 10 state unexpectedly 1-link safe")
	}
}
