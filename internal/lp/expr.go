package lp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Inf is the bound used for unbounded variables.
var Inf = math.Inf(1)

// Var identifies a variable within a Model. The zero value is a valid
// variable only if the model has created at least one variable; use the
// value returned by Model.NewVar.
type Var int

// Term is one coefficient-variable product inside an Expr.
type Term struct {
	Coef float64
	Var  Var
}

// Expr is a linear expression: a sum of terms plus a constant offset.
// The zero value is an empty expression ready for use, but NewExpr reads
// better at call sites.
type Expr struct {
	Terms    []Term
	Constant float64
}

// NewExpr returns an empty linear expression.
func NewExpr() *Expr { return &Expr{} }

// Add appends coef·v to the expression and returns the expression to allow
// chaining. Duplicate variables are permitted; the model combines them when
// the expression is used.
func (e *Expr) Add(coef float64, v Var) *Expr {
	if coef != 0 {
		e.Terms = append(e.Terms, Term{Coef: coef, Var: v})
	}
	return e
}

// AddConst adds a constant offset to the expression.
func (e *Expr) AddConst(c float64) *Expr {
	e.Constant += c
	return e
}

// AddExpr adds scale·other to the expression.
func (e *Expr) AddExpr(scale float64, other *Expr) *Expr {
	if other == nil || scale == 0 {
		return e
	}
	for _, t := range other.Terms {
		e.Add(scale*t.Coef, t.Var)
	}
	e.Constant += scale * other.Constant
	return e
}

// Clone returns a deep copy of the expression.
func (e *Expr) Clone() *Expr {
	c := &Expr{Constant: e.Constant, Terms: make([]Term, len(e.Terms))}
	copy(c.Terms, e.Terms)
	return c
}

// Sum returns an expression summing the given variables with coefficient 1.
func Sum(vars ...Var) *Expr {
	e := NewExpr()
	for _, v := range vars {
		e.Add(1, v)
	}
	return e
}

// compact merges duplicate variables and drops zero coefficients, returning
// parallel slices sorted by variable index.
func (e *Expr) compact() (idx []int32, coef []float64) {
	if len(e.Terms) == 0 {
		return nil, nil
	}
	ts := make([]Term, len(e.Terms))
	copy(ts, e.Terms)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Var < ts[j].Var })
	for _, t := range ts {
		n := len(idx)
		if n > 0 && idx[n-1] == int32(t.Var) {
			coef[n-1] += t.Coef
			continue
		}
		idx = append(idx, int32(t.Var))
		coef = append(coef, t.Coef)
	}
	// Drop exact zeros produced by cancellation.
	out := 0
	for i := range idx {
		if coef[i] != 0 {
			idx[out], coef[out] = idx[i], coef[i]
			out++
		}
	}
	return idx[:out], coef[:out]
}

// String renders the expression for debugging.
func (e *Expr) String() string {
	var b strings.Builder
	for i, t := range e.Terms {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g*v%d", t.Coef, t.Var)
	}
	if e.Constant != 0 || len(e.Terms) == 0 {
		if len(e.Terms) > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g", e.Constant)
	}
	return b.String()
}
