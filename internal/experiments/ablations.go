package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/metrics"
	"ffc/internal/sim"
	"ffc/internal/testbed"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// EncodingRow is one row of the encoding ablation.
type EncodingRow struct {
	Encoding  string
	Vars      int
	Cons      int
	SolveTime time.Duration
	Objective float64
}

// AblationEncoding compares the three bounded-M-sum encodings on identical
// FFC inputs: the paper's partial sorting network, the compact top-k dual,
// and — on a reduced network, to keep it finite — the naive per-fault-case
// enumeration whose intractability motivates §4.4. All three must agree on
// the optimum; they differ in LP size and solve time.
func AblationEncoding(e *Env, w io.Writer) ([]EncodingRow, error) {
	series := sim.ScaleSeries(e.Series, e.Scale1)
	demands := series[0]
	solverPlain := core.NewSolver(e.Net, e.Tun, core.Options{})
	prev, _, err := solverPlain.Solve(core.Input{Demands: demands})
	if err != nil {
		return nil, err
	}
	in := core.Input{Demands: series[1%len(series)], Prot: core.Protection{Kc: 2, Ke: 1}, Prev: prev}

	var rows []EncodingRow
	for _, enc := range []core.Encoding{core.SortNet, core.Compact} {
		opts := e.Opts
		opts.Encoding = enc
		solver := core.NewSolver(e.Net, e.Tun, opts)
		st, stats, err := solver.Solve(in)
		if err != nil {
			return nil, fmt.Errorf("ablation %v: %w", enc, err)
		}
		rows = append(rows, EncodingRow{enc.String(), stats.Vars, stats.Constraints, stats.SolveTime, st.TotalRate()})
	}
	// Naive at full scale: formulate only. This implementation already
	// prunes dominated fault subsets; the literal Eqn 5/9 enumeration the
	// paper calls intractable is counted analytically alongside it.
	{
		opts := e.Opts
		opts.Encoding = core.Naive
		solver := core.NewSolver(e.Net, e.Tun, opts)
		stats, err := solver.FormulateOnly(in)
		if err != nil {
			return nil, fmt.Errorf("ablation naive formulate: %w", err)
		}
		rows = append(rows, EncodingRow{"naive (pruned, not solved)", stats.Vars, stats.Constraints, 0, 0})
		rows = append(rows, EncodingRow{"naive (literal Eqns 5+9)", 0, literalNaiveRows(e, in.Prot), 0, 0})
	}

	// Naive enumeration on a small sub-environment (it would not finish on
	// the full one — which is the point the paper's Table 2 makes with its
	// ">12 hours" entry).
	smallEnv, err := NewLNet(EnvConfig{Sites: 4, Intervals: 2, Seed: e.Seed, TunnelsPerFlow: 3})
	if err != nil {
		return nil, err
	}
	smallSeries := sim.ScaleSeries(smallEnv.Series, smallEnv.Scale1)
	smallPrev, _, err := core.NewSolver(smallEnv.Net, smallEnv.Tun, core.Options{}).Solve(core.Input{Demands: smallSeries[0]})
	if err != nil {
		return nil, err
	}
	smallIn := core.Input{Demands: smallSeries[1], Prot: core.Protection{Kc: 2, Ke: 1}, Prev: smallPrev}
	for _, enc := range []core.Encoding{core.SortNet, core.Compact, core.Naive} {
		opts := core.Options{Encoding: enc}
		solver := core.NewSolver(smallEnv.Net, smallEnv.Tun, opts)
		st, stats, err := solver.Solve(smallIn)
		if err != nil {
			return nil, fmt.Errorf("ablation small %v: %w", enc, err)
		}
		rows = append(rows, EncodingRow{"small/" + enc.String(), stats.Vars, stats.Constraints, stats.SolveTime, st.TotalRate()})
	}

	fmt.Fprintf(w, "## Ablation — bounded M-sum encodings on %s (kc=2, ke=1)\n", e.Name)
	tab := metrics.NewTable("encoding", "vars", "constraints", "solve-time", "objective")
	for _, r := range rows {
		tab.Row(r.Encoding, r.Vars, r.Cons, r.SolveTime.String(), r.Objective)
	}
	fmt.Fprint(w, tab.String())
	return rows, nil
}

// literalNaiveRows counts the constraints of the unreduced formulation:
// Eqn 5 has one row per link per subset of up to kc ingress switches, and
// Eqn 9 one row per flow per combination of up to ke links and kv switches
// (network-wide, as written in the paper).
func literalNaiveRows(e *Env, prot core.Protection) int {
	nV := e.Net.NumSwitches()
	phys := 0
	for _, l := range e.Net.Links {
		if l.Twin == topology.None || l.ID < l.Twin {
			phys++
		}
	}
	cases := func(n, k int) int {
		total := 0
		for j := 1; j <= k; j++ {
			c := 1
			for i := 0; i < j; i++ {
				c = c * (n - i) / (i + 1)
			}
			total += c
		}
		return total
	}
	rows := 0
	if prot.Kc > 0 {
		rows += e.Net.NumLinks() * cases(nV, prot.Kc)
	}
	if prot.Ke > 0 || prot.Kv > 0 {
		perFlow := (1 + cases(phys, prot.Ke)) * (1 + cases(nV, prot.Kv))
		rows += len(e.Tun.All()) * perFlow
	}
	return rows
}

// TunnelRow is one row of the tunnel-layout ablation.
type TunnelRow struct {
	Layout       string
	MeanP, MeanQ float64
	// FFCThroughput under (0, ke=1, 0): the (p,q)-disjoint layout keeps τ
	// high, so it should dominate.
	FFCThroughput float64
	// PlainThroughput without protection (k-shortest can be slightly
	// better here — the trade-off of §4.3).
	PlainThroughput float64
}

// AblationTunnels contrasts the §4.3 (1,3) link-switch-disjoint layout with
// unconstrained k-shortest paths.
func AblationTunnels(e *Env, w io.Writer) ([]TunnelRow, error) {
	flows := sim.FlowsOf(e.Series)
	demands := sim.ScaleSeries(e.Series, e.Scale1)[0]

	layouts := []struct {
		name string
		set  *tunnel.Set
	}{
		{"(1,3)-disjoint", e.Tun},
		{"k-shortest", tunnel.LayoutKShortest(e.Net, flows, 6, nil)},
	}
	var rows []TunnelRow
	for _, lay := range layouts {
		var sumP, sumQ float64
		for _, f := range flows {
			p, q := lay.set.PQ(f)
			sumP += float64(p)
			sumQ += float64(q)
		}
		solver := core.NewSolver(e.Net, lay.set, e.Opts)
		ffcSt, _, err := solver.Solve(core.Input{Demands: demands, Prot: core.Protection{Ke: 1}})
		if err != nil {
			return nil, err
		}
		plainSt, _, err := solver.Solve(core.Input{Demands: demands})
		if err != nil {
			return nil, err
		}
		rows = append(rows, TunnelRow{
			Layout: lay.name,
			MeanP:  sumP / float64(len(flows)), MeanQ: sumQ / float64(len(flows)),
			FFCThroughput:   ffcSt.TotalRate(),
			PlainThroughput: plainSt.TotalRate(),
		})
	}
	fmt.Fprintf(w, "## Ablation — tunnel layout on %s\n", e.Name)
	tab := metrics.NewTable("layout", "mean-p", "mean-q", "ffc(ke=1)-throughput", "plain-throughput")
	for _, r := range rows {
		tab.Row(r.Layout, r.MeanP, r.MeanQ, r.FFCThroughput, r.PlainThroughput)
	}
	fmt.Fprint(w, tab.String())
	return rows, nil
}

// Fig11 reproduces the testbed event timelines: the FFC case (no controller
// reaction) and the non-FFC fast/slow update cases after failing link s6–s7.
func Fig11(w io.Writer) error {
	net, tun, ffcSt, plainSt, err := testbed.Fig10Setup()
	if err != nil {
		return err
	}
	e := testbed.New()
	e.Net, e.Tun = net, tun
	s6, _ := e.Net.SwitchByName("s6")
	s7, _ := e.Net.SwitchByName("s7")
	link := e.Net.FindLink(s6, s7)
	if link == topology.None {
		return fmt.Errorf("fig11: testbed link s6–s7 missing")
	}
	rng := rand.New(rand.NewSource(3))

	cases := []struct {
		name   string
		state  *core.State
		update time.Duration
	}{
		{"(a) FFC", ffcSt, 0},
		{"(b) non-FFC, fast update (5ms)", plainSt, 5 * time.Millisecond},
		{"(c) non-FFC, slow update (1s)", plainSt, time.Second},
	}
	fmt.Fprintln(w, "## Fig 11 — testbed event timelines after link s6–s7 fails")
	for _, c := range cases {
		out := e.FailLink(link, c.state, rng, c.update)
		fmt.Fprintf(w, "# %s  (loss duration %v, lost %.4g unit·s, controller reacted: %v)\n",
			c.name, out.LossDuration.Round(time.Millisecond), out.LostBytes, out.ControllerReacted)
		for _, ev := range out.Events {
			fmt.Fprintln(w, " ", ev)
		}
	}
	return nil
}

// Fig2to5 prints the paper's walkthrough numbers (Figures 2–5) computed by
// the solver on the 4-switch example: data-plane FFC spreading and the
// 10/7/4 control-plane admission series.
func Fig2to5(w io.Writer) error {
	net := topology.Example4()
	s1, _ := net.SwitchByName("s1")
	s2, _ := net.SwitchByName("s2")
	s3, _ := net.SwitchByName("s3")
	s4, _ := net.SwitchByName("s4")
	mk := func(f tunnel.Flow, hops ...topology.SwitchID) *tunnel.Tunnel {
		t := &tunnel.Tunnel{Flow: f, Switches: hops}
		for i := 0; i+1 < len(hops); i++ {
			t.Links = append(t.Links, net.FindLink(hops[i], hops[i+1]))
		}
		return t
	}
	f24 := tunnel.Flow{Src: s2, Dst: s4}
	f34 := tunnel.Flow{Src: s3, Dst: s4}
	f14 := tunnel.Flow{Src: s1, Dst: s4}
	tun := tunnel.NewSet(net)
	tun.Add(f24, mk(f24, s2, s4), mk(f24, s2, s1, s4))
	tun.Add(f34, mk(f34, s3, s4), mk(f34, s3, s1, s4))
	tun.Add(f14, mk(f14, s1, s4))
	solver := core.NewSolver(net, tun, core.Options{})

	fmt.Fprintln(w, "## Figs 3/5 — control-plane FFC walkthrough (new flow s1→s4 admission)")
	prev := core.NewState()
	prev.Rate[f24], prev.Alloc[f24] = 10, []float64{7, 3}
	prev.Rate[f34], prev.Alloc[f34] = 10, []float64{7, 3}
	tab := metrics.NewTable("kc", "admitted s1→s4", "paper")
	paper := map[int]float64{0: 10, 1: 7, 2: 4}
	for kc := 0; kc <= 2; kc++ {
		st, _, err := solver.Solve(core.Input{
			Demands: demand.Matrix{f24: 10, f34: 10, f14: 10},
			Prot:    core.Protection{Kc: kc}, Prev: prev,
		})
		if err != nil {
			return err
		}
		tab.Row(kc, st.Rate[f14], paper[kc])
	}
	fmt.Fprint(w, tab.String())

	fmt.Fprintln(w, "## Figs 2/4 — data-plane FFC walkthrough")
	demands := demand.Matrix{f24: 14, f34: 6}
	plain, _, err := solver.Solve(core.Input{Demands: demands})
	if err != nil {
		return err
	}
	ffc, _, err := solver.Solve(core.Input{Demands: demands, Prot: core.Protection{Ke: 1}})
	if err != nil {
		return err
	}
	tab2 := metrics.NewTable("approach", "throughput", "1-link-failure safe")
	tab2.Row("non-FFC", plain.TotalRate(), core.VerifyDataPlane(net, tun, plain, 1, 0, nil) == nil)
	tab2.Row("FFC ke=1", ffc.TotalRate(), core.VerifyDataPlane(net, tun, ffc, 1, 0, nil) == nil)
	fmt.Fprint(w, tab2.String())
	return nil
}

// RescalingRow is one row of the rescaling ablation.
type RescalingRow struct {
	Scheme     string
	Throughput float64
}

// AblationRescaling quantifies the "price of proportional rescaling" the
// paper argues is small (§4.4.3, §9): plain TE (ignores failures) versus
// the per-case-optimal scheme of Suchara et al. (arbitrary precomputed
// splits per single-link-failure case — needs switch support) versus FFC
// ke=1 (one configuration, commodity rescaling). FFC ≤ per-case ≤ plain
// always; how close FFC gets to per-case is the interesting number.
func AblationRescaling(e *Env, w io.Writer) ([]RescalingRow, error) {
	demands := sim.ScaleSeries(e.Series, e.Scale1)[0]
	solver := core.NewSolver(e.Net, e.Tun, e.Opts)

	plain, _, err := solver.Solve(core.Input{Demands: demands})
	if err != nil {
		return nil, err
	}
	ffcSt, _, err := solver.Solve(core.Input{Demands: demands, Prot: core.Protection{Ke: 1}})
	if err != nil {
		return nil, err
	}
	perCase, _, err := solver.SolvePerCaseOptimal(core.Input{Demands: demands}, core.SingleLinkCases(e.Net))
	if err != nil {
		return nil, err
	}
	rows := []RescalingRow{
		{"plain TE (no protection)", plain.TotalRate()},
		{"per-case optimal (Suchara-style bound)", perCase.TotalRate()},
		{"FFC ke=1 (single config + rescaling)", ffcSt.TotalRate()},
	}
	fmt.Fprintf(w, "## Ablation — price of proportional rescaling on %s (single-link failures)\n", e.Name)
	tab := metrics.NewTable("scheme", "throughput", "fraction-of-per-case")
	for _, r := range rows {
		tab.Row(r.Scheme, r.Throughput, r.Throughput/rows[1].Throughput)
	}
	fmt.Fprint(w, tab.String())
	return rows, nil
}
