// Command ffcprop runs the randomized metamorphic property harness from
// internal/prop outside the go-test budget: it generates seed-driven
// end-to-end scenarios (topology × demands × faults × protection × solve
// path), runs each through build → solve → verify → certify, and checks
// the paper's invariants (protection monotonicity, FFC ≤ TE, scale and
// relabeling invariance, certification, degraded fallback). On a violation
// it shrinks the scenario to a minimal failing case and writes a
// self-contained JSON repro.
//
// Sweep 100 scenarios starting at seed 1:
//
//	ffcprop -seed 1 -n 100
//
// Soak for an hour, saving any shrunk repro next to the logs:
//
//	ffcprop -seed $RANDOM -duration 1h -out repros/
//
// Replay a saved repro (also replayable via go test, see internal/prop):
//
//	ffcprop -repro repros/seed-123.json
//
// One NDJSON result line per scenario goes to stdout. Exit status: 0 when
// every scenario holds (or a -repro no longer reproduces), 1 when any
// invariant is violated (or a -repro still reproduces), 2 on usage or
// input errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ffc/internal/prop"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ffcprop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed       = fs.Int64("seed", 1, "first scenario seed; scenario i uses seed+i")
		n          = fs.Int("n", 25, "number of scenarios to run (ignored with -duration or -repro)")
		duration   = fs.Duration("duration", 0, "run scenarios until this much time has elapsed instead of a fixed -n")
		pathFlag   = fs.String("path", "", "restrict scenarios to one solve path: scratch, template, warm, parallel (default: as generated)")
		reproPath  = fs.String("repro", "", "replay one saved repro file instead of generating scenarios")
		outDir     = fs.String("out", "", "directory for shrunk repro files (default: current directory)")
		doShrink   = fs.Bool("shrink", true, "shrink failing scenarios before writing the repro")
		shrinkRuns = fs.Int("shrink-runs", 0, "cap on shrink candidate replays (0 = default)")
		verbose    = fs.Bool("v", false, "log every scenario to stderr, not just failures")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ffcprop: unexpected arguments %v\n", fs.Args())
		fs.Usage()
		return 2
	}

	if *reproPath != "" {
		return replay(*reproPath, stdout, stderr)
	}

	if *pathFlag != "" {
		switch *pathFlag {
		case prop.PathScratch, prop.PathTemplate, prop.PathWarm, prop.PathParallel:
		default:
			fmt.Fprintf(stderr, "ffcprop: unknown -path %q\n", *pathFlag)
			return 2
		}
	}

	out := bufio.NewWriter(stdout)
	defer out.Flush()

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	var ran, failed int
	for i := 0; ; i++ {
		if deadline.IsZero() {
			if i >= *n {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		sc := prop.Generate(*seed + int64(i))
		if *pathFlag != "" {
			sc.Path = *pathFlag
			sc.Name = fmt.Sprintf("%s-%s", sc.Name, *pathFlag)
		}
		res, err := prop.Run(sc)
		if err != nil {
			fmt.Fprintf(stderr, "ffcprop: %s: %v\n", sc.Name, err)
			return 2
		}
		ran++
		emit(out, result{Name: sc.Name, Seed: sc.Seed, Kind: sc.Kind, Path: sc.Path,
			Rate: res.Rate, Checked: res.Checked, Failures: res.Failures})
		if *verbose || !res.OK() {
			fmt.Fprintf(stderr, "ffcprop: %-10s %-8s %-8s rate=%.4g %s\n",
				sc.Name, sc.Kind, sc.Path, res.Rate, statusOf(res))
		}
		if res.OK() {
			continue
		}
		failed++
		failure := res.FirstFailure()
		rep := &prop.Repro{Failure: failure, Scenario: sc}
		if *doShrink {
			shrunk, stats := prop.Shrink(sc, failure, *shrinkRuns)
			fmt.Fprintf(stderr, "ffcprop: %s: shrunk to %d switches / %d flows (%d replays, %d accepted)\n",
				sc.Name, shrunk.Topo.NumSwitches(), len(shrunk.Demands), stats.Attempts, stats.Accepted)
			rep = &prop.Repro{Failure: failure, Shrink: stats, Scenario: shrunk}
		}
		file := filepath.Join(*outDir, fmt.Sprintf("%s-repro.json", sc.Name))
		if err := prop.WriteRepro(file, rep); err != nil {
			fmt.Fprintf(stderr, "ffcprop: writing %s: %v\n", file, err)
			return 2
		}
		fmt.Fprintf(stderr, "ffcprop: %s: %s\n", sc.Name, failure)
		fmt.Fprintf(stderr, "ffcprop: repro written to %s\n", file)
	}
	out.Flush()
	fmt.Fprintf(stderr, "ffcprop: %d scenario(s) run, %d failed\n", ran, failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// replay re-runs one saved repro and reports whether it still fails with
// the recorded invariant.
func replay(path string, stdout, stderr io.Writer) int {
	rep, err := prop.ReadRepro(path)
	if err != nil {
		fmt.Fprintf(stderr, "ffcprop: %v\n", err)
		return 2
	}
	res, reproduced, err := rep.Replay()
	if err != nil {
		fmt.Fprintf(stderr, "ffcprop: %s: %v\n", path, err)
		return 2
	}
	out := bufio.NewWriter(stdout)
	sc := rep.Scenario
	emit(out, result{Name: sc.Name, Seed: sc.Seed, Kind: sc.Kind, Path: sc.Path,
		Rate: res.Rate, Checked: res.Checked, Failures: res.Failures})
	out.Flush()
	if reproduced {
		fmt.Fprintf(stderr, "ffcprop: %s reproduces: %s\n", path, res.FirstFailure())
		return 1
	}
	fmt.Fprintf(stderr, "ffcprop: %s no longer reproduces (recorded: %s)\n", path, rep.Failure)
	return 0
}

// result is one NDJSON output line.
type result struct {
	Name     string         `json:"name"`
	Seed     int64          `json:"seed"`
	Kind     string         `json:"kind"`
	Path     string         `json:"path"`
	Rate     float64        `json:"rate"`
	Checked  []string       `json:"checked"`
	Failures []prop.Failure `json:"failures,omitempty"`
}

func statusOf(res *prop.Result) string {
	if res.OK() {
		return "ok"
	}
	return "FAIL " + res.FirstFailure().Invariant
}

func emit(out *bufio.Writer, r result) {
	blob, err := json.Marshal(r)
	if err != nil {
		panic(err) // result is always marshalable
	}
	out.Write(blob)
	out.WriteByte('\n')
}
