package core

import (
	"errors"

	"ffc/internal/obs"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// ErrTemplateMismatch is returned by ModelTemplate.Instantiate when the
// input's structure differs from the one the template was built for.
var ErrTemplateMismatch = errors.New("core: input does not match the template's frozen structure")

var (
	obsTemplateHits   = obs.NewCounter("core.template_hits")
	obsTemplateMisses = obs.NewCounter("core.template_misses")
)

// ModelTemplate is a TE formulation frozen for one structural fingerprint:
// the topology, tunnel set, and k-vector fix every variable and constraint
// index, so as long as successive inputs differ only in values (demands,
// capacities, rate caps/floors/fixings) the built LP can be re-instantiated
// by rewriting bounds, right-hand sides, and objective coefficients through
// the lp mutation API (SetBounds/SetRHS/SetObjCoef) instead of being
// re-formulated. The lp layer then also reuses its presolve plan, and a
// Session's warm-start basis still fits — the three caches compose.
//
// Invalidation rules (any of these is a structural change → Matches returns
// false and callers must build a fresh template):
//   - a different protection vector (kc, ke, kv), or kc > 0 at all
//     (control-plane FFC embeds the previous state's weights as
//     coefficients);
//   - a different candidate flow list (a flow's demand crossing zero adds
//     or removes variables);
//   - different down-link/down-switch sets (fault state selects which
//     tunnel terms exist and the τf network sizes);
//   - objectives other than MaxThroughput, mice selection, or
//     demand-uncertainty FFC (their input values become matrix
//     coefficients, not bounds/RHS).
//
// A ModelTemplate is not safe for concurrent use.
type ModelTemplate struct {
	s *Solver
	b *builder
	// in is the template's owned copy of the last instantiated input;
	// b.in points at it so the builder's bound/RHS helpers read the
	// current values.
	in         Input
	rebindable bool
	flows      []tunnel.Flow
	downLinks  map[topology.LinkID]bool
	downSw     map[topology.SwitchID]bool
}

// NewTemplate formulates in from scratch and freezes the result as a
// reusable template. The returned template's Instantiate only accepts
// inputs that Match the frozen structure.
func (s *Solver) NewTemplate(in Input) (*ModelTemplate, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	b := newBuilder(s, &in)
	if err := b.formulate(); err != nil {
		return nil, err
	}
	return newTemplate(s, b, in), nil
}

// newTemplate wraps an already-formulated builder. It records the
// structural fingerprint under which the model may be rebound later. Only
// the plain max-throughput shape qualifies: MinMLU/PlanCapacity embed
// capacities as coefficients, control-plane FFC (Kc > 0) embeds the
// previous state's weights, mice selection depends on demand values, and
// demand-uncertainty FFC embeds per-flow loads — all structure, not
// bounds/RHS.
func newTemplate(s *Solver, b *builder, in Input) *ModelTemplate {
	t := &ModelTemplate{s: s, b: b, in: in,
		flows:     b.flows,
		downLinks: in.DownLinks,
		downSw:    in.DownSwitches,
	}
	b.in = &t.in
	t.rebindable = s.Opts.Objective == MaxThroughput &&
		s.Opts.MiceFraction <= 0 &&
		in.Prot.Kc == 0 &&
		(in.Demand.Count <= 0 || in.Demand.Factor <= 1)
	return t
}

// Vars and Constraints report the frozen model's size.
func (t *ModelTemplate) Vars() int        { return t.b.model.NumVars() }
func (t *ModelTemplate) Constraints() int { return t.b.model.NumRows() }

// Matches reports whether in has the structure the template froze: same
// protection, same candidate flow list, same down sets, and a shape whose
// input values appear only in bounds and right-hand sides.
func (t *ModelTemplate) Matches(in *Input) bool {
	if t.b == nil || !t.rebindable {
		return false
	}
	if in.Prot != t.in.Prot {
		return false
	}
	if in.Demand.Count > 0 && in.Demand.Factor > 1 {
		return false
	}
	if !sameLinkSet(in.DownLinks, t.downLinks) || !sameSwitchSet(in.DownSwitches, t.downSw) {
		return false
	}
	// The candidate flow list (positive demand, has tunnels) must be
	// identical — it determines every variable and constraint.
	i := 0
	for _, f := range in.Demands.Flows() {
		if in.Demands[f] <= 0 || len(t.s.Tun.Tunnels(f)) == 0 {
			continue
		}
		if i >= len(t.flows) || t.flows[i] != f {
			return false
		}
		i++
	}
	return i == len(t.flows)
}

// Instantiate rewrites the frozen model for in — bounds, right-hand sides,
// and objective coefficients only; the sparsity pattern is untouched. It
// fails with ErrTemplateMismatch when in does not Match. After a successful
// Instantiate the model solves to a solution bit-identical to a scratch
// formulation of the same input (at the same simplex starting point).
func (t *ModelTemplate) Instantiate(in Input) error {
	if err := in.validate(); err != nil {
		return err
	}
	if !t.Matches(&in) {
		return ErrTemplateMismatch
	}
	t.instantiate(in)
	return nil
}

// instantiate is Instantiate after the Matches check: it re-derives every
// input-dependent bound, right-hand side, and objective coefficient of the
// cached model from in and returns the rebound builder.
func (t *ModelTemplate) instantiate(in Input) *builder {
	b := t.b
	t.in = in
	b.in = &t.in
	for _, f := range b.flows {
		lo, hi := b.rateBounds(f)
		b.model.SetBounds(b.bVar[f], lo, hi)
		// The rebindable shape is MaxThroughput: the objective is Σ bf.
		// Values can't change it, but restating it through SetObjCoef
		// keeps Instantiate a full value rewrite (and repairs any caller
		// mutation between solves).
		b.model.SetObjCoef(b.bVar[f], 1)
		if b.mice[f] {
			continue
		}
		for i, v := range b.aVar[f] {
			alo, ahi := b.allocBounds(f, i)
			b.model.SetBounds(v, alo, ahi)
		}
	}
	for l, row := range b.capRow {
		b.model.SetRHS(row, t.s.capacity(&t.in, l))
	}
	return b
}

func sameLinkSet(a, b map[topology.LinkID]bool) bool {
	for l, v := range a {
		if v && !b[l] {
			return false
		}
	}
	for l, v := range b {
		if v && !a[l] {
			return false
		}
	}
	return true
}

func sameSwitchSet(a, b map[topology.SwitchID]bool) bool {
	for s, v := range a {
		if v && !b[s] {
			return false
		}
	}
	for s, v := range b {
		if v && !a[s] {
			return false
		}
	}
	return true
}
