package ctrl

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ffc/internal/demand"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
	"ffc/internal/wire"
)

// snapshotVersion guards the on-disk schema; a mismatch is refused rather
// than misread.
const snapshotVersion = 1

// snapshotFile is the daemon's crash-recovery record: the installed plan in
// wire form plus the desired state needed to resume the control loop
// (demands, down sets, protection). Switches and links are named, so a
// snapshot survives a restart with a re-read topology file.
type snapshotFile struct {
	Version  int       `json:"version"`
	SavedAt  time.Time `json:"saved_at"`
	Seq      int64     `json:"seq"`
	Degraded string    `json:"degraded,omitempty"`

	Kc int `json:"kc"`
	Ke int `json:"ke"`
	Kv int `json:"kv"`

	Demands      []wire.DemandEntry `json:"demands"`
	DownLinks    [][2]string        `json:"down_links,omitempty"`
	DownSwitches []string           `json:"down_switches,omitempty"`

	State wire.StateFile `json:"state"`
}

// loadSnapshot reads and decodes a snapshot file.
func loadSnapshot(path string) (*snapshotFile, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap snapshotFile
	if err := json.Unmarshal(blob, &snap); err != nil {
		return nil, fmt.Errorf("ctrl: parsing snapshot %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("ctrl: snapshot %s has version %d, want %d", path, snap.Version, snapshotVersion)
	}
	return &snap, nil
}

// adoptSnapshot folds the snapshot's desired state (demands, down sets,
// protection) into the controller. Called from New before the loop starts,
// so no locking. Unknown names error: a snapshot from a different topology
// must not half-apply.
func (c *Controller) adoptSnapshot(snap *snapshotFile) error {
	dem := demand.Matrix{}
	for i, d := range snap.Demands {
		src, ok1 := c.net.SwitchByName(d.Src)
		dst, ok2 := c.net.SwitchByName(d.Dst)
		if !ok1 || !ok2 {
			return fmt.Errorf("snapshot demand %d: unknown switch %q/%q", i, d.Src, d.Dst)
		}
		dem[tunnel.Flow{Src: src, Dst: dst}] = d.Demand
	}
	for i, pair := range snap.DownLinks {
		src, ok1 := c.net.SwitchByName(pair[0])
		dst, ok2 := c.net.SwitchByName(pair[1])
		if !ok1 || !ok2 {
			return fmt.Errorf("snapshot down link %d: unknown switch %q/%q", i, pair[0], pair[1])
		}
		l := c.net.FindLink(src, dst)
		if l == topology.None {
			return fmt.Errorf("snapshot down link %d: no link %s-%s", i, pair[0], pair[1])
		}
		c.downLinks[l] = true
		if tw := c.net.Links[l].Twin; tw != topology.None {
			c.downLinks[tw] = true
		}
	}
	for i, name := range snap.DownSwitches {
		sw, ok := c.net.SwitchByName(name)
		if !ok {
			return fmt.Errorf("snapshot down switch %d: unknown switch %q", i, name)
		}
		c.downSwitches[sw] = true
	}
	if len(dem) > 0 {
		c.demands = dem
	}
	c.prot.Kc, c.prot.Ke, c.prot.Kv = snap.Kc, snap.Ke, snap.Kv
	return nil
}

// writeSnapshot persists the installed plan and desired state, atomically
// (write temp + rename). Rate-limited to Config.SnapshotEvery unless
// force (the final snapshot on Stop).
func (c *Controller) writeSnapshot(force bool) {
	if c.cfg.SnapshotPath == "" {
		return
	}
	now := time.Now()
	if !force && now.Sub(c.lastSnapshot) < c.cfg.SnapshotEvery {
		return
	}
	p := c.plan.Load()
	if p == nil || p.Seq == 0 {
		return // nothing solved or restored yet; keep any older snapshot
	}
	c.mu.Lock()
	snap := snapshotFile{
		Version:  snapshotVersion,
		SavedAt:  now,
		Seq:      p.Seq,
		Degraded: p.Degraded,
		Kc:       c.prot.Kc,
		Ke:       c.prot.Ke,
		Kv:       c.prot.Kv,
		State:    p.File,
	}
	for f, d := range c.demands {
		snap.Demands = append(snap.Demands, wire.DemandEntry{
			Src:    c.net.Switches[f.Src].Name,
			Dst:    c.net.Switches[f.Dst].Name,
			Demand: d,
		})
	}
	for l, down := range c.downLinks {
		if !down {
			continue
		}
		lk := c.net.Links[l]
		// Record each physical link once (the twin is re-derived on load).
		if lk.Twin != topology.None && lk.Twin < l {
			continue
		}
		snap.DownLinks = append(snap.DownLinks, [2]string{
			c.net.Switches[lk.Src].Name, c.net.Switches[lk.Dst].Name,
		})
	}
	for sw, down := range c.downSwitches {
		if down {
			snap.DownSwitches = append(snap.DownSwitches, c.net.Switches[sw].Name)
		}
	}
	c.mu.Unlock()
	sort.Slice(snap.Demands, func(i, j int) bool {
		if snap.Demands[i].Src != snap.Demands[j].Src {
			return snap.Demands[i].Src < snap.Demands[j].Src
		}
		return snap.Demands[i].Dst < snap.Demands[j].Dst
	})
	sort.Slice(snap.DownLinks, func(i, j int) bool {
		if snap.DownLinks[i][0] != snap.DownLinks[j][0] {
			return snap.DownLinks[i][0] < snap.DownLinks[j][0]
		}
		return snap.DownLinks[i][1] < snap.DownLinks[j][1]
	})
	sort.Strings(snap.DownSwitches)

	blob, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		c.cfg.Logf("ctrl: encoding snapshot: %v", err)
		return
	}
	tmp := c.cfg.SnapshotPath + ".tmp"
	if err := os.MkdirAll(filepath.Dir(c.cfg.SnapshotPath), 0o755); err != nil {
		c.cfg.Logf("ctrl: snapshot dir: %v", err)
		return
	}
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		c.cfg.Logf("ctrl: writing snapshot: %v", err)
		return
	}
	if err := os.Rename(tmp, c.cfg.SnapshotPath); err != nil {
		c.cfg.Logf("ctrl: installing snapshot: %v", err)
		return
	}
	c.lastSnapshot = now
	c.stats.snapshotWrites.Add(1)
	obsSnapshotWrites.Inc()
}
