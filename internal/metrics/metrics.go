// Package metrics provides the small statistics and text-rendering toolkit
// used by the experiment harness: empirical distributions (percentiles,
// CDFs) and aligned text tables for regenerating the paper's figures as
// terminal output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Dist accumulates samples of one scalar metric.
type Dist struct {
	xs     []float64
	sorted bool
}

// Add appends a sample.
func (d *Dist) Add(v float64) {
	d.xs = append(d.xs, v)
	d.sorted = false
}

// AddN appends v n times (weighted sample).
func (d *Dist) AddN(v float64, n int) {
	for i := 0; i < n; i++ {
		d.Add(v)
	}
}

// N returns the sample count.
func (d *Dist) N() int { return len(d.xs) }

// Sum returns the sample total.
func (d *Dist) Sum() float64 {
	var s float64
	for _, v := range d.xs {
		s += v
	}
	return s
}

// Mean returns the sample mean (0 for empty).
func (d *Dist) Mean() float64 {
	if len(d.xs) == 0 {
		return 0
	}
	return d.Sum() / float64(len(d.xs))
}

// Max returns the largest sample (0 for empty).
func (d *Dist) Max() float64 {
	m := 0.0
	for i, v := range d.xs {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.xs)
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) with linear
// interpolation; 0 for empty distributions.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	d.ensureSorted()
	if p <= 0 {
		return d.xs[0]
	}
	if p >= 100 {
		return d.xs[len(d.xs)-1]
	}
	pos := p / 100 * float64(len(d.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.xs[lo]
	}
	t := pos - float64(lo)
	return d.xs[lo]*(1-t) + d.xs[hi]*t
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	Y float64 // fraction of samples ≤ X
}

// CDF returns up to n evenly spaced CDF points (all points if n ≤ 0 or the
// sample is small).
func (d *Dist) CDF(n int) []CDFPoint {
	if len(d.xs) == 0 {
		return nil
	}
	d.ensureSorted()
	m := len(d.xs)
	if n <= 0 || n > m {
		n = m
	}
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * m / n
		if idx > m {
			idx = m
		}
		pts = append(pts, CDFPoint{X: d.xs[idx-1], Y: float64(idx) / float64(m)})
	}
	return pts
}

// FractionAbove returns the fraction of samples strictly greater than x.
func (d *Dist) FractionAbove(x float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	d.ensureSorted()
	i := sort.SearchFloat64s(d.xs, math.Nextafter(x, math.Inf(1)))
	return float64(len(d.xs)-i) / float64(len(d.xs))
}

// Table renders aligned text tables for harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends one row; values are formatted with %v (floats with %.4g).
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// RenderCDF prints a CDF as "x y" rows suitable for plotting, labelling the
// series.
func RenderCDF(label string, pts []CDFPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# series: %s\n", label)
	for _, p := range pts {
		fmt.Fprintf(&b, "%.6g %.4f\n", p.X, p.Y)
	}
	return b.String()
}

// SafeRatio returns num/den, or def when den is 0.
func SafeRatio(num, den, def float64) float64 {
	if den == 0 {
		return def
	}
	return num / den
}

// Stopwatch accumulates labelled wall-clock durations in insertion order —
// the harness records per-experiment wall time with it and compares
// parallel against serial passes.
type Stopwatch struct {
	names []string
	d     map[string]time.Duration
}

// Record adds d to the label's accumulated duration.
func (s *Stopwatch) Record(name string, d time.Duration) {
	if s.d == nil {
		s.d = map[string]time.Duration{}
	}
	if _, ok := s.d[name]; !ok {
		s.names = append(s.names, name)
	}
	s.d[name] += d
}

// Names returns the labels in first-recorded order.
func (s *Stopwatch) Names() []string { return s.names }

// Get returns the accumulated duration for a label (0 if never recorded).
func (s *Stopwatch) Get(name string) time.Duration { return s.d[name] }

// Total sums all recorded durations.
func (s *Stopwatch) Total() time.Duration {
	var t time.Duration
	for _, d := range s.d {
		t += d
	}
	return t
}

// Speedup returns serial/parallel as a × factor (0 when parallel is 0).
func Speedup(serial, parallel time.Duration) float64 {
	if parallel == 0 {
		return 0
	}
	return float64(serial) / float64(parallel)
}

// RenderSpeedup renders a wall-clock comparison of two Stopwatch passes
// over the same labels (parallel's label order), with a total row.
func RenderSpeedup(serial, parallel *Stopwatch) string {
	tab := NewTable("experiment", "serial", "parallel", "speedup")
	for _, n := range parallel.Names() {
		tab.Row(n, serial.Get(n).Round(time.Millisecond).String(),
			parallel.Get(n).Round(time.Millisecond).String(),
			Speedup(serial.Get(n), parallel.Get(n)))
	}
	tab.Row("total", serial.Total().Round(time.Millisecond).String(),
		parallel.Total().Round(time.Millisecond).String(),
		Speedup(serial.Total(), parallel.Total()))
	return tab.String()
}
