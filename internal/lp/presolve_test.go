package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestPresolveFoldsFixedVariables(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, Inf)
	f := m.NewVar("f", 3, 3) // fixed
	r := m.AddLE(NewExpr().Add(1, x).Add(2, f), 10)
	m.Maximize(NewExpr().Add(1, x).Add(5, f))
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// x ≤ 10 − 6 = 4; objective 4 + 15 = 19.
	if !almost(sol.Objective, 19, 1e-9) {
		t.Fatalf("objective %v, want 19", sol.Objective)
	}
	if sol.X[f] != 3 {
		t.Fatalf("fixed variable value %v", sol.X[f])
	}
	// Dual of the binding row survives presolve: marginal value 1.
	if !almost(sol.Duals[r], 1, 1e-9) {
		t.Fatalf("dual %v, want 1", sol.Duals[r])
	}
}

func TestPresolveDetectsFixedInfeasibility(t *testing.T) {
	m := NewModel()
	a := m.NewVar("a", 2, 2)
	b := m.NewVar("b", 3, 3)
	m.AddLE(NewExpr().Add(1, a).Add(1, b), 4) // 5 ≤ 4: impossible
	m.Maximize(NewExpr())
	sol, err := m.Solve()
	if err == nil || sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestPresolveVacuousEqualityRow(t *testing.T) {
	m := NewModel()
	a := m.NewVar("a", 2, 2)
	x := m.NewVar("x", 0, 9)
	m.AddEQ(NewExpr().Add(1, a), 2) // becomes 0 = 0 after folding
	m.AddLE(NewExpr().Add(1, x), 5)
	m.Maximize(NewExpr().Add(1, x))
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 5, 1e-9) {
		t.Fatalf("objective %v", sol.Objective)
	}
	if len(sol.Duals) != 2 || sol.Duals[0] != 0 {
		t.Fatalf("removed row must have zero dual: %v", sol.Duals)
	}
}

func TestPresolveAllRowsVacuous(t *testing.T) {
	m := NewModel()
	a := m.NewVar("a", 1, 1)
	x := m.NewVar("x", -2, 7)
	m.AddGE(NewExpr().Add(4, a), 2)
	m.Maximize(NewExpr().Add(3, x))
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 21, 1e-9) {
		t.Fatalf("objective %v, want 21", sol.Objective)
	}
	// Minimizing instead drives x to its lower bound.
	m.Minimize(NewExpr().Add(3, x))
	sol, err = m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, -6, 1e-9) {
		t.Fatalf("objective %v, want -6", sol.Objective)
	}
}

func TestNoRowsUnbounded(t *testing.T) {
	m := NewModel()
	m.NewVar("fix", 1, 1)
	m.NewVar("x", 0, Inf)
	m.Maximize(NewExpr().Add(1, Var(1)))
	sol, _ := m.Solve()
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

// TestPresolveRandomEquivalence: models with a random subset of variables
// fixed must solve to the same optimum whether or not presolve fires
// (comparison against a clone where fixing is expressed as an equality row,
// which presolve cannot remove).
func TestPresolveRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 60; trial++ {
		n, k := 6, 5
		type rowSpec struct {
			coef []float64
			rhs  float64
			sns  Sense
		}
		var rows []rowSpec
		objc := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		fixed := make([]bool, n)
		for j := 0; j < n; j++ {
			lo[j] = float64(rng.Intn(5))
			hi[j] = lo[j] + float64(rng.Intn(6))
			objc[j] = float64(rng.Intn(9) - 4)
			fixed[j] = rng.Intn(3) == 0
		}
		for i := 0; i < k; i++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = float64(rng.Intn(7) - 3)
			}
			rows = append(rows, rowSpec{coef, float64(rng.Intn(30)), Sense(rng.Intn(2))})
		}
		build := func(fixViaBounds bool) *Model {
			m := NewModel()
			vars := make([]Var, n)
			for j := 0; j < n; j++ {
				l, h := lo[j], hi[j]
				if fixed[j] && fixViaBounds {
					l, h = lo[j], lo[j]
				}
				vars[j] = m.NewVar("v", l, h)
			}
			for j := 0; j < n; j++ {
				if fixed[j] && !fixViaBounds {
					m.AddEQ(NewExpr().Add(1, vars[j]), lo[j])
				}
			}
			for _, r := range rows {
				e := NewExpr()
				for j, c := range r.coef {
					e.Add(c, vars[j])
				}
				m.AddConstraint(e, r.sns, r.rhs)
			}
			obj := NewExpr()
			for j, c := range objc {
				obj.Add(c, vars[j])
			}
			m.Maximize(obj)
			return m
		}
		sa, ea := build(true).Solve()  // presolve folds the fixed vars
		sb, eb := build(false).Solve() // equality rows keep them alive
		if (ea == nil) != (eb == nil) {
			t.Fatalf("trial %d: statuses diverge: %v vs %v", trial, sa.Status, sb.Status)
		}
		if ea == nil && math.Abs(sa.Objective-sb.Objective) > 1e-6 {
			t.Fatalf("trial %d: presolved obj %v != reference %v", trial, sa.Objective, sb.Objective)
		}
	}
}

func TestExprHelpers(t *testing.T) {
	e := NewExpr().Add(2, Var(0)).AddConst(1)
	c := e.Clone()
	c.Add(5, Var(1))
	if len(e.Terms) != 1 {
		t.Fatal("Clone shares term storage")
	}
	s := Sum(Var(0), Var(1), Var(2))
	if len(s.Terms) != 3 || s.Terms[1].Coef != 1 {
		t.Fatalf("Sum wrong: %+v", s)
	}
	combined := NewExpr().AddExpr(2, e) // 4x0 + 2
	if combined.Constant != 2 || combined.Terms[0].Coef != 4 {
		t.Fatalf("AddExpr wrong: %+v", combined)
	}
	if NewExpr().AddExpr(0, e).Constant != 0 {
		t.Fatal("AddExpr with zero scale should be a no-op")
	}
	if got := e.String(); got != "2*v0 + 1" {
		t.Fatalf("String = %q", got)
	}
	if got := NewExpr().String(); got != "0" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestModelAccessors(t *testing.T) {
	m := NewModel()
	x := m.NewVar("rate", 1, 5)
	if m.NumVars() != 1 || m.NumRows() != 0 {
		t.Fatal("counts wrong")
	}
	if lo, hi := m.Bounds(x); lo != 1 || hi != 5 {
		t.Fatal("Bounds wrong")
	}
	if m.VarName(x) != "rate" {
		t.Fatal("VarName wrong")
	}
	m.AddLE(NewExpr().Add(1, x), 4)
	if m.NumRows() != 1 {
		t.Fatal("row count wrong")
	}
	for _, s := range []Sense{LE, GE, EQ, Sense(9)} {
		if s.String() == "" {
			t.Fatal("empty sense string")
		}
	}
	for _, st := range []Status{Optimal, Infeasible, Unbounded, IterLimit, Status(9)} {
		if st.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

func TestNewVarPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel().NewVar("bad", 2, 1)
}

func TestSetBoundsPanicsOnBadBounds(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SetBounds(x, 3, 2)
}

// TestDenseRefactorPath forces enough pivots on a dense-rep model to hit
// the 256-update reinversion (invertInPlace path).
func TestDenseRefactorPath(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n, k := 200, 150
	m := NewModel()
	vars := make([]Var, n)
	for j := range vars {
		vars[j] = m.NewVar("v", 0, 3)
	}
	for i := 0; i < k; i++ {
		e := NewExpr()
		for c := 0; c < 5; c++ {
			e.Add(0.3+r.Float64(), vars[r.Intn(n)])
		}
		m.AddLE(e, 2+r.Float64()*8)
	}
	obj := NewExpr()
	for _, v := range vars {
		obj.Add(r.Float64(), v)
	}
	m.Maximize(obj)
	m.forceRep = 1
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Iters <= 256 {
		t.Skipf("only %d iterations; dense refactor not exercised", sol.Iters)
	}
}
