package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ffc/internal/topology"
	"ffc/internal/wire"
)

// genTopo runs topogen with the given args plus -out into a temp file and
// returns the written topology after it passes the same load path ffcte and
// ffccheck use (json.Unmarshal + Validate).
func genTopo(t *testing.T, args ...string) *topology.Network {
	t.Helper()
	out := filepath.Join(t.TempDir(), "net.json")
	var stdout, stderr bytes.Buffer
	if err := run(append(args, "-out", out), &stdout, &stderr); err != nil {
		t.Fatalf("topogen %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var net topology.Network
	if err := json.Unmarshal(blob, &net); err != nil {
		t.Fatalf("topogen %v wrote unparsable topology: %v", args, err)
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("topogen %v wrote invalid topology: %v", args, err)
	}
	return &net
}

// TestKindsRoundTrip generates every -kind and loads the result through the
// wire/topology loaders.
func TestKindsRoundTrip(t *testing.T) {
	abilene := filepath.Join("..", "..", "examples", "real_topology", "abilene.graphml")
	cases := []struct {
		name string
		args []string
	}{
		{"lnet", []string{"-kind", "lnet", "-sites", "5", "-seed", "1"}},
		{"snet", []string{"-kind", "snet"}},
		{"testbed", []string{"-kind", "testbed"}},
		{"example4", []string{"-kind", "example4"}},
		{"fattree", []string{"-kind", "fattree", "-arity", "4"}},
		{"graphml", []string{"-kind", "graphml", "-in", abilene}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			net := genTopo(t, tc.args...)
			if net.NumSwitches() < 2 || net.NumLinks() < 2 {
				t.Errorf("%s: degenerate topology: %d switches, %d links",
					tc.name, net.NumSwitches(), net.NumLinks())
			}
		})
	}
}

// TestSeedPinnedGoldens pins structural facts of the seeded generators so a
// determinism regression (or an accidental generator change) fails loudly.
func TestSeedPinnedGoldens(t *testing.T) {
	t.Parallel()
	lnet := genTopo(t, "-kind", "lnet", "-sites", "5", "-seed", "7")
	lnet2 := genTopo(t, "-kind", "lnet", "-sites", "5", "-seed", "7")
	a, _ := json.Marshal(lnet)
	b, _ := json.Marshal(lnet2)
	if !bytes.Equal(a, b) {
		t.Fatal("lnet with the same seed differs between runs")
	}
	other := genTopo(t, "-kind", "lnet", "-sites", "5", "-seed", "8")
	c, _ := json.Marshal(other)
	if bytes.Equal(a, c) {
		t.Fatal("lnet ignores the seed: seeds 7 and 8 are identical")
	}
	// 5 sites × 2 switches each is the LNetConfig default.
	if n := lnet.NumSwitches(); n != 10 {
		t.Errorf("lnet -sites 5: %d switches, want 10", n)
	}

	ft := genTopo(t, "-kind", "fattree", "-arity", "4")
	// Arity-4 fat tree: 4 core + 8 aggregation + 8 edge = 20 switches.
	if n := ft.NumSwitches(); n != 20 {
		t.Errorf("fattree -arity 4: %d switches, want 20", n)
	}
}

// TestTopologyStableWithDemands pins the stream split: the topology bytes
// must not depend on whether -demands is also generated.
func TestTopologyStableWithDemands(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	bare := filepath.Join(dir, "bare.json")
	withDem := filepath.Join(dir, "with.json")
	demFile := filepath.Join(dir, "dem.json")

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-kind", "lnet", "-sites", "4", "-seed", "3", "-out", bare}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "lnet", "-sites", "4", "-seed", "3", "-out", withDem, "-demands", demFile}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(bare)
	b, _ := os.ReadFile(withDem)
	if !bytes.Equal(a, b) {
		t.Error("topology bytes change when -demands is requested")
	}

	// The demand file must parse against its topology and be non-trivial.
	var net topology.Network
	if err := json.Unmarshal(b, &net); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(demFile)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wire.ParseDemands(&net, blob)
	if err != nil {
		t.Fatalf("generated demands do not parse: %v", err)
	}
	if m.Total() <= 0 {
		t.Error("generated demand matrix is empty")
	}

	// Same seed again: identical demand bytes.
	demFile2 := filepath.Join(dir, "dem2.json")
	out2 := filepath.Join(dir, "net2.json")
	if err := run([]string{"-kind", "lnet", "-sites", "4", "-seed", "3", "-out", out2, "-demands", demFile2}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	blob2, _ := os.ReadFile(demFile2)
	if !bytes.Equal(blob, blob2) {
		t.Error("demand bytes differ between identical invocations")
	}
}

// TestErrors pins the error paths.
func TestErrors(t *testing.T) {
	t.Parallel()
	for _, args := range [][]string{
		{"-kind", "bogus"},
		{"-kind", "graphml"}, // missing -in
		{"-kind", "graphml", "-in", filepath.Join(t.TempDir(), "missing.graphml")},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

// TestStdoutDefault writes to stdout when -out is omitted.
func TestStdoutDefault(t *testing.T) {
	t.Parallel()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-kind", "example4"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "switches") {
		t.Errorf("stdout does not look like a topology:\n%.200s", stdout.String())
	}
}
