package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"ffc/internal/prop"
)

// TestSweepClean runs a short seed sweep and expects every scenario to hold.
func TestSweepClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-seed", "4", "-n", "3", "-out", t.TempDir()}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 NDJSON lines, got %d:\n%s", len(lines), stdout.String())
	}
	for _, line := range lines {
		var r struct {
			Name     string   `json:"name"`
			Checked  []string `json:"checked"`
			Failures []any    `json:"failures"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if len(r.Failures) != 0 {
			t.Errorf("%s reported failures: %s", r.Name, line)
		}
		if len(r.Checked) < 6 {
			t.Errorf("%s checked only %d invariants", r.Name, len(r.Checked))
		}
	}
}

// TestReplayCommittedRepro replays the checked-in broken-capacity repro —
// the same artifact internal/prop's TestCommittedRepro replays through the
// go-test path — and expects it to still reproduce (exit 1).
func TestReplayCommittedRepro(t *testing.T) {
	repro := filepath.Join("..", "..", "internal", "prop", "testdata", "broken_capacity_repro.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-repro", repro}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (still reproduces); stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "reproduces") {
		t.Errorf("stderr does not mention reproduction:\n%s", stderr.String())
	}
	var r struct {
		Failures []prop.Failure `json:"failures"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &r); err != nil {
		t.Fatalf("bad NDJSON: %v", err)
	}
	if len(r.Failures) == 0 || r.Failures[0].Invariant != prop.InvCertify {
		t.Errorf("replay failures %v, want %s first", r.Failures, prop.InvCertify)
	}
}

// TestFailureWritesRepro drives the find → shrink → write pipeline with an
// injected broken scenario file, then replays what the tool wrote.
func TestFailureWritesRepro(t *testing.T) {
	broken, err := prop.MutateWorstLink(prop.Generate(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := prop.Run(broken)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("mutated scenario unexpectedly holds")
	}
	failure := res.FirstFailure()

	dir := t.TempDir()
	shrunk, stats := prop.Shrink(broken, failure, 0)
	file := filepath.Join(dir, "case.json")
	if err := prop.WriteRepro(file, &prop.Repro{Failure: failure, Shrink: stats, Scenario: shrunk}); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-repro", file}, &stdout, &stderr); code != 1 {
		t.Fatalf("replay of freshly shrunk repro: exit %d, want 1; stderr:\n%s", code, stderr.String())
	}
}

// TestUsageErrors pins the exit-2 convention.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-path", "bogus"},
		{"-repro", filepath.Join(t.TempDir(), "missing.json")},
		{"stray-positional"},
		{"-badflag"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

// TestPathOverride forces every scenario in a small sweep onto one solve
// path.
func TestPathOverride(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-seed", "1", "-n", "2", "-path", "scratch", "-out", t.TempDir()}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		var r struct {
			Path string `json:"path"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatal(err)
		}
		if r.Path != "scratch" {
			t.Errorf("path %q, want scratch", r.Path)
		}
	}
}
