package lp

import (
	"math"
	"math/rand"
	"testing"
)

func requireOptimal(t *testing.T, sol *Solution, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("Solve: %v (status %v)", err, sol.Status)
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleMaximize(t *testing.T) {
	// max x+y s.t. x+2y ≤ 14, 3x−y ≥ 0, x−y ≤ 2 → (6,4), obj 10.
	m := NewModel()
	x := m.NewVar("x", 0, Inf)
	y := m.NewVar("y", 0, Inf)
	m.AddLE(NewExpr().Add(1, x).Add(2, y), 14)
	m.AddGE(NewExpr().Add(3, x).Add(-1, y), 0)
	m.AddLE(NewExpr().Add(1, x).Add(-1, y), 2)
	m.Maximize(NewExpr().Add(1, x).Add(1, y))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 10, 1e-6) {
		t.Fatalf("objective = %v, want 10", sol.Objective)
	}
	if !almost(sol.Value(x), 6, 1e-6) || !almost(sol.Value(y), 4, 1e-6) {
		t.Fatalf("x,y = %v,%v want 6,4", sol.Value(x), sol.Value(y))
	}
}

func TestMinimize(t *testing.T) {
	// min 2x+3y s.t. x+y ≥ 10, x ≥ 2, y ≥ 3 → x=7,y=3, obj 23.
	m := NewModel()
	x := m.NewVar("x", 2, Inf)
	y := m.NewVar("y", 3, Inf)
	m.AddGE(NewExpr().Add(1, x).Add(1, y), 10)
	m.Minimize(NewExpr().Add(2, x).Add(3, y))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 23, 1e-6) {
		t.Fatalf("objective = %v, want 23", sol.Objective)
	}
}

func TestEquality(t *testing.T) {
	// max x s.t. x + y = 5, y ≥ 2 → x = 3.
	m := NewModel()
	x := m.NewVar("x", 0, Inf)
	y := m.NewVar("y", 2, Inf)
	m.AddEQ(NewExpr().Add(1, x).Add(1, y), 5)
	m.Maximize(NewExpr().Add(1, x))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Value(x), 3, 1e-6) {
		t.Fatalf("x = %v, want 3", sol.Value(x))
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 1)
	m.AddGE(NewExpr().Add(1, x), 2)
	m.Maximize(NewExpr().Add(1, x))
	sol, err := m.Solve()
	if err == nil || sol.Status != Infeasible {
		t.Fatalf("status = %v, err = %v; want infeasible", sol.Status, err)
	}
}

func TestInfeasibleEqualitySystem(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, Inf)
	y := m.NewVar("y", 0, Inf)
	m.AddEQ(NewExpr().Add(1, x).Add(1, y), 5)
	m.AddEQ(NewExpr().Add(1, x).Add(1, y), 7)
	m.Minimize(NewExpr().Add(1, x))
	sol, _ := m.Solve()
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, Inf)
	y := m.NewVar("y", 0, Inf)
	m.AddGE(NewExpr().Add(1, x).Add(-1, y), 1)
	m.Maximize(NewExpr().Add(1, x))
	sol, _ := m.Solve()
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestBoundedObjectiveViaVariableBounds(t *testing.T) {
	// No rows at all besides one trivial constraint; optimum at upper bounds.
	m := NewModel()
	x := m.NewVar("x", 0, 7)
	y := m.NewVar("y", -2, 3)
	m.AddLE(NewExpr().Add(1, x).Add(1, y), 100)
	m.Maximize(NewExpr().Add(2, x).Add(1, y))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 17, 1e-6) {
		t.Fatalf("objective = %v, want 17", sol.Objective)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x+y with y free, x ≥ 0, x − y ≥ 3, y ≥ −5 (row) → y=−5, x=0? no:
	// x ≥ y+3 ≥ −2 → x ≥ 0 binds; min at y=−5, x=0 gives x−y=5 ≥ 3 ok, obj −5.
	m := NewModel()
	x := m.NewVar("x", 0, Inf)
	y := m.NewVar("y", math.Inf(-1), Inf)
	m.AddGE(NewExpr().Add(1, x).Add(-1, y), 3)
	m.AddGE(NewExpr().Add(1, y), -5)
	m.Minimize(NewExpr().Add(1, x).Add(1, y))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, -5, 1e-6) {
		t.Fatalf("objective = %v, want -5", sol.Objective)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// max x+y, x ∈ [−4,−1], y ∈ [−3, 10], x + y ≤ 0 → x=−1, y=1, obj 0.
	m := NewModel()
	x := m.NewVar("x", -4, -1)
	y := m.NewVar("y", -3, 10)
	m.AddLE(NewExpr().Add(1, x).Add(1, y), 0)
	m.Maximize(NewExpr().Add(1, x).Add(1, y))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 0, 1e-6) {
		t.Fatalf("objective = %v, want 0", sol.Objective)
	}
}

func TestFixedVariables(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 5, 5)
	y := m.NewVar("y", 0, Inf)
	m.AddLE(NewExpr().Add(1, x).Add(1, y), 8)
	m.Maximize(NewExpr().Add(1, y))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Value(x), 5, 1e-9) || !almost(sol.Value(y), 3, 1e-6) {
		t.Fatalf("x,y = %v,%v want 5,3", sol.Value(x), sol.Value(y))
	}
}

func TestFixedVariableForcesPhase1(t *testing.T) {
	// bf fixed at 4 while coverage Σa ≥ bf starts violated at a=0; this is
	// the shape of frozen flows in max-min fairness iterations.
	m := NewModel()
	b := m.NewVar("b", 4, 4)
	a1 := m.NewVar("a1", 0, Inf)
	a2 := m.NewVar("a2", 0, Inf)
	m.AddGE(NewExpr().Add(1, a1).Add(1, a2).Add(-1, b), 0)
	m.AddLE(NewExpr().Add(1, a1), 3)
	m.AddLE(NewExpr().Add(1, a2), 3)
	m.Minimize(NewExpr().Add(1, a1).Add(1, a2))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 4, 1e-6) {
		t.Fatalf("objective = %v, want 4", sol.Objective)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Classic degenerate vertex: several constraints meet at the optimum.
	m := NewModel()
	x := m.NewVar("x", 0, Inf)
	y := m.NewVar("y", 0, Inf)
	m.AddLE(NewExpr().Add(1, x), 1)
	m.AddLE(NewExpr().Add(1, y), 1)
	m.AddLE(NewExpr().Add(1, x).Add(1, y), 2)
	m.AddLE(NewExpr().Add(2, x).Add(1, y), 3)
	m.Maximize(NewExpr().Add(1, x).Add(1, y))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 2, 1e-6) {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestConstantInExprAndObjective(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 10)
	// x + 5 ≤ 8  →  x ≤ 3
	m.AddLE(NewExpr().Add(1, x).AddConst(5), 8)
	m.Maximize(NewExpr().Add(2, x).AddConst(100))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 106, 1e-6) {
		t.Fatalf("objective = %v, want 106", sol.Objective)
	}
}

func TestDuplicateTermsMerge(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, Inf)
	// x + x ≤ 6 → x ≤ 3
	m.AddLE(NewExpr().Add(1, x).Add(1, x), 6)
	m.Maximize(NewExpr().Add(1, x).Add(2, x)) // 3x
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 9, 1e-6) {
		t.Fatalf("objective = %v, want 9", sol.Objective)
	}
}

func TestEmptyObjective(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 3)
	m.AddGE(NewExpr().Add(1, x), 1)
	m.Maximize(NewExpr())
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if sol.Value(x) < 1-1e-7 || sol.Value(x) > 3+1e-7 {
		t.Fatalf("x = %v outside [1,3]", sol.Value(x))
	}
}

func TestEmptyRowFeasible(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 1)
	m.AddLE(NewExpr(), 5) // 0 ≤ 5, trivially true
	m.Maximize(NewExpr().Add(1, x))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 1, 1e-6) {
		t.Fatalf("objective = %v, want 1", sol.Objective)
	}
}

func TestEmptyRowInfeasible(t *testing.T) {
	m := NewModel()
	_ = m.NewVar("x", 0, 1)
	m.AddGE(NewExpr(), 5) // 0 ≥ 5, false
	m.Maximize(NewExpr())
	sol, _ := m.Solve()
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestMultiCommodityFlowShape(t *testing.T) {
	// Two flows share a bottleneck: max b1+b2, b1 ≤ 7, b2 ≤ 9,
	// tunnel split: a11+a12 ≥ b1, a21 ≥ b2; link caps:
	// a11+a21 ≤ 10, a12 ≤ 4. Optimum: b2=9 ... shared link a11 ≤ 1,
	// b1 ≤ 1+4=5 → total 14.
	m := NewModel()
	b1 := m.NewVar("b1", 0, 7)
	b2 := m.NewVar("b2", 0, 9)
	a11 := m.NewVar("a11", 0, Inf)
	a12 := m.NewVar("a12", 0, Inf)
	a21 := m.NewVar("a21", 0, Inf)
	m.AddGE(NewExpr().Add(1, a11).Add(1, a12).Add(-1, b1), 0)
	m.AddGE(NewExpr().Add(1, a21).Add(-1, b2), 0)
	m.AddLE(NewExpr().Add(1, a11).Add(1, a21), 10)
	m.AddLE(NewExpr().Add(1, a12), 4)
	m.Maximize(NewExpr().Add(1, b1).Add(1, b2))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 14, 1e-6) {
		t.Fatalf("objective = %v, want 14", sol.Objective)
	}
}

// TestRandomAgainstEnumeration cross-checks the simplex against brute-force
// vertex enumeration on random small LPs with finite bounds.
func TestRandomAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 400
	agreeInfeasible, agreeOptimal := 0, 0
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(3) // 2..4 variables
		k := 1 + rng.Intn(4) // 1..4 rows
		p := &refProblem{n: n, maximize: rng.Intn(2) == 0}
		for j := 0; j < n; j++ {
			lo := float64(rng.Intn(7)) - 3
			hi := lo + float64(rng.Intn(8))
			p.lo = append(p.lo, lo)
			p.hi = append(p.hi, hi)
			p.obj = append(p.obj, float64(rng.Intn(11)-5))
		}
		for i := 0; i < k; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(9) - 4)
			}
			p.rows = append(p.rows, row)
			p.sense = append(p.sense, Sense(rng.Intn(3)))
			p.rhs = append(p.rhs, float64(rng.Intn(21)-10))
		}
		want, _, feasible := refSolve(p)
		m, _ := p.toModel()
		sol, err := m.Solve()
		if !feasible {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: reference infeasible, simplex %v (obj %v)", trial, sol.Status, sol.Objective)
			}
			agreeInfeasible++
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: reference obj %v but simplex failed: %v", trial, want, err)
		}
		if !almost(sol.Objective, want, 1e-5) {
			t.Fatalf("trial %d: simplex obj %v, reference %v", trial, sol.Objective, want)
		}
		// The returned point must itself be feasible.
		for i, row := range p.rows {
			e := NewExpr()
			for j, c := range row {
				e.Add(c, Var(j))
			}
			if v := sol.Violation(e, p.sense[i], p.rhs[i]); v > 1e-6 {
				t.Fatalf("trial %d: row %d violated by %v", trial, i, v)
			}
		}
		agreeOptimal++
	}
	if agreeOptimal < trials/4 {
		t.Fatalf("only %d/%d trials were feasible; generator is degenerate", agreeOptimal, trials)
	}
}

// TestLargerRandomFeasibility stresses the solver on bigger random LPs where
// we can't enumerate, verifying returned points satisfy all constraints and
// that objective is at least as good as a greedy feasible point.
func TestLargerRandomFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n, k := 30, 40
		m := NewModel()
		vars := make([]Var, n)
		for j := range vars {
			vars[j] = m.NewVar("v", 0, 1+rng.Float64()*9)
		}
		type rowT struct {
			e     *Expr
			sense Sense
			rhs   float64
		}
		var rowsT []rowT
		for i := 0; i < k; i++ {
			e := NewExpr()
			for c := 0; c < 5; c++ {
				e.Add(rng.Float64()*4, vars[rng.Intn(n)])
			}
			rhs := 5 + rng.Float64()*20
			m.AddLE(e, rhs)
			rowsT = append(rowsT, rowT{e, LE, rhs})
		}
		obj := NewExpr()
		for _, v := range vars {
			obj.Add(rng.Float64(), v)
		}
		m.Maximize(obj)
		sol, err := m.Solve()
		requireOptimal(t, sol, err)
		for i, r := range rowsT {
			if v := sol.Violation(r.e, r.sense, r.rhs); v > 1e-6 {
				t.Fatalf("trial %d row %d violated by %v", trial, i, v)
			}
		}
		if sol.Objective < 0 {
			t.Fatalf("trial %d: negative objective %v for nonnegative costs", trial, sol.Objective)
		}
	}
}

func TestSetBoundsReSolve(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 5)
	m.AddLE(NewExpr().Add(1, x), 100)
	m.Maximize(NewExpr().Add(1, x))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 5, 1e-9) {
		t.Fatalf("objective = %v, want 5", sol.Objective)
	}
	m.SetBounds(x, 0, 2)
	sol, err = m.Solve()
	requireOptimal(t, sol, err)
	if !almost(sol.Objective, 2, 1e-9) {
		t.Fatalf("objective = %v, want 2 after SetBounds", sol.Objective)
	}
}

func TestSolutionHelpers(t *testing.T) {
	m := NewModel()
	x := m.NewVar("x", 0, 4)
	m.AddLE(NewExpr().Add(1, x), 3)
	m.Maximize(NewExpr().Add(1, x))
	sol, err := m.Solve()
	requireOptimal(t, sol, err)
	e := NewExpr().Add(2, x).AddConst(1)
	if !almost(sol.EvalExpr(e), 7, 1e-9) {
		t.Fatalf("EvalExpr = %v, want 7", sol.EvalExpr(e))
	}
	if v := sol.Violation(e, LE, 7); v > 1e-9 {
		t.Fatalf("Violation = %v, want ≤ 0", v)
	}
}

func BenchmarkSimplexMediumLP(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	build := func() *Model {
		n, k := 200, 150
		m := NewModel()
		vars := make([]Var, n)
		for j := range vars {
			vars[j] = m.NewVar("v", 0, 10)
		}
		for i := 0; i < k; i++ {
			e := NewExpr()
			for c := 0; c < 6; c++ {
				e.Add(0.5+rng.Float64(), vars[rng.Intn(n)])
			}
			m.AddLE(e, 10+rng.Float64()*30)
		}
		obj := NewExpr()
		for _, v := range vars {
			obj.Add(rng.Float64(), v)
		}
		m.Maximize(obj)
		return m
	}
	model := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
