package core

import (
	"bytes"
	"math/rand"
	"testing"

	"ffc/internal/demand"
	"ffc/internal/lp"
	"ffc/internal/sortnet"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// buildFixture lays out tunnels for every site-pair flow of net and returns
// a drifting demand series over them — the template's target regime:
// structure frozen, values moving.
func buildFixture(tb testing.TB, net *topology.Network, intervals int, seed int64) (*tunnel.Set, demand.Series) {
	tb.Helper()
	series := demand.Generate(net, demand.Config{Intervals: intervals, NoiseSigma: 0.1},
		rand.New(rand.NewSource(seed)))
	set := tunnel.Layout(net, series[0].Flows(), tunnel.LayoutConfig{TunnelsPerFlow: 4, P: 1, Q: 3})
	return set, series
}

// modelBytes serializes a built LP; byte equality of two serializations is
// the strongest equivalence the suite asserts — identical variables, order,
// coefficients, bounds, and RHS, bit for bit.
func modelBytes(tb testing.TB, m *lp.Model) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// scratchBuilder formulates in from scratch on s, failing the test on error.
func scratchBuilder(tb testing.TB, s *Solver, in Input) *builder {
	tb.Helper()
	b := newBuilder(s, &in)
	if err := b.formulate(); err != nil {
		tb.Fatal(err)
	}
	return b
}

// TestTemplateInstantiateBitIdentical freezes a ModelTemplate on interval 0
// and re-instantiates it for later intervals, checking the rebound model is
// byte-identical to a scratch formulation of the same input — on the
// paper's S-Net WAN and on a fat-tree DCN. For the first re-instantiated
// interval both models are also solved cold and must agree on the exact
// solution vector (same model bytes + same deterministic simplex ⇒ same
// bits).
func TestTemplateInstantiateBitIdentical(t *testing.T) {
	nets := []struct {
		name string
		net  *topology.Network
		ke   int
	}{
		{"snet", topology.SNet(), 2},
		{"fattree", topology.FatTree(4, 10), 1},
	}
	for _, tc := range nets {
		t.Run(tc.name, func(t *testing.T) {
			set, series := buildFixture(t, tc.net, 3, 7)
			s := NewSolver(tc.net, set, Options{BuildWorkers: 1})
			mkIn := func(i int) Input {
				return Input{Demands: series[i], Prot: Protection{Ke: tc.ke}}
			}
			tmpl, err := s.NewTemplate(mkIn(0))
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(series); i++ {
				if err := tmpl.Instantiate(mkIn(i)); err != nil {
					t.Fatalf("interval %d: %v", i, err)
				}
				scratch := scratchBuilder(t, s, mkIn(i))
				got, want := modelBytes(t, tmpl.b.model), modelBytes(t, scratch.model)
				if !bytes.Equal(got, want) {
					t.Fatalf("interval %d: instantiated model differs from scratch formulation (%d vs %d bytes)",
						i, len(got), len(want))
				}
				if i != 1 {
					continue
				}
				solT, err := tmpl.b.model.Solve()
				if err != nil {
					t.Fatal(err)
				}
				solS, err := scratch.model.Solve()
				if err != nil {
					t.Fatal(err)
				}
				if solT.Objective != solS.Objective {
					t.Fatalf("objectives differ: template %v, scratch %v", solT.Objective, solS.Objective)
				}
				if len(solT.X) != len(solS.X) {
					t.Fatalf("solution lengths differ: %d vs %d", len(solT.X), len(solS.X))
				}
				for j := range solT.X {
					if solT.X[j] != solS.X[j] {
						t.Fatalf("x[%d] differs: template %v, scratch %v", j, solT.X[j], solS.X[j])
					}
				}
			}
		})
	}
}

// TestBuildWorkersByteIdentical checks the parallel-emission guarantee from
// Options.BuildWorkers: the formulated model is byte-identical for every
// worker setting, across every encoding and the objectives/features that
// emit constraint blocks in parallel (capacity rows, data-plane sortnet
// blocks, control-plane blocks, capacity-expansion variables).
func TestBuildWorkersByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net, set, flows := randomNetwork(rng, 8, 6)
	demands := demand.Matrix{}
	for i, f := range flows {
		demands[f] = 2 + float64(i)
	}
	plain := NewSolver(net, set, Options{})
	prev, _, err := plain.Solve(Input{Demands: demands})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		opts Options
		in   Input
	}{
		{"sortnet_ke_kv", Options{}, Input{Demands: demands, Prot: Protection{Ke: 1, Kv: 1}}},
		{"compact_ke", Options{Encoding: Compact}, Input{Demands: demands, Prot: Protection{Ke: 1}}},
		{"naive_ke", Options{Encoding: Naive}, Input{Demands: demands, Prot: Protection{Ke: 1}}},
		{"sortnet_kc", Options{}, Input{Demands: demands, Prot: Protection{Kc: 2}, Prev: prev}},
		{"compact_kc", Options{Encoding: Compact}, Input{Demands: demands, Prot: Protection{Kc: 1}, Prev: prev}},
		{"naive_kc", Options{Encoding: Naive}, Input{Demands: demands, Prot: Protection{Kc: 1}, Prev: prev}},
		{"minmlu_kc", Options{Objective: MinMLU}, Input{Demands: demands, Prot: Protection{Kc: 1}, Prev: prev}},
		{"plancap_ke", Options{Objective: PlanCapacity}, Input{Demands: demands, Prot: Protection{Ke: 1}}},
		{"mice_oldload", Options{MiceFraction: 0.2, OldLoadSkip: 1e-4, WeightSkip: 1e-3},
			Input{Demands: demands, Prot: Protection{Kc: 1, Ke: 1}, Prev: prev}},
	}
	workerSettings := []int{0, 1, -1, 4}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref []byte
			for _, w := range workerSettings {
				opts := tc.opts
				opts.BuildWorkers = w
				s := NewSolver(net, set, opts)
				got := modelBytes(t, scratchBuilder(t, s, tc.in).model)
				if ref == nil {
					ref = got
					continue
				}
				if !bytes.Equal(got, ref) {
					t.Fatalf("BuildWorkers=%d model differs from BuildWorkers=%d (%d vs %d bytes)",
						w, workerSettings[0], len(got), len(ref))
				}
			}
		})
	}
}

// TestSortnetCacheByteIdentical formulates the same inputs with the sortnet
// comparator-network cache enabled and disabled: the stamped-out encodings
// must be byte-identical to freshly derived ones, and the enabled pass must
// actually hit the cache.
func TestSortnetCacheByteIdentical(t *testing.T) {
	net := topology.SNet()
	set, series := buildFixture(t, net, 1, 9)
	s := NewSolver(net, set, Options{})
	in := Input{Demands: series[0], Prot: Protection{Ke: 2, Kv: 1}}

	sortnet.SetCache(false)
	cold := modelBytes(t, scratchBuilder(t, s, in).model)
	sortnet.SetCache(true)
	defer sortnet.SetCache(true) // leave the process-wide default in place
	warm := modelBytes(t, scratchBuilder(t, s, in).model)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cache-off and cache-on formulations differ (%d vs %d bytes)", len(cold), len(warm))
	}
	if sortnet.CacheLen() == 0 {
		t.Fatal("cache-on formulation left the sortnet cache empty")
	}
	// A second build of the same input must stamp from the cache alone.
	h0, _ := sortnet.CacheCounters()
	_ = modelBytes(t, scratchBuilder(t, s, in).model)
	if h1, _ := sortnet.CacheCounters(); h1 <= h0 {
		t.Fatalf("repeat formulation recorded no cache hits (%d → %d)", h0, h1)
	}
}

// TestTemplateMismatchRejected exercises the invalidation rules: structural
// changes must be refused by Instantiate, not silently rebound.
func TestTemplateMismatchRejected(t *testing.T) {
	net := topology.SNet()
	set, series := buildFixture(t, net, 2, 11)
	s := NewSolver(net, set, Options{})
	base := Input{Demands: series[0], Prot: Protection{Ke: 1}}
	tmpl, err := s.NewTemplate(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := tmpl.Instantiate(Input{Demands: series[1], Prot: Protection{Ke: 1}}); err != nil {
		t.Fatalf("value-only change rejected: %v", err)
	}

	protChange := base
	protChange.Prot = Protection{Ke: 2}
	if err := tmpl.Instantiate(protChange); err != ErrTemplateMismatch {
		t.Fatalf("protection change: got %v, want ErrTemplateMismatch", err)
	}

	flowChange := Input{Demands: series[0].Clone(), Prot: Protection{Ke: 1}}
	flowChange.Demands[series[0].Flows()[0]] = 0 // drops the flow's variables
	if err := tmpl.Instantiate(flowChange); err != ErrTemplateMismatch {
		t.Fatalf("flow-list change: got %v, want ErrTemplateMismatch", err)
	}

	faultChange := base
	faultChange.DownLinks = map[topology.LinkID]bool{net.Links[0].ID: true}
	if err := tmpl.Instantiate(faultChange); err != ErrTemplateMismatch {
		t.Fatalf("fault-state change: got %v, want ErrTemplateMismatch", err)
	}

	// Control-plane FFC embeds the previous state as coefficients: never
	// rebindable, even against an identical input.
	st, _, err := s.Solve(base)
	if err != nil {
		t.Fatal(err)
	}
	kcIn := Input{Demands: series[0], Prot: Protection{Kc: 1}, Prev: st}
	kcTmpl, err := s.NewTemplate(kcIn)
	if err != nil {
		t.Fatal(err)
	}
	if err := kcTmpl.Instantiate(kcIn); err != ErrTemplateMismatch {
		t.Fatalf("kc > 0 template: got %v, want ErrTemplateMismatch", err)
	}
}

// TestSessionTemplateMatchesScratchSolve runs a warm-started Session chain
// with the template enabled and disabled: since the instantiated model is
// byte-identical to the scratch one and the carried basis evolves
// identically, every interval's state must match exactly.
func TestSessionTemplateMatchesScratchSolve(t *testing.T) {
	net := topology.FatTree(4, 10)
	set, series := buildFixture(t, net, 4, 13)
	run := func(disable bool) []*State {
		opts := Options{DisableTemplate: disable}
		se := NewSolver(net, set, opts).NewSession()
		var out []*State
		for i, dem := range series {
			st, stats, err := se.Solve(Input{Demands: dem, Prot: Protection{Ke: 1}})
			if err != nil {
				t.Fatalf("disable=%v interval %d: %v", disable, i, err)
			}
			if wantReuse := !disable && i > 0; stats.ModelReused != wantReuse {
				t.Fatalf("disable=%v interval %d: ModelReused=%v, want %v",
					disable, i, stats.ModelReused, wantReuse)
			}
			out = append(out, st)
		}
		return out
	}
	withTmpl, scratch := run(false), run(true)
	for i := range withTmpl {
		for f, r := range scratch[i].Rate {
			if withTmpl[i].Rate[f] != r {
				t.Fatalf("interval %d flow %v: rate %v (template) != %v (scratch)",
					i, f, withTmpl[i].Rate[f], r)
			}
		}
		for f, alloc := range scratch[i].Alloc {
			got := withTmpl[i].Alloc[f]
			if len(got) != len(alloc) {
				t.Fatalf("interval %d flow %v: alloc lengths differ", i, f)
			}
			for j := range alloc {
				if got[j] != alloc[j] {
					t.Fatalf("interval %d flow %v tunnel %d: alloc %v (template) != %v (scratch)",
						i, f, j, got[j], alloc[j])
				}
			}
		}
	}
}
