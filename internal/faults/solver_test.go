package faults

import (
	"math/rand"
	"testing"
)

func TestParseSolverFaults(t *testing.T) {
	m, err := ParseSolverFaults("timeout=0.1,crash=0.01,stale=0.02")
	if err != nil {
		t.Fatal(err)
	}
	if m.TimeoutRate != 0.1 || m.CrashRate != 0.01 || m.StaleRate != 0.02 {
		t.Fatalf("parsed %+v", m)
	}
	if !m.Enabled() {
		t.Fatalf("parsed model not enabled")
	}

	m, err = ParseSolverFaults("")
	if err != nil {
		t.Fatal(err)
	}
	if m.Enabled() {
		t.Fatalf("empty spec produced an enabled model: %+v", m)
	}

	m, err = ParseSolverFaults(" timeout=0.5 , stale=0.25 ")
	if err != nil {
		t.Fatalf("spaced spec rejected: %v", err)
	}
	if m.TimeoutRate != 0.5 || m.StaleRate != 0.25 {
		t.Fatalf("parsed %+v", m)
	}

	for _, bad := range []string{
		"timeout",               // missing =rate
		"timeout=",              // empty rate
		"timeout=x",             // non-numeric
		"timeout=-0.1",          // negative
		"timeout=1.5",           // above 1
		"reboot=0.1",            // unknown kind
		"timeout=0.6,crash=0.6", // rates sum above 1
	} {
		if _, err := ParseSolverFaults(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

func TestSolverFaultSampleDeterminism(t *testing.T) {
	// A disabled model and a Force-only model must not consume random
	// draws, so enabling deterministic injection keeps existing fault
	// streams bit-identical.
	ref := rand.New(rand.NewSource(7)).Float64()

	rng := rand.New(rand.NewSource(7))
	var off SolverFaultModel
	if _, ok := off.Sample(0, rng); ok {
		t.Fatalf("disabled model injected a fault")
	}
	if got := rng.Float64(); got != ref {
		t.Fatalf("disabled model consumed a draw: %v != %v", got, ref)
	}

	rng = rand.New(rand.NewSource(7))
	forced := SolverFaultModel{Force: map[int]SolverFaultKind{3: SolverCrash}}
	if k, ok := forced.Sample(3, rng); !ok || k != SolverCrash {
		t.Fatalf("forced interval sampled (%v, %v)", k, ok)
	}
	if _, ok := forced.Sample(4, rng); ok {
		t.Fatalf("unforced interval injected a fault")
	}
	if got := rng.Float64(); got != ref {
		t.Fatalf("Force-only model consumed a draw: %v != %v", got, ref)
	}
}

func TestSolverFaultSampleRates(t *testing.T) {
	m := SolverFaultModel{TimeoutRate: 0.2, CrashRate: 0.2, StaleRate: 0.2}
	rng := rand.New(rand.NewSource(9))
	counts := map[SolverFaultKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		if k, ok := m.Sample(i, rng); ok {
			counts[k]++
		}
	}
	for _, k := range []SolverFaultKind{SolverTimeout, SolverCrash, SolverStale} {
		frac := float64(counts[k]) / n
		if frac < 0.18 || frac > 0.22 {
			t.Fatalf("%v rate %v, want ≈0.2", k, frac)
		}
	}
	if SolverTimeout.String() != "timeout" || SolverCrash.String() != "crash" || SolverStale.String() != "stale" {
		t.Fatalf("kind names wrong")
	}
}
