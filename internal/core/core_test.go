package core

import (
	"math"
	"math/rand"
	"testing"

	"ffc/internal/demand"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// fig25Fixture builds the 4-switch network of Figures 2–5 with manually
// constructed tunnels matching the paper's walkthroughs.
type fig25Fixture struct {
	net      *topology.Network
	tun      *tunnel.Set
	s1, s2   topology.SwitchID
	s3, s4   topology.SwitchID
	f24, f34 tunnel.Flow // {s2,s3}→s4
	f14      tunnel.Flow // s1→s4 (the new flow of Fig 3)
	mkTunnel func(f tunnel.Flow, hops ...topology.SwitchID) *tunnel.Tunnel
}

func newFig25(t *testing.T) *fig25Fixture {
	t.Helper()
	net := topology.Example4()
	fx := &fig25Fixture{net: net, tun: tunnel.NewSet(net)}
	get := func(name string) topology.SwitchID {
		id, ok := net.SwitchByName(name)
		if !ok {
			t.Fatalf("switch %s missing", name)
		}
		return id
	}
	fx.s1, fx.s2, fx.s3, fx.s4 = get("s1"), get("s2"), get("s3"), get("s4")
	fx.f24 = tunnel.Flow{Src: fx.s2, Dst: fx.s4}
	fx.f34 = tunnel.Flow{Src: fx.s3, Dst: fx.s4}
	fx.f14 = tunnel.Flow{Src: fx.s1, Dst: fx.s4}
	fx.mkTunnel = func(f tunnel.Flow, hops ...topology.SwitchID) *tunnel.Tunnel {
		var links []topology.LinkID
		for i := 0; i+1 < len(hops); i++ {
			l := net.FindLink(hops[i], hops[i+1])
			if l == topology.None {
				t.Fatalf("no link %d→%d", hops[i], hops[i+1])
			}
			links = append(links, l)
		}
		return tunnelFromPath(net, f, links)
	}
	// Tunnels: {s2,s3}→s4 each have a direct tunnel and one via s1;
	// s1→s4 has only the direct tunnel.
	fx.tun.Add(fx.f24, fx.mkTunnel(fx.f24, fx.s2, fx.s4), fx.mkTunnel(fx.f24, fx.s2, fx.s1, fx.s4))
	fx.tun.Add(fx.f34, fx.mkTunnel(fx.f34, fx.s3, fx.s4), fx.mkTunnel(fx.f34, fx.s3, fx.s1, fx.s4))
	fx.tun.Add(fx.f14, fx.mkTunnel(fx.f14, fx.s1, fx.s4))
	return fx
}

// tunnelFromPath mirrors the unexported constructor in package tunnel.
func tunnelFromPath(net *topology.Network, f tunnel.Flow, links []topology.LinkID) *tunnel.Tunnel {
	t := &tunnel.Tunnel{Flow: f, Links: links}
	if len(links) > 0 {
		t.Switches = append(t.Switches, net.Links[links[0]].Src)
		for _, l := range links {
			t.Switches = append(t.Switches, net.Links[l].Dst)
		}
	}
	return t
}

func TestBasicTEMaxThroughput(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	st, stats, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 10, fx.f34: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.TotalRate()-20) > 1e-6 {
		t.Fatalf("throughput %v, want 20", st.TotalRate())
	}
	if stats.Constraints == 0 || stats.Vars == 0 {
		t.Fatal("stats not populated")
	}
	// No link may be over capacity.
	for l, load := range st.LinkLoads(fx.tun) {
		if load > fx.net.Links[l].Capacity+1e-6 {
			t.Fatalf("link %d overloaded: %v", l, load)
		}
	}
}

func TestBasicTEDemandCap(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	st, _, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Rate[fx.f24]-3) > 1e-9 {
		t.Fatalf("rate %v, want 3 (demand-capped)", st.Rate[fx.f24])
	}
}

func TestBasicTEUsesMultipleTunnels(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	// Demand above single-link capacity forces use of the via-s1 tunnel.
	st, _, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 14}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Rate[fx.f24]-14) > 1e-6 {
		t.Fatalf("rate %v, want 14", st.Rate[fx.f24])
	}
	if st.Alloc[fx.f24][1] < 4-1e-6 {
		t.Fatalf("via-s1 tunnel carries %v, want ≥ 4", st.Alloc[fx.f24][1])
	}
}

// TestControlPlaneFFCPaperNumbers reproduces Figures 3 and 5 exactly: with
// the old configuration splitting {s2,s3}→s4 as 7 direct + 3 via s1, the
// admissible new flow s1→s4 is 10 without FFC, 7 with kc=1, 4 with kc=2.
func TestControlPlaneFFCPaperNumbers(t *testing.T) {
	fx := newFig25(t)
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 10, []float64{7, 3}
	prev.Rate[fx.f34], prev.Alloc[fx.f34] = 10, []float64{7, 3}
	demands := demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 10}

	for _, tc := range []struct {
		kc   int
		want float64
	}{
		{0, 10}, {1, 7}, {2, 4},
	} {
		s := NewSolver(fx.net, fx.tun, Options{})
		st, _, err := s.Solve(Input{Demands: demands, Prot: Protection{Kc: tc.kc}, Prev: prev})
		if err != nil {
			t.Fatalf("kc=%d: %v", tc.kc, err)
		}
		if math.Abs(st.Rate[fx.f14]-tc.want) > 1e-6 {
			t.Fatalf("kc=%d: new flow admitted %v, want %v", tc.kc, st.Rate[fx.f14], tc.want)
		}
		// Existing flows keep their rates (the optimum of the walkthrough).
		if math.Abs(st.Rate[fx.f24]-10) > 1e-6 || math.Abs(st.Rate[fx.f34]-10) > 1e-6 {
			t.Fatalf("kc=%d: existing flows got %v/%v, want 10/10", tc.kc, st.Rate[fx.f24], st.Rate[fx.f34])
		}
		// And the computed state must pass exhaustive verification.
		if v := VerifyControlPlane(fx.net, fx.tun, st, prev, tc.kc, LimitersSynced, nil); v != nil {
			t.Fatalf("kc=%d: verification failed: %+v", tc.kc, v)
		}
	}
}

// TestControlPlaneNonFFCUnsafe shows that the kc=0 solution genuinely
// violates the kc=1 guarantee (the situation of Figure 3(c)).
func TestControlPlaneNonFFCUnsafe(t *testing.T) {
	fx := newFig25(t)
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 10, []float64{7, 3}
	prev.Rate[fx.f34], prev.Alloc[fx.f34] = 10, []float64{7, 3}
	s := NewSolver(fx.net, fx.tun, Options{})
	st, _, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if v := VerifyControlPlane(fx.net, fx.tun, st, prev, 1, LimitersSynced, nil); v == nil {
		t.Fatal("non-FFC plan unexpectedly safe under one stale switch")
	}
}

// TestDataPlaneFFCFig24 reproduces the Figure 2/4 situation: without FFC a
// 14-unit flow overloads s1−s4 after its direct link fails; with ke=1 the
// network stays congestion-free in every single-failure case.
func TestDataPlaneFFCFig24(t *testing.T) {
	fx := newFig25(t)
	demands := demand.Matrix{fx.f24: 14, fx.f34: 6}

	plain := NewSolver(fx.net, fx.tun, Options{})
	stPlain, _, err := plain.Solve(Input{Demands: demands})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stPlain.TotalRate()-20) > 1e-6 {
		t.Fatalf("plain throughput %v, want 20", stPlain.TotalRate())
	}
	if v := VerifyDataPlane(fx.net, fx.tun, stPlain, 1, 0, nil); v == nil {
		t.Fatal("plain TE unexpectedly survives all single link failures")
	}

	ffc := NewSolver(fx.net, fx.tun, Options{})
	stFFC, _, err := ffc.Solve(Input{Demands: demands, Prot: Protection{Ke: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if v := VerifyDataPlane(fx.net, fx.tun, stFFC, 1, 0, nil); v != nil {
		t.Fatalf("FFC state violates ke=1 guarantee: %+v", v)
	}
	// With 2 tunnels per flow and τ=1, every admitted unit must fit on
	// both tunnels; shared link s1−s4 caps total at 10.
	if math.Abs(stFFC.TotalRate()-10) > 1e-6 {
		t.Fatalf("FFC throughput %v, want 10", stFFC.TotalRate())
	}
}

func TestDataPlaneSwitchFailureProtection(t *testing.T) {
	fx := newFig25(t)
	// kv=1 with q: via-s1 tunnels die when s1 fails; τ = 2 − q(=1) = 1.
	s := NewSolver(fx.net, fx.tun, Options{})
	st, _, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 14, fx.f34: 6}, Prot: Protection{Kv: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if v := VerifyDataPlane(fx.net, fx.tun, st, 0, 1, nil); v != nil {
		t.Fatalf("kv=1 guarantee violated: %+v", v)
	}
}

// TestFlowZeroedWhenTauNonPositive: s1→s4 has one tunnel; ke=1 can kill it,
// so FFC must refuse the flow entirely.
func TestFlowZeroedWhenTauNonPositive(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	st, _, err := s.Solve(Input{Demands: demand.Matrix{fx.f14: 5}, Prot: Protection{Ke: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rate[fx.f14] != 0 {
		t.Fatalf("single-tunnel flow admitted %v under ke=1, want 0", st.Rate[fx.f14])
	}
}

func TestEncodingsAgreeOnExamples(t *testing.T) {
	fx := newFig25(t)
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 10, []float64{7, 3}
	prev.Rate[fx.f34], prev.Alloc[fx.f34] = 10, []float64{7, 3}
	in := Input{
		Demands: demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 10},
		Prot:    Protection{Kc: 2, Ke: 1},
		Prev:    prev,
	}
	var objs []float64
	for _, enc := range []Encoding{SortNet, Compact, Naive} {
		s := NewSolver(fx.net, fx.tun, Options{Encoding: enc})
		st, _, err := s.Solve(in)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		objs = append(objs, st.TotalRate())
	}
	// SortNet and Compact encode the identical feasible region; Naive is
	// the ground truth. Tunnels here are link-disjoint so all three match
	// (the paper's exactness case).
	if math.Abs(objs[0]-objs[1]) > 1e-5 || math.Abs(objs[0]-objs[2]) > 1e-5 {
		t.Fatalf("encodings disagree: sortnet=%v compact=%v naive=%v", objs[0], objs[1], objs[2])
	}
}

// TestFFCPropertyRandom is the central guarantee test: on random small
// networks with random demands and protection levels, the computed state
// must survive exhaustive fault enumeration (Lemma 1 + §4.4.1 soundness).
func TestFFCPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		net, tun, flows := randomNetwork(rng, 5+rng.Intn(3), 2+rng.Intn(3))
		if len(flows) == 0 {
			continue
		}
		demands := demand.Matrix{}
		for _, f := range flows {
			demands[f] = 1 + rng.Float64()*9
		}
		prot := Protection{Ke: rng.Intn(3), Kv: rng.Intn(2)}
		s := NewSolver(net, tun, Options{Encoding: Encoding(rng.Intn(2))})
		st, _, err := s.Solve(Input{Demands: demands, Prot: prot})
		if err != nil {
			t.Fatalf("trial %d prot %v: %v", trial, prot, err)
		}
		if v := VerifyDataPlane(net, tun, st, prot.Ke, prot.Kv, nil); v != nil {
			t.Fatalf("trial %d prot %v: guarantee violated: %+v", trial, prot, v)
		}
	}
}

// TestControlFFCPropertyRandom does the same for control-plane faults:
// solve plain TE for interval 1, then FFC TE for interval 2's demands,
// and verify every ≤kc stale-switch combination.
func TestControlFFCPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		net, tun, flows := randomNetwork(rng, 5+rng.Intn(3), 2+rng.Intn(2))
		if len(flows) == 0 {
			continue
		}
		d1, d2 := demand.Matrix{}, demand.Matrix{}
		for _, f := range flows {
			d1[f] = 1 + rng.Float64()*8
			d2[f] = 1 + rng.Float64()*8
		}
		s := NewSolver(net, tun, Options{})
		prev, _, err := s.Solve(Input{Demands: d1})
		if err != nil {
			t.Fatalf("trial %d: prev solve: %v", trial, err)
		}
		kc := 1 + rng.Intn(2)
		mode := RateLimiterMode(rng.Intn(3))
		s2 := NewSolver(net, tun, Options{RateLimiter: mode, Encoding: Encoding(rng.Intn(2))})
		st, _, err := s2.Solve(Input{Demands: d2, Prot: Protection{Kc: kc}, Prev: prev})
		if err != nil {
			t.Fatalf("trial %d kc=%d mode=%d: %v", trial, kc, mode, err)
		}
		if v := VerifyControlPlane(net, tun, st, prev, kc, mode, nil); v != nil {
			t.Fatalf("trial %d kc=%d mode=%d: %+v", trial, kc, mode, v)
		}
	}
}

// randomNetwork builds a small random connected duplex network, lays out
// tunnels for a few random flows, and returns everything.
func randomNetwork(rng *rand.Rand, nSwitch, nFlow int) (*topology.Network, *tunnel.Set, []tunnel.Flow) {
	net := topology.NewNetwork("rand")
	for i := 0; i < nSwitch; i++ {
		net.AddSwitch("sw", "site", float64(i), float64(i))
	}
	// Random ring (2-connected, so disjoint tunnel pairs exist) plus chords.
	perm := rng.Perm(nSwitch)
	for i := 0; i < nSwitch; i++ {
		a, b := perm[i], perm[(i+1)%nSwitch]
		net.AddDuplex(topology.SwitchID(a), topology.SwitchID(b), 5+rng.Float64()*10)
	}
	for i := 0; i < nSwitch; i++ {
		a, b := rng.Intn(nSwitch), rng.Intn(nSwitch)
		if a == b || net.FindLink(topology.SwitchID(a), topology.SwitchID(b)) != topology.None {
			continue
		}
		net.AddDuplex(topology.SwitchID(a), topology.SwitchID(b), 5+rng.Float64()*10)
	}
	var flows []tunnel.Flow
	seen := map[tunnel.Flow]bool{}
	for len(flows) < nFlow {
		f := tunnel.Flow{Src: topology.SwitchID(rng.Intn(nSwitch)), Dst: topology.SwitchID(rng.Intn(nSwitch))}
		if f.Src == f.Dst || seen[f] {
			continue
		}
		seen[f] = true
		flows = append(flows, f)
	}
	set := tunnel.Layout(net, flows, tunnel.LayoutConfig{TunnelsPerFlow: 3, P: 1, Q: 3})
	var ok []tunnel.Flow
	for _, f := range flows {
		if len(set.Tunnels(f)) > 0 {
			ok = append(ok, f)
		}
	}
	return net, set, ok
}

func TestMiceOptimization(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	net, tun, flows := randomNetwork(rng, 7, 5)
	demands := demand.Matrix{}
	for i, f := range flows {
		if i == 0 {
			demands[f] = 100 // elephant
		} else {
			demands[f] = 0.05 // mice
		}
	}
	withMice := NewSolver(net, tun, Options{MiceFraction: 0.01})
	st, stats, err := withMice.Solve(Input{Demands: demands, Prot: Protection{Ke: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Guarantee must still hold with the shortcut.
	if v := VerifyDataPlane(net, tun, st, 1, 0, nil); v != nil {
		t.Fatalf("mice shortcut broke the guarantee: %+v", v)
	}
	without := NewSolver(net, tun, Options{})
	st2, stats2, err := without.Solve(Input{Demands: demands, Prot: Protection{Ke: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Vars >= stats2.Vars {
		t.Fatalf("mice shortcut did not reduce variables: %d vs %d", stats.Vars, stats2.Vars)
	}
	if st.TotalRate() < st2.TotalRate()-0.2 {
		t.Fatalf("mice shortcut lost too much throughput: %v vs %v", st.TotalRate(), st2.TotalRate())
	}
}

func TestMinMLUObjective(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{Objective: MinMLU})
	// Offered 14 through a 10-capacity direct path with a via alternative:
	// MLU should be 14/20 split across both tunnels = 0.7.
	st, stats, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 14}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Rate[fx.f24]-14) > 1e-6 {
		t.Fatalf("MinMLU must carry offered demand, got %v", st.Rate[fx.f24])
	}
	if math.Abs(stats.MLU-0.7) > 1e-5 {
		t.Fatalf("MLU %v, want 0.7", stats.MLU)
	}
}

func TestMinMLUOversubscribed(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{Objective: MinMLU})
	st, stats, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MLU <= 1 {
		t.Fatalf("MLU %v, want > 1 for oversubscribed demand", stats.MLU)
	}
	_ = st
}

func TestMinMLUWithControlFFC(t *testing.T) {
	fx := newFig25(t)
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 10, []float64{7, 3}
	prev.Rate[fx.f34], prev.Alloc[fx.f34] = 10, []float64{7, 3}
	s := NewSolver(fx.net, fx.tun, Options{Objective: MinMLU, MLUSigma: 0.5})
	st, stats, err := s.Solve(Input{
		Demands: demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 4},
		Prot:    Protection{Kc: 2},
		Prev:    prev,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MLU > 1+1e-6 {
		t.Fatalf("MLU %v, want ≤ 1 (fits as shown by the throughput test)", stats.MLU)
	}
	if v := VerifyControlPlane(fx.net, fx.tun, st, prev, 2, LimitersSynced, nil); v != nil {
		t.Fatalf("MinMLU control FFC violated: %+v", v)
	}
}

func TestUncertainFlows(t *testing.T) {
	fx := newFig25(t)
	// Flow f24's configuration is uncertain between older [10,0] and
	// prev [7,3]. It must stay pinned to prev and both are planned for.
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 10, []float64{7, 3}
	prev.Rate[fx.f34], prev.Alloc[fx.f34] = 10, []float64{10, 0}
	s := NewSolver(fx.net, fx.tun, Options{})
	st, _, err := s.Solve(Input{
		Demands: demand.Matrix{fx.f24: 10, fx.f34: 10, fx.f14: 10},
		Prot:    Protection{Kc: 1},
		Prev:    prev,
		Uncertain: map[tunnel.Flow]Uncertain{
			fx.f24: {AllocOlder: []float64{10, 0}, RateOlder: 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Rate[fx.f24]-10) > 1e-9 || math.Abs(st.Alloc[fx.f24][0]-7) > 1e-9 || math.Abs(st.Alloc[fx.f24][1]-3) > 1e-9 {
		t.Fatalf("uncertain flow not pinned: %v %v", st.Rate[fx.f24], st.Alloc[fx.f24])
	}
	// s1−s4 must reserve for f24's worst old config (3 via s1) plus one
	// stale switch: new flow ≤ 10 − 3(uncertain worst) = 7, minus 0 for
	// f34 (no old via-s1 weight) → admitted 7.
	if st.Rate[fx.f14] > 7+1e-6 {
		t.Fatalf("new flow %v exceeds the uncertainty-safe bound 7", st.Rate[fx.f14])
	}
}

func TestRateCapsAndFixedRates(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	st, _, err := s.Solve(Input{
		Demands:    demand.Matrix{fx.f24: 10, fx.f34: 10},
		RateCaps:   map[tunnel.Flow]float64{fx.f24: 4},
		FixedRates: map[tunnel.Flow]float64{fx.f34: 2.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rate[fx.f24] > 4+1e-9 {
		t.Fatalf("rate cap violated: %v", st.Rate[fx.f24])
	}
	if math.Abs(st.Rate[fx.f34]-2.5) > 1e-9 {
		t.Fatalf("fixed rate not honored: %v", st.Rate[fx.f34])
	}
}

func TestControlFFCRequiresPrev(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	_, _, err := s.Solve(Input{Demands: demand.Matrix{fx.f24: 1}, Prot: Protection{Kc: 1}})
	if err == nil {
		t.Fatal("expected error: kc>0 without previous state")
	}
}

func TestOverloadedLinkSkipsKc(t *testing.T) {
	// §4.5: when the previous state already overloads a link, control FFC
	// for that link is waived so traffic can be moved away at all.
	fx := newFig25(t)
	prev := NewState()
	prev.Rate[fx.f24], prev.Alloc[fx.f24] = 14, []float64{2, 12} // 12 on s1−s4: overloaded
	prev.Rate[fx.f34], prev.Alloc[fx.f34] = 0, []float64{0, 0}
	s := NewSolver(fx.net, fx.tun, Options{})
	st, _, err := s.Solve(Input{
		Demands: demand.Matrix{fx.f24: 14},
		Prot:    Protection{Kc: 2},
		Prev:    prev,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Without the waiver this would be infeasible at full rate; with it
	// the flow keeps its 14 units.
	if math.Abs(st.Rate[fx.f24]-14) > 1e-6 {
		t.Fatalf("rate %v, want 14 via the §4.5 waiver", st.Rate[fx.f24])
	}
}

func TestCapacityOverride(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	direct := fx.net.FindLink(fx.s2, fx.s4)
	via1 := fx.net.FindLink(fx.s2, fx.s1)
	via2 := fx.net.FindLink(fx.s1, fx.s4)
	st, _, err := s.Solve(Input{
		Demands: demand.Matrix{fx.f24: 10},
		Capacity: map[topology.LinkID]float64{
			direct: 2, via1: 3, via2: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Rate[fx.f24]-5) > 1e-6 {
		t.Fatalf("rate %v, want 5 under shrunken capacities", st.Rate[fx.f24])
	}
}

func TestStatsEncodingAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	net, tun, flows := randomNetwork(rng, 7, 6)
	demands := demand.Matrix{}
	for _, f := range flows {
		demands[f] = 5
	}
	s := NewSolver(net, tun, Options{})
	prev, _, err := s.Solve(Input{Demands: demands})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Demands: demands, Prot: Protection{Kc: 2, Ke: 1}, Prev: prev}
	sn := NewSolver(net, tun, Options{Encoding: SortNet})
	_, stSN, err := sn.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	cp := NewSolver(net, tun, Options{Encoding: Compact})
	_, stCP, err := cp.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if stSN.EncodingConstraints == 0 || stCP.EncodingConstraints == 0 {
		t.Fatal("encoding accounting missing")
	}
}

func TestDownLinksExcludeTunnels(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	direct := fx.net.FindLink(fx.s2, fx.s4)
	st, _, err := s.Solve(Input{
		Demands:   demand.Matrix{fx.f24: 14},
		DownLinks: map[topology.LinkID]bool{direct: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Alloc[fx.f24][0] != 0 {
		t.Fatalf("dead tunnel carries %v", st.Alloc[fx.f24][0])
	}
	if math.Abs(st.Rate[fx.f24]-10) > 1e-6 {
		t.Fatalf("rate %v, want 10 (via-s1 only)", st.Rate[fx.f24])
	}
}

func TestDownLinkWithFFCTauOverAlive(t *testing.T) {
	// With the direct tunnel down only one tunnel survives; ke=1 can kill
	// it, so the flow must be refused entirely.
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	direct := fx.net.FindLink(fx.s2, fx.s4)
	st, _, err := s.Solve(Input{
		Demands:   demand.Matrix{fx.f24: 14},
		Prot:      Protection{Ke: 1},
		DownLinks: map[topology.LinkID]bool{direct: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rate[fx.f24] != 0 {
		t.Fatalf("rate %v, want 0 under ke=1 with one surviving tunnel", st.Rate[fx.f24])
	}
}

func TestDownSwitchExcludesTunnels(t *testing.T) {
	fx := newFig25(t)
	s := NewSolver(fx.net, fx.tun, Options{})
	st, _, err := s.Solve(Input{
		Demands:      demand.Matrix{fx.f24: 14},
		DownSwitches: map[topology.SwitchID]bool{fx.s1: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Alloc[fx.f24][1] != 0 {
		t.Fatalf("tunnel via failed switch carries %v", st.Alloc[fx.f24][1])
	}
	if math.Abs(st.Rate[fx.f24]-10) > 1e-6 {
		t.Fatalf("rate %v, want 10 (direct only)", st.Rate[fx.f24])
	}
}
