package topology

import (
	"strings"
	"testing"
)

// FuzzGraphMLParse: arbitrary bytes must never panic the parser, and any
// accepted topology must validate.
func FuzzGraphMLParse(f *testing.F) {
	f.Add(abileneGraphML)
	f.Add(`<graphml><graph id="g"><node id="a"/><node id="b"/><edge source="a" target="b"/></graph></graphml>`)
	f.Add(`<graphml>`)
	f.Fuzz(func(t *testing.T, data string) {
		net, err := ParseGraphML(strings.NewReader(data), 10)
		if err != nil {
			return
		}
		if verr := net.Validate(); verr != nil {
			t.Fatalf("accepted topology fails validation: %v", verr)
		}
	})
}
