package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// Update ops accepted by the ffcd streaming protocol. Each newline-delimited
// JSON frame carries exactly one op.
const (
	// UpdateDemands merges (or, with Reset, replaces) per-flow demands.
	UpdateDemands = "demands"
	// UpdateLink marks a physical link (both directions) down or up.
	UpdateLink = "link"
	// UpdateSwitch marks a switch down or up.
	UpdateSwitch = "switch"
	// UpdateProtection changes the FFC protection level.
	UpdateProtection = "protection"
)

// maxProtection caps kc/ke/kv in protection updates: far above any useful
// level, low enough that a hostile frame cannot request an astronomically
// large sorting-network formulation.
const maxProtection = 256

// Update is one streamed controller update — the mutating half of the ffcd
// protocol (queries are answered by the server from the installed plan and
// never reach the solver). Fields are op-specific; ParseUpdate enforces
// which ones each op requires.
type Update struct {
	Op string `json:"op"`

	// UpdateDemands: entries to merge into the demand matrix. Reset replaces
	// the whole matrix instead of merging (an empty Reset update clears it).
	Demands []DemandEntry `json:"demands,omitempty"`
	Reset   bool          `json:"reset,omitempty"`

	// UpdateLink: endpoint switch names of the physical link.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`

	// UpdateSwitch: the switch name.
	Switch string `json:"switch,omitempty"`

	// UpdateLink / UpdateSwitch: the element's new liveness.
	Up *bool `json:"up,omitempty"`

	// UpdateProtection: new protection levels; absent fields keep their
	// current value.
	Kc *int `json:"kc,omitempty"`
	Ke *int `json:"ke,omitempty"`
	Kv *int `json:"kv,omitempty"`
}

// ParseUpdate decodes and validates one update frame. It is purely
// syntactic — switch and link names are resolved by the controller against
// its topology — but everything else is checked here: unknown ops, unknown
// fields, trailing garbage, missing required fields, and out-of-range
// numbers all error. A malformed frame must never panic; this function is
// fuzzed (FuzzParseUpdate).
func ParseUpdate(data []byte) (*Update, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var u Update
	if err := dec.Decode(&u); err != nil {
		return nil, fmt.Errorf("wire: parsing update: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("wire: parsing update: trailing data after frame")
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return &u, nil
}

// Validate checks op-specific required fields and value ranges.
func (u *Update) Validate() error {
	switch u.Op {
	case UpdateDemands:
		if len(u.Demands) == 0 && !u.Reset {
			return fmt.Errorf("wire: demands update carries no entries (and no reset)")
		}
		for i, d := range u.Demands {
			if d.Src == "" || d.Dst == "" {
				return fmt.Errorf("wire: demands update entry %d: missing src/dst", i)
			}
			if d.Src == d.Dst {
				return fmt.Errorf("wire: demands update entry %d: src == dst (%q)", i, d.Src)
			}
			if math.IsNaN(d.Demand) || math.IsInf(d.Demand, 0) || d.Demand < 0 {
				return fmt.Errorf("wire: demands update entry %d: demand is %g", i, d.Demand)
			}
		}
	case UpdateLink:
		if u.Src == "" || u.Dst == "" {
			return fmt.Errorf("wire: link update: missing src/dst")
		}
		if u.Src == u.Dst {
			return fmt.Errorf("wire: link update: src == dst (%q)", u.Src)
		}
		if u.Up == nil {
			return fmt.Errorf("wire: link update: missing up")
		}
	case UpdateSwitch:
		if u.Switch == "" {
			return fmt.Errorf("wire: switch update: missing switch")
		}
		if u.Up == nil {
			return fmt.Errorf("wire: switch update: missing up")
		}
	case UpdateProtection:
		if u.Kc == nil && u.Ke == nil && u.Kv == nil {
			return fmt.Errorf("wire: protection update changes nothing")
		}
		for _, f := range []struct {
			name string
			v    *int
		}{{"kc", u.Kc}, {"ke", u.Ke}, {"kv", u.Kv}} {
			if f.v == nil {
				continue
			}
			if *f.v < 0 || *f.v > maxProtection {
				return fmt.Errorf("wire: protection update: %s = %d out of range [0,%d]", f.name, *f.v, maxProtection)
			}
		}
	case "":
		return fmt.Errorf("wire: update frame missing op")
	default:
		return fmt.Errorf("wire: unknown update op %q", u.Op)
	}
	return nil
}

// EncodeUpdate renders an update as one protocol frame (no trailing
// newline; the transport adds framing).
func EncodeUpdate(u *Update) ([]byte, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(u)
}
